package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocRelativeLinks verifies that every relative link in README.md
// and docs/*.md points at a file or directory that exists, so the
// architecture documentation cannot silently rot as files move. CI runs
// this as the doc-link checker.
func TestDocRelativeLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 2 {
		t.Fatalf("expected README.md plus docs/*.md, found %v", files)
	}
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			// Drop a #fragment; a bare fragment links within the file.
			if i := strings.Index(target, "#"); i >= 0 {
				target = target[:i]
				if target == "" {
					continue
				}
			}
			p := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(p); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s): %v", f, m[1], p, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found; the checker is miswired")
	}
}

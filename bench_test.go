// Package repro's root benchmarks regenerate the paper's quantitative
// artifacts as testing.B benchmarks, one family per experiment id in
// DESIGN.md §3. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports updates/sec via b.ReportMetric so the shapes in
// EXPERIMENTS.md can be re-derived from a single run.
package repro

import (
	"testing"

	"repro/fivm"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// benchRetailer builds the shared Retailer fixture at benchmark scale.
func benchRetailer(b *testing.B, rows int) (*dataset.Database, []fivm.RelationSpec, []baseline.RelSpec, []string) {
	b.Helper()
	cfg := dataset.DefaultRetailerConfig()
	cfg.InventoryRows = rows
	db := dataset.Retailer(cfg)
	var fs []fivm.RelationSpec
	var bs []baseline.RelSpec
	for _, r := range db.Relations {
		fs = append(fs, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		bs = append(bs, baseline.RelSpec{Name: r.Name, Schema: r.Schema()})
	}
	return db, fs, bs, []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage"}
}

func benchStream(b *testing.B, db *dataset.Database, n int, deleteRatio float64) []view.Update {
	b.Helper()
	st, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: n, DeleteRatio: deleteRatio, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	return st.Updates
}

func reportRate(b *testing.B, updatesPerIter int) {
	b.ReportMetric(float64(updatesPerIter)*float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
}

// --- E1: Figure 1 toy maintenance -----------------------------------------

// BenchmarkE1Figure1Delta measures one δR maintenance step on the
// Figure 1 toy database under the degree-3 COVAR ring.
func BenchmarkE1Figure1Delta(b *testing.B) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C", "D")},
	}
	r := ring.NewCovarRing(3)
	tr, err := view.New(view.Spec[*ring.Covar]{
		Ring: r, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.Covar]{"B": r.Lift(0), "C": r.Lift(1), "D": r.Lift(2)},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	}); err != nil {
		b.Fatal(err)
	}
	tup := value.T("a1", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert("R", tup); err != nil {
			b.Fatal(err)
		}
		if err := tr.Delete("R", tup); err != nil {
			b.Fatal(err)
		}
	}
	reportRate(b, 2)
}

// --- E2: throughput, F-IVM vs baselines -----------------------------------

const (
	e2Rows      = 20_000
	e2Stream    = 5_000
	e2BatchSize = 1_000
)

// BenchmarkE2FIVM maintains the 21-aggregate COVAR payload over the
// 5-way Retailer join with F-IVM's factorized ring maintenance.
func BenchmarkE2FIVM(b *testing.B) {
	db, fs, _, aggs := benchRetailer(b, e2Rows)
	ups := benchStream(b, db, e2Stream, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := fivm.NewCovarEngine(fs, aggs, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 0; j < len(ups); j += e2BatchSize {
			k := j + e2BatchSize
			if k > len(ups) {
				k = len(ups)
			}
			if err := eng.Apply(ups[j:k]); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportRate(b, len(ups))
}

// BenchmarkE2FlatIVM maintains the same aggregates with the
// DBToaster-style flat first-order baseline.
func BenchmarkE2FlatIVM(b *testing.B) {
	db, _, bs, aggs := benchRetailer(b, e2Rows)
	ups := benchStream(b, db, e2Stream, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		flat, err := baseline.NewFlatIVM(bs, aggs)
		if err != nil {
			b.Fatal(err)
		}
		if err := flat.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 0; j < len(ups); j += e2BatchSize {
			k := j + e2BatchSize
			if k > len(ups) {
				k = len(ups)
			}
			if err := flat.Apply(ups[j:k]); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportRate(b, len(ups))
}

// BenchmarkE2Reeval recomputes from scratch per batch (shortened stream;
// the rate metric is what matters).
func BenchmarkE2Reeval(b *testing.B) {
	db, _, bs, aggs := benchRetailer(b, e2Rows)
	ups := benchStream(b, db, 2*e2BatchSize, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		re, err := baseline.NewReeval(bs, aggs)
		if err != nil {
			b.Fatal(err)
		}
		if err := re.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 0; j < len(ups); j += e2BatchSize {
			k := j + e2BatchSize
			if k > len(ups) {
				k = len(ups)
			}
			if err := re.Apply(ups[j:k]); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportRate(b, len(ups))
}

// BenchmarkE2CompoundCategorical maintains the mixed categorical payload
// (thousands of one-hot aggregates) — the configuration behind the
// paper's 10K-updates/sec claim.
func BenchmarkE2CompoundCategorical(b *testing.B) {
	db, fs, _, _ := benchRetailer(b, e2Rows)
	features := []fivm.FeatureSpec{
		{Attr: "inventoryunits"},
		{Attr: "prize"},
		{Attr: "avghhi"},
		{Attr: "subcategory", Categorical: true},
		{Attr: "category", Categorical: true},
		{Attr: "categoryCluster", Categorical: true},
		{Attr: "zip", Categorical: true},
	}
	ups := benchStream(b, db, e2Stream, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		an, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: fs, Features: features})
		if err != nil {
			b.Fatal(err)
		}
		if err := an.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 0; j < len(ups); j += e2BatchSize {
			k := j + e2BatchSize
			if k > len(ups) {
				k = len(ups)
			}
			if err := an.Apply(ups[j:k]); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportRate(b, len(ups))
}

// --- E7: sweeps ------------------------------------------------------------

// BenchmarkE7BatchSize sweeps the update bulk size.
func BenchmarkE7BatchSize(b *testing.B) {
	for _, batch := range []int{1, 10, 100, 1000} {
		b.Run(sizeName(batch), func(b *testing.B) {
			db, fs, _, aggs := benchRetailer(b, 5_000)
			ups := benchStream(b, db, 2_000, 0.2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := fivm.NewCovarEngine(fs, aggs, nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Init(db.TupleMap()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < len(ups); j += batch {
					k := j + batch
					if k > len(ups) {
						k = len(ups)
					}
					if err := eng.Apply(ups[j:k]); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportRate(b, len(ups))
		})
	}
}

// BenchmarkE7AggCount sweeps the COVAR degree m.
func BenchmarkE7AggCount(b *testing.B) {
	attrs := []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage",
		"population", "tot_area_sq_ft", "sell_area_sq_ft", "mintemp", "meanwind",
		"houseunits", "families", "households", "males", "females",
		"white", "black", "asian", "hispanic", "occupiedhouseunits"}
	for _, m := range []int{2, 5, 10, 20} {
		b.Run(sizeName(m), func(b *testing.B) {
			db, fs, _, _ := benchRetailer(b, 5_000)
			ups := benchStream(b, db, 2_000, 0.2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := fivm.NewCovarEngine(fs, attrs[:m], nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Init(db.TupleMap()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < len(ups); j += 500 {
					k := j + 500
					if k > len(ups) {
						k = len(ups)
					}
					if err := eng.Apply(ups[j:k]); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportRate(b, len(ups))
		})
	}
}

// --- E8: parallel delta propagation ----------------------------------------

// BenchmarkE8Workers sweeps the delta-propagation worker count on the
// Retailer batch stream (COVAR degree 5, batches of 1000): the same
// workload as E2, with update batches hash-partitioned by join key and
// propagated concurrently. workers=1 is the sequential baseline; on a
// multi-core host the 4-worker rate should exceed it, while on a
// single-core host the sweep measures the partitioning overhead.
func BenchmarkE8Workers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers"+itoa(workers), func(b *testing.B) {
			db, fs, _, aggs := benchRetailer(b, e2Rows)
			ups := benchStream(b, db, e2Stream, 0.2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := fivm.NewCovarEngine(fs, aggs, nil)
				if err != nil {
					b.Fatal(err)
				}
				eng.SetParallelism(workers)
				if err := eng.Init(db.TupleMap()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < len(ups); j += e2BatchSize {
					k := j + e2BatchSize
					if k > len(ups) {
						k = len(ups)
					}
					if err := eng.Apply(ups[j:k]); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportRate(b, len(ups))
		})
	}
}

// BenchmarkE8WorkersCategorical is the same sweep over the heavier
// mixed categorical payload (the relational degree-7 ring), where the
// per-tuple ring work is large enough for partitioning to pay off at
// smaller batch sizes.
func BenchmarkE8WorkersCategorical(b *testing.B) {
	features := []fivm.FeatureSpec{
		{Attr: "inventoryunits"},
		{Attr: "prize"},
		{Attr: "avghhi"},
		{Attr: "subcategory", Categorical: true},
		{Attr: "category", Categorical: true},
		{Attr: "categoryCluster", Categorical: true},
		{Attr: "zip", Categorical: true},
	}
	for _, workers := range []int{1, 4} {
		b.Run("workers"+itoa(workers), func(b *testing.B) {
			db, fs, _, _ := benchRetailer(b, e2Rows)
			ups := benchStream(b, db, e2Stream, 0.2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				an, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: fs, Features: features})
				if err != nil {
					b.Fatal(err)
				}
				an.SetParallelism(workers)
				if err := an.Init(db.TupleMap()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < len(ups); j += e2BatchSize {
					k := j + e2BatchSize
					if k > len(ups) {
						k = len(ups)
					}
					if err := an.Apply(ups[j:k]); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportRate(b, len(ups))
		})
	}
}

// --- A1–A3: ablations --------------------------------------------------------

// BenchmarkAblationSharing compares the compound ring against one
// float-ring view tree per aggregate (factorized but unshared): the
// benefit of sharing scalar/linear aggregates inside one payload.
func BenchmarkAblationSharing(b *testing.B) {
	db, fs, _, aggs := benchRetailer(b, 5_000)
	ups := benchStream(b, db, 1_000, 0.2)

	b.Run("compound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewCovarEngine(fs, aggs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := eng.Apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b, len(ups))
	})

	b.Run("unshared", func(b *testing.B) {
		// One Z-ring count tree plus one float tree per SUM(X) and
		// SUM(X*Y): 1 + 5 + 15 = 21 independent view trees.
		build := func() []*view.Tree[float64] {
			var trees []*view.Tree[float64]
			var rels []vo.Rel
			for _, r := range db.Relations {
				rels = append(rels, vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)})
			}
			add := func(lifts map[string]ring.Lift[float64]) {
				t, err := view.New(view.Spec[float64]{Ring: ring.Floats{}, Relations: rels, Lifts: lifts})
				if err != nil {
					b.Fatal(err)
				}
				if err := t.Init(db.TupleMap()); err != nil {
					b.Fatal(err)
				}
				trees = append(trees, t)
			}
			add(nil) // count
			for i, a := range aggs {
				add(map[string]ring.Lift[float64]{a: ring.IdentityLift})
				add(map[string]ring.Lift[float64]{a: ring.SquareLift})
				for _, c := range aggs[i+1:] {
					add(map[string]ring.Lift[float64]{a: ring.IdentityLift, c: ring.IdentityLift})
				}
			}
			return trees
		}
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			trees := build()
			b.StartTimer()
			for _, t := range trees {
				if err := t.ApplyUpdates(ups); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportRate(b, len(ups))
	})
}

// BenchmarkAblationDeletes sweeps the delete ratio: the rate must stay
// in the same band (deletes are just negative payloads).
func BenchmarkAblationDeletes(b *testing.B) {
	for _, ratio := range []struct {
		name string
		r    float64
	}{{"insertOnly", 0}, {"quarter", 0.25}, {"half", 0.5}} {
		b.Run(ratio.name, func(b *testing.B) {
			db, fs, _, aggs := benchRetailer(b, 5_000)
			ups := benchStream(b, db, 2_000, ratio.r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := fivm.NewCovarEngine(fs, aggs, nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Init(db.TupleMap()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < len(ups); j += 500 {
					k := j + 500
					if k > len(ups) {
						k = len(ups)
					}
					if err := eng.Apply(ups[j:k]); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportRate(b, len(ups))
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return itoa(n/1000) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationFactorized (A2) compares maintaining the COVAR
// gradient against maintaining the join result itself through the same
// view tree — only the ring differs.
func BenchmarkAblationFactorized(b *testing.B) {
	db, fs, _, aggs := benchRetailer(b, 5_000)
	ups := benchStream(b, db, 1_000, 0.2)

	b.Run("gradient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewCovarEngine(fs, aggs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := eng.Apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b, len(ups))
	})

	b.Run("joinResult", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			je, err := fivm.NewJoinEngine(fs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := je.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := je.Apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b, len(ups))
	})
}

// BenchmarkAblationRanged (A4) compares full-degree view payloads with
// ranged payloads (Figure 2d's RingCofactor<double, idx, cnt>): views
// carry only their own subtree's aggregates.
func BenchmarkAblationRanged(b *testing.B) {
	attrs := []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage",
		"population", "tot_area_sq_ft", "sell_area_sq_ft", "mintemp", "meanwind",
		"houseunits", "families", "households", "males", "females",
		"white", "black", "asian", "hispanic", "occupiedhouseunits"}
	db, fs, _, _ := benchRetailer(b, 5_000)
	ups := benchStream(b, db, 1_000, 0.2)

	b.Run("fullDegree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewCovarEngine(fs, attrs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := eng.Apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b, len(ups))
	})
	b.Run("ranged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewRangedCovarEngine(fs, attrs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := eng.Apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b, len(ups))
	})
}

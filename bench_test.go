// Package repro's root benchmarks regenerate the paper's quantitative
// artifacts as testing.B benchmarks, one family per experiment id in
// DESIGN.md §3. Run them all with:
//
//	go test -bench=. -benchmem
//
// The benchmark bodies live in internal/perf (the canonical suite), so
// the same measurements are runnable as machine-readable JSON via
// `fivm-bench -exp perf` and gated in CI by `fivm-bench compare` — see
// docs/PERF.md. These wrappers keep the familiar go-test names; each
// reports updates/sec via b.ReportMetric so the shapes in
// EXPERIMENTS.md can be re-derived from a single run.
package repro

import (
	"testing"

	"repro/internal/perf"
)

// --- E1: Figure 1 toy maintenance -------------------------------------------

// BenchmarkE1Figure1Delta measures one δR maintenance step on the
// Figure 1 toy database under the degree-3 COVAR ring.
func BenchmarkE1Figure1Delta(b *testing.B) { perf.Named("E1Figure1Delta")(b) }

// --- E2: throughput, F-IVM vs baselines -------------------------------------

// BenchmarkE2FIVM maintains the 21-aggregate COVAR payload over the
// 5-way Retailer join with F-IVM's factorized ring maintenance.
func BenchmarkE2FIVM(b *testing.B) { perf.Named("E2FIVM")(b) }

// BenchmarkE2FlatIVM maintains the same aggregates with the
// DBToaster-style flat first-order baseline.
func BenchmarkE2FlatIVM(b *testing.B) { perf.Named("E2FlatIVM")(b) }

// BenchmarkE2Reeval recomputes from scratch per batch.
func BenchmarkE2Reeval(b *testing.B) { perf.Named("E2Reeval")(b) }

// BenchmarkE2CompoundCategorical maintains the mixed categorical
// payload (thousands of one-hot aggregates) — the configuration behind
// the paper's 10K-updates/sec claim.
func BenchmarkE2CompoundCategorical(b *testing.B) { perf.Named("E2CompoundCategorical")(b) }

// --- E7: sweeps -------------------------------------------------------------

// BenchmarkE7BatchSize sweeps the update bulk size.
func BenchmarkE7BatchSize(b *testing.B) { perf.RunGroup(b, "E7BatchSize") }

// BenchmarkE7AggCount sweeps the COVAR degree m.
func BenchmarkE7AggCount(b *testing.B) { perf.RunGroup(b, "E7AggCount") }

// --- Update-latency scaling ---------------------------------------------------

// BenchmarkUpdateLatencyScaling measures steady-state single-tuple
// ApplyDelta latency against pre-loaded Retailer bases of 1k/10k/100k
// fact rows, per engine kind. With the persistent join-key view indexes
// the latency must stay ~flat across the sweep — the paper's
// delta-proportional maintenance bound (docs/PERF.md).
func BenchmarkUpdateLatencyScaling(b *testing.B) { perf.RunGroup(b, "UpdateLatencyScaling") }

// --- E8: parallel delta propagation -----------------------------------------

// BenchmarkE8Workers sweeps the delta-propagation worker count on the
// Retailer batch stream; workers=1 is the sequential baseline (see the
// suite docs in internal/perf for the single- vs multi-core caveat).
func BenchmarkE8Workers(b *testing.B) { perf.RunGroup(b, "E8Workers") }

// BenchmarkE8WorkersCategorical is the same sweep over the heavier
// mixed categorical payload.
func BenchmarkE8WorkersCategorical(b *testing.B) { perf.RunGroup(b, "E8WorkersCategorical") }

// --- A1–A4: ablations -------------------------------------------------------

// BenchmarkAblationSharing compares the compound ring against one
// float-ring view tree per aggregate (factorized but unshared).
func BenchmarkAblationSharing(b *testing.B) { perf.RunGroup(b, "AblationSharing") }

// BenchmarkAblationDeletes sweeps the delete ratio: the rate must stay
// in the same band (deletes are just negative payloads).
func BenchmarkAblationDeletes(b *testing.B) { perf.RunGroup(b, "AblationDeletes") }

// BenchmarkAblationFactorized (A2) compares maintaining the COVAR
// gradient against maintaining the join itself through the same view
// tree — only the ring differs.
func BenchmarkAblationFactorized(b *testing.B) { perf.RunGroup(b, "AblationFactorized") }

// BenchmarkAblationRanged (A4) compares full-degree view payloads with
// ranged payloads (Figure 2d's RingCofactor<double, idx, cnt>).
func BenchmarkAblationRanged(b *testing.B) { perf.RunGroup(b, "AblationRanged") }

package repro

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/fivm"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/value"
	"repro/internal/view"
)

// benchServeServer builds a Retailer-backed serving engine at benchmark
// scale, bulk-loaded and ready for concurrent reads and ingestion.
func benchServeServer(b *testing.B, rows int) (*serve.Server, []view.Update) {
	b.Helper()
	cfg := dataset.DefaultRetailerConfig()
	cfg.InventoryRows = rows
	db := dataset.Retailer(cfg)
	var rels []fivm.RelationSpec
	for _, r := range db.Relations {
		rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: rels,
		Label:     "inventoryunits",
		Features: []fivm.FeatureSpec{
			{Attr: "inventoryunits"},
			{Attr: "prize"},
			{Attr: "avghhi"},
			{Attr: "maxtemp"},
			{Attr: "subcategory", Categorical: true},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := an.Init(db.TupleMap()); err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(an, serve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	st, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: 20_000, DeleteRatio: 0.3, Seed: 23,
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv, st.Updates
}

func reportLatencies(b *testing.B, lats []time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) == 0 {
		return
	}
	b.ReportMetric(float64(lats[len(lats)/2].Nanoseconds()), "p50-ns/read")
	b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns/read")
}

// BenchmarkServeSnapshotReads measures model-read latency against a
// live Server in two regimes: with the write path idle, and with a
// saturating background writer ingesting the update stream. Lock-free
// snapshots mean the reader p50 must not degrade when the writer runs —
// compare the p50-ns/read metric across the two sub-benchmarks.
func BenchmarkServeSnapshotReads(b *testing.B) {
	x := map[string]value.Value{
		"prize":       value.Float(10),
		"avghhi":      value.Float(60_000),
		"maxtemp":     value.Float(20),
		"subcategory": value.Int(1),
	}
	run := func(b *testing.B, ingesting bool) {
		srv, ups := benchServeServer(b, 5_000)
		defer srv.Close()
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		ingestedBatches := 0
		if ingesting {
			go func() {
				defer close(writerDone)
				// Cycle the stream followed by its negation so engine
				// state stays bounded however long the benchmark runs.
				neg := make([]view.Update, len(ups))
				for i, u := range ups {
					neg[i] = view.Update{Rel: u.Rel, Tuple: u.Tuple, Mult: -u.Mult}
				}
				for phase := 0; ; phase++ {
					stream := ups
					if phase%2 == 1 {
						stream = neg
					}
					for i := 0; i < len(stream); i += 200 {
						select {
						case <-stop:
							return
						default:
						}
						end := i + 200
						if end > len(stream) {
							end = len(stream)
						}
						if _, err := srv.Ingest(stream[i:end]); err != nil {
							return
						}
						ingestedBatches++
					}
				}
			}()
		}
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			snap := srv.Snapshot()
			if _, err := snap.Predict(x); err != nil {
				b.Fatal(err)
			}
			lats = append(lats, time.Since(t0))
		}
		b.StopTimer()
		close(stop)
		if ingesting {
			<-writerDone
			if err := srv.Close(); err != nil { // drain, then final publish
				b.Fatal(err)
			}
			v := srv.Snapshot().Version
			if ingestedBatches > 0 && v < 2 {
				b.Fatalf("writer made no progress (snapshot version %d after %d batches)", v, ingestedBatches)
			}
			b.ReportMetric(float64(v), "snapshots")
		}
		reportLatencies(b, lats)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/sec")
	}
	b.Run("idle-writer", func(b *testing.B) { run(b, false) })
	b.Run("active-writer", func(b *testing.B) { run(b, true) })
}

// BenchmarkServeIngestWorkers measures batched write-path throughput
// through the full pipeline with parallel delta propagation at 1/2/4/8
// workers: shards feed raw updates straight into the delta build, and
// the writer's ApplyBuilt hash-partitions each delta across the worker
// pool. Batches of 1000 keep the coalesced deltas above the view
// layer's parallel threshold.
func BenchmarkServeIngestWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := dataset.DefaultRetailerConfig()
			cfg.InventoryRows = 5_000
			db := dataset.Retailer(cfg)
			var rels []fivm.RelationSpec
			for _, r := range db.Relations {
				rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
			}
			an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
				Relations: rels,
				Features: []fivm.FeatureSpec{
					{Attr: "inventoryunits"},
					{Attr: "prize"},
					{Attr: "avghhi"},
					{Attr: "subcategory", Categorical: true},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			an.SetParallelism(workers)
			if err := an.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			srv, err := serve.New(an, serve.Config{})
			if err != nil {
				b.Fatal(err)
			}
			st, err := dataset.NewStream(db, dataset.StreamConfig{
				Relation: "Inventory", Total: 20_000, DeleteRatio: 0.3, Seed: 23,
			})
			if err != nil {
				b.Fatal(err)
			}
			ups := st.Updates
			const batch = 1000
			b.ResetTimer()
			sent := 0
			for i := 0; i < b.N; i++ {
				lo := (i * batch) % len(ups)
				hi := lo + batch
				if hi > len(ups) {
					hi = len(ups)
				}
				if _, err := srv.Ingest(ups[lo:hi]); err != nil {
					b.Fatal(err)
				}
				sent += hi - lo
			}
			if err := srv.Close(); err != nil { // drain everything accepted
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "updates/sec")
		})
	}
}

// BenchmarkServeIngest measures write-path throughput through the full
// pipeline (shard -> coalesce -> delta -> apply -> snapshot publish).
func BenchmarkServeIngest(b *testing.B) {
	srv, ups := benchServeServer(b, 5_000)
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		if i%(2*len(ups)) >= len(ups) {
			u.Mult = -u.Mult // undo phase keeps state bounded
		}
		if _, err := srv.Ingest([]view.Update{u}); err != nil {
			b.Fatal(err)
		}
	}
	done, err := srv.Ingest(nil)
	_ = done
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(float64(st.Applied)/b.Elapsed().Seconds(), "updates/sec")
	b.ReportMetric(float64(st.Batches), "batches")
}

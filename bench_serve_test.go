package repro

import (
	"testing"

	"repro/internal/perf"
)

// The serving benchmarks' bodies live in internal/perf alongside the
// maintenance suite, so fivm-bench can emit them as JSON and CI can
// gate them; see docs/PERF.md.

// BenchmarkServeSnapshotReads measures model-read latency against a
// live Server in two regimes: with the write path idle, and with a
// saturating background writer. Lock-free snapshots mean the reader
// p50 must not degrade when the writer runs — compare the p50-ns/read
// metric across the two sub-benchmarks.
func BenchmarkServeSnapshotReads(b *testing.B) { perf.RunGroup(b, "ServeSnapshotReads") }

// BenchmarkServeIngestWorkers measures batched write-path throughput
// through the full pipeline with parallel delta propagation.
func BenchmarkServeIngestWorkers(b *testing.B) { perf.RunGroup(b, "ServeIngestWorkers") }

// BenchmarkServeIngest measures write-path throughput through the full
// pipeline (shard -> coalesce -> delta -> apply -> snapshot publish).
func BenchmarkServeIngest(b *testing.B) { perf.Named("ServeIngest")(b) }

// BenchmarkClusterIngest measures end-to-end write throughput through
// the fivm-cluster router with N in-process worker shards; shards1 is
// the single-worker baseline with identical routing overhead, so the
// shards4/shards1 ratio is the sharding speedup `fivm-bench
// clustercheck` gates in CI.
func BenchmarkClusterIngest(b *testing.B) { perf.RunGroup(b, "ClusterIngest") }

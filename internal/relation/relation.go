package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ring"
	"repro/internal/value"
)

// Map is a relation over a fixed key schema with payloads in V. Tuples
// with payload equal to the ring zero are not stored. Map is not safe
// for concurrent mutation.
type Map[V any] struct {
	schema value.Schema
	data   map[string]entry[V]
}

type entry[V any] struct {
	tuple   value.Tuple
	payload V
}

// New returns an empty relation over the given key schema.
func New[V any](schema value.Schema) *Map[V] {
	return &Map[V]{schema: schema, data: make(map[string]entry[V])}
}

// Schema returns the key schema.
func (m *Map[V]) Schema() value.Schema { return m.schema }

// Len returns the number of tuples with non-zero payload.
func (m *Map[V]) Len() int { return len(m.data) }

// Get returns the payload of tuple t and whether it is present.
func (m *Map[V]) Get(t value.Tuple) (V, bool) {
	e, ok := m.data[t.Encode()]
	return e.payload, ok
}

// GetOr returns the payload of t, or def when absent.
func (m *Map[V]) GetOr(t value.Tuple, def V) V {
	if e, ok := m.data[t.Encode()]; ok {
		return e.payload
	}
	return def
}

// Set stores payload p for tuple t, replacing any existing payload.
// The tuple length must match the schema.
func (m *Map[V]) Set(t value.Tuple, p V) {
	if len(t) != m.schema.Len() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match schema %v", len(t), m.schema))
	}
	m.data[t.Encode()] = entry[V]{tuple: t, payload: p}
}

// Merge adds payload p to tuple t's payload under ring r, removing the
// entry if the result is the ring zero.
func (m *Map[V]) Merge(r ring.Ring[V], t value.Tuple, p V) {
	if len(t) != m.schema.Len() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match schema %v", len(t), m.schema))
	}
	k := t.Encode()
	if e, ok := m.data[k]; ok {
		s := r.Add(e.payload, p)
		if r.IsZero(s) {
			delete(m.data, k)
		} else {
			m.data[k] = entry[V]{tuple: e.tuple, payload: s}
		}
		return
	}
	if !r.IsZero(p) {
		m.data[k] = entry[V]{tuple: t, payload: p}
	}
}

// MergeAll merges every tuple of other into m under ring r. The schemas
// must be equal.
func (m *Map[V]) MergeAll(r ring.Ring[V], other *Map[V]) {
	if !m.schema.Equal(other.schema) {
		panic(fmt.Sprintf("relation: MergeAll schema mismatch %v vs %v", m.schema, other.schema))
	}
	for k, e := range other.data {
		if ex, ok := m.data[k]; ok {
			s := r.Add(ex.payload, e.payload)
			if r.IsZero(s) {
				delete(m.data, k)
			} else {
				m.data[k] = entry[V]{tuple: ex.tuple, payload: s}
			}
		} else if !r.IsZero(e.payload) {
			m.data[k] = e
		}
	}
}

// Each calls fn for every tuple/payload pair in unspecified order.
// fn must not mutate the relation.
func (m *Map[V]) Each(fn func(t value.Tuple, p V)) {
	for _, e := range m.data {
		fn(e.tuple, e.payload)
	}
}

// EachSorted calls fn in lexicographic tuple order; used by tests and
// display code that need determinism.
func (m *Map[V]) EachSorted(fn func(t value.Tuple, p V)) {
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := m.data[k]
		fn(e.tuple, e.payload)
	}
}

// Clone returns a shallow copy (payloads are shared, which is safe under
// the immutable-payload convention).
func (m *Map[V]) Clone() *Map[V] {
	out := &Map[V]{schema: m.schema, data: make(map[string]entry[V], len(m.data))}
	for k, e := range m.data {
		out.data[k] = e
	}
	return out
}

// Negate returns a copy with every payload replaced by its additive
// inverse; applied to an insert batch it yields the matching delete
// batch.
func (m *Map[V]) Negate(r ring.Ring[V]) *Map[V] {
	out := &Map[V]{schema: m.schema, data: make(map[string]entry[V], len(m.data))}
	for k, e := range m.data {
		out.data[k] = entry[V]{tuple: e.tuple, payload: r.Neg(e.payload)}
	}
	return out
}

// Equal reports whether two relations over equal schemas hold the same
// tuples with payloads equal under eq.
func (m *Map[V]) Equal(other *Map[V], eq func(a, b V) bool) bool {
	if !m.schema.Equal(other.schema) || len(m.data) != len(other.data) {
		return false
	}
	for k, e := range m.data {
		oe, ok := other.data[k]
		if !ok || !eq(e.payload, oe.payload) {
			return false
		}
	}
	return true
}

// String renders the relation sorted by tuple, one "tuple -> payload"
// pair per line.
func (m *Map[V]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v {\n", m.schema)
	m.EachSorted(func(t value.Tuple, p V) {
		fmt.Fprintf(&b, "  %v -> %v\n", t, p)
	})
	b.WriteString("}")
	return b.String()
}

package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ring"
	"repro/internal/value"
)

// Map is a relation over a fixed key schema with payloads in V. Tuples
// with payload equal to the ring zero are not stored. Map is not safe
// for concurrent mutation.
//
// Entries are stored behind pointers so the merge hot path can update a
// payload in place after a zero-allocation lookup (encoding the tuple
// into a reused scratch buffer and indexing the map with string(buf),
// which Go compiles without copying); re-assigning through the map
// would re-materialize the key string on every merge. The entry structs
// are owned by the map — Clone allocates fresh ones — while payloads
// and tuples inside them stay shared and immutable (see the package doc
// for the ownership contract).
type Map[V any] struct {
	schema value.Schema
	data   map[string]*entry[V]
	// indexes are the registered persistent join-key indexes (AddIndex),
	// maintained by every mutation path. Empty for the vast majority of
	// maps (deltas, join/aggregate outputs, scratch); the view tree
	// registers them on the materialized views and source relations that
	// delta propagation probes.
	indexes []*index[V]
	// arena slab-allocates this map's entry structs and recycles
	// annihilated ones (see alloc.go).
	arena arena[V]
	// foreign marks a map that holds entry structs owned by ANOTHER map
	// (a PartitionInto destination slot aliases the source's entries).
	// Reset on a foreign map only clears the container — recycling
	// someone else's entries into this map's arena would hand the same
	// entry out twice. The flag is sticky: once a map has aliased
	// foreign entries it never recycles on Reset again.
	foreign bool
}

type entry[V any] struct {
	tuple   value.Tuple
	payload V
	// shared marks a payload that aliases a value outside this map (an
	// input relation, a cached ring constant): the fused accumulation
	// paths of Join/Aggregate must not fold into it in place and fall
	// back to one pure Add, whose fresh result clears the flag. Entries
	// created outside those paths conservatively set it.
	shared bool
}

// New returns an empty relation over the given key schema.
func New[V any](schema value.Schema) *Map[V] {
	return &Map[V]{schema: schema, data: make(map[string]*entry[V])}
}

// Schema returns the key schema.
func (m *Map[V]) Schema() value.Schema { return m.schema }

// Len returns the number of tuples with non-zero payload.
func (m *Map[V]) Len() int { return len(m.data) }

// Reset removes every tuple while keeping the schema and the map's
// allocated capacity, so scratch relations (per-engine delta buffers,
// partition slots) can be refilled without reallocating. Payloads
// handed out earlier (e.g. merged into another relation) are
// unaffected, but the entry STRUCTS of a map that owns them are
// recycled into the map's arena for the refill — so a map must not be
// Reset while partitions of it are still in use (PartitionInto slots
// alias the source's entries; the maintenance loop clears its slots
// before the delta buffer is ever Reset). Foreign maps — partition
// slots themselves — only clear the container. Registered indexes stay
// registered and are emptied alongside the data.
func (m *Map[V]) Reset() {
	if !m.foreign {
		for _, e := range m.data {
			m.arena.recycle(e)
		}
	}
	clear(m.data)
	m.resetIndexes()
}

// Get returns the payload of tuple t and whether it is present.
func (m *Map[V]) Get(t value.Tuple) (V, bool) {
	if e, ok := m.data[t.Encode()]; ok {
		return e.payload, true
	}
	var zero V
	return zero, false
}

// GetOr returns the payload of t, or def when absent.
func (m *Map[V]) GetOr(t value.Tuple, def V) V {
	if e, ok := m.data[t.Encode()]; ok {
		return e.payload
	}
	return def
}

// Set stores payload p for tuple t, replacing any existing payload.
// The tuple length must match the schema.
func (m *Map[V]) Set(t value.Tuple, p V) {
	if len(t) != m.schema.Len() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match schema %v", len(t), m.schema))
	}
	k := t.Encode()
	if e, ok := m.data[k]; ok {
		e.payload = p
		e.shared = true
		return
	}
	e := m.newEntry(t, p, true)
	m.data[k] = e
	m.indexInsert(e)
}

// Merge adds payload p to tuple t's payload under ring r, removing the
// entry if the result is the ring zero. The addition is the pure ring
// Add — stored payloads are never mutated in place, so they may be
// shared with relation clones and published snapshots.
func (m *Map[V]) Merge(r ring.Ring[V], t value.Tuple, p V) {
	if len(t) != m.schema.Len() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match schema %v", len(t), m.schema))
	}
	var arr [64]byte
	buf := t.AppendEncode(arr[:0])
	if e, ok := m.data[string(buf)]; ok {
		s := r.Add(e.payload, p)
		if r.IsZero(s) {
			delete(m.data, string(buf))
			m.indexRemove(e)
			m.recycleEntry(e)
		} else {
			e.payload = s
			e.shared = true
		}
		return
	}
	if !r.IsZero(p) {
		e := m.newEntry(t, p, true)
		m.data[string(buf)] = e
		m.indexInsert(e)
	}
}

// MergeAll merges every tuple of other into m under ring r. The schemas
// must be equal. Like Merge it uses the pure ring Add; other's entries
// are only read (m allocates its own entry structs on insert, so later
// in-place updates of m never reach through to other).
func (m *Map[V]) MergeAll(r ring.Ring[V], other *Map[V]) {
	if !m.schema.Equal(other.schema) {
		panic(fmt.Sprintf("relation: MergeAll schema mismatch %v vs %v", m.schema, other.schema))
	}
	for k, e := range other.data {
		if ex, ok := m.data[k]; ok {
			s := r.Add(ex.payload, e.payload)
			if r.IsZero(s) {
				delete(m.data, k)
				m.indexRemove(ex)
				m.recycleEntry(ex)
			} else {
				ex.payload = s
			}
		} else if !r.IsZero(e.payload) {
			ne := m.newEntry(e.tuple, e.payload, true)
			m.data[k] = ne
			m.indexInsert(ne)
		}
	}
}

// Each calls fn for every tuple/payload pair in unspecified order.
// fn must not mutate the relation.
func (m *Map[V]) Each(fn func(t value.Tuple, p V)) {
	for _, e := range m.data {
		fn(e.tuple, e.payload)
	}
}

// EachSorted calls fn in lexicographic tuple order; used by tests and
// display code that need determinism.
func (m *Map[V]) EachSorted(fn func(t value.Tuple, p V)) {
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := m.data[k]
		fn(e.tuple, e.payload)
	}
}

// Clone returns a copy with fresh entry structs; payloads are shared,
// which is safe under the immutable-payload convention (stored payloads
// are only ever replaced, never mutated). Secondary indexes are not
// copied — re-register with AddIndex on the clone when needed.
func (m *Map[V]) Clone() *Map[V] {
	out := &Map[V]{schema: m.schema, data: make(map[string]*entry[V], len(m.data))}
	for k, e := range m.data {
		out.data[k] = out.newEntry(e.tuple, e.payload, true)
	}
	return out
}

// Negate returns a copy with every payload replaced by its additive
// inverse; applied to an insert batch it yields the matching delete
// batch.
func (m *Map[V]) Negate(r ring.Ring[V]) *Map[V] {
	out := &Map[V]{schema: m.schema, data: make(map[string]*entry[V], len(m.data))}
	for k, e := range m.data {
		out.data[k] = out.newEntry(e.tuple, r.Neg(e.payload), true)
	}
	return out
}

// Equal reports whether two relations over equal schemas hold the same
// tuples with payloads equal under eq.
func (m *Map[V]) Equal(other *Map[V], eq func(a, b V) bool) bool {
	if !m.schema.Equal(other.schema) || len(m.data) != len(other.data) {
		return false
	}
	for k, e := range m.data {
		oe, ok := other.data[k]
		if !ok || !eq(e.payload, oe.payload) {
			return false
		}
	}
	return true
}

// String renders the relation sorted by tuple, one "tuple -> payload"
// pair per line.
func (m *Map[V]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v {\n", m.schema)
	m.EachSorted(func(t value.Tuple, p V) {
		fmt.Fprintf(&b, "  %v -> %v\n", t, p)
	})
	b.WriteString("}")
	return b.String()
}

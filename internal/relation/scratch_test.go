package relation

import (
	"math/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

// pureRing hides a ring's Scratch/FMA extensions behind a plain
// ring.Ring interface: type assertions in Join/Aggregate fail against
// it, forcing the pure Add/Mul path. Comparing both paths on the same
// inputs pins the merge contract at the relation layer: the fused
// scratch path must produce bit-identical relations.
type pureRing[V any] struct{ r ring.Ring[V] }

func (p pureRing[V]) Zero() V         { return p.r.Zero() }
func (p pureRing[V]) One() V          { return p.r.One() }
func (p pureRing[V]) Add(a, b V) V    { return p.r.Add(a, b) }
func (p pureRing[V]) Mul(a, b V) V    { return p.r.Mul(a, b) }
func (p pureRing[V]) Neg(a V) V       { return p.r.Neg(a) }
func (p pureRing[V]) IsZero(a V) bool { return p.r.IsZero(a) }

func randCovarRelation(rnd *rand.Rand, r ring.CovarRing, schema value.Schema, n int) *Map[*ring.Covar] {
	m := New[*ring.Covar](schema)
	for i := 0; i < n; i++ {
		t := make(value.Tuple, schema.Len())
		for j := range t {
			t[j] = value.Int(int64(rnd.Intn(4)))
		}
		c := r.One()
		c.C = float64(rnd.Intn(7) - 3)
		for k := range c.S {
			c.S[k] = float64(rnd.Intn(7) - 3)
		}
		for k := range c.Q {
			c.Q[k] = float64(rnd.Intn(7) - 3)
		}
		m.Merge(r, t, c)
	}
	return m
}

// TestJoinAggregateFusedMatchesPure joins and aggregates random
// covar-payload relations through both the fused (Scratch/FMA) and the
// pure path and requires bit-identical results. Integer-valued data
// keeps float sums exact, so even the float components must match
// exactly.
func TestJoinAggregateFusedMatchesPure(t *testing.T) {
	cr := ring.NewCovarRing(3)
	pure := pureRing[*ring.Covar]{r: cr}
	left := value.NewSchema("A", "B")
	right := value.NewSchema("A", "C")
	eq := func(a, b *ring.Covar) bool { return a.Equal(b) }
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		l := randCovarRelation(rnd, cr, left, 2+rnd.Intn(20))
		r := randCovarRelation(rnd, cr, right, 2+rnd.Intn(20))

		fused := Join[*ring.Covar](cr, l, r)
		plain := Join[*ring.Covar](pure, l, r)
		if !fused.Equal(plain, eq) {
			t.Fatalf("fused join differs from pure join:\n%v\nvs\n%v", fused, plain)
		}

		lift := cr.Lift(0)
		aggF := Aggregate[*ring.Covar](cr, fused, value.NewSchema("A"), "B", lift)
		aggP := Aggregate[*ring.Covar](pure, plain, value.NewSchema("A"), "B", lift)
		if !aggF.Equal(aggP, eq) {
			t.Fatalf("fused aggregate differs from pure aggregate:\n%v\nvs\n%v", aggF, aggP)
		}

		// No-lift aggregation exercises the shared-payload copy-on-write.
		nlF := Aggregate[*ring.Covar](cr, fused, value.NewSchema("B"), "", nil)
		nlP := Aggregate[*ring.Covar](pure, plain, value.NewSchema("B"), "", nil)
		if !nlF.Equal(nlP, eq) {
			t.Fatalf("fused no-lift aggregate differs from pure:\n%v\nvs\n%v", nlF, nlP)
		}

		// The inputs must come out untouched by either path (the fused
		// accumulation may only ever mutate values it created).
		lAgain := Join[*ring.Covar](pure, l, r)
		if !lAgain.Equal(plain, eq) {
			t.Fatal("join inputs were mutated by a previous join")
		}
	}
}

package relation

import "repro/internal/value"

// fnv1a hashes s with the 64-bit FNV-1a function. Inlined rather than
// importing hash/fnv to keep the per-tuple partitioning cost at zero
// allocations.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Partition splits m into n relations by hashing each tuple's projection
// onto the attribute positions keyIdx (as produced by Schema.Project).
// Tuples that agree on the key land in the same partition, so the
// partitions of a delta relation touch disjoint key ranges of any view
// grouped by (a superset of) the key. An empty keyIdx hashes the full
// tuple, which still yields a valid — merely key-oblivious — split.
//
// The partitions share payloads with m (no cloning; payloads are
// immutable under ring operations) and their union is exactly m. Slots
// for which no tuple hashes may be empty relations; callers typically
// skip those.
func (m *Map[V]) Partition(n int, keyIdx []int) []*Map[V] {
	if n < 1 {
		n = 1
	}
	out := make([]*Map[V], n)
	for i := range out {
		out[i] = New[V](m.schema)
	}
	if n == 1 {
		for k, e := range m.data {
			out[0].data[k] = e
		}
		return out
	}
	for k, e := range m.data {
		var h uint64
		if len(keyIdx) == 0 {
			h = fnv1a(k)
		} else {
			h = fnv1a(e.tuple.EncodeProject(keyIdx))
		}
		p := out[h%uint64(n)]
		p.data[k] = e
	}
	return out
}

// PartitionKey returns the positions of the attributes of key that occur
// in m's schema — the projection to hash on when partitioning a delta by
// a join key that may only partially overlap the relation's schema.
func (m *Map[V]) PartitionKey(key value.Schema) []int {
	idx := make([]int, 0, key.Len())
	for _, a := range key.Attrs() {
		if j := m.schema.Index(a); j >= 0 {
			idx = append(idx, j)
		}
	}
	return idx
}

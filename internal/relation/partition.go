package relation

import "repro/internal/value"

// fnv1a hashes b with the 64-bit FNV-1a function. Inlined rather than
// importing hash/fnv to keep the per-tuple partitioning cost at zero
// allocations.
func fnv1a[T string | []byte](b T) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// Partition splits m into n relations by hashing each tuple's projection
// onto the attribute positions keyIdx (as produced by Schema.Project).
// Tuples that agree on the key land in the same partition, so the
// partitions of a delta relation touch disjoint key ranges of any view
// grouped by (a superset of) the key. An empty keyIdx hashes the full
// tuple, which still yields a valid — merely key-oblivious — split.
//
// The partitions share entries with m (no cloning; payloads are
// immutable under ring operations and partitions are read-only). Their
// union is exactly m. Slots for which no tuple hashes may be empty
// relations; callers typically skip those.
//
// Partition fills run below the index-maintenance layer, so an indexed
// map must never be used as a destination slot — PartitionInto panics
// on one rather than leave a registered index silently out of sync
// with the refilled contents.
func (m *Map[V]) Partition(n int, keyIdx []int) []*Map[V] {
	if n < 1 {
		n = 1
	}
	return m.PartitionInto(make([]*Map[V], n), keyIdx)
}

// PartitionInto is Partition writing into caller-provided slots, the
// scratch-reuse form: nil slots (or slots over a different schema) are
// freshly allocated, existing ones are Reset and refilled, so a
// maintenance loop partitions every delta into the same recycled maps.
// The caller must be done with the previous round's contents.
func (m *Map[V]) PartitionInto(out []*Map[V], keyIdx []int) []*Map[V] {
	for i, p := range out {
		if p == nil || !p.schema.Equal(m.schema) {
			out[i] = New[V](m.schema)
		} else {
			if len(p.indexes) != 0 {
				// Partition fills write entries directly, bypassing index
				// maintenance; a probed-but-stale index would silently
				// drop join matches, so refuse indexed slots outright.
				panic("relation: PartitionInto destination slot has registered indexes")
			}
			p.Reset()
		}
		// The slots will alias m's entries; they must never recycle them
		// into their own arenas on Reset (see Map.foreign).
		out[i].foreign = true
	}
	n := len(out)
	if n == 1 {
		for k, e := range m.data {
			out[0].data[k] = e
		}
		return out
	}
	var kbuf []byte
	for k, e := range m.data {
		var h uint64
		if len(keyIdx) == 0 {
			// The map key is the full encoded tuple, so hashing it is
			// HashTuple's empty-key form without re-encoding.
			h = fnv1a(k)
		} else {
			h, kbuf = HashTuple(e.tuple, keyIdx, kbuf)
		}
		p := out[h%uint64(n)]
		p.data[k] = e
	}
	return out
}

// HashTuple returns the partition hash Partition/PartitionInto compute
// for t: FNV-1a over the tuple's encoded projection onto keyIdx, or over
// the full encoded tuple when keyIdx is empty (the same bytes as the
// map key, so both forms agree with PartitionInto's fast path). buf is
// optional scratch; the possibly-grown buffer is returned for reuse.
//
// It is exported so an out-of-process shard map (internal/cluster)
// routes an update to the same shard the engine's internal partitioner
// would pick: owner = HashTuple(t, keyIdx, buf) % shards.
func HashTuple(t value.Tuple, keyIdx []int, buf []byte) (uint64, []byte) {
	if len(keyIdx) == 0 {
		buf = t.AppendEncode(buf[:0])
	} else {
		buf = t.AppendEncodeProject(buf[:0], keyIdx)
	}
	return fnv1a(buf), buf
}

// PartitionKey returns the positions of the attributes of key that occur
// in m's schema — the projection to hash on when partitioning a delta by
// a join key that may only partially overlap the relation's schema.
func (m *Map[V]) PartitionKey(key value.Schema) []int {
	idx := make([]int, 0, key.Len())
	for _, a := range key.Attrs() {
		if j := m.schema.Index(a); j >= 0 {
			idx = append(idx, j)
		}
	}
	return idx
}

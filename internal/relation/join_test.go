package relation

import (
	"math/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

func TestJoinNatural(t *testing.T) {
	z := ring.Ints{}
	r := New[int64](s("A", "B"))
	r.Merge(z, value.T("a1", 1), 1)
	r.Merge(z, value.T("a2", 2), 2)
	sRel := New[int64](s("A", "C"))
	sRel.Merge(z, value.T("a1", 10), 3)
	sRel.Merge(z, value.T("a1", 11), 1)
	sRel.Merge(z, value.T("a3", 12), 1)

	j := Join[int64](z, r, sRel)
	if !j.Schema().Equal(s("A", "B", "C")) {
		t.Fatalf("join schema = %v", j.Schema())
	}
	if j.Len() != 2 {
		t.Fatalf("join size = %d: %v", j.Len(), j)
	}
	if got, _ := j.Get(value.T("a1", 1, 10)); got != 3 {
		t.Errorf("payload (a1,1,10) = %d, want 1*3", got)
	}
	if got, _ := j.Get(value.T("a1", 1, 11)); got != 1 {
		t.Errorf("payload (a1,1,11) = %d", got)
	}
}

func TestJoinCartesian(t *testing.T) {
	z := ring.Ints{}
	a := New[int64](s("A"))
	a.Merge(z, value.T(1), 2)
	a.Merge(z, value.T(2), 1)
	b := New[int64](s("B"))
	b.Merge(z, value.T("x"), 3)
	j := Join[int64](z, a, b)
	if j.Len() != 2 {
		t.Fatalf("cartesian size = %d", j.Len())
	}
	if got, _ := j.Get(value.T(1, "x")); got != 6 {
		t.Errorf("payload = %d, want 6", got)
	}
}

func TestJoinEmptyOperand(t *testing.T) {
	z := ring.Ints{}
	a := New[int64](s("A"))
	a.Merge(z, value.T(1), 1)
	empty := New[int64](s("A", "B"))
	if j := Join[int64](z, a, empty); j.Len() != 0 {
		t.Error("join with empty not empty")
	}
	if j := Join[int64](z, empty, a); j.Len() != 0 {
		t.Error("join with empty (swapped) not empty")
	}
}

func TestJoinSameSchema(t *testing.T) {
	// Joining two relations over the identical schema intersects them.
	z := ring.Ints{}
	a := New[int64](s("A"))
	a.Merge(z, value.T(1), 2)
	a.Merge(z, value.T(2), 1)
	b := New[int64](s("A"))
	b.Merge(z, value.T(2), 5)
	j := Join[int64](z, a, b)
	if j.Len() != 1 {
		t.Fatalf("size = %d", j.Len())
	}
	if got, _ := j.Get(value.T(2)); got != 5 {
		t.Errorf("payload = %d", got)
	}
}

// naiveJoin is an O(n·m) reference implementation used by the property
// test below.
func naiveJoin(z ring.Ints, left, right *Map[int64]) *Map[int64] {
	out := New[int64](left.Schema().Union(right.Schema()))
	common := left.Schema().Intersect(right.Schema())
	li := left.Schema().MustProject(common)
	ri := right.Schema().MustProject(common)
	extra := right.Schema().Minus(left.Schema())
	re := right.Schema().MustProject(extra)
	left.Each(func(lt value.Tuple, lp int64) {
		right.Each(func(rt value.Tuple, rp int64) {
			if !lt.Project(li).Equal(rt.Project(ri)) {
				return
			}
			out.Merge(z, lt.Concat(rt.Project(re)), lp*rp)
		})
	})
	return out
}

func TestJoinMatchesNaiveOnRandomInputs(t *testing.T) {
	z := ring.Ints{}
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		left := New[int64](s("A", "B"))
		right := New[int64](s("B", "C"))
		for i := 0; i < rng.Intn(12); i++ {
			left.Merge(z, value.T(rng.Intn(4), rng.Intn(4)), int64(rng.Intn(5)-2))
		}
		for i := 0; i < rng.Intn(12); i++ {
			right.Merge(z, value.T(rng.Intn(4), rng.Intn(4)), int64(rng.Intn(5)-2))
		}
		fast := Join[int64](z, left, right)
		slow := naiveJoin(z, left, right)
		if !fast.Equal(slow, func(a, b int64) bool { return a == b }) {
			t.Fatalf("iter %d:\nleft=%v\nright=%v\nfast=%v\nslow=%v", iter, left, right, fast, slow)
		}
	}
}

func TestJoinBuildSideSwapKeepsProductOrder(t *testing.T) {
	// With a non-commutative payload product (the raw relational ring),
	// Join must always compute left-payload × right-payload, whichever
	// side it indexes.
	var rel ring.Relational
	mk := func(n int, key string) *Map[ring.RelVal] {
		m := New[ring.RelVal](s("A"))
		for i := 0; i < n; i++ {
			m.Merge(rel, value.T(i), ring.RelVal{value.T(key).Encode(): 1})
		}
		return m
	}
	// Make left smaller than right, then vice versa.
	for _, sizes := range [][2]int{{1, 3}, {3, 1}} {
		left := mk(sizes[0], "L")
		right := mk(sizes[1], "R")
		j := Join[ring.RelVal](rel, left, right)
		j.Each(func(tp value.Tuple, p ring.RelVal) {
			if p.Get(value.T("L", "R")) != 1 {
				t.Fatalf("sizes %v: payload %v, want key (L,R)", sizes, p)
			}
		})
	}
}

func TestAggregateGroupBy(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A", "B"))
	m.Merge(z, value.T("x", 1), 1)
	m.Merge(z, value.T("x", 2), 2)
	m.Merge(z, value.T("y", 3), 5)
	g := Aggregate[int64](z, m, s("A"), "", nil)
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	if got, _ := g.Get(value.T("x")); got != 3 {
		t.Errorf("group x = %d", got)
	}
	if got, _ := g.Get(value.T("y")); got != 5 {
		t.Errorf("group y = %d", got)
	}
}

func TestAggregateWithLift(t *testing.T) {
	f := ring.Floats{}
	m := New[float64](s("A", "B"))
	m.Merge(f, value.T("x", 2), 1)
	m.Merge(f, value.T("x", 3), 1)
	g := Aggregate[float64](f, m, s("A"), "B", ring.IdentityLift)
	if got, _ := g.Get(value.T("x")); got != 5 {
		t.Errorf("SUM(B) group x = %v", got)
	}
	sq := Aggregate[float64](f, m, s("A"), "B", ring.SquareLift)
	if got, _ := sq.Get(value.T("x")); got != 13 {
		t.Errorf("SUM(B*B) group x = %v", got)
	}
}

func TestAggregateToEmptySchema(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A"))
	m.Merge(z, value.T(1), 2)
	m.Merge(z, value.T(2), 3)
	g := Aggregate[int64](z, m, s(), "", nil)
	if got, _ := g.Get(value.Tuple{}); got != 5 {
		t.Errorf("total = %d", got)
	}
}

func TestAggregateLiftAttrMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	z := ring.Ints{}
	m := New[int64](s("A"))
	Aggregate[int64](z, m, s(), "Z", ring.CountLift)
}

func TestAggregateCancellation(t *testing.T) {
	// Groups whose payloads cancel must vanish from the output.
	z := ring.Ints{}
	m := New[int64](s("A", "B"))
	m.Merge(z, value.T("x", 1), 2)
	m.Merge(z, value.T("x", 2), -2)
	g := Aggregate[int64](z, m, s("A"), "", nil)
	if g.Len() != 0 {
		t.Errorf("cancelled group survived: %v", g)
	}
}

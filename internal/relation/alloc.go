package relation

import "repro/internal/value"

// Entry slab sizing: the first chunk is small so the many short-lived
// delta/join/aggregate output maps of single-tuple maintenance pay for
// one or two entries, not a page; chunks double up to the cap so bulk
// loads and large batches amortize to one allocation per entrySlabMax
// entries.
const (
	entrySlabMin = 8
	entrySlabMax = 512
)

// arena is a per-Map slab allocator for entry structs. Entries are
// handed out from chunked backing arrays (one allocation per chunk
// instead of one per entry) and recycled through a free list when they
// are annihilated — a payload reaching the ring zero under Merge,
// MergeAll, or the Join/Aggregate fold — or when an owning map is
// Reset. Recycling is safe exactly because annihilation and Reset are
// the points where the map relinquishes an entry: the ownership
// contract (package doc) says entry structs never escape their map —
// Clone and MergeAll copy into fresh ones, and index postings are
// unregistered before the entry is recycled. Payloads and tuples are
// NOT recycled: recycle only drops the entry's references to them, so
// payload values shared with snapshots and clones are untouched.
//
// The arena is owned by its Map and inherits the map's write contract:
// mutation is single-writer (under the per-map commit lock on the
// parallel path), so the arena needs no synchronization of its own.
type arena[V any] struct {
	slab []entry[V] // tail of the current chunk; entries are sliced off the front
	free []*entry[V]
	// grow is the next chunk size, doubling from entrySlabMin to
	// entrySlabMax.
	grow int
}

// newEntry returns an initialized entry, reusing a recycled one when
// available and carving from the current slab chunk otherwise.
func (a *arena[V]) newEntry(t value.Tuple, p V, shared bool) *entry[V] {
	if n := len(a.free); n > 0 {
		e := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		e.tuple, e.payload, e.shared = t, p, shared
		return e
	}
	if len(a.slab) == 0 {
		if a.grow < entrySlabMin {
			a.grow = entrySlabMin
		}
		a.slab = make([]entry[V], a.grow)
		if a.grow < entrySlabMax {
			a.grow *= 2
		}
	}
	e := &a.slab[0]
	a.slab = a.slab[1:]
	e.tuple, e.payload, e.shared = t, p, shared
	return e
}

// recycle returns an entry the map no longer stores to the free list,
// dropping its tuple and payload references so a parked entry pins
// nothing. Callers must have removed the entry from the primary map and
// every built index first (indexRemove reads e.tuple).
func (a *arena[V]) recycle(e *entry[V]) {
	var zero V
	e.tuple, e.payload, e.shared = nil, zero, false
	a.free = append(a.free, e)
}

// newEntry allocates an entry owned by m from its slab arena.
func (m *Map[V]) newEntry(t value.Tuple, p V, shared bool) *entry[V] {
	return m.arena.newEntry(t, p, shared)
}

// recycleEntry parks an entry m owns for reuse by a later insert.
func (m *Map[V]) recycleEntry(e *entry[V]) {
	m.arena.recycle(e)
}

package relation

import (
	"fmt"
	"sort"
	"strings"
)

// VerifyIndexes exhaustively cross-checks every BUILT secondary index
// against the primary map: the postings must partition exactly the live
// entries grouped by their projected key, the O(1)-removal position
// table must mirror the postings, and no empty bucket may linger. It is
// a test/debug facility (O(entries × indexes)): the equivalence suites
// call it after maintenance — in particular after concurrent
// parallel-commit maintenance — to prove the indexes stayed consistent.
// Unbuilt indexes are skipped (they have no state to check).
func (m *Map[V]) VerifyIndexes() error {
	for _, ix := range m.indexes {
		if !ix.built {
			continue
		}
		if len(ix.pos) != len(m.data) {
			return fmt.Errorf("relation: index %v position table has %d entries, map has %d", ix.proj, len(ix.pos), len(m.data))
		}
		// Every live entry must sit in exactly the bucket of its
		// projected key, at the slot the position table claims.
		var kbuf []byte
		total := 0
		for pk, e := range m.data {
			kbuf = e.tuple.AppendEncodeProject(kbuf[:0], ix.proj)
			p, ok := ix.data[string(kbuf)]
			if !ok {
				return fmt.Errorf("relation: index %v missing bucket for live tuple %v", ix.proj, e.tuple)
			}
			s, ok := ix.pos[e]
			if !ok {
				return fmt.Errorf("relation: index %v missing position for live tuple %v (key %q)", ix.proj, e.tuple, pk)
			}
			if s.p != p || s.i < 0 || s.i >= len(p.entries) || p.entries[s.i] != e {
				return fmt.Errorf("relation: index %v position for tuple %v does not point back at its posting", ix.proj, e.tuple)
			}
			total++
		}
		// The buckets in turn must hold nothing beyond the live entries:
		// with the per-entry slots verified, equal counts and no empty
		// buckets pin the postings to exactly the live set.
		n := 0
		for k, p := range ix.data {
			if len(p.entries) == 0 {
				return fmt.Errorf("relation: index %v retains empty bucket %q", ix.proj, k)
			}
			n += len(p.entries)
		}
		if n != total {
			return fmt.Errorf("relation: index %v postings hold %d entries, map has %d", ix.proj, n, total)
		}
	}
	return nil
}

// IndexDumps renders every BUILT index deterministically — one string
// per index, keyed by its projection — so tests can assert that two
// independently maintained maps carry bit-identical index postings.
// Buckets are sorted by projected key and bucket contents by tuple
// encoding, removing the (irrelevant) insertion-order nondeterminism of
// the postings lists. Unbuilt indexes are omitted: laziness makes the
// built SET depend on which probes ran, so callers compare dumps for
// the projections present on both sides (and rely on VerifyIndexes to
// tie every built index to the primary contents).
func (m *Map[V]) IndexDumps() map[string]string {
	out := make(map[string]string)
	for _, ix := range m.indexes {
		if !ix.built {
			continue
		}
		keys := make([]string, 0, len(ix.data))
		for k := range ix.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			p := ix.data[k]
			lines := make([]string, 0, len(p.entries))
			for _, e := range p.entries {
				lines = append(lines, fmt.Sprintf("%v -> %v", e.tuple, e.payload))
			}
			sort.Strings(lines)
			fmt.Fprintf(&b, "%q: %s\n", k, strings.Join(lines, "; "))
		}
		out[fmt.Sprintf("%v", ix.proj)] = b.String()
	}
	return out
}

package relation

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

func s(attrs ...string) value.Schema { return value.NewSchema(attrs...) }

func TestMapBasics(t *testing.T) {
	m := New[int64](s("A", "B"))
	if m.Len() != 0 {
		t.Error("new map not empty")
	}
	m.Set(value.T(1, "x"), 5)
	if m.Len() != 1 {
		t.Error("Len after Set")
	}
	if got, ok := m.Get(value.T(1, "x")); !ok || got != 5 {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := m.Get(value.T(2, "x")); ok {
		t.Error("Get of absent tuple succeeded")
	}
	if got := m.GetOr(value.T(9, "z"), -1); got != -1 {
		t.Errorf("GetOr default = %v", got)
	}
	m.Set(value.T(1, "x"), 7)
	if got, _ := m.Get(value.T(1, "x")); got != 7 {
		t.Error("Set did not replace")
	}
}

func TestMapArityPanics(t *testing.T) {
	m := New[int64](s("A", "B"))
	for _, fn := range []func(){
		func() { m.Set(value.T(1), 1) },
		func() { m.Merge(ring.Ints{}, value.T(1, 2, 3), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on arity mismatch")
				}
			}()
			fn()
		}()
	}
}

func TestMergeCancellation(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A"))
	m.Merge(z, value.T(1), 2)
	m.Merge(z, value.T(1), 3)
	if got, _ := m.Get(value.T(1)); got != 5 {
		t.Errorf("merged payload = %d", got)
	}
	m.Merge(z, value.T(1), -5)
	if m.Len() != 0 {
		t.Error("cancelled tuple not removed")
	}
	// Merging an explicit zero must not create an entry.
	m.Merge(z, value.T(2), 0)
	if m.Len() != 0 {
		t.Error("zero payload created an entry")
	}
}

func TestMergeAll(t *testing.T) {
	z := ring.Ints{}
	a := New[int64](s("A"))
	a.Merge(z, value.T(1), 1)
	a.Merge(z, value.T(2), 2)
	b := New[int64](s("A"))
	b.Merge(z, value.T(2), -2)
	b.Merge(z, value.T(3), 3)
	a.MergeAll(z, b)
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2: %v", a.Len(), a)
	}
	if got, _ := a.Get(value.T(1)); got != 1 {
		t.Error("tuple 1 perturbed")
	}
	if _, ok := a.Get(value.T(2)); ok {
		t.Error("cancelled tuple 2 still present")
	}
	if got, _ := a.Get(value.T(3)); got != 3 {
		t.Error("tuple 3 missing")
	}
}

func TestMergeAllSchemaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New[int64](s("A")).MergeAll(ring.Ints{}, New[int64](s("B")))
}

func TestEachSortedDeterminism(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A"))
	for _, v := range []int{5, 3, 9, 1} {
		m.Merge(z, value.T(v), int64(v))
	}
	var order []int64
	m.EachSorted(func(tp value.Tuple, p int64) { order = append(order, tp[0].Int()) })
	want := []int64{1, 3, 5, 9}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sorted order = %v", order)
		}
	}
}

func TestCloneAndNegate(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A"))
	m.Merge(z, value.T(1), 4)
	cl := m.Clone()
	cl.Merge(z, value.T(1), 1)
	if got, _ := m.Get(value.T(1)); got != 4 {
		t.Error("Clone aliases storage")
	}
	n := m.Negate(z)
	if got, _ := n.Get(value.T(1)); got != -4 {
		t.Errorf("Negate = %d", got)
	}
	// Original untouched.
	if got, _ := m.Get(value.T(1)); got != 4 {
		t.Error("Negate mutated source")
	}
}

func TestEqual(t *testing.T) {
	z := ring.Ints{}
	eq := func(a, b int64) bool { return a == b }
	a := New[int64](s("A"))
	b := New[int64](s("A"))
	a.Merge(z, value.T(1), 1)
	b.Merge(z, value.T(1), 1)
	if !a.Equal(b, eq) {
		t.Error("equal relations unequal")
	}
	b.Merge(z, value.T(2), 2)
	if a.Equal(b, eq) {
		t.Error("different sizes equal")
	}
	c := New[int64](s("B"))
	c.Merge(z, value.T(1), 1)
	if a.Equal(c, eq) {
		t.Error("different schemas equal")
	}
}

func TestStringRendering(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A"))
	m.Merge(z, value.T(2), 1)
	m.Merge(z, value.T(1), 3)
	want := "[A] {\n  (1) -> 3\n  (2) -> 1\n}"
	if got := m.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFromTuplesBagSemantics(t *testing.T) {
	z := ring.Ints{}
	m := FromTuples[int64](z, s("A"), []value.Tuple{value.T(1), value.T(1), value.T(2)})
	if got, _ := m.Get(value.T(1)); got != 2 {
		t.Errorf("duplicate multiplicity = %d, want 2", got)
	}
	if got, _ := m.Get(value.T(2)); got != 1 {
		t.Errorf("single multiplicity = %d", got)
	}
}

package relation

import (
	"fmt"
	"slices"
	"sync"
)

// index is one persistent secondary index over a Map: the map's live
// entries grouped by the encoding of their tuple projected onto proj.
// Postings hold the same *entry pointers the primary map stores, so an
// in-place payload update (the merge hot path) needs no index work;
// only inserting a new entry and removing an annihilated one touch the
// postings. The postings list lives behind a pointer so appends and
// swap-deletes mutate it without re-materializing the key string.
//
// Indexes build LAZILY: registration (AddIndex) records only the
// projection, and the postings materialize on the first probe
// (JoinProbeWith), after which every mutation maintains them. A
// registered index that no delta source ever probes therefore costs
// nothing — neither build time nor maintenance nor memory — which
// matters because the view tree registers indexes for every possible
// delta direction while most workloads update few relations. The first
// probe may run on a concurrent propagate worker, so the build is
// guarded by a sync.Once; mutation and probing are never concurrent:
// propagation probes only OFF-path maps while commit mutates only
// ON-path ones, and concurrent commit workers serialize their
// mutations of one map — primary entries, postings, and position table
// together — under that map's merge lock (view.Node.mu).
//
// Indexes are what makes delta propagation O(|delta|): JoinProbeWith
// looks join matches up here instead of scanning the whole relation
// (see the join-key registration in view.Tree).
type index[V any] struct {
	proj []int
	once sync.Once
	// built flips true inside once. Mutators read it to skip unbuilt
	// indexes; a build always happens on a map that is off-path for the
	// delta being applied (probes read only off-path state), so it is
	// ordered before any later mutation by the end of that ApplyDelta
	// call (wg.Wait in the parallel path, program order otherwise).
	built bool
	data  map[string]*postings[V]
	// pos maps each indexed entry to its postings list and slot, so
	// annihilation removal is O(1) — no bucket scan (a skewed key's
	// bucket grows with the relation, and a delete-heavy stream must
	// not pay for its size), and no per-delete key encode or string-map
	// lookup either; the projected key is only re-encoded when a bucket
	// empties out and its map entry must go.
	pos map[*entry[V]]slot[V]
	// Postings structs are slab-allocated in chunks and recycled when a
	// bucket empties (keeping the entries slice capacity), mirroring the
	// entry arena: a churn-heavy stream creates and empties join-key
	// buckets constantly and must not pay one allocation per bucket.
	postSlab []postings[V]
	postFree []*postings[V]
}

// postingsSlabSize is the postings chunk size; buckets are only created
// on long-lived indexed maps, so a fixed mid-size chunk is fine.
const postingsSlabSize = 64

// newPostings returns a single-entry postings list, recycled or carved
// from the slab.
func (ix *index[V]) newPostings(e *entry[V]) *postings[V] {
	if n := len(ix.postFree); n > 0 {
		p := ix.postFree[n-1]
		ix.postFree[n-1] = nil
		ix.postFree = ix.postFree[:n-1]
		p.entries = append(p.entries, e)
		return p
	}
	if len(ix.postSlab) == 0 {
		ix.postSlab = make([]postings[V], postingsSlabSize)
	}
	p := &ix.postSlab[0]
	ix.postSlab = ix.postSlab[1:]
	p.entries = append(p.entries, e)
	return p
}

type postings[V any] struct {
	entries []*entry[V]
}

type slot[V any] struct {
	p *postings[V]
	i int
}

// AddIndex registers a persistent secondary index on the projection of
// the key schema onto the positions proj (as produced by
// Schema.Project). The index stays empty until the first probe
// (JoinProbeWith) materializes it from the then-current contents; from
// that point every mutation of the map maintains it incrementally.
// Registering a projection that is already registered is a no-op, so
// declaring the same index from several join plans is safe.
//
// Indexes are a property of this map object: Clone and Negate return
// unindexed copies, and callers that replace a map wholesale must
// re-register (view.Tree does so after every bulk load).
func (m *Map[V]) AddIndex(proj []int) {
	for _, p := range proj {
		if p < 0 || p >= m.schema.Len() {
			panic(fmt.Sprintf("relation: index position %d out of range for schema %v", p, m.schema))
		}
	}
	for _, ix := range m.indexes {
		if slices.Equal(ix.proj, proj) {
			return
		}
	}
	m.indexes = append(m.indexes, &index[V]{proj: slices.Clone(proj)})
}

// IndexCount returns the number of registered secondary indexes (built
// or not); exposed for tests and introspection.
func (m *Map[V]) IndexCount() int { return len(m.indexes) }

// indexOn returns the registered index whose projection equals proj,
// or nil when none matches (the JoinProbeWith fallback trigger).
func (m *Map[V]) indexOn(proj []int) *index[V] {
	for _, ix := range m.indexes {
		if slices.Equal(ix.proj, proj) {
			return ix
		}
	}
	return nil
}

// ensure materializes the index from m's current contents on first use.
// Safe for concurrent probers (the Once serializes the build and blocks
// late arrivals until it completes); must not race with mutation, which
// the Map's single-writer contract rules out.
func (ix *index[V]) ensure(m *Map[V]) {
	ix.once.Do(func() {
		ix.data = make(map[string]*postings[V], len(m.data))
		ix.pos = make(map[*entry[V]]slot[V], len(m.data))
		var kbuf []byte
		for _, e := range m.data {
			kbuf = e.tuple.AppendEncodeProject(kbuf[:0], ix.proj)
			ix.add(kbuf, e)
		}
		ix.built = true
	})
}

// add appends entry e to the bucket of the encoded projected key and
// records its slot for O(1) removal — the one place the postings
// representation is written, shared by the lazy build and indexInsert.
func (ix *index[V]) add(key []byte, e *entry[V]) {
	if p, ok := ix.data[string(key)]; ok {
		ix.pos[e] = slot[V]{p: p, i: len(p.entries)}
		p.entries = append(p.entries, e)
	} else {
		p := ix.newPostings(e)
		ix.data[string(key)] = p
		ix.pos[e] = slot[V]{p: p}
	}
}

// lookup returns the postings for the encoded projected key, nil when
// the key is unoccupied. Read-only: safe to call concurrently with
// other readers (parallel propagate workers probe sibling-view indexes
// concurrently), but not with mutation — the Map's usual single-writer
// contract.
func (ix *index[V]) lookup(key []byte) []*entry[V] {
	if p, ok := ix.data[string(key)]; ok {
		return p.entries
	}
	return nil
}

// indexInsert adds a freshly inserted entry to every built index.
// Called by the mutation paths right after storing a new entry in the
// primary map; payload-only updates never come here (the entry pointer,
// and with it every posting, stays valid). Unbuilt indexes are skipped:
// their eventual first probe captures the entry from the primary map.
func (m *Map[V]) indexInsert(e *entry[V]) {
	if len(m.indexes) == 0 {
		return
	}
	var arr [64]byte
	for _, ix := range m.indexes {
		if !ix.built {
			continue
		}
		ix.add(e.tuple.AppendEncodeProject(arr[:0], ix.proj), e)
	}
}

// indexRemove drops an annihilated entry (its payload reached the ring
// zero) from every built index, deleting join-key buckets that empty
// out so index size tracks live entries.
func (m *Map[V]) indexRemove(e *entry[V]) {
	if len(m.indexes) == 0 {
		return
	}
	var arr [64]byte
	for _, ix := range m.indexes {
		if !ix.built {
			continue
		}
		s, ok := ix.pos[e]
		if !ok {
			continue
		}
		p := s.p
		last := len(p.entries) - 1
		moved := p.entries[last]
		p.entries[s.i] = moved
		p.entries[last] = nil
		p.entries = p.entries[:last]
		if moved != e {
			ix.pos[moved] = slot[V]{p: p, i: s.i}
		}
		delete(ix.pos, e)
		if len(p.entries) == 0 {
			kbuf := e.tuple.AppendEncodeProject(arr[:0], ix.proj)
			delete(ix.data, string(kbuf))
			ix.postFree = append(ix.postFree, p)
		}
	}
}

// resetIndexes empties every built index alongside Reset, keeping the
// registrations (and recycled postings) for the refill.
func (m *Map[V]) resetIndexes() {
	for _, ix := range m.indexes {
		if ix.built {
			for _, p := range ix.data {
				for i := range p.entries {
					p.entries[i] = nil
				}
				p.entries = p.entries[:0]
				ix.postFree = append(ix.postFree, p)
			}
			clear(ix.data)
			clear(ix.pos)
		}
	}
}

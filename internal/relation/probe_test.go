package relation

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

// checkIndexConsistency asserts every registered index of m holds
// exactly the live entries of m: each entry appears exactly once under
// its projected key, and total postings equal Len. This is the
// invariant incremental maintenance (Merge/MergeAll/Set) must
// preserve through inserts, in-place updates, and annihilations.
func checkIndexConsistency[V any](t *testing.T, m *Map[V]) {
	t.Helper()
	for _, ix := range m.indexes {
		if !ix.built {
			continue
		}
		total := 0
		for key, p := range ix.data {
			if len(p.entries) == 0 {
				t.Fatalf("index %v holds empty bucket %q", ix.proj, key)
			}
			total += len(p.entries)
			for i, pe := range p.entries {
				if got, ok := ix.pos[pe]; !ok || got.i != i || got.p != p {
					t.Fatalf("index %v: entry %v at slot %d has pos %+v (present=%v)", ix.proj, pe.tuple, i, got, ok)
				}
			}
		}
		if total != m.Len() {
			t.Fatalf("index %v holds %d postings, map holds %d entries", ix.proj, total, m.Len())
		}
		if len(ix.pos) != total {
			t.Fatalf("index %v position map holds %d entries, postings hold %d", ix.proj, len(ix.pos), total)
		}
		var kbuf []byte
		for _, e := range m.data {
			kbuf = e.tuple.AppendEncodeProject(kbuf[:0], ix.proj)
			found := 0
			for _, pe := range ix.lookup(kbuf) {
				if pe == e {
					found++
				}
			}
			if found != 1 {
				t.Fatalf("index %v lists entry %v %d times, want 1", ix.proj, e.tuple, found)
			}
		}
	}
}

// probeRing bundles one ring kind with a payload generator for the
// equivalence property test. Generators produce integer-valued payloads
// so float arithmetic stays exact and "bit-identical" is literal.
type probeRing[V any] struct {
	ring ring.Ring[V]
	gen  func(rnd *rand.Rand) V
	// genRight overrides gen for the right relation's payloads; rings
	// with structured products (ranged COVAR multiplies only adjacent
	// attribute ranges) need side-specific payloads. nil means gen.
	genRight func(rnd *rand.Rand) V
}

// runProbeEquivalence drives the property: for random indexed relations
// and random deltas (inserts, updates, and full annihilations merged
// through the incremental index maintenance), JoinProbeWith equals
// JoinWith bit-for-bit, in both probe orientations, and the indexes
// stay consistent with the primary map throughout.
func runProbeEquivalence[V any](t *testing.T, pr probeRing[V]) {
	t.Helper()
	r := pr.ring
	sAB := value.NewSchema("A", "B")
	sBC := value.NewSchema("B", "C")
	plan := PlanJoin(sAB, sBC)
	eq := func(a, b V) bool { return reflect.DeepEqual(a, b) }
	rnd := rand.New(rand.NewSource(7))
	genRight := pr.genRight
	if genRight == nil {
		genRight = pr.gen
	}

	fill := func(m *Map[V], n int, gen func(rnd *rand.Rand) V) {
		for i := 0; i < n; i++ {
			tp := value.T(rnd.Intn(5), rnd.Intn(5))
			m.Merge(r, tp, gen(rnd))
		}
	}
	annihilate := func(m *Map[V], frac float64) {
		// Cancel a fraction of live entries exactly, exercising the
		// posting-removal path (payload reaches the ring zero).
		var doomed []value.Tuple
		var payloads []V
		m.Each(func(tp value.Tuple, p V) {
			if rnd.Float64() < frac {
				doomed = append(doomed, tp)
				payloads = append(payloads, p)
			}
		})
		for i, tp := range doomed {
			m.Merge(r, tp, r.Neg(payloads[i]))
		}
	}

	for iter := 0; iter < 60; iter++ {
		// Uneven sizes so both probe orientations (index on the left,
		// index on the right) come up across iterations.
		left, right := New[V](sAB), New[V](sBC)
		left.AddIndex(plan.LeftIndexKey())
		right.AddIndex(plan.RightIndexKey())
		if iter%2 == 0 {
			// Materialize up front so the fills and annihilations below
			// exercise incremental maintenance; odd iterations leave the
			// lazy build to the first probe inside JoinProbeWith.
			left.indexOn(plan.LeftIndexKey()).ensure(left)
			right.indexOn(plan.RightIndexKey()).ensure(right)
		}
		fill(left, 1+rnd.Intn(40), pr.gen)
		fill(right, 1+rnd.Intn(40), genRight)
		annihilate(left, 0.3)
		annihilate(right, 0.3)
		fill(right, rnd.Intn(10), genRight) // reinsert over annihilated keys

		checkIndexConsistency(t, left)
		checkIndexConsistency(t, right)

		want := JoinWith(plan, r, left, right)
		got := JoinProbeWith(plan, r, left, right)
		if !got.Equal(want, eq) {
			t.Fatalf("iter %d: JoinProbeWith diverged from JoinWith\nprobe: %v\nscan:  %v", iter, got, want)
		}
		// The probe built any lazily pending index; it must be consistent
		// with the live entries too.
		checkIndexConsistency(t, left)
		checkIndexConsistency(t, right)
	}
}

// TestQuickProbeEquivalenceAllKinds runs the probe/scan equivalence
// property over the six ring kinds the engines instantiate: Z counts,
// float sums, scalar COVAR, ranged COVAR, the mixed-feature RelCovar,
// and the (non-commutative) relational ring.
func TestQuickProbeEquivalenceAllKinds(t *testing.T) {
	t.Run("ints", func(t *testing.T) {
		runProbeEquivalence(t, probeRing[int64]{ring: ring.Ints{}, gen: func(rnd *rand.Rand) int64 {
			return int64(rnd.Intn(9) - 4)
		}})
	})
	t.Run("floats", func(t *testing.T) {
		runProbeEquivalence(t, probeRing[float64]{ring: ring.Floats{}, gen: func(rnd *rand.Rand) float64 {
			return float64(rnd.Intn(9) - 4)
		}})
	})
	t.Run("covar", func(t *testing.T) {
		r := ring.NewCovarRing(2)
		runProbeEquivalence(t, probeRing[*ring.Covar]{ring: r, gen: func(rnd *rand.Rand) *ring.Covar {
			p := r.Lift(rnd.Intn(2))(value.Int(int64(rnd.Intn(5) - 2)))
			if rnd.Intn(2) == 0 {
				return r.Neg(p)
			}
			return p
		}})
	})
	t.Run("rangedcovar", func(t *testing.T) {
		// Ranged payloads add only within one attribute range and
		// multiply only across adjacent ranges (the view-tree product
		// structure), so the left side lifts attribute 0 and the right
		// side attribute 1.
		r := ring.RangedCovarRing{}
		lifted := func(idx int) func(rnd *rand.Rand) *ring.RangedCovar {
			return func(rnd *rand.Rand) *ring.RangedCovar {
				p := r.Lift(idx)(value.Int(int64(rnd.Intn(5) - 2)))
				if rnd.Intn(2) == 0 {
					return r.Neg(p)
				}
				return p
			}
		}
		runProbeEquivalence(t, probeRing[*ring.RangedCovar]{ring: r, gen: lifted(0), genRight: lifted(1)})
	})
	t.Run("relcovar", func(t *testing.T) {
		r := ring.NewRelCovarRing(2)
		lifts := []ring.Lift[*ring.RelCovar]{r.LiftContinuous(0), r.LiftCategorical(1)}
		runProbeEquivalence(t, probeRing[*ring.RelCovar]{ring: r, gen: func(rnd *rand.Rand) *ring.RelCovar {
			p := lifts[rnd.Intn(2)](value.Int(int64(rnd.Intn(4))))
			if rnd.Intn(2) == 0 {
				return r.Neg(p)
			}
			return p
		}})
	})
	t.Run("relational", func(t *testing.T) {
		r := ring.Relational{}
		runProbeEquivalence(t, probeRing[ring.RelVal]{ring: r, gen: func(rnd *rand.Rand) ring.RelVal {
			return ring.RelSingle(value.T(rnd.Intn(4)), float64(rnd.Intn(5)-2))
		}})
	})
}

// TestJoinProbeFallsBackWithoutIndex: an unindexed large side must
// produce the same join through the build-and-scan fallback.
func TestJoinProbeFallsBackWithoutIndex(t *testing.T) {
	z := ring.Ints{}
	sAB := value.NewSchema("A", "B")
	sBC := value.NewSchema("B", "C")
	plan := PlanJoin(sAB, sBC)
	left, right := New[int64](sAB), New[int64](sBC)
	for i := 0; i < 20; i++ {
		left.Merge(z, value.T(i, i%3), 1)
		right.Merge(z, value.T(i%3, i), int64(i))
	}
	if left.IndexCount() != 0 || right.IndexCount() != 0 {
		t.Fatal("fixture should be unindexed")
	}
	got := JoinProbeWith(plan, z, left, right)
	want := JoinWith(plan, z, left, right)
	if !got.Equal(want, func(a, b int64) bool { return a == b }) {
		t.Fatalf("fallback diverged:\n%v\nvs\n%v", got, want)
	}
}

// TestAddIndexDedup: registering the same projection twice keeps one
// index; a different projection adds a second.
func TestAddIndexDedup(t *testing.T) {
	m := New[int64](value.NewSchema("A", "B"))
	m.AddIndex([]int{1})
	m.AddIndex([]int{1})
	if m.IndexCount() != 1 {
		t.Fatalf("IndexCount = %d after duplicate registration, want 1", m.IndexCount())
	}
	m.AddIndex([]int{0, 1})
	if m.IndexCount() != 2 {
		t.Fatalf("IndexCount = %d, want 2", m.IndexCount())
	}
}

// TestAddIndexBuildsFromContents: an index registered on a populated
// relation materializes from the live contents on first use and is
// consistent from then on.
func TestAddIndexBuildsFromContents(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](value.NewSchema("A", "B"))
	for i := 0; i < 30; i++ {
		m.Merge(z, value.T(i, i%4), 1)
	}
	m.AddIndex([]int{1})
	m.indexOn([]int{1}).ensure(m)
	checkIndexConsistency(t, m)
	// Reset keeps the registration, empties the postings.
	m.Reset()
	if m.IndexCount() != 1 {
		t.Fatal("Reset dropped the index registration")
	}
	checkIndexConsistency(t, m)
	m.Merge(z, value.T(1, 2), 5)
	checkIndexConsistency(t, m)
}

// TestSetMaintainsIndexes: the Set path (snapshot restore) inserts
// postings like Merge does; replacing a payload leaves them untouched.
func TestSetMaintainsIndexes(t *testing.T) {
	m := New[int64](value.NewSchema("A"))
	m.AddIndex([]int{0})
	m.indexOn([]int{0}).ensure(m)
	m.Set(value.T(1), 10)
	m.Set(value.T(1), 20) // in-place replace, no index churn
	m.Set(value.T(2), 30)
	checkIndexConsistency(t, m)
	if got, _ := m.Get(value.T(1)); got != 20 {
		t.Fatalf("payload = %d, want 20", got)
	}
}

// TestAddIndexRejectsBadPositions documents the programming-error panic.
func TestAddIndexRejectsBadPositions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index position")
		}
	}()
	New[int64](value.NewSchema("A")).AddIndex([]int{3})
}

// TestJoinWithScratchReuse: the scratch-backed join is bit-identical to
// the allocating one across repeated calls, and the scratch's recycled
// postings do not leak entries between calls.
func TestJoinWithScratchReuse(t *testing.T) {
	z := ring.Ints{}
	sAB := value.NewSchema("A", "B")
	sBC := value.NewSchema("B", "C")
	plan := PlanJoin(sAB, sBC)
	var jsc JoinScratch[int64]
	rnd := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		left, right := New[int64](sAB), New[int64](sBC)
		for i := 0; i < rnd.Intn(30); i++ {
			left.Merge(z, value.T(rnd.Intn(4), rnd.Intn(4)), int64(rnd.Intn(5)-2))
		}
		for i := 0; i < rnd.Intn(30); i++ {
			right.Merge(z, value.T(rnd.Intn(4), rnd.Intn(4)), int64(rnd.Intn(5)-2))
		}
		want := JoinWith(plan, z, left, right)
		got := JoinWithScratch(plan, z, left, right, &jsc)
		if !got.Equal(want, func(a, b int64) bool { return a == b }) {
			t.Fatalf("iter %d: scratch join diverged:\n%v\nvs\n%v", iter, got, want)
		}
		if len(jsc.index) != 0 {
			t.Fatalf("iter %d: scratch index not released (%d keys)", iter, len(jsc.index))
		}
		for _, post := range jsc.free {
			if len(post) != 0 {
				t.Fatalf("iter %d: free-list slice not emptied", iter)
			}
			for _, e := range post[:cap(post)] {
				if e != nil {
					t.Fatalf("iter %d: retired postings slice pins an entry", iter)
				}
			}
		}
	}
}

// TestProbeAsymptotics is a coarse guard on the point of the index: the
// work of a single-tuple probe against an indexed relation must not
// scale with the relation's size. It counts probed matches indirectly
// by asserting equal results while sizing the big side up 100x; the
// real latency guard lives in the perf suite's UpdateLatencyScaling.
func TestProbeAsymptotics(t *testing.T) {
	z := ring.Ints{}
	sAB := value.NewSchema("A", "B")
	sBC := value.NewSchema("B", "C")
	plan := PlanJoin(sAB, sBC)
	for _, n := range []int{100, 10_000} {
		big := New[int64](sBC)
		big.AddIndex(plan.RightIndexKey())
		for i := 0; i < n; i++ {
			big.Merge(z, value.T(i%50, i), 1)
		}
		delta := New[int64](sAB)
		delta.Merge(z, value.T(7, 13), 1)
		out := JoinProbeWith(plan, z, delta, big)
		// Key B=13 matches the n/50 tuples with that join key.
		if out.Len() != n/50 {
			t.Fatalf("n=%d: probe produced %d tuples, want %d", n, out.Len(), n/50)
		}
	}
}

package relation

import (
	"testing"
	"testing/quick"

	"repro/internal/ring"
	"repro/internal/value"
)

// ops replays a bounded sequence of merges derived from quick-generated
// bytes; used to drive the property tests below.
func replay(ops []byte) *Map[int64] {
	z := ring.Ints{}
	m := New[int64](value.NewSchema("A"))
	for _, b := range ops {
		key := value.T(int(b % 4))
		mult := int64(b%7) - 3
		m.Merge(z, key, mult)
	}
	return m
}

// TestQuickNoZeroPayloads: after any merge sequence, no stored payload
// is the ring zero — the compactness invariant every view relies on.
func TestQuickNoZeroPayloads(t *testing.T) {
	if err := quick.Check(func(ops []byte) bool {
		m := replay(ops)
		ok := true
		m.Each(func(_ value.Tuple, p int64) {
			if p == 0 {
				ok = false
			}
		})
		return ok
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeIsOrderInsensitive: the final relation is the same for
// any permutation of a merge sequence (addition is commutative).
func TestQuickMergeIsOrderInsensitive(t *testing.T) {
	if err := quick.Check(func(ops []byte) bool {
		m1 := replay(ops)
		// Reverse order.
		rev := make([]byte, len(ops))
		for i, b := range ops {
			rev[len(ops)-1-i] = b
		}
		m2 := replay(rev)
		return m1.Equal(m2, func(a, b int64) bool { return a == b })
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegateCancels: merging a relation with its negation yields
// the empty relation.
func TestQuickNegateCancels(t *testing.T) {
	z := ring.Ints{}
	if err := quick.Check(func(ops []byte) bool {
		m := replay(ops)
		n := m.Negate(z)
		m.MergeAll(z, n)
		return m.Len() == 0
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinCommutesOnCounts: for the commutative Z ring, Join(a, b)
// and Join(b, a) hold the same tuples up to attribute order.
func TestQuickJoinCommutesOnCounts(t *testing.T) {
	z := ring.Ints{}
	build := func(ops []byte, schema value.Schema) *Map[int64] {
		m := New[int64](schema)
		for _, b := range ops {
			m.Merge(z, value.T(int(b%3), int(b/3%3)), int64(b%5)-2)
		}
		return m
	}
	sAB := value.NewSchema("A", "B")
	sBC := value.NewSchema("B", "C")
	if err := quick.Check(func(o1, o2 []byte) bool {
		left := build(o1, sAB)
		right := build(o2, sBC)
		ab := Join[int64](z, left, right) // schema [A, B, C]
		ba := Join[int64](z, right, left) // schema [B, C, A]
		if ab.Len() != ba.Len() {
			return false
		}
		// Reproject ba into ab's schema and compare.
		reproj := Aggregate[int64](z, ba, ab.Schema(), "", nil)
		return ab.Equal(reproj, func(a, b int64) bool { return a == b })
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickAggregateTotalPreserved: group-by aggregation never changes
// the total payload mass.
func TestQuickAggregateTotalPreserved(t *testing.T) {
	z := ring.Ints{}
	schema := value.NewSchema("A", "B")
	if err := quick.Check(func(ops []byte) bool {
		m := New[int64](schema)
		for _, b := range ops {
			m.Merge(z, value.T(int(b%3), int(b/3%3)), int64(b%5)-2)
		}
		var total int64
		m.Each(func(_ value.Tuple, p int64) { total += p })
		g := Aggregate[int64](z, m, value.NewSchema("A"), "", nil)
		var gTotal int64
		g.Each(func(_ value.Tuple, p int64) { gTotal += p })
		return total == gTotal
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package relation

import (
	"math/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

// TestPartitionCoversDisjointly: the partitions of a relation are a
// disjoint cover — merging them all back yields the original, and no
// tuple appears in two partitions.
func TestPartitionCoversDisjointly(t *testing.T) {
	r := ring.Ints{}
	schema := value.NewSchema("A", "B")
	m := New[int64](schema)
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		m.Merge(r, value.T(int64(rnd.Intn(40)), int64(rnd.Intn(40))), int64(rnd.Intn(5)-2))
	}
	for _, workers := range []int{1, 2, 3, 8} {
		parts := m.Partition(workers, m.PartitionKey(value.NewSchema("A")))
		if len(parts) != workers {
			t.Fatalf("Partition(%d) returned %d slots", workers, len(parts))
		}
		merged := New[int64](schema)
		total := 0
		for _, p := range parts {
			total += p.Len()
			p.Each(func(tp value.Tuple, pay int64) {
				if _, dup := merged.Get(tp); dup {
					t.Fatalf("tuple %v appears in two partitions", tp)
				}
				merged.Set(tp, pay)
			})
		}
		if total != m.Len() {
			t.Fatalf("partitions hold %d tuples, original has %d", total, m.Len())
		}
		if !merged.Equal(m, func(a, b int64) bool { return a == b }) {
			t.Fatalf("union of %d partitions differs from the original", workers)
		}
	}
}

// TestPartitionColocatesKeys: tuples that agree on the partition key
// must land in the same partition, so view entries grouped by that key
// are touched by exactly one partition.
func TestPartitionColocatesKeys(t *testing.T) {
	r := ring.Ints{}
	schema := value.NewSchema("A", "B")
	m := New[int64](schema)
	for a := 0; a < 20; a++ {
		for b := 0; b < 5; b++ {
			m.Merge(r, value.T(int64(a), int64(b)), 1)
		}
	}
	parts := m.Partition(4, m.PartitionKey(value.NewSchema("A")))
	owner := map[string]int{}
	for i, p := range parts {
		p.Each(func(tp value.Tuple, _ int64) {
			k := tp[:1].Encode()
			if prev, seen := owner[k]; seen && prev != i {
				t.Fatalf("key %v split across partitions %d and %d", tp[0], prev, i)
			}
			owner[k] = i
		})
	}
}

// TestPartitionKeyIgnoresForeignAttrs: PartitionKey drops key attributes
// absent from the schema instead of failing, and an empty key falls back
// to full-tuple hashing (still a disjoint cover).
func TestPartitionKeyIgnoresForeignAttrs(t *testing.T) {
	schema := value.NewSchema("A", "B")
	m := New[int64](schema)
	r := ring.Ints{}
	for i := 0; i < 50; i++ {
		m.Merge(r, value.T(int64(i), int64(i%7)), 1)
	}
	idx := m.PartitionKey(value.NewSchema("B", "Z"))
	if len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("PartitionKey([B, Z]) = %v, want [1]", idx)
	}
	parts := m.Partition(3, m.PartitionKey(value.NewSchema("Z")))
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != m.Len() {
		t.Fatalf("full-tuple fallback lost tuples: %d vs %d", total, m.Len())
	}
}

// TestPartitionIntoRejectsIndexedSlot: partition fills bypass index
// maintenance, so an indexed destination slot must be refused instead
// of silently desynchronizing its index.
func TestPartitionIntoRejectsIndexedSlot(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](value.NewSchema("A", "B"))
	m.Merge(z, value.T(1, 2), 1)
	bad := New[int64](value.NewSchema("A", "B"))
	bad.AddIndex([]int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indexed partition slot")
		}
	}()
	m.PartitionInto([]*Map[int64]{bad}, nil)
}

package relation

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

// TestArenaRecyclesAnnihilatedEntries drives an insert/cancel cycle and
// checks the annihilated entry struct is reused by the next insert —
// the delete-heavy-stream property the arena exists for.
func TestArenaRecyclesAnnihilatedEntries(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A"))
	m.Merge(z, value.T(1), 3)
	e1 := m.data[value.T(1).Encode()]
	m.Merge(z, value.T(1), -3) // annihilate
	if m.Len() != 0 {
		t.Fatal("entry not removed on cancellation")
	}
	if len(m.arena.free) != 1 {
		t.Fatalf("free list has %d entries, want 1", len(m.arena.free))
	}
	if e1.tuple != nil || e1.payload != 0 {
		t.Fatal("recycled entry still pins tuple/payload")
	}
	m.Merge(z, value.T(2), 7)
	e2 := m.data[value.T(2).Encode()]
	if e1 != e2 {
		t.Fatal("fresh insert did not reuse the recycled entry")
	}
	if len(m.arena.free) != 0 {
		t.Fatal("free list not drained by reuse")
	}
	if got, _ := m.Get(value.T(2)); got != 7 {
		t.Fatalf("reused entry payload = %d", got)
	}
}

// TestArenaResetRecyclesOwnedEntries: Reset on an owning map parks all
// its entries; the refill reuses them without growing the slab.
func TestArenaResetRecyclesOwnedEntries(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A"))
	for i := 0; i < 20; i++ {
		m.Merge(z, value.T(int64(i)), 1)
	}
	m.Reset()
	if len(m.arena.free) != 20 {
		t.Fatalf("free list has %d entries after Reset, want 20", len(m.arena.free))
	}
	slabLeft := len(m.arena.slab)
	for i := 0; i < 20; i++ {
		m.Merge(z, value.T(int64(100+i)), 1)
	}
	if len(m.arena.slab) != slabLeft {
		t.Fatal("refill carved fresh slab entries instead of reusing recycled ones")
	}
	if m.Len() != 20 {
		t.Fatalf("refilled Len = %d", m.Len())
	}
}

// TestArenaPartitionSlotsDoNotRecycleForeignEntries: a PartitionInto
// destination aliases the source's entries, so resetting it must NOT
// park them in the slot's own arena (that would hand the same entry out
// from two maps).
func TestArenaPartitionSlotsDoNotRecycleForeignEntries(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A", "B"))
	for i := 0; i < 32; i++ {
		m.Merge(z, value.T(int64(i), int64(i%4)), 1)
	}
	slots := make([]*Map[int64], 4)
	parts := m.PartitionInto(slots, []int{0})
	for _, p := range parts {
		if !p.foreign {
			t.Fatal("partition slot not marked foreign")
		}
	}
	// Reset every slot (as the maintenance loop does after commit): no
	// foreign entry may land in a slot arena, and the source must be
	// untouched.
	for _, p := range parts {
		p.Reset()
		if len(p.arena.free) != 0 {
			t.Fatal("foreign map recycled entries it does not own")
		}
	}
	if m.Len() != 32 {
		t.Fatal("source map damaged by partition slot Reset")
	}
	for i := 0; i < 32; i++ {
		if got, ok := m.Get(value.T(int64(i), int64(i%4))); !ok || got != 1 {
			t.Fatalf("source entry %d corrupted after slot Reset: %d, %v", i, got, ok)
		}
	}
	// The n==1 fast path aliases too.
	one := m.PartitionInto(make([]*Map[int64], 1), []int{0})
	if !one[0].foreign {
		t.Fatal("single-slot partition not marked foreign")
	}
}

// TestArenaIndexConsistencyUnderChurn hammers an indexed map with
// inserts and annihilations (exercising postings recycling) and
// verifies the index against the primary contents throughout.
func TestArenaIndexConsistencyUnderChurn(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A", "B"))
	m.AddIndex([]int{1})
	m.Merge(z, value.T(int64(-1), int64(0)), 1)
	// Force the lazy build through the probe path (the probed side must
	// be non-empty or the join short-circuits before ensure).
	d := New[int64](s("B", "C"))
	d.Merge(z, value.T(int64(0), int64(0)), 1)
	JoinProbeWith(PlanJoin(d.Schema(), m.Schema()), z, d, m)
	m.Merge(z, value.T(int64(-1), int64(0)), -1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			m.Merge(z, value.T(int64(round*10+i), int64(i%3)), 1)
		}
		// Annihilate every other tuple of the round.
		for i := 0; i < 10; i += 2 {
			m.Merge(z, value.T(int64(round*10+i), int64(i%3)), -1)
		}
		if err := m.VerifyIndexes(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if m.Len() != 50*5 {
		t.Fatalf("Len = %d", m.Len())
	}
	dumps := m.IndexDumps()
	if len(dumps) != 1 {
		t.Fatalf("IndexDumps returned %d indexes, want 1", len(dumps))
	}
}

// TestVerifyIndexesCatchesCorruption plants a deliberate inconsistency
// and checks VerifyIndexes reports it (guarding the guard).
func TestVerifyIndexesCatchesCorruption(t *testing.T) {
	z := ring.Ints{}
	m := New[int64](s("A", "B"))
	m.AddIndex([]int{1})
	m.indexes[0].ensure(m)
	m.Merge(z, value.T(int64(1), int64(2)), 1)
	m.Merge(z, value.T(int64(2), int64(2)), 1)
	if err := m.VerifyIndexes(); err != nil {
		t.Fatalf("consistent index flagged: %v", err)
	}
	// Corrupt: drop one entry from pos.
	for e := range m.indexes[0].pos {
		delete(m.indexes[0].pos, e)
		break
	}
	if err := m.VerifyIndexes(); err == nil {
		t.Fatal("corrupted index passed verification")
	}
}

package relation

import (
	"repro/internal/ring"
	"repro/internal/value"
)

// Join computes the natural join of left and right under ring r: tuples
// agreeing on the common attributes combine, payloads multiply with the
// ring product (left payload first, preserving any non-commutative key
// orientation). The output schema is left's schema followed by right's
// attributes not in left.
//
// The implementation is a classic hash join: it indexes the smaller side
// on the common attributes and probes with the larger.
func Join[V any](r ring.Ring[V], left, right *Map[V]) *Map[V] {
	common := left.schema.Intersect(right.schema)
	outSchema := left.schema.Union(right.schema)
	out := New[V](outSchema)
	if left.Len() == 0 || right.Len() == 0 {
		return out
	}

	// Cartesian product when there are no common attributes.
	if common.Len() == 0 {
		rightExtra := right.schema.Minus(left.schema)
		rightIdx := right.schema.MustProject(rightExtra)
		for _, le := range left.data {
			for _, re := range right.data {
				t := le.tuple.Concat(re.tuple.Project(rightIdx))
				out.Merge(r, t, r.Mul(le.payload, re.payload))
			}
		}
		return out
	}

	build, probe := right, left
	swapped := false
	if left.Len() < right.Len() {
		build, probe = left, right
		swapped = true
	}

	buildCommon := build.schema.MustProject(common)
	probeCommon := probe.schema.MustProject(common)
	// Attributes the build side contributes beyond the probe side.
	buildExtra := build.schema.Minus(probe.schema)
	buildExtraIdx := build.schema.MustProject(buildExtra)

	index := make(map[string][]entry[V], build.Len())
	for _, e := range build.data {
		k := e.tuple.EncodeProject(buildCommon)
		index[k] = append(index[k], e)
	}

	// Positions to reorder (probe ++ buildExtra) into the output schema.
	joined := probe.schema.Union(buildExtra)
	reorder := joined.MustProject(outSchema)

	for _, pe := range probe.data {
		k := pe.tuple.EncodeProject(probeCommon)
		for _, be := range index[k] {
			t := pe.tuple.Concat(be.tuple.Project(buildExtraIdx)).Project(reorder)
			var p V
			if swapped {
				// build side is left: keep left-first product order.
				p = r.Mul(be.payload, pe.payload)
			} else {
				p = r.Mul(pe.payload, be.payload)
			}
			out.Merge(r, t, p)
		}
	}
	return out
}

// Aggregate groups the relation by the attributes of outSchema (which
// must be a subset of m's schema) and sums payloads with the ring
// addition. If lift is non-nil, each tuple's payload is first multiplied
// by lift applied to the value of liftAttr (payload × lift, in that
// order).
func Aggregate[V any](r ring.Ring[V], m *Map[V], outSchema value.Schema, liftAttr string, lift ring.Lift[V]) *Map[V] {
	proj := m.schema.MustProject(outSchema)
	liftIdx := -1
	if lift != nil {
		liftIdx = m.schema.Index(liftAttr)
		if liftIdx < 0 {
			panic("relation: lift attribute " + liftAttr + " not in schema " + m.schema.String())
		}
	}
	out := New[V](outSchema)
	for _, e := range m.data {
		p := e.payload
		if liftIdx >= 0 {
			p = r.Mul(p, lift(e.tuple[liftIdx]))
		}
		// Hot path: encode the projected key directly and materialize
		// the group tuple only when the group is first seen.
		k := e.tuple.EncodeProject(proj)
		if ex, ok := out.data[k]; ok {
			s := r.Add(ex.payload, p)
			if r.IsZero(s) {
				delete(out.data, k)
			} else {
				out.data[k] = entry[V]{tuple: ex.tuple, payload: s}
			}
		} else if !r.IsZero(p) {
			out.data[k] = entry[V]{tuple: e.tuple.Project(proj), payload: p}
		}
	}
	return out
}

// FromTuples builds a relation from raw tuples, assigning each the ring
// One payload and merging duplicates (so duplicate input tuples get
// multiplicity 2·One, matching bag semantics).
func FromTuples[V any](r ring.Ring[V], schema value.Schema, tuples []value.Tuple) *Map[V] {
	out := New[V](schema)
	one := r.One()
	for _, t := range tuples {
		out.Merge(r, t, one)
	}
	return out
}

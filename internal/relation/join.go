package relation

import (
	"repro/internal/ring"
	"repro/internal/value"
)

// scratchOf returns the ring's optional in-place accumulation extension
// (nil when the ring does not implement it). Join and Aggregate use it
// on their OUTPUT maps only: every payload stored there is exclusively
// owned (a fresh Mul result or an Own copy), so folding further addends
// into it in place is unobservable — the fused path produces
// bit-identical relations to the pure Add path, which the merge-contract
// tests assert.
func scratchOf[V any](r ring.Ring[V]) ring.Scratch[V] {
	sc, _ := r.(ring.Scratch[V])
	return sc
}

// fold adds payload p to the entry at key buf when one exists (using
// the ring's Scratch extension when available) and reports whether the
// caller must insert a new entry instead. It returns false for
// absent-and-zero payloads, so key string and tuple materialize only
// for entries actually stored.
//
// The in-place AddInto runs only on entries the map exclusively owns;
// an entry whose payload still aliases outside state (entry.shared)
// takes one pure Add, whose fresh result the map then owns — the lazy
// form of copy-on-write that lets Aggregate store input payloads
// without a defensive clone.
func fold[V any](r ring.Ring[V], sc ring.Scratch[V], out *Map[V], buf []byte, p V) (insert bool) {
	if r.IsZero(p) {
		// Adding zero is a no-op; returning early also guarantees the
		// pure-Add branch below runs on two non-zero operands, where
		// every Scratch ring returns a fresh value (so clearing the
		// shared flag afterwards is sound).
		return false
	}
	if e, ok := out.data[string(buf)]; ok {
		var s V
		if sc != nil && !e.shared {
			s = sc.AddInto(e.payload, p)
		} else {
			s = r.Add(e.payload, p)
		}
		if r.IsZero(s) {
			// No index maintenance here: Join and Aggregate outputs are
			// always freshly allocated, never indexed (indexes live on
			// long-lived maps mutated through Merge/MergeAll/Set).
			delete(out.data, string(buf))
			out.recycleEntry(e)
		} else {
			e.payload = s
			e.shared = false
		}
		return false
	}
	return !r.IsZero(p)
}

// joinOrient is the precomputed geometry of one build/probe orientation
// of a join: the common-key projections of both sides and, per output
// position, which side it reads and at which position — so keys and
// tuples assemble straight from the two source tuples with no
// intermediate Concat/Project allocations.
type joinOrient struct {
	buildCommon []int
	probeCommon []int
	fromBuild   []bool
	srcPos      []int
}

func orientJoin(probe, build, out value.Schema) joinOrient {
	common := probe.Intersect(build)
	buildExtra := build.Minus(probe)
	buildExtraIdx := build.MustProject(buildExtra)
	joined := probe.Union(buildExtra)
	reorder := joined.MustProject(out)
	plen := probe.Len()
	o := joinOrient{
		buildCommon: build.MustProject(common),
		probeCommon: probe.MustProject(common),
		fromBuild:   make([]bool, len(reorder)),
		srcPos:      make([]int, len(reorder)),
	}
	for i, j := range reorder {
		if j < plen {
			o.srcPos[i] = j
		} else {
			o.fromBuild[i] = true
			o.srcPos[i] = buildExtraIdx[j-plen]
		}
	}
	return o
}

// JoinPlan is the reusable schema geometry of a natural join: which
// attributes are common, where output values come from, for both
// build-side orientations (the smaller side is indexed at run time).
// Deriving it per call costs a dozen allocations — noticeable on
// single-tuple deltas — so the view tree plans each node's joins once
// at build time and replays them with JoinWith.
type JoinPlan struct {
	out value.Schema
	fwd joinOrient // build = right side, probe = left
	rev joinOrient // build = left side, probe = right
}

// Out returns the join's output schema: left's schema followed by
// right's attributes not in left.
func (p *JoinPlan) Out() value.Schema { return p.out }

// LeftIndexKey returns the projection positions (into the left schema)
// of the join's common key — the index the left side must carry for
// JoinProbeWith to probe it when the right side is the small one.
func (p *JoinPlan) LeftIndexKey() []int { return p.rev.buildCommon }

// RightIndexKey is LeftIndexKey for the right side: the positions (into
// the right schema) of the common key JoinProbeWith probes the right
// side's index on.
func (p *JoinPlan) RightIndexKey() []int { return p.fwd.buildCommon }

// PlanJoin precomputes the join geometry for relations over the two
// schemas.
func PlanJoin(left, right value.Schema) *JoinPlan {
	out := left.Union(right)
	return &JoinPlan{
		out: out,
		fwd: orientJoin(left, right, out),
		rev: orientJoin(right, left, out),
	}
}

// Join computes the natural join of left and right under ring r: tuples
// agreeing on the common attributes combine, payloads multiply with the
// ring product (left payload first, preserving any non-commutative key
// orientation). The output schema is left's schema followed by right's
// attributes not in left. Callers that join the same schemas repeatedly
// should plan once with PlanJoin and use JoinWith.
func Join[V any](r ring.Ring[V], left, right *Map[V]) *Map[V] {
	return JoinWith(PlanJoin(left.schema, right.schema), r, left, right)
}

// joinMatches merges every (probe-entry × match) pair into out: the
// shared inner loop of JoinWith and JoinProbeWith. Payloads multiply
// left-first regardless of which side is iterated (swapped marks the
// iterated side as the right one). obuf is the reused output-key
// scratch, returned for the caller's next round.
func joinMatches[V any](out *Map[V], r ring.Ring[V], sc ring.Scratch[V], fma ring.FMA[V],
	o *joinOrient, swapped bool, pe *entry[V], matches []*entry[V], obuf []byte) []byte {
	fromBuild, srcPos := o.fromBuild, o.srcPos
	for _, be := range matches {
		// Left payload first, preserving any non-commutative key
		// orientation (the indexed side is left when swapped).
		a, b := pe.payload, be.payload
		if swapped {
			a, b = be.payload, pe.payload
		}
		obuf = obuf[:0]
		for i, fb := range fromBuild {
			if fb {
				obuf = be.tuple[srcPos[i]].AppendEncode(obuf)
			} else {
				obuf = pe.tuple[srcPos[i]].AppendEncode(obuf)
			}
		}
		if e, ok := out.data[string(obuf)]; ok {
			// Duplicate output tuple: fold a×b into the owned
			// accumulator without materializing the product when the
			// ring supports it.
			var s V
			if fma != nil && !e.shared {
				s = fma.MulAddInto(e.payload, a, b)
			} else {
				p := r.Mul(a, b)
				if r.IsZero(p) {
					continue
				}
				if sc != nil && !e.shared {
					s = sc.AddInto(e.payload, p)
				} else {
					s = r.Add(e.payload, p)
				}
			}
			if r.IsZero(s) {
				delete(out.data, string(obuf))
				out.recycleEntry(e)
			} else {
				e.payload = s
				e.shared = false
			}
			continue
		}
		p := r.Mul(a, b)
		if r.IsZero(p) {
			continue
		}
		// First hit for this output tuple: materialize it (the Mul
		// result p is fresh, so the entry owns it already).
		t := make(value.Tuple, len(fromBuild))
		for i, fb := range fromBuild {
			if fb {
				t[i] = be.tuple[srcPos[i]]
			} else {
				t[i] = pe.tuple[srcPos[i]]
			}
		}
		out.data[string(obuf)] = out.newEntry(t, p, false)
	}
	return obuf
}

// JoinScratch recycles the transient build-side index JoinWithScratch
// constructs, so a caller that joins in a loop (the view tree's bulk
// refresh) does not rebuild and discard the map — and its postings
// slices — on every call. Key strings still materialize per distinct
// build key (Go map keys are owned by the map). Not safe for concurrent
// use: every concurrent joiner needs its own scratch, which is why the
// delta-propagation workers pass nil.
type JoinScratch[V any] struct {
	index map[string][]*entry[V]
	free  [][]*entry[V]
}

// release returns every postings slice of the scratch index to the free
// list, zeroing the entry pointers so retired slices pin nothing.
func (s *JoinScratch[V]) release() {
	for k, post := range s.index {
		for i := range post {
			post[i] = nil
		}
		s.free = append(s.free, post[:0])
		delete(s.index, k)
	}
}

// JoinWith is Join with a precomputed plan (which must have been built
// from exactly left's and right's schemas).
//
// The implementation is a classic hash join: it indexes the smaller side
// on the common attributes and probes with the larger. A join with no
// common attributes degenerates to the Cartesian product through the
// same machinery (a single empty-key index bucket). Probe keys, output
// keys, and output tuples are built in reused scratch buffers and only
// materialized on first insertion, so re-grouped output tuples cost no
// allocations beyond the ring product. Callers with a persistent index
// on one side should prefer JoinProbeWith, which skips the build phase
// entirely; repeated full joins can recycle the build-side index
// allocation through JoinWithScratch.
func JoinWith[V any](plan *JoinPlan, r ring.Ring[V], left, right *Map[V]) *Map[V] {
	return JoinWithScratch(plan, r, left, right, nil)
}

// JoinWithScratch is JoinWith with an optional caller-owned scratch for
// the transient build-side index (nil allocates per call, preserving
// JoinWith's behavior).
func JoinWithScratch[V any](plan *JoinPlan, r ring.Ring[V], left, right *Map[V], jsc *JoinScratch[V]) *Map[V] {
	out := New[V](plan.out)
	if left.Len() == 0 || right.Len() == 0 {
		return out
	}

	build, probe := right, left
	o := &plan.fwd
	swapped := false
	if left.Len() < right.Len() {
		build, probe = left, right
		o = &plan.rev
		swapped = true
	}

	var index map[string][]*entry[V]
	if jsc != nil {
		if jsc.index == nil {
			jsc.index = make(map[string][]*entry[V], build.Len())
		}
		index = jsc.index
		defer jsc.release()
	} else {
		index = make(map[string][]*entry[V], build.Len())
	}
	var kbuf []byte
	for _, e := range build.data {
		kbuf = e.tuple.AppendEncodeProject(kbuf[:0], o.buildCommon)
		post := index[string(kbuf)]
		if post == nil && jsc != nil && len(jsc.free) > 0 {
			post = jsc.free[len(jsc.free)-1]
			jsc.free = jsc.free[:len(jsc.free)-1]
		}
		index[string(kbuf)] = append(post, e)
	}

	sc := scratchOf(r)
	fma, _ := r.(ring.FMA[V])
	var obuf []byte
	for _, pe := range probe.data {
		kbuf = pe.tuple.AppendEncodeProject(kbuf[:0], o.probeCommon)
		matches := index[string(kbuf)]
		if len(matches) == 0 {
			continue
		}
		obuf = joinMatches(out, r, sc, fma, o, swapped, pe, matches, obuf)
	}
	return out
}

// JoinProbeWith is JoinWith when the larger side carries a persistent
// index on the join's common key (AddIndex with the plan's
// Left/RightIndexKey): it iterates only the smaller side — the delta,
// in the maintenance paths — and looks matches up in the index, so the
// cost is O(|small| + |matches|) instead of the build-and-scan join's
// O(|large|). When the larger side has no matching index it falls back
// to JoinWith. Both paths visit the same multiset of payload products
// in the same left-first per-pair order, so results are bit-identical
// whenever ring addition is exact (integer rings, float rings over
// integer-valued data — the same scope as the parallel path's
// guarantee, see view.Tree.SetParallelism): the two paths iterate
// opposite sides, which can group an output key's float64 additions
// differently in the last bits on inexact data.
func JoinProbeWith[V any](plan *JoinPlan, r ring.Ring[V], left, right *Map[V]) *Map[V] {
	if left.Len() == 0 || right.Len() == 0 {
		return New[V](plan.out)
	}
	// Iterate the smaller side, probe the larger side's index. Note the
	// iteration side is the OPPOSITE of JoinWith's (which indexes the
	// smaller side and iterates the larger) — same matches and products,
	// different accumulation grouping; see the doc comment's exact-ring
	// scope for what that means on inexact float data.
	outer, inner := left, right
	o := &plan.fwd
	swapped := false
	if right.Len() < left.Len() {
		outer, inner = right, left
		o = &plan.rev
		swapped = true
	}
	idx := inner.indexOn(o.buildCommon)
	if idx == nil {
		return JoinWith(plan, r, left, right)
	}
	idx.ensure(inner) // first probe materializes a lazily registered index
	out := New[V](plan.out)
	sc := scratchOf(r)
	fma, _ := r.(ring.FMA[V])
	var arr [64]byte
	kbuf, obuf := arr[:0], []byte(nil)
	for _, pe := range outer.data {
		kbuf = pe.tuple.AppendEncodeProject(kbuf[:0], o.probeCommon)
		matches := idx.lookup(kbuf)
		if len(matches) == 0 {
			continue
		}
		obuf = joinMatches(out, r, sc, fma, o, swapped, pe, matches, obuf)
	}
	return out
}

// AggPlan is the reusable geometry of a group-by aggregation: the
// positions projected into the group key and the position of the lifted
// attribute (-1 when no lift applies). Like JoinPlan it exists so
// repeated aggregations over fixed schemas (every view-tree node) pay
// for schema derivation once.
type AggPlan struct {
	out     value.Schema
	proj    []int
	liftIdx int
}

// Out returns the aggregation's output (group-by) schema.
func (p *AggPlan) Out() value.Schema { return p.out }

// PlanAggregate precomputes the aggregation geometry from in onto
// outSchema (which must be a subset of in). liftAttr names the lifted
// attribute, "" for none; a named attribute must be in the schema.
func PlanAggregate(in, outSchema value.Schema, liftAttr string) *AggPlan {
	p := &AggPlan{out: outSchema, proj: in.MustProject(outSchema), liftIdx: -1}
	if liftAttr != "" {
		p.liftIdx = in.Index(liftAttr)
		if p.liftIdx < 0 {
			panic("relation: lift attribute " + liftAttr + " not in schema " + in.String())
		}
	}
	return p
}

// Aggregate groups the relation by the attributes of outSchema (which
// must be a subset of m's schema) and sums payloads with the ring
// addition. If lift is non-nil, each tuple's payload is first multiplied
// by lift applied to the value of liftAttr (payload × lift, in that
// order). Callers aggregating over fixed schemas repeatedly should plan
// once with PlanAggregate and use AggregateWith.
func Aggregate[V any](r ring.Ring[V], m *Map[V], outSchema value.Schema, liftAttr string, lift ring.Lift[V]) *Map[V] {
	if lift == nil {
		liftAttr = ""
	}
	return AggregateWith(PlanAggregate(m.schema, outSchema, liftAttr), r, m, lift)
}

// AggregateWith is Aggregate with a precomputed plan (which must have
// been built from exactly m's schema; lift must be non-nil iff the plan
// named a lift attribute).
func AggregateWith[V any](plan *AggPlan, r ring.Ring[V], m *Map[V], lift ring.Lift[V]) *Map[V] {
	out := New[V](plan.out)
	sc := scratchOf(r)
	proj := plan.proj
	var kbuf []byte
	for _, e := range m.data {
		p := e.payload
		owned := false
		if plan.liftIdx >= 0 {
			// The product is a fresh value the output exclusively owns.
			p = r.Mul(p, lift(e.tuple[plan.liftIdx]))
			owned = true
		}
		// Hot path: encode the projected key into the reused scratch
		// buffer; the group tuple (and the key string) materialize only
		// when the group is first seen.
		kbuf = e.tuple.AppendEncodeProject(kbuf[:0], proj)
		if fold(r, sc, out, kbuf, p) {
			// A payload read straight from the input (no lift) stays
			// shared: fold copy-on-writes it via one pure Add if the
			// group is ever hit again.
			out.data[string(kbuf)] = out.newEntry(e.tuple.Project(proj), p, !owned)
		}
	}
	return out
}

// FromTuples builds a relation from raw tuples, assigning each the ring
// One payload and merging duplicates (so duplicate input tuples get
// multiplicity 2·One, matching bag semantics).
func FromTuples[V any](r ring.Ring[V], schema value.Schema, tuples []value.Tuple) *Map[V] {
	out := New[V](schema)
	one := r.One()
	for _, t := range tuples {
		out.Merge(r, t, one)
	}
	return out
}

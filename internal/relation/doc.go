// Package relation implements keyed relations with ring payloads: the
// storage substrate of F-IVM. A relation maps tuples over a schema to
// payload values from an application ring; views, deltas, and input
// relations are all the same structure. Negative payloads encode
// deletes, so a "delta relation" needs no special type.
//
// # Key invariants
//
//   - Tuples whose payload equals the ring zero are never stored:
//     Merge, MergeAll, Join, and Aggregate all drop entries that
//     cancel, so relations stay compact under delete-heavy streams and
//     two relations holding the same content are structurally equal.
//   - Payloads are shared, never copied, on Clone and Partition —
//     sound because ring operations treat payloads as immutable.
//   - A Map is not safe for concurrent mutation; concurrent reads
//     (Join probes, Each) are fine, which parallel delta propagation
//     relies on when workers join against shared sibling views.
//
// Beyond storage, the package provides the relational algebra the view
// tree is built from (hash Join, group-by Aggregate with lift
// application) and Partition, the hash split by join key that feeds
// parallel delta propagation.
package relation

// Package relation implements keyed relations with ring payloads: the
// storage substrate of F-IVM. A relation maps tuples over a schema to
// payload values from an application ring; views, deltas, and input
// relations are all the same structure. Negative payloads encode
// deletes, so a "delta relation" needs no special type.
//
// # Key invariants
//
//   - Tuples whose payload equals the ring zero are never stored:
//     Merge, MergeAll, Join, and Aggregate all drop entries that
//     cancel, so relations stay compact under delete-heavy streams and
//     two relations holding the same content are structurally equal.
//   - Payloads are shared, never copied, on Clone and Partition —
//     sound because ring operations treat payloads as immutable.
//   - A Map is not safe for concurrent mutation; concurrent reads
//     (Join probes, Each) are fine, which parallel delta propagation
//     relies on when workers join against shared sibling views.
//
// Beyond storage, the package provides the relational algebra the view
// tree is built from (hash Join, group-by Aggregate with lift
// application), persistent secondary join-key indexes (AddIndex) with
// the index-probing JoinProbeWith that makes delta-sized joins cost
// O(|delta|) instead of O(|relation|), and Partition, the hash split by
// join key that feeds parallel delta propagation.
//
// # Ownership and the allocation-lean hot path
//
// The merge hot path is engineered around three rules, documented here
// because they are the package's load-bearing ownership contract (see
// also docs/PERF.md):
//
//   - STORED payloads are immutable. Merge and MergeAll combine with
//     the pure ring Add and only ever REPLACE a stored payload, so
//     payloads may be shared freely with clones, snapshots, and other
//     relations. Entry structs, by contrast, are owned by their map:
//     Clone and MergeAll allocate fresh ones. Ownership is what lets
//     each map slab-allocate its entries from a per-map arena and
//     recycle them on annihilation and Reset (alloc.go) — the only
//     aliasing exception, PartitionInto slots, is tracked by a foreign
//     flag that disables recycling there.
//   - Join and Aggregate OWN their output maps while building them and
//     fold into freshly-created payloads in place via the ring's
//     optional Scratch/FMA extensions. A payload stored from shared
//     input (no-lift aggregation) is flagged and copy-on-writes
//     through one pure Add on its first re-hit. The fused paths are
//     bit-identical to the pure ones (scratch_test.go).
//   - Keys encode into reused scratch buffers (Tuple.AppendEncode*);
//     maps are probed with string(buf), which Go compiles without a
//     copy, and the key string plus output tuple only materialize when
//     an entry is actually inserted.
//
// Scratch reuse: Reset clears a relation while keeping its allocated
// capacity (per-engine delta buffers), and PartitionInto refills
// caller-provided partition slots — both exist so steady-state
// maintenance re-walks warm memory instead of reallocating it.
//
// Secondary indexes extend the contract without bending it: postings
// hold the map's own entry pointers, so the immutable-payload rule
// keeps them valid through in-place payload updates; only entry
// insertion and annihilation touch them, on the same single-writer
// paths that mutate the primary map. Indexes build lazily on first
// probe (a sync.Once makes that safe from concurrent reading workers)
// and an index never probed costs nothing. See index.go and
// docs/ARCHITECTURE.md.
package relation

package view

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
)

// Snapshot format:
//
//	magic "FIVMSNAP" | version u8 | codec tag (v2+) | relation count uvarint
//	per relation: name | attr count | attrs... | tuple count |
//	              per tuple: encoded key | payload (ring codec)
//
// The codec tag is the Go type name of the payload codec; it makes a
// snapshot self-describing across engine kinds, so restoring e.g. a
// count-engine snapshot into a float engine fails fast instead of
// misparsing payload bytes. Version-1 snapshots (no tag) still load.
//
// Only the input relations are persisted; views are recomputed on
// restore (they are pure functions of the sources), which keeps the
// snapshot small and immune to view-layout changes across versions.

const (
	snapshotMagic   = "FIVMSNAP"
	snapshotVersion = 2
)

// codecTag names the payload codec for the snapshot header. Codecs
// whose wire format depends on parameters (e.g. the ring degree) expose
// a Tag method so two configurations of the same codec type do not
// collide; the Go type name covers the rest.
func codecTag[V any](codec ring.Codec[V]) string {
	if t, ok := any(codec).(interface{ Tag() string }); ok {
		return t.Tag()
	}
	return fmt.Sprintf("%T", codec)
}

// WriteSnapshot persists the tree's input relations to w using codec
// for payloads. The tree itself is unchanged.
func (t *Tree[V]) WriteSnapshot(w io.Writer, codec ring.Codec[V]) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	if err := writeString(bw, codecTag(codec)); err != nil {
		return err
	}
	names := t.RelationNames()
	if err := writeUvarint(bw, uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		src := t.sources[name]
		if err := writeString(bw, name); err != nil {
			return err
		}
		attrs := src.schema.Attrs()
		if err := writeUvarint(bw, uint64(len(attrs))); err != nil {
			return err
		}
		for _, a := range attrs {
			if err := writeString(bw, a); err != nil {
				return err
			}
		}
		if err := writeUvarint(bw, uint64(src.data.Len())); err != nil {
			return err
		}
		var encErr error
		src.data.Each(func(tp value.Tuple, p V) {
			if encErr != nil {
				return
			}
			if encErr = writeString(bw, tp.Encode()); encErr != nil {
				return
			}
			encErr = codec.Encode(bw, p)
		})
		if encErr != nil {
			return encErr
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores the tree's input relations from r and
// re-evaluates every view bottom-up. The snapshot's relations must
// match the tree's configuration (names and schemas); any previous
// contents are discarded.
func (t *Tree[V]) ReadSnapshot(r io.Reader, codec ring.Codec[V]) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("view: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("view: not a F-IVM snapshot (magic %q)", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return err
	}
	switch ver {
	case 1:
		// Pre-tag format: no codec identification; trust the caller.
	case snapshotVersion:
		tag, err := readString(br)
		if err != nil {
			return err
		}
		if want := codecTag(codec); tag != want {
			return fmt.Errorf("view: snapshot written with codec %s, engine uses %s", tag, want)
		}
	default:
		return fmt.Errorf("view: unsupported snapshot version %d", ver)
	}
	nRels, err := readUvarint(br)
	if err != nil {
		return err
	}
	if nRels != uint64(len(t.sources)) {
		return fmt.Errorf("view: snapshot has %d relations, tree has %d", nRels, len(t.sources))
	}
	loaded := map[string]*relation.Map[V]{}
	for i := uint64(0); i < nRels; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		src, ok := t.sources[name]
		if !ok {
			return fmt.Errorf("view: snapshot relation %s not in tree", name)
		}
		nAttrs, err := readUvarint(br)
		if err != nil {
			return err
		}
		attrs := make([]string, nAttrs)
		for j := range attrs {
			if attrs[j], err = readString(br); err != nil {
				return err
			}
		}
		if !value.NewSchema(attrs...).Equal(src.schema) {
			return fmt.Errorf("view: snapshot schema %v for %s, tree has %v", attrs, name, src.schema)
		}
		nTuples, err := readUvarint(br)
		if err != nil {
			return err
		}
		m := relation.New[V](src.schema)
		for j := uint64(0); j < nTuples; j++ {
			key, err := readString(br)
			if err != nil {
				return err
			}
			tp, err := value.DecodeTuple(key)
			if err != nil {
				return fmt.Errorf("view: snapshot tuple in %s: %w", name, err)
			}
			if len(tp) != src.schema.Len() {
				// A desynced (corrupt) payload stream can still decode
				// into a valid-looking tuple of the wrong arity; error
				// out rather than panic in the relation layer.
				return fmt.Errorf("view: snapshot tuple in %s has %d attributes, schema has %d (corrupt snapshot?)", name, len(tp), src.schema.Len())
			}
			p, err := codec.Decode(br)
			if err != nil {
				return err
			}
			m.Set(tp, p)
		}
		loaded[name] = m
	}
	for name, m := range loaded {
		t.sources[name].data = m
	}
	for _, root := range t.roots {
		t.refresh(root)
	}
	t.recomputeResult()
	t.registerIndexes()
	return nil
}

// The small binary helpers mirror ring's unexported ones; duplicated
// here to keep the packages decoupled.

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [10]byte
	n := 0
	for v >= 0x80 {
		buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	buf[n] = byte(v)
	_, err := w.Write(buf[:n+1])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	var out uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		out |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return out, nil
		}
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("view: varint overflow")
		}
	}
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("view: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

package view_test

// End-to-end test of a non-commutative payload ring: per-edge transition
// matrices aggregated over a two-hop path join. This exercises the
// engine's structural product order — with matrix payloads, any
// accidental operand swap changes the result.

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

func TestMatrixPayloadsOverPathJoin(t *testing.T) {
	const dim = 2
	r := ring.NewMatrixRing(dim)
	rels := []vo.Rel{
		{Name: "E1", Schema: value.NewSchema("A", "B")},
		{Name: "E2", Schema: value.NewSchema("B", "C")},
	}
	tr, err := view.New(view.Spec[*ring.Matrix]{Ring: r, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	randM := func() *ring.Matrix {
		m := r.New()
		for i := range m.Data {
			m.Data[i] = float64(rng.Intn(5))
		}
		return m
	}

	// Two-hop graph: edges (a, b) and (b, c) with a matrix per edge.
	e1 := relation.New[*ring.Matrix](rels[0].Schema)
	e2 := relation.New[*ring.Matrix](rels[1].Schema)
	type edge struct {
		from, to int
		m        *ring.Matrix
	}
	var edges1, edges2 []edge
	for i := 0; i < 6; i++ {
		ed := edge{rng.Intn(3), rng.Intn(3), randM()}
		edges1 = append(edges1, ed)
		e1.Merge(r, value.T(ed.from, ed.to), ed.m)
	}
	for i := 0; i < 6; i++ {
		ed := edge{rng.Intn(3), rng.Intn(3), randM()}
		edges2 = append(edges2, ed)
		e2.Merge(r, value.T(ed.from, ed.to), ed.m)
	}
	if err := tr.InitWeighted(map[string]*relation.Map[*ring.Matrix]{"E1": e1, "E2": e2}); err != nil {
		t.Fatal(err)
	}

	// Reference: Σ over matching paths of M1 · M2 in path order, using
	// the merged edge payloads (parallel edges sum).
	expect := func() *ring.Matrix {
		total := r.Zero()
		e1.Each(func(t1 value.Tuple, m1 *ring.Matrix) {
			e2.Each(func(t2 value.Tuple, m2 *ring.Matrix) {
				if t1[1].Equal(t2[0]) {
					total = r.Add(total, r.Mul(m1, m2))
				}
			})
		})
		return total
	}
	got := tr.ResultPayload()
	if want := expect(); !got.Equal(want) && !(r.IsZero(got) && r.IsZero(want)) {
		t.Fatalf("path-matrix aggregate:\n got %v\nwant %v", got, want)
	}

	// Incremental edge insertion keeps the product order.
	dm := randM()
	d := relation.New[*ring.Matrix](rels[0].Schema)
	d.Set(value.T(0, 0), dm)
	if err := tr.ApplyDelta("E1", d); err != nil {
		t.Fatal(err)
	}
	e1.Merge(r, value.T(0, 0), dm)
	got = tr.ResultPayload()
	if want := expect(); !got.Equal(want) && !(r.IsZero(got) && r.IsZero(want)) {
		t.Fatalf("after delta:\n got %v\nwant %v", got, want)
	}

	// Deleting the edge (negative payload) restores the previous state.
	dneg := relation.New[*ring.Matrix](rels[0].Schema)
	dneg.Set(value.T(0, 0), r.Neg(dm))
	if err := tr.ApplyDelta("E1", dneg); err != nil {
		t.Fatal(err)
	}
	e1.Merge(r, value.T(0, 0), r.Neg(dm))
	got = tr.ResultPayload()
	if want := expect(); !got.Equal(want) && !(r.IsZero(got) && r.IsZero(want)) {
		t.Fatalf("after delete:\n got %v\nwant %v", got, want)
	}
}

package view

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// DefaultParallelThreshold is the delta size (distinct tuples) below
// which ApplyDelta stays sequential even when workers are configured:
// partitioning and goroutine handoff cost more than they save on small
// batches.
const DefaultParallelThreshold = 128

// SetParallelism enables hash-partitioned parallel delta maintenance.
// ApplyDelta splits each incoming delta into `workers` partitions by the
// hash of the anchor node's join key and runs one fused
// propagate+commit worker per live partition: the worker propagates its
// partition leaf-to-root and immediately merges the resulting delta
// views into the tree under short per-map merge locks, so both phases
// scale with workers (PR 3 parallelized only propagation; the
// sequential commit tail it left is gone). workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 restores the sequential path.
// minBatch <= 0 selects DefaultParallelThreshold; deltas smaller than
// minBatch are applied sequentially regardless of workers.
//
// Correctness rests on two properties: propagation only READS off-path
// state (sibling views, other anchored relations) while commit only
// WRITES path state — each view map mutating under its own merge lock,
// which also covers its persistent indexes and entry arena — and the
// ring addition used to merge is associative and commutative with
// payloads treated as immutable (see ring.Ring). The final views are
// therefore the same as the sequential path's, independent of
// partitioning and of commit interleaving — bit-identical whenever ring
// addition is exact (integer rings, and float rings over integer-valued
// data, which the equivalence tests assert). For inexact float data the
// partition merges group float64 additions differently and may differ
// in the last bits; that is the same rounding nondeterminism the
// sequential path already has across runs, whose summation order
// follows randomized map iteration.
//
// The tree stays externally single-writer: SetParallelism must not be
// called concurrently with maintenance, and Tree remains unsafe for
// concurrent use by multiple callers.
func (t *Tree[V]) SetParallelism(workers, minBatch int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if minBatch <= 0 {
		minBatch = DefaultParallelThreshold
	}
	t.workers = workers
	t.minParallel = minBatch
}

// Parallelism reports the configured worker count and the minimum delta
// size routed to the parallel path (1 and DefaultParallelThreshold when
// never configured).
func (t *Tree[V]) Parallelism() (workers, minBatch int) {
	w, mb := t.workers, t.minParallel
	if w <= 0 {
		w = 1
	}
	if mb <= 0 {
		mb = DefaultParallelThreshold
	}
	return w, mb
}

// propagation is the read-only half of one delta application: the delta
// view computed at every node of the leaf-to-root path, plus the delta
// of the query result. Nothing in it aliases mutable tree state, so
// propagations for disjoint partitions of one delta can be computed
// concurrently and committed in any order.
type propagation[V any] struct {
	// steps[i] is the delta view for path[i]; the slice stops early when
	// a delta cancels to empty (nothing further can change upward).
	steps []*relation.Map[V]
	// dres is the result-level delta (nil when the propagation died out
	// before reaching the root).
	dres *relation.Map[V]
}

// pathOf returns the leaf-to-root node path starting at anchor n.
func pathOf[V any](n *Node[V]) []*Node[V] {
	var out []*Node[V]
	for ; n != nil; n = n.parent {
		out = append(out, n)
	}
	return out
}

// propagate computes the delta views along path for one delta (or one
// partition of a delta) WITHOUT mutating any tree state. At each node
// the delta joins the materialized views of the node's other children
// and the full contents of its other anchored relations — all off-path
// state — and the node's variable is marginalized. Because every read
// is off-path and every write is deferred to commit, propagate is safe
// to run concurrently for partitions of the same delta.
//
// steps is the (possibly nil) buffer the propagation appends its step
// views to: the sequential caller passes the tree's recycled scratch,
// concurrent partition workers pass nil for a goroutine-local slice.
func (t *Tree[V]) propagate(src *source[V], delta *relation.Map[V], path []*Node[V], steps []*relation.Map[V]) propagation[V] {
	if cap(steps) < len(path) {
		steps = make([]*relation.Map[V], 0, len(path))
	}
	p := propagation[V]{steps: steps}
	d := t.evalNodeDelta(path[0], path[0].parts(src.data, delta))
	for i := 0; ; i++ {
		p.steps = append(p.steps, d)
		if d.Len() == 0 {
			return p // the delta cancelled out; nothing to propagate
		}
		if i+1 == len(path) {
			break
		}
		d = t.evalNodeDelta(path[i+1], path[i+1].parts(path[i].view, d))
	}
	// d reached the root: join with the other root views (disconnected
	// queries) and project to the result schema, replaying the root's
	// build-time plan. Like the path steps this probes the other roots'
	// persistent indexes rather than scanning their views.
	dres := d
	root := path[len(path)-1]
	t.eachResJoin(root, func(other *Node[V], plan *relation.JoinPlan) {
		dres = relation.JoinProbeWith(plan, t.ring, dres, other.view)
	})
	p.dres = relation.AggregateWith(root.resAgg, t.ring, dres, nil)
	return p
}

// commit merges one propagation into the tree: each step into its path
// node's view and the result delta into the query result, counting the
// merged tuples. Only commit (and the source merge in ApplyDelta)
// writes tree state. This is the sequential form; concurrent partition
// workers go through commitConcurrent.
func (t *Tree[V]) commit(p propagation[V], path []*Node[V]) {
	for i, d := range p.steps {
		if d.Len() == 0 {
			continue
		}
		path[i].view.MergeAll(t.ring, d)
		t.stats.DeltaTuples += d.Len()
	}
	if p.dres != nil && p.dres.Len() > 0 {
		t.result.MergeAll(t.ring, p.dres)
		t.stats.DeltaTuples += p.dres.Len()
	}
}

// commitConcurrent is commit for a parallel-path worker: each step
// merges into its path node's view under the node's merge lock, the
// result delta under the tree's result lock. The locks cover the whole
// MergeAll, so a view's primary map, its built indexes, and its entry
// arena mutate atomically with respect to the other workers; between
// two merges of the same node the ring addition's associativity and
// commutativity make the interleaving order irrelevant to the final
// payloads (exactly whenever the ring is exact — the scope documented
// on SetParallelism). The merged tuple count is returned instead of
// added to t.stats, which stays single-writer.
func (t *Tree[V]) commitConcurrent(p propagation[V], path []*Node[V]) int {
	n := 0
	for i, d := range p.steps {
		if d.Len() == 0 {
			continue
		}
		nd := path[i]
		nd.mu.Lock()
		nd.view.MergeAll(t.ring, d)
		nd.mu.Unlock()
		n += d.Len()
	}
	if p.dres != nil && p.dres.Len() > 0 {
		t.resMu.Lock()
		t.result.MergeAll(t.ring, p.dres)
		t.resMu.Unlock()
		n += p.dres.Len()
	}
	return n
}

// applyDeltaParallel is the parallel body of ApplyDelta: partition the
// delta by the hash of the anchor's join key and run one fused
// propagate+commit worker per live partition. Each worker computes its
// partition's delta views (reading only off-path state and writing
// goroutine-local maps — no locks) and immediately merges them into the
// path views under the per-node merge locks (commitConcurrent), so
// commit parallelizes along with propagate and no barrier serializes
// the two phases: a worker whose partition propagated quickly commits
// while slower partitions are still propagating. The source-relation
// merge overlaps the workers on the calling goroutine — src.data is
// substituted out of every propagation (parts replaces it with the
// partition), so no worker ever reads it.
//
// Exactness is the same associativity argument as before, now applied
// per map instead of per phase: every view ends up as its old contents
// plus the ring sum of the per-partition deltas, and the merge locks
// only determine the ORDER of additions, which associativity and
// commutativity make irrelevant (bit-identical for exact rings; see
// SetParallelism for the inexact-float caveat).
func (t *Tree[V]) applyDeltaParallel(src *source[V], delta *relation.Map[V], path []*Node[V]) {
	// The join key: the anchor's dependency set restricted to the
	// relation's schema — the attributes through which this delta's
	// effects flow upward. Tuples agreeing on it land in one partition,
	// so partitions touch disjoint key ranges of the anchor view (upper
	// nodes can still collide on group keys, which is what the commit
	// locks are for). An empty key (relation fully marginalized at the
	// anchor) degrades to a full-tuple hash, which is still correct,
	// merely key-oblivious.
	keyIdx := delta.PartitionKey(src.anchor.vn.Keys)
	if len(src.parts) != t.workers {
		src.parts = make([]*relation.Map[V], t.workers)
	}
	parts := delta.PartitionInto(src.parts, keyIdx)
	live := t.liveParts[:0]
	for _, p := range parts {
		if p.Len() > 0 {
			live = append(live, p)
		}
	}
	t.liveParts = live
	if len(live) <= 1 {
		// Hash skew put every tuple in one partition (e.g. a per-key
		// burst): a goroutine handoff would buy zero parallelism, so
		// run the sequential body on the original delta.
		p := t.propagate(src, delta, path, t.propSteps[:0])
		src.data.MergeAll(t.ring, delta)
		t.stats.DeltaTuples += delta.Len()
		t.commit(p, path)
		for i := range p.steps {
			p.steps[i] = nil
		}
		t.propSteps = p.steps[:0]
		for _, p := range parts {
			p.Reset()
		}
		return
	}
	var tuples atomic.Int64
	var wg sync.WaitGroup
	for _, part := range live {
		wg.Add(1)
		go func(part *relation.Map[V]) {
			defer wg.Done()
			p := t.propagate(src, part, path, nil)
			tuples.Add(int64(t.commitConcurrent(p, path)))
		}(part)
	}
	src.data.MergeAll(t.ring, delta)
	wg.Wait()
	t.stats.DeltaTuples += delta.Len() + int(tuples.Load())
	// Clear the recycled partition slots now rather than at next use:
	// they share entries with the just-applied delta and would otherwise
	// pin it in memory while the tree sits idle.
	for _, p := range parts {
		p.Reset()
	}
}

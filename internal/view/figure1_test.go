package view_test

// Tests reproducing Figure 1 of the paper end-to-end: the query
// Q = SUM(gB(B) * gC(C) * gD(D)) over R(A,B) ⋈ S(A,C,D) on the toy
// database
//
//	R = {(a1,b1), (a1,b1'), (a2,b2)}   — drawn as A B # with b1 mult 2
//	S = {(a1,c1,d1), (a1,c2,d3), (a2,c2,d2)}
//
// under four ring scenarios: Z counts, COVAR with continuous B,C,D,
// COVAR with categorical C, and MI with categorical B,C,D — plus the
// δR/δS maintenance shown on the right of the figure.
//
// The figure's relation contents (its key tables) are:
//
//	R(A,B):   (a1,b1)→1, (a2,b2)→1
//	S(A,C,D): (a1,c1,d1)→1, (a1,c2,d3)→1, (a2,c2,d2)→1
//
// so the join R⋈S holds (a1,b1,c1,d1), (a1,b1,c2,d3), (a2,b2,c2,d2),
// with attribute values b_i = c_i = d_i = i (b1=1, c2=2, d3=3, ...).
// Every expected number asserted below appears verbatim in the figure.

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// figure1Rels returns the schemas of R(A,B) and S(A,C,D).
func figure1Rels() []vo.Rel {
	return []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C", "D")},
	}
}

// figure1Data returns the toy database of Figure 1.
func figure1Data() map[string][]value.Tuple {
	return map[string][]value.Tuple{
		"R": {
			value.T("a1", 1), // (a1, b1)
			value.T("a2", 2), // (a2, b2)
		},
		"S": {
			value.T("a1", 1, 1), // (a1, c1, d1)
			value.T("a1", 2, 3), // (a1, c2, d3)
			value.T("a2", 2, 2), // (a2, c2, d2)
		},
	}
}

// figure1Order builds the figure's view tree: A at the root with R and S
// anchored below (B under R's side, C/D under S's side).
func figure1Order(t *testing.T) *vo.Order {
	t.Helper()
	ord, err := vo.Build(figure1Rels())
	if err != nil {
		t.Fatalf("vo.Build: %v", err)
	}
	if err := vo.Validate(ord, figure1Rels()); err != nil {
		t.Fatalf("vo.Validate: %v", err)
	}
	return ord
}

// TestFigure1Count checks the count-aggregate scenario: Q = SUM(1) = 3,
// VR = {a1→1, a2→1}, VS = {a1→2, a2→1} (payload column # in the figure,
// where VR aggregates per A and the root multiplies matching payloads).
func TestFigure1Count(t *testing.T) {
	tr, err := view.New(view.Spec[int64]{
		Ring:      ring.Ints{},
		Order:     figure1Order(t),
		Relations: figure1Rels(),
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if got := tr.ResultPayload(); got != 3 {
		t.Errorf("count result = %d, want 3 (join has 3 tuples)", got)
	}
}

// TestFigure1CountUpdates replays the figure's right-hand maintenance
// scenario under the Z ring: insert a new R tuple for a1, check δ
// propagation, then delete it and check the result returns.
func TestFigure1CountUpdates(t *testing.T) {
	tr, err := view.New(view.Spec[int64]{
		Ring:      ring.Ints{},
		Order:     figure1Order(t),
		Relations: figure1Rels(),
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}

	// δR = {(a1, b1) → +1}: a1 has 2 matching S tuples, so Q grows by 2.
	if err := tr.Insert("R", value.T("a1", 1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if got := tr.ResultPayload(); got != 5 {
		t.Errorf("after insert: count = %d, want 5", got)
	}

	// Delete it again: back to 3.
	if err := tr.Delete("R", value.T("a1", 1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := tr.ResultPayload(); got != 3 {
		t.Errorf("after delete: count = %d, want 3", got)
	}

	// Delete an S tuple: (a2, c2, d2) removes the only a2 join partner.
	if err := tr.Delete("S", value.T("a2", 2, 2)); err != nil {
		t.Fatalf("Delete S: %v", err)
	}
	if got := tr.ResultPayload(); got != 2 {
		t.Errorf("after S delete: count = %d, want 2", got)
	}
}

// covarIdx fixes the aggregate indexing B=0, C=1, D=2 used by all COVAR
// scenarios below.
const (
	idxB = 0
	idxC = 1
	idxD = 2
)

// TestFigure1CovarContinuous checks the COVAR scenario with continuous
// B, C, D (payload column "COVAR (cont. B,C,D)"): with b_i = c_i = d_i
// = i the join is {(1,1,1), (1,2,3), (2,2,2)} over (B,C,D), so
//
//	count = 3
//	SUM(B) = 4,  SUM(C) = 5,  SUM(D) = 6
//	SUM(B*B) = 6, SUM(B*C) = 7, SUM(B*D) = 8
//	SUM(C*C) = 9, SUM(C*D) = 11, SUM(D*D) = 14
//
// matching the numbers printed inside the figure's root payload
// (6 7 8 / 9 11 / 14 with the vector 4 5 6 and count 3).
func TestFigure1CovarContinuous(t *testing.T) {
	r := ring.NewCovarRing(3)
	tr, err := view.New(view.Spec[*ring.Covar]{
		Ring:      r,
		Order:     figure1Order(t),
		Relations: figure1Rels(),
		Lifts: map[string]ring.Lift[*ring.Covar]{
			"B": r.Lift(idxB),
			"C": r.Lift(idxC),
			"D": r.Lift(idxD),
		},
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	got := tr.ResultPayload()
	if got == nil {
		t.Fatal("nil COVAR result")
	}
	checkF := func(name string, g, w float64) {
		t.Helper()
		if math.Abs(g-w) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, g, w)
		}
	}
	checkF("count", got.Count(), 3)
	checkF("SUM(B)", got.Sum(idxB), 4)
	checkF("SUM(C)", got.Sum(idxC), 5)
	checkF("SUM(D)", got.Sum(idxD), 6)
	checkF("SUM(B*B)", got.Prod(idxB, idxB), 6)
	checkF("SUM(B*C)", got.Prod(idxB, idxC), 7)
	checkF("SUM(B*D)", got.Prod(idxB, idxD), 8)
	checkF("SUM(C*C)", got.Prod(idxC, idxC), 9)
	checkF("SUM(C*D)", got.Prod(idxC, idxD), 11)
	checkF("SUM(D*D)", got.Prod(idxD, idxD), 14)
}

// TestFigure1CovarContinuousUpdates replays the figure's δR maintenance
// under the degree-3 ring: δR = {(a1,b1)}, whose δQ contribution is the
// product gB(b1) ⊗ VS(a1).
func TestFigure1CovarContinuousUpdates(t *testing.T) {
	r := ring.NewCovarRing(3)
	tr, err := view.New(view.Spec[*ring.Covar]{
		Ring:      r,
		Order:     figure1Order(t),
		Relations: figure1Rels(),
		Lifts: map[string]ring.Lift[*ring.Covar]{
			"B": r.Lift(idxB),
			"C": r.Lift(idxC),
			"D": r.Lift(idxD),
		},
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	before := tr.ResultPayload()

	// Insert (a1, b1): the join gains (B,C,D) tuples (1,1,1) and (1,2,3).
	if err := tr.Insert("R", value.T("a1", 1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got := tr.ResultPayload()
	if w := before.Count() + 2; got.Count() != w {
		t.Errorf("count after insert = %v, want %v", got.Count(), w)
	}
	if w := before.Sum(idxB) + 2; got.Sum(idxB) != w { // +1 +1
		t.Errorf("SUM(B) after insert = %v, want %v", got.Sum(idxB), w)
	}
	if w := before.Prod(idxB, idxD) + 1*1 + 1*3; got.Prod(idxB, idxD) != w {
		t.Errorf("SUM(B*D) after insert = %v, want %v", got.Prod(idxB, idxD), w)
	}

	// Delete it: payload returns exactly (ring values are integral here).
	if err := tr.Delete("R", value.T("a1", 1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := tr.ResultPayload(); !got.Equal(before) {
		t.Errorf("after delete: result %v, want %v", got, before)
	}
}

// TestFigure1CovarCategorical checks the mixed scenario (payload column
// "COVAR (cat. C, cont. B, D)"): C is categorical, so s_C = SUM(1)
// GROUP BY C = {c1→1, c2→2} and Q_BC = SUM(B) GROUP BY C = {c1→1, c2→3},
// while continuous entries match the all-continuous scenario.
func TestFigure1CovarCategorical(t *testing.T) {
	r := ring.NewRelCovarRing(3)
	tr, err := view.New(view.Spec[*ring.RelCovar]{
		Ring:      r,
		Order:     figure1Order(t),
		Relations: figure1Rels(),
		Lifts: map[string]ring.Lift[*ring.RelCovar]{
			"B": r.LiftContinuous(idxB),
			"C": r.LiftCategorical(idxC),
			"D": r.LiftContinuous(idxD),
		},
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	got := tr.ResultPayload()
	if got == nil {
		t.Fatal("nil RelCovar result")
	}

	// Count: {() → 3}.
	if c := got.Count().Scalar(); c != 3 {
		t.Errorf("count = %v, want 3", c)
	}
	// Continuous sums: 0-dimensional relations.
	if s := got.Sum(idxB).Scalar(); s != 4 {
		t.Errorf("SUM(B) = %v, want 4", s)
	}
	if s := got.Sum(idxD).Scalar(); s != 6 {
		t.Errorf("SUM(D) = %v, want 6", s)
	}
	// Categorical C: s_C = {c1→1, c2→2} — figure payload "C # c1 1, c2 2".
	sc := got.Sum(idxC)
	if g := sc.Get(value.T(1)); g != 1 {
		t.Errorf("s_C(c1) = %v, want 1", g)
	}
	if g := sc.Get(value.T(2)); g != 2 {
		t.Errorf("s_C(c2) = %v, want 2", g)
	}
	if sc.Len() != 2 {
		t.Errorf("s_C has %d groups, want 2: %v", sc.Len(), sc)
	}
	// Q_BC = SUM(B) GROUP BY C = {c1→1, c2→1+2=3} — figure "c1 1, c2 3".
	qbc := got.Prod(idxB, idxC)
	if g := qbc.Get(value.T(1)); g != 1 {
		t.Errorf("Q_BC(c1) = %v, want 1", g)
	}
	if g := qbc.Get(value.T(2)); g != 3 {
		t.Errorf("Q_BC(c2) = %v, want 3", g)
	}
	// Q_CC = SUM(1) GROUP BY C (diagonal one-hot): {c1→1, c2→2}.
	qcc := got.Prod(idxC, idxC)
	if g := qcc.Get(value.T(1)); g != 1 {
		t.Errorf("Q_CC(c1) = %v, want 1", g)
	}
	if g := qcc.Get(value.T(2)); g != 2 {
		t.Errorf("Q_CC(c2) = %v, want 2", g)
	}
	// Q_CD = SUM(D) GROUP BY C = {c1→1, c2→3+2=5} — figure "c1 1, c2 5".
	qcd := got.Prod(idxC, idxD)
	if g := qcd.Get(value.T(1)); g != 1 {
		t.Errorf("Q_CD(c1) = %v, want 1", g)
	}
	if g := qcd.Get(value.T(2)); g != 5 {
		t.Errorf("Q_CD(c2) = %v, want 5", g)
	}
	// Continuous-continuous entries: Q_BD = SUM(B*D) = 8, Q_BB = 6,
	// Q_DD = 14.
	if g := got.Prod(idxB, idxD).Scalar(); g != 8 {
		t.Errorf("Q_BD = %v, want 8", g)
	}
	if g := got.Prod(idxB, idxB).Scalar(); g != 6 {
		t.Errorf("Q_BB = %v, want 6", g)
	}
	if g := got.Prod(idxD, idxD).Scalar(); g != 14 {
		t.Errorf("Q_DD = %v, want 14", g)
	}
}

// TestFigure1MI checks the MI scenario (payload column "MI (cat.
// B,C,D)"): all three attributes categorical, so the payload carries the
// count C∅ = 3, the marginal count vectors, and the pairwise count
// matrices:
//
//	C_B = {b1→2, b2→1}, C_C = {c1→1, c2→2}, C_D = {d1→1, d2→1, d3→1}
//	C_BC = {(b1,c1)→1, (b1,c2)→1, (b2,c2)→1}
//	C_BD = {(b1,d1)→1, (b1,d3)→1, (b2,d2)→1}
//	C_CD = {(c1,d1)→1, (c2,d3)→1, (c2,d2)→1}
//
// exactly the tables printed in the figure's MI column.
func TestFigure1MI(t *testing.T) {
	r := ring.NewRelCovarRing(3)
	tr, err := view.New(view.Spec[*ring.RelCovar]{
		Ring:      r,
		Order:     figure1Order(t),
		Relations: figure1Rels(),
		Lifts: map[string]ring.Lift[*ring.RelCovar]{
			"B": r.LiftCategorical(idxB),
			"C": r.LiftCategorical(idxC),
			"D": r.LiftCategorical(idxD),
		},
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	got := tr.ResultPayload()

	if c := got.Count().Scalar(); c != 3 {
		t.Errorf("C∅ = %v, want 3", c)
	}
	wantRel := func(name string, got ring.RelVal, want map[string]float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Errorf("%s = %v, want %d groups", name, got, len(want))
			return
		}
		for k, w := range want {
			if g := got[k]; g != w {
				t.Errorf("%s[%v] = %v, want %v", name, value.MustDecodeTuple(k), g, w)
			}
		}
	}
	k1 := value.T(1).Encode()
	k2 := value.T(2).Encode()
	k3 := value.T(3).Encode()
	wantRel("C_B", got.Sum(idxB), map[string]float64{k1: 2, k2: 1})
	wantRel("C_C", got.Sum(idxC), map[string]float64{k1: 1, k2: 2})
	wantRel("C_D", got.Sum(idxD), map[string]float64{k1: 1, k2: 1, k3: 1})
	wantRel("C_BC", got.Prod(idxB, idxC), map[string]float64{
		value.T(1, 1).Encode(): 1,
		value.T(1, 2).Encode(): 1,
		value.T(2, 2).Encode(): 1,
	})
	wantRel("C_BD", got.Prod(idxB, idxD), map[string]float64{
		value.T(1, 1).Encode(): 1,
		value.T(1, 3).Encode(): 1,
		value.T(2, 2).Encode(): 1,
	})
	wantRel("C_CD", got.Prod(idxC, idxD), map[string]float64{
		value.T(1, 1).Encode(): 1,
		value.T(2, 3).Encode(): 1,
		value.T(2, 2).Encode(): 1,
	})
}

// TestFigure1MIUpdates checks delete maintenance under the generalized
// ring: deleting (a1,c2,d3) from S must remove exactly the join tuple
// (b1,c2,d3) from every count table.
func TestFigure1MIUpdates(t *testing.T) {
	r := ring.NewRelCovarRing(3)
	tr, err := view.New(view.Spec[*ring.RelCovar]{
		Ring:      r,
		Order:     figure1Order(t),
		Relations: figure1Rels(),
		Lifts: map[string]ring.Lift[*ring.RelCovar]{
			"B": r.LiftCategorical(idxB),
			"C": r.LiftCategorical(idxC),
			"D": r.LiftCategorical(idxD),
		},
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if err := tr.Delete("S", value.T("a1", 2, 3)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got := tr.ResultPayload()
	if c := got.Count().Scalar(); c != 2 {
		t.Errorf("C∅ after delete = %v, want 2", c)
	}
	if g := got.Sum(idxB).Get(value.T(1)); g != 1 {
		t.Errorf("C_B(b1) after delete = %v, want 1", g)
	}
	if g := got.Prod(idxC, idxD).Get(value.T(2, 3)); g != 0 {
		t.Errorf("C_CD(c2,d3) after delete = %v, want gone", g)
	}
	// Re-insert restores the initial state exactly.
	if err := tr.Insert("S", value.T("a1", 2, 3)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if c := tr.ResultPayload().Count().Scalar(); c != 3 {
		t.Errorf("C∅ after re-insert = %v, want 3", c)
	}
}

// TestFigure1ViewContents verifies the intermediate views VR and VS in
// the count scenario: VR = SUM(gB(B)) GROUP BY A over R and
// VS = SUM(gC(C)*gD(D)) GROUP BY A over S.
func TestFigure1ViewContents(t *testing.T) {
	tr, err := view.New(view.Spec[int64]{
		Ring:      ring.Ints{},
		Order:     figure1Order(t),
		Relations: figure1Rels(),
	})
	if err != nil {
		t.Fatalf("view.New: %v", err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatalf("Init: %v", err)
	}

	// Find the views keyed by [A]: those are VR and VS (children of the
	// root A node).
	root := tr.Roots()[0]
	if root.Var() != "A" {
		t.Fatalf("root variable = %s, want A (the only join variable)", root.Var())
	}
	var perA []*relation.Map[int64]
	for _, c := range root.Children() {
		perA = append(perA, c.View())
	}
	// Relations anchored directly at A's node contribute without an
	// intermediate view; the greedy order puts B, C, D below A, so R and
	// S each sit under one child.
	if len(perA) != 2 {
		t.Fatalf("root has %d children, want 2 (VR and VS)", len(perA))
	}
	counts := map[string][2]int64{}
	for _, v := range perA {
		v.Each(func(tp value.Tuple, p int64) {
			c := counts[tp[0].Str()]
			if c[0] == 0 {
				c[0] = p
			} else {
				c[1] = p
			}
			counts[tp[0].Str()] = c
		})
	}
	// VR(a1)=1, VS(a1)=2 (in some order); VR(a2)=1, VS(a2)=1.
	a1 := counts["a1"]
	if !(a1 == [2]int64{1, 2} || a1 == [2]int64{2, 1}) {
		t.Errorf("payloads at a1 = %v, want {1,2}", a1)
	}
	a2 := counts["a2"]
	if a2 != [2]int64{1, 1} {
		t.Errorf("payloads at a2 = %v, want {1,1}", a2)
	}
}

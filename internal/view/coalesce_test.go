package view

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/vo"
)

func TestCoalesce(t *testing.T) {
	ups := []Update{
		{Rel: "R", Tuple: value.T(1, 2), Mult: 1},
		{Rel: "S", Tuple: value.T(1, 2), Mult: 1}, // same tuple, other relation
		{Rel: "R", Tuple: value.T(1, 2), Mult: 3},
		{Rel: "R", Tuple: value.T(9, 9), Mult: 1},
		{Rel: "R", Tuple: value.T(9, 9), Mult: -1}, // cancels
		{Rel: "R", Tuple: value.T(1, 2), Mult: -2},
	}
	got := Coalesce(ups)
	want := []Update{
		{Rel: "R", Tuple: value.T(1, 2), Mult: 2},
		{Rel: "S", Tuple: value.T(1, 2), Mult: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("Coalesce returned %d updates, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Rel != want[i].Rel || !got[i].Tuple.Equal(want[i].Tuple) || got[i].Mult != want[i].Mult {
			t.Errorf("Coalesce[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(Coalesce(nil)) != 0 {
		t.Error("Coalesce(nil) must be empty")
	}
}

// TestCoalesceEquivalence: applying a coalesced batch must produce the
// same tree state as applying the raw updates.
func TestCoalesceEquivalence(t *testing.T) {
	build := func() *Tree[int64] {
		tr, err := New(Spec[int64]{
			Ring:      ring.Ints{},
			Relations: []vo.Rel{{Name: "R", Schema: value.NewSchema("A", "B")}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	ups := []Update{
		{Rel: "R", Tuple: value.T(1, 1), Mult: 1},
		{Rel: "R", Tuple: value.T(1, 1), Mult: 1},
		{Rel: "R", Tuple: value.T(2, 2), Mult: 1},
		{Rel: "R", Tuple: value.T(1, 1), Mult: -1},
		{Rel: "R", Tuple: value.T(3, 3), Mult: 1},
		{Rel: "R", Tuple: value.T(3, 3), Mult: -1},
	}
	raw, co := build(), build()
	if err := raw.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if err := co.ApplyUpdates(Coalesce(ups)); err != nil {
		t.Fatal(err)
	}
	if raw.ResultPayload() != co.ResultPayload() {
		t.Fatalf("coalesced result %d != raw result %d", co.ResultPayload(), raw.ResultPayload())
	}
}

// TestLargeMultiplicity: building a delta from a huge Mult must cost
// O(log Mult), not Mult ring additions — this would hang for minutes if
// the multiplicity were applied by repeated Merge.
func TestLargeMultiplicity(t *testing.T) {
	tr, err := New(Spec[int64]{
		Ring:      ring.Ints{},
		Relations: []vo.Rel{{Name: "R", Schema: value.NewSchema("A", "B")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const huge = 1 << 40
	d, err := tr.DeltaFor("R", []Update{
		{Rel: "R", Tuple: value.T(1, 2), Mult: huge},
		{Rel: "R", Tuple: value.T(3, 4), Mult: -3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Get(value.T(1, 2)); got != huge {
		t.Fatalf("delta payload = %d, want %d", got, int64(huge))
	}
	if got, _ := d.Get(value.T(3, 4)); got != -3 {
		t.Fatalf("delta payload = %d, want -3", got)
	}
	if err := tr.ApplyUpdates([]Update{{Rel: "R", Tuple: value.T(9, 9), Mult: huge}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != huge {
		t.Fatalf("result = %d, want %d", got, int64(huge))
	}
}

package view

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
)

// Update is one tuple-level change to an input relation: Mult > 0
// inserts the tuple Mult times, Mult < 0 deletes it.
type Update struct {
	Rel   string
	Tuple value.Tuple
	Mult  int
}

// ApplyDelta applies a delta relation (tuples with ring payloads;
// negative payloads are deletes) to input relation name and propagates
// it along the leaf-to-root path, maintaining every view on the way and
// the query result at the top. This is the paper's maintenance
// mechanism: at each node the delta joins the materialized views of the
// node's other children and the full contents of its other anchored
// relations, then marginalizes the node's variable.
//
// The work splits into a read-only propagation (compute the delta view
// at every path node — see propagate) and a commit (merge those deltas
// into the views with the ring addition). When SetParallelism has
// enabled workers and the delta is large enough, both run
// hash-partitioned across goroutines — each worker propagates its
// partition and commits it under per-view merge locks; the resulting
// views are identical either way.
func (t *Tree[V]) ApplyDelta(name string, delta *relation.Map[V]) error {
	src, ok := t.sources[name]
	if !ok {
		return fmt.Errorf("view: unknown relation %s", name)
	}
	if !delta.Schema().Equal(src.schema) {
		return fmt.Errorf("view: delta schema %v does not match %s schema %v", delta.Schema(), name, src.schema)
	}
	t.stats.Updates++
	if delta.Len() == 0 {
		return nil
	}
	path := src.path
	if t.workers > 1 && delta.Len() >= t.minParallel {
		t.applyDeltaParallel(src, delta, path)
		return nil
	}
	p := t.propagate(src, delta, path, t.propSteps[:0])
	src.data.MergeAll(t.ring, delta)
	t.stats.DeltaTuples += delta.Len()
	t.commit(p, path)
	// Recycle the steps buffer, dropping the references so the merged
	// delta relations do not outlive the call pinned to the scratch.
	for i := range p.steps {
		p.steps[i] = nil
	}
	t.propSteps = p.steps[:0]
	return nil
}

// ApplyUpdates groups tuple-level updates by relation and applies one
// delta per relation, in first-appearance order. This is the bulk-update
// entry point used by the demo scenarios (e.g. bulks of 10K updates).
//
// The per-relation delta buffers are owned by the tree and recycled
// across calls (Reset, not reallocated); the payloads they carry are
// freshly built each batch, so views retaining them stay valid. This is
// safe under the tree's existing single-writer contract.
func (t *Tree[V]) ApplyUpdates(ups []Update) error {
	order := t.updOrder[:0]
	for _, u := range ups {
		src, ok := t.sources[u.Rel]
		if !ok {
			for _, name := range order {
				t.sources[name].inBatch = false
			}
			t.updOrder = order[:0]
			return fmt.Errorf("view: unknown relation %s", u.Rel)
		}
		if !src.inBatch {
			src.inBatch = true
			if src.delta == nil {
				src.delta = relation.New[V](src.schema)
			} else {
				src.delta.Reset()
			}
			order = append(order, u.Rel)
		}
		src.delta.Merge(t.ring, u.Tuple, t.payloadFor(u.Mult))
	}
	var err error
	for _, name := range order {
		src := t.sources[name]
		src.inBatch = false
		if err == nil {
			err = t.ApplyDelta(name, src.delta)
		}
	}
	t.updOrder = order[:0]
	return err
}

// Insert is a convenience wrapper applying single-tuple inserts to one
// relation.
func (t *Tree[V]) Insert(rel string, tuples ...value.Tuple) error {
	ups := make([]Update, len(tuples))
	for i, tp := range tuples {
		ups[i] = Update{Rel: rel, Tuple: tp, Mult: 1}
	}
	return t.ApplyUpdates(ups)
}

// Delete is a convenience wrapper applying single-tuple deletes to one
// relation.
func (t *Tree[V]) Delete(rel string, tuples ...value.Tuple) error {
	ups := make([]Update, len(tuples))
	for i, tp := range tuples {
		ups[i] = Update{Rel: rel, Tuple: tp, Mult: -1}
	}
	return t.ApplyUpdates(ups)
}

// Coalesce merges updates that target the same relation and tuple by
// summing their multiplicities — the paper's batch-update preprocessing:
// an insert and a delete of the same tuple inside one batch cancel
// before any view work happens. Updates that net to zero are dropped;
// the first-appearance order of surviving (relation, tuple) pairs is
// preserved. The input is not modified.
//
// No maintenance path needs it anymore: DeltaFor (and so the serving
// pipeline's delta build) coalesces inherently by merging payloads
// under the ring addition. It remains for callers that want to shrink
// an update stream while it is still a []Update — e.g. before
// transporting or logging one.
func Coalesce(ups []Update) []Update {
	type slot struct {
		pos  int
		mult int
	}
	merged := make(map[string]slot, len(ups))
	out := make([]Update, 0, len(ups))
	for _, u := range ups {
		k := u.Rel + "\x00" + u.Tuple.Encode()
		if s, ok := merged[k]; ok {
			s.mult += u.Mult
			merged[k] = s
			out[s.pos].Mult = s.mult
			continue
		}
		merged[k] = slot{pos: len(out), mult: u.Mult}
		out = append(out, u)
	}
	compact := out[:0]
	for _, u := range out {
		if u.Mult != 0 {
			compact = append(compact, u)
		}
	}
	return compact
}

// scaledOne returns n × 1 (n ≥ 0) in the ring by binary doubling, so a
// large multiplicity costs O(log n) ring additions instead of n.
func scaledOne[V any](r ring.Ring[V], n int) V {
	acc := r.Zero()
	pow := r.One()
	for n > 0 {
		if n&1 == 1 {
			acc = r.Add(acc, pow)
		}
		n >>= 1
		if n > 0 {
			pow = r.Add(pow, pow)
		}
	}
	return acc
}

// payloadFor returns mult × 1 in the ring (negative for deletes). The
// ±1 payloads of single-tuple updates come from the tree's shared cache
// — stored payloads are immutable, so one value can back any number of
// tuples.
func (t *Tree[V]) payloadFor(mult int) V {
	switch mult {
	case 1:
		return t.one
	case -1:
		return t.negOne
	}
	if mult < 0 {
		return t.ring.Neg(scaledOne(t.ring, -mult))
	}
	return scaledOne(t.ring, mult)
}

// DeltaFor builds a delta relation for rel from (tuple, multiplicity)
// pairs, for callers that want to drive ApplyDelta directly.
func (t *Tree[V]) DeltaFor(rel string, ups []Update) (*relation.Map[V], error) {
	src, ok := t.sources[rel]
	if !ok {
		return nil, fmt.Errorf("view: unknown relation %s", rel)
	}
	d := relation.New[V](src.schema)
	for _, u := range ups {
		if u.Rel != rel {
			return nil, fmt.Errorf("view: DeltaFor(%s) got update for %s", rel, u.Rel)
		}
		d.Merge(t.ring, u.Tuple, t.payloadFor(u.Mult))
	}
	return d, nil
}

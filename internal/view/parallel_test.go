package view

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/vo"
)

// treeState renders every view of the tree plus the sources and result
// deterministically (sorted tuples, canonical payload rendering), so two
// trees can be compared for bit-identical state.
func treeState[V any](t *Tree[V]) string {
	var b strings.Builder
	var walk func(n *Node[V])
	walk = func(n *Node[V]) {
		fmt.Fprintf(&b, "view %s = %s\n", n.Var(), n.View())
		for _, c := range n.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	for _, name := range t.RelationNames() {
		src, _ := t.Source(name)
		fmt.Fprintf(&b, "source %s = %s\n", name, src)
	}
	fmt.Fprintf(&b, "result = %s\n", t.Result())
	return b.String()
}

// biasedStream produces n mixed insert/delete updates over the given
// relations with small integer values, deleting only live tuples (with
// probability delBias per step) so payloads genuinely cancel to zero
// mid-stream. High biases make annihilation — and with it the O(1)
// index-removal path — the dominant operation.
func biasedStream(rnd *rand.Rand, rels []vo.Rel, n int, delBias float64) []Update {
	live := make(map[string][]value.Tuple, len(rels))
	ups := make([]Update, 0, n)
	for len(ups) < n {
		r := rels[rnd.Intn(len(rels))]
		if l := live[r.Name]; len(l) > 0 && rnd.Float64() < delBias {
			i := rnd.Intn(len(l))
			ups = append(ups, Update{Rel: r.Name, Tuple: l[i], Mult: -1})
			live[r.Name] = append(l[:i], l[i+1:]...)
			continue
		}
		tp := make(value.Tuple, r.Schema.Len())
		for i := range tp {
			tp[i] = value.Int(int64(rnd.Intn(6)))
		}
		ups = append(ups, Update{Rel: r.Name, Tuple: tp, Mult: 1})
		live[r.Name] = append(live[r.Name], tp)
	}
	return ups
}

// randomStream is biasedStream at the moderate delete bias most
// equivalence tests use.
func randomStream(rnd *rand.Rand, rels []vo.Rel, n int) []Update {
	return biasedStream(rnd, rels, n, 0.35)
}

// runEquivalence drives a sequential and a parallel tree through the
// same randomized update stream in batches and asserts bit-identical
// state after every batch. The integer-valued data keeps all float
// arithmetic exact, so "identical" really means identical, not
// approximately equal.
func runEquivalence[V any](t *testing.T, build func() (*Tree[V], error), rels []vo.Rel, workers int) {
	t.Helper()
	seq, err := build()
	if err != nil {
		t.Fatal(err)
	}
	par, err := build()
	if err != nil {
		t.Fatal(err)
	}
	par.SetParallelism(workers, 1)
	if w, mb := par.Parallelism(); w != workers || mb != 1 {
		t.Fatalf("Parallelism() = (%d, %d), want (%d, 1)", w, mb, workers)
	}

	rnd := rand.New(rand.NewSource(42))
	init := map[string][]value.Tuple{}
	for _, r := range rels {
		for i := 0; i < 30; i++ {
			tp := make(value.Tuple, r.Schema.Len())
			for j := range tp {
				tp[j] = value.Int(int64(rnd.Intn(6)))
			}
			init[r.Name] = append(init[r.Name], tp)
		}
	}
	if err := seq.Init(init); err != nil {
		t.Fatal(err)
	}
	if err := par.Init(init); err != nil {
		t.Fatal(err)
	}

	ups := randomStream(rnd, rels, 600)
	const batch = 75
	for i := 0; i < len(ups); i += batch {
		end := i + batch
		if end > len(ups) {
			end = len(ups)
		}
		if err := seq.ApplyUpdates(ups[i:end]); err != nil {
			t.Fatal(err)
		}
		if err := par.ApplyUpdates(ups[i:end]); err != nil {
			t.Fatal(err)
		}
		if s, p := treeState(seq), treeState(par); s != p {
			t.Fatalf("state diverged after batch ending at %d (workers=%d):\nsequential:\n%s\nparallel:\n%s", end, workers, s, p)
		}
	}
	if seq.Stats().Updates != par.Stats().Updates {
		t.Fatalf("Updates counter diverged: %d vs %d", seq.Stats().Updates, par.Stats().Updates)
	}
}

var parallelRels = []vo.Rel{
	{Name: "R", Schema: value.NewSchema("A", "B")},
	{Name: "S", Schema: value.NewSchema("B", "C")},
	{Name: "T", Schema: value.NewSchema("C", "D")},
}

// testWorkerCounts derives the worker counts under test from the host
// instead of hardcoding them: a minimal parallel config, one matched to
// GOMAXPROCS, and an oversubscribed one — so a 16-core runner actually
// exercises 16-way commits instead of the author's core count.
func testWorkerCounts() []int {
	p := runtime.GOMAXPROCS(0)
	var ws []int
	seen := map[int]bool{}
	for _, w := range []int{2, p, 2 * p} {
		if w < 2 {
			w = 2
		}
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	return ws
}

// matchedWorkers is the GOMAXPROCS-matched count (minimum 2) for tests
// that need one representative parallel configuration.
func matchedWorkers() int {
	if p := runtime.GOMAXPROCS(0); p > 2 {
		return p
	}
	return 2
}

// TestParallelEquivalenceInts: the Z ring over a 3-relation chain join,
// with and without group-by keys.
func TestParallelEquivalenceInts(t *testing.T) {
	for _, workers := range testWorkerCounts() {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			runEquivalence(t, func() (*Tree[int64], error) {
				return New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels})
			}, parallelRels, workers)
		})
	}
	t.Run("groupBy", func(t *testing.T) {
		runEquivalence(t, func() (*Tree[int64], error) {
			return New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels, Free: []string{"B"}})
		}, parallelRels, matchedWorkers())
	})
}

// TestParallelEquivalenceCovar: the degree-3 COVAR ring with lifts on
// B, C, D — float payloads whose integer-valued sums stay exact under
// any merge order.
func TestParallelEquivalenceCovar(t *testing.T) {
	r := ring.NewCovarRing(3)
	runEquivalence(t, func() (*Tree[*ring.Covar], error) {
		return New(Spec[*ring.Covar]{
			Ring:      r,
			Relations: parallelRels,
			Lifts: map[string]ring.Lift[*ring.Covar]{
				"B": r.Lift(0), "C": r.Lift(1), "D": r.Lift(2),
			},
		})
	}, parallelRels, matchedWorkers())
}

// TestParallelEquivalenceDisconnected: a disconnected query (two roots)
// exercises the root-to-result join of the parallel path.
func TestParallelEquivalenceDisconnected(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "U", Schema: value.NewSchema("E")},
	}
	runEquivalence(t, func() (*Tree[int64], error) {
		return New(Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	}, rels, matchedWorkers())
}

// TestParallelThresholdKeepsSmallBatchesSequential: deltas below
// minBatch must not spawn workers — observable through state equality
// with an explicitly sequential tree (and exercised for races under
// go test -race).
func TestParallelThresholdKeepsSmallBatchesSequential(t *testing.T) {
	seq, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels})
	if err != nil {
		t.Fatal(err)
	}
	par.SetParallelism(matchedWorkers(), 1_000_000) // threshold no real batch reaches
	rnd := rand.New(rand.NewSource(7))
	ups := randomStream(rnd, parallelRels, 300)
	if err := seq.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if err := par.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if s, p := treeState(seq), treeState(par); s != p {
		t.Fatalf("threshold fallback diverged:\n%s\nvs\n%s", s, p)
	}
	// Identical work counters prove the same sequential path ran: the
	// parallel path counts per-partition delta tuples, which differs.
	if seq.Stats() != par.Stats() {
		t.Fatalf("stats diverged below threshold: %+v vs %+v", seq.Stats(), par.Stats())
	}
}

// TestSetParallelismDefaults: workers <= 0 resolves to GOMAXPROCS and
// minBatch <= 0 to DefaultParallelThreshold.
func TestSetParallelismDefaults(t *testing.T) {
	tr, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetParallelism(0, 0)
	w, mb := tr.Parallelism()
	if w < 1 {
		t.Fatalf("workers = %d, want >= 1", w)
	}
	if mb != DefaultParallelThreshold {
		t.Fatalf("minBatch = %d, want %d", mb, DefaultParallelThreshold)
	}
}

package view_test

// Long-running randomized soak test: a 4-relation cyclic-ish schema,
// three rings maintained side by side over thousands of random updates
// applied in batches through the parallel commit path (worker count
// derived from GOMAXPROCS, not hardcoded), each checkpoint
// cross-checked against recomputation. Run with -short to skip.

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

func TestSoakThreeRingsLongStream(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("B", "C")},
		{Name: "T", Schema: value.NewSchema("C", "D")},
		{Name: "U", Schema: value.NewSchema("B", "E")},
	}
	z := ring.Ints{}
	cr := ring.NewCovarRing(3)
	var rr ring.RangedCovarRing

	count, err := view.New(view.Spec[int64]{Ring: z, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	// COVAR over B, D, E: attributes from three different relations.
	covar, err := view.New(view.Spec[*ring.Covar]{
		Ring: cr, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.Covar]{
			"B": cr.Lift(0), "D": cr.Lift(1), "E": cr.Lift(2),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ranged engine needs indexes in the structural order of the shared
	// greedy VO; derive it the same way the facade does.
	ord, err := vo.Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	wantAttr := map[string]bool{"B": true, "D": true, "E": true}
	rangedLifts := map[string]ring.Lift[*ring.RangedCovar]{}
	var rangedOrder []string
	var post func(n *vo.Node)
	post = func(n *vo.Node) {
		for _, c := range n.Children {
			post(c)
		}
		if wantAttr[n.Var] {
			rangedLifts[n.Var] = rr.Lift(len(rangedOrder))
			rangedOrder = append(rangedOrder, n.Var)
		}
	}
	for _, root := range ord.Roots {
		post(root)
	}
	ranged, err := view.New(view.Spec[*ring.RangedCovar]{
		Ring: rr, Order: ord, Relations: rels, Lifts: rangedLifts,
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := count.Init(nil); err != nil {
		t.Fatal(err)
	}
	if err := covar.Init(nil); err != nil {
		t.Fatal(err)
	}
	if err := ranged.Init(nil); err != nil {
		t.Fatal(err)
	}

	// Route the batches through the parallel commit path at a worker
	// count matched to the host (minimum 2 so a 1-CPU runner still
	// exercises concurrent commits), with the threshold dropped so the
	// modest soak batches fan out.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	count.SetParallelism(workers, 1)
	covar.SetParallelism(workers, 1)
	ranged.SetParallelism(workers, 1)

	shadow := map[string]*relation.Map[int64]{}
	for _, r := range rels {
		shadow[r.Name] = relation.New[int64](r.Schema)
	}
	rng := rand.New(rand.NewSource(1234))

	recomputeCount := func() int64 {
		cur := shadow["R"]
		for _, name := range []string{"S", "T", "U"} {
			cur = relation.Join[int64](z, cur, shadow[name])
		}
		var total int64
		cur.Each(func(_ value.Tuple, p int64) { total += p })
		return total
	}

	// Updates accumulate into batches (applied through the parallel
	// path) and always flush before a checkpoint, so every cross-check
	// sees the full prefix of the stream.
	const steps = 4000
	const soakBatch = 48
	var pending []view.Update
	flush := func() {
		if len(pending) == 0 {
			return
		}
		if err := count.ApplyUpdates(pending); err != nil {
			t.Fatal(err)
		}
		if err := covar.ApplyUpdates(pending); err != nil {
			t.Fatal(err)
		}
		if err := ranged.ApplyUpdates(pending); err != nil {
			t.Fatal(err)
		}
		pending = pending[:0]
	}
	for step := 0; step < steps; step++ {
		r := rels[rng.Intn(len(rels))]
		sh := shadow[r.Name]
		var up view.Update
		if sh.Len() > 0 && rng.Float64() < 0.4 {
			k := rng.Intn(sh.Len())
			i := 0
			sh.Each(func(tp value.Tuple, _ int64) {
				if i == k {
					up = view.Update{Rel: r.Name, Tuple: tp, Mult: -1}
				}
				i++
			})
		} else {
			up = view.Update{Rel: r.Name, Tuple: value.T(rng.Intn(4), rng.Intn(4)), Mult: 1}
		}
		sh.Merge(z, up.Tuple, int64(up.Mult))
		pending = append(pending, up)
		if len(pending) >= soakBatch {
			flush()
		}

		if step%250 == 0 || step == steps-1 {
			flush()
			want := recomputeCount()
			if got := count.ResultPayload(); got != want {
				t.Fatalf("step %d: count %d, naive %d", step, got, want)
			}
			cp := covar.ResultPayload()
			if cp.Count() != float64(want) {
				t.Fatalf("step %d: covar count %v, naive %d", step, cp.Count(), want)
			}
			rp, err := ranged.ResultPayload().ToCovar(3)
			if err != nil {
				t.Fatal(err)
			}
			if rp.Count() != float64(want) {
				t.Fatalf("step %d: ranged count %v, naive %d", step, rp.Count(), want)
			}
			// Cross-ring agreement on a quadratic statistic: ranged
			// index of each attribute vs covar's fixed order.
			rIdx := map[string]int{}
			for i, a := range rangedOrder {
				rIdx[a] = i
			}
			for fi, a := range []string{"B", "D", "E"} {
				if cp.Sum(fi) != rp.Sum(rIdx[a]) {
					t.Fatalf("step %d: SUM(%s) covar %v vs ranged %v", step, a, cp.Sum(fi), rp.Sum(rIdx[a]))
				}
			}
		}
	}
}

// Package view implements F-IVM's core contribution: view trees over
// variable orders that maintain batches of ring-valued aggregates over
// project-join queries under inserts and deletes.
//
// A Tree is built from (relations, variable order, ring, lift
// functions). Leaves are the input relations; each variable-order node
// owns a view grouped by its dependency set, defined as the join of its
// children followed by marginalizing the node's variable — multiplying
// each tuple payload by the variable's lift function while summing it
// away. Updates to a relation propagate along the leaf-to-root path
// with delta processing against the materialized sibling views.
//
// # Key invariants
//
//   - Views, deltas, and input relations are all the same structure: a
//     relation.Map keyed by a schema with ring payloads. Negative
//     payloads encode deletes; payloads equal to the ring zero are
//     never stored.
//   - Propagating a delta only READS off-path state (the sibling views
//     of each path node, the other anchored relations) and only WRITES
//     path state (the path nodes' views, the source, the result). The
//     two sets are disjoint.
//   - Delta propagation is linear in the delta: applying δ1 then δ2
//     leaves exactly the state of applying δ1 ⊎ δ2, because each step
//     is a join (distributes over union) followed by a marginalization
//     (additive), and view merges use the ring's associative and
//     commutative addition.
//
// The last two invariants are what make the parallel path sound:
// ApplyDelta on a tree configured with SetParallelism hash-partitions a
// batch delta by the anchor node's join key, runs the read-only
// propagation of every partition on its own goroutine, and merges the
// per-partition delta views single-threaded — producing views identical
// to the sequential path's.
//
// A Tree is not safe for concurrent use by multiple callers: the
// parallelism is internal to one ApplyDelta call, and one goroutine at
// a time may drive maintenance. DeltaFor is the exception — it reads
// only immutable tree metadata and may run concurrently with
// maintenance, which the serving layer exploits to prebuild deltas off
// the writer thread.
//
// # Maintenance scratch and ownership
//
// The single-writer contract is what lets the tree keep reusable
// scratch across calls (docs/PERF.md has the full story):
//
//   - Each source owns a delta buffer that ApplyUpdates Resets and
//     refills per batch instead of allocating; the payloads put into
//     it are freshly built, so views retaining them outlive the
//     buffer's recycling.
//   - The sequential propagation-steps slice and the parallel path's
//     partition slots are tree-owned and recycled; concurrent
//     propagate workers never touch them (they get goroutine-local
//     buffers).
//   - Each node carries a build-time evaluation plan (join and
//     aggregation schema geometry, resolved lift), so per-delta
//     evaluation re-derives nothing.
//   - Every part a delta can be joined against (sibling views, other
//     anchored relations, other roots' views) carries a registered
//     join-key index on exactly the common-key projection the node's
//     plan probes it on; delta propagation joins via
//     relation.JoinProbeWith, touching O(|delta|) state per node
//     instead of scanning full views. Indexes build lazily on first
//     probe and are maintained by the commit-phase merges; bulk loads
//     re-register them after replacing the maps.
//   - Values merged INTO views go through the pure ring Add — stored
//     view payloads are immutable and may be shared with published
//     snapshots; the in-place Scratch fast paths run only inside
//     Join/Aggregate on values they created. Callers of ApplyDelta
//     cede the delta's payloads to the tree: they must not mutate a
//     delta after applying it (recycling its container is fine).
package view

package view

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/vo"
)

// Spec configures a view tree.
type Spec[V any] struct {
	// Ring supplies the payload operations.
	Ring ring.Ring[V]
	// Order is the variable order; build one with vo.Build or supply a
	// hand-crafted one (it is validated).
	Order *vo.Order
	// Relations lists the input relations (must match the order's
	// anchored relations).
	Relations []vo.Rel
	// Lifts maps a variable to its lift function g_X, applied when the
	// variable is marginalized. Variables without an entry are summed
	// away without payload contribution (g_X = 1).
	Lifts map[string]ring.Lift[V]
	// Free lists the group-by variables of the query: they are kept as
	// keys of the result instead of being marginalized.
	Free []string
}

// Node is one materialized view of the tree. Exported read-only through
// accessor methods for inspection, tests, and the M3 printer.
type Node[V any] struct {
	vn       *vo.Node
	parent   *Node[V]
	children []*Node[V]
	rels     []*source[V]
	keys     value.Schema // group-by schema of this node's view
	free     bool         // whether vn.Var is a group-by variable
	view     *relation.Map[V]

	// Evaluation plan, fixed at build time: the schema geometry of the
	// node's part joins and its marginalizing aggregation, plus the
	// resolved lift. Deriving these per evalNode call costs a dozen
	// allocations — the dominant cost of single-tuple deltas.
	joinPlans []*relation.JoinPlan
	aggPlan   *relation.AggPlan
	liftFn    ring.Lift[V]

	// Root nodes additionally plan the result-level step of propagate:
	// joining the other root views and projecting to the result schema.
	resJoins []*relation.JoinPlan
	resAgg   *relation.AggPlan

	// mu serializes concurrent merges into this node's view (and the
	// view's index maintenance and entry arena) during parallel commit.
	// Partitions are key-disjoint at the anchor but can collide on
	// group keys at upper path nodes, and a Go map tolerates no
	// concurrent writers regardless — so commit workers take the
	// node's lock for the duration of one MergeAll. Everything outside
	// the parallel commit runs single-writer and never touches it.
	mu sync.Mutex
}

// Var returns the variable this node marginalizes.
func (n *Node[V]) Var() string { return n.vn.Var }

// Keys returns the view's group-by schema.
func (n *Node[V]) Keys() value.Schema { return n.keys }

// Children returns the child nodes.
func (n *Node[V]) Children() []*Node[V] { return n.children }

// RelNames returns the names of relations anchored at this node.
func (n *Node[V]) RelNames() []string {
	out := make([]string, len(n.rels))
	for i, s := range n.rels {
		out[i] = s.name
	}
	return out
}

// View returns the materialized view relation. Callers must not mutate
// it.
func (n *Node[V]) View() *relation.Map[V] { return n.view }

type source[V any] struct {
	name   string
	schema value.Schema
	data   *relation.Map[V]
	anchor *Node[V]
	// path is the anchor-to-root node path, fixed at tree build; every
	// delta for this relation propagates along it.
	path []*Node[V]
	// delta is the relation's reusable delta buffer: ApplyUpdates Resets
	// and refills it each batch instead of allocating a fresh relation
	// per call. Payloads put into it are always freshly built
	// (payloadFor), so views and source data may freely retain them
	// after the buffer itself is recycled. inBatch marks the buffer
	// in-use while one ApplyUpdates call groups its updates.
	delta   *relation.Map[V]
	inBatch bool
	// parts holds this relation's recycled partition slots for parallel
	// delta propagation (per source, since slots are schema-bound). The
	// containers are reused; their contents are cleared after each
	// commit so a partitioned delta is not pinned in memory between
	// batches.
	parts []*relation.Map[V]
}

// Tree is a materialized view tree. It is not safe for concurrent use:
// callers must serialize all mutating calls. SetParallelism enables
// internal hash-partitioned parallelism WITHIN one ApplyDelta call; that
// does not change the external contract.
type Tree[V any] struct {
	ring    ring.Ring[V]
	order   *vo.Order
	roots   []*Node[V]
	sources map[string]*source[V]
	lifts   map[string]ring.Lift[V]
	free    value.Schema
	result  *relation.Map[V]
	stats   Stats

	// Parallel delta propagation (see SetParallelism). workers <= 1
	// keeps every ApplyDelta on the sequential path.
	workers     int
	minParallel int
	// resMu is the result map's merge lock, the counterpart of Node.mu
	// for the root-level result deltas of concurrent commit workers.
	resMu sync.Mutex

	// Maintenance scratch, reused across calls under the tree's
	// single-writer contract (see the package doc): the relation order
	// buffer of ApplyUpdates, the sequential path's propagation-steps
	// buffer, and the parallel path's live-partition list (the
	// partition slots themselves live on each source, being
	// schema-bound). None of it is touched by concurrent propagate
	// workers, which only read off-path state and write goroutine-local
	// maps.
	updOrder  []string
	propSteps []*relation.Map[V]
	liveParts []*relation.Map[V]
	// joinScratch recycles the build-side index of the full-recompute
	// joins (refresh). Only the single-threaded bulk path touches it;
	// delta propagation probes the persistent view indexes instead and
	// its parallel workers must not share mutable scratch.
	joinScratch relation.JoinScratch[V]

	// one and negOne cache the ring's ±1, the payloads of single-tuple
	// inserts and deletes. Sharing one value across many stored tuples
	// is sound because stored payloads are immutable (relations add with
	// the pure ring Add; the in-place Scratch paths only ever run on
	// payloads they constructed fresh).
	one    V
	negOne V
}

// Stats counts maintenance work; useful for benchmarks and ablations.
type Stats struct {
	// Updates is the number of ApplyDelta calls.
	Updates int
	// DeltaTuples is the total number of delta tuples merged into views.
	// It measures work done, not information content: the parallel path
	// sums per-partition delta sizes, which can exceed the sequential
	// count at upper tree nodes when partitions hit the same group — so
	// compare DeltaTuples across runs only at equal worker counts.
	DeltaTuples int
}

// New builds a view tree. The order is validated against the relations;
// free variables must exist in the order.
func New[V any](spec Spec[V]) (*Tree[V], error) {
	if spec.Ring == nil {
		return nil, fmt.Errorf("view: nil ring")
	}
	if spec.Order == nil {
		ord, err := vo.Build(spec.Relations)
		if err != nil {
			return nil, err
		}
		spec.Order = ord
	}
	if err := vo.Validate(spec.Order, spec.Relations); err != nil {
		return nil, err
	}
	t := &Tree[V]{
		ring:    spec.Ring,
		order:   spec.Order,
		sources: make(map[string]*source[V]),
		lifts:   spec.Lifts,
		free:    value.NewSchema(spec.Free...),
	}
	if t.lifts == nil {
		t.lifts = map[string]ring.Lift[V]{}
	}
	t.one = t.ring.One()
	t.negOne = t.ring.Neg(t.one)
	allVars := map[string]bool{}
	for _, root := range spec.Order.Roots {
		for _, v := range root.Vars() {
			allVars[v] = true
		}
	}
	for _, f := range spec.Free {
		if !allVars[f] {
			return nil, fmt.Errorf("view: free variable %s not in the variable order", f)
		}
	}
	for v := range t.lifts {
		if !allVars[v] {
			return nil, fmt.Errorf("view: lift for unknown variable %s", v)
		}
	}
	for _, r := range spec.Relations {
		if _, dup := t.sources[r.Name]; dup {
			return nil, fmt.Errorf("view: duplicate relation %s", r.Name)
		}
		t.sources[r.Name] = &source[V]{
			name:   r.Name,
			schema: r.Schema,
			data:   relation.New[V](r.Schema),
		}
	}
	for _, root := range spec.Order.Roots {
		t.roots = append(t.roots, t.buildNode(root, nil))
	}
	for _, s := range t.sources {
		s.path = pathOf(s.anchor)
	}
	t.result = relation.New[V](t.resultSchema())
	// Plan each root's result-level step (see propagate): join the other
	// root views in t.roots order, then project to the result schema.
	for _, root := range t.roots {
		acc := root.keys
		for _, r := range t.roots {
			if r != root {
				pl := relation.PlanJoin(acc, r.keys)
				root.resJoins = append(root.resJoins, pl)
				acc = pl.Out()
			}
		}
		root.resAgg = relation.PlanAggregate(acc, t.result.Schema(), "")
	}
	t.registerIndexes()
	return t, nil
}

// registerIndexes declares every persistent join-key index the delta
// path probes (see JoinProbeWith): on each node's parts — children
// views and anchored relations — the projection of the common key the
// node's build-time join plans probe that part on, and on each root
// view the keys of the result-level joins of the other roots. Bulk
// loads replace the underlying maps wholesale, so Init, InitWeighted,
// and ReadSnapshot re-run this after rebuilding. Registration is cheap:
// an index materializes lazily on its first probe, so declaring every
// possible probe direction costs nothing for the directions a workload
// never updates.
func (t *Tree[V]) registerIndexes() {
	for _, root := range t.roots {
		t.registerNodeIndexes(root)
	}
	for _, root := range t.roots {
		t.eachResJoin(root, func(other *Node[V], plan *relation.JoinPlan) {
			other.view.AddIndex(plan.RightIndexKey())
		})
	}
}

// eachResJoin pairs each of root's result-level join plans with the
// other root it joins, in the t.roots order the plans were built in
// (New). Both the index registration and the propagation replay
// (propagate's result step) iterate through here, so the
// plan↔probed-view pairing cannot silently drift between them.
func (t *Tree[V]) eachResJoin(root *Node[V], fn func(other *Node[V], plan *relation.JoinPlan)) {
	ji := 0
	for _, r := range t.roots {
		if r != root {
			fn(r, root.resJoins[ji])
			ji++
		}
	}
}

func (t *Tree[V]) registerNodeIndexes(n *Node[V]) {
	for _, c := range n.children {
		t.registerNodeIndexes(c)
	}
	if len(n.joinPlans) == 0 {
		return // single-part node: the delta replaces the only part, nothing is probed
	}
	parts := n.parts(nil, nil)
	// The first join may probe either operand (whichever one the delta
	// did not substitute); every later step accumulates the delta-sized
	// relation on the left and probes the right part.
	parts[0].AddIndex(n.joinPlans[0].LeftIndexKey())
	for i, pl := range n.joinPlans {
		parts[i+1].AddIndex(pl.RightIndexKey())
	}
}

func (t *Tree[V]) buildNode(vn *vo.Node, parent *Node[V]) *Node[V] {
	n := &Node[V]{vn: vn, parent: parent, free: t.free.Has(vn.Var)}
	for _, c := range vn.Children {
		n.children = append(n.children, t.buildNode(c, n))
	}
	for _, r := range vn.Rels {
		src := t.sources[r.Name]
		src.anchor = n
		n.rels = append(n.rels, src)
	}
	// The view keys are the dependency set plus any free variables of
	// the subtree (including this node's own variable when free), which
	// must be kept as keys up to the root.
	keys := vn.Keys
	if n.free {
		keys = keys.Union(value.NewSchema(vn.Var))
	}
	for _, c := range n.children {
		keys = keys.Union(c.keys.Intersect(t.free))
	}
	n.keys = keys
	n.view = relation.New[V](keys)
	// Plan the node's evaluation: left-fold joins over the parts
	// (children views then anchored relations, the parts order), then
	// the aggregation away of this node's variable.
	schemas := make([]value.Schema, 0, len(n.children)+len(n.rels))
	for _, c := range n.children {
		schemas = append(schemas, c.keys)
	}
	for _, r := range n.rels {
		schemas = append(schemas, r.schema)
	}
	if len(schemas) > 0 {
		acc := schemas[0]
		for _, s := range schemas[1:] {
			pl := relation.PlanJoin(acc, s)
			n.joinPlans = append(n.joinPlans, pl)
			acc = pl.Out()
		}
		liftAttr := ""
		if lf, ok := t.lifts[vn.Var]; ok && acc.Has(vn.Var) {
			n.liftFn = lf
			liftAttr = vn.Var
		}
		n.aggPlan = relation.PlanAggregate(acc, keys, liftAttr)
	}
	return n
}

func (t *Tree[V]) resultSchema() value.Schema {
	s := value.NewSchema()
	for _, r := range t.roots {
		s = s.Union(r.keys)
	}
	return s
}

// Ring returns the tree's ring.
func (t *Tree[V]) Ring() ring.Ring[V] { return t.ring }

// Order returns the underlying variable order.
func (t *Tree[V]) Order() *vo.Order { return t.order }

// Roots returns the root nodes of the view forest.
func (t *Tree[V]) Roots() []*Node[V] { return t.roots }

// Lift returns the lift function registered for variable v (nil when
// none).
func (t *Tree[V]) Lift(v string) ring.Lift[V] { return t.lifts[v] }

// Source returns the current contents of input relation name. Callers
// must not mutate it.
func (t *Tree[V]) Source(name string) (*relation.Map[V], bool) {
	s, ok := t.sources[name]
	if !ok {
		return nil, false
	}
	return s.data, true
}

// RelationNames returns the input relation names, sorted.
func (t *Tree[V]) RelationNames() []string {
	out := make([]string, 0, len(t.sources))
	for n := range t.sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result returns the maintained query result: a relation keyed by the
// free (group-by) variables. For queries without group-by the key schema
// is empty and the single payload is at the empty tuple.
func (t *Tree[V]) Result() *relation.Map[V] { return t.result }

// ResultPayload returns the payload of the empty key, i.e. the full
// aggregate of a query without group-by; it returns the ring zero when
// the result is empty.
func (t *Tree[V]) ResultPayload() V {
	return t.result.GetOr(value.Tuple{}, t.ring.Zero())
}

// PartitionKey returns the attribute positions relation rel's deltas
// hash-partition on: the relation's anchor dependency set restricted to
// its schema, the join key through which the relation's effects flow
// upward. It is exactly the key applyDeltaParallel uses, exported so an
// out-of-process shard map (internal/cluster) routes rel's updates to
// the same partition the in-process partitioner would. An empty key
// (relation fully marginalized at its anchor) means partitioning hashes
// the full tuple; ok is false when rel is not an input relation.
func (t *Tree[V]) PartitionKey(rel string) (keyIdx []int, ok bool) {
	src, found := t.sources[rel]
	if !found {
		return nil, false
	}
	return src.data.PartitionKey(src.anchor.vn.Keys), true
}

// SwapResult replaces the maintained result relation with m and returns
// the previous one. It is the low-level hook behind cross-shard model
// merging: a merger swaps a ring-merged relation in, publishes a model
// from it, and swaps the original back before any maintenance resumes.
// Views and sources are untouched; m must use the result schema.
func (t *Tree[V]) SwapResult(m *relation.Map[V]) *relation.Map[V] {
	old := t.result
	t.result = m
	return old
}

// Stats returns maintenance counters accumulated so far.
func (t *Tree[V]) Stats() Stats { return t.stats }

// parts returns the operand relations joined at node n: children views
// then anchored relations, with exclude (a child view or source data)
// replaced by repl when non-nil.
func (n *Node[V]) parts(exclude, repl *relation.Map[V]) []*relation.Map[V] {
	out := make([]*relation.Map[V], 0, len(n.children)+len(n.rels))
	for _, c := range n.children {
		if c.view == exclude {
			out = append(out, repl)
		} else {
			out = append(out, c.view)
		}
	}
	for _, r := range n.rels {
		if r.data == exclude {
			out = append(out, repl)
		} else {
			out = append(out, r.data)
		}
	}
	return out
}

// evalNode computes the node's view contents from the given parts:
// join them all, then marginalize the node's variable (unless free),
// multiplying by its lift. The schema geometry comes from the node's
// build-time plan; parts must follow the node's fixed order (a delta
// substitutes a part of identical schema, so the plan stays valid).
// This is the full-recompute form (bulk refresh): build-and-scan joins
// with the tree-owned scratch, so it must stay single-threaded.
func (t *Tree[V]) evalNode(n *Node[V], parts []*relation.Map[V]) *relation.Map[V] {
	if len(parts) == 0 {
		return relation.New[V](n.keys)
	}
	j := parts[0]
	for i, p := range parts[1:] {
		j = relation.JoinWithScratch(n.joinPlans[i], t.ring, j, p, &t.joinScratch)
	}
	return relation.AggregateWith(n.aggPlan, t.ring, j, n.liftFn)
}

// evalNodeDelta is evalNode for delta propagation: every join goes
// through JoinProbeWith, so the delta-sized operand probes the
// persistent join-key index of the full-size part instead of the part
// being scanned — per-update maintenance work proportional to the
// delta, not the database. Unindexed operands (the intermediate
// accumulator when it ends up the larger side) fall back to the
// build-and-scan join. Reads only the parts and immutable plans, never
// the tree's shared scratch: safe for concurrent propagate workers.
//
// Scope of the O(|delta|) bound: the left fold keeps the node's fixed
// part order, so the bound holds when the delta substitutes one of the
// first two parts — always true for nodes with at most two parts (the
// common shape: every node of the Retailer evaluation tree, for
// instance, joins at most two parts). At a
// node with three or more parts whose delta lands at position >= 2,
// the first join still combines two full parts and costs what the
// pre-index path did. Reordering the fold delta-first would fix that
// corner but reorder the ring products, which the non-commutative
// relational ring forbids; it needs per-position plans and a
// commutativity marker.
func (t *Tree[V]) evalNodeDelta(n *Node[V], parts []*relation.Map[V]) *relation.Map[V] {
	if len(parts) == 0 {
		return relation.New[V](n.keys)
	}
	j := parts[0]
	for i, p := range parts[1:] {
		j = relation.JoinProbeWith(n.joinPlans[i], t.ring, j, p)
	}
	return relation.AggregateWith(n.aggPlan, t.ring, j, n.liftFn)
}

// refresh recomputes the subtree bottom-up from current sources; used by
// bulk initialization.
func (t *Tree[V]) refresh(n *Node[V]) {
	for _, c := range n.children {
		t.refresh(c)
	}
	n.view = t.evalNode(n, n.parts(nil, nil))
}

// recomputeResult rebuilds the root result from the root views.
func (t *Tree[V]) recomputeResult() {
	res := t.roots[0].view
	for _, r := range t.roots[1:] {
		res = relation.Join(t.ring, res, r.view)
	}
	t.result = relation.Aggregate(t.ring, res, t.resultSchema(), "", nil)
}

// Init bulk-loads the given tuples (payload One each, duplicates
// accumulate) into the sources and evaluates every view bottom-up. Any
// previous contents are discarded.
func (t *Tree[V]) Init(data map[string][]value.Tuple) error {
	for name := range data {
		if _, ok := t.sources[name]; !ok {
			return fmt.Errorf("view: Init: unknown relation %s", name)
		}
	}
	for _, s := range t.sources {
		s.data = relation.FromTuples(t.ring, s.schema, data[s.name])
	}
	for _, r := range t.roots {
		t.refresh(r)
	}
	t.recomputeResult()
	t.registerIndexes()
	return nil
}

// InitWeighted bulk-loads relations whose tuples carry explicit ring
// payloads (rather than multiplicity One). This is how non-counting
// interpretations load data — e.g. matrix chain multiplication stores
// matrix entries as the payloads of index tuples. Relations absent from
// data start empty. Any previous contents are discarded; the given
// relations are cloned, not aliased.
func (t *Tree[V]) InitWeighted(data map[string]*relation.Map[V]) error {
	for name, m := range data {
		s, ok := t.sources[name]
		if !ok {
			return fmt.Errorf("view: InitWeighted: unknown relation %s", name)
		}
		if !m.Schema().Equal(s.schema) {
			return fmt.Errorf("view: InitWeighted: relation %s has schema %v, want %v", name, m.Schema(), s.schema)
		}
	}
	for _, s := range t.sources {
		if m, ok := data[s.name]; ok {
			s.data = m.Clone()
		} else {
			s.data = relation.New[V](s.schema)
		}
	}
	for _, r := range t.roots {
		t.refresh(r)
	}
	t.recomputeResult()
	t.registerIndexes()
	return nil
}

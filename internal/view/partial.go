package view

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
)

// Partial format — a shard's maintained result relation, serialized for
// cross-shard ring-merging (the wire body of GET /v1/partial):
//
//	magic "FIVMPART" | version u8 | codec tag | attr count uvarint |
//	attrs... | tuple count uvarint |
//	per tuple: encoded key | payload (ring codec)
//
// Unlike a snapshot (which persists input relations and recomputes the
// views), a partial carries the RESULT relation: partials from shards
// owning disjoint key-ranges of the anchor relation sum to the global
// result under the ring, exactly, by associativity and commutativity of
// ring addition. The codec tag makes a partial self-describing across
// engine kinds, so merging e.g. a count partial into a covar merger
// fails fast instead of misparsing payload bytes.

const (
	partialMagic   = "FIVMPART"
	partialVersion = 1
)

// WritePartial serializes the tree's current result relation to w using
// codec for payloads. The tree is unchanged.
func (t *Tree[V]) WritePartial(w io.Writer, codec ring.Codec[V]) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, partialMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(partialVersion); err != nil {
		return err
	}
	if err := writeString(bw, codecTag(codec)); err != nil {
		return err
	}
	attrs := t.result.Schema().Attrs()
	if err := writeUvarint(bw, uint64(len(attrs))); err != nil {
		return err
	}
	for _, a := range attrs {
		if err := writeString(bw, a); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, uint64(t.result.Len())); err != nil {
		return err
	}
	var encErr error
	t.result.Each(func(tp value.Tuple, p V) {
		if encErr != nil {
			return
		}
		if encErr = writeString(bw, tp.Encode()); encErr != nil {
			return
		}
		encErr = codec.Encode(bw, p)
	})
	if encErr != nil {
		return encErr
	}
	return bw.Flush()
}

// ReadPartial decodes one partial result relation from r. The partial's
// schema must equal the tree's result schema (same query shape on every
// shard); the returned relation is freshly allocated and safe to merge
// or mutate.
func (t *Tree[V]) ReadPartial(r io.Reader, codec ring.Codec[V]) (*relation.Map[V], error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(partialMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("view: reading partial header: %w", err)
	}
	if string(magic) != partialMagic {
		return nil, fmt.Errorf("view: not a F-IVM partial (magic %q)", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != partialVersion {
		return nil, fmt.Errorf("view: unsupported partial version %d", ver)
	}
	tag, err := readString(br)
	if err != nil {
		return nil, err
	}
	if want := codecTag(codec); tag != want {
		return nil, fmt.Errorf("view: partial written with codec %s, merger uses %s", tag, want)
	}
	nAttrs, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	attrs := make([]string, nAttrs)
	for i := range attrs {
		if attrs[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	schema := value.NewSchema(attrs...)
	if !schema.Equal(t.result.Schema()) {
		return nil, fmt.Errorf("view: partial result schema %v, merger has %v", attrs, t.result.Schema().Attrs())
	}
	nTuples, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	m := relation.New[V](schema)
	for i := uint64(0); i < nTuples; i++ {
		key, err := readString(br)
		if err != nil {
			return nil, err
		}
		tp, err := value.DecodeTuple(key)
		if err != nil {
			return nil, fmt.Errorf("view: partial tuple: %w", err)
		}
		if len(tp) != schema.Len() {
			return nil, fmt.Errorf("view: partial tuple has %d attributes, schema has %d (corrupt partial?)", len(tp), schema.Len())
		}
		p, err := codec.Decode(br)
		if err != nil {
			return nil, err
		}
		m.Set(tp, p)
	}
	return m, nil
}

package view_test

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// naiveCount computes SUM(1) over the natural join of the relations by
// brute-force join, for cross-checking maintained results.
func naiveCount(rels []vo.Rel, data map[string]*relation.Map[int64]) *relation.Map[int64] {
	z := ring.Ints{}
	cur := data[rels[0].Name]
	for _, r := range rels[1:] {
		cur = relation.Join[int64](z, cur, data[r.Name])
	}
	return cur
}

func sumAll(m *relation.Map[int64]) int64 {
	var total int64
	m.Each(func(_ value.Tuple, p int64) { total += p })
	return total
}

// TestRandomEquivalence is the central engine property test: on random
// three-relation databases with random mixed insert/delete streams, the
// maintained count must equal brute-force recomputation after every
// update batch.
func TestRandomEquivalence(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("B", "C")},
		{Name: "T", Schema: value.NewSchema("C", "D")},
	}
	z := ring.Ints{}
	rng := rand.New(rand.NewSource(23))

	for iter := 0; iter < 40; iter++ {
		tr, err := view.New(view.Spec[int64]{Ring: z, Relations: rels})
		if err != nil {
			t.Fatal(err)
		}
		// Shadow copies for the naive recomputation.
		shadow := map[string]*relation.Map[int64]{}
		for _, r := range rels {
			shadow[r.Name] = relation.New[int64](r.Schema)
		}
		init := map[string][]value.Tuple{}
		for _, r := range rels {
			n := rng.Intn(8)
			for i := 0; i < n; i++ {
				tp := value.T(rng.Intn(3), rng.Intn(3))
				init[r.Name] = append(init[r.Name], tp)
				shadow[r.Name].Merge(z, tp, 1)
			}
		}
		if err := tr.Init(init); err != nil {
			t.Fatal(err)
		}

		check := func(step int) {
			t.Helper()
			want := sumAll(naiveCount(rels, shadow))
			got := tr.ResultPayload()
			if got != want {
				t.Fatalf("iter %d step %d: maintained count %d, naive %d", iter, step, got, want)
			}
		}
		check(-1)

		// Random update stream: inserts anywhere; deletes only of live
		// tuples (well-formed streams).
		for step := 0; step < 30; step++ {
			r := rels[rng.Intn(len(rels))]
			sh := shadow[r.Name]
			var up view.Update
			if sh.Len() > 0 && rng.Intn(2) == 0 {
				// Delete a random existing tuple.
				k := rng.Intn(sh.Len())
				var pick value.Tuple
				i := 0
				sh.Each(func(tp value.Tuple, _ int64) {
					if i == k {
						pick = tp
					}
					i++
				})
				up = view.Update{Rel: r.Name, Tuple: pick, Mult: -1}
			} else {
				up = view.Update{Rel: r.Name, Tuple: value.T(rng.Intn(3), rng.Intn(3)), Mult: 1}
			}
			sh.Merge(z, up.Tuple, int64(up.Mult))
			if err := tr.ApplyUpdates([]view.Update{up}); err != nil {
				t.Fatal(err)
			}
			check(step)
		}
	}
}

// TestGroupByMaintenance checks free (group-by) variables: the result is
// keyed by them and maintained under updates.
func TestGroupByMaintenance(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C")},
	}
	tr, err := view.New(view.Spec[int64]{
		Ring: ring.Ints{}, Relations: rels, Free: []string{"A"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a1", 2), value.T("a2", 1)},
		"S": {value.T("a1", 10), value.T("a2", 20), value.T("a2", 21)},
	}); err != nil {
		t.Fatal(err)
	}
	res := tr.Result()
	if !res.Schema().Equal(value.NewSchema("A")) {
		t.Fatalf("result schema = %v, want [A]", res.Schema())
	}
	if got, _ := res.Get(value.T("a1")); got != 2 {
		t.Errorf("count(a1) = %d, want 2", got)
	}
	if got, _ := res.Get(value.T("a2")); got != 2 {
		t.Errorf("count(a2) = %d, want 2", got)
	}
	// Delete one S tuple of a2: count(a2) drops to 1.
	if err := tr.Delete("S", value.T("a2", 20)); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Result().Get(value.T("a2")); got != 1 {
		t.Errorf("count(a2) after delete = %d, want 1", got)
	}
	// Delete the last a2 tuples: the group disappears.
	if err := tr.Delete("S", value.T("a2", 21)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Result().Get(value.T("a2")); ok {
		t.Error("empty group a2 still present")
	}
}

// TestGroupByRandomEquivalence extends the random property test to a
// grouped query.
func TestGroupByRandomEquivalence(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("B", "C")},
	}
	z := ring.Ints{}
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 30; iter++ {
		tr, err := view.New(view.Spec[int64]{Ring: z, Relations: rels, Free: []string{"A"}})
		if err != nil {
			t.Fatal(err)
		}
		shadow := map[string]*relation.Map[int64]{
			"R": relation.New[int64](rels[0].Schema),
			"S": relation.New[int64](rels[1].Schema),
		}
		if err := tr.Init(nil); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			r := rels[rng.Intn(2)]
			tp := value.T(rng.Intn(3), rng.Intn(3))
			mult := 1
			if p, ok := shadow[r.Name].Get(tp); ok && p > 0 && rng.Intn(2) == 0 {
				mult = -1
			}
			shadow[r.Name].Merge(z, tp, int64(mult))
			if err := tr.ApplyUpdates([]view.Update{{Rel: r.Name, Tuple: tp, Mult: mult}}); err != nil {
				t.Fatal(err)
			}
			want := relation.Aggregate[int64](z,
				relation.Join[int64](z, shadow["R"], shadow["S"]),
				value.NewSchema("A"), "", nil)
			if !tr.Result().Equal(want, func(a, b int64) bool { return a == b }) {
				t.Fatalf("iter %d step %d:\n got %v\nwant %v", iter, step, tr.Result(), want)
			}
		}
	}
}

// TestDisconnectedQuery checks the multi-root (Cartesian) case.
func TestDisconnectedQuery(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A")},
		{Name: "S", Schema: value.NewSchema("B")},
	}
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{
		"R": {value.T(1), value.T(2)},
		"S": {value.T(10), value.T(20), value.T(30)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 6 {
		t.Errorf("cartesian count = %d, want 6", got)
	}
	// Insert into R: count grows by |S|.
	if err := tr.Insert("R", value.T(3)); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 9 {
		t.Errorf("after insert = %d, want 9", got)
	}
	// Delete from S: count drops by |R|.
	if err := tr.Delete("S", value.T(10)); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 6 {
		t.Errorf("after delete = %d, want 6", got)
	}
}

func TestErrorPaths(t *testing.T) {
	rels := []vo.Rel{{Name: "R", Schema: value.NewSchema("A")}}
	if _, err := view.New(view.Spec[int64]{Relations: rels}); err == nil {
		t.Error("nil ring accepted")
	}
	if _, err := view.New(view.Spec[int64]{
		Ring: ring.Ints{}, Relations: rels, Free: []string{"Z"},
	}); err == nil {
		t.Error("unknown free variable accepted")
	}
	if _, err := view.New(view.Spec[int64]{
		Ring: ring.Ints{}, Relations: rels,
		Lifts: map[string]ring.Lift[int64]{"Z": ring.CountLift},
	}); err == nil {
		t.Error("lift for unknown variable accepted")
	}
	if _, err := view.New(view.Spec[int64]{
		Ring:      ring.Ints{},
		Relations: []vo.Rel{rels[0], rels[0]},
	}); err == nil {
		t.Error("duplicate relation accepted")
	}

	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{"Z": nil}); err == nil {
		t.Error("Init with unknown relation accepted")
	}
	if err := tr.ApplyUpdates([]view.Update{{Rel: "Z", Tuple: value.T(1), Mult: 1}}); err == nil {
		t.Error("update to unknown relation accepted")
	}
	bad := relation.New[int64](value.NewSchema("X"))
	if err := tr.ApplyDelta("R", bad); err == nil {
		t.Error("delta schema mismatch accepted")
	}
	if _, err := tr.DeltaFor("Z", nil); err == nil {
		t.Error("DeltaFor unknown relation accepted")
	}
	if _, err := tr.DeltaFor("R", []view.Update{{Rel: "S", Tuple: value.T(1), Mult: 1}}); err == nil {
		t.Error("DeltaFor cross-relation update accepted")
	}
}

func TestEmptyDeltaIsNoop(t *testing.T) {
	rels := []vo.Rel{{Name: "R", Schema: value.NewSchema("A")}}
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{"R": {value.T(1)}}); err != nil {
		t.Fatal(err)
	}
	before := tr.ResultPayload()
	d := relation.New[int64](rels[0].Schema)
	if err := tr.ApplyDelta("R", d); err != nil {
		t.Fatal(err)
	}
	if tr.ResultPayload() != before {
		t.Error("empty delta changed the result")
	}
	// An insert+delete pair inside one batch cancels before propagation.
	if err := tr.ApplyUpdates([]view.Update{
		{Rel: "R", Tuple: value.T(7), Mult: 1},
		{Rel: "R", Tuple: value.T(7), Mult: -1},
	}); err != nil {
		t.Fatal(err)
	}
	if tr.ResultPayload() != before {
		t.Error("self-cancelling batch changed the result")
	}
}

func TestStatsAccounting(t *testing.T) {
	rels := []vo.Rel{{Name: "R", Schema: value.NewSchema("A")}}
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(nil); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Updates != 0 {
		t.Error("fresh tree has updates")
	}
	if err := tr.Insert("R", value.T(1)); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Updates != 1 || st.DeltaTuples == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSourceAccessors(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A")},
		{Name: "S", Schema: value.NewSchema("A")},
	}
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{"R": {value.T(1)}}); err != nil {
		t.Fatal(err)
	}
	src, ok := tr.Source("R")
	if !ok || src.Len() != 1 {
		t.Errorf("Source(R) = %v, %v", src, ok)
	}
	if _, ok := tr.Source("Z"); ok {
		t.Error("phantom source")
	}
	names := tr.RelationNames()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("RelationNames = %v", names)
	}
	if tr.Ring() == nil || tr.Order() == nil || len(tr.Roots()) == 0 {
		t.Error("accessors returned zero values")
	}
}

// TestMultiplicityUpdates checks Mult beyond ±1.
func TestMultiplicityUpdates(t *testing.T) {
	rels := []vo.Rel{{Name: "R", Schema: value.NewSchema("A")}}
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.ApplyUpdates([]view.Update{{Rel: "R", Tuple: value.T(1), Mult: 3}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if err := tr.ApplyUpdates([]view.Update{{Rel: "R", Tuple: value.T(1), Mult: -2}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

// TestReinitDiscardsState checks that Init resets previous contents.
func TestReinitDiscardsState(t *testing.T) {
	rels := []vo.Rel{{Name: "R", Schema: value.NewSchema("A")}}
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{"R": {value.T(1), value.T(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{"R": {value.T(9)}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 1 {
		t.Errorf("count after re-init = %d, want 1", got)
	}
}

// TestHandCraftedOrder runs the engine over a user-supplied variable
// order rather than the greedy default.
func TestHandCraftedOrder(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C", "D")},
	}
	// A different (valid) order: D at the root, then C, then A, with R
	// under A → B.
	ord := &vo.Order{Roots: []*vo.Node{{
		Var: "D", Keys: value.NewSchema(),
		Children: []*vo.Node{{
			Var: "C", Keys: value.NewSchema("D"),
			Children: []*vo.Node{{
				Var: "A", Keys: value.NewSchema("D", "C"),
				Rels: []vo.Rel{rels[1]},
				Children: []*vo.Node{{
					Var: "B", Keys: value.NewSchema("A"),
					Rels: []vo.Rel{rels[0]},
				}},
			}},
		}},
	}}}
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Order: ord, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 3 {
		t.Errorf("count under hand-crafted order = %d, want 3", got)
	}
	if err := tr.Insert("R", value.T("a1", 1)); err != nil {
		t.Fatal(err)
	}
	if got := tr.ResultPayload(); got != 5 {
		t.Errorf("count after insert = %d, want 5", got)
	}
}

// TestInitWeighted loads relations with explicit ring payloads — the
// matrix-chain interpretation — and checks maintenance over them.
func TestInitWeighted(t *testing.T) {
	rels := []vo.Rel{
		{Name: "MA", Schema: value.NewSchema("I", "J")},
		{Name: "MB", Schema: value.NewSchema("J", "K")},
	}
	f := ring.Floats{}
	tr, err := view.New(view.Spec[float64]{
		Ring: f, Relations: rels, Free: []string{"I", "K"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A = [[1 2],[3 4]], B = [[5 6],[7 8]] → AB = [[19 22],[43 50]].
	a := relation.New[float64](rels[0].Schema)
	a.Set(value.T(0, 0), 1)
	a.Set(value.T(0, 1), 2)
	a.Set(value.T(1, 0), 3)
	a.Set(value.T(1, 1), 4)
	b := relation.New[float64](rels[1].Schema)
	b.Set(value.T(0, 0), 5)
	b.Set(value.T(0, 1), 6)
	b.Set(value.T(1, 0), 7)
	b.Set(value.T(1, 1), 8)
	if err := tr.InitWeighted(map[string]*relation.Map[float64]{"MA": a, "MB": b}); err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]float64{{0, 0}: 19, {0, 1}: 22, {1, 0}: 43, {1, 1}: 50}
	for idx, w := range want {
		if got := tr.Result().GetOr(value.T(idx[0], idx[1]), 0); got != w {
			t.Errorf("AB[%d,%d] = %v, want %v", idx[0], idx[1], got, w)
		}
	}
	// Entry update: ΔA[0,0] = +1 → first row of AB gains B's first row.
	d := relation.New[float64](rels[0].Schema)
	d.Set(value.T(0, 0), 1)
	if err := tr.ApplyDelta("MA", d); err != nil {
		t.Fatal(err)
	}
	if got := tr.Result().GetOr(value.T(0, 0), 0); got != 24 {
		t.Errorf("AB[0,0] after delta = %v, want 24", got)
	}
	if got := tr.Result().GetOr(value.T(0, 1), 0); got != 28 {
		t.Errorf("AB[0,1] after delta = %v, want 28", got)
	}
	// The engine clones inputs: mutating the original must not matter.
	a.Set(value.T(0, 0), 99)
	if got := tr.Result().GetOr(value.T(0, 0), 0); got != 24 {
		t.Error("InitWeighted aliased its input")
	}
	// Errors.
	if err := tr.InitWeighted(map[string]*relation.Map[float64]{"X": a}); err == nil {
		t.Error("unknown relation accepted")
	}
	bad := relation.New[float64](value.NewSchema("Z"))
	if err := tr.InitWeighted(map[string]*relation.Map[float64]{"MA": bad}); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestNodeAccessorsAndDeltaFor covers the inspection accessors and the
// explicit delta-construction path.
func TestNodeAccessorsAndDeltaFor(t *testing.T) {
	rels := figure1Rels()
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatal(err)
	}
	root := tr.Roots()[0]
	if !root.Keys().Equal(value.NewSchema()) {
		t.Errorf("root keys = %v", root.Keys())
	}
	var anchored []string
	var walk func(n *view.Node[int64])
	walk = func(n *view.Node[int64]) {
		anchored = append(anchored, n.RelNames()...)
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	if len(anchored) != 2 {
		t.Errorf("anchored relations = %v", anchored)
	}
	if tr.Lift("B") != nil {
		t.Error("count tree has no lifts")
	}

	// DeltaFor builds multiplicity-accumulating deltas.
	d, err := tr.DeltaFor("R", []view.Update{
		{Rel: "R", Tuple: value.T("a9", 9), Mult: 2},
		{Rel: "R", Tuple: value.T("a9", 9), Mult: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Get(value.T("a9", 9)); got != 1 {
		t.Errorf("delta multiplicity = %d, want 1", got)
	}
	before := tr.ResultPayload()
	if err := tr.ApplyDelta("R", d); err != nil {
		t.Fatal(err)
	}
	// a9 has no join partner, so the result is unchanged but the source
	// gained the tuple.
	if tr.ResultPayload() != before {
		t.Error("dangling insert changed the result")
	}
	src, _ := tr.Source("R")
	if got, _ := src.Get(value.T("a9", 9)); got != 1 {
		t.Error("source not updated")
	}
}

package view_test

import (
	"bytes"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

func TestSnapshotRoundTripInts(t *testing.T) {
	rels := figure1Rels()
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatal(err)
	}
	// Mutate past the initial load so the snapshot captures maintenance
	// state too.
	if err := tr.Insert("R", value.T("a3", 5)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteSnapshot(&buf, ring.IntCodec{}); err != nil {
		t.Fatal(err)
	}

	restored, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes()), ring.IntCodec{}); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.ResultPayload(), tr.ResultPayload(); got != want {
		t.Errorf("restored result = %d, want %d", got, want)
	}
	// The restored tree keeps maintaining correctly.
	if err := restored.Insert("S", value.T("a3", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert("S", value.T("a3", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if restored.ResultPayload() != tr.ResultPayload() {
		t.Error("restored tree diverged after further updates")
	}
}

func TestSnapshotRoundTripRelCovar(t *testing.T) {
	rels := figure1Rels()
	r := ring.NewRelCovarRing(3)
	spec := view.Spec[*ring.RelCovar]{
		Ring: r, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.RelCovar]{
			"B": r.LiftContinuous(0), "C": r.LiftCategorical(1), "D": r.LiftContinuous(2),
		},
	}
	tr, err := view.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	codec := ring.RelCovarCodec{Ring: r}
	if err := tr.WriteSnapshot(&buf, codec); err != nil {
		t.Fatal(err)
	}
	restored, err := view.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes()), codec); err != nil {
		t.Fatal(err)
	}
	if !restored.ResultPayload().Equal(tr.ResultPayload()) {
		t.Errorf("restored payload %v != original %v", restored.ResultPayload(), tr.ResultPayload())
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	rels := figure1Rels()
	tr, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Init(figure1Data()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteSnapshot(&buf, ring.IntCodec{}); err != nil {
		t.Fatal(err)
	}

	fresh := func() *view.Tree[int64] {
		f, err := view.New(view.Spec[int64]{Ring: ring.Ints{}, Relations: rels})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Bad magic.
	bad := append([]byte("NOTASNAP"), buf.Bytes()[8:]...)
	if err := fresh().ReadSnapshot(bytes.NewReader(bad), ring.IntCodec{}); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), buf.Bytes()...)
	bad[8] = 99
	if err := fresh().ReadSnapshot(bytes.NewReader(bad), ring.IntCodec{}); err == nil {
		t.Error("bad version accepted")
	}
	// Truncation at every prefix must error, never panic.
	for cut := 0; cut < buf.Len(); cut += 7 {
		if err := fresh().ReadSnapshot(bytes.NewReader(buf.Bytes()[:cut]), ring.IntCodec{}); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
	// Mismatched tree shape.
	other, err := view.New(view.Spec[int64]{
		Ring:      ring.Ints{},
		Relations: []vo.Rel{{Name: "X", Schema: value.NewSchema("A")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.ReadSnapshot(bytes.NewReader(buf.Bytes()), ring.IntCodec{}); err == nil {
		t.Error("snapshot restored into mismatched tree")
	}
}

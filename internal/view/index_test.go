package view

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/vo"
)

// TestIndexRegistration: building a tree registers join-key indexes on
// every probed part (sibling views and anchored relations), and bulk
// loads — which replace the underlying maps — re-register them.
func TestIndexRegistration(t *testing.T) {
	tr, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels})
	if err != nil {
		t.Fatal(err)
	}
	countIndexed := func() (views, sources int) {
		var walk func(n *Node[int64])
		walk = func(n *Node[int64]) {
			if n.view.IndexCount() > 0 {
				views++
			}
			for _, c := range n.children {
				walk(c)
			}
		}
		for _, r := range tr.roots {
			walk(r)
		}
		for _, s := range tr.sources {
			if s.data.IndexCount() > 0 {
				sources++
			}
		}
		return
	}
	v0, s0 := countIndexed()
	if v0 == 0 && s0 == 0 {
		t.Fatal("tree construction registered no indexes")
	}
	// Init replaces every view and source map; the registrations must
	// survive the swap.
	if err := tr.Init(map[string][]value.Tuple{
		"R": {value.T(1, 2)}, "S": {value.T(2, 3)}, "T": {value.T(3, 4)},
	}); err != nil {
		t.Fatal(err)
	}
	v1, s1 := countIndexed()
	if v1 != v0 || s1 != s0 {
		t.Fatalf("bulk load changed index coverage: views %d->%d, sources %d->%d", v0, v1, s0, s1)
	}
}

// TestIndexedDeltaMatchesRecompute: incrementally maintained views
// (which run the JoinProbeWith path and the index-maintaining merges)
// must stay bit-identical to a from-scratch bulk load of the same live
// data — the strongest end-to-end check that index probes see exactly
// the live entries.
func TestIndexedDeltaMatchesRecompute(t *testing.T) {
	build := func() *Tree[int64] {
		tr, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels, Free: []string{"B"}})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	inc := build()
	rnd := rand.New(rand.NewSource(11))
	live := map[string][]value.Tuple{}
	ups := randomStream(rnd, parallelRels, 500)
	for i, u := range ups {
		if err := inc.ApplyUpdates(ups[i : i+1]); err != nil {
			t.Fatal(err)
		}
		if u.Mult > 0 {
			live[u.Rel] = append(live[u.Rel], u.Tuple)
		} else {
			l := live[u.Rel]
			for j, tp := range l {
				if tp.Equal(u.Tuple) {
					live[u.Rel] = append(l[:j], l[j+1:]...)
					break
				}
			}
		}
		if i%100 != 99 {
			continue
		}
		ref := build()
		if err := ref.Init(live); err != nil {
			t.Fatal(err)
		}
		if got, want := treeState(inc), treeState(ref); got != want {
			t.Fatalf("after %d updates, incremental state diverged from recompute:\n%s\nvs\n%s", i+1, got, want)
		}
	}
}

// TestIndexConcurrentProbeReads drives large batches through the
// parallel path, where every propagate worker concurrently probes the
// shared sibling-view and source-relation indexes. Run under -race (CI
// does) this asserts index reads are safe during parallel propagation;
// the state checks double as an indexed-vs-sequential equivalence
// guard.
func TestIndexConcurrentProbeReads(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("B", "C")},
		{Name: "T", Schema: value.NewSchema("C", "D")},
	}
	seq, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	par.SetParallelism(4, 1)
	rnd := rand.New(rand.NewSource(23))
	for round := 0; round < 6; round++ {
		ups := randomStream(rnd, rels, 400)
		if err := seq.ApplyUpdates(ups); err != nil {
			t.Fatal(err)
		}
		if err := par.ApplyUpdates(ups); err != nil {
			t.Fatal(err)
		}
		if s, p := treeState(seq), treeState(par); s != p {
			t.Fatalf("round %d: parallel indexed propagation diverged:\n%s\nvs\n%s", round, s, p)
		}
	}
}

// TestIndexedSnapshotRoundTrip: restoring a snapshot replaces the
// source maps and re-derives the views; maintenance after the restore
// must still run on consistent indexes.
func TestIndexedSnapshotRoundTrip(t *testing.T) {
	build := func() *Tree[int64] {
		tr, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := build()
	rnd := rand.New(rand.NewSource(5))
	if err := a.ApplyUpdates(randomStream(rnd, parallelRels, 200)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf, ring.IntCodec{}); err != nil {
		t.Fatal(err)
	}
	b := build()
	if err := b.ReadSnapshot(&buf, ring.IntCodec{}); err != nil {
		t.Fatal(err)
	}
	// Post-restore maintenance exercises the re-registered indexes.
	more := randomStream(rnd, parallelRels, 200)
	if err := a.ApplyUpdates(more); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyUpdates(more); err != nil {
		t.Fatal(err)
	}
	if sa, sb := treeState(a), treeState(b); sa != sb {
		t.Fatalf("post-restore maintenance diverged:\n%s\nvs\n%s", sa, sb)
	}
}

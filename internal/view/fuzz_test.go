package view

// Property-style checks of the parallel commit path. The hand-picked
// equivalence tests in parallel_test.go pin specific worker counts and
// streams; here the same invariant — parallel and sequential commits
// produce bit-identical trees after every batch — is checked across a
// fuzzed parameter space, and an annihilation round-trip property
// exercises the O(1) index-removal path until every batch's postings
// are gone again.

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
)

// verifyTreeIndexes asserts every secondary index of every map in the
// tree (views, sources, result) exactly mirrors its primary contents.
func verifyTreeIndexes[V any](t *testing.T, tr *Tree[V], ctx string) {
	t.Helper()
	check := func(name string, m *relation.Map[V]) {
		if err := m.VerifyIndexes(); err != nil {
			t.Fatalf("%s: %s: %v", ctx, name, err)
		}
	}
	var walk func(n *Node[V])
	walk = func(n *Node[V]) {
		check("view "+n.Var(), n.View())
		for _, c := range n.Children() {
			walk(c)
		}
	}
	for _, r := range tr.Roots() {
		walk(r)
	}
	for _, name := range tr.RelationNames() {
		src, _ := tr.Source(name)
		check("source "+name, src)
	}
	check("result", tr.Result())
}

func groupByTree(t testing.TB) *Tree[int64] {
	tr, err := New(Spec[int64]{Ring: ring.Ints{}, Relations: parallelRels, Free: []string{"B"}})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// FuzzParallelCommitEquivalence is the seeded property check behind the
// hand-picked equivalence tests: for ANY (seed, worker count, batch
// size, delete bias), the parallel commit path must produce trees
// bit-identical to the sequential path after every batch, with every
// built index consistent. The inputs are four plain scalars, so a
// failing case replays deterministically and the fuzzer shrinks it to a
// minimal corpus entry.
func FuzzParallelCommitEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(60), uint8(35))
	f.Add(int64(7), uint8(2), uint8(9), uint8(60))
	// Annihilation-heavy: ~90% of steps delete a live tuple, so most of
	// the stream drains postings through the O(1) removal path.
	f.Add(int64(42), uint8(8), uint8(180), uint8(90))
	f.Fuzz(func(t *testing.T, seed int64, workers, batch, delBias uint8) {
		w := int(workers)%8 + 1
		b := int(batch)%200 + 1
		// Cap the bias below 1 so streams always make progress.
		bias := float64(int(delBias)%96) / 100
		seq, par := groupByTree(t), groupByTree(t)
		par.SetParallelism(w, 1)

		rnd := rand.New(rand.NewSource(seed))
		init := map[string][]value.Tuple{}
		for _, r := range parallelRels {
			for i := 0; i < 20; i++ {
				init[r.Name] = append(init[r.Name], value.T(rnd.Intn(6), rnd.Intn(6)))
			}
		}
		if err := seq.Init(init); err != nil {
			t.Fatal(err)
		}
		if err := par.Init(init); err != nil {
			t.Fatal(err)
		}

		ups := biasedStream(rnd, parallelRels, 350, bias)
		for i := 0; i < len(ups); i += b {
			end := min(i+b, len(ups))
			if err := seq.ApplyUpdates(ups[i:end]); err != nil {
				t.Fatal(err)
			}
			if err := par.ApplyUpdates(ups[i:end]); err != nil {
				t.Fatal(err)
			}
			if s, p := treeState(seq), treeState(par); s != p {
				t.Fatalf("diverged after batch ending at %d (workers=%d batch=%d bias=%.2f):\nsequential:\n%s\nparallel:\n%s",
					end, w, b, bias, s, p)
			}
			verifyTreeIndexes(t, seq, "sequential")
			verifyTreeIndexes(t, par, "parallel")
		}
	})
}

// TestParallelAnnihilationRoundTrip: applying a random insert batch and
// then its exact negation through the parallel path must restore every
// view, source, and index bucket to the pre-batch state — each round
// drives one full build-up/tear-down of postings through the O(1)
// removal path. A sequential twin is compared after every half-round.
func TestParallelAnnihilationRoundTrip(t *testing.T) {
	seq, par := groupByTree(t), groupByTree(t)
	par.SetParallelism(4, 1)
	if err := seq.Init(nil); err != nil {
		t.Fatal(err)
	}
	if err := par.Init(nil); err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(11))
	// Warm-up populates the sources and forces the lazy index builds via
	// real deltas, so the rounds below mutate BUILT indexes.
	warm := biasedStream(rnd, parallelRels, 200, 0.3)
	if err := seq.ApplyUpdates(warm); err != nil {
		t.Fatal(err)
	}
	if err := par.ApplyUpdates(warm); err != nil {
		t.Fatal(err)
	}
	if s, p := treeState(seq), treeState(par); s != p {
		t.Fatalf("warm-up diverged:\n%s\nvs\n%s", s, p)
	}
	base := treeState(par)

	for round := 0; round < 15; round++ {
		ins := make([]Update, 0, 180)
		for i := 0; i < 180; i++ {
			r := parallelRels[rnd.Intn(len(parallelRels))]
			ins = append(ins, Update{Rel: r.Name, Tuple: value.T(rnd.Intn(7), rnd.Intn(7)), Mult: 1})
		}
		neg := make([]Update, len(ins))
		for i, u := range ins {
			neg[len(ins)-1-i] = Update{Rel: u.Rel, Tuple: u.Tuple, Mult: -1}
		}
		for _, half := range [][]Update{ins, neg} {
			if err := seq.ApplyUpdates(half); err != nil {
				t.Fatal(err)
			}
			if err := par.ApplyUpdates(half); err != nil {
				t.Fatal(err)
			}
			if s, p := treeState(seq), treeState(par); s != p {
				t.Fatalf("round %d diverged:\nsequential:\n%s\nparallel:\n%s", round, s, p)
			}
			verifyTreeIndexes(t, seq, "sequential")
			verifyTreeIndexes(t, par, "parallel")
		}
		if got := treeState(par); got != base {
			t.Fatalf("round %d: negation did not restore the pre-batch state:\nwant:\n%s\ngot:\n%s", round, base, got)
		}
	}
}

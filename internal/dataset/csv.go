package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/value"
)

// CSV persistence for generated (or user-supplied) databases. Each
// relation lives in <dir>/<Name>.csv; the header row carries typed
// attribute names ("locn:int", "prize:float", "city:string") so files
// round-trip without a side-channel schema.

// WriteCSV writes every relation of db into dir (created if missing),
// one typed-header CSV per relation.
func WriteCSV(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rel := range db.Relations {
		if err := writeRelationCSV(rel, filepath.Join(dir, rel.Name+".csv")); err != nil {
			return fmt.Errorf("dataset: writing %s: %w", rel.Name, err)
		}
	}
	return nil
}

func writeRelationCSV(rel Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)

	header := make([]string, len(rel.Attrs))
	for i, a := range rel.Attrs {
		kind := "string"
		if len(rel.Tuples) > 0 {
			switch rel.Tuples[0][i].Kind() {
			case value.KindInt:
				kind = "int"
			case value.KindFloat:
				kind = "float"
			}
		}
		header[i] = a + ":" + kind
	}
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, len(rel.Attrs))
	for _, tp := range rel.Tuples {
		for i, v := range tp {
			switch v.Kind() {
			case value.KindInt:
				row[i] = strconv.FormatInt(v.Int(), 10)
			case value.KindFloat:
				row[i] = strconv.FormatFloat(v.Float(), 'g', -1, 64)
			case value.KindString:
				row[i] = v.Str()
			case value.KindNull:
				row[i] = ""
			}
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV loads the relations named in names (without the .csv suffix)
// from dir into a Database. Attribute kinds come from the typed header.
func ReadCSV(dir string, names []string) (*Database, error) {
	db := &Database{Name: filepath.Base(dir)}
	for _, name := range names {
		rel, err := readRelationCSV(name, filepath.Join(dir, name+".csv"))
		if err != nil {
			return nil, fmt.Errorf("dataset: reading %s: %w", name, err)
		}
		db.Relations = append(db.Relations, rel)
	}
	return db, nil
}

func readRelationCSV(name, path string) (Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return Relation{}, err
	}
	defer f.Close()
	return ParseCSV(name, f)
}

// ParseCSV parses one typed-header CSV stream into a relation.
func ParseCSV(name string, r io.Reader) (Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return Relation{}, fmt.Errorf("reading header: %w", err)
	}
	rel := Relation{Name: name}
	kinds := make([]value.Kind, len(header))
	for i, h := range header {
		attr, kind, found := strings.Cut(h, ":")
		if !found {
			kind = "string"
		}
		attr = strings.TrimSpace(attr)
		if attr == "" {
			return Relation{}, fmt.Errorf("column %d has an empty name", i)
		}
		rel.Attrs = append(rel.Attrs, attr)
		switch strings.TrimSpace(kind) {
		case "int", "long":
			kinds[i] = value.KindInt
		case "float", "double":
			kinds[i] = value.KindFloat
		case "string", "varchar":
			kinds[i] = value.KindString
		default:
			return Relation{}, fmt.Errorf("column %q has unknown kind %q", attr, kind)
		}
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Relation{}, err
		}
		tp := make(value.Tuple, len(rec))
		for i, field := range rec {
			if field == "" {
				tp[i] = value.Null()
				continue
			}
			switch kinds[i] {
			case value.KindInt:
				n, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return Relation{}, fmt.Errorf("line %d column %s: %w", line, rel.Attrs[i], err)
				}
				tp[i] = value.Int(n)
			case value.KindFloat:
				f, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return Relation{}, fmt.Errorf("line %d column %s: %w", line, rel.Attrs[i], err)
				}
				tp[i] = value.Float(f)
			default:
				tp[i] = value.String(field)
			}
		}
		rel.Tuples = append(rel.Tuples, tp)
	}
	return rel, nil
}

// Package dataset provides synthetic stand-ins for the paper's two demo
// databases — Retailer and Favorita — plus update-stream generators.
// The real datasets are proprietary (Retailer) or a Kaggle download
// (Favorita); the generators reproduce their schemas, foreign-key
// structure, key skew, and update patterns so that maintenance cost and
// all application behaviour are preserved (see DESIGN.md,
// "Substitutions").
package dataset

import (
	"math/rand"

	"repro/internal/value"
)

// Relation is one generated input relation: its name, schema, and rows.
type Relation struct {
	Name   string
	Attrs  []string
	Tuples []value.Tuple
}

// Schema returns the relation's schema.
func (r Relation) Schema() value.Schema { return value.NewSchema(r.Attrs...) }

// Database is a set of generated relations plus attribute kind metadata.
type Database struct {
	Name      string
	Relations []Relation
	// Categorical lists the attributes that are categorical (all others
	// are continuous).
	Categorical []string
}

// Relation returns the named relation.
func (d *Database) Relation(name string) (Relation, bool) {
	for _, r := range d.Relations {
		if r.Name == name {
			return r, true
		}
	}
	return Relation{}, false
}

// TupleMap converts the database to the map form view.Tree.Init expects.
func (d *Database) TupleMap() map[string][]value.Tuple {
	out := make(map[string][]value.Tuple, len(d.Relations))
	for _, r := range d.Relations {
		out[r.Name] = r.Tuples
	}
	return out
}

// IsCategorical reports whether attr is categorical in this database.
func (d *Database) IsCategorical(attr string) bool {
	for _, a := range d.Categorical {
		if a == attr {
			return true
		}
	}
	return false
}

// RetailerConfig sizes the synthetic Retailer database. The shape
// follows the paper's Figure 2: a large Inventory fact table joining
// Location, Census (via zip), Item, and Weather.
type RetailerConfig struct {
	// Locations is the number of stores (locn values).
	Locations int
	// Dates is the number of dateid values.
	Dates int
	// Items is the number of stock-keeping numbers (ksn values).
	Items int
	// InventoryRows is the number of Inventory fact rows.
	InventoryRows int
	// Zips is the number of zip codes (≤ Locations means shared zips).
	Zips int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultRetailerConfig returns a laptop-scale configuration (~10K fact
// rows) suitable for tests and examples; benchmarks scale it up.
func DefaultRetailerConfig() RetailerConfig {
	return RetailerConfig{
		Locations:     30,
		Dates:         100,
		Items:         200,
		InventoryRows: 10_000,
		Zips:          20,
		Seed:          1,
	}
}

// Retailer attribute lists. Inventory's inventoryunits is the demo's
// regression label. Attribute names follow Figure 2 of the paper.
var (
	retailerInventoryAttrs = []string{"locn", "dateid", "ksn", "inventoryunits"}
	retailerLocationAttrs  = []string{"locn", "zip", "rgn_cd", "clim_zn_nbr", "tot_area_sq_ft", "sell_area_sq_ft", "avghhi", "supertargetdistance", "walmartdistance"}
	retailerCensusAttrs    = []string{"zip", "population", "white", "asian", "pacific", "black", "medianage", "occupiedhouseunits", "houseunits", "families", "households", "husbwife", "males", "females", "householdschildren", "hispanic"}
	retailerItemAttrs      = []string{"ksn", "subcategory", "category", "categoryCluster", "prize"}
	retailerWeatherAttrs   = []string{"locn", "dateid", "rain", "snow", "maxtemp", "mintemp", "meanwind", "thunder"}

	retailerCategorical = []string{"locn", "dateid", "ksn", "zip", "rgn_cd", "clim_zn_nbr", "subcategory", "category", "categoryCluster", "rain", "snow", "thunder"}
)

// RetailerAttrs returns the attribute names of each Retailer relation.
func RetailerAttrs() map[string][]string {
	return map[string][]string{
		"Inventory": retailerInventoryAttrs,
		"Location":  retailerLocationAttrs,
		"Census":    retailerCensusAttrs,
		"Item":      retailerItemAttrs,
		"Weather":   retailerWeatherAttrs,
	}
}

// Retailer generates the synthetic Retailer database: five relations
// joined on (locn, dateid, ksn, zip), with a zipf-skewed fact table.
func Retailer(cfg RetailerConfig) *Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Zips <= 0 {
		cfg.Zips = cfg.Locations
	}

	// Location: one row per store; zip drawn from the zip pool.
	location := Relation{Name: "Location", Attrs: retailerLocationAttrs}
	locZip := make([]int, cfg.Locations)
	for l := 0; l < cfg.Locations; l++ {
		zip := rng.Intn(cfg.Zips)
		locZip[l] = zip
		location.Tuples = append(location.Tuples, value.T(
			l, zip,
			rng.Intn(8),                  // rgn_cd
			rng.Intn(15),                 // clim_zn_nbr
			20_000+rng.Float64()*180_000, // tot_area_sq_ft
			10_000+rng.Float64()*90_000,  // sell_area_sq_ft
			30_000+rng.Float64()*120_000, // avghhi
			0.5+rng.Float64()*40,         // supertargetdistance
			0.2+rng.Float64()*25,         // walmartdistance
		))
	}

	// Census: one row per zip.
	census := Relation{Name: "Census", Attrs: retailerCensusAttrs}
	for z := 0; z < cfg.Zips; z++ {
		pop := 5_000 + rng.Intn(95_000)
		houseunits := pop / (2 + rng.Intn(3))
		census.Tuples = append(census.Tuples, value.T(
			z, pop,
			int(float64(pop)*(0.4+rng.Float64()*0.4)),         // white
			int(float64(pop)*rng.Float64()*0.2),               // asian
			int(float64(pop)*rng.Float64()*0.02),              // pacific
			int(float64(pop)*rng.Float64()*0.25),              // black
			25+rng.Float64()*30,                               // medianage
			int(float64(houseunits)*(0.7+rng.Float64()*0.25)), // occupiedhouseunits
			houseunits,
			int(float64(pop)*0.25*(0.8+rng.Float64()*0.4)), // families
			int(float64(pop)*0.35*(0.8+rng.Float64()*0.4)), // households
			int(float64(pop)*0.2*(0.8+rng.Float64()*0.4)),  // husbwife
			pop/2+rng.Intn(pop/10+1),                       // males
			pop/2+rng.Intn(pop/10+1),                       // females
			int(float64(pop)*0.15*(0.8+rng.Float64()*0.4)), // householdschildren
			int(float64(pop)*rng.Float64()*0.3),            // hispanic
		))
	}

	// Item: one row per ksn; category hierarchy cluster > category >
	// subcategory.
	item := Relation{Name: "Item", Attrs: retailerItemAttrs}
	for k := 0; k < cfg.Items; k++ {
		cluster := rng.Intn(8)
		category := cluster*4 + rng.Intn(4)
		sub := category*5 + rng.Intn(5)
		item.Tuples = append(item.Tuples, value.T(
			k, sub, category, cluster,
			0.5+rng.Float64()*99.5, // prize
		))
	}

	// Weather: one row per (locn, dateid) pair that appears in
	// Inventory; generated below alongside the facts so the join is
	// never empty.
	type ld struct{ l, d int }
	weatherSeen := map[ld]bool{}
	weather := Relation{Name: "Weather", Attrs: retailerWeatherAttrs}

	// Inventory facts: zipf-ish skew on items (popular items updated
	// more), uniform stores/dates.
	inventory := Relation{Name: "Inventory", Attrs: retailerInventoryAttrs}
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.Items-1))
	for i := 0; i < cfg.InventoryRows; i++ {
		l := rng.Intn(cfg.Locations)
		d := rng.Intn(cfg.Dates)
		k := int(zipf.Uint64())
		units := rng.Intn(500)
		inventory.Tuples = append(inventory.Tuples, value.T(l, d, k, units))
		if !weatherSeen[ld{l, d}] {
			weatherSeen[ld{l, d}] = true
			maxt := -5 + rng.Float64()*40
			weather.Tuples = append(weather.Tuples, value.T(
				l, d,
				rng.Intn(2),             // rain
				rng.Intn(2),             // snow
				maxt,                    // maxtemp
				maxt-2-rng.Float64()*10, // mintemp
				rng.Float64()*30,        // meanwind
				rng.Intn(2),             // thunder
			))
		}
	}

	return &Database{
		Name:        "Retailer",
		Relations:   []Relation{inventory, location, census, item, weather},
		Categorical: retailerCategorical,
	}
}

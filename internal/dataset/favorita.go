package dataset

import (
	"math/rand"

	"repro/internal/value"
)

// FavoritaConfig sizes the synthetic Favorita database (Corporación
// Favorita grocery sales forecasting, Kaggle 2017): a Sales fact table
// joining Items, Stores, Transactions, Oil, and Holiday.
type FavoritaConfig struct {
	// Stores is the number of store ids.
	Stores int
	// Items is the number of item ids.
	Items int
	// Dates is the number of date ids.
	Dates int
	// SalesRows is the number of Sales fact rows.
	SalesRows int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultFavoritaConfig returns a laptop-scale configuration.
func DefaultFavoritaConfig() FavoritaConfig {
	return FavoritaConfig{Stores: 25, Items: 300, Dates: 120, SalesRows: 10_000, Seed: 7}
}

var (
	favoritaSalesAttrs        = []string{"date", "store", "item", "unit_sales", "onpromotion"}
	favoritaItemsAttrs        = []string{"item", "family", "class", "perishable"}
	favoritaStoresAttrs       = []string{"store", "city", "state", "stype", "cluster"}
	favoritaTransactionsAttrs = []string{"date", "store", "transactions"}
	favoritaOilAttrs          = []string{"date", "oilprice"}
	favoritaHolidayAttrs      = []string{"date", "holiday_type", "locale", "transferred"}

	favoritaCategorical = []string{"date", "store", "item", "onpromotion", "family", "class", "perishable", "city", "state", "stype", "cluster", "holiday_type", "locale", "transferred"}
)

// FavoritaAttrs returns the attribute names of each Favorita relation.
func FavoritaAttrs() map[string][]string {
	return map[string][]string{
		"Sales":        favoritaSalesAttrs,
		"Items":        favoritaItemsAttrs,
		"Stores":       favoritaStoresAttrs,
		"Transactions": favoritaTransactionsAttrs,
		"Oil":          favoritaOilAttrs,
		"Holiday":      favoritaHolidayAttrs,
	}
}

// Favorita generates the synthetic Favorita database: six relations
// joined on (date, store, item).
func Favorita(cfg FavoritaConfig) *Database {
	rng := rand.New(rand.NewSource(cfg.Seed))

	items := Relation{Name: "Items", Attrs: favoritaItemsAttrs}
	for i := 0; i < cfg.Items; i++ {
		family := rng.Intn(30)
		items.Tuples = append(items.Tuples, value.T(
			i, family, family*10+rng.Intn(10), rng.Intn(2),
		))
	}

	stores := Relation{Name: "Stores", Attrs: favoritaStoresAttrs}
	for s := 0; s < cfg.Stores; s++ {
		city := rng.Intn(20)
		stores.Tuples = append(stores.Tuples, value.T(
			s, city, city/2, rng.Intn(5), rng.Intn(17),
		))
	}

	oil := Relation{Name: "Oil", Attrs: favoritaOilAttrs}
	holiday := Relation{Name: "Holiday", Attrs: favoritaHolidayAttrs}
	price := 45.0
	for d := 0; d < cfg.Dates; d++ {
		price += rng.NormFloat64()
		if price < 20 {
			price = 20
		}
		oil.Tuples = append(oil.Tuples, value.T(d, price))
		ht := 0 // workday
		if rng.Float64() < 0.1 {
			ht = 1 + rng.Intn(3)
		}
		holiday.Tuples = append(holiday.Tuples, value.T(d, ht, rng.Intn(3), rng.Intn(2)))
	}

	type ds struct{ d, s int }
	txSeen := map[ds]bool{}
	transactions := Relation{Name: "Transactions", Attrs: favoritaTransactionsAttrs}

	sales := Relation{Name: "Sales", Attrs: favoritaSalesAttrs}
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(cfg.Items-1))
	for i := 0; i < cfg.SalesRows; i++ {
		d := rng.Intn(cfg.Dates)
		s := rng.Intn(cfg.Stores)
		it := int(zipf.Uint64())
		sales.Tuples = append(sales.Tuples, value.T(
			d, s, it,
			float64(1+rng.Intn(40))+rng.Float64(), // unit_sales
			rng.Intn(2),                           // onpromotion
		))
		if !txSeen[ds{d, s}] {
			txSeen[ds{d, s}] = true
			transactions.Tuples = append(transactions.Tuples, value.T(d, s, 300+rng.Intn(4000)))
		}
	}

	return &Database{
		Name:        "Favorita",
		Relations:   []Relation{sales, items, stores, transactions, oil, holiday},
		Categorical: favoritaCategorical,
	}
}

package dataset

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestCSVRoundTrip(t *testing.T) {
	db := Retailer(RetailerConfig{Locations: 3, Dates: 4, Items: 6, InventoryRows: 40, Zips: 3, Seed: 12})
	dir := t.TempDir()
	if err := WriteCSV(db, dir); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(db.Relations))
	for i, r := range db.Relations {
		names[i] = r.Name
	}
	back, err := ReadCSV(dir, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Relations) != len(db.Relations) {
		t.Fatalf("%d relations back, want %d", len(back.Relations), len(db.Relations))
	}
	for _, orig := range db.Relations {
		got, ok := back.Relation(orig.Name)
		if !ok {
			t.Fatalf("relation %s missing after roundtrip", orig.Name)
		}
		if len(got.Tuples) != len(orig.Tuples) {
			t.Fatalf("%s: %d tuples back, want %d", orig.Name, len(got.Tuples), len(orig.Tuples))
		}
		if !got.Schema().Equal(orig.Schema()) {
			t.Fatalf("%s: schema %v back, want %v", orig.Name, got.Schema(), orig.Schema())
		}
		for i := range orig.Tuples {
			if !got.Tuples[i].Equal(orig.Tuples[i]) {
				t.Fatalf("%s row %d: %v back, want %v", orig.Name, i, got.Tuples[i], orig.Tuples[i])
			}
		}
	}
}

func TestParseCSVTypedHeader(t *testing.T) {
	src := "id:int, price:float, name:string\n1,2.5,apple\n2,0.75,pear\n"
	rel, err := ParseCSV("Fruit", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 2 {
		t.Fatalf("%d tuples", len(rel.Tuples))
	}
	want := value.T(1, 2.5, "apple")
	if !rel.Tuples[0].Equal(want) {
		t.Errorf("row 0 = %v, want %v", rel.Tuples[0], want)
	}
	if rel.Attrs[1] != "price" {
		t.Errorf("attrs = %v", rel.Attrs)
	}
}

func TestParseCSVDefaultsToString(t *testing.T) {
	rel, err := ParseCSV("R", strings.NewReader("a,b:int\nx,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Kind() != value.KindString {
		t.Errorf("untyped column kind = %v", rel.Tuples[0][0].Kind())
	}
}

func TestParseCSVNulls(t *testing.T) {
	rel, err := ParseCSV("R", strings.NewReader("a:int,b:float\n,\n3,4.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Tuples[0][0].IsNull() || !rel.Tuples[0][1].IsNull() {
		t.Errorf("empty fields = %v, want NULLs", rel.Tuples[0])
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad kind", "a:blob\n1\n"},
		{"empty name", ":int\n1\n"},
		{"bad int", "a:int\nxyz\n"},
		{"bad float", "a:float\nxyz\n"},
		{"ragged row", "a:int,b:int\n1\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		if _, err := ParseCSV("R", strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadCSVMissingFile(t *testing.T) {
	if _, err := ReadCSV(t.TempDir(), []string{"Nope"}); err == nil {
		t.Error("missing file accepted")
	}
}

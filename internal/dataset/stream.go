package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/value"
	"repro/internal/view"
)

// StreamConfig shapes an update stream against a generated database.
type StreamConfig struct {
	// Relation is the relation receiving updates (typically the fact
	// table: "Inventory" or "Sales").
	Relation string
	// Total is the number of tuple-level updates to generate.
	Total int
	// DeleteRatio in [0, 1] is the fraction of updates that are deletes
	// of previously inserted tuples. The paper maintains under both
	// inserts and deletes; 0 reproduces insert-only online learning.
	DeleteRatio float64
	// Seed makes the stream deterministic.
	Seed int64
}

// Stream is a pre-generated update sequence, cut into bulks by the
// caller (the demo uses bulks of 10K).
type Stream struct {
	Relation string
	Updates  []view.Update
}

// Bulks splits the stream into batches of size n (the last may be
// shorter).
func (s *Stream) Bulks(n int) [][]view.Update {
	if n <= 0 {
		n = len(s.Updates)
	}
	var out [][]view.Update
	for i := 0; i < len(s.Updates); i += n {
		j := i + n
		if j > len(s.Updates) {
			j = len(s.Updates)
		}
		out = append(out, s.Updates[i:j])
	}
	return out
}

// NewStream builds an update stream for db: fresh tuples are drawn by
// re-running the relation's generator distribution (via mutate of
// existing rows with new keys), and deletes target previously inserted
// stream tuples, so every delete cancels an earlier insert exactly —
// the well-formedness condition the paper assumes.
func NewStream(db *Database, cfg StreamConfig) (*Stream, error) {
	rel, ok := db.Relation(cfg.Relation)
	if !ok {
		return nil, fmt.Errorf("dataset: relation %s not in database %s", cfg.Relation, db.Name)
	}
	if len(rel.Tuples) == 0 {
		return nil, fmt.Errorf("dataset: relation %s is empty", cfg.Relation)
	}
	if cfg.DeleteRatio < 0 || cfg.DeleteRatio > 1 {
		return nil, fmt.Errorf("dataset: delete ratio %v out of [0,1]", cfg.DeleteRatio)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Stream{Relation: cfg.Relation}

	var live []value.Tuple // stream-inserted tuples eligible for delete
	for len(s.Updates) < cfg.Total {
		doDelete := len(live) > 0 && rng.Float64() < cfg.DeleteRatio
		if doDelete {
			i := rng.Intn(len(live))
			t := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			s.Updates = append(s.Updates, view.Update{Rel: cfg.Relation, Tuple: t, Mult: -1})
			continue
		}
		// Fresh insert: clone a random base tuple and perturb its
		// non-key numeric fields so fact rows stay FK-consistent with
		// the dimension tables while the measure varies.
		base := rel.Tuples[rng.Intn(len(rel.Tuples))]
		t := make(value.Tuple, len(base))
		copy(t, base)
		for i := range t {
			if t[i].Kind() == value.KindFloat {
				t[i] = value.Float(t[i].Float() * (0.5 + rng.Float64()))
			}
		}
		// Perturb the last attribute if integer-valued measure (e.g.
		// inventoryunits) to vary the label.
		if last := len(t) - 1; t[last].Kind() == value.KindInt && !db.IsCategorical(rel.Attrs[last]) {
			t[last] = value.Int(int64(rng.Intn(500)))
		}
		live = append(live, t)
		s.Updates = append(s.Updates, view.Update{Rel: cfg.Relation, Tuple: t, Mult: 1})
	}
	return s, nil
}

// RoundRobinStream interleaves updates over several relations of the
// database, exercising maintenance paths through different view-tree
// anchors. Each relation receives ~Total/len(relations) updates.
func RoundRobinStream(db *Database, relations []string, total int, deleteRatio float64, seed int64) ([]view.Update, error) {
	per := total / len(relations)
	var streams []*Stream
	for i, r := range relations {
		s, err := NewStream(db, StreamConfig{Relation: r, Total: per, DeleteRatio: deleteRatio, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		streams = append(streams, s)
	}
	var out []view.Update
	for i := 0; i < per; i++ {
		for _, s := range streams {
			out = append(out, s.Updates[i])
		}
	}
	return out, nil
}

package dataset

import (
	"testing"

	"repro/internal/value"
)

func TestRetailerShapeAndFKConsistency(t *testing.T) {
	cfg := RetailerConfig{Locations: 5, Dates: 10, Items: 20, InventoryRows: 300, Zips: 4, Seed: 9}
	db := Retailer(cfg)
	if db.Name != "Retailer" || len(db.Relations) != 5 {
		t.Fatalf("db = %s with %d relations", db.Name, len(db.Relations))
	}
	inv, ok := db.Relation("Inventory")
	if !ok || len(inv.Tuples) != 300 {
		t.Fatalf("Inventory: %d tuples", len(inv.Tuples))
	}
	loc, _ := db.Relation("Location")
	if len(loc.Tuples) != 5 {
		t.Errorf("Location: %d tuples, want 5", len(loc.Tuples))
	}
	cen, _ := db.Relation("Census")
	if len(cen.Tuples) != 4 {
		t.Errorf("Census: %d tuples, want 4", len(cen.Tuples))
	}

	// FK consistency: every Inventory (locn, dateid, ksn) must have
	// matching dimension rows, so the 5-way join is never empty.
	locns := map[int64]bool{}
	for _, tp := range loc.Tuples {
		locns[tp[0].Int()] = true
	}
	items, _ := db.Relation("Item")
	ksns := map[int64]bool{}
	for _, tp := range items.Tuples {
		ksns[tp[0].Int()] = true
	}
	weather, _ := db.Relation("Weather")
	weatherLD := map[[2]int64]bool{}
	for _, tp := range weather.Tuples {
		weatherLD[[2]int64{tp[0].Int(), tp[1].Int()}] = true
	}
	for _, tp := range inv.Tuples {
		l, d, k := tp[0].Int(), tp[1].Int(), tp[2].Int()
		if !locns[l] {
			t.Fatalf("fact references missing locn %d", l)
		}
		if !ksns[k] {
			t.Fatalf("fact references missing ksn %d", k)
		}
		if !weatherLD[[2]int64{l, d}] {
			t.Fatalf("fact references missing weather (%d, %d)", l, d)
		}
	}
	// Every Location zip must exist in Census.
	zips := map[int64]bool{}
	for _, tp := range cen.Tuples {
		zips[tp[0].Int()] = true
	}
	for _, tp := range loc.Tuples {
		if !zips[tp[1].Int()] {
			t.Fatalf("location references missing zip %d", tp[1].Int())
		}
	}
}

func TestRetailerDeterministicBySeed(t *testing.T) {
	cfg := RetailerConfig{Locations: 3, Dates: 5, Items: 10, InventoryRows: 50, Zips: 3, Seed: 4}
	a := Retailer(cfg)
	b := Retailer(cfg)
	at, _ := a.Relation("Inventory")
	bt, _ := b.Relation("Inventory")
	for i := range at.Tuples {
		if !at.Tuples[i].Equal(bt.Tuples[i]) {
			t.Fatalf("row %d differs across same-seed runs", i)
		}
	}
	cfg.Seed = 5
	c := Retailer(cfg)
	ct, _ := c.Relation("Inventory")
	same := true
	for i := range at.Tuples {
		if !at.Tuples[i].Equal(ct.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestRetailerSchemasMatchAttrLists(t *testing.T) {
	db := Retailer(RetailerConfig{Locations: 2, Dates: 2, Items: 2, InventoryRows: 10, Zips: 2, Seed: 1})
	for _, r := range db.Relations {
		for i, tp := range r.Tuples {
			if len(tp) != len(r.Attrs) {
				t.Fatalf("%s row %d: arity %d, schema %d", r.Name, i, len(tp), len(r.Attrs))
			}
		}
		if r.Schema().Len() != len(r.Attrs) {
			t.Fatalf("%s schema dropped attributes", r.Name)
		}
	}
	attrs := RetailerAttrs()
	if len(attrs) != 5 || attrs["Inventory"][0] != "locn" {
		t.Error("RetailerAttrs drifted")
	}
}

func TestFavoritaShape(t *testing.T) {
	db := Favorita(FavoritaConfig{Stores: 4, Items: 20, Dates: 15, SalesRows: 200, Seed: 2})
	if len(db.Relations) != 6 {
		t.Fatalf("%d relations", len(db.Relations))
	}
	sales, ok := db.Relation("Sales")
	if !ok || len(sales.Tuples) != 200 {
		t.Fatalf("Sales: %d rows", len(sales.Tuples))
	}
	oil, _ := db.Relation("Oil")
	if len(oil.Tuples) != 15 {
		t.Errorf("Oil: %d rows, want 15", len(oil.Tuples))
	}
	// FK: every sale's (date, store) pair has a Transactions row.
	tx, _ := db.Relation("Transactions")
	pairs := map[[2]int64]bool{}
	for _, tp := range tx.Tuples {
		pairs[[2]int64{tp[0].Int(), tp[1].Int()}] = true
	}
	for _, tp := range sales.Tuples {
		if !pairs[[2]int64{tp[0].Int(), tp[1].Int()}] {
			t.Fatalf("sale references missing transactions (%d, %d)", tp[0].Int(), tp[1].Int())
		}
	}
	if !db.IsCategorical("family") || db.IsCategorical("unit_sales") {
		t.Error("categorical metadata wrong")
	}
	if len(FavoritaAttrs()) != 6 {
		t.Error("FavoritaAttrs drifted")
	}
}

func TestDatabaseHelpers(t *testing.T) {
	db := Retailer(RetailerConfig{Locations: 2, Dates: 2, Items: 2, InventoryRows: 5, Zips: 2, Seed: 1})
	if _, ok := db.Relation("Nope"); ok {
		t.Error("phantom relation")
	}
	tm := db.TupleMap()
	if len(tm) != 5 || len(tm["Inventory"]) != 5 {
		t.Errorf("TupleMap = %d relations, %d facts", len(tm), len(tm["Inventory"]))
	}
}

func TestStreamWellFormed(t *testing.T) {
	db := Retailer(RetailerConfig{Locations: 3, Dates: 5, Items: 10, InventoryRows: 100, Zips: 3, Seed: 6})
	s, err := NewStream(db, StreamConfig{Relation: "Inventory", Total: 500, DeleteRatio: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Updates) != 500 {
		t.Fatalf("stream length = %d", len(s.Updates))
	}
	// Every delete must cancel a previously inserted stream tuple:
	// running multiplicity per tuple never goes negative, and deletes
	// only target stream inserts.
	live := map[string]int{}
	deletes := 0
	for i, u := range s.Updates {
		if u.Rel != "Inventory" {
			t.Fatalf("update %d targets %s", i, u.Rel)
		}
		k := u.Tuple.Encode()
		live[k] += u.Mult
		if live[k] < 0 {
			t.Fatalf("update %d: tuple %v deleted more than inserted", i, u.Tuple)
		}
		if u.Mult < 0 {
			deletes++
		}
	}
	if deletes == 0 {
		t.Error("no deletes despite ratio 0.4")
	}
	if float64(deletes)/500 > 0.5 {
		t.Errorf("delete fraction %v implausibly high", float64(deletes)/500)
	}
	// FK consistency of inserted tuples (keys cloned from base rows).
	loc := map[int64]bool{}
	l, _ := db.Relation("Location")
	for _, tp := range l.Tuples {
		loc[tp[0].Int()] = true
	}
	for _, u := range s.Updates {
		if u.Mult > 0 && !loc[u.Tuple[0].Int()] {
			t.Fatalf("stream insert references missing locn %d", u.Tuple[0].Int())
		}
	}
}

func TestStreamBulks(t *testing.T) {
	db := Retailer(RetailerConfig{Locations: 2, Dates: 2, Items: 5, InventoryRows: 20, Zips: 2, Seed: 1})
	s, err := NewStream(db, StreamConfig{Relation: "Inventory", Total: 25, DeleteRatio: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bulks := s.Bulks(10)
	if len(bulks) != 3 || len(bulks[0]) != 10 || len(bulks[2]) != 5 {
		t.Errorf("bulks = %d of sizes %d/%d", len(bulks), len(bulks[0]), len(bulks[len(bulks)-1]))
	}
	if all := s.Bulks(0); len(all) != 1 || len(all[0]) != 25 {
		t.Error("Bulks(0) must return everything at once")
	}
}

func TestStreamErrors(t *testing.T) {
	db := Retailer(RetailerConfig{Locations: 2, Dates: 2, Items: 5, InventoryRows: 10, Zips: 2, Seed: 1})
	if _, err := NewStream(db, StreamConfig{Relation: "Nope", Total: 5}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := NewStream(db, StreamConfig{Relation: "Inventory", Total: 5, DeleteRatio: 1.5}); err == nil {
		t.Error("bad delete ratio accepted")
	}
	empty := &Database{Name: "E", Relations: []Relation{{Name: "R", Attrs: []string{"A"}}}}
	if _, err := NewStream(empty, StreamConfig{Relation: "R", Total: 5}); err == nil {
		t.Error("empty relation accepted")
	}
}

func TestRoundRobinStream(t *testing.T) {
	db := Retailer(RetailerConfig{Locations: 3, Dates: 4, Items: 8, InventoryRows: 60, Zips: 3, Seed: 8})
	ups, err := RoundRobinStream(db, []string{"Inventory", "Item"}, 40, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 40 {
		t.Fatalf("stream length = %d", len(ups))
	}
	// Interleaving: consecutive updates alternate relations.
	if ups[0].Rel == ups[1].Rel {
		t.Errorf("not interleaved: %s, %s", ups[0].Rel, ups[1].Rel)
	}
	seen := map[string]int{}
	for _, u := range ups {
		seen[u.Rel]++
	}
	if seen["Inventory"] != 20 || seen["Item"] != 20 {
		t.Errorf("distribution = %v", seen)
	}
	if _, err := RoundRobinStream(db, []string{"Nope"}, 10, 0, 1); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestStreamPerturbsMeasures(t *testing.T) {
	db := Favorita(FavoritaConfig{Stores: 3, Items: 10, Dates: 6, SalesRows: 50, Seed: 3})
	s, err := NewStream(db, StreamConfig{Relation: "Sales", Total: 100, DeleteRatio: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// unit_sales (index 3, float) must vary across inserts cloned from
	// the same base rows.
	vals := map[string]bool{}
	for _, u := range s.Updates {
		vals[value.Float(u.Tuple[3].Float()).String()] = true
	}
	if len(vals) < 10 {
		t.Errorf("only %d distinct unit_sales values; perturbation broken", len(vals))
	}
}

package experiments

import (
	"fmt"

	"repro/fivm"
	"repro/internal/query"
	"repro/internal/ring"
	"repro/internal/view"
)

// SweepRow is one (parameter, throughput) measurement.
type SweepRow struct {
	Param      string
	Throughput Throughput
}

// E7BatchSize sweeps the update bulk size at fixed workload: larger
// bulks amortize per-batch delta construction and view probing, the
// effect behind the demo's 10K-update bulks.
func E7BatchSize(sc Scale, sizes []int) ([]SweepRow, error) {
	s := newRetailerSetup(sc, 1)
	var rows []SweepRow
	for _, b := range sizes {
		eng, err := fivm.NewCovarEngine(s.fspecs, s.aggAttrs, nil)
		if err != nil {
			return nil, err
		}
		if err := eng.Init(s.db.TupleMap()); err != nil {
			return nil, err
		}
		ups := s.stream(sc.StreamLen, 0.2, 5)
		r, err := measure(fmt.Sprintf("batch=%d", b), ups, b, eng.Apply)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{Param: fmt.Sprintf("%d", b), Throughput: r})
	}
	return rows, nil
}

// E7AggCount sweeps the number of aggregates in the compound payload
// (degree m of the matrix ring): the per-update cost grows ~O(m²) while
// a per-aggregate strategy would rerun the join m(m+3)/2+1 times.
func E7AggCount(sc Scale, ms []int) ([]SweepRow, error) {
	s := newRetailerSetup(sc, 1)
	all := []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage",
		"population", "medianage2", "tot_area_sq_ft", "sell_area_sq_ft", "mintemp",
		"meanwind", "houseunits", "families", "households", "males",
		"females", "white", "black", "asian", "hispanic"}
	// medianage2 is a placeholder; drop attrs not in the schema.
	valid := all[:0]
	schema := map[string]bool{}
	for _, r := range s.db.Relations {
		for _, a := range r.Attrs {
			schema[a] = true
		}
	}
	for _, a := range all {
		if schema[a] {
			valid = append(valid, a)
		}
	}
	var rows []SweepRow
	for _, m := range ms {
		if m > len(valid) {
			m = len(valid)
		}
		eng, err := fivm.NewCovarEngine(s.fspecs, valid[:m], nil)
		if err != nil {
			return nil, err
		}
		if err := eng.Init(s.db.TupleMap()); err != nil {
			return nil, err
		}
		ups := s.stream(sc.StreamLen, 0.2, 6)
		r, err := measure(fmt.Sprintf("m=%d", m), ups, sc.BatchSize, eng.Apply)
		if err != nil {
			return nil, err
		}
		r.Note = fmt.Sprintf("%d scalar aggregates", 1+m+m*(m+1)/2)
		rows = append(rows, SweepRow{Param: fmt.Sprintf("%d", m), Throughput: r})
	}
	return rows, nil
}

// A1Sharing isolates the ring-sharing benefit: the compound degree-m
// COVAR ring versus maintaining the same 1+m+m(m+1)/2 aggregates as
// independent float-ring view trees (still factorized, but each
// aggregate re-walks the view tree on every update).
func A1Sharing(sc Scale, m int) ([]Throughput, error) {
	s := newRetailerSetup(sc, 1)
	attrs := s.aggAttrs
	if m < len(attrs) {
		attrs = attrs[:m]
	}
	data := s.db.TupleMap()
	ups := s.stream(sc.StreamLen, 0.2, 7)
	var rows []Throughput

	eng, err := fivm.NewCovarEngine(s.fspecs, attrs, nil)
	if err != nil {
		return nil, err
	}
	if err := eng.Init(data); err != nil {
		return nil, err
	}
	r, err := measure("compound COVAR ring (shared)", ups, sc.BatchSize, eng.Apply)
	if err != nil {
		return nil, err
	}
	nAggs := 1 + len(attrs) + len(attrs)*(len(attrs)+1)/2
	r.Note = fmt.Sprintf("%d aggregates, one view tree", nAggs)
	rows = append(rows, r)

	// Unshared: one float-ring tree per aggregate.
	cat := query.NewCatalog()
	for _, rel := range s.db.Relations {
		if err := cat.AddRelation(rel.Name, rel.Attrs...); err != nil {
			return nil, err
		}
	}
	relNames := "Inventory NATURAL JOIN Location NATURAL JOIN Census NATURAL JOIN Item NATURAL JOIN Weather"
	var trees []*view.Tree[float64]
	addTree := func(sel string) error {
		q, err := query.Parse(cat, "SELECT "+sel+" FROM "+relNames)
		if err != nil {
			return err
		}
		fe, err := fivm.NewFloatEngine(q, nil)
		if err != nil {
			return err
		}
		if err := fe.Init(data); err != nil {
			return err
		}
		trees = append(trees, fe.Tree())
		return nil
	}
	if err := addTree("SUM(1)"); err != nil {
		return nil, err
	}
	for i, a := range attrs {
		if err := addTree("SUM(" + a + ")"); err != nil {
			return nil, err
		}
		if err := addTree("SUM(sq(" + a + "))"); err != nil {
			return nil, err
		}
		for _, b := range attrs[i+1:] {
			if err := addTree("SUM(" + a + " * " + b + ")"); err != nil {
				return nil, err
			}
		}
	}
	apply := func(batch []view.Update) error {
		for _, t := range trees {
			if err := t.ApplyUpdates(batch); err != nil {
				return err
			}
		}
		return nil
	}
	r, err = measure("independent float trees (unshared)", ups, sc.BatchSize, apply)
	if err != nil {
		return nil, err
	}
	r.Note = fmt.Sprintf("%d aggregates, %d view trees", nAggs, len(trees))
	rows = append(rows, r)
	return rows, nil
}

// A3Deletes sweeps the delete ratio: F-IVM treats deletes as negative
// payloads, so throughput should stay in the same band regardless of
// the ratio — unlike insert-only online learning systems.
func A3Deletes(sc Scale, ratios []float64) ([]SweepRow, error) {
	s := newRetailerSetup(sc, 1)
	var rows []SweepRow
	for _, dr := range ratios {
		eng, err := fivm.NewCovarEngine(s.fspecs, s.aggAttrs, nil)
		if err != nil {
			return nil, err
		}
		if err := eng.Init(s.db.TupleMap()); err != nil {
			return nil, err
		}
		ups := s.stream(sc.StreamLen, dr, 8)
		r, err := measure(fmt.Sprintf("deleteRatio=%.2f", dr), ups, sc.BatchSize, eng.Apply)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{Param: fmt.Sprintf("%.2f", dr), Throughput: r})
	}
	return rows, nil
}

// CovarAggsOfRing returns the scalar-aggregate count of a degree-m
// compound payload, used in harness output.
func CovarAggsOfRing(r ring.CovarRing) int {
	m := r.Degree()
	return 1 + m + m*(m+1)/2
}

// A2Factorization pits gradient maintenance (COVAR ring) against
// maintaining the join result itself (relational-ring listing at the
// root) on the same stream — the paper's core performance argument:
// "F-IVM can maintain model gradients over a join faster than
// maintaining the join, since the latter may be much larger and have
// many repeating values."
func A2Factorization(sc Scale) ([]Throughput, error) {
	s := newRetailerSetup(sc, 1)
	data := s.db.TupleMap()
	ups := s.stream(sc.StreamLen, 0.2, 9)
	var rows []Throughput

	eng, err := fivm.NewCovarEngine(s.fspecs, s.aggAttrs, nil)
	if err != nil {
		return nil, err
	}
	if err := eng.Init(data); err != nil {
		return nil, err
	}
	r, err := measure("gradient (COVAR payloads)", ups, sc.BatchSize, eng.Apply)
	if err != nil {
		return nil, err
	}
	nAggs := 1 + len(s.aggAttrs) + len(s.aggAttrs)*(len(s.aggAttrs)+1)/2
	r.Note = fmt.Sprintf("%d aggregates, O(1)-size root payload", nAggs)
	rows = append(rows, r)

	je, err := fivm.NewJoinEngine(s.fspecs, nil)
	if err != nil {
		return nil, err
	}
	if err := je.Init(data); err != nil {
		return nil, err
	}
	r, err = measure("join result (relational payloads)", ups, sc.BatchSize, je.Apply)
	if err != nil {
		return nil, err
	}
	r.Note = fmt.Sprintf("root lists %d join tuples", je.Size())
	rows = append(rows, r)
	return rows, nil
}

// A4RangedPayloads isolates the RingCofactor<double, idx, cnt>
// optimization of Figure 2d: full degree-m payloads in every view
// versus ranged payloads that carry only each subtree's aggregates.
func A4RangedPayloads(sc Scale, m int) ([]Throughput, error) {
	s := newRetailerSetup(sc, 1)
	attrs := []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage",
		"population", "tot_area_sq_ft", "sell_area_sq_ft", "mintemp", "meanwind",
		"houseunits", "families", "households", "males", "females",
		"white", "black", "asian", "hispanic", "occupiedhouseunits"}
	if m < len(attrs) {
		attrs = attrs[:m]
	}
	data := s.db.TupleMap()
	var rows []Throughput

	full, err := fivm.NewCovarEngine(s.fspecs, attrs, nil)
	if err != nil {
		return nil, err
	}
	if err := full.Init(data); err != nil {
		return nil, err
	}
	ups := s.stream(sc.StreamLen, 0.2, 10)
	r, err := measure("full-degree payloads everywhere", ups, sc.BatchSize, full.Apply)
	if err != nil {
		return nil, err
	}
	r.Note = fmt.Sprintf("every view carries degree %d", len(attrs))
	rows = append(rows, r)

	ranged, err := fivm.NewRangedCovarEngine(s.fspecs, attrs, nil)
	if err != nil {
		return nil, err
	}
	if err := ranged.Init(data); err != nil {
		return nil, err
	}
	r, err = measure("ranged payloads (RingCofactor<d,idx,cnt>)", ups, sc.BatchSize, ranged.Apply)
	if err != nil {
		return nil, err
	}
	r.Note = "views carry only their subtree's aggregates"
	rows = append(rows, r)
	return rows, nil
}

package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps experiment smoke tests fast.
func tinyScale() Scale { return Scale{InventoryRows: 800, StreamLen: 400, BatchSize: 100} }

func TestE2ProducesExpectedShape(t *testing.T) {
	rows, err := E2(tinyScale(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byName := map[string]Throughput{}
	for _, r := range rows {
		if r.PerSecond <= 0 {
			t.Errorf("%s: non-positive rate", r.System)
		}
		byName[r.System] = r
	}
	fivmRow := rows[0]
	reRow := rows[2]
	// The central shape of the paper: incremental maintenance beats
	// re-evaluation. (FlatIVM sits between at realistic scales; at tiny
	// scale its ordering vs F-IVM can flip, so it is not asserted.)
	if fivmRow.PerSecond <= reRow.PerSecond {
		t.Errorf("shape violated: F-IVM %.0f/s not faster than reeval %.0f/s",
			fivmRow.PerSecond, reRow.PerSecond)
	}
}

func TestE2Compound(t *testing.T) {
	r, nAggs, err := E2Compound(tinyScale(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if nAggs < 100 {
		t.Errorf("one-hot aggregate count = %d, expected hundreds", nAggs)
	}
	if r.PerSecond <= 0 {
		t.Error("non-positive rate")
	}
}

func TestE3E4E5Run(t *testing.T) {
	sc := tinyScale()
	e3, err := E3ModelSelection(sc, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(e3) != 4 { // 400 updates / 100 batch
		t.Errorf("E3 bulks = %d", len(e3))
	}
	for _, r := range e3 {
		if !strings.Contains(r.Artifact, "selected=") {
			t.Errorf("E3 artifact = %q", r.Artifact)
		}
	}
	e4, err := E4Regression(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(e4) == 0 || !strings.Contains(e4[0].Artifact, "rmse=") {
		t.Errorf("E4 results = %+v", e4)
	}
	e5, err := E5ChowLiu(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(e5) == 0 || !strings.Contains(e5[0].Artifact, "edges=") {
		t.Errorf("E5 results = %+v", e5)
	}
}

func TestE6RendersM3(t *testing.T) {
	out, err := E6Maintenance(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"V@locn[]", "DECLARE MAP", "Inventory"} {
		if !strings.Contains(out, frag) {
			t.Errorf("E6 output missing %q", frag)
		}
	}
}

func TestE7Sweeps(t *testing.T) {
	rows, err := E7BatchSize(tinyScale(), []int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("batch sweep rows = %d", len(rows))
	}
	// Larger batches must not be slower by an order of magnitude (they
	// amortize); allow noise but catch inversions of the basic shape.
	if rows[1].Throughput.PerSecond < rows[0].Throughput.PerSecond/10 {
		t.Errorf("batch=100 at %.0f/s vastly slower than batch=10 at %.0f/s",
			rows[1].Throughput.PerSecond, rows[0].Throughput.PerSecond)
	}

	aggRows, err := E7AggCount(tinyScale(), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggRows) != 2 {
		t.Fatalf("agg sweep rows = %d", len(aggRows))
	}
}

func TestA1AndA3(t *testing.T) {
	rows, err := A1Sharing(tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("A1 rows = %d", len(rows))
	}
	// Sharing must win: one compound tree vs 10 separate trees.
	if rows[0].PerSecond <= rows[1].PerSecond {
		t.Errorf("sharing ablation inverted: compound %.0f/s vs unshared %.0f/s",
			rows[0].PerSecond, rows[1].PerSecond)
	}

	a3, err := A3Deletes(tinyScale(), []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a3) != 2 {
		t.Fatalf("A3 rows = %d", len(a3))
	}
	// Deletes must stay within the same order of magnitude as inserts.
	r0, r1 := a3[0].Throughput.PerSecond, a3[1].Throughput.PerSecond
	if r1 < r0/10 || r0 < r1/10 {
		t.Errorf("delete-ratio throughput differs by >10x: %.0f vs %.0f", r0, r1)
	}
}

func TestPrintHelpers(t *testing.T) {
	var sb strings.Builder
	PrintThroughput(&sb, []Throughput{{System: "x", Updates: 10, PerSecond: 5, Note: "n"}})
	if !strings.Contains(sb.String(), "updates/sec") {
		t.Error("PrintThroughput header missing")
	}
	sb.Reset()
	PrintAppResults(&sb, []AppResult{{Bulk: 1, Updates: 10, Artifact: "a"}})
	if !strings.Contains(sb.String(), "artifact") {
		t.Error("PrintAppResults header missing")
	}
}

func TestE8Favorita(t *testing.T) {
	rows, apps, err := E8Favorita(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("E8 throughput rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PerSecond <= 0 {
			t.Errorf("%s: non-positive rate", r.System)
		}
	}
	if len(apps) == 0 {
		t.Fatal("E8 produced no application rows")
	}
	for _, a := range apps {
		if !strings.Contains(a.Artifact, "rmse=") || !strings.Contains(a.Artifact, "chowliu") {
			t.Errorf("E8 artifact = %q", a.Artifact)
		}
	}
}

func TestA2AndA4(t *testing.T) {
	rows, err := A2Factorization(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("A2 rows = %d", len(rows))
	}
	// Gradients must not be slower than maintaining the join listing.
	if rows[0].PerSecond < rows[1].PerSecond/2 {
		t.Errorf("A2 inverted: gradient %.0f/s vs join %.0f/s", rows[0].PerSecond, rows[1].PerSecond)
	}

	r4, err := A4RangedPayloads(tinyScale(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r4) != 2 {
		t.Fatalf("A4 rows = %d", len(r4))
	}
	// Ranged payloads must not be slower than full-degree by much; at
	// realistic scale they are strictly faster.
	if r4[1].PerSecond < r4[0].PerSecond/2 {
		t.Errorf("A4 inverted: full %.0f/s vs ranged %.0f/s", r4[0].PerSecond, r4[1].PerSecond)
	}
}

package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps experiment smoke tests fast.
func tinyScale() Scale { return Scale{InventoryRows: 800, StreamLen: 400, BatchSize: 100} }

func TestE2ProducesExpectedShape(t *testing.T) {
	rows, err := E2(tinyScale(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byName := map[string]Throughput{}
	for _, r := range rows {
		if r.PerSecond <= 0 {
			t.Errorf("%s: non-positive rate", r.System)
		}
		byName[r.System] = r
	}
	fivmRow := rows[0]
	reRow := rows[2]
	// The central shape of the paper: incremental maintenance beats
	// re-evaluation. (FlatIVM sits between at realistic scales; at tiny
	// scale its ordering vs F-IVM can flip, so it is not asserted.)
	if fivmRow.PerSecond <= reRow.PerSecond {
		t.Errorf("shape violated: F-IVM %.0f/s not faster than reeval %.0f/s",
			fivmRow.PerSecond, reRow.PerSecond)
	}
}

func TestE2Compound(t *testing.T) {
	r, nAggs, err := E2Compound(tinyScale(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if nAggs < 100 {
		t.Errorf("one-hot aggregate count = %d, expected hundreds", nAggs)
	}
	if r.PerSecond <= 0 {
		t.Error("non-positive rate")
	}
}

func TestE3E4E5Run(t *testing.T) {
	sc := tinyScale()
	e3, err := E3ModelSelection(sc, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(e3) != 4 { // 400 updates / 100 batch
		t.Errorf("E3 bulks = %d", len(e3))
	}
	for _, r := range e3 {
		if !strings.Contains(r.Artifact, "selected=") {
			t.Errorf("E3 artifact = %q", r.Artifact)
		}
	}
	e4, err := E4Regression(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(e4) == 0 || !strings.Contains(e4[0].Artifact, "rmse=") {
		t.Errorf("E4 results = %+v", e4)
	}
	e5, err := E5ChowLiu(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(e5) == 0 || !strings.Contains(e5[0].Artifact, "edges=") {
		t.Errorf("E5 results = %+v", e5)
	}
}

func TestE6RendersM3(t *testing.T) {
	out, err := E6Maintenance(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"V@locn[]", "DECLARE MAP", "Inventory"} {
		if !strings.Contains(out, frag) {
			t.Errorf("E6 output missing %q", frag)
		}
	}
}

func TestE7Sweeps(t *testing.T) {
	rows, err := E7BatchSize(tinyScale(), []int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("batch sweep rows = %d", len(rows))
	}
	// Larger batches must not be slower by an order of magnitude (they
	// amortize); allow noise but catch inversions of the basic shape.
	if rows[1].Throughput.PerSecond < rows[0].Throughput.PerSecond/10 {
		t.Errorf("batch=100 at %.0f/s vastly slower than batch=10 at %.0f/s",
			rows[1].Throughput.PerSecond, rows[0].Throughput.PerSecond)
	}

	aggRows, err := E7AggCount(tinyScale(), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggRows) != 2 {
		t.Fatalf("agg sweep rows = %d", len(aggRows))
	}
}

func TestA1AndA3(t *testing.T) {
	rows, err := A1Sharing(tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("A1 rows = %d", len(rows))
	}
	// Sharing must win: one compound tree vs 10 separate trees.
	if rows[0].PerSecond <= rows[1].PerSecond {
		t.Errorf("sharing ablation inverted: compound %.0f/s vs unshared %.0f/s",
			rows[0].PerSecond, rows[1].PerSecond)
	}

	// Wall-clock throughput is noisy when the package test binaries run
	// in parallel (a starved run can lose an order of magnitude), so
	// take the best of two samples per ratio before comparing.
	r0, r1 := 0.0, 0.0
	for i := 0; i < 2; i++ {
		a3, err := A3Deletes(tinyScale(), []float64{0, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if len(a3) != 2 {
			t.Fatalf("A3 rows = %d", len(a3))
		}
		r0 = max(r0, a3[0].Throughput.PerSecond)
		r1 = max(r1, a3[1].Throughput.PerSecond)
	}
	// The paper's claim is that deletes cost no more than inserts
	// (negative payloads through the same machinery), so the slow
	// direction keeps the tight order-of-magnitude bound. The reverse
	// direction still guards the insert path against collapsing, but
	// with a wider band: the indexed delta path legitimately runs
	// delete-heavy streams ~3-4x faster than insert-only
	// (annihilations shrink the views every later update touches).
	if r1 < r0/10 {
		t.Errorf("delete-heavy throughput more than 10x below insert-only: %.0f vs %.0f", r1, r0)
	}
	if r0 < r1/25 {
		t.Errorf("insert-only throughput more than 25x below delete-heavy: %.0f vs %.0f", r0, r1)
	}
}

func TestPrintHelpers(t *testing.T) {
	var sb strings.Builder
	PrintThroughput(&sb, []Throughput{{System: "x", Updates: 10, PerSecond: 5, Note: "n"}})
	if !strings.Contains(sb.String(), "updates/sec") {
		t.Error("PrintThroughput header missing")
	}
	sb.Reset()
	PrintAppResults(&sb, []AppResult{{Bulk: 1, Updates: 10, Artifact: "a"}})
	if !strings.Contains(sb.String(), "artifact") {
		t.Error("PrintAppResults header missing")
	}
}

func TestE8Favorita(t *testing.T) {
	rows, apps, err := E8Favorita(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("E8 throughput rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PerSecond <= 0 {
			t.Errorf("%s: non-positive rate", r.System)
		}
	}
	if len(apps) == 0 {
		t.Fatal("E8 produced no application rows")
	}
	for _, a := range apps {
		if !strings.Contains(a.Artifact, "rmse=") || !strings.Contains(a.Artifact, "chowliu") {
			t.Errorf("E8 artifact = %q", a.Artifact)
		}
	}
}

func TestA2AndA4(t *testing.T) {
	rows, err := A2Factorization(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("A2 rows = %d", len(rows))
	}
	// Gradients must not be slower than maintaining the join listing.
	if rows[0].PerSecond < rows[1].PerSecond/2 {
		t.Errorf("A2 inverted: gradient %.0f/s vs join %.0f/s", rows[0].PerSecond, rows[1].PerSecond)
	}

	r4, err := A4RangedPayloads(tinyScale(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r4) != 2 {
		t.Fatalf("A4 rows = %d", len(r4))
	}
	// Ranged payloads must not be slower than full-degree by much; at
	// realistic scale they are strictly faster.
	if r4[1].PerSecond < r4[0].PerSecond/2 {
		t.Errorf("A4 inverted: full %.0f/s vs ranged %.0f/s", r4[0].PerSecond, r4[1].PerSecond)
	}
}

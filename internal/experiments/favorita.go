package experiments

import (
	"fmt"
	"time"

	"repro/fivm"
	"repro/internal/dataset"
	"repro/internal/ml"
)

// The demo maintains its applications over two databases; this file
// covers the second one, Favorita (6-way join). Experiment id E8 in the
// harness: throughput plus the three applications on Favorita.

// favoritaSetup builds the Favorita fixture.
type favoritaSetup struct {
	db     *dataset.Database
	fspecs []fivm.RelationSpec
}

func newFavoritaSetup(sc Scale, seed int64) favoritaSetup {
	cfg := dataset.DefaultFavoritaConfig()
	cfg.SalesRows = sc.InventoryRows
	cfg.Seed = seed
	db := dataset.Favorita(cfg)
	var s favoritaSetup
	s.db = db
	for _, r := range db.Relations {
		s.fspecs = append(s.fspecs, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	return s
}

// E8Favorita runs the full demo loop on Favorita: maintain the MI and
// COVAR payloads over the 6-way join under update bulks, re-running
// model selection, regression, and the Chow-Liu tree per bulk.
func E8Favorita(sc Scale) ([]Throughput, []AppResult, error) {
	s := newFavoritaSetup(sc, 3)

	miFeatures := []fivm.FeatureSpec{
		{Attr: "unit_sales", BinWidth: 10},
		{Attr: "item", Categorical: true},
		{Attr: "family", Categorical: true},
		{Attr: "class", Categorical: true},
		{Attr: "perishable", Categorical: true},
		{Attr: "store", Categorical: true},
		{Attr: "city", Categorical: true},
		{Attr: "cluster", Categorical: true},
		{Attr: "oilprice", BinWidth: 5},
		{Attr: "holiday_type", Categorical: true},
	}
	covFeatures := []fivm.FeatureSpec{
		{Attr: "unit_sales"},
		{Attr: "family", Categorical: true},
		{Attr: "perishable", Categorical: true},
		{Attr: "cluster", Categorical: true},
		{Attr: "oilprice"},
		{Attr: "transactions"},
	}

	anMI, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: s.fspecs, Features: miFeatures})
	if err != nil {
		return nil, nil, err
	}
	anCov, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: s.fspecs, Features: covFeatures})
	if err != nil {
		return nil, nil, err
	}
	data := s.db.TupleMap()
	if err := anMI.Init(data); err != nil {
		return nil, nil, err
	}
	if err := anCov.Init(data); err != nil {
		return nil, nil, err
	}

	st, err := dataset.NewStream(s.db, dataset.StreamConfig{
		Relation: "Sales", Total: sc.StreamLen, DeleteRatio: 0.25, Seed: 61,
	})
	if err != nil {
		return nil, nil, err
	}

	// Throughput of the two maintained payloads.
	var rows []Throughput
	r, err := measure("Favorita MI payload (6-way join)", st.Updates, sc.BatchSize, anMI.Apply)
	if err != nil {
		return nil, nil, err
	}
	sigmaMI, err := anMI.MI()
	if err != nil {
		return nil, nil, err
	}
	r.Note = fmt.Sprintf("%d attributes in the MI matrix", sigmaMI.Dim())
	rows = append(rows, r)

	st2, err := dataset.NewStream(s.db, dataset.StreamConfig{
		Relation: "Sales", Total: sc.StreamLen, DeleteRatio: 0.25, Seed: 62,
	})
	if err != nil {
		return nil, nil, err
	}
	r, err = measure("Favorita COVAR payload (6-way join)", st2.Updates, sc.BatchSize, anCov.Apply)
	if err != nil {
		return nil, nil, err
	}
	sigma, err := anCov.Covar()
	if err != nil {
		return nil, nil, err
	}
	r.Note = fmt.Sprintf("%d one-hot columns", sigma.Dim())
	rows = append(rows, r)

	// Application loop per bulk.
	var apps []AppResult
	var model *ml.RidgeModel
	cfg := ml.DefaultRidgeConfig()
	st3, err := dataset.NewStream(s.db, dataset.StreamConfig{
		Relation: "Sales", Total: sc.StreamLen, DeleteRatio: 0.25, Seed: 63,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, bulk := range st3.Bulks(sc.BatchSize) {
		t0 := time.Now()
		if err := anMI.Apply(bulk); err != nil {
			return nil, nil, err
		}
		if err := anCov.Apply(bulk); err != nil {
			return nil, nil, err
		}
		maintain := time.Since(t0)

		t1 := time.Now()
		_, selected, err := anMI.SelectFeatures("unit_sales", 0.05)
		if err != nil {
			return nil, nil, err
		}
		var sigma *ml.SigmaMatrix
		model, sigma, err = anCov.Ridge("unit_sales", model, cfg)
		if err != nil {
			return nil, nil, err
		}
		tree, err := anMI.ChowLiu("item")
		if err != nil {
			return nil, nil, err
		}
		apps = append(apps, AppResult{
			Bulk: len(apps) + 1, Updates: len(bulk),
			MaintainDur: maintain, AppDur: time.Since(t1),
			Artifact: fmt.Sprintf("selected=%d rmse=%.2f chowliu(totalMI=%.2f)",
				len(selected), model.TrainRMSE(sigma), tree.TotalMI),
		})
	}
	return rows, apps, nil
}

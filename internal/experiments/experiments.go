// Package experiments hosts the runnable reproductions of every
// evaluation artifact in the paper (see DESIGN.md §3): Figure 1's worked
// example, the §1 throughput claims (E2), the application tabs of
// Figure 2 (E3–E6), the batch-size/aggregate-count sweeps (E7), and the
// design ablations (A1–A3). cmd/fivm-bench prints their tables;
// bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/fivm"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/view"
)

// Scale configures experiment sizing; Small keeps everything under a
// second per row for tests, Paper approximates the demo's scale.
type Scale struct {
	// InventoryRows sizes the Retailer fact table.
	InventoryRows int
	// StreamLen is the number of streamed updates per measurement.
	StreamLen int
	// BatchSize is the default update bulk size.
	BatchSize int
}

// SmallScale is used by tests and smoke runs.
func SmallScale() Scale { return Scale{InventoryRows: 2_000, StreamLen: 2_000, BatchSize: 500} }

// DemoScale approximates the demo paper's workload: bulks of 10K
// updates against a larger fact table.
func DemoScale() Scale { return Scale{InventoryRows: 50_000, StreamLen: 30_000, BatchSize: 10_000} }

// retailerSetup bundles the shared experiment fixture.
type retailerSetup struct {
	db       *dataset.Database
	fspecs   []fivm.RelationSpec
	bspecs   []baseline.RelSpec
	aggAttrs []string
}

func newRetailerSetup(sc Scale, seed int64) retailerSetup {
	cfg := dataset.DefaultRetailerConfig()
	cfg.InventoryRows = sc.InventoryRows
	cfg.Seed = seed
	db := dataset.Retailer(cfg)
	var s retailerSetup
	s.db = db
	for _, r := range db.Relations {
		s.fspecs = append(s.fspecs, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		s.bspecs = append(s.bspecs, baseline.RelSpec{Name: r.Name, Schema: r.Schema()})
	}
	s.aggAttrs = []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage"}
	return s
}

func (s retailerSetup) stream(total int, deleteRatio float64, seed int64) []view.Update {
	st, err := dataset.NewStream(s.db, dataset.StreamConfig{
		Relation: "Inventory", Total: total, DeleteRatio: deleteRatio, Seed: seed,
	})
	if err != nil {
		panic(err) // deterministic configuration; cannot fail at runtime
	}
	return st.Updates
}

// Throughput is one measured system row: updates/second, total time,
// and per-batch latency percentiles.
type Throughput struct {
	System    string
	Updates   int
	Elapsed   time.Duration
	PerSecond float64
	// P50 and P99 are per-batch maintenance latency percentiles.
	P50, P99 time.Duration
	Note     string
}

func measure(system string, updates []view.Update, batch int, apply func([]view.Update) error) (Throughput, error) {
	var lat []time.Duration
	start := time.Now()
	for i := 0; i < len(updates); i += batch {
		j := i + batch
		if j > len(updates) {
			j = len(updates)
		}
		b0 := time.Now()
		if err := apply(updates[i:j]); err != nil {
			return Throughput{}, fmt.Errorf("%s: %w", system, err)
		}
		lat = append(lat, time.Since(b0))
	}
	el := time.Since(start)
	p50, p99 := percentiles(lat)
	return Throughput{
		System:    system,
		Updates:   len(updates),
		Elapsed:   el,
		PerSecond: float64(len(updates)) / el.Seconds(),
		P50:       p50,
		P99:       p99,
	}, nil
}

// percentiles returns the 50th and 99th percentile of the batch
// latencies (nearest-rank on the sorted sample).
func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.99)
}

// E2 reproduces the §1 throughput claim: single-thread maintenance of
// the COVAR aggregate batch over the 5-way Retailer join, F-IVM versus
// the flat first-order IVM baseline versus full re-evaluation. The
// expected shape: F-IVM ≫ FlatIVM ≫ Reeval, with F-IVM in the
// ~10K-updates/sec band for compound aggregates.
func E2(sc Scale, deleteRatio float64) ([]Throughput, error) {
	s := newRetailerSetup(sc, 1)
	ups := s.stream(sc.StreamLen, deleteRatio, 2)
	data := s.db.TupleMap()
	var rows []Throughput

	eng, err := fivm.NewCovarEngine(s.fspecs, s.aggAttrs, nil)
	if err != nil {
		return nil, err
	}
	if err := eng.Init(data); err != nil {
		return nil, err
	}
	r, err := measure("F-IVM (COVAR ring)", ups, sc.BatchSize, eng.Apply)
	if err != nil {
		return nil, err
	}
	r.Note = fmt.Sprintf("%d scalar aggregates shared in one payload", 1+len(s.aggAttrs)+len(s.aggAttrs)*(len(s.aggAttrs)+1)/2)
	rows = append(rows, r)

	flat, err := baseline.NewFlatIVM(s.bspecs, s.aggAttrs)
	if err != nil {
		return nil, err
	}
	if err := flat.Init(data); err != nil {
		return nil, err
	}
	r, err = measure("FlatIVM (first-order, unshared)", ups, sc.BatchSize, flat.Apply)
	if err != nil {
		return nil, err
	}
	r.Note = fmt.Sprintf("materializes flat join (%d tuples)", flat.JoinSize())
	rows = append(rows, r)

	// Re-evaluation is orders of magnitude slower; cap its stream so the
	// experiment finishes, then report the extrapolated rate.
	reUps := ups
	if len(reUps) > 4*sc.BatchSize {
		reUps = reUps[:4*sc.BatchSize]
	}
	re, err := baseline.NewReeval(s.bspecs, s.aggAttrs)
	if err != nil {
		return nil, err
	}
	if err := re.Init(data); err != nil {
		return nil, err
	}
	r, err = measure("Reeval (from scratch per batch)", reUps, sc.BatchSize, re.Apply)
	if err != nil {
		return nil, err
	}
	r.Note = fmt.Sprintf("measured on first %d updates", len(reUps))
	rows = append(rows, r)
	return rows, nil
}

// E2Compound measures the compound mixed categorical/continuous payload
// (the "batches of up to thousands of aggregates" claim): the one-hot
// expansion turns a handful of features into thousands of maintained
// scalar aggregates.
func E2Compound(sc Scale, deleteRatio float64) (Throughput, int, error) {
	s := newRetailerSetup(sc, 1)
	features := []fivm.FeatureSpec{
		{Attr: "inventoryunits"},
		{Attr: "prize"},
		{Attr: "avghhi"},
		{Attr: "subcategory", Categorical: true},
		{Attr: "category", Categorical: true},
		{Attr: "categoryCluster", Categorical: true},
		{Attr: "zip", Categorical: true},
	}
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: s.fspecs, Features: features})
	if err != nil {
		return Throughput{}, 0, err
	}
	if err := an.Init(s.db.TupleMap()); err != nil {
		return Throughput{}, 0, err
	}
	sigma, err := an.Covar()
	if err != nil {
		return Throughput{}, 0, err
	}
	nAggs := 1 + sigma.Dim() + sigma.Dim()*(sigma.Dim()+1)/2
	ups := s.stream(sc.StreamLen, deleteRatio, 3)
	r, err := measure("F-IVM (generalized ring)", ups, sc.BatchSize, an.Apply)
	if err != nil {
		return Throughput{}, 0, err
	}
	r.Note = fmt.Sprintf("%d one-hot scalar aggregates in one payload", nAggs)
	return r, nAggs, nil
}

// PrintThroughput renders rows as the harness table.
func PrintThroughput(w io.Writer, rows []Throughput) {
	fmt.Fprintf(w, "%-34s %10s %12s %14s %10s %10s  %s\n",
		"system", "updates", "elapsed", "updates/sec", "batch-p50", "batch-p99", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %10d %12s %14.0f %10s %10s  %s\n",
			r.System, r.Updates, r.Elapsed.Round(time.Millisecond), r.PerSecond,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Note)
	}
}

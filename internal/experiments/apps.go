package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/fivm"
	"repro/internal/ml"
)

// AppResult captures one application-tab experiment: per-bulk
// maintenance time plus the application artifact refresh time.
type AppResult struct {
	Bulk        int
	Updates     int
	MaintainDur time.Duration
	AppDur      time.Duration
	Artifact    string
}

// retailerAnalysis builds the Analysis engine used by E3–E5: the demo's
// feature set over the synthetic Retailer join, with continuous
// attributes binned when forMI is set.
func retailerAnalysis(s retailerSetup, forMI bool) (*fivm.Analysis, error) {
	cont := func(attr string, width float64) fivm.FeatureSpec {
		if forMI {
			return fivm.FeatureSpec{Attr: attr, BinWidth: width}
		}
		return fivm.FeatureSpec{Attr: attr}
	}
	features := []fivm.FeatureSpec{
		cont("inventoryunits", 50),
		{Attr: "ksn", Categorical: true},
		cont("prize", 10),
		{Attr: "subcategory", Categorical: true},
		{Attr: "category", Categorical: true},
		{Attr: "categoryCluster", Categorical: true},
		{Attr: "zip", Categorical: true},
		cont("avghhi", 20_000),
		cont("maxtemp", 5),
		{Attr: "rain", Categorical: true},
	}
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: s.fspecs, Features: features})
	if err != nil {
		return nil, err
	}
	if err := an.Init(s.db.TupleMap()); err != nil {
		return nil, err
	}
	return an, nil
}

// E3ModelSelection reproduces Figure 2a: per bulk, maintain the MI count
// tables and re-rank attributes against the label.
func E3ModelSelection(sc Scale, threshold float64) ([]AppResult, error) {
	s := newRetailerSetup(sc, 1)
	an, err := retailerAnalysis(s, true)
	if err != nil {
		return nil, err
	}
	ups := s.stream(sc.StreamLen, 0.3, 31)
	var out []AppResult
	for i := 0; i < len(ups); i += sc.BatchSize {
		j := min(i+sc.BatchSize, len(ups))
		t0 := time.Now()
		if err := an.Apply(ups[i:j]); err != nil {
			return nil, err
		}
		maintain := time.Since(t0)
		t1 := time.Now()
		_, selected, err := an.SelectFeatures("inventoryunits", threshold)
		if err != nil {
			return nil, err
		}
		out = append(out, AppResult{
			Bulk: len(out) + 1, Updates: j - i,
			MaintainDur: maintain, AppDur: time.Since(t1),
			Artifact: fmt.Sprintf("selected=%v", selected),
		})
	}
	return out, nil
}

// E4Regression reproduces Figure 2b: per bulk, maintain the COVAR matrix
// and re-converge the warm-started ridge model.
func E4Regression(sc Scale) ([]AppResult, error) {
	s := newRetailerSetup(sc, 1)
	an, err := retailerAnalysis(s, false)
	if err != nil {
		return nil, err
	}
	cfg := ml.DefaultRidgeConfig()
	var model *ml.RidgeModel
	ups := s.stream(sc.StreamLen, 0.2, 41)
	var out []AppResult
	for i := 0; i < len(ups); i += sc.BatchSize {
		j := min(i+sc.BatchSize, len(ups))
		t0 := time.Now()
		if err := an.Apply(ups[i:j]); err != nil {
			return nil, err
		}
		maintain := time.Since(t0)
		t1 := time.Now()
		var sigma *ml.SigmaMatrix
		model, sigma, err = an.Ridge("inventoryunits", model, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AppResult{
			Bulk: len(out) + 1, Updates: j - i,
			MaintainDur: maintain, AppDur: time.Since(t1),
			Artifact: fmt.Sprintf("iters=%d rmse=%.2f dim=%d", model.Iterations, model.TrainRMSE(sigma), sigma.Dim()),
		})
	}
	return out, nil
}

// E5ChowLiu reproduces Figure 2c: per bulk, maintain the MI tables and
// rebuild the Chow-Liu tree rooted at ksn.
func E5ChowLiu(sc Scale) ([]AppResult, error) {
	s := newRetailerSetup(sc, 1)
	an, err := retailerAnalysis(s, true)
	if err != nil {
		return nil, err
	}
	ups := s.stream(sc.StreamLen, 0.25, 51)
	var out []AppResult
	for i := 0; i < len(ups); i += sc.BatchSize {
		j := min(i+sc.BatchSize, len(ups))
		t0 := time.Now()
		if err := an.Apply(ups[i:j]); err != nil {
			return nil, err
		}
		maintain := time.Since(t0)
		t1 := time.Now()
		tree, err := an.ChowLiu("ksn")
		if err != nil {
			return nil, err
		}
		first := ""
		if len(tree.Edges) > 0 {
			first = tree.Edges[0].Parent + "->" + tree.Edges[0].Child
		}
		out = append(out, AppResult{
			Bulk: len(out) + 1, Updates: j - i,
			MaintainDur: maintain, AppDur: time.Since(t1),
			Artifact: fmt.Sprintf("totalMI=%.3f edges=%d first=%s", tree.TotalMI, len(tree.Edges), first),
		})
	}
	return out, nil
}

// E6Maintenance reproduces Figure 2d: the view tree and M3 code for the
// Retailer query.
func E6Maintenance(sc Scale) (string, error) {
	s := newRetailerSetup(sc, 1)
	an, err := retailerAnalysis(s, false)
	if err != nil {
		return "", err
	}
	return an.M3(), nil
}

// PrintAppResults renders application rows as the harness table.
func PrintAppResults(w io.Writer, rows []AppResult) {
	fmt.Fprintf(w, "%4s %8s %10s %10s  %s\n", "bulk", "updates", "maintain", "app", "artifact")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %8d %10s %10s  %s\n",
			r.Bulk, r.Updates, r.MaintainDur.Round(time.Millisecond),
			r.AppDur.Round(time.Millisecond), r.Artifact)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

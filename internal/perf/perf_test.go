package perf

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite() {
		if b.Name == "" || b.Fn == nil {
			t.Fatalf("suite entry %+v is incomplete", b)
		}
		if seen[b.Name] {
			t.Fatalf("duplicate suite benchmark name %q", b.Name)
		}
		seen[b.Name] = true
	}
	// The wrappers in bench_test.go rely on these names existing.
	for _, name := range []string{"E2FIVM", "E1Figure1Delta", "ServeIngest"} {
		if !seen[name] {
			t.Errorf("suite is missing %q", name)
		}
	}
}

// TestRunTinySuite exercises the runner end-to-end on a synthetic
// benchmark: JSON round-trip included. The real suite is too slow for
// unit tests; CI runs it through fivm-bench.
func TestRunTinySuite(t *testing.T) {
	tiny := []Bench{{Name: "tiny/alloc", Fn: func(b *testing.B) {
		var sink []byte
		for i := 0; i < b.N; i++ {
			sink = make([]byte, 64)
		}
		_ = sink
		b.ReportMetric(12345, "updates/sec")
	}}}
	rep, err := Run(tiny, Options{BenchTime: "10x", Commit: "deadbeef"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "tiny/alloc" || r.UpdatesPerSec != 12345 || r.Commit != "deadbeef" {
		t.Fatalf("unexpected result %+v", r)
	}
	if r.AllocsPerOp < 1 {
		t.Fatalf("allocs/op = %d, want >= 1", r.AllocsPerOp)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0] != r || back.Commit != "deadbeef" {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
}

func TestRunFilter(t *testing.T) {
	tiny := []Bench{
		{Name: "a/one", Fn: func(b *testing.B) {}},
		{Name: "b/two", Fn: func(b *testing.B) {}},
	}
	rep, err := Run(tiny, Options{BenchTime: "1x", Filter: regexp.MustCompile(`^b/`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "b/two" {
		t.Fatalf("filter selected %+v", rep.Results)
	}
	if _, err := Run(tiny, Options{BenchTime: "1x", Filter: regexp.MustCompile(`nothing`)}); err == nil {
		t.Fatal("empty filter result should error")
	}
}

func report(results ...Result) *Report {
	return &Report{Schema: SchemaVersion, Results: results}
}

func TestCompareWithinThresholds(t *testing.T) {
	base := report(
		Result{Name: "x", UpdatesPerSec: 100_000, AllocsPerOp: 1000},
		Result{Name: "y", NsPerOp: 500, AllocsPerOp: 10},
	)
	cur := report(
		Result{Name: "x", UpdatesPerSec: 90_000, AllocsPerOp: 1050}, // -10% rate, +5% allocs
		Result{Name: "y", NsPerOp: 540, AllocsPerOp: 12},            // +8% ns, +2 allocs under floor
	)
	findings, ok := Compare(base, cur, DefaultThresholds())
	if !ok {
		t.Fatalf("expected pass, findings: %+v", findings)
	}
	if len(findings) != 0 {
		t.Fatalf("expected no findings, got %+v", findings)
	}
}

func TestCompareRateRegression(t *testing.T) {
	base := report(Result{Name: "x", UpdatesPerSec: 100_000, AllocsPerOp: 1000})
	cur := report(Result{Name: "x", UpdatesPerSec: 80_000, AllocsPerOp: 1000}) // -20%
	findings, ok := Compare(base, cur, DefaultThresholds())
	if ok || len(findings) != 1 || !findings[0].IsRegression() {
		t.Fatalf("expected one regression, got ok=%v findings=%+v", ok, findings)
	}
}

func TestCompareNsFallbackRegression(t *testing.T) {
	// No rate metric on either side: ns/op growth must gate instead.
	base := report(Result{Name: "x", NsPerOp: 1000, AllocsPerOp: 100})
	cur := report(Result{Name: "x", NsPerOp: 1300, AllocsPerOp: 100}) // +30%
	if _, ok := Compare(base, cur, DefaultThresholds()); ok {
		t.Fatal("expected ns/op regression")
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := report(Result{Name: "x", UpdatesPerSec: 1000, AllocsPerOp: 1000})
	cur := report(Result{Name: "x", UpdatesPerSec: 1000, AllocsPerOp: 1200}) // +20%
	findings, ok := Compare(base, cur, DefaultThresholds())
	if ok || len(findings) != 1 {
		t.Fatalf("expected alloc regression, got ok=%v findings=%+v", ok, findings)
	}
	// The absolute floor forgives small counts: 10 -> 20 is +100% but
	// only +10 allocs.
	base = report(Result{Name: "x", UpdatesPerSec: 1000, AllocsPerOp: 10})
	cur = report(Result{Name: "x", UpdatesPerSec: 1000, AllocsPerOp: 20})
	if _, ok := Compare(base, cur, DefaultThresholds()); !ok {
		t.Fatal("alloc floor should forgive +10 allocs on a tiny benchmark")
	}
}

func TestCompareEnvMismatchSkipsRateNotAllocs(t *testing.T) {
	base := report(Result{Name: "x", UpdatesPerSec: 1_000_000, AllocsPerOp: 1000})
	base.GOMAXPROCS = 1
	cur := report(Result{Name: "x", UpdatesPerSec: 100, AllocsPerOp: 1000}) // -99.99% rate
	cur.GOMAXPROCS = 4
	findings, ok := Compare(base, cur, DefaultThresholds())
	if !ok {
		t.Fatalf("rate drop across differing GOMAXPROCS must not fail: %+v", findings)
	}
	if len(findings) != 1 || findings[0].IsRegression() {
		t.Fatalf("expected one environment note, got %+v", findings)
	}
	// Allocations remain enforced across environments.
	cur.Results[0].AllocsPerOp = 2000
	if _, ok := Compare(base, cur, DefaultThresholds()); ok {
		t.Fatal("alloc regression must still fail across environments")
	}
}

func TestCompareMissingRateMetricNotes(t *testing.T) {
	base := report(Result{Name: "x", UpdatesPerSec: 1000, NsPerOp: 100, AllocsPerOp: 10})
	cur := report(Result{Name: "x", NsPerOp: 105, AllocsPerOp: 10}) // rate metric vanished
	findings, ok := Compare(base, cur, DefaultThresholds())
	if !ok {
		t.Fatalf("ns/op within budget must pass: %+v", findings)
	}
	if len(findings) != 1 || findings[0].IsRegression() {
		t.Fatalf("expected a missing-metric note, got %+v", findings)
	}
	// And the ns/op fallback still gates.
	cur.Results[0].NsPerOp = 200
	if _, ok := Compare(base, cur, DefaultThresholds()); ok {
		t.Fatal("ns/op regression must fail after rate metric vanished")
	}
}

func TestCompareMismatchedSets(t *testing.T) {
	base := report(Result{Name: "gone", UpdatesPerSec: 1}, Result{Name: "kept", UpdatesPerSec: 1})
	cur := report(Result{Name: "kept", UpdatesPerSec: 1}, Result{Name: "new", UpdatesPerSec: 1})
	findings, ok := Compare(base, cur, DefaultThresholds())
	if !ok {
		t.Fatalf("set drift must not fail the gate: %+v", findings)
	}
	if len(findings) != 2 {
		t.Fatalf("expected two findings, got %+v", findings)
	}
	kinds := map[string]FindingKind{}
	for _, f := range findings {
		if f.IsRegression() {
			t.Fatalf("drift finding wrongly marked regression: %+v", f)
		}
		kinds[f.Name] = f.Kind
	}
	if kinds["new"] != FindingAddition {
		t.Fatalf("candidate-only benchmark should be an addition, got %q", kinds["new"])
	}
	if kinds["gone"] != FindingRemoval {
		t.Fatalf("baseline-only benchmark should be a removal, got %q", kinds["gone"])
	}
}

// TestCheckScalingFlatCurvePasses: the single-run flatness gate passes
// a curve within the growth budget and reports each family as a note.
func TestCheckScalingFlatCurvePasses(t *testing.T) {
	rep := report(
		Result{Name: "UpdateLatencyScaling/count/1k", NsPerOp: 13_000},
		Result{Name: "UpdateLatencyScaling/count/10k", NsPerOp: 15_000},
		Result{Name: "UpdateLatencyScaling/count/100k", NsPerOp: 21_000},
		Result{Name: "UpdateLatencyScaling/covar/1k", NsPerOp: 17_000},
		Result{Name: "UpdateLatencyScaling/covar/100k", NsPerOp: 32_000},
		Result{Name: "E2FIVM", NsPerOp: 1},
	)
	findings, ok := CheckScaling(rep, DefaultMaxScalingGrowth)
	if !ok {
		t.Fatalf("flat curve must pass: %+v", findings)
	}
	if len(findings) != 2 {
		t.Fatalf("expected one note per family, got %+v", findings)
	}
	for _, f := range findings {
		if f.Kind != FindingNote {
			t.Fatalf("flat family should be a note: %+v", f)
		}
	}
}

// TestCheckScalingLinearCurveFails: a curve that grows like the
// pre-index build-and-scan path (~20x and up) must fail the gate even
// though it is a single-run, baseline-free check.
func TestCheckScalingLinearCurveFails(t *testing.T) {
	rep := report(
		Result{Name: "UpdateLatencyScaling/count/1k", NsPerOp: 97_000},
		Result{Name: "UpdateLatencyScaling/count/100k", NsPerOp: 540_000}, // 5.6x
	)
	findings, ok := CheckScaling(rep, DefaultMaxScalingGrowth)
	if ok {
		t.Fatalf("linear growth must fail: %+v", findings)
	}
	if len(findings) != 1 || !findings[0].IsRegression() {
		t.Fatalf("expected one regression, got %+v", findings)
	}
}

// TestCheckScalingMissingEntriesFails: a report without the scaling
// sweep must fail loudly — a silently skipped gate guards nothing.
func TestCheckScalingMissingEntriesFails(t *testing.T) {
	rep := report(Result{Name: "E2FIVM", NsPerOp: 1})
	if _, ok := CheckScaling(rep, DefaultMaxScalingGrowth); ok {
		t.Fatal("report without scaling entries must fail the gate")
	}
}

// TestCheckScalingUnpairedFamilyFails: a family with only one endpoint
// (a filtered run, or a suite edit that drops one size) must fail too —
// the per-family version of the missing-entries rule.
func TestCheckScalingUnpairedFamilyFails(t *testing.T) {
	rep := report(
		Result{Name: "UpdateLatencyScaling/count/1k", NsPerOp: 13_000},
		Result{Name: "UpdateLatencyScaling/count/100k", NsPerOp: 20_000},
		Result{Name: "UpdateLatencyScaling/covar/1k", NsPerOp: 17_000}, // no /100k
	)
	findings, ok := CheckScaling(rep, DefaultMaxScalingGrowth)
	if ok {
		t.Fatalf("unpaired covar family must fail the gate: %+v", findings)
	}
	var covar *Finding
	for i := range findings {
		if findings[i].Name == "UpdateLatencyScaling/covar" {
			covar = &findings[i]
		}
	}
	if covar == nil || !covar.IsRegression() {
		t.Fatalf("expected a regression for the unpaired family, got %+v", findings)
	}
	// A /100k without its /1k partner is just as unpaired.
	rep = report(Result{Name: "UpdateLatencyScaling/count/100k", NsPerOp: 20_000})
	if _, ok := CheckScaling(rep, DefaultMaxScalingGrowth); ok {
		t.Fatal("100k-only family must fail the gate")
	}
}

// TestCompareRefreshedSuiteAgainstOldBaseline is the scenario that
// motivated the finding kinds: a PR extends the suite (e.g. the
// UpdateLatencyScaling sweep) before the baseline is refreshed. The
// gate must pass, every new entry must surface as an addition, and the
// rendered output must summarize the drift instead of failing or
// burying it.
func TestCompareRefreshedSuiteAgainstOldBaseline(t *testing.T) {
	base := report(Result{Name: "E2FIVM", UpdatesPerSec: 100_000, AllocsPerOp: 1000})
	cur := report(
		Result{Name: "E2FIVM", UpdatesPerSec: 101_000, AllocsPerOp: 990},
		Result{Name: "UpdateLatencyScaling/count/1k", UpdatesPerSec: 150_000, AllocsPerOp: 40},
		Result{Name: "UpdateLatencyScaling/count/100k", UpdatesPerSec: 100_000, AllocsPerOp: 40},
	)
	findings, ok := Compare(base, cur, DefaultThresholds())
	if !ok {
		t.Fatalf("new suite entries must not fail against an old baseline: %+v", findings)
	}
	additions := 0
	for _, f := range findings {
		if f.Kind == FindingAddition {
			additions++
		}
	}
	if additions != 2 {
		t.Fatalf("expected 2 additions, got %d in %+v", additions, findings)
	}
	var buf strings.Builder
	WriteFindings(&buf, findings, ok)
	out := buf.String()
	if !strings.Contains(out, "2 added, 0 removed") {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
	if !strings.Contains(out, "within thresholds") {
		t.Fatalf("pass line missing from output:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Fatalf("additions must not render as regressions:\n%s", out)
	}
}

// TestCheckParallelSpeedupPasses: a report from a >=4-core host whose
// 4-worker E2FIVM run clears the floor passes, with one note for the
// gated family and informational notes for the rest.
func TestCheckParallelSpeedupPasses(t *testing.T) {
	rep := report(
		Result{Name: "E8Workers/workers1", UpdatesPerSec: 100_000},
		Result{Name: "E8Workers/workers4", UpdatesPerSec: 270_000},
		Result{Name: "E8WorkersCategorical/workers1", UpdatesPerSec: 10_000},
		Result{Name: "E8WorkersCategorical/workers4", UpdatesPerSec: 15_000}, // below floor but ungated
	)
	rep.GOMAXPROCS = 4
	findings, ok := CheckParallel(rep, DefaultMinParallelSpeedup)
	if !ok {
		t.Fatalf("2.7x speedup must pass: %+v", findings)
	}
	if len(findings) != 2 {
		t.Fatalf("expected one note per family, got %+v", findings)
	}
	for _, f := range findings {
		if f.Kind != FindingNote {
			t.Fatalf("passing family should be a note: %+v", f)
		}
	}
}

// TestCheckParallelBelowFloorFails: 4-worker throughput under the floor
// is exactly the Amdahl regression the gate exists for.
func TestCheckParallelBelowFloorFails(t *testing.T) {
	rep := report(
		Result{Name: "E8Workers/workers1", UpdatesPerSec: 100_000},
		Result{Name: "E8Workers/workers4", UpdatesPerSec: 150_000}, // 1.5x < 2x
	)
	rep.GOMAXPROCS = 8
	findings, ok := CheckParallel(rep, DefaultMinParallelSpeedup)
	if ok {
		t.Fatalf("1.5x speedup must fail: %+v", findings)
	}
	if len(findings) != 1 || !findings[0].IsRegression() {
		t.Fatalf("expected one regression, got %+v", findings)
	}
}

// TestCheckParallelSmallHostSkips: below 4 CPUs the hardware cannot
// express the parallelism; the gate must pass with a skip note rather
// than fail a 1-CPU dev box.
func TestCheckParallelSmallHostSkips(t *testing.T) {
	rep := report(
		Result{Name: "E8Workers/workers1", UpdatesPerSec: 100_000},
		Result{Name: "E8Workers/workers4", UpdatesPerSec: 90_000}, // negative scaling, typical of 1 CPU
	)
	rep.GOMAXPROCS = 1
	findings, ok := CheckParallel(rep, DefaultMinParallelSpeedup)
	if !ok {
		t.Fatalf("small host must skip, not fail: %+v", findings)
	}
	if len(findings) != 1 || findings[0].Kind != FindingNote {
		t.Fatalf("expected a single skip note, got %+v", findings)
	}
}

// TestCheckParallelMissingEntriesFails: a 4-core report without the
// E8Workers family (or with one endpoint filtered away) must fail
// loudly, mirroring the scalingcheck rule.
func TestCheckParallelMissingEntriesFails(t *testing.T) {
	rep := report(Result{Name: "E2FIVM", UpdatesPerSec: 100_000})
	rep.GOMAXPROCS = 4
	if _, ok := CheckParallel(rep, DefaultMinParallelSpeedup); ok {
		t.Fatal("report without E8Workers entries must fail the gate")
	}
	rep = report(Result{Name: "E8Workers/workers1", UpdatesPerSec: 100_000})
	rep.GOMAXPROCS = 4
	if _, ok := CheckParallel(rep, DefaultMinParallelSpeedup); ok {
		t.Fatal("report with only one endpoint must fail the gate")
	}
}

// TestCheckParallelNsFallback: a family without a rate metric still
// yields a ratio through inverse latency.
func TestCheckParallelNsFallback(t *testing.T) {
	rep := report(
		Result{Name: "E8Workers/workers1", NsPerOp: 1000},
		Result{Name: "E8Workers/workers4", NsPerOp: 400}, // 2.5x
	)
	rep.GOMAXPROCS = 4
	if findings, ok := CheckParallel(rep, DefaultMinParallelSpeedup); !ok {
		t.Fatalf("2.5x inverse-latency speedup must pass: %+v", findings)
	}
}

// TestCheckCluster covers the sharded-scaling gate: a clearing 4-shard
// run passes with a note, a below-floor run fails, a small host skips,
// and a report without the ClusterIngest family fails loudly.
func TestCheckCluster(t *testing.T) {
	rep := report(
		Result{Name: "ClusterIngest/shards1", UpdatesPerSec: 100_000},
		Result{Name: "ClusterIngest/shards4", UpdatesPerSec: 200_000},
	)
	rep.GOMAXPROCS = 4
	findings, ok := CheckCluster(rep, DefaultMinClusterSpeedup)
	if !ok || len(findings) != 1 || findings[0].Kind != FindingNote {
		t.Fatalf("2.0x speedup must pass with one note: ok=%v %+v", ok, findings)
	}

	rep = report(
		Result{Name: "ClusterIngest/shards1", UpdatesPerSec: 100_000},
		Result{Name: "ClusterIngest/shards4", UpdatesPerSec: 120_000}, // 1.2x < 1.5x
	)
	rep.GOMAXPROCS = 8
	findings, ok = CheckCluster(rep, DefaultMinClusterSpeedup)
	if ok || len(findings) != 1 || !findings[0].IsRegression() {
		t.Fatalf("1.2x speedup must fail with one regression: ok=%v %+v", ok, findings)
	}

	rep.GOMAXPROCS = 1
	findings, ok = CheckCluster(rep, DefaultMinClusterSpeedup)
	if !ok || len(findings) != 1 || findings[0].Kind != FindingNote {
		t.Fatalf("1-CPU host must skip with a note: ok=%v %+v", ok, findings)
	}

	rep = report(Result{Name: "E2FIVM", UpdatesPerSec: 100_000})
	rep.GOMAXPROCS = 4
	if _, ok := CheckCluster(rep, DefaultMinClusterSpeedup); ok {
		t.Fatal("report without ClusterIngest entries must fail the gate")
	}
	rep = report(Result{Name: "ClusterIngest/shards1", UpdatesPerSec: 100_000})
	rep.GOMAXPROCS = 4
	if _, ok := CheckCluster(rep, DefaultMinClusterSpeedup); ok {
		t.Fatal("report with only one shard count must fail the gate")
	}
}

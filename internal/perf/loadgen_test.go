package perf

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/fivm"
	"repro/internal/serve"
)

// TestLoadgenAgainstLiveServer boots a real serving pipeline behind
// httptest and drives a short mixed workload through the public HTTP
// surface — the same path the CI smoke exercises with separate
// processes.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	eng, err := fivm.Open(fivm.Config{
		Relations: []fivm.RelationSpec{
			{Name: "R", Attrs: []string{"A", "B"}},
			{Name: "S", Attrs: []string{"B", "C"}},
		},
		Attrs: []string{"A", "C"},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(serve.NewHandler(srv))
	t.Cleanup(ts.Close)

	rep, err := RunLoadgen(LoadgenConfig{
		URL:         ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		WriteRatio:  0.5,
		BatchSize:   4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Writes == 0 || rep.Reads == 0 {
		t.Fatalf("no traffic generated: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("client errors = %d, want 0", rep.Errors)
	}
	if rep.StatusCounts["202"] == 0 {
		t.Errorf("no accepted writes: %v", rep.StatusCounts)
	}
	if !rep.MetricsValid {
		t.Errorf("final /metrics scrape invalid: %s", rep.MetricsError)
	}
	if rep.MetricsSeries == 0 {
		t.Error("metrics_series = 0")
	}
	if rep.ServerShed != 0 {
		t.Errorf("server shed %d updates under light load", rep.ServerShed)
	}
	if rep.ServerIngested == 0 || rep.ServerIngested != rep.UpdatesSent {
		t.Errorf("server ingested %d, client sent %d", rep.ServerIngested, rep.UpdatesSent)
	}
	for _, l := range []LatencySummary{rep.WriteLatency, rep.ReadLatency} {
		if l.Count == 0 || l.P50NS <= 0 {
			t.Errorf("latency summary not populated: %+v", l)
		}
		if !(l.P50NS <= l.P99NS && l.P99NS <= l.P999NS && l.P999NS <= l.MaxNS) {
			t.Errorf("quantiles not monotone: %+v", l)
		}
	}
}

func TestLoadgenConfigValidation(t *testing.T) {
	if _, err := RunLoadgen(LoadgenConfig{}); err == nil {
		t.Error("RunLoadgen accepted an empty URL")
	}
	if _, err := RunLoadgen(LoadgenConfig{URL: "http://x", WriteRatio: 1.5}); err == nil {
		t.Error("RunLoadgen accepted write ratio 1.5")
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	ns := make([]int64, 1000)
	for i := range ns {
		ns[i] = int64(i + 1) // 1..1000
	}
	s := summarize(ns)
	if s.Count != 1000 || s.MaxNS != 1000 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50NS < 495 || s.P50NS > 505 {
		t.Errorf("p50 = %d, want ~500", s.P50NS)
	}
	if s.P99NS < 985 || s.P99NS > 995 {
		t.Errorf("p99 = %d, want ~990", s.P99NS)
	}
	if s.P999NS < 995 || s.P999NS > 1000 {
		t.Errorf("p999 = %d, want ~999", s.P999NS)
	}
	if empty := summarize(nil); empty.Count != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

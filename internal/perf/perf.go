package perf

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sync"
	"testing"
)

// Result is one benchmark's machine-readable outcome. GOMAXPROCS and
// Commit are denormalized onto every result so a single entry is
// self-describing when results are sliced across files.
type Result struct {
	Name          string  `json:"name"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Commit        string  `json:"commit,omitempty"`
}

// Report is the JSON document fivm-bench emits (BENCH_<label>.json):
// a header describing the run plus one Result per suite benchmark.
type Report struct {
	Schema     int      `json:"schema"`
	Commit     string   `json:"commit,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	BenchTime  string   `json:"bench_time,omitempty"`
	Results    []Result `json:"results"`
}

// SchemaVersion identifies the report format; bump it when Result
// fields change incompatibly.
const SchemaVersion = 1

// Options configures a Run.
type Options struct {
	// Filter selects suite benchmarks by name; nil runs all.
	Filter *regexp.Regexp
	// BenchTime is the per-benchmark measurement target, in the syntax
	// of go test's -benchtime ("1s", "100ms", "10x"). Empty keeps the
	// testing package's default (1s).
	BenchTime string
	// Commit is stamped into the report and every result (typically the
	// output of `git rev-parse --short HEAD`).
	Commit string
	// Progress, when non-nil, receives one line per benchmark as it
	// completes.
	Progress io.Writer
}

var benchtimeOnce sync.Once

// setBenchTime routes a benchtime through the testing package's own
// flag, which testing.Benchmark honors. Outside `go test` the flag is
// not registered until testing.Init runs.
func setBenchTime(d string) error {
	benchtimeOnce.Do(func() {
		if flag.Lookup("test.benchtime") == nil {
			testing.Init()
		}
	})
	return flag.Set("test.benchtime", d)
}

// Run executes the given benchmarks via testing.Benchmark and collects
// a Report. Benchmarks run sequentially in suite order; a nil filter
// runs everything.
func Run(suite []Bench, opts Options) (*Report, error) {
	if opts.BenchTime != "" {
		if err := setBenchTime(opts.BenchTime); err != nil {
			return nil, fmt.Errorf("perf: invalid benchtime %q: %w", opts.BenchTime, err)
		}
	}
	rep := &Report{
		Schema:     SchemaVersion,
		Commit:     opts.Commit,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  opts.BenchTime,
	}
	for _, bench := range suite {
		if opts.Filter != nil && !opts.Filter.MatchString(bench.Name) {
			continue
		}
		br := testing.Benchmark(bench.Fn)
		if br.N == 0 {
			// testing.Benchmark reports a zero result when the benchmark
			// failed (b.Fatal/b.Skip); surface it instead of recording
			// zeros that would trip every comparison.
			return nil, fmt.Errorf("perf: benchmark %s failed (zero result)", bench.Name)
		}
		res := Result{
			Name:          bench.Name,
			UpdatesPerSec: br.Extra["updates/sec"],
			NsPerOp:       float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp:   br.AllocsPerOp(),
			BytesPerOp:    br.AllocedBytesPerOp(),
			GOMAXPROCS:    rep.GOMAXPROCS,
			Commit:        opts.Commit,
		}
		rep.Results = append(rep.Results, res)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-40s %12.0f ns/op %12.0f updates/sec %10d allocs/op %12d B/op\n",
				bench.Name, res.NsPerOp, res.UpdatesPerSec, res.AllocsPerOp, res.BytesPerOp)
		}
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("perf: no suite benchmark matched the filter")
	}
	return rep, nil
}

// WriteJSON writes the report to path, indented for diffability.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema %d, this binary reads %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

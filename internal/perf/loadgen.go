package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LoadgenConfig drives RunLoadgen against a live fivm-serve instance.
type LoadgenConfig struct {
	// URL is the server's base URL, e.g. http://localhost:8344.
	URL string
	// Duration is how long to generate load.
	Duration time.Duration
	// Concurrency is the number of client goroutines.
	Concurrency int
	// WriteRatio in [0,1] is the fraction of requests that are
	// POST /update; the rest are GET /model reads.
	WriteRatio float64
	// BatchSize is the number of tuples per write request.
	BatchSize int
	// Seed makes the generated tuple stream reproducible.
	Seed int64
}

func (c LoadgenConfig) withDefaults() (LoadgenConfig, error) {
	if c.URL == "" {
		return c, fmt.Errorf("loadgen: URL is required")
	}
	if c.WriteRatio < 0 || c.WriteRatio > 1 {
		return c, fmt.Errorf("loadgen: write ratio %v outside [0,1]", c.WriteRatio)
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	return c, nil
}

// LatencySummary is the client-observed latency distribution of one
// request class, quantiles computed exactly over all samples.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// LoadgenReport is the machine-readable result of one loadgen run.
type LoadgenReport struct {
	URL             string         `json:"url"`
	DurationSeconds float64        `json:"duration_seconds"`
	Concurrency     int            `json:"concurrency"`
	WriteRatio      float64        `json:"write_ratio"`
	BatchSize       int            `json:"batch_size"`
	Requests        uint64         `json:"requests"`
	Writes          uint64         `json:"writes"`
	Reads           uint64         `json:"reads"`
	Errors          uint64         `json:"errors"`
	StatusCounts    map[string]int `json:"status_counts"`
	ThroughputRPS   float64        `json:"throughput_rps"`
	UpdatesSent     uint64         `json:"updates_sent"`
	WriteLatency    LatencySummary `json:"write_latency"`
	ReadLatency     LatencySummary `json:"read_latency"`
	// ServerIngested/ServerShed come from the final GET /stats, as do
	// the ServerWAL* durability counters (all zero when the server runs
	// without -wal).
	ServerIngested           uint64 `json:"server_ingested"`
	ServerShed               uint64 `json:"server_shed"`
	ServerWALEnabled         bool   `json:"server_wal_enabled"`
	ServerWALAppendedBatches uint64 `json:"server_wal_appended_batches"`
	ServerWALAppendedBytes   uint64 `json:"server_wal_appended_bytes"`
	ServerWALSegments        int64  `json:"server_wal_segments"`
	ServerWALCheckpointSeq   uint64 `json:"server_wal_checkpoint_seq"`
	ServerWALRecovered       uint64 `json:"server_wal_recovered_updates"`
	// MetricsValid reports whether the final GET /metrics parsed as
	// Prometheus text exposition; MetricsSeries counts its samples.
	MetricsValid  bool   `json:"metrics_valid"`
	MetricsSeries int    `json:"metrics_series"`
	MetricsError  string `json:"metrics_error,omitempty"`
}

// shardInfo is the slice of the /stats "shards" object loadgen needs:
// the relation's tuple arity, so it can synthesize valid updates.
type shardInfo struct {
	Arity int `json:"arity"`
}

// RunLoadgen drives mixed read/write traffic against a live server and
// reports client-side latency quantiles plus a server-side consistency
// check (final /stats counters and /metrics parseability). Relations
// and their arities are discovered from GET /stats, so the same
// loadgen works against any hosted engine.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	base := strings.TrimRight(cfg.URL, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	rels, err := discoverRelations(client, base)
	if err != nil {
		return nil, err
	}

	type worker struct {
		writeNS, readNS []int64
		updates         uint64
		errors          uint64
		statuses        map[int]int
	}
	workers := make([]worker, cfg.Concurrency)
	var wg sync.WaitGroup
	var stop atomic.Bool
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := &workers[w]
			me.statuses = make(map[int]int)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			var body bytes.Buffer
			for !stop.Load() {
				if rng.Float64() < cfg.WriteRatio {
					rel := rels[rng.Intn(len(rels))]
					body.Reset()
					writeBatchJSON(&body, rng, rel.name, rel.arity, cfg.BatchSize)
					t0 := time.Now()
					resp, err := client.Post(base+"/update", "application/json", &body)
					ns := time.Since(t0).Nanoseconds()
					if err != nil {
						me.errors++
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					me.writeNS = append(me.writeNS, ns)
					me.statuses[resp.StatusCode]++
					if resp.StatusCode == http.StatusAccepted {
						me.updates += uint64(cfg.BatchSize)
					}
				} else {
					t0 := time.Now()
					resp, err := client.Get(base + "/model")
					ns := time.Since(t0).Nanoseconds()
					if err != nil {
						me.errors++
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					me.readNS = append(me.readNS, ns)
					me.statuses[resp.StatusCode]++
				}
			}
		}(w)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadgenReport{
		URL:             cfg.URL,
		DurationSeconds: elapsed.Seconds(),
		Concurrency:     cfg.Concurrency,
		WriteRatio:      cfg.WriteRatio,
		BatchSize:       cfg.BatchSize,
		StatusCounts:    make(map[string]int),
	}
	var writeNS, readNS []int64
	for i := range workers {
		w := &workers[i]
		writeNS = append(writeNS, w.writeNS...)
		readNS = append(readNS, w.readNS...)
		rep.UpdatesSent += w.updates
		rep.Errors += w.errors
		for code, n := range w.statuses {
			rep.StatusCounts[fmt.Sprintf("%d", code)] += n
		}
	}
	rep.Writes = uint64(len(writeNS))
	rep.Reads = uint64(len(readNS))
	rep.Requests = rep.Writes + rep.Reads
	rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	rep.WriteLatency = summarize(writeNS)
	rep.ReadLatency = summarize(readNS)

	// Server-side consistency: final counters and a /metrics scrape that
	// must parse as exposition format.
	if sc, err := fetchServerCounters(client, base); err == nil {
		rep.ServerIngested, rep.ServerShed = sc.Ingested, sc.Shed
		rep.ServerWALEnabled = sc.WAL.Enabled
		rep.ServerWALAppendedBatches = sc.WAL.AppendedBatches
		rep.ServerWALAppendedBytes = sc.WAL.AppendedBytes
		rep.ServerWALSegments = sc.WAL.Segments
		rep.ServerWALCheckpointSeq = sc.WAL.CheckpointSeq
		rep.ServerWALRecovered = sc.WAL.RecoveredUpdates
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		rep.MetricsError = err.Error()
	} else {
		samples, perr := obs.ParseExposition(resp.Body)
		resp.Body.Close()
		if perr != nil {
			rep.MetricsError = perr.Error()
		} else {
			rep.MetricsValid = true
			rep.MetricsSeries = len(samples)
		}
	}
	return rep, nil
}

type relation struct {
	name  string
	arity int
}

// discoverRelations reads GET /stats and extracts each shard's name and
// arity.
func discoverRelations(client *http.Client, base string) ([]relation, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, fmt.Errorf("loadgen: discovering relations: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /stats = %d", resp.StatusCode)
	}
	var stats struct {
		Shards map[string]shardInfo `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /stats: %w", err)
	}
	if len(stats.Shards) == 0 {
		return nil, fmt.Errorf("loadgen: /stats reports no shards — is this a fivm-serve instance?")
	}
	rels := make([]relation, 0, len(stats.Shards))
	for name, sh := range stats.Shards {
		rels = append(rels, relation{name: name, arity: sh.Arity})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].name < rels[j].name })
	return rels, nil
}

// writeBatchJSON renders one /update request body of n random integer
// tuples for rel. A small value domain (64 per column) keeps join keys
// overlapping so updates exercise real view maintenance, not just
// inserts into disjoint groups.
func writeBatchJSON(buf *bytes.Buffer, rng *rand.Rand, rel string, arity, n int) {
	buf.WriteString(`{"updates":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(buf, `{"rel":%q,"tuple":[`, rel)
		for j := 0; j < arity; j++ {
			if j > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(buf, "%d", rng.Intn(64))
		}
		buf.WriteString("]}")
	}
	buf.WriteString("]}")
}

// serverCounters is the slice of GET /stats the report repeats:
// admission counters plus the durability section.
type serverCounters struct {
	Ingested uint64 `json:"ingested"`
	Shed     uint64 `json:"shed"`
	WAL      struct {
		Enabled          bool   `json:"enabled"`
		AppendedBatches  uint64 `json:"appended_batches"`
		AppendedBytes    uint64 `json:"appended_bytes"`
		Segments         int64  `json:"segments"`
		CheckpointSeq    uint64 `json:"checkpoint_seq"`
		RecoveredUpdates uint64 `json:"recovered_updates"`
	} `json:"wal"`
}

func fetchServerCounters(client *http.Client, base string) (serverCounters, error) {
	var stats serverCounters
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return stats, err
	}
	return stats, nil
}

// summarize computes exact quantiles over the collected samples.
func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var sum float64
	for _, v := range ns {
		sum += float64(v)
	}
	at := func(q float64) int64 {
		i := int(q * float64(len(ns)-1))
		return ns[i]
	}
	return LatencySummary{
		Count:  len(ns),
		MeanNS: sum / float64(len(ns)),
		P50NS:  at(0.50),
		P99NS:  at(0.99),
		P999NS: at(0.999),
		MaxNS:  ns[len(ns)-1],
	}
}

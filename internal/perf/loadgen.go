package perf

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/fivm/client"
	"repro/internal/obs"
)

// LoadgenConfig drives RunLoadgen against a live fivm-serve or
// fivm-cluster instance.
type LoadgenConfig struct {
	// URL is the server's base URL, e.g. http://localhost:8344.
	URL string
	// Duration is how long to generate load.
	Duration time.Duration
	// Concurrency is the number of client goroutines.
	Concurrency int
	// WriteRatio in [0,1] is the fraction of requests that are
	// POST /v1/update; the rest are GET /v1/model reads.
	WriteRatio float64
	// BatchSize is the number of tuples per write request.
	BatchSize int
	// Seed makes the generated tuple stream reproducible.
	Seed int64
	// Retries bounds client-side retries per request. 0, the default,
	// disables them so a shed write counts as a 429 in the report and
	// a dropped connection as an error. The chaos harness turns this
	// up: every write carries a batch ID the server deduplicates, so
	// retried deliveries are absorbed exactly-once and injected faults
	// surface as retries, not report errors.
	Retries int
}

func (c LoadgenConfig) withDefaults() (LoadgenConfig, error) {
	if c.URL == "" {
		return c, fmt.Errorf("loadgen: URL is required")
	}
	if c.WriteRatio < 0 || c.WriteRatio > 1 {
		return c, fmt.Errorf("loadgen: write ratio %v outside [0,1]", c.WriteRatio)
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	return c, nil
}

// LatencySummary is the client-observed latency distribution of one
// request class, quantiles computed exactly over all samples.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// LoadgenReport is the machine-readable result of one loadgen run.
type LoadgenReport struct {
	URL             string         `json:"url"`
	DurationSeconds float64        `json:"duration_seconds"`
	Concurrency     int            `json:"concurrency"`
	WriteRatio      float64        `json:"write_ratio"`
	BatchSize       int            `json:"batch_size"`
	Requests        uint64         `json:"requests"`
	Writes          uint64         `json:"writes"`
	Reads           uint64         `json:"reads"`
	Errors          uint64         `json:"errors"`
	StatusCounts    map[string]int `json:"status_counts"`
	ThroughputRPS   float64        `json:"throughput_rps"`
	UpdatesSent     uint64         `json:"updates_sent"`
	WriteLatency    LatencySummary `json:"write_latency"`
	ReadLatency     LatencySummary `json:"read_latency"`
	// ServerIngested/ServerShed come from the final GET /v1/stats, as do
	// the ServerWAL* durability counters (all zero when the server runs
	// without -wal).
	ServerIngested           uint64 `json:"server_ingested"`
	ServerShed               uint64 `json:"server_shed"`
	ServerWALEnabled         bool   `json:"server_wal_enabled"`
	ServerWALAppendedBatches uint64 `json:"server_wal_appended_batches"`
	ServerWALAppendedBytes   uint64 `json:"server_wal_appended_bytes"`
	ServerWALSegments        int64  `json:"server_wal_segments"`
	ServerWALCheckpointSeq   uint64 `json:"server_wal_checkpoint_seq"`
	ServerWALRecovered       uint64 `json:"server_wal_recovered_updates"`
	// MetricsValid reports whether the final GET /metrics parsed as
	// Prometheus text exposition; MetricsSeries counts its samples.
	MetricsValid  bool   `json:"metrics_valid"`
	MetricsSeries int    `json:"metrics_series"`
	MetricsError  string `json:"metrics_error,omitempty"`
}

// RunLoadgen drives mixed read/write traffic against a live server and
// reports client-side latency quantiles plus a server-side consistency
// check (final /v1/stats counters and /metrics parseability). Relations
// and their arities are discovered from GET /v1/stats, so the same
// loadgen works against any hosted engine — or against a cluster
// router, which reports the same shards object. It rides the public
// fivm/client package with retries disabled by default: a shed write
// must count as a 429 in the report, not silently succeed on retry.
// See LoadgenConfig.Retries for the chaos-harness mode.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	cli := client.New(strings.TrimRight(cfg.URL, "/"),
		client.WithHTTPClient(&http.Client{Timeout: 30 * time.Second}),
		client.WithRetries(cfg.Retries))

	rels, err := discoverRelations(ctx, cli)
	if err != nil {
		return nil, err
	}

	type worker struct {
		writeNS, readNS []int64
		updates         uint64
		errors          uint64
		statuses        map[int]int
	}
	workers := make([]worker, cfg.Concurrency)
	var wg sync.WaitGroup
	var stop atomic.Bool
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := &workers[w]
			me.statuses = make(map[int]int)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			batch := make([]client.Update, 0, cfg.BatchSize)
			for !stop.Load() {
				if rng.Float64() < cfg.WriteRatio {
					rel := rels[rng.Intn(len(rels))]
					batch = randomBatch(batch[:0], rng, rel.name, rel.arity, cfg.BatchSize)
					t0 := time.Now()
					_, err := cli.Update(ctx, batch, false)
					ns := time.Since(t0).Nanoseconds()
					status, ok := statusOf(err, http.StatusAccepted)
					if !ok {
						me.errors++
						continue
					}
					me.writeNS = append(me.writeNS, ns)
					me.statuses[status]++
					if status == http.StatusAccepted {
						me.updates += uint64(cfg.BatchSize)
					}
				} else {
					t0 := time.Now()
					_, err := cli.Model(ctx)
					ns := time.Since(t0).Nanoseconds()
					status, ok := statusOf(err, http.StatusOK)
					if !ok {
						me.errors++
						continue
					}
					me.readNS = append(me.readNS, ns)
					me.statuses[status]++
				}
			}
		}(w)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadgenReport{
		URL:             cfg.URL,
		DurationSeconds: elapsed.Seconds(),
		Concurrency:     cfg.Concurrency,
		WriteRatio:      cfg.WriteRatio,
		BatchSize:       cfg.BatchSize,
		StatusCounts:    make(map[string]int),
	}
	var writeNS, readNS []int64
	for i := range workers {
		w := &workers[i]
		writeNS = append(writeNS, w.writeNS...)
		readNS = append(readNS, w.readNS...)
		rep.UpdatesSent += w.updates
		rep.Errors += w.errors
		for code, n := range w.statuses {
			rep.StatusCounts[fmt.Sprintf("%d", code)] += n
		}
	}
	rep.Writes = uint64(len(writeNS))
	rep.Reads = uint64(len(readNS))
	rep.Requests = rep.Writes + rep.Reads
	rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	rep.WriteLatency = summarize(writeNS)
	rep.ReadLatency = summarize(readNS)

	// Server-side consistency: final counters and a /metrics scrape that
	// must parse as exposition format.
	if st, err := cli.Stats(ctx); err == nil {
		rep.ServerIngested, rep.ServerShed = st.Ingested, st.Shed
		rep.ServerWALEnabled = st.WAL.Enabled
		rep.ServerWALAppendedBatches = st.WAL.AppendedBatches
		rep.ServerWALAppendedBytes = st.WAL.AppendedBytes
		rep.ServerWALSegments = int64(st.WAL.Segments)
		rep.ServerWALCheckpointSeq = st.WAL.CheckpointSeq
		rep.ServerWALRecovered = st.WAL.RecoveredUpdates
	}
	text, err := cli.Metrics(ctx)
	if err != nil {
		rep.MetricsError = err.Error()
	} else {
		samples, perr := obs.ParseExposition(strings.NewReader(text))
		if perr != nil {
			rep.MetricsError = perr.Error()
		} else {
			rep.MetricsValid = true
			rep.MetricsSeries = len(samples)
		}
	}
	return rep, nil
}

// statusOf maps a client result to an HTTP status for the report's
// status accounting: nil errors report the route's success code,
// APIErrors carry the server's status, transport failures report
// not-ok.
func statusOf(err error, success int) (status int, ok bool) {
	if err == nil {
		return success, true
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status, true
	}
	return 0, false
}

type relation struct {
	name  string
	arity int
}

// discoverRelations reads GET /v1/stats and extracts each shard's name
// and arity.
func discoverRelations(ctx context.Context, cli *client.Client) ([]relation, error) {
	st, err := cli.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: discovering relations: %w", err)
	}
	if len(st.Shards) == 0 {
		return nil, fmt.Errorf("loadgen: /v1/stats reports no shards — is this a fivm instance?")
	}
	rels := make([]relation, 0, len(st.Shards))
	for name, sh := range st.Shards {
		rels = append(rels, relation{name: name, arity: sh.Arity})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].name < rels[j].name })
	return rels, nil
}

// randomBatch appends n random integer inserts for rel to batch. A
// small value domain (64 per column) keeps join keys overlapping so
// updates exercise real view maintenance, not just inserts into
// disjoint groups.
func randomBatch(batch []client.Update, rng *rand.Rand, rel string, arity, n int) []client.Update {
	for i := 0; i < n; i++ {
		tuple := make([]any, arity)
		for j := range tuple {
			tuple[j] = rng.Intn(64)
		}
		batch = append(batch, client.Update{Rel: rel, Tuple: tuple})
	}
	return batch
}

// summarize computes exact quantiles over the collected samples.
func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var sum float64
	for _, v := range ns {
		sum += float64(v)
	}
	at := func(q float64) int64 {
		i := int(q * float64(len(ns)-1))
		return ns[i]
	}
	return LatencySummary{
		Count:  len(ns),
		MeanNS: sum / float64(len(ns)),
		P50NS:  at(0.50),
		P99NS:  at(0.99),
		P999NS: at(0.999),
		MaxNS:  ns[len(ns)-1],
	}
}

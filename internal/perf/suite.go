// Package perf makes the repository's performance trajectory machine-
// readable: it hosts the canonical benchmark suite (shared with the
// root go-test benchmarks), a runner that executes it via
// testing.Benchmark, JSON emission of the results, and a comparator
// that gates regressions in CI (see docs/PERF.md).
package perf

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/fivm"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/ring"
	"repro/internal/serve"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// Bench is one leaf benchmark of the canonical suite: a plain
// testing.B function, runnable both as a go-test benchmark (the root
// bench_test.go wrappers) and through testing.Benchmark by the
// fivm-bench runner.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// Suite returns the canonical benchmark suite, one entry per measured
// configuration. Names are stable identifiers ("family/point") — the
// CI comparison matches results across runs by them.
func Suite() []Bench {
	s := []Bench{
		{Name: "E1Figure1Delta", Fn: benchE1Figure1Delta},
		{Name: "E2FIVM", Fn: benchE2FIVM},
		{Name: "E2FlatIVM", Fn: benchE2FlatIVM},
		{Name: "E2Reeval", Fn: benchE2Reeval},
		{Name: "E2CompoundCategorical", Fn: benchE2CompoundCategorical},
	}
	for _, batch := range []int{1, 100, 1000} {
		s = append(s, Bench{Name: "E7BatchSize/" + sizeName(batch), Fn: benchE7BatchSize(batch)})
	}
	for _, m := range []int{2, 10, 20} {
		s = append(s, Bench{Name: "E7AggCount/" + sizeName(m), Fn: benchE7AggCount(m)})
	}
	for _, kind := range []string{"count", "covar"} {
		for _, rows := range []int{1_000, 10_000, 100_000} {
			s = append(s, Bench{
				Name: fmt.Sprintf("UpdateLatencyScaling/%s/%s", kind, sizeName(rows)),
				Fn:   benchUpdateLatencyScaling(kind, rows),
			})
		}
	}
	for _, workers := range []int{1, 4} {
		s = append(s, Bench{Name: fmt.Sprintf("E8Workers/workers%d", workers), Fn: benchE8Workers(workers)})
	}
	for _, workers := range []int{1, 4} {
		s = append(s, Bench{Name: fmt.Sprintf("E8WorkersCategorical/workers%d", workers), Fn: benchE8WorkersCategorical(workers)})
	}
	s = append(s,
		Bench{Name: "AblationSharing/compound", Fn: benchAblationSharingCompound},
		Bench{Name: "AblationSharing/unshared", Fn: benchAblationSharingUnshared},
		Bench{Name: "AblationDeletes/insertOnly", Fn: benchAblationDeletes(0)},
		Bench{Name: "AblationDeletes/half", Fn: benchAblationDeletes(0.5)},
		Bench{Name: "AblationFactorized/gradient", Fn: benchAblationFactorizedGradient},
		Bench{Name: "AblationFactorized/joinResult", Fn: benchAblationFactorizedJoin},
		Bench{Name: "AblationRanged/fullDegree", Fn: benchAblationRanged(false)},
		Bench{Name: "AblationRanged/ranged", Fn: benchAblationRanged(true)},
		Bench{Name: "ServeIngest", Fn: benchServeIngest},
		Bench{Name: "ServeIngestWorkers/workers1", Fn: benchServeIngestWorkers(1)},
		Bench{Name: "ServeIngestWorkers/workers4", Fn: benchServeIngestWorkers(4)},
		Bench{Name: "ServeSnapshotReads/idle-writer", Fn: benchServeSnapshotReads(false)},
		Bench{Name: "ServeSnapshotReads/active-writer", Fn: benchServeSnapshotReads(true)},
	)
	for _, shards := range []int{1, 4} {
		s = append(s, Bench{Name: fmt.Sprintf("ClusterIngest/shards%d", shards), Fn: benchClusterIngest(shards)})
	}
	return s
}

// Named returns the suite entry with the given name; it panics on an
// unknown name (a programming error in a wrapper).
func Named(name string) func(b *testing.B) {
	for _, e := range Suite() {
		if e.Name == name {
			return e.Fn
		}
	}
	panic("perf: unknown suite benchmark " + name)
}

// RunGroup runs every suite entry under prefix (exclusive of the "/")
// as sub-benchmarks of b — the bridge that keeps `go test -bench`
// sweeps (BenchmarkE7BatchSize etc.) and the fivm-bench runner on one
// set of benchmark bodies.
func RunGroup(b *testing.B, prefix string) {
	found := false
	for _, e := range Suite() {
		if sub, ok := strings.CutPrefix(e.Name, prefix+"/"); ok {
			found = true
			b.Run(sub, e.Fn)
		}
	}
	if !found {
		b.Fatalf("perf: no suite benchmarks under %q", prefix)
	}
}

// --- shared fixtures --------------------------------------------------------

const (
	e2Rows      = 20_000
	e2Stream    = 5_000
	e2BatchSize = 1_000
)

// retailerFixture builds the shared Retailer fixture at benchmark scale.
func retailerFixture(tb testing.TB, rows int) (*dataset.Database, []fivm.RelationSpec, []baseline.RelSpec, []string) {
	tb.Helper()
	cfg := dataset.DefaultRetailerConfig()
	cfg.InventoryRows = rows
	db := dataset.Retailer(cfg)
	var fs []fivm.RelationSpec
	var bs []baseline.RelSpec
	for _, r := range db.Relations {
		fs = append(fs, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		bs = append(bs, baseline.RelSpec{Name: r.Name, Schema: r.Schema()})
	}
	return db, fs, bs, []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage"}
}

func streamFixture(tb testing.TB, db *dataset.Database, n int, deleteRatio float64) []view.Update {
	tb.Helper()
	st, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: n, DeleteRatio: deleteRatio, Seed: 17,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return st.Updates
}

func reportRate(b *testing.B, updatesPerIter int) {
	b.ReportMetric(float64(updatesPerIter)*float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
}

var categoricalFeatures = []fivm.FeatureSpec{
	{Attr: "inventoryunits"},
	{Attr: "prize"},
	{Attr: "avghhi"},
	{Attr: "subcategory", Categorical: true},
	{Attr: "category", Categorical: true},
	{Attr: "categoryCluster", Categorical: true},
	{Attr: "zip", Categorical: true},
}

var rangedAttrs = []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage",
	"population", "tot_area_sq_ft", "sell_area_sq_ft", "mintemp", "meanwind",
	"houseunits", "families", "households", "males", "females",
	"white", "black", "asian", "hispanic", "occupiedhouseunits"}

func sizeName(n int) string {
	if n >= 1000 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

// applyBatched drives ups through eng.Apply in fixed-size batches.
func applyBatched(b *testing.B, apply func([]view.Update) error, ups []view.Update, batch int) {
	b.Helper()
	for j := 0; j < len(ups); j += batch {
		k := j + batch
		if k > len(ups) {
			k = len(ups)
		}
		if err := apply(ups[j:k]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: Figure 1 toy maintenance -------------------------------------------

// benchE1Figure1Delta measures one δR maintenance step on the Figure 1
// toy database under the degree-3 COVAR ring.
func benchE1Figure1Delta(b *testing.B) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C", "D")},
	}
	r := ring.NewCovarRing(3)
	tr, err := view.New(view.Spec[*ring.Covar]{
		Ring: r, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.Covar]{"B": r.Lift(0), "C": r.Lift(1), "D": r.Lift(2)},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 1, 1), value.T("a1", 2, 3), value.T("a2", 2, 2)},
	}); err != nil {
		b.Fatal(err)
	}
	tup := value.T("a1", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert("R", tup); err != nil {
			b.Fatal(err)
		}
		if err := tr.Delete("R", tup); err != nil {
			b.Fatal(err)
		}
	}
	reportRate(b, 2)
}

// --- E2: throughput, F-IVM vs baselines -------------------------------------

// benchE2FIVM maintains the 21-aggregate COVAR payload over the 5-way
// Retailer join with F-IVM's factorized ring maintenance.
func benchE2FIVM(b *testing.B) {
	db, fs, _, aggs := retailerFixture(b, e2Rows)
	ups := streamFixture(b, db, e2Stream, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := fivm.NewCovarEngine(fs, aggs, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		applyBatched(b, eng.Apply, ups, e2BatchSize)
	}
	reportRate(b, len(ups))
}

// benchE2FlatIVM maintains the same aggregates with the DBToaster-style
// flat first-order baseline.
func benchE2FlatIVM(b *testing.B) {
	db, _, bs, aggs := retailerFixture(b, e2Rows)
	ups := streamFixture(b, db, e2Stream, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		flat, err := baseline.NewFlatIVM(bs, aggs)
		if err != nil {
			b.Fatal(err)
		}
		if err := flat.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		applyBatched(b, flat.Apply, ups, e2BatchSize)
	}
	reportRate(b, len(ups))
}

// benchE2Reeval recomputes from scratch per batch (shortened stream;
// the rate metric is what matters).
func benchE2Reeval(b *testing.B) {
	db, _, bs, aggs := retailerFixture(b, e2Rows)
	ups := streamFixture(b, db, 2*e2BatchSize, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		re, err := baseline.NewReeval(bs, aggs)
		if err != nil {
			b.Fatal(err)
		}
		if err := re.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		applyBatched(b, re.Apply, ups, e2BatchSize)
	}
	reportRate(b, len(ups))
}

// benchE2CompoundCategorical maintains the mixed categorical payload
// (thousands of one-hot aggregates) — the configuration behind the
// paper's 10K-updates/sec claim.
func benchE2CompoundCategorical(b *testing.B) {
	db, fs, _, _ := retailerFixture(b, e2Rows)
	ups := streamFixture(b, db, e2Stream, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		an, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: fs, Features: categoricalFeatures})
		if err != nil {
			b.Fatal(err)
		}
		if err := an.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		applyBatched(b, an.Apply, ups, e2BatchSize)
	}
	reportRate(b, len(ups))
}

// --- E7: sweeps -------------------------------------------------------------

// benchE7BatchSize sweeps the update bulk size.
func benchE7BatchSize(batch int) func(b *testing.B) {
	return func(b *testing.B) {
		db, fs, _, aggs := retailerFixture(b, 5_000)
		ups := streamFixture(b, db, 2_000, 0.2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewCovarEngine(fs, aggs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			applyBatched(b, eng.Apply, ups, batch)
		}
		reportRate(b, len(ups))
	}
}

// benchE7AggCount sweeps the COVAR degree m.
func benchE7AggCount(m int) func(b *testing.B) {
	return func(b *testing.B) {
		db, fs, _, _ := retailerFixture(b, 5_000)
		ups := streamFixture(b, db, 2_000, 0.2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewCovarEngine(fs, rangedAttrs[:m], nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			applyBatched(b, eng.Apply, ups, 500)
		}
		reportRate(b, len(ups))
	}
}

// --- Update-latency scaling ---------------------------------------------------

// benchUpdateLatencyScaling pins the paper's central complexity claim:
// single-tuple maintenance cost proportional to the delta, not the
// database. It bulk-loads the Retailer join at the given fact-table
// size ONCE (outside the timer), then measures steady-state
// insert+delete pairs of one Inventory tuple. With the persistent
// join-key view indexes the ns/op must stay ~flat as rows grows
// 1k -> 100k; the pre-index build-and-scan join degraded linearly
// because every path join scanned the full sibling view. CI graphs
// these entries as the latency-vs-size curve (docs/PERF.md).
func benchUpdateLatencyScaling(kind string, rows int) func(b *testing.B) {
	return func(b *testing.B) {
		db, fs, _, aggs := retailerFixture(b, rows)
		// The benchmark drives the kind-independent surface every engine
		// shares — bulk load once, then prebuilt single-tuple deltas
		// through the type-erased delta path, exactly as the serving
		// pipeline does.
		var eng fivm.AnyEngine
		switch kind {
		case "count":
			cat := fivm.NewCatalog()
			for _, r := range db.Relations {
				if err := cat.AddRelation(r.Name, r.Attrs...); err != nil {
					b.Fatal(err)
				}
			}
			q, err := fivm.Parse(cat, "SELECT SUM(1) FROM Inventory NATURAL JOIN Location NATURAL JOIN Census NATURAL JOIN Item NATURAL JOIN Weather")
			if err != nil {
				b.Fatal(err)
			}
			ce, err := fivm.NewCountEngine(q, nil)
			if err != nil {
				b.Fatal(err)
			}
			eng = ce
		case "covar":
			ce, err := fivm.NewCovarEngine(fs, aggs, nil)
			if err != nil {
				b.Fatal(err)
			}
			eng = ce
		default:
			b.Fatalf("unknown scaling engine kind %q", kind)
		}
		if err := eng.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		tup := db.TupleMap()["Inventory"][0]
		dIns, err := eng.BuildDelta("Inventory", []view.Update{{Rel: "Inventory", Tuple: tup, Mult: 1}})
		if err != nil {
			b.Fatal(err)
		}
		dDel, err := eng.BuildDelta("Inventory", []view.Update{{Rel: "Inventory", Tuple: tup, Mult: -1}})
		if err != nil {
			b.Fatal(err)
		}
		apply := func() {
			if err := eng.ApplyBuilt("Inventory", dIns); err != nil {
				b.Fatal(err)
			}
			if err := eng.ApplyBuilt("Inventory", dDel); err != nil {
				b.Fatal(err)
			}
		}
		apply() // warm the tree's scratch before measuring
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apply()
		}
		reportRate(b, 2)
	}
}

// --- E8: parallel delta propagation -----------------------------------------

// benchE8Workers sweeps the delta-propagation worker count on the
// Retailer batch stream (COVAR degree 5, batches of 1000): the same
// workload as E2, with update batches hash-partitioned by join key and
// propagated concurrently. workers=1 is the sequential baseline; on a
// multi-core host the 4-worker rate should exceed it, while on a
// single-core host the sweep measures the partitioning overhead.
func benchE8Workers(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		db, fs, _, aggs := retailerFixture(b, e2Rows)
		ups := streamFixture(b, db, e2Stream, 0.2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewCovarEngine(fs, aggs, nil)
			if err != nil {
				b.Fatal(err)
			}
			eng.SetParallelism(workers)
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			applyBatched(b, eng.Apply, ups, e2BatchSize)
		}
		reportRate(b, len(ups))
	}
}

// benchE8WorkersCategorical is the same sweep over the heavier mixed
// categorical payload (the relational degree-7 ring), where per-tuple
// ring work is large enough for partitioning to pay off at smaller
// batch sizes.
func benchE8WorkersCategorical(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		db, fs, _, _ := retailerFixture(b, e2Rows)
		ups := streamFixture(b, db, e2Stream, 0.2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			an, err := fivm.NewAnalysis(fivm.AnalysisConfig{Relations: fs, Features: categoricalFeatures})
			if err != nil {
				b.Fatal(err)
			}
			an.SetParallelism(workers)
			if err := an.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			applyBatched(b, an.Apply, ups, e2BatchSize)
		}
		reportRate(b, len(ups))
	}
}

// --- A1–A4: ablations -------------------------------------------------------

// benchAblationSharingCompound is the compound-ring half of A1 (ring
// sharing): all 21 aggregates in one COVAR payload.
func benchAblationSharingCompound(b *testing.B) {
	db, fs, _, aggs := retailerFixture(b, 5_000)
	ups := streamFixture(b, db, 1_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := fivm.NewCovarEngine(fs, aggs, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Apply(ups); err != nil {
			b.Fatal(err)
		}
	}
	reportRate(b, len(ups))
}

// benchAblationSharingUnshared is A1's unshared half: one Z-ring count
// tree plus one float tree per SUM(X) and SUM(X*Y) — 1 + 5 + 15 = 21
// independent view trees.
func benchAblationSharingUnshared(b *testing.B) {
	db, _, _, aggs := retailerFixture(b, 5_000)
	ups := streamFixture(b, db, 1_000, 0.2)
	build := func() []*view.Tree[float64] {
		var trees []*view.Tree[float64]
		var rels []vo.Rel
		for _, r := range db.Relations {
			rels = append(rels, vo.Rel{Name: r.Name, Schema: value.NewSchema(r.Attrs...)})
		}
		add := func(lifts map[string]ring.Lift[float64]) {
			t, err := view.New(view.Spec[float64]{Ring: ring.Floats{}, Relations: rels, Lifts: lifts})
			if err != nil {
				b.Fatal(err)
			}
			if err := t.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			trees = append(trees, t)
		}
		add(nil) // count
		for i, a := range aggs {
			add(map[string]ring.Lift[float64]{a: ring.IdentityLift})
			add(map[string]ring.Lift[float64]{a: ring.SquareLift})
			for _, c := range aggs[i+1:] {
				add(map[string]ring.Lift[float64]{a: ring.IdentityLift, c: ring.IdentityLift})
			}
		}
		return trees
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		trees := build()
		b.StartTimer()
		for _, t := range trees {
			if err := t.ApplyUpdates(ups); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportRate(b, len(ups))
}

// benchAblationDeletes sweeps the delete ratio: the rate must stay in
// the same band (deletes are just negative payloads).
func benchAblationDeletes(ratio float64) func(b *testing.B) {
	return func(b *testing.B) {
		db, fs, _, aggs := retailerFixture(b, 5_000)
		ups := streamFixture(b, db, 2_000, ratio)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := fivm.NewCovarEngine(fs, aggs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Init(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			applyBatched(b, eng.Apply, ups, 500)
		}
		reportRate(b, len(ups))
	}
}

// benchAblationFactorizedGradient (A2, gradient half) maintains the
// COVAR gradient through the view tree.
func benchAblationFactorizedGradient(b *testing.B) {
	db, fs, _, aggs := retailerFixture(b, 5_000)
	ups := streamFixture(b, db, 1_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := fivm.NewCovarEngine(fs, aggs, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Apply(ups); err != nil {
			b.Fatal(err)
		}
	}
	reportRate(b, len(ups))
}

// benchAblationFactorizedJoin (A2, join half) maintains the join result
// itself through the same view tree — only the ring differs.
func benchAblationFactorizedJoin(b *testing.B) {
	db, fs, _, _ := retailerFixture(b, 5_000)
	ups := streamFixture(b, db, 1_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		je, err := fivm.NewJoinEngine(fs, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := je.Init(db.TupleMap()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := je.Apply(ups); err != nil {
			b.Fatal(err)
		}
	}
	reportRate(b, len(ups))
}

// benchAblationRanged (A4) compares full-degree view payloads with
// ranged payloads (Figure 2d's RingCofactor<double, idx, cnt>): views
// carry only their own subtree's aggregates.
func benchAblationRanged(ranged bool) func(b *testing.B) {
	return func(b *testing.B) {
		db, fs, _, _ := retailerFixture(b, 5_000)
		ups := streamFixture(b, db, 1_000, 0.2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			var apply func([]view.Update) error
			var initFn func(map[string][]value.Tuple) error
			if ranged {
				eng, err := fivm.NewRangedCovarEngine(fs, rangedAttrs, nil)
				if err != nil {
					b.Fatal(err)
				}
				apply, initFn = eng.Apply, eng.Init
			} else {
				eng, err := fivm.NewCovarEngine(fs, rangedAttrs, nil)
				if err != nil {
					b.Fatal(err)
				}
				apply, initFn = eng.Apply, eng.Init
			}
			if err := initFn(db.TupleMap()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b, len(ups))
	}
}

// --- Serve: the concurrent serving pipeline ---------------------------------

// serveFixture builds a Retailer-backed serving engine at benchmark
// scale, bulk-loaded and ready for concurrent reads and ingestion.
func serveFixture(tb testing.TB, rows, workers int) (*serve.Server, []view.Update) {
	tb.Helper()
	cfg := dataset.DefaultRetailerConfig()
	cfg.InventoryRows = rows
	db := dataset.Retailer(cfg)
	var rels []fivm.RelationSpec
	for _, r := range db.Relations {
		rels = append(rels, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: rels,
		Label:     "inventoryunits",
		Features: []fivm.FeatureSpec{
			{Attr: "inventoryunits"},
			{Attr: "prize"},
			{Attr: "avghhi"},
			{Attr: "maxtemp"},
			{Attr: "subcategory", Categorical: true},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	if workers > 1 {
		an.SetParallelism(workers)
	}
	if err := an.Init(db.TupleMap()); err != nil {
		tb.Fatal(err)
	}
	srv, err := serve.New(an, serve.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	st, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: 20_000, DeleteRatio: 0.3, Seed: 23,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return srv, st.Updates
}

func reportLatencies(b *testing.B, lats []time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) == 0 {
		return
	}
	b.ReportMetric(float64(lats[len(lats)/2].Nanoseconds()), "p50-ns/read")
	b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns/read")
}

// benchServeIngest measures write-path throughput through the full
// pipeline (shard -> coalesce -> delta -> apply -> snapshot publish),
// one update per Ingest call.
func benchServeIngest(b *testing.B) {
	srv, ups := serveFixture(b, 5_000, 1)
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		if i%(2*len(ups)) >= len(ups) {
			u.Mult = -u.Mult // undo phase keeps state bounded
		}
		if _, err := srv.Ingest([]view.Update{u}); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(float64(st.Applied)/b.Elapsed().Seconds(), "updates/sec")
	b.ReportMetric(float64(st.Batches), "batches")
}

// benchServeIngestWorkers measures batched write-path throughput with
// parallel delta propagation: shards feed raw updates straight into the
// delta build, and the writer's ApplyBuilt hash-partitions each delta
// across the worker pool. Batches of 1000 keep the coalesced deltas
// above the view layer's parallel threshold.
func benchServeIngestWorkers(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		srv, ups := serveFixture(b, 5_000, workers)
		const batch = 1000
		b.ResetTimer()
		sent := 0
		for i := 0; i < b.N; i++ {
			lo := (i * batch) % len(ups)
			hi := lo + batch
			if hi > len(ups) {
				hi = len(ups)
			}
			if _, err := srv.Ingest(ups[lo:hi]); err != nil {
				b.Fatal(err)
			}
			sent += hi - lo
		}
		if err := srv.Close(); err != nil { // drain everything accepted
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "updates/sec")
	}
}

// benchServeSnapshotReads measures model-read latency against a live
// Server in two regimes: with the write path idle, and with a
// saturating background writer ingesting the update stream. Lock-free
// snapshots mean the reader p50 must not degrade when the writer runs —
// compare the p50-ns/read metric across the two entries.
func benchServeSnapshotReads(ingesting bool) func(b *testing.B) {
	return func(b *testing.B) {
		x := map[string]value.Value{
			"prize":       value.Float(10),
			"avghhi":      value.Float(60_000),
			"maxtemp":     value.Float(20),
			"subcategory": value.Int(1),
		}
		srv, ups := serveFixture(b, 5_000, 1)
		defer srv.Close()
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		ingestedBatches := 0
		if ingesting {
			go func() {
				defer close(writerDone)
				// Cycle the stream followed by its negation so engine
				// state stays bounded however long the benchmark runs.
				neg := make([]view.Update, len(ups))
				for i, u := range ups {
					neg[i] = view.Update{Rel: u.Rel, Tuple: u.Tuple, Mult: -u.Mult}
				}
				for phase := 0; ; phase++ {
					stream := ups
					if phase%2 == 1 {
						stream = neg
					}
					for i := 0; i < len(stream); i += 200 {
						select {
						case <-stop:
							return
						default:
						}
						end := i + 200
						if end > len(stream) {
							end = len(stream)
						}
						if _, err := srv.Ingest(stream[i:end]); err != nil {
							return
						}
						ingestedBatches++
					}
				}
			}()
		}
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			snap := srv.Snapshot()
			if _, err := snap.Predict(x); err != nil {
				b.Fatal(err)
			}
			lats = append(lats, time.Since(t0))
		}
		b.StopTimer()
		close(stop)
		if ingesting {
			<-writerDone
			if err := srv.Close(); err != nil { // drain, then final publish
				b.Fatal(err)
			}
			v := srv.Snapshot().Version
			if ingestedBatches > 0 && v < 2 {
				b.Fatalf("writer made no progress (snapshot version %d after %d batches)", v, ingestedBatches)
			}
			b.ReportMetric(float64(v), "snapshots")
		}
		reportLatencies(b, lats)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/sec")
	}
}

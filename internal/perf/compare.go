package perf

import (
	"fmt"
	"io"
	"strings"
)

// Thresholds bound the acceptable drift between a baseline report and
// a new one.
type Thresholds struct {
	// MaxRateDrop is the tolerated relative drop in updates/sec (or, for
	// benchmarks without a rate metric, the tolerated relative growth in
	// ns/op). 0.15 = 15%.
	MaxRateDrop float64
	// MaxAllocGrowth is the tolerated relative growth in allocs/op.
	// 0.10 = 10%.
	MaxAllocGrowth float64
	// AllocFloor is the absolute allocs/op growth always tolerated, so
	// single-digit benchmarks aren't failed by one incidental
	// allocation. Defaults to 16 via DefaultThresholds.
	AllocFloor int64
}

// DefaultThresholds returns the CI gate: >15% throughput regression or
// >10% allocs/op growth fails.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxRateDrop: 0.15, MaxAllocGrowth: 0.10, AllocFloor: 16}
}

// FindingKind classifies a comparison outcome.
type FindingKind string

// The finding kinds Compare emits. Only FindingRegression fails the
// gate: additions (benchmark in the candidate but not the baseline —
// the normal state of a PR that extends the suite before the baseline
// is refreshed) and removals are informational.
const (
	FindingRegression FindingKind = "REGRESSION"
	FindingAddition   FindingKind = "addition"
	FindingRemoval    FindingKind = "removed"
	FindingNote       FindingKind = "note"
)

// Finding is one comparison outcome. Kind is the single source of
// truth for severity; use IsRegression for gating.
type Finding struct {
	Name   string
	Kind   FindingKind
	Detail string
}

// IsRegression reports whether this finding fails the gate.
func (f Finding) IsRegression() bool { return f.Kind == FindingRegression }

// regression builds a failing finding.
func regression(name, detail string) Finding {
	return Finding{Name: name, Kind: FindingRegression, Detail: detail}
}

// Compare matches results by name and reports drift beyond the
// thresholds. Benchmarks present on only one side never fail the gate:
// candidates missing from the baseline are informational additions
// (FindingAddition — a refreshed suite compared against an old baseline
// is expected, not an error) and baseline entries missing from the
// candidate are removals; a regression in either rate or allocations
// fails that benchmark.
func Compare(baseline, current *Report, th Thresholds) (findings []Finding, ok bool) {
	ok = true
	// Rate metrics (updates/sec, ns/op) are hardware-dependent: a
	// baseline recorded on a different core count measures a different
	// machine, not a code change. Enforce only the hardware-independent
	// allocation budget in that case, loudly.
	sameEnv := baseline.GOMAXPROCS == current.GOMAXPROCS
	if !sameEnv {
		findings = append(findings, Finding{Name: "(environment)", Kind: FindingNote,
			Detail: fmt.Sprintf("baseline GOMAXPROCS=%d vs current GOMAXPROCS=%d: rate checks skipped, allocs/op still enforced — refresh BENCH_baseline.json on matching hardware (docs/PERF.md)",
				baseline.GOMAXPROCS, current.GOMAXPROCS)})
	}
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	seen := make(map[string]bool, len(current.Results))
	for _, cur := range current.Results {
		seen[cur.Name] = true
		old, inBase := base[cur.Name]
		if !inBase {
			findings = append(findings, Finding{Name: cur.Name, Kind: FindingAddition,
				Detail: "new benchmark, no baseline entry — informational; refresh BENCH_baseline.json to start gating it"})
			continue
		}

		switch {
		case !sameEnv:
			// rate not comparable; alloc check below still applies
		case old.UpdatesPerSec > 0 && cur.UpdatesPerSec > 0:
			if cur.UpdatesPerSec < old.UpdatesPerSec*(1-th.MaxRateDrop) {
				ok = false
				findings = append(findings, regression(cur.Name,
					fmt.Sprintf("updates/sec %.0f -> %.0f (-%.1f%%, budget %.0f%%)",
						old.UpdatesPerSec, cur.UpdatesPerSec, 100*(1-cur.UpdatesPerSec/old.UpdatesPerSec), 100*th.MaxRateDrop)))
			}
		case old.UpdatesPerSec > 0 && cur.UpdatesPerSec == 0:
			// The rate metric vanished (reportRate dropped or renamed):
			// the headline gate would silently degrade to ns/op, so say
			// so before falling back.
			findings = append(findings, Finding{Name: cur.Name, Kind: FindingNote,
				Detail: "updates/sec metric missing from current run (baseline had one); falling back to ns/op"})
			fallthrough
		case old.NsPerOp > 0:
			// Guard old.NsPerOp again: a fallthrough from the
			// missing-metric case skips this case's condition.
			if old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+th.MaxRateDrop) {
				ok = false
				findings = append(findings, regression(cur.Name,
					fmt.Sprintf("ns/op %.0f -> %.0f (+%.1f%%, budget %.0f%%)",
						old.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/old.NsPerOp-1), 100*th.MaxRateDrop)))
			}
		}

		if growth := cur.AllocsPerOp - old.AllocsPerOp; growth > th.AllocFloor &&
			float64(cur.AllocsPerOp) > float64(old.AllocsPerOp)*(1+th.MaxAllocGrowth) {
			ok = false
			findings = append(findings, regression(cur.Name,
				fmt.Sprintf("allocs/op %d -> %d (+%.1f%%, budget %.0f%%)",
					old.AllocsPerOp, cur.AllocsPerOp, 100*(float64(cur.AllocsPerOp)/float64(old.AllocsPerOp)-1), 100*th.MaxAllocGrowth)))
		}
	}
	for _, r := range baseline.Results {
		if !seen[r.Name] {
			findings = append(findings, Finding{Name: r.Name, Kind: FindingRemoval,
				Detail: "missing from current run (baseline entry unmatched)"})
		}
	}
	return findings, ok
}

// DefaultMaxScalingGrowth bounds UpdateLatencyScaling's 100k/1k ns/op
// ratio in CheckScaling. The indexed delta path measures ~1.4-1.9x
// (cache pressure from larger view maps); a single dropped index
// registration (one path join falling back to build-and-scan) shows
// from ~3x up, and a full return to scanning measures 10-40x. 3x
// leaves >1.5x headroom over the measured curve while catching partial
// regressions, not just total ones; a run that trips it on
// measurement noise can be retried or overridden with -max-growth.
const DefaultMaxScalingGrowth = 3.0

// CheckScaling verifies the O(|delta|) latency claim WITHIN one report,
// which makes it hardware-independent — unlike the rate thresholds of
// Compare, it needs no baseline from matching hardware: for every
// UpdateLatencyScaling family, the 100k-row ns/op must stay under
// maxGrowth times the 1k-row ns/op. This is the gate that catches a
// silent return to scan-the-sibling-view joins (whose latency grows
// linearly in the base while its allocs/op stay flat, so the allocation
// budget alone cannot catch it).
func CheckScaling(rep *Report, maxGrowth float64) (findings []Finding, ok bool) {
	ok = true
	// Group the scaling entries by family ("UpdateLatencyScaling/<kind>")
	// so a family missing either endpoint fails loudly instead of being
	// silently skipped — a gate that quietly covers fewer engine kinds
	// than the suite defines guards nothing.
	type endpoints struct{ ns1k, ns100k float64 }
	families := map[string]*endpoints{}
	order := []string{}
	for _, r := range rep.Results {
		if !strings.HasPrefix(r.Name, "UpdateLatencyScaling/") {
			continue
		}
		family, size, found := strings.Cut(strings.TrimPrefix(r.Name, "UpdateLatencyScaling/"), "/")
		if !found {
			continue
		}
		name := "UpdateLatencyScaling/" + family
		e := families[name]
		if e == nil {
			e = &endpoints{}
			families[name] = e
			order = append(order, name)
		}
		switch size {
		case "1k":
			e.ns1k = r.NsPerOp
		case "100k":
			e.ns100k = r.NsPerOp
		}
	}
	if len(families) == 0 {
		return []Finding{regression("(scaling)",
			"no UpdateLatencyScaling entries in the report — the flatness gate has nothing to check")}, false
	}
	for _, name := range order {
		e := families[name]
		if e.ns1k <= 0 || e.ns100k <= 0 {
			ok = false
			findings = append(findings, regression(name,
				"missing a 1k or 100k endpoint — the family's flatness cannot be checked"))
			continue
		}
		growth := e.ns100k / e.ns1k
		if growth > maxGrowth {
			ok = false
			findings = append(findings, regression(name,
				fmt.Sprintf("single-tuple latency grew %.1fx from 1k to 100k rows (%.0f -> %.0f ns/op, budget %.1fx): per-update cost is scaling with the database, not the delta",
					growth, e.ns1k, e.ns100k, maxGrowth)))
		} else {
			findings = append(findings, Finding{Name: name, Kind: FindingNote,
				Detail: fmt.Sprintf("1k -> 100k latency growth %.1fx (%.0f -> %.0f ns/op, budget %.1fx)",
					growth, e.ns1k, e.ns100k, maxGrowth)})
		}
	}
	return findings, ok
}

// DefaultMinParallelSpeedup is CheckParallel's floor on the 4-worker /
// 1-worker E2FIVM throughput ratio. With commit fused into the
// per-partition workers the whole maintenance path scales, so 4 workers
// on >= 4 cores comfortably clear 2x (propagation alone cleared less —
// Amdahl with a sequential commit tail); a return to a serialized
// commit, a lock held across a whole batch, or partitioning being
// silently skipped all push the ratio back toward (or below) 1.
const DefaultMinParallelSpeedup = 2.0

// checkParallelMinCPU is the core count below which CheckParallel
// cannot measure parallelism and reports a skip note instead of a
// verdict.
const checkParallelMinCPU = 4

// CheckParallel verifies multi-worker speedup WITHIN one report — both
// worker counts of an E8Workers family run in the same suite invocation
// on the same host, so like CheckScaling the gate is
// hardware-independent and needs no cross-machine baseline: the
// 4-worker E2FIVM run must sustain at least minSpeedup times the
// 1-worker throughput. Reports recorded with GOMAXPROCS below
// checkParallelMinCPU (the 1-CPU dev box) get a skip note and pass —
// the hardware cannot express the parallelism the gate measures.
// Additional "<family>/workersN" families in the report (e.g.
// E8WorkersCategorical) are reported informationally without gating.
func CheckParallel(rep *Report, minSpeedup float64) (findings []Finding, ok bool) {
	if rep.GOMAXPROCS < checkParallelMinCPU {
		return []Finding{{Name: "(parallel)", Kind: FindingNote,
			Detail: fmt.Sprintf("report recorded with GOMAXPROCS=%d < %d: %d-worker speedup is not measurable on this host, gate skipped",
				rep.GOMAXPROCS, checkParallelMinCPU, checkParallelMinCPU)}}, true
	}
	const gated = "E8Workers"
	type rates struct{ one, four float64 }
	families := map[string]*rates{}
	order := []string{}
	for _, r := range rep.Results {
		family, workers, found := strings.Cut(r.Name, "/workers")
		if !found {
			continue
		}
		e := families[family]
		if e == nil {
			e = &rates{}
			families[family] = e
			order = append(order, family)
		}
		// Prefer the rate metric; fall back to inverse latency so a
		// family without reportRate still yields a ratio.
		rate := r.UpdatesPerSec
		if rate == 0 && r.NsPerOp > 0 {
			rate = 1e9 / r.NsPerOp
		}
		switch workers {
		case "1":
			e.one = rate
		case "4":
			e.four = rate
		}
	}
	ok = true
	if families[gated] == nil {
		return []Finding{regression("(parallel)",
			fmt.Sprintf("no %s/workers{1,4} entries in the report — the parallel-speedup gate has nothing to check", gated))}, false
	}
	for _, family := range order {
		e := families[family]
		if e.one <= 0 || e.four <= 0 {
			if family == gated {
				ok = false
				findings = append(findings, regression(family,
					"missing a workers1 or workers4 endpoint — the family's speedup cannot be checked"))
			}
			continue
		}
		speedup := e.four / e.one
		switch {
		case family == gated && speedup < minSpeedup:
			ok = false
			findings = append(findings, regression(family,
				fmt.Sprintf("4-worker throughput is %.2fx the 1-worker run (%.0f -> %.0f updates/sec, floor %.1fx): parallel commit is not scaling",
					speedup, e.one, e.four, minSpeedup)))
		case family == gated:
			findings = append(findings, Finding{Name: family, Kind: FindingNote,
				Detail: fmt.Sprintf("4-worker speedup %.2fx (%.0f -> %.0f updates/sec, floor %.1fx)",
					speedup, e.one, e.four, minSpeedup)})
		default:
			findings = append(findings, Finding{Name: family, Kind: FindingNote,
				Detail: fmt.Sprintf("4-worker speedup %.2fx (%.0f -> %.0f updates/sec, informational)",
					speedup, e.one, e.four)})
		}
	}
	return findings, ok
}

// WriteFindings renders findings as one line each, tagged by kind
// (REGRESSION lines grep cleanly in CI logs), followed by a summary
// that counts suite drift so a refreshed suite against an old baseline
// reads as what it is — additions — rather than a wall of notes.
func WriteFindings(w io.Writer, findings []Finding, ok bool) {
	var added, removed int
	for _, f := range findings {
		switch f.Kind {
		case FindingAddition:
			added++
		case FindingRemoval:
			removed++
		}
		fmt.Fprintf(w, "%-10s %-40s %s\n", f.Kind, f.Name, f.Detail)
	}
	if added > 0 || removed > 0 {
		fmt.Fprintf(w, "perf: suite drift: %d added, %d removed (informational)\n", added, removed)
	}
	if ok {
		fmt.Fprintln(w, "perf: within thresholds")
	} else {
		fmt.Fprintln(w, "perf: REGRESSION beyond thresholds")
	}
}

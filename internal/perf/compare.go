package perf

import (
	"fmt"
	"io"
)

// Thresholds bound the acceptable drift between a baseline report and
// a new one.
type Thresholds struct {
	// MaxRateDrop is the tolerated relative drop in updates/sec (or, for
	// benchmarks without a rate metric, the tolerated relative growth in
	// ns/op). 0.15 = 15%.
	MaxRateDrop float64
	// MaxAllocGrowth is the tolerated relative growth in allocs/op.
	// 0.10 = 10%.
	MaxAllocGrowth float64
	// AllocFloor is the absolute allocs/op growth always tolerated, so
	// single-digit benchmarks aren't failed by one incidental
	// allocation. Defaults to 16 via DefaultThresholds.
	AllocFloor int64
}

// DefaultThresholds returns the CI gate: >15% throughput regression or
// >10% allocs/op growth fails.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxRateDrop: 0.15, MaxAllocGrowth: 0.10, AllocFloor: 16}
}

// Finding is one comparison outcome, regression or note.
type Finding struct {
	Name       string
	Regression bool
	Detail     string
}

// Compare matches results by name and reports drift beyond the
// thresholds. Benchmarks present on only one side produce notes, not
// regressions (the suite is allowed to grow and shrink); a regression
// in either rate or allocations fails that benchmark.
func Compare(baseline, current *Report, th Thresholds) (findings []Finding, ok bool) {
	ok = true
	// Rate metrics (updates/sec, ns/op) are hardware-dependent: a
	// baseline recorded on a different core count measures a different
	// machine, not a code change. Enforce only the hardware-independent
	// allocation budget in that case, loudly.
	sameEnv := baseline.GOMAXPROCS == current.GOMAXPROCS
	if !sameEnv {
		findings = append(findings, Finding{Name: "(environment)",
			Detail: fmt.Sprintf("baseline GOMAXPROCS=%d vs current GOMAXPROCS=%d: rate checks skipped, allocs/op still enforced — refresh BENCH_baseline.json on matching hardware (docs/PERF.md)",
				baseline.GOMAXPROCS, current.GOMAXPROCS)})
	}
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	seen := make(map[string]bool, len(current.Results))
	for _, cur := range current.Results {
		seen[cur.Name] = true
		old, inBase := base[cur.Name]
		if !inBase {
			findings = append(findings, Finding{Name: cur.Name, Detail: "new benchmark (no baseline entry)"})
			continue
		}

		switch {
		case !sameEnv:
			// rate not comparable; alloc check below still applies
		case old.UpdatesPerSec > 0 && cur.UpdatesPerSec > 0:
			if cur.UpdatesPerSec < old.UpdatesPerSec*(1-th.MaxRateDrop) {
				ok = false
				findings = append(findings, Finding{Name: cur.Name, Regression: true,
					Detail: fmt.Sprintf("updates/sec %.0f -> %.0f (-%.1f%%, budget %.0f%%)",
						old.UpdatesPerSec, cur.UpdatesPerSec, 100*(1-cur.UpdatesPerSec/old.UpdatesPerSec), 100*th.MaxRateDrop)})
			}
		case old.UpdatesPerSec > 0 && cur.UpdatesPerSec == 0:
			// The rate metric vanished (reportRate dropped or renamed):
			// the headline gate would silently degrade to ns/op, so say
			// so before falling back.
			findings = append(findings, Finding{Name: cur.Name,
				Detail: "updates/sec metric missing from current run (baseline had one); falling back to ns/op"})
			fallthrough
		case old.NsPerOp > 0:
			// Guard old.NsPerOp again: a fallthrough from the
			// missing-metric case skips this case's condition.
			if old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+th.MaxRateDrop) {
				ok = false
				findings = append(findings, Finding{Name: cur.Name, Regression: true,
					Detail: fmt.Sprintf("ns/op %.0f -> %.0f (+%.1f%%, budget %.0f%%)",
						old.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/old.NsPerOp-1), 100*th.MaxRateDrop)})
			}
		}

		if growth := cur.AllocsPerOp - old.AllocsPerOp; growth > th.AllocFloor &&
			float64(cur.AllocsPerOp) > float64(old.AllocsPerOp)*(1+th.MaxAllocGrowth) {
			ok = false
			findings = append(findings, Finding{Name: cur.Name, Regression: true,
				Detail: fmt.Sprintf("allocs/op %d -> %d (+%.1f%%, budget %.0f%%)",
					old.AllocsPerOp, cur.AllocsPerOp, 100*(float64(cur.AllocsPerOp)/float64(old.AllocsPerOp)-1), 100*th.MaxAllocGrowth)})
		}
	}
	for _, r := range baseline.Results {
		if !seen[r.Name] {
			findings = append(findings, Finding{Name: r.Name, Detail: "missing from current run (baseline entry unmatched)"})
		}
	}
	return findings, ok
}

// WriteFindings renders findings as one line each; regressions are
// prefixed REGRESSION so CI logs grep cleanly.
func WriteFindings(w io.Writer, findings []Finding, ok bool) {
	for _, f := range findings {
		tag := "note"
		if f.Regression {
			tag = "REGRESSION"
		}
		fmt.Fprintf(w, "%-10s %-40s %s\n", tag, f.Name, f.Detail)
	}
	if ok {
		fmt.Fprintln(w, "perf: within thresholds")
	} else {
		fmt.Fprintln(w, "perf: REGRESSION beyond thresholds")
	}
}

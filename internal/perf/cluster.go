package perf

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/fivm"
	"repro/fivm/client"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/value"
)

// --- ClusterIngest: sharded serving throughput -------------------------------

// wireTuple converts an engine tuple to the client's JSON wire form.
func wireTuple(t value.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case value.KindInt:
			out[i] = v.Int()
		case value.KindFloat:
			out[i] = v.Float()
		case value.KindString:
			out[i] = v.Str()
		default:
			out[i] = nil
		}
	}
	return out
}

// benchClusterIngest measures end-to-end write throughput through the
// cluster router: N in-process fivm-serve workers behind a router, the
// COVAR Retailer workload, anchor (Inventory) updates partitioned by
// join key and applied by the shards concurrently (the router fans each
// batch's per-shard sub-batches out in parallel with wait=1). shards=1
// is the single-worker baseline with identical HTTP and routing
// overhead, so the shards4/shards1 ratio isolates the sharding speedup
// — the clustercheck CI gate (CheckCluster).
func benchClusterIngest(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		db, fs, _, aggs := retailerFixture(b, 2_000)
		cfg := fivm.Config{Relations: fs, Attrs: aggs}
		// Workers hold the full non-anchor relations (broadcast state) and
		// an empty anchor; the measured stream is anchor-only, so every
		// update lands on exactly one shard.
		nonAnchor := db.TupleMap()
		delete(nonAnchor, "Inventory")
		ups := streamFixture(b, db, 4_000, 0.2)
		wire := make([]client.Update, len(ups))
		for i, u := range ups {
			wire[i] = client.Update{Rel: u.Rel, Tuple: wireTuple(u.Tuple)}
			if u.Mult != 1 {
				m := u.Mult
				wire[i].Mult = &m
			}
		}
		const batch = 500
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			var servers []*httptest.Server
			var pipes []*serve.Server
			urls := make([]string, shards)
			for s := 0; s < shards; s++ {
				eng, err := fivm.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Init(nonAnchor); err != nil {
					b.Fatal(err)
				}
				srv, err := serve.New(eng, serve.Config{})
				if err != nil {
					b.Fatal(err)
				}
				hs := httptest.NewServer(serve.NewHandler(srv))
				servers = append(servers, hs)
				pipes = append(pipes, srv)
				urls[s] = hs.URL
			}
			rt, err := cluster.New(cluster.Config{
				ShardURLs: urls, Engine: cfg, ShardBy: "Inventory", ProbeInterval: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			rhs := httptest.NewServer(rt.Handler())
			cli := client.New(rhs.URL, client.WithRetries(0))
			b.StartTimer()

			for j := 0; j < len(wire); j += batch {
				k := j + batch
				if k > len(wire) {
					k = len(wire)
				}
				if _, err := cli.Update(ctx, wire[j:k], true); err != nil {
					b.Fatal(err)
				}
			}

			b.StopTimer()
			rhs.Close()
			rt.Close()
			for s := range servers {
				servers[s].Close()
				pipes[s].Close()
			}
			b.StartTimer()
		}
		reportRate(b, len(ups))
	}
}

// --- clustercheck: the sharded-scaling CI gate -------------------------------

// DefaultMinClusterSpeedup is CheckCluster's floor on the 4-shard /
// 1-shard ClusterIngest throughput ratio. The shards apply disjoint
// anchor sub-batches concurrently, but each batch also pays one
// router-side JSON decode/re-encode and an HTTP round trip per shard,
// so the floor is below the parallel-commit gate's: 4 shards on >= 4
// cores must still clear 1.5x, and a return to sequential fan-out (or a
// shard map collapsing onto one shard) drops the ratio toward 1.
const DefaultMinClusterSpeedup = 1.5

// CheckCluster verifies sharded ingest scaling WITHIN one report — both
// shard counts of the ClusterIngest family run in the same suite
// invocation on the same host, so like CheckParallel the gate is
// hardware-independent and needs no cross-machine baseline: the 4-shard
// run must sustain at least minSpeedup times the 1-shard throughput.
// Reports recorded with GOMAXPROCS below 4 (the 1-CPU dev box) get a
// skip note and pass — the hardware cannot express the concurrency the
// gate measures. Additional "<family>/shardsN" families are reported
// informationally without gating.
func CheckCluster(rep *Report, minSpeedup float64) (findings []Finding, ok bool) {
	if rep.GOMAXPROCS < checkParallelMinCPU {
		return []Finding{{Name: "(cluster)", Kind: FindingNote,
			Detail: fmt.Sprintf("report recorded with GOMAXPROCS=%d < %d: %d-shard scaling is not measurable on this host, gate skipped",
				rep.GOMAXPROCS, checkParallelMinCPU, checkParallelMinCPU)}}, true
	}
	const gated = "ClusterIngest"
	type rates struct{ one, four float64 }
	families := map[string]*rates{}
	order := []string{}
	for _, r := range rep.Results {
		family, shards, found := strings.Cut(r.Name, "/shards")
		if !found {
			continue
		}
		e := families[family]
		if e == nil {
			e = &rates{}
			families[family] = e
			order = append(order, family)
		}
		rate := r.UpdatesPerSec
		if rate == 0 && r.NsPerOp > 0 {
			rate = 1e9 / r.NsPerOp
		}
		switch shards {
		case "1":
			e.one = rate
		case "4":
			e.four = rate
		}
	}
	ok = true
	if families[gated] == nil {
		return []Finding{regression("(cluster)",
			fmt.Sprintf("no %s/shards{1,4} entries in the report — the cluster-scaling gate has nothing to check", gated))}, false
	}
	for _, family := range order {
		e := families[family]
		if e.one <= 0 || e.four <= 0 {
			if family == gated {
				ok = false
				findings = append(findings, regression(family,
					"missing a shards1 or shards4 endpoint — the family's scaling cannot be checked"))
			}
			continue
		}
		speedup := e.four / e.one
		switch {
		case family == gated && speedup < minSpeedup:
			ok = false
			findings = append(findings, regression(family,
				fmt.Sprintf("4-shard throughput is %.2fx the 1-shard run (%.0f -> %.0f updates/sec, floor %.1fx): sharded ingest is not scaling",
					speedup, e.one, e.four, minSpeedup)))
		case family == gated:
			findings = append(findings, Finding{Name: family, Kind: FindingNote,
				Detail: fmt.Sprintf("4-shard speedup %.2fx (%.0f -> %.0f updates/sec, floor %.1fx)",
					speedup, e.one, e.four, minSpeedup)})
		default:
			findings = append(findings, Finding{Name: family, Kind: FindingNote,
				Detail: fmt.Sprintf("shards4/shards1 ratio %.2fx (%.0f -> %.0f updates/sec, ungated)",
					speedup, e.one, e.four)})
		}
	}
	return findings, ok
}

// Package daemon is the embeddable fivm-serve process: resolving an
// engine configuration from CLI-style options, wiring durability and the
// serving pipeline, and running the HTTP server until the context ends.
//
// cmd/fivm-serve is a thin flag front-end over it, and cmd/fivm-cluster
// reuses it verbatim for the workers its -spawn mode forks — one code
// path defines what a worker is.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/fivm"
	"repro/internal/serve"
	"repro/internal/value"
	"repro/internal/wal"
)

// Options mirrors the fivm-serve flag set. The zero value is invalid;
// fill in at least DB or Relations. See Validate.
type Options struct {
	// Addr is the HTTP listen address, e.g. ":8344".
	Addr string
	// DB selects a demo preset (retailer|favorita); mutually exclusive
	// with the custom-schema options below.
	DB string
	// Rows overrides the preset's fact-table row count (0 = default).
	Rows int
	// Load bulk-loads the generated preset data at startup.
	Load bool
	// Engine forces the engine kind; empty infers it from the other
	// options (see fivm.Open).
	Engine string
	// Query is the SQL-subset query for count/float engines.
	Query string
	// Relations declares a custom schema, e.g. "R:A,B;S:B,C".
	Relations string
	// Features declares analysis features, e.g. "A,B:cat,C:bin=10".
	Features string
	// Attrs declares covar aggregate attributes, e.g. "A,B,C".
	Attrs string
	// Label is the ridge label attribute (preset default when DB is
	// set; empty disables fitting).
	Label string

	// WALDir enables crash-safe durability (write-ahead log plus
	// incremental checkpoints, recovered at startup).
	WALDir string
	// FsyncPolicy is the WAL sync policy: always|interval|off.
	FsyncPolicy string
	// FsyncInterval paces background fsync under the interval policy.
	FsyncInterval time.Duration
	// CheckpointInterval paces incremental checkpoints (<0 disables the
	// periodic loop; a final checkpoint is still written on shutdown).
	CheckpointInterval time.Duration
	// SegmentBytes is the WAL segment rotation size.
	SegmentBytes int64
	// StatePath is the deprecated snapshot-file persistence mode.
	StatePath string
	// PersistInterval also persists StatePath periodically (0 disables).
	PersistInterval time.Duration

	// MaxBatch, ChannelCap, HighWatermark tune the ingestion pipeline
	// (serve.Config).
	MaxBatch      int
	ChannelCap    int
	HighWatermark int
	// DedupCap bounds the idempotency dedup table (serve.Config.DedupCap;
	// 0 = default).
	DedupCap int
	// Workers enables parallel delta propagation (-1 = GOMAXPROCS).
	Workers int
	// Trace logs one structured line per batch and snapshot publish.
	Trace bool

	// Logf receives progress lines; nil selects log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ServeConfig maps the pipeline options onto a serve.Config (without
// the WAL, which Run opens itself).
func (o Options) ServeConfig() serve.Config {
	return serve.Config{
		MaxBatch:           o.MaxBatch,
		ChannelCap:         o.ChannelCap,
		HighWatermark:      o.HighWatermark,
		DedupCap:           o.DedupCap,
		CheckpointInterval: o.CheckpointInterval,
	}
}

// Validate reports the first configuration error Run would hit, without
// opening the engine, starting the pipeline, or touching disk. Errors
// carry exactly the text the underlying layer produces — a bad pipeline
// knob fails with serve.Config.Validate's message, a bad schema with
// the parser's — so front-ends can print them verbatim before starting.
func (o Options) Validate() error {
	if _, _, err := o.EngineConfig(); err != nil {
		return err
	}
	if o.WALDir != "" && o.StatePath != "" {
		return errors.New("-state is deprecated and superseded by -wal; drop -state (the WAL directory carries checkpoints)")
	}
	// An invalid policy is a bad flag even without -wal: a typo must not
	// silently pass and then bite when the directory is added later.
	switch wal.Policy(o.FsyncPolicy) {
	case "", wal.PolicyAlways, wal.PolicyInterval, wal.PolicyOff:
	default:
		return fmt.Errorf("bad -fsync policy %q (want always|interval|off)", o.FsyncPolicy)
	}
	return o.ServeConfig().Validate()
}

// EngineConfig resolves the engine configuration and initial bulk-load
// data from the options (see BuildEngineConfig).
func (o Options) EngineConfig() (fivm.Config, map[string][]value.Tuple, error) {
	cfg, data, err := BuildEngineConfig(o.DB, o.Rows, o.Load, o.Engine, o.Query, o.Relations, o.Features, o.Attrs, o.Label)
	if err != nil {
		return cfg, nil, err
	}
	cfg.Workers = o.Workers
	return cfg, data, nil
}

// Run opens the engine, recovers durability state, and serves HTTP on
// o.Addr until ctx is cancelled, then shuts down gracefully (draining
// accepted updates and, with a WAL, writing a final checkpoint).
func Run(ctx context.Context, o Options) error {
	cfg, initData, err := o.EngineConfig()
	if err != nil {
		return err
	}
	eng, err := fivm.Open(cfg)
	if err != nil {
		return err
	}
	if o.WALDir != "" && o.StatePath != "" {
		return errors.New("-state is deprecated and superseded by -wal; drop -state (the WAL directory carries checkpoints)")
	}
	var w *wal.WAL
	if o.WALDir != "" {
		w, err = wal.Open(wal.Config{
			Dir:           o.WALDir,
			Fsync:         wal.Policy(o.FsyncPolicy),
			FsyncInterval: o.FsyncInterval,
			SegmentBytes:  o.SegmentBytes,
		})
		if err != nil {
			return err
		}
		defer w.Close()
		// Preset bulk-load only on a cold start: once a checkpoint
		// exists it already contains the loaded data (the boot
		// checkpoint below guarantees one after the first start).
		if w.Checkpoint() == nil && initData != nil {
			if err := eng.Init(initData); err != nil {
				return err
			}
			o.logf("loaded %d relations", len(initData))
		}
		info, err := serve.Recover(eng, w)
		if err != nil {
			return fmt.Errorf("recovering %s: %w", o.WALDir, err)
		}
		o.logf("recovered from %s: checkpoint seq=%d (%d updates), replayed %d batches (%d updates)",
			o.WALDir, info.CheckpointSeq, info.CheckpointUpdates, info.ReplayedBatches, info.ReplayedUpdates)
	} else if o.StatePath != "" {
		o.logf("warning: -state is deprecated; use -wal for crash-safe durability")
		if f, err := os.Open(o.StatePath); err == nil {
			err = eng.ReadSnapshot(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restoring %s: %w", o.StatePath, err)
			}
			o.logf("restored state from %s", o.StatePath)
			initData = nil // the state file wins over the generated preset data
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	if initData != nil && o.WALDir == "" {
		if err := eng.Init(initData); err != nil {
			return err
		}
		o.logf("loaded %d relations", len(initData))
	}

	scfg := o.ServeConfig()
	scfg.WAL = w
	if o.Trace {
		scfg.TraceLog = log.New(os.Stderr, "trace ", log.LstdFlags|log.Lmicroseconds)
	}
	srv, err := serve.New(eng, scfg)
	if err != nil {
		return err
	}
	if w != nil {
		// Boot checkpoint: makes the recovered (and possibly just
		// bulk-loaded) state the durable baseline and lets replayed
		// segments be pruned right away.
		if err := srv.Checkpoint(); err != nil {
			return fmt.Errorf("boot checkpoint: %w", err)
		}
	}

	if o.StatePath != "" && o.PersistInterval > 0 {
		go func() {
			t := time.NewTicker(o.PersistInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := persist(srv, o.StatePath); err != nil {
						o.logf("persist: %v", err)
					}
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		srv.Close()
		return err
	}
	httpSrv := &http.Server{Handler: serve.NewHandler(srv)}
	serveErr := make(chan error, 1)
	go func() {
		o.logf("fivm-serve listening on %s (engine=%s, snapshot v%d, count=%v)",
			ln.Addr(), srv.Kind(), srv.Snapshot().Version, srv.Snapshot().Count())
		serveErr <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	o.logf("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		o.logf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil { // drains every accepted update; with a WAL, writes the final checkpoint
		o.logf("server close: %v", err)
	}
	if o.StatePath != "" {
		// All pipeline goroutines have stopped; write directly.
		if err := writeState(eng, o.StatePath); err != nil {
			o.logf("final persist: %v", err)
		} else {
			o.logf("state persisted to %s", o.StatePath)
		}
	}
	st := srv.Stats()
	o.logf("done: %d updates ingested, %d batches, %d snapshots", st.Ingested, st.Batches, st.Snapshots)
	return nil
}

// persist writes the engine state via the writer goroutine.
func persist(srv *serve.Server, path string) error {
	var werr error
	err := srv.Sync(func(eng serve.Maintainable) { werr = writeState(eng, path) })
	if err != nil {
		return err
	}
	return werr
}

// writeState persists a -state snapshot crash-atomically: the temp file
// is fsynced before the rename and the directory after it, so a crash
// anywhere in between leaves either the old complete file or the new
// one, never a truncated or unlinked state.
func writeState(eng serve.Maintainable, path string) error {
	return wal.WriteFileAtomic(path, eng.WriteSnapshot)
}

package daemon

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/fivm"
	"repro/internal/dataset"
	"repro/internal/value"
)

// BuildEngineConfig resolves the engine configuration from either a
// preset database or the custom CLI options. For presets it also
// resolves the default label (returned via the config) and the initial
// bulk-load data, if any.
func BuildEngineConfig(db string, rows int, load bool, engine, query, relations, features, attrs, label string) (fivm.Config, map[string][]value.Tuple, error) {
	cfg := fivm.Config{Kind: fivm.Kind(engine), Query: query}
	if db != "" && (features != "" || attrs != "" || relations != "" || query != "" || engine != "") {
		// The presets define their own schema, features, and engine
		// kind; silently overriding any of them would serve a different
		// engine than asked, and passing them through would surface as
		// confusing fivm.Open errors blaming flags the user never set.
		return cfg, nil, fmt.Errorf("-db %s defines its own relations, features, and engine kind; drop -relations/-features/-attrs/-query/-engine", db)
	}
	switch db {
	case "retailer":
		rcfg := dataset.DefaultRetailerConfig()
		if rows > 0 {
			rcfg.InventoryRows = rows
		}
		d := dataset.Retailer(rcfg)
		for _, r := range d.Relations {
			cfg.Relations = append(cfg.Relations, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		}
		cfg.Features = []fivm.FeatureSpec{
			{Attr: "inventoryunits"},
			{Attr: "prize"},
			{Attr: "subcategory", Categorical: true},
			{Attr: "category", Categorical: true},
			{Attr: "categoryCluster", Categorical: true},
			{Attr: "avghhi"},
			{Attr: "maxtemp"},
		}
		if label == "" {
			label = "inventoryunits"
		}
		cfg.Label = label
		if load {
			return cfg, d.TupleMap(), nil
		}
		return cfg, nil, nil
	case "favorita":
		fcfg := dataset.DefaultFavoritaConfig()
		if rows > 0 {
			fcfg.SalesRows = rows
		}
		d := dataset.Favorita(fcfg)
		for _, r := range d.Relations {
			cfg.Relations = append(cfg.Relations, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		}
		cfg.Features = []fivm.FeatureSpec{
			{Attr: "unit_sales"},
			{Attr: "family", Categorical: true},
			{Attr: "perishable", Categorical: true},
			{Attr: "stype", Categorical: true},
			{Attr: "cluster", Categorical: true},
			{Attr: "oilprice"},
			{Attr: "transactions"},
		}
		if label == "" {
			label = "unit_sales"
		}
		cfg.Label = label
		if load {
			return cfg, d.TupleMap(), nil
		}
		return cfg, nil, nil
	case "":
		var err error
		cfg.Relations, err = ParseRelations(relations)
		if err != nil {
			return cfg, nil, err
		}
		if features != "" {
			cfg.Features, err = ParseFeatures(features)
			if err != nil {
				return cfg, nil, err
			}
		}
		if attrs != "" {
			for _, a := range strings.Split(attrs, ",") {
				if a = strings.TrimSpace(a); a != "" {
					cfg.Attrs = append(cfg.Attrs, a)
				}
			}
		}
		cfg.Label = label
		return cfg, nil, nil
	default:
		return cfg, nil, fmt.Errorf("unknown -db %q (retailer|favorita, or use -relations)", db)
	}
}

// ParseRelations parses "R:A,B;S:B,C".
func ParseRelations(s string) ([]fivm.RelationSpec, error) {
	if s == "" {
		return nil, errors.New("either -db or -relations is required")
	}
	var out []fivm.RelationSpec
	for _, part := range strings.Split(s, ";") {
		name, attrs, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" || attrs == "" {
			return nil, fmt.Errorf("bad relation %q (want Name:attr1,attr2)", part)
		}
		spec := fivm.RelationSpec{Name: strings.TrimSpace(name)}
		for _, a := range strings.Split(attrs, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("empty attribute in relation %q", part)
			}
			spec.Attrs = append(spec.Attrs, a)
		}
		out = append(out, spec)
	}
	return out, nil
}

// ParseFeatures parses "A,B:cat,C:bin=10" — continuous by default,
// ":cat" for categorical, ":bin=W" for equi-width binning.
func ParseFeatures(s string) ([]fivm.FeatureSpec, error) {
	var out []fivm.FeatureSpec
	for _, part := range strings.Split(s, ",") {
		attr, kind, hasKind := strings.Cut(strings.TrimSpace(part), ":")
		if attr == "" {
			return nil, fmt.Errorf("empty feature in %q", s)
		}
		f := fivm.FeatureSpec{Attr: attr}
		if hasKind {
			switch {
			case kind == "cat":
				f.Categorical = true
			case strings.HasPrefix(kind, "bin="):
				w, err := strconv.ParseFloat(kind[len("bin="):], 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("bad bin width in feature %q", part)
				}
				f.BinWidth = w
			default:
				return nil, fmt.Errorf("bad feature kind %q (want cat or bin=W)", kind)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

package serve

import (
	"testing"
	"time"

	"repro/fivm"
	"repro/internal/view"
	"repro/internal/wal"
)

func testBatchID(seq uint64) wal.BatchID {
	id := wal.BatchID{Seq: seq}
	copy(id.Origin[:], "dedup-test-origin")
	return id
}

func waitClosed(t *testing.T, done <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s not applied within 5s", what)
	}
}

// TestIngestBatchDedupsReplay replays an already-applied batch ID and
// requires the replay to be the identity: done closes with nothing
// re-applied, every update reported deduped, the ingested counter and
// the model unchanged.
func TestIngestBatchDedupsReplay(t *testing.T) {
	eng, err := fivm.Open(walEngineConfigs()["count"])
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A multi-relation batch: dedup granularity is (ID, relation), so
	// the replay must suppress both groups.
	ups := append(walSSeeds(), walRUpdate(1), walRUpdate(2))
	id := testBatchID(1)
	done, deduped, err := srv.IngestBatch(id, ups)
	if err != nil {
		t.Fatal(err)
	}
	if deduped != 0 {
		t.Fatalf("fresh batch reported %d deduped updates", deduped)
	}
	waitClosed(t, done, "fresh batch")
	ingested := srv.Stats().Ingested
	model := modelJSON(t, eng)

	done2, deduped2, err := srv.IngestBatch(id, ups)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if deduped2 != len(ups) {
		t.Errorf("replay deduped %d of %d updates", deduped2, len(ups))
	}
	waitClosed(t, done2, "replayed batch")
	if got := srv.Stats().Ingested; got != ingested {
		t.Errorf("ingested counter moved on replay: %d -> %d", ingested, got)
	}
	if got := modelJSON(t, eng); got != model {
		t.Errorf("model changed on replay:\n got %s\nwas %s", got, model)
	}
	if st := srv.DedupStatus(); st.Hits != uint64(len(ups)) {
		t.Errorf("dedup hits = %d, want %d", st.Hits, len(ups))
	}

	// A fresh ID with the same content is NOT a duplicate.
	done3, deduped3, err := srv.IngestBatch(testBatchID(2), ups)
	if err != nil {
		t.Fatal(err)
	}
	if deduped3 != 0 {
		t.Errorf("distinct ID deduped %d updates", deduped3)
	}
	waitClosed(t, done3, "distinct-ID batch")
	if got := modelJSON(t, eng); got == model {
		t.Error("distinct ID applied nothing (model unchanged)")
	}
}

// TestDedupSurvivesKillRecovery crashes a durable server after one
// acknowledged identified batch (no final checkpoint — the WAL is
// closed out from under it, what SIGKILL leaves behind) and requires
// the recovered server to still recognize the batch ID: the retry a
// client sends after the crash must dedup, not double-apply.
func TestDedupSurvivesKillRecovery(t *testing.T) {
	cfg := walEngineConfigs()["count"]
	dir := t.TempDir()
	w, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Config{WAL: w, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ups := append(walSSeeds(), walRUpdate(1))
	id := testBatchID(9)
	done, _, err := srv.IngestBatch(id, ups)
	if err != nil {
		t.Fatal(err)
	}
	waitClosed(t, done, "identified batch")
	// Crash: the WAL closes first, so Close cannot write the final
	// checkpoint — the log (with the batch-ID trailer) is all that
	// survives, exactly like a kill.
	w.Close()
	_ = srv.Close()

	w2, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(eng2, w2); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(eng2, Config{WAL: w2, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	model := modelJSON(t, eng2)
	done2, deduped, err := srv2.IngestBatch(id, ups)
	if err != nil {
		t.Fatalf("post-recovery replay: %v", err)
	}
	if deduped != len(ups) {
		t.Errorf("post-recovery replay deduped %d of %d updates", deduped, len(ups))
	}
	waitClosed(t, done2, "post-recovery replay")
	if got := modelJSON(t, eng2); got != model {
		t.Errorf("recovered model changed on replayed batch ID:\n got %s\nwas %s", got, model)
	}

	// The count aggregate confirms nothing was applied twice: it must
	// equal a clean engine fed the stream once.
	clean, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var once []view.Update
	once = append(once, ups...)
	if err := clean.Apply(once); err != nil {
		t.Fatal(err)
	}
	if got, want := modelJSON(t, eng2), modelJSON(t, clean); got != want {
		t.Errorf("recovered+replayed model diverges from exactly-once application:\n got %s\nwant %s", got, want)
	}
}

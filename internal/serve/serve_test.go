package serve

import (
	"testing"
	"time"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
)

// testAnalysis builds a two-relation engine R(A,B) ⋈ S(B,C) with
// continuous features A and B (B is the serving label) and categorical
// feature C. All test data is integer-valued so float sums are exact
// regardless of batch application order.
func testAnalysis(t testing.TB) *fivm.Analysis {
	t.Helper()
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{
			{Name: "R", Attrs: []string{"A", "B"}},
			{Name: "S", Attrs: []string{"B", "C"}},
		},
		Features: []fivm.FeatureSpec{
			{Attr: "A"},
			{Attr: "B"},
			{Attr: "C", Categorical: true},
		},
		Label: "B",
	})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// seedUpdates returns n R-inserts joined 1:1 against k S rows.
func seedUpdates(n, k int) []view.Update {
	ups := make([]view.Update, 0, n+k)
	for j := 0; j < k; j++ {
		ups = append(ups, view.Update{Rel: "S", Tuple: value.T(j, j%3), Mult: 1})
	}
	for i := 0; i < n; i++ {
		ups = append(ups, view.Update{Rel: "R", Tuple: value.T(i, i%k), Mult: 1})
	}
	return ups
}

func newTestServer(t testing.TB) *Server {
	t.Helper()
	srv, err := New(testAnalysis(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func ingestWait(t testing.TB, srv *Server, ups []view.Update) {
	t.Helper()
	done, err := srv.Ingest(ups)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest did not drain")
	}
}

func TestIngestWaitReflectsInSnapshot(t *testing.T) {
	srv := newTestServer(t)
	if v := srv.Snapshot().Version; v != 1 {
		t.Fatalf("initial snapshot version = %d, want 1", v)
	}
	ingestWait(t, srv, seedUpdates(100, 10))
	snap := srv.Snapshot()
	if got := snap.Count(); got != 100 {
		t.Fatalf("join count = %v, want 100", got)
	}
	am, ok := snap.Model.(*fivm.AnalysisModel)
	if !ok {
		t.Fatalf("snapshot model = %T, want *fivm.AnalysisModel", snap.Model)
	}
	if am.Model == nil {
		t.Fatalf("no model after ingest: %s", am.FitErr)
	}
	if _, err := snap.Predict(map[string]value.Value{"A": value.Int(5), "C": value.Int(1)}); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	st := srv.Stats()
	if st.Ingested != 110 || st.Applied != 110 {
		t.Fatalf("stats = %+v, want Ingested=Applied=110", st)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	srv := newTestServer(t)
	ingestWait(t, srv, seedUpdates(50, 5))
	old := srv.Snapshot()
	oldCount := old.Count()
	ingestWait(t, srv, []view.Update{{Rel: "R", Tuple: value.T(999, 0), Mult: 1}})
	if got := old.Count(); got != oldCount {
		t.Fatalf("old snapshot changed: count %v -> %v", oldCount, got)
	}
	fresh := srv.Snapshot()
	if fresh.Version <= old.Version {
		t.Fatalf("version did not advance: %d -> %d", old.Version, fresh.Version)
	}
	if fresh.Count() != oldCount+1 {
		t.Fatalf("fresh count = %v, want %v", fresh.Count(), oldCount+1)
	}
}

func TestCancellingBatchLeavesStateUnchanged(t *testing.T) {
	srv := newTestServer(t)
	ingestWait(t, srv, seedUpdates(20, 4))
	before := srv.Snapshot().Count()
	// An insert and a matching delete in one Ingest call coalesce away.
	ingestWait(t, srv, []view.Update{
		{Rel: "R", Tuple: value.T(500, 1), Mult: 1},
		{Rel: "R", Tuple: value.T(500, 1), Mult: -1},
	})
	if got := srv.Snapshot().Count(); got != before {
		t.Fatalf("count = %v, want %v after cancelling batch", got, before)
	}
}

func TestDeletesMaintainModel(t *testing.T) {
	srv := newTestServer(t)
	ingestWait(t, srv, seedUpdates(30, 3))
	// Delete every R row joined to b=0: R tuples with i%3 == 0.
	var dels []view.Update
	for i := 0; i < 30; i += 3 {
		dels = append(dels, view.Update{Rel: "R", Tuple: value.T(i, 0), Mult: -1})
	}
	ingestWait(t, srv, dels)
	if got := srv.Snapshot().Count(); got != 20 {
		t.Fatalf("count after deletes = %v, want 20", got)
	}
}

func TestIngestErrors(t *testing.T) {
	srv := newTestServer(t)
	if _, err := srv.Ingest([]view.Update{{Rel: "Nope", Tuple: value.T(1, 2), Mult: 1}}); err == nil {
		t.Fatal("expected error for unknown relation")
	}
	// Wrong arity must be rejected at the door — inside the pipeline it
	// would panic a batcher goroutine and take the server down.
	if _, err := srv.Ingest([]view.Update{{Rel: "R", Tuple: value.T(1, 2, 3), Mult: 1}}); err == nil {
		t.Fatal("expected error for wrong tuple arity")
	}
	done, err := srv.Ingest(nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("empty ingest should complete immediately")
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	srv, err := New(testAnalysis(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Ingest(seedUpdates(200, 8)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Snapshot().Count(); got != 200 {
		t.Fatalf("count after Close = %v, want 200 (Close must drain)", got)
	}
	if _, err := srv.Ingest(seedUpdates(1, 1)); err != ErrClosed {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := srv.Sync(func(Maintainable) {}); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSyncRunsOnWriter(t *testing.T) {
	srv := newTestServer(t)
	ingestWait(t, srv, seedUpdates(10, 2))
	var stats view.Stats
	if err := srv.Sync(func(eng Maintainable) { stats = eng.Stats() }); err != nil {
		t.Fatal(err)
	}
	if stats.Updates == 0 {
		t.Fatal("Sync saw no engine activity")
	}
}

// The serving label is validated where it is configured: at engine
// construction. A categorical or unknown label must never reach the
// pipeline.
func TestAnalysisRejectsBadServingLabel(t *testing.T) {
	cfg := fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{{Name: "R", Attrs: []string{"A", "B"}}},
		Features:  []fivm.FeatureSpec{{Attr: "A"}, {Attr: "B", Categorical: true}},
	}
	cfg.Label = "B"
	if _, err := fivm.NewAnalysis(cfg); err == nil {
		t.Fatal("expected error for categorical label")
	}
	cfg.Label = "Z"
	if _, err := fivm.NewAnalysis(cfg); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

func TestPredictValidation(t *testing.T) {
	srv := newTestServer(t)
	ingestWait(t, srv, seedUpdates(40, 4))
	snap := srv.Snapshot()
	if _, err := snap.Predict(map[string]value.Value{"A": value.Int(1)}); err == nil {
		t.Fatal("expected error for missing feature C")
	}
	// Unseen category: valid, one-hot block contributes nothing.
	if _, err := snap.Predict(map[string]value.Value{"A": value.Int(1), "C": value.Int(77)}); err != nil {
		t.Fatalf("unseen category should predict: %v", err)
	}
}

// Binned features one-hot over bin indexes, so Predict must discretize
// raw inputs the same way the lift did — any value inside a bin must
// predict identically to any other value in that bin, and differently
// from a value in another bin.
func TestPredictBinsRawInputs(t *testing.T) {
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{{Name: "R", Attrs: []string{"X", "C"}}},
		Features:  []fivm.FeatureSpec{{Attr: "X"}, {Attr: "C", BinWidth: 10}},
		Label:     "X",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(an, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	var ups []view.Update
	for i := 0; i < 30; i++ {
		// Bin 0 (C≈5) pairs with low X, bin 2 (C≈25) with high X.
		ups = append(ups,
			view.Update{Rel: "R", Tuple: value.T(i%5, 5), Mult: 1},
			view.Update{Rel: "R", Tuple: value.T(100+i%5, 25), Mult: 1})
	}
	ingestWait(t, srv, ups)
	snap := srv.Snapshot()
	pred := func(c value.Value) float64 {
		t.Helper()
		p, err := snap.Predict(map[string]value.Value{"C": c})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	inBin2, alsoBin2, inBin0 := pred(value.Float(25)), pred(value.Float(22.7)), pred(value.Int(5))
	if inBin2 != alsoBin2 {
		t.Fatalf("same-bin inputs predict differently: %v vs %v", inBin2, alsoBin2)
	}
	if diff := inBin2 - inBin0; diff < 50 {
		t.Fatalf("bins not distinguished: bin2=%v bin0=%v (want ≈100 apart)", inBin2, inBin0)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want value.Value
	}{
		{"3", value.Int(3)},
		{"-7", value.Int(-7)},
		{"2.5", value.Float(2.5)},
		{"abc", value.String("abc")},
		{"", value.Null()},
		{"null", value.Null()},
	}
	for _, c := range cases {
		if got := ParseValue(c.in); !got.Equal(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/fivm"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/wal"
)

// walEngineConfigs spans all six ring kinds over the same two-relation
// schema R(A,B) ⋈ S(A,C,D), so one kill-and-recover harness proves the
// recovery invariant for every payload type.
func walEngineConfigs() map[string]fivm.Config {
	rels := func() []fivm.RelationSpec {
		return []fivm.RelationSpec{
			{Name: "R", Attrs: []string{"A", "B"}},
			{Name: "S", Attrs: []string{"A", "C", "D"}},
		}
	}
	return map[string]fivm.Config{
		"count":       {Relations: rels(), Query: "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"},
		"float":       {Relations: rels(), Query: "SELECT SUM(B * D) FROM R NATURAL JOIN S"},
		"covar":       {Relations: rels(), Attrs: []string{"B", "D"}},
		"rangedcovar": {Kind: fivm.KindRangedCovar, Relations: rels(), Attrs: []string{"B", "D"}},
		"join":        {Relations: rels()},
		"analysis":    {Relations: rels(), Features: []fivm.FeatureSpec{{Attr: "B"}, {Attr: "C", Categorical: true}, {Attr: "D"}}, Label: "D"},
	}
}

func walSSeeds() []view.Update {
	return []view.Update{
		{Rel: "S", Tuple: value.T("a1", 1, 1), Mult: 1},
		{Rel: "S", Tuple: value.T("a1", 2, 3), Mult: 1},
		{Rel: "S", Tuple: value.T("a2", 2, 2), Mult: 1},
	}
}

func walRUpdate(i int) view.Update {
	return view.Update{Rel: "R", Tuple: value.T(fmt.Sprintf("a%d", i%3+1), i), Mult: 1}
}

// modelJSON renders an engine's published result deterministically for
// bit-identical comparison (result iteration is sorted).
func modelJSON(t *testing.T, eng Maintainable) string {
	t.Helper()
	res, err := eng.PublishModel(nil).ResultJSON()
	if err != nil {
		return "err:" + err.Error()
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// tornWriteFile injects a crash into the WAL's file layer: writes pass
// through to the real file until the byte budget runs out, then the
// crossing write lands partially and fails — producing a genuinely torn
// record on disk that the real recovery path must truncate.
type tornWriteFile struct {
	f      *os.File
	budget *atomic.Int64
}

func (w *tornWriteFile) Write(p []byte) (int, error) {
	b := w.budget.Load()
	if int64(len(p)) <= b {
		w.budget.Store(b - int64(len(p)))
		return w.f.Write(p)
	}
	n := 0
	if b > 0 {
		n, _ = w.f.Write(p[:b])
		w.budget.Store(0)
	}
	return n, errors.New("injected torn write (simulated kill mid-batch)")
}

func (w *tornWriteFile) Sync() error  { return w.f.Sync() }
func (w *tornWriteFile) Close() error { return w.f.Close() }

// tornOpenSegment tears writes on rel's shard after budget bytes; other
// shards get plain files.
func tornOpenSegment(rel string, budget *atomic.Int64) func(string) (wal.WriteFile, error) {
	marker := string(os.PathSeparator) + rel + string(os.PathSeparator)
	return func(path string) (wal.WriteFile, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if strings.Contains(path, marker) {
			return &tornWriteFile{f: f, budget: budget}, nil
		}
		return f, nil
	}
}

// TestKillMidBatchRecoversAckedPrefix is the durability subsystem's
// core proof, run under -race for all six ring kinds: the writer is
// killed mid-batch by a fault injected at the WAL file layer (a write
// that lands partially and fails, exactly what SIGKILL during a page
// write leaves behind), and the recovered engine must be bit-identical
// to a clean engine that applied exactly the acknowledged prefix of the
// update stream. Ingestion is serial — at most one batch in flight — so
// the acknowledged prefix is exact, not a bound.
func TestKillMidBatchRecoversAckedPrefix(t *testing.T) {
	for name, cfg := range walEngineConfigs() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			var budget atomic.Int64
			budget.Store(700) // several R batches, then a torn write
			w, err := wal.Open(wal.Config{
				Dir:           dir,
				Fsync:         wal.PolicyInterval,
				FsyncInterval: time.Hour, // isolate the torn write as the only fault
				OpenSegment:   tornOpenSegment("R", &budget),
			})
			if err != nil {
				t.Fatal(err)
			}
			eng, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(eng, Config{WAL: w, CheckpointInterval: -1})
			if err != nil {
				t.Fatal(err)
			}

			// Seed S fully acknowledged, then stream R serially until the
			// injected tear crashes the pipeline.
			acked := make([]view.Update, 0, 256)
			done, err := srv.Ingest(walSSeeds())
			if err != nil {
				t.Fatal(err)
			}
			<-done
			acked = append(acked, walSSeeds()...)

			crashed := false
			for i := 0; i < 400 && !crashed; i++ {
				up := walRUpdate(i)
				done, err := srv.Ingest([]view.Update{up})
				if err != nil {
					crashed = true
					break
				}
				select {
				case <-done:
					acked = append(acked, up)
				case <-srv.crashed:
					// The in-flight batch tore mid-append: never
					// acknowledged, must not be recovered.
					crashed = true
				}
			}
			if !crashed {
				t.Fatal("fault injection never fired — raise the update count or lower the byte budget")
			}

			// The poisoned pipeline reports the crash on every surface
			// and shuts down without deadlock or a tainted checkpoint.
			if _, err := srv.Ingest([]view.Update{walRUpdate(0)}); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Ingest after crash = %v, want ErrCrashed", err)
			}
			if err := srv.Sync(func(Maintainable) {}); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Sync after crash = %v, want ErrCrashed", err)
			}
			if ws := srv.WALStatus(); !ws.Crashed || ws.CrashError == "" {
				t.Fatalf("WALStatus after crash = %+v, want Crashed", ws)
			}
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			if cp := w.Checkpoint(); cp != nil {
				t.Fatal("crashed Close wrote a checkpoint over the clean log")
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover from the real files (no injection) into a fresh
			// engine and compare against a clean replay of the acked
			// prefix.
			w2, err := wal.Open(wal.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			recovered, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			info, err := Recover(recovered, w2)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if info.ReplayedUpdates != uint64(len(acked)) {
				t.Fatalf("recovery replayed %d updates, want the %d acknowledged", info.ReplayedUpdates, len(acked))
			}

			clean, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := clean.Apply(acked); err != nil {
				t.Fatal(err)
			}
			if got, want := modelJSON(t, recovered), modelJSON(t, clean); got != want {
				t.Fatalf("recovered model diverges from the acknowledged prefix:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestServeWALCheckpointRecovery covers the no-crash lifecycle: ingest,
// checkpoint mid-stream, ingest more, close (final checkpoint), then
// recover into a fresh engine — which must equal a clean engine that
// applied the whole stream, with the replay starting past the final
// checkpoint (nothing re-applied).
func TestServeWALCheckpointRecovery(t *testing.T) {
	cfg := walEngineConfigs()["count"]
	dir := t.TempDir()
	w, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Config{WAL: w, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	var all []view.Update
	ingest := func(ups []view.Update) {
		t.Helper()
		done, err := srv.Ingest(ups)
		if err != nil {
			t.Fatal(err)
		}
		<-done
		all = append(all, ups...)
	}
	ingest(walSSeeds())
	for i := 0; i < 20; i++ {
		ingest([]view.Update{walRUpdate(i)})
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cpApplied := srv.WALStatus().AppliedUpdates
	if cpApplied != uint64(len(all)) {
		t.Fatalf("checkpoint covers %d updates, want %d", cpApplied, len(all))
	}
	for i := 20; i < 35; i++ {
		ingest([]view.Update{walRUpdate(i)})
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recovered, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Recover(recovered, w2)
	if err != nil {
		t.Fatal(err)
	}
	// Close wrote a final checkpoint covering everything: replay is empty
	// and the restored positions carry the cumulative update count.
	if info.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches past the final checkpoint, want 0", info.ReplayedBatches)
	}
	if info.CheckpointUpdates != uint64(len(all)) {
		t.Fatalf("final checkpoint covers %d updates, want %d", info.CheckpointUpdates, len(all))
	}
	clean, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Apply(all); err != nil {
		t.Fatal(err)
	}
	if got, want := modelJSON(t, recovered), modelJSON(t, clean); got != want {
		t.Fatalf("recovered model diverges:\n got %s\nwant %s", got, want)
	}

	// A server booted on the recovered state continues the stream and
	// reports the recovered counters.
	srv2, err := New(recovered, Config{WAL: w2, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if ws := srv2.WALStatus(); !ws.Enabled || ws.RecoveredUpdates != uint64(len(all)) {
		t.Fatalf("WALStatus after recovery = %+v, want recovered_updates=%d", ws, len(all))
	}
	done, err := srv2.Ingest([]view.Update{walRUpdate(100)})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if ws := srv2.WALStatus(); ws.AppliedUpdates != uint64(len(all))+1 {
		t.Fatalf("applied_updates after one more ingest = %d, want %d", ws.AppliedUpdates, len(all)+1)
	}
}

// TestWALAppendOnBatcherPathStaysCoalesced pins that running with a WAL
// keeps the pipeline semantics: read-your-writes acks, coalescing, and
// stats all behave as without one.
func TestWALAppendOnBatcherPathStaysCoalesced(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	srv, err := New(testAnalysis(t), Config{WAL: w, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ingestWait(t, srv, seedUpdates(64, 8))
	st := srv.Stats()
	if st.Applied != 72 || st.Ingested != 72 {
		t.Fatalf("stats %+v, want 72 applied/ingested", st)
	}
	ws := srv.WALStatus()
	if !ws.Enabled || ws.AppendedBatches == 0 || ws.AppliedUpdates != 72 {
		t.Fatalf("WALStatus %+v, want appends recorded and applied_updates=72", ws)
	}
}

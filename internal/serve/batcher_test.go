package serve

import (
	"sync"
	"testing"

	"repro/internal/value"
	"repro/internal/view"
)

// TestBatcherCollectSteadyStateAllocs pins the scratch-buffer contract
// of the batcher's collect step: once the shard's reusable update
// buffer has grown to the flush size, collecting a multi-message round
// must not allocate for the update slice at all — the only per-round
// allocations are the waiter list, which escapes into the batch and
// cannot be reused. The budget is therefore a small constant,
// independent of how many updates flow through the round (here 3
// messages × 64 updates; a per-update or per-copy allocation would blow
// the budget immediately).
func TestBatcherCollectSteadyStateAllocs(t *testing.T) {
	const msgs, perMsg = 3, 64
	sh := &shard{rel: "R", arity: 2, ch: make(chan ingestMsg, msgs)}
	ups := make([]view.Update, perMsg)
	for i := range ups {
		ups[i] = view.Update{Rel: "R", Tuple: value.T(i, i), Mult: 1}
	}
	var wg sync.WaitGroup
	run := func() {
		for i := 0; i < msgs; i++ {
			sh.ch <- ingestMsg{ups: ups, wg: &wg}
		}
		first := <-sh.ch
		got, wgs, _, closed := sh.collect(first, 8192)
		if closed {
			t.Fatal("channel unexpectedly closed")
		}
		if len(got) != msgs*perMsg || len(wgs) != msgs {
			t.Fatalf("collected %d updates / %d waiters, want %d / %d", len(got), len(wgs), msgs*perMsg, msgs)
		}
	}
	run() // grow sh.buf to the steady-state capacity
	allocs := testing.AllocsPerRun(100, run)
	// The waiter list is 1–2 allocations (append growth); anything above
	// a small constant means the update buffer reuse regressed.
	if allocs > 4 {
		t.Errorf("steady-state collect allocates %.0f times per round, want <= 4 (update slice must reuse sh.buf)", allocs)
	}
}

// TestBatcherCollectSingleMessagePassthrough asserts the zero-copy
// fast path: a round with nothing queued behind the first message must
// hand the ingester's slice through untouched (no copy into the shard
// buffer).
func TestBatcherCollectSingleMessagePassthrough(t *testing.T) {
	sh := &shard{rel: "R", arity: 2, ch: make(chan ingestMsg, 1)}
	ups := []view.Update{{Rel: "R", Tuple: value.T(1, 2), Mult: 1}}
	got, wgs, _, closed := sh.collect(ingestMsg{ups: ups}, 8192)
	if closed || len(wgs) != 1 {
		t.Fatalf("unexpected collect result: closed=%v wgs=%d", closed, len(wgs))
	}
	if &got[0] != &ups[0] {
		t.Error("single-message round copied the ingester's slice instead of passing it through")
	}
}

package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/view"
	"repro/internal/wal"
)

// RecoveryInfo summarizes one Recover pass.
type RecoveryInfo struct {
	// CheckpointSeq is the restored checkpoint's sequence number, 0 when
	// no valid checkpoint was found (cold start or first boot).
	CheckpointSeq uint64
	// CheckpointUpdates is the cumulative ingested-update count the
	// restored checkpoint covered.
	CheckpointUpdates uint64
	// ReplayedBatches and ReplayedUpdates count the logged batches
	// applied past the checkpoint.
	ReplayedBatches uint64
	ReplayedUpdates uint64
}

// Recover restores an engine from a WAL: the newest valid checkpoint
// (if any) through ReadSnapshot, then a replay of every logged batch
// past it through BuildDelta/ApplyBuilt. Call it on a freshly opened
// engine before New, and pass the same WAL in Config.WAL so the live
// pipeline's positions continue where recovery left off.
//
// Replay errors abort recovery: a log that names a relation the engine
// does not know (schema drift against an old WAL directory) is a
// configuration error, not corruption — torn and corrupt records were
// already truncated away by wal.Open and never reach the engine.
func Recover(eng Maintainable, w *wal.WAL) (RecoveryInfo, error) {
	var info RecoveryInfo
	if cp := w.Checkpoint(); cp != nil {
		r, err := cp.Open()
		if err != nil {
			return info, fmt.Errorf("serve: opening checkpoint: %w", err)
		}
		err = eng.ReadSnapshot(r)
		cerr := r.Close()
		if err != nil {
			return info, fmt.Errorf("serve: restoring checkpoint %s: %w", cp.Path, err)
		}
		if cerr != nil {
			return info, cerr
		}
		info.CheckpointSeq = cp.Seq
		info.CheckpointUpdates = cp.Positions.Applied
	}
	st, err := w.Replay(func(rel string, _ uint64, ups []view.Update) error {
		d, err := eng.BuildDelta(rel, ups)
		if err != nil {
			return err
		}
		return eng.ApplyBuilt(rel, d)
	})
	info.ReplayedBatches = st.Batches
	info.ReplayedUpdates = st.Updates
	return info, err
}

// walFail poisons the pipeline after a WAL append failure. The failing
// batch is never handed to the writer and its waiters never release:
// the engine state stays a clean prefix of the logged stream, so a
// restart recovers exactly the acknowledged updates.
func (s *Server) walFail(err error) {
	s.crashOnce.Do(func() {
		s.crashErr = fmt.Errorf("%w: %v", ErrCrashed, err)
		close(s.crashed)
	})
}

// CrashError reports the WAL failure that crashed the pipeline, nil
// while healthy. /healthz surfaces it (and turns 503).
func (s *Server) CrashError() error {
	select {
	case <-s.crashed:
		return s.crashErr
	default:
		return nil
	}
}

// Checkpoint writes an incremental checkpoint: the engine snapshot plus
// the WAL positions it covers, taken on the writer goroutine between
// batches so snapshot and positions are mutually consistent. After it
// commits, segments it fully covers are pruned. The pipeline is stalled
// for the duration of the snapshot write.
func (s *Server) Checkpoint() error {
	w := s.cfg.WAL
	if w == nil {
		return errors.New("serve: no WAL configured")
	}
	var cperr error
	if err := s.Sync(func(m Maintainable) {
		cperr = w.WriteCheckpoint(copyPositions(s.walPos), m.WriteSnapshot)
	}); err != nil {
		return err
	}
	return cperr
}

// checkpointLoop writes a checkpoint every CheckpointInterval until the
// server closes or crashes.
func (s *Server) checkpointLoop() {
	defer s.cpWG.Done()
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.cpStop:
			return
		case <-s.crashed:
			return
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				if errors.Is(err, ErrClosed) || errors.Is(err, ErrCrashed) {
					return
				}
				if s.cfg.TraceLog != nil {
					s.cfg.TraceLog.Printf("checkpoint err=%v", err)
				}
			}
		}
	}
}

// finalCheckpoint runs at the end of Close, after the writer exits and
// the engine is exclusively owned again. Skipped after a crash: the
// possibly partial in-memory state must not become the recovery
// baseline when the log already holds the clean prefix.
func (s *Server) finalCheckpoint() error {
	if s.cfg.WAL == nil || s.CrashError() != nil {
		return nil
	}
	return s.cfg.WAL.WriteCheckpoint(copyPositions(s.walPos), s.eng.WriteSnapshot)
}

// WALStatus is the durability section of /stats and /healthz.
type WALStatus struct {
	Enabled bool `json:"enabled"`
	// AppendedBatches and AppendedBytes count records logged by this
	// process.
	AppendedBatches uint64 `json:"appended_batches"`
	AppendedBytes   uint64 `json:"appended_bytes"`
	// Segments is the number of live segment files across shards.
	Segments int64 `json:"segments"`
	// CheckpointSeq and CheckpointAgeSeconds describe the newest valid
	// checkpoint (age falls back to time since boot when none exists).
	CheckpointSeq        uint64  `json:"checkpoint_seq"`
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds"`
	// RecoveredUpdates and RecoveredBatches are what boot recovery
	// restored: the checkpoint's cumulative coverage plus replayed log
	// records. Both are cumulative across restarts, so after a clean
	// quiesce-kill-restart cycle recovered_updates is at least the
	// applied count observed before the kill.
	RecoveredUpdates uint64 `json:"recovered_updates"`
	RecoveredBatches uint64 `json:"recovered_batches"`
	// AppliedUpdates and AppliedBatches are the cumulative counts the
	// current WAL positions cover (recovered plus applied since boot) —
	// what the next checkpoint will stamp.
	AppliedUpdates uint64 `json:"applied_updates"`
	AppliedBatches uint64 `json:"applied_batches"`
	// TruncatedBytes and RemovedSegments report what boot recovery
	// discarded as torn or unreachable.
	TruncatedBytes  uint64 `json:"truncated_bytes"`
	RemovedSegments int64  `json:"removed_segments"`
	// Crashed flags a poisoned pipeline (see CrashError).
	Crashed    bool   `json:"crashed"`
	CrashError string `json:"crash_error,omitempty"`
}

// WALStatus reports the durability subsystem's state; the zero value
// (Enabled false) when the server runs without a WAL.
func (s *Server) WALStatus() WALStatus {
	w := s.cfg.WAL
	if w == nil {
		return WALStatus{}
	}
	st := w.Stats()
	ws := WALStatus{
		Enabled:              true,
		AppendedBatches:      st.AppendedBatches,
		AppendedBytes:        st.AppendedBytes,
		Segments:             st.Segments,
		CheckpointSeq:        st.CheckpointSeq,
		CheckpointAgeSeconds: w.CheckpointAge().Seconds(),
		RecoveredUpdates:     s.walRecovered.Applied,
		RecoveredBatches:     s.walRecovered.Batches,
		AppliedUpdates:       s.walApplied.Load(),
		AppliedBatches:       s.walBatches.Load(),
		TruncatedBytes:       st.TruncatedBytes,
		RemovedSegments:      st.RemovedSegments,
	}
	if err := s.CrashError(); err != nil {
		ws.Crashed = true
		ws.CrashError = err.Error()
	}
	return ws
}

func copyPositions(p wal.Positions) wal.Positions {
	out := p
	out.Shards = make(map[string]uint64, len(p.Shards))
	for k, v := range p.Shards {
		out.Shards[k] = v
	}
	return out
}

package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/view"
	"repro/internal/wal"
)

// BatchIDHeader carries a client batch ID on POST /v1/update. See
// wal.BatchID for the format and docs/API.md for the protocol.
const BatchIDHeader = "X-Fivm-Batch-Id"

// dedupKey identifies one relation group of one client batch. Dedup is
// per (batch, relation), not per batch: a request's updates are grouped
// by relation at ingest and each group travels — and is WAL-logged —
// independently, so after a crash some groups of a batch may be durable
// while others are not. Group granularity lets a retry re-apply exactly
// the missing groups.
type dedupKey struct {
	id  wal.BatchID
	rel string
}

// dedupEntry records that one relation group of an identified batch has
// been enqueued (and, once done closes, applied and published). A
// duplicate delivery waits on done instead of re-enqueueing — for ring
// payloads that wait IS the original ack, since the group's effect is
// already (or about to be) in the model.
type dedupEntry struct {
	key      dedupKey
	accepted int             // updates the group carried
	done     <-chan struct{} // closed once applied + published (may arrive pre-closed from recovery)
}

// dedupTable is the bounded recently-applied-batch memory behind
// exactly-once ingest. Entries evict FIFO once cap is exceeded,
// skipping in-flight entries (their done has not closed) so an entry
// can never disappear between enqueue and ack. The capacity bounds the
// retry window: a duplicate arriving after its entry was evicted
// re-applies, so retry policies must give up long before cap batches of
// newer traffic have passed (see docs/ARCHITECTURE.md).
type dedupTable struct {
	mu   sync.Mutex
	cap  int
	m    map[dedupKey]*dedupEntry
	fifo []*dedupEntry // insertion order; evicted from the front

	hits atomic.Uint64 // duplicate updates answered from the table
}

func newDedupTable(capacity int) *dedupTable {
	return &dedupTable{cap: capacity, m: make(map[dedupKey]*dedupEntry, capacity/4)}
}

// get returns the entry for key, or nil. Caller holds mu.
func (t *dedupTable) get(key dedupKey) *dedupEntry { return t.m[key] }

// put inserts an entry, evicting the oldest completed entries to stay
// within cap. Caller holds mu.
func (t *dedupTable) put(e *dedupEntry) {
	for scan := len(t.fifo); len(t.m) >= t.cap && scan > 0; scan-- {
		old := t.fifo[0]
		t.fifo = t.fifo[1:]
		if old == nil {
			continue
		}
		select {
		case <-old.done:
			delete(t.m, old.key) // completed: safe to forget
		default:
			t.fifo = append(t.fifo, old) // in-flight: rotate to the back
		}
	}
	t.m[e.key] = e
	t.fifo = append(t.fifo, e)
}

// size returns the live entry count (for the metrics gauge).
func (t *dedupTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// closedChan is the pre-closed done shared by recovery-seeded entries.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// seedRecovered loads the batch refs WAL replay found into the table as
// completed entries, so a router retrying a batch the crashed process
// had already logged gets a dedup hit instead of a double-apply.
func (t *dedupTable) seedRecovered(refs []wal.RecoveredRef) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range refs {
		key := dedupKey{id: r.ID, rel: r.Rel}
		if t.m[key] != nil {
			continue
		}
		t.put(&dedupEntry{key: key, accepted: r.Updates, done: closedChan})
	}
}

// IngestBatch is Ingest for identified batches: id stamps the call so a
// redelivery of the same (id, body) — a client or router retry after a
// lost response — is answered from the dedup table instead of applied
// again. Retries MUST resend the identical update list under an id;
// the table dedups per (id, relation) group and trusts the id, it does
// not compare bodies.
//
// The returned done channel closes once every group of THIS call —
// freshly enqueued or already in flight from the original delivery —
// is applied and published (read-your-writes, exactly like Ingest).
// deduped reports how many of the call's updates were suppressed as
// duplicates; an ack for a fully deduplicated batch has deduped ==
// len(ups). A zero id degrades to plain Ingest.
func (s *Server) IngestBatch(id wal.BatchID, ups []view.Update) (done <-chan struct{}, deduped int, err error) {
	if id.IsZero() {
		d, err := s.Ingest(ups)
		return d, 0, err
	}
	dch := make(chan struct{})
	if len(ups) == 0 {
		close(dch)
		return dch, 0, nil
	}
	// Validate and group exactly like Ingest: nothing may be enqueued —
	// or entered into the dedup table — unless the whole call is valid.
	order, groups, err := s.groupUpdates(ups)
	if err != nil {
		return nil, 0, err
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	if err := s.CrashError(); err != nil {
		s.mu.RUnlock()
		return nil, 0, err
	}

	// Partition the groups under the table lock: groups with an entry
	// join the original delivery's wait; the rest are fresh and must
	// pass admission control before any entry is created (a shed call
	// leaves no trace, so its retry is not mistaken for a duplicate).
	t := s.dedup
	t.mu.Lock()
	waits := make([]<-chan struct{}, 0, len(order))
	fresh := order[:0:len(order)] // reuse order's backing array; order is not read again
	freshUps := 0
	for _, rel := range order {
		if e := t.get(dedupKey{id: id, rel: rel}); e != nil {
			waits = append(waits, e.done)
			deduped += len(groups[rel])
			continue
		}
		fresh = append(fresh, rel)
		freshUps += len(groups[rel])
	}
	for _, rel := range fresh {
		if ch := s.shards[rel].ch; len(ch) >= s.cfg.HighWatermark {
			t.mu.Unlock()
			s.shed.Add(uint64(len(ups)))
			s.mu.RUnlock()
			return nil, 0, &OverloadError{Rel: rel, Depth: len(ch), Capacity: cap(ch)}
		}
	}
	if deduped > 0 {
		t.hits.Add(uint64(deduped))
	}
	groupDones := make([]chan struct{}, len(fresh))
	for i, rel := range fresh {
		gd := make(chan struct{})
		groupDones[i] = gd
		t.put(&dedupEntry{key: dedupKey{id: id, rel: rel}, accepted: len(groups[rel]), done: gd})
		waits = append(waits, gd)
	}
	t.mu.Unlock()

	if freshUps > 0 {
		s.ingested.Add(uint64(freshUps))
	}
	now := time.Now()
	for i, rel := range fresh {
		wg := &sync.WaitGroup{}
		wg.Add(1)
		ref := wal.BatchRef{ID: id, Updates: len(groups[rel])}
		select {
		case s.shards[rel].ch <- ingestMsg{ups: groups[rel], wg: wg, at: now, ref: ref}:
		case <-s.crashed:
			// Groups already sent keep their in-flight entries; like a
			// crashed Ingest, their done never closes — crash semantics.
			s.mu.RUnlock()
			return nil, 0, s.crashErr
		}
		gd := groupDones[i]
		go func() {
			wg.Wait()
			close(gd)
		}()
	}
	s.mu.RUnlock()

	go func() {
		for _, w := range waits {
			<-w
		}
		close(dch)
	}()
	return dch, deduped, nil
}

// DedupStatus reports the idempotency table for /v1/stats.
type DedupStatus struct {
	// Entries is the current table size; Capacity its bound (the retry
	// window, in recently seen batch groups).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits counts duplicate groups answered from the table.
	Hits uint64 `json:"hits"`
}

// DedupStatus returns the idempotency table's live counters.
func (s *Server) DedupStatus() DedupStatus {
	return DedupStatus{Entries: s.dedup.size(), Capacity: s.dedup.cap, Hits: s.dedup.hits.Load()}
}

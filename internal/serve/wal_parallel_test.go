package serve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/fivm"
	"repro/internal/view"
	"repro/internal/wal"
)

// TestKillDuringParallelCommitRecoversAckedPrefix is the durability
// proof for the parallel commit path: the engine runs with 4 workers
// and every ingested batch carries more distinct tuples than
// view.DefaultParallelThreshold, so both the live applies and the
// recovery replay fan out across commit workers. The writer is killed
// mid-batch by the same torn-write fault injector as the sequential
// kill test, and the recovered engine must be bit-identical to a clean
// parallel engine that applied exactly the acknowledged prefix —
// proving a crash cannot expose a half-committed parallel batch.
func TestKillDuringParallelCommitRecoversAckedPrefix(t *testing.T) {
	const workers = 4
	// More distinct tuples per batch than the default parallel threshold
	// (128), so every R batch takes the concurrent commit path.
	const batchTuples = 160
	for name, cfg := range walEngineConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.Workers = workers
			dir := t.TempDir()
			var budget atomic.Int64
			budget.Store(30_000) // a few full R batches, then a torn write
			w, err := wal.Open(wal.Config{
				Dir:           dir,
				Fsync:         wal.PolicyInterval,
				FsyncInterval: time.Hour, // isolate the torn write as the only fault
				OpenSegment:   tornOpenSegment("R", &budget),
			})
			if err != nil {
				t.Fatal(err)
			}
			eng, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(eng, Config{WAL: w, CheckpointInterval: -1})
			if err != nil {
				t.Fatal(err)
			}

			acked := make([]view.Update, 0, 4096)
			done, err := srv.Ingest(walSSeeds())
			if err != nil {
				t.Fatal(err)
			}
			<-done
			acked = append(acked, walSSeeds()...)

			crashed := false
			next := 0
			for b := 0; b < 64 && !crashed; b++ {
				batch := make([]view.Update, 0, batchTuples)
				for i := 0; i < batchTuples; i++ {
					batch = append(batch, walRUpdate(next))
					next++
				}
				done, err := srv.Ingest(batch)
				if err != nil {
					crashed = true
					break
				}
				select {
				case <-done:
					acked = append(acked, batch...)
				case <-srv.crashed:
					// The in-flight batch tore mid-append while its parallel
					// commit was pending: never acknowledged, must not be
					// recovered.
					crashed = true
				}
			}
			if !crashed {
				t.Fatal("fault injection never fired — raise the batch count or lower the byte budget")
			}
			if _, err := srv.Ingest([]view.Update{walRUpdate(0)}); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Ingest after crash = %v, want ErrCrashed", err)
			}
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover from the real files into a fresh engine with the SAME
			// worker configuration, so the replay itself exercises parallel
			// commits, and compare against a clean parallel engine that
			// applied exactly the acknowledged prefix.
			w2, err := wal.Open(wal.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			recovered, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			info, err := Recover(recovered, w2)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if info.ReplayedUpdates != uint64(len(acked)) {
				t.Fatalf("recovery replayed %d updates, want the %d acknowledged", info.ReplayedUpdates, len(acked))
			}

			clean, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := clean.Apply(acked); err != nil {
				t.Fatal(err)
			}
			if got, want := modelJSON(t, recovered), modelJSON(t, clean); got != want {
				t.Fatalf("recovered model diverges from the acknowledged prefix:\n got %s\nwant %s", got, want)
			}
		})
	}
}

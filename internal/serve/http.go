package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/wal"
)

// The v1 wire protocol (see docs/API.md for full schemas):
//
//	POST /v1/update   {"updates":[{"rel":"R","tuple":[1,2.5,"x"],"mult":1}]}
//	                  ?wait=1 blocks until the batch is applied and a
//	                  snapshot reflecting it is published; 429 +
//	                  Retry-After when a target ingest queue is over the
//	                  high-watermark
//	GET  /v1/predict  ?attr=value&... one query parameter per feature
//	                  (analysis engines with a label only)
//	GET  /v1/model    the published model, rendered per engine kind
//	GET  /v1/stats    serving + maintenance counters, snapshot version
//	                  and age, per-shard queue depths, shed counts
//	GET  /v1/viewtree the maintained view tree (text)
//	GET  /v1/healthz  liveness + staleness (snapshot version/age, queues)
//	GET  /v1/partial  the shard's partial result relation in the binary
//	                  partial format, for cross-shard merging; the
//	                  X-Fivm-Applied header carries the cumulative
//	                  applied-update counter the body covers
//	GET  /metrics     Prometheus text exposition (unversioned by scrape
//	                  convention)
//
// Every error response uses one envelope: {"error": "...", "code":
// "...", "retry_after_ms": n} (retry_after_ms only on retryable
// errors, mirroring the Retry-After header). The legacy unversioned
// routes remain as deprecated aliases answering identically plus a
// Deprecation header and a Link to the v1 successor.

// Error codes of the v1 envelope. The code is the stable programmatic
// discriminator; the error text is for humans and may change.
const (
	CodeBadRequest     = "bad_request"     // 400: malformed body or values
	CodeTimeout        = "timeout"         // 408: ?wait=1 outlived the request context
	CodeOverloaded     = "overloaded"      // 429: admission control shed the batch
	CodeUnprocessable  = "unprocessable"   // 422: the engine cannot answer (e.g. no predictor)
	CodeUnavailable    = "unavailable"     // 503: closed, crashed, or no result yet
	CodeNotImplemented = "not_implemented" // 501: engine lacks the capability (e.g. no codec)
	CodeInternal       = "internal"        // 500: unexpected failure
)

// ErrorEnvelope is the uniform v1 error body.
type ErrorEnvelope struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// NewHandler exposes a Server over HTTP/JSON. The surface is identical
// for every hosted engine kind; /v1/model renders the engine's own
// model shape (ridge weights for analysis, rows for count/float/join,
// the compound aggregate for COVAR).
//
// Every route is instrumented with a latency histogram and
// status-class counters (fivm_http_request_seconds,
// fivm_http_requests_total); the v1 route and its legacy alias count as
// distinct routes, so a dashboard shows alias traffic draining.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"POST", "/update", s.handleUpdate},
		{"GET", "/predict", s.handlePredict},
		{"GET", "/model", s.handleModel},
		{"GET", "/stats", s.handleStats},
		{"GET", "/viewtree", s.handleViewTree},
		{"GET", "/healthz", s.handleHealthz},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" /v1"+rt.path, s.instrument("/v1"+rt.path, rt.h))
		mux.HandleFunc(rt.method+" "+rt.path, s.instrument(rt.path, deprecated("/v1"+rt.path, rt.h)))
	}
	mux.HandleFunc("GET /v1/partial", s.instrument("/v1/partial", s.handlePartial))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// deprecated wraps a legacy unversioned route: the same handler, plus a
// Deprecation header (RFC 9745) and a Link to the v1 successor so
// clients can migrate mechanically.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// statusRecorder captures the response code for the status-class
// counters; handlers that never call WriteHeader implicitly return 200.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the route's pre-registered latency
// histogram and status counters.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.met.httpLat[route]
	codes := s.met.httpCodes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(&rec, r)
		hist.Observe(time.Since(t0).Seconds())
		class := rec.code/100 - 2
		if class < 0 || class >= len(codeClasses) {
			class = len(codeClasses) - 1
		}
		codes[class].Inc()
	}
}

// UpdateJSON is the wire form of one tuple update in a POST /v1/update
// body. Mult defaults to 1 (insert) when omitted; negative deletes.
type UpdateJSON struct {
	Rel   string `json:"rel"`
	Tuple []any  `json:"tuple"`
	Mult  *int   `json:"mult,omitempty"`
}

type updateRequest struct {
	Updates []UpdateJSON `json:"updates"`
}

// DecodeUpdates parses a v1 update request body, returning both the
// raw wire updates (numbers preserved as json.Number, so re-encoding a
// sub-batch is lossless) and their typed form. Exported for the cluster
// router, which decodes once, partitions by join key, and forwards
// per-shard sub-batches.
func DecodeUpdates(r io.Reader) ([]UpdateJSON, []view.Update, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var req updateRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("decoding body: %w", err)
	}
	ups := make([]view.Update, 0, len(req.Updates))
	for i, u := range req.Updates {
		tuple := make(value.Tuple, len(u.Tuple))
		for j, f := range u.Tuple {
			v, err := ValueFromJSON(f)
			if err != nil {
				return nil, nil, fmt.Errorf("updates[%d].tuple[%d]: %w", i, j, err)
			}
			tuple[j] = v
		}
		mult := 1
		if u.Mult != nil {
			mult = *u.Mult
		}
		ups = append(ups, view.Update{Rel: u.Rel, Tuple: tuple, Mult: mult})
	}
	return req.Updates, ups, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	_, ups, err := DecodeUpdates(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	// An X-Fivm-Batch-Id header makes the request idempotent: a
	// redelivery of the same ID (with the identical body — see
	// IngestBatch) is answered from the dedup table, not applied again.
	var id wal.BatchID
	if h := r.Header.Get(BatchIDHeader); h != "" {
		if id, err = wal.ParseBatchID(h); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
	}
	done, deduped, err := s.IngestBatch(id, ups)
	if err != nil {
		var oe *OverloadError
		switch {
		case errors.As(err, &oe):
			// Backpressure, not failure: tell the client when to come
			// back instead of blocking its connection behind the backlog.
			writeRetryErr(w, http.StatusTooManyRequests, CodeOverloaded, err, time.Second)
		case errors.Is(err, ErrClosed) || errors.Is(err, ErrCrashed):
			writeErr(w, http.StatusServiceUnavailable, CodeUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		}
		return
	}
	applied := false
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-done:
			applied = true
		case <-r.Context().Done():
			writeErr(w, http.StatusRequestTimeout, CodeTimeout, r.Context().Err())
			return
		}
	}
	ack := map[string]any{"accepted": len(ups), "applied": applied}
	if deduped > 0 {
		// Routers subtract deduped from what they count as newly acked,
		// keeping per-shard acked counters equal to applied ones even
		// when a retry races a delivery that actually succeeded.
		ack["deduped"] = deduped
	}
	writeJSON(w, http.StatusAccepted, ack)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	x := make(map[string]value.Value)
	for k, vs := range r.URL.Query() {
		if len(vs) > 0 {
			x[k] = ParseValue(vs[0])
		}
	}
	p, err := snap.Predict(x)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeUnprocessable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"prediction": p,
		"version":    snap.Version,
		"count":      snap.Count(),
	})
}

// handleModel renders the published model per engine kind. The body is
// the model's own JSON shape with "version" and "kind" merged in.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	body, err := snap.Model.ResultJSON()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeUnavailable, err)
		return
	}
	out, ok := body.(map[string]any)
	if !ok {
		out = map[string]any{"result": body}
	}
	out["version"] = snap.Version
	out["kind"] = snap.Kind
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	snap := s.Snapshot()
	var coalesce float64
	if st.Applied > 0 {
		coalesce = float64(st.DeltaTuples) / float64(st.Applied)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":                 s.Kind(),
		"ingested":             st.Ingested,
		"applied":              st.Applied,
		"shed":                 st.Shed,
		"batches":              st.Batches,
		"delta_tuples":         st.DeltaTuples,
		"coalesce_ratio":       coalesce,
		"snapshots":            st.Snapshots,
		"snapshot_version":     snap.Version,
		"snapshot_age_seconds": time.Since(snap.At).Seconds(),
		"apply_errors":         st.ApplyErrors,
		"last_error":           st.LastError,
		"view_updates":         st.View.Updates,
		"view_delta_tuples":    st.View.DeltaTuples,
		"shards":               s.Shards(),
		"wal":                  s.WALStatus(),
		"dedup":                s.DedupStatus(),
	})
}

// handleHealthz is the liveness-and-staleness probe: snapshot version
// and age plus queue depths, shed counts, and durability state, so a
// health check detects a stalled writer, an overloaded shard, or a
// crashed WAL without scraping /metrics. A poisoned pipeline answers
// 503 with ok=false — the process is up but not ingesting.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	code := http.StatusOK
	ok := true
	if s.CrashError() != nil {
		code = http.StatusServiceUnavailable
		ok = false
	}
	writeJSON(w, code, map[string]any{
		"ok":                   ok,
		"kind":                 s.Kind(),
		"version":              snap.Version,
		"snapshot_age_seconds": time.Since(snap.At).Seconds(),
		"ingested":             s.ingested.Load(),
		"shed":                 s.shed.Load(),
		"shards":               s.Shards(),
		"wal":                  s.WALStatus(),
	})
}

// handlePartial serves the shard's partial result for cross-shard
// merging: the maintained result relation in the engine's binary
// partial format (see view.Tree.WritePartial). It runs on the writer
// goroutine between batches, so the body is one consistent batch
// boundary, and X-Fivm-Applied carries the cumulative applied-update
// counter that boundary covers — with a WAL it is the recovery-durable
// cumulative count (survives restarts), without one the counter since
// boot. A cluster router compares it against its per-shard acked
// counts to enforce read-your-writes on merged reads.
func (s *Server) handlePartial(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	var applied uint64
	var werr error
	err := s.Sync(func(m Maintainable) {
		applied = s.nApplied
		if s.cfg.WAL != nil {
			applied = s.walPos.Applied
		}
		werr = m.WritePartial(&buf)
	})
	switch {
	case errors.Is(err, ErrClosed) || errors.Is(err, ErrCrashed):
		writeErr(w, http.StatusServiceUnavailable, CodeUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
		return
	case werr != nil:
		writeErr(w, http.StatusNotImplemented, CodeNotImplemented, werr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Fivm-Applied", strconv.FormatUint(applied, 10))
	_, _ = w.Write(buf.Bytes())
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

func (s *Server) handleViewTree(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, s.ViewTree())
}

// ValueFromJSON converts a decoded JSON scalar (with json.Number
// preserved) to a typed value. Exported for programmatic clients of the
// wire protocol (the cluster router).
func ValueFromJSON(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null(), nil
	case json.Number:
		if i, err := strconv.ParseInt(string(x), 10, 64); err == nil {
			return value.Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return value.Value{}, fmt.Errorf("bad number %q", x)
		}
		return value.Float(f), nil
	case string:
		return value.String(x), nil
	default:
		return value.Value{}, fmt.Errorf("unsupported JSON value %v (want number, string, or null)", v)
	}
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// WriteJSON writes a JSON response body. Exported so the cluster
// router answers in exactly the worker wire shapes.
func WriteJSON(w http.ResponseWriter, code int, body any) { writeJSON(w, code, body) }

// WriteError answers with the uniform v1 error envelope (exported for
// the cluster router).
func WriteError(w http.ResponseWriter, status int, code string, err error) {
	writeErr(w, status, code, err)
}

// WriteRetryError is WriteError plus the Retry-After header and
// retry_after_ms field.
func WriteRetryError(w http.ResponseWriter, status int, code string, err error, retry time.Duration) {
	writeRetryErr(w, status, code, err, retry)
}

// writeErr answers with the uniform v1 error envelope.
func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorEnvelope{Error: err.Error(), Code: code})
}

// writeRetryErr is writeErr plus retry hints: the Retry-After header
// (whole seconds) and the envelope's retry_after_ms carry the same
// delay.
func writeRetryErr(w http.ResponseWriter, status int, code string, err error, retry time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
	writeJSON(w, status, ErrorEnvelope{Error: err.Error(), Code: code, RetryAfterMS: retry.Milliseconds()})
}

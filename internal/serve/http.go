package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/value"
	"repro/internal/view"
)

// NewHandler exposes a Server over HTTP/JSON. The surface is identical
// for every hosted engine kind; /model renders the engine's own model
// shape (ridge weights for analysis, rows for count/float/join, the
// compound aggregate for COVAR):
//
//	POST /update    {"updates":[{"rel":"R","tuple":[1,2.5,"x"],"mult":1}]}
//	                ?wait=1 blocks until the batch is applied and a
//	                snapshot reflecting it is published; 429 +
//	                Retry-After when a target ingest queue is over the
//	                high-watermark
//	GET  /predict   ?attr=value&... one query parameter per feature
//	                (analysis engines with a label only)
//	GET  /model     the published model, rendered per engine kind
//	GET  /stats     serving + maintenance counters, snapshot version and
//	                age, per-shard queue depths, shed/accepted counts
//	GET  /viewtree  the maintained view tree (text)
//	GET  /healthz   liveness + staleness (snapshot version/age, queues)
//	GET  /metrics   Prometheus text exposition of the pipeline metrics
//
// Every route is instrumented with a latency histogram and
// status-class counters (fivm_http_request_seconds,
// fivm_http_requests_total).
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /update", s.instrument("/update", s.handleUpdate))
	mux.HandleFunc("GET /predict", s.instrument("/predict", s.handlePredict))
	mux.HandleFunc("GET /model", s.instrument("/model", s.handleModel))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /viewtree", s.instrument("/viewtree", s.handleViewTree))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// statusRecorder captures the response code for the status-class
// counters; handlers that never call WriteHeader implicitly return 200.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the route's pre-registered latency
// histogram and status counters.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.met.httpLat[route]
	codes := s.met.httpCodes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(&rec, r)
		hist.Observe(time.Since(t0).Seconds())
		class := rec.code/100 - 2
		if class < 0 || class >= len(codeClasses) {
			class = len(codeClasses) - 1
		}
		codes[class].Inc()
	}
}

type updateJSON struct {
	Rel   string `json:"rel"`
	Tuple []any  `json:"tuple"`
	// Mult defaults to 1 (insert) when omitted; negative deletes.
	Mult *int `json:"mult"`
}

type updateRequest struct {
	Updates []updateJSON `json:"updates"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	var req updateRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	ups := make([]view.Update, 0, len(req.Updates))
	for i, u := range req.Updates {
		tuple := make(value.Tuple, len(u.Tuple))
		for j, f := range u.Tuple {
			v, err := valueFromJSON(f)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("updates[%d].tuple[%d]: %w", i, j, err))
				return
			}
			tuple[j] = v
		}
		mult := 1
		if u.Mult != nil {
			mult = *u.Mult
		}
		ups = append(ups, view.Update{Rel: u.Rel, Tuple: tuple, Mult: mult})
	}
	done, err := s.Ingest(ups)
	if err != nil {
		var oe *OverloadError
		switch {
		case errors.As(err, &oe):
			// Backpressure, not failure: tell the client when to come
			// back instead of blocking its connection behind the backlog.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	applied := false
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-done:
			applied = true
		case <-r.Context().Done():
			writeErr(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"accepted": len(ups), "applied": applied})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	x := make(map[string]value.Value)
	for k, vs := range r.URL.Query() {
		if len(vs) > 0 {
			x[k] = ParseValue(vs[0])
		}
	}
	p, err := snap.Predict(x)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"prediction": p,
		"version":    snap.Version,
		"count":      snap.Count(),
	})
}

// handleModel renders the published model per engine kind. The body is
// the model's own JSON shape with "version" and "kind" merged in.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	body, err := snap.Model.ResultJSON()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	out, ok := body.(map[string]any)
	if !ok {
		out = map[string]any{"result": body}
	}
	out["version"] = snap.Version
	out["kind"] = snap.Kind
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	snap := s.Snapshot()
	var coalesce float64
	if st.Applied > 0 {
		coalesce = float64(st.DeltaTuples) / float64(st.Applied)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":                 s.Kind(),
		"ingested":             st.Ingested,
		"applied":              st.Applied,
		"shed":                 st.Shed,
		"batches":              st.Batches,
		"delta_tuples":         st.DeltaTuples,
		"coalesce_ratio":       coalesce,
		"snapshots":            st.Snapshots,
		"snapshot_version":     snap.Version,
		"snapshot_age_seconds": time.Since(snap.At).Seconds(),
		"apply_errors":         st.ApplyErrors,
		"last_error":           st.LastError,
		"view_updates":         st.View.Updates,
		"view_delta_tuples":    st.View.DeltaTuples,
		"shards":               s.Shards(),
		"wal":                  s.WALStatus(),
	})
}

// handleHealthz is the liveness-and-staleness probe: snapshot version
// and age plus queue depths, shed counts, and durability state, so a
// health check detects a stalled writer, an overloaded shard, or a
// crashed WAL without scraping /metrics. A poisoned pipeline answers
// 503 with ok=false — the process is up but not ingesting.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	code := http.StatusOK
	ok := true
	if s.CrashError() != nil {
		code = http.StatusServiceUnavailable
		ok = false
	}
	writeJSON(w, code, map[string]any{
		"ok":                   ok,
		"kind":                 s.Kind(),
		"version":              snap.Version,
		"snapshot_age_seconds": time.Since(snap.At).Seconds(),
		"ingested":             s.ingested.Load(),
		"shed":                 s.shed.Load(),
		"shards":               s.Shards(),
		"wal":                  s.WALStatus(),
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

func (s *Server) handleViewTree(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, s.ViewTree())
}

// valueFromJSON converts a decoded JSON scalar (with json.Number
// preserved) to a typed value.
func valueFromJSON(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null(), nil
	case json.Number:
		if i, err := strconv.ParseInt(string(x), 10, 64); err == nil {
			return value.Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return value.Value{}, fmt.Errorf("bad number %q", x)
		}
		return value.Float(f), nil
	case string:
		return value.String(x), nil
	default:
		return value.Value{}, fmt.Errorf("unsupported JSON value %v (want number, string, or null)", v)
	}
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}

package serve

import (
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/fivm"
	"repro/internal/view"
	"repro/internal/wal"
)

// Maintainable is the engine contract the serving pipeline needs: delta
// build and apply for the write path, model publishing for the read
// path, and snapshot persistence hooks. fivm's generic Engine — and so
// every engine fivm.Open returns — implements it.
//
// Contract: BuildDelta must be safe to call concurrently with
// maintenance (it only reads immutable metadata); ApplyBuilt,
// PublishModel, Stats, and the snapshot methods are only ever called
// from the single writer goroutine (or before the pipeline starts).
type Maintainable interface {
	// Kind identifies the hosted engine kind.
	Kind() fivm.Kind
	// RelationNames returns the input relation names, sorted.
	RelationNames() []string
	// Arity returns the attribute count of input relation rel.
	Arity(rel string) (int, bool)
	// BuildDelta prebuilds a delta relation from raw updates, merging
	// same-tuple updates under the ring addition as it goes.
	BuildDelta(rel string, ups []view.Update) (fivm.Delta, error)
	// ApplyBuilt applies a delta produced by BuildDelta.
	ApplyBuilt(rel string, d fivm.Delta) error
	// PublishModel builds an immutable model of the current result,
	// warm-starting from the previously published one (nil at first).
	PublishModel(prev fivm.Model) fivm.Model
	// Stats exposes the engine's maintenance counters.
	Stats() view.Stats
	// ViewTree renders the maintained view tree.
	ViewTree() string
	// WriteSnapshot persists the engine's input relations.
	WriteSnapshot(w io.Writer) error
	// ReadSnapshot restores input relations and re-evaluates views.
	ReadSnapshot(r io.Reader) error
	// WritePartial serializes the maintained result relation for
	// cross-shard merging (the body of GET /v1/partial).
	WritePartial(w io.Writer) error
}

// Compile-time check: engines from fivm.Open satisfy Maintainable.
var _ Maintainable = fivm.AnyEngine(nil)

// ErrClosed is returned by Ingest and Sync after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrCrashed wraps the error returned by Ingest and Sync after a WAL
// append failure poisoned the pipeline: nothing further is accepted or
// applied, so the durable log stays a clean prefix of the acknowledged
// stream and a restart recovers exactly what was acknowledged.
var ErrCrashed = errors.New("serve: pipeline crashed on WAL write failure")

// OverloadError is returned by Ingest when a target relation's ingest
// queue is at or above the configured high-watermark: the caller
// should back off and retry instead of blocking behind the backlog
// (the HTTP handler maps it to 429 with a Retry-After header). Every
// update of the rejected call counts into the shed statistics.
type OverloadError struct {
	// Rel is the overloaded relation.
	Rel string
	// Depth and Capacity describe its queue at admission time.
	Depth, Capacity int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: relation %s ingest queue overloaded (%d/%d queued); retry later", e.Rel, e.Depth, e.Capacity)
}

// Config tunes the ingestion pipeline.
type Config struct {
	// MaxBatch caps the number of raw updates a batcher coalesces into
	// one delta (default 8192).
	MaxBatch int
	// ChannelCap is the per-relation ingest channel capacity
	// (default 256).
	ChannelCap int
	// MaxBatchesPerPublish caps how many queued deltas the writer
	// applies before publishing a fresh snapshot (default 32). Higher
	// values amortize model refits under backlog at the cost of
	// staleness.
	MaxBatchesPerPublish int
	// HighWatermark is the per-relation ingest queue depth at or above
	// which Ingest sheds with an OverloadError instead of enqueueing
	// (admission control). 0 selects ChannelCap: shed only when a
	// target queue is already full at admission time. Must not exceed
	// ChannelCap — a watermark the queue can never reach would disable
	// shedding silently.
	HighWatermark int
	// TraceLog, when non-nil, receives one structured line per flushed
	// batch (queue wait, build, apply spans) and per published snapshot
	// — the serving pipeline's span log, enabled by fivm-serve -trace.
	TraceLog *log.Logger
	// WAL, when non-nil, makes the pipeline durable: every coalesced
	// batch is appended to its relation's shard log before it is handed
	// to the writer, so an acknowledged update is always recoverable
	// (see Recover). The Server appends to and checkpoints the WAL but
	// does not close it — the opener does, after Close returns.
	WAL *wal.WAL
	// DedupCap bounds the idempotency dedup table: how many recently
	// seen (batch ID, relation) groups IngestBatch remembers for
	// duplicate suppression (default 8192). The bound is the retry
	// window — a duplicate older than the newest DedupCap groups
	// re-applies.
	DedupCap int
	// CheckpointInterval is how often the pipeline writes an incremental
	// checkpoint when a WAL is configured (default 1m; negative disables
	// the periodic loop — Close still writes a final checkpoint).
	CheckpointInterval time.Duration
}

// Validate reports the configuration error withDefaults would reject,
// without constructing a Server. CLI front-ends validate flags through
// it before loading any data, so a bad knob fails fast with exactly the
// error text New would produce.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// withDefaults fills zero fields and rejects nonsensical explicit
// settings: zero means "default", but a negative knob or a watermark
// above the channel capacity is a configuration bug that must fail at
// construction, not silently serve with a different value.
func (c Config) withDefaults() (Config, error) {
	switch {
	case c.MaxBatch < 0:
		return c, fmt.Errorf("serve: MaxBatch %d is negative (0 selects the default)", c.MaxBatch)
	case c.ChannelCap < 0:
		return c, fmt.Errorf("serve: ChannelCap %d is negative (0 selects the default)", c.ChannelCap)
	case c.MaxBatchesPerPublish < 0:
		return c, fmt.Errorf("serve: MaxBatchesPerPublish %d is negative (0 selects the default)", c.MaxBatchesPerPublish)
	case c.HighWatermark < 0:
		return c, fmt.Errorf("serve: HighWatermark %d is negative (0 selects ChannelCap)", c.HighWatermark)
	case c.DedupCap < 0:
		return c, fmt.Errorf("serve: DedupCap %d is negative (0 selects the default)", c.DedupCap)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8192
	}
	if c.ChannelCap == 0 {
		c.ChannelCap = 256
	}
	if c.MaxBatchesPerPublish == 0 {
		c.MaxBatchesPerPublish = 32
	}
	if c.HighWatermark == 0 {
		c.HighWatermark = c.ChannelCap
	}
	if c.DedupCap == 0 {
		c.DedupCap = 8192
	}
	if c.HighWatermark > c.ChannelCap {
		return c, fmt.Errorf("serve: HighWatermark %d exceeds ChannelCap %d — queues can never reach it, so shedding would silently never trigger", c.HighWatermark, c.ChannelCap)
	}
	if c.WAL != nil && c.CheckpointInterval == 0 {
		c.CheckpointInterval = time.Minute
	}
	return c, nil
}

// Stats counts serving work. View carries the engine's own maintenance
// counters.
type Stats struct {
	// Ingested is the number of tuple updates accepted by Ingest.
	Ingested uint64
	// Applied is the number of ingested updates represented by applied
	// batches (it reaches Ingested once the pipeline drains).
	Applied uint64
	// Batches is the number of delta batches applied to the engine.
	Batches uint64
	// DeltaTuples is the number of distinct delta tuples applied after
	// coalescing; Applied − DeltaTuples updates were absorbed by the
	// batcher before touching any view.
	DeltaTuples uint64
	// Snapshots is the number of published model snapshots.
	Snapshots uint64
	// ApplyErrors counts failed ApplyBuilt calls (LastError keeps the
	// most recent message).
	ApplyErrors uint64
	LastError   string
	// Shed is the number of tuple updates rejected by admission
	// control (OverloadError); like Ingested it is a live counter, not
	// snapshot-consistent.
	Shed uint64
	View view.Stats
}

// ShardStatus reports one relation's ingest queue for /stats and
// /healthz: current depth, capacity, and the relation's tuple arity
// (which load generators use to synthesize valid updates).
type ShardStatus struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Arity    int `json:"arity"`
}

// Server owns a Maintainable engine and runs the ingestion pipeline over
// it. Create one with New; all methods are safe for concurrent use.
type Server struct {
	eng Maintainable
	cfg Config

	mu     sync.RWMutex // closed vs. sends on shard/exec channels
	closed bool

	shards     map[string]*shard
	batches    chan batch
	exec       chan execReq
	writerDone chan struct{}
	batchers   sync.WaitGroup

	snap     atomic.Pointer[Snapshot]
	ingested atomic.Uint64
	shed     atomic.Uint64
	met      *pipelineMetrics
	dedup    *dedupTable

	// crashed closes (once, after crashErr is set) when a WAL append
	// failure poisons the pipeline; every blocking channel operation
	// selects on it so goroutines unwind instead of deadlocking.
	crashed   chan struct{}
	crashOnce sync.Once
	crashErr  error // written once before crashed closes; read only after <-crashed

	// walPos is the writer-private WAL position watermark (checkpoint
	// restore + replay + every batch applied since); walApplied and
	// walBatches mirror its cumulative counters for concurrent readers,
	// and walRecovered freezes what boot recovery covered.
	walPos       wal.Positions
	walRecovered wal.Positions
	walApplied   atomic.Uint64
	walBatches   atomic.Uint64
	cpStop       chan struct{}
	cpWG         sync.WaitGroup

	// Writer-goroutine-private counters, copied into each snapshot.
	nApplied     uint64
	nBatches     uint64
	nDeltaTuples uint64
	nSnapshots   uint64
	nApplyErrs   uint64
	lastErr      string
	dirty        bool

	viewTree string
}

type shard struct {
	rel   string
	arity int
	ch    chan ingestMsg
	// buf is the batcher's reusable per-flush update slice. Only the
	// shard's single batcher goroutine touches it; BuildDelta does not
	// retain its argument and the batch sent to the writer carries only
	// the prebuilt delta, so the buffer is free again by the time the
	// next flush starts (asserted by the zero-steady-state-allocs test).
	buf []view.Update
	// wal is the shard's append handle when durability is configured
	// (nil otherwise). Only the shard's batcher goroutine appends.
	wal *wal.Shard
	// refbuf is the batcher's reusable per-flush batch-ref slice,
	// collected alongside buf; AppendRefs encodes without retaining it.
	refbuf []wal.BatchRef
}

type ingestMsg struct {
	ups []view.Update
	wg  *sync.WaitGroup
	at  time.Time // Ingest enqueue time, for batcher-wait latency
	// ref names the identified client batch these updates belong to
	// (zero ID for unidentified traffic). The batcher records it inside
	// the WAL record so dedup survives recovery.
	ref wal.BatchRef
}

// batch carries a prebuilt delta to the writer together with its trace
// context: the spans measured so far (queue wait of the oldest message,
// delta build) ride along as plain value fields, so tracing adds no
// allocations to the batch handoff.
type batch struct {
	rel   string
	delta fivm.Delta
	raw   int    // ingested updates this batch represents
	seq   uint64 // WAL sequence number (0 when running without a WAL)
	wgs   []*sync.WaitGroup
	wait  time.Duration // oldest-message queue wait at collect time
	build time.Duration // BuildDelta span
}

type execReq struct {
	fn   func(Maintainable)
	done chan struct{}
}

// New wraps an engine (already Init-ed with any initial data) in a
// Server and starts the pipeline. The Server takes ownership of the
// engine: after New the caller must not touch it except through Sync.
func New(eng Maintainable, cfg Config) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		eng:        eng,
		cfg:        cfg,
		shards:     make(map[string]*shard),
		batches:    make(chan batch, cfg.ChannelCap),
		exec:       make(chan execReq),
		writerDone: make(chan struct{}),
		crashed:    make(chan struct{}),
		viewTree:   eng.ViewTree(),
	}
	s.dedup = newDedupTable(cfg.DedupCap)
	for _, rel := range eng.RelationNames() {
		arity, _ := eng.Arity(rel)
		s.shards[rel] = &shard{rel: rel, arity: arity, ch: make(chan ingestMsg, cfg.ChannelCap)}
	}
	if cfg.WAL != nil {
		// Continue the recovered positions: the engine was restored via
		// Recover with this same WAL, so live batches extend the prefix
		// the last checkpoint and replay already covered.
		s.walRecovered = cfg.WAL.RecoveredPositions()
		s.walPos = cfg.WAL.RecoveredPositions()
		s.walApplied.Store(s.walPos.Applied)
		s.walBatches.Store(s.walPos.Batches)
		for rel, sh := range s.shards {
			ws, err := cfg.WAL.Shard(rel)
			if err != nil {
				return nil, err
			}
			sh.wal = ws
		}
		// Batch IDs found in the replayed log become completed dedup
		// entries: a router retrying a batch the crashed process already
		// logged is answered, not double-applied.
		s.dedup.seedRecovered(cfg.WAL.RecoveredBatchRefs())
	}
	s.met = newPipelineMetrics(s) // before publish: publish records its span
	s.publish()                   // version 1: the initial state, before any goroutine runs
	for _, sh := range s.shards {
		s.batchers.Add(1)
		go s.runBatcher(sh)
	}
	go s.runWriter()
	if cfg.WAL != nil && cfg.CheckpointInterval > 0 {
		s.cpStop = make(chan struct{})
		s.cpWG.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// Kind identifies the hosted engine kind.
func (s *Server) Kind() fivm.Kind { return s.eng.Kind() }

// Ingest enqueues tuple updates. It returns a channel that is closed
// once every update of this call has been applied to the engine AND a
// snapshot reflecting them has been published — callers that need
// read-your-writes wait on it; fire-and-forget callers drop it.
// Updates to one relation are applied in ingest order; updates to
// different relations may interleave with other callers', which cannot
// change the final state (delta application commutes).
func (s *Server) Ingest(ups []view.Update) (<-chan struct{}, error) {
	done := make(chan struct{})
	if len(ups) == 0 {
		close(done)
		return done, nil
	}
	order, groups, err := s.groupUpdates(ups)
	if err != nil {
		return nil, err
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	if err := s.CrashError(); err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	// Admission control: if any target shard's queue sits at or above
	// the high-watermark, shed the whole call before anything is
	// enqueued — all-or-nothing, so a multi-relation call never lands
	// partially. The check is advisory (concurrent ingesters can still
	// race past it into a blocking send), but the default watermark
	// equals the channel capacity, so an over-watermark queue is a
	// genuinely full one.
	for _, rel := range order {
		if ch := s.shards[rel].ch; len(ch) >= s.cfg.HighWatermark {
			s.shed.Add(uint64(len(ups)))
			s.mu.RUnlock()
			return nil, &OverloadError{Rel: rel, Depth: len(ch), Capacity: cap(ch)}
		}
	}
	// Count before the sends: a snapshot published mid-Ingest must never
	// report Applied > Ingested.
	s.ingested.Add(uint64(len(ups)))
	now := time.Now()
	var wg sync.WaitGroup
	wg.Add(len(order))
	for _, rel := range order {
		// A crash stops the batchers, so an unguarded send could block
		// forever; a call interrupted mid-send reports the crash (its
		// done channel never closes — crash semantics, not acknowledged).
		select {
		case s.shards[rel].ch <- ingestMsg{ups: groups[rel], wg: &wg, at: now}:
		case <-s.crashed:
			s.mu.RUnlock()
			return nil, s.crashErr
		}
	}
	s.mu.RUnlock()

	go func() {
		wg.Wait()
		close(done)
	}()
	return done, nil
}

// groupUpdates groups ups by relation, preserving per-relation order
// and validating every update (relation known, tuple arity matches the
// schema) before anything is enqueued — a bad update must not reach the
// pipeline goroutines, where it would panic the whole server.
func (s *Server) groupUpdates(ups []view.Update) (order []string, groups map[string][]view.Update, err error) {
	order = make([]string, 0, 4)
	groups = make(map[string][]view.Update, 4)
	for i, u := range ups {
		sh, known := s.shards[u.Rel]
		if !known {
			return nil, nil, fmt.Errorf("serve: unknown relation %s", u.Rel)
		}
		if len(u.Tuple) != sh.arity {
			return nil, nil, fmt.Errorf("serve: updates[%d]: relation %s wants %d attributes, tuple has %d", i, u.Rel, sh.arity, len(u.Tuple))
		}
		g, ok := groups[u.Rel]
		if !ok {
			order = append(order, u.Rel)
		}
		groups[u.Rel] = append(g, u)
	}
	return order, groups, nil
}

// Sync runs fn on the writer goroutine with exclusive access to the
// engine, between batches — the safe way to reach engine state the
// snapshot does not carry (e.g. WriteSnapshot persistence). It blocks
// until fn returns.
func (s *Server) Sync(fn func(Maintainable)) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	// A poisoned pipeline must not serve new rounds, even while the
	// writer is still draining toward exit (it could otherwise win the
	// select below and run fn against unrecoverable state).
	if err := s.CrashError(); err != nil {
		s.mu.RUnlock()
		return err
	}
	req := execReq{fn: fn, done: make(chan struct{})}
	// While the server is open the writer only exits on a crash; the
	// select keeps Sync from blocking forever against a dead writer.
	select {
	case s.exec <- req:
	case <-s.writerDone:
		s.mu.RUnlock()
		if err := s.CrashError(); err != nil {
			return err
		}
		return ErrClosed
	}
	s.mu.RUnlock()
	<-req.done
	return nil
}

// Snapshot returns the latest published snapshot. It never blocks and
// never returns nil.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Stats returns serving counters: snapshot-consistent applied-side
// numbers plus the live ingested and shed counts.
func (s *Server) Stats() Stats {
	st := s.snap.Load().Stats
	st.Ingested = s.ingested.Load()
	st.Shed = s.shed.Load()
	return st
}

// Shards reports every relation's ingest queue (depth, capacity,
// arity) — the health-check view of where backlog sits. Channel
// lengths are instantaneous reads; no lock is taken.
func (s *Server) Shards() map[string]ShardStatus {
	out := make(map[string]ShardStatus, len(s.shards))
	for rel, sh := range s.shards {
		out[rel] = ShardStatus{Depth: len(sh.ch), Capacity: cap(sh.ch), Arity: sh.arity}
	}
	return out
}

// ViewTree returns the engine's view-tree rendering (immutable after
// construction, so it is served from cache).
func (s *Server) ViewTree() string { return s.viewTree }

// Close drains the pipeline — every update accepted by Ingest before
// Close is applied and reflected in a final snapshot — then stops all
// goroutines and, when a WAL is configured, writes a final checkpoint.
// After a crash there is no drain and no checkpoint: the WAL already
// holds the clean prefix a restart will recover. Close is idempotent;
// Ingest and Sync fail with ErrClosed afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.writerDone
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.mu.Unlock()

	if s.cpStop != nil {
		close(s.cpStop)
		s.cpWG.Wait()
	}
	s.batchers.Wait()
	close(s.batches)
	<-s.writerDone
	return s.finalCheckpoint()
}

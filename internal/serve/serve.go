// Package serve is the concurrent serving layer over a fivm.Analysis
// engine: continuous ingestion of tuple updates on the write path,
// lock-free model reads on the read path.
//
// The F-IVM engines are single-threaded by design — every view update
// mutates shared state. serve keeps that invariant while exposing the
// paper's promise (fresh models under a high-velocity update stream) as
// a service:
//
//   - Ingest accepts tuple updates from any number of goroutines and
//     routes them through per-relation sharded channels.
//   - One batcher goroutine per relation drains its channel, coalesces
//     same-tuple updates by summing multiplicities (the paper's
//     batch-update strategy), and prebuilds the delta relation off the
//     maintenance thread.
//   - A single writer goroutine applies delta batches to the engine and
//     after each applied round publishes an immutable ModelSnapshot
//     (deep payload clone + refit ridge model + sigma + counters)
//     through an atomic.Pointer.
//
// Readers call Snapshot and work against that immutable value: Predict,
// Covar, MI, ChowLiu, and Stats never take a lock, never block behind
// ingestion, and never observe a half-applied batch.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/fivm"
	"repro/internal/ml"
	"repro/internal/view"
)

// ErrClosed is returned by Ingest and Sync after Close.
var ErrClosed = errors.New("serve: server closed")

// Config tunes the ingestion pipeline.
type Config struct {
	// Label is the attribute the published ridge model predicts; it
	// must be a continuous feature of the analysis. Empty disables
	// model fitting (payload snapshots are still published).
	Label string
	// Ridge configures the solver; the zero value means
	// ml.DefaultRidgeConfig().
	Ridge ml.RidgeConfig
	// MaxBatch caps the number of raw updates a batcher coalesces into
	// one delta (default 8192).
	MaxBatch int
	// ChannelCap is the per-relation ingest channel capacity
	// (default 256).
	ChannelCap int
	// MaxBatchesPerPublish caps how many queued deltas the writer
	// applies before publishing a fresh snapshot (default 32). Higher
	// values amortize refits under backlog at the cost of staleness.
	MaxBatchesPerPublish int
}

func (c Config) withDefaults() Config {
	if c.Ridge == (ml.RidgeConfig{}) {
		c.Ridge = ml.DefaultRidgeConfig()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.ChannelCap <= 0 {
		c.ChannelCap = 256
	}
	if c.MaxBatchesPerPublish <= 0 {
		c.MaxBatchesPerPublish = 32
	}
	return c
}

// Stats counts serving work. View carries the engine's own maintenance
// counters.
type Stats struct {
	// Ingested is the number of tuple updates accepted by Ingest.
	Ingested uint64
	// Applied is the number of ingested updates represented by applied
	// batches (it reaches Ingested once the pipeline drains).
	Applied uint64
	// Batches is the number of delta batches applied to the engine.
	Batches uint64
	// DeltaTuples is the number of distinct delta tuples applied after
	// coalescing; Applied − DeltaTuples updates were absorbed by the
	// batcher before touching any view.
	DeltaTuples uint64
	// Snapshots is the number of published model snapshots.
	Snapshots uint64
	// ApplyErrors counts failed ApplyDelta calls (LastError keeps the
	// most recent message).
	ApplyErrors uint64
	LastError   string
	View        view.Stats
}

// Server owns a fivm.Analysis and runs the ingestion pipeline over it.
// Create one with New; all methods are safe for concurrent use.
type Server struct {
	an  *fivm.Analysis
	cfg Config

	mu     sync.RWMutex // closed vs. sends on shard/exec channels
	closed bool

	shards     map[string]*shard
	batches    chan batch
	exec       chan execReq
	writerDone chan struct{}
	batchers   sync.WaitGroup

	snap      atomic.Pointer[ModelSnapshot]
	ingested  atomic.Uint64
	binWidths map[string]float64

	// Writer-goroutine-private counters, copied into each snapshot.
	nApplied     uint64
	nBatches     uint64
	nDeltaTuples uint64
	nSnapshots   uint64
	nApplyErrs   uint64
	lastErr      string
	dirty        bool

	viewTree string
}

type shard struct {
	rel   string
	arity int
	ch    chan ingestMsg
}

type ingestMsg struct {
	ups []view.Update
	wg  *sync.WaitGroup
}

type batch struct {
	rel   string
	delta deltaRel
	raw   int // ingested updates this batch represents
	wgs   []*sync.WaitGroup
}

type execReq struct {
	fn   func(*fivm.Analysis)
	done chan struct{}
}

// New wraps an Analysis (already Init-ed with any initial data) in a
// Server and starts the pipeline. The Server takes ownership of the
// engine: after New the caller must not touch it except through Sync.
func New(an *fivm.Analysis, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Label != "" {
		found := false
		for _, f := range an.Features() {
			if f.Name == cfg.Label {
				if f.Categorical {
					return nil, fmt.Errorf("serve: label %s is categorical; ridge needs a continuous label", cfg.Label)
				}
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: label %s is not a feature of the analysis", cfg.Label)
		}
	}
	s := &Server{
		an:         an,
		cfg:        cfg,
		shards:     make(map[string]*shard),
		batches:    make(chan batch, cfg.ChannelCap),
		exec:       make(chan execReq),
		writerDone: make(chan struct{}),
		viewTree:   an.ViewTree(),
		binWidths:  make(map[string]float64),
	}
	for _, f := range an.FeatureSpecs() {
		if f.BinWidth > 0 {
			s.binWidths[f.Attr] = f.BinWidth
		}
	}
	for _, rel := range an.RelationNames() {
		src, _ := an.Tree().Source(rel)
		s.shards[rel] = &shard{rel: rel, arity: src.Schema().Len(), ch: make(chan ingestMsg, cfg.ChannelCap)}
	}
	s.publish() // version 1: the initial state, before any goroutine runs
	for _, sh := range s.shards {
		s.batchers.Add(1)
		go s.runBatcher(sh)
	}
	go s.runWriter()
	return s, nil
}

// Ingest enqueues tuple updates. It returns a channel that is closed
// once every update of this call has been applied to the engine AND a
// snapshot reflecting them has been published — callers that need
// read-your-writes wait on it; fire-and-forget callers drop it.
// Updates to one relation are applied in ingest order; updates to
// different relations may interleave with other callers', which cannot
// change the final state (delta application commutes).
func (s *Server) Ingest(ups []view.Update) (<-chan struct{}, error) {
	done := make(chan struct{})
	if len(ups) == 0 {
		close(done)
		return done, nil
	}
	// Group by relation, preserving per-relation order, validating
	// every update (relation known, tuple arity matches the schema)
	// before anything is enqueued — a bad update must not reach the
	// pipeline goroutines, where it would panic the whole server.
	order := make([]string, 0, 4)
	groups := make(map[string][]view.Update, 4)
	for i, u := range ups {
		sh, known := s.shards[u.Rel]
		if !known {
			return nil, fmt.Errorf("serve: unknown relation %s", u.Rel)
		}
		if len(u.Tuple) != sh.arity {
			return nil, fmt.Errorf("serve: updates[%d]: relation %s wants %d attributes, tuple has %d", i, u.Rel, sh.arity, len(u.Tuple))
		}
		g, ok := groups[u.Rel]
		if !ok {
			order = append(order, u.Rel)
		}
		groups[u.Rel] = append(g, u)
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	// Count before the sends: a snapshot published mid-Ingest must never
	// report Applied > Ingested.
	s.ingested.Add(uint64(len(ups)))
	var wg sync.WaitGroup
	wg.Add(len(order))
	for _, rel := range order {
		s.shards[rel].ch <- ingestMsg{ups: groups[rel], wg: &wg}
	}
	s.mu.RUnlock()

	go func() {
		wg.Wait()
		close(done)
	}()
	return done, nil
}

// Sync runs fn on the writer goroutine with exclusive access to the
// engine, between batches — the safe way to reach engine state the
// snapshot does not carry (e.g. fivm's WriteSnapshot persistence). It
// blocks until fn returns.
func (s *Server) Sync(fn func(*fivm.Analysis)) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	req := execReq{fn: fn, done: make(chan struct{})}
	s.exec <- req
	s.mu.RUnlock()
	<-req.done
	return nil
}

// Snapshot returns the latest published model snapshot. It never blocks
// and never returns nil.
func (s *Server) Snapshot() *ModelSnapshot { return s.snap.Load() }

// Stats returns serving counters: snapshot-consistent applied-side
// numbers plus the live ingested count.
func (s *Server) Stats() Stats {
	st := s.snap.Load().Stats
	st.Ingested = s.ingested.Load()
	return st
}

// ViewTree returns the engine's view-tree rendering (immutable after
// construction, so it is served from cache).
func (s *Server) ViewTree() string { return s.viewTree }

// Close drains the pipeline — every update accepted by Ingest before
// Close is applied and reflected in a final snapshot — then stops all
// goroutines. It is idempotent; Ingest and Sync fail with ErrClosed
// afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.writerDone
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.mu.Unlock()

	s.batchers.Wait()
	close(s.batches)
	<-s.writerDone
	return nil
}

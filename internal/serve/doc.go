// Package serve is the concurrent serving layer over any fivm engine:
// continuous ingestion of tuple updates on the write path, lock-free
// model reads on the read path.
//
// The F-IVM engines are single-writer by design — every view update
// mutates shared state. serve keeps that invariant while exposing the
// paper's promise (fresh models under a high-velocity update stream) as
// a service:
//
//   - Ingest accepts tuple updates from any number of goroutines and
//     routes them through per-relation sharded channels.
//   - One batcher goroutine per relation drains its channel and feeds
//     the raw updates straight into the engine's delta build
//     (BuildDelta merges same-tuple updates under the ring addition as
//     it goes — an insert and a delete of one tuple cancel before any
//     view work — so no separate coalescing pass runs). Delta building
//     happens off the maintenance thread.
//   - A single writer goroutine applies delta batches to the engine
//     and after each applied round publishes an immutable Snapshot (a
//     deep fivm.Model clone + counters) through an atomic.Pointer.
//     When the engine is configured with delta-propagation workers
//     (fivm.Config.Workers), each applied batch is hash-partitioned by
//     join key and propagated in parallel inside that single ApplyBuilt
//     call — the pipeline stays single-writer; the parallelism lives
//     below it.
//
// Readers call Snapshot and work against that immutable value: Model
// reads, Predict, and Stats never take a lock, never block behind
// ingestion, and never observe a half-applied batch.
//
// # Key invariants
//
//   - Exactly one goroutine (the writer) mutates the engine; batchers
//     only call BuildDelta, which reads immutable tree metadata.
//   - Every published Snapshot is a deep copy sharing nothing mutable
//     with the engine.
//   - Updates to one relation are applied in ingest order; updates to
//     different relations may interleave, which cannot change the
//     final state (delta application commutes across relations).
//
// The pipeline is engine-agnostic: it talks to the engine only through
// the Maintainable interface, which the generic fivm.Engine implements
// — so one daemon binary hosts count, float-SUM, COVAR, join-result,
// and full analysis workloads alike.
//
// Steady-state ingestion is allocation-lean: each shard's batcher
// reuses one per-flush update buffer (BuildDelta does not retain its
// argument and batches carry only the prebuilt delta), so a flush
// allocates nothing for the update slice — only the waiter list, which
// escapes to the writer, is fresh per round. batcher_test.go pins this
// with testing.AllocsPerRun; docs/PERF.md documents the repository-wide
// scratch-buffer contract.
package serve

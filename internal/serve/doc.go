// Package serve is the concurrent serving layer over any fivm engine:
// continuous ingestion of tuple updates on the write path, lock-free
// model reads on the read path.
//
// The F-IVM engines are single-writer by design — every view update
// mutates shared state. serve keeps that invariant while exposing the
// paper's promise (fresh models under a high-velocity update stream) as
// a service:
//
//   - Ingest accepts tuple updates from any number of goroutines and
//     routes them through per-relation sharded channels.
//   - One batcher goroutine per relation drains its channel and feeds
//     the raw updates straight into the engine's delta build
//     (BuildDelta merges same-tuple updates under the ring addition as
//     it goes — an insert and a delete of one tuple cancel before any
//     view work — so no separate coalescing pass runs). Delta building
//     happens off the maintenance thread.
//   - A single writer goroutine applies delta batches to the engine
//     and after each applied round publishes an immutable Snapshot (a
//     deep fivm.Model clone + counters) through an atomic.Pointer.
//     When the engine is configured with delta-propagation workers
//     (fivm.Config.Workers), each applied batch is hash-partitioned by
//     join key and propagated in parallel inside that single ApplyBuilt
//     call — the pipeline stays single-writer; the parallelism lives
//     below it.
//
// Readers call Snapshot and work against that immutable value: Model
// reads, Predict, and Stats never take a lock, never block behind
// ingestion, and never observe a half-applied batch.
//
// # Key invariants
//
//   - Exactly one goroutine (the writer) mutates the engine; batchers
//     only call BuildDelta, which reads immutable tree metadata.
//   - Every published Snapshot is a deep copy sharing nothing mutable
//     with the engine.
//   - Updates to one relation are applied in ingest order; updates to
//     different relations may interleave, which cannot change the
//     final state (delta application commutes across relations).
//
// The pipeline is engine-agnostic: it talks to the engine only through
// the Maintainable interface, which the generic fivm.Engine implements
// — so one daemon binary hosts count, float-SUM, COVAR, join-result,
// and full analysis workloads alike.
//
// Steady-state ingestion is allocation-lean: each shard's batcher
// reuses one per-flush update buffer (BuildDelta does not retain its
// argument and batches carry only the prebuilt delta), so a flush
// allocates nothing for the update slice — only the waiter list, which
// escapes to the writer, is fresh per round. batcher_test.go pins this
// with testing.AllocsPerRun; docs/PERF.md documents the repository-wide
// scratch-buffer contract.
//
// # Observability
//
// Every stage of the write path is instrumented with internal/obs
// metrics and exposed as Prometheus text exposition via
// Server.WriteMetrics (GET /metrics on the HTTP surface): ingest queue
// depth/capacity per shard, batch size and batcher wait, per-stage
// latency histograms for delta build, apply, and snapshot publish,
// snapshot version and age, and per-route HTTP latency/status
// counters. The instrumentation follows the same zero-allocation
// discipline as the pipeline itself — all series are pre-registered at
// construction and hot-path recording is atomic-only (pinned by
// TestPipelineInstrumentationAllocFree). Config.TraceLog optionally
// emits one structured line per batch and per publish carrying the
// same spans (wait/build/apply, publish duration).
//
// # Durability
//
// With Config.WAL set, each batcher appends its raw batch to the
// shard's write-ahead log (internal/wal) after BuildDelta succeeds and
// before the hand-off to the writer. Since read-your-writes waiters
// only release after the writer publishes, acknowledged implies
// logged. The writer privately tracks the per-shard log positions it
// has applied; Checkpoint (and the Config.CheckpointInterval loop, and
// Close) snapshots the engine together with those positions inside one
// Sync round — a consistent cut — so recovery (Recover) restores the
// checkpoint and replays only the log past it. A WAL append failure
// poisons the pipeline fail-stop: the error is sticky, Ingest and Sync
// return ErrCrashed, unacknowledged waiters never release, no further
// checkpoint is written, and Close skips the final checkpoint — a
// restart recovers exactly the acknowledged prefix.
//
// # Admission control
//
// Ingest sheds load instead of blocking once any target shard's queue
// reaches Config.HighWatermark (default: channel capacity): it returns
// *OverloadError without enqueueing anything — all-or-nothing, so a
// multi-relation batch is never partially admitted — and the HTTP
// layer maps that to 429 with a Retry-After header. Shed counts are
// reported by Stats, /stats, /healthz, and /metrics. The check is
// advisory under concurrency (two racing ingests may both pass and one
// then block briefly on the channel send), which keeps the admission
// path lock-free.
package serve

package serve

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/fivm"
	"repro/internal/ml"
	"repro/internal/value"
	"repro/internal/view"
)

// TestConcurrentIngestMatchesReplay is the subsystem's core concurrency
// contract, run under -race by CI: N writer goroutines ingest interleaved
// update slices while M readers hammer the snapshot path, and the final
// drained state must equal a single-threaded replay of the same updates.
//
// Exactness is deliberate: all tuple values are small integers, so every
// float the ring touches is an exact integer and addition commutes — any
// batch interleaving must produce the bit-identical payload.
func TestConcurrentIngestMatchesReplay(t *testing.T) {
	const (
		writers    = 4
		readers    = 4
		perWriter  = 1500
		chunkSize  = 37 // deliberately odd so chunks straddle relations
		sRows      = 25
		deleteBias = 5 // every 5th R update deletes an earlier insert
	)

	// One deterministic stream, split round-robin across writers.
	rng := rand.New(rand.NewSource(42))
	var all []view.Update
	for j := 0; j < sRows; j++ {
		all = append(all, view.Update{Rel: "S", Tuple: value.T(j, j%4), Mult: 1})
	}
	var inserted []value.Tuple
	for i := 0; i < writers*perWriter; i++ {
		if i%deleteBias == deleteBias-1 && len(inserted) > 0 {
			tp := inserted[rng.Intn(len(inserted))]
			all = append(all, view.Update{Rel: "R", Tuple: tp, Mult: -1})
			continue
		}
		tp := value.T(rng.Intn(400), rng.Intn(sRows))
		inserted = append(inserted, tp)
		all = append(all, view.Update{Rel: "R", Tuple: tp, Mult: 1})
	}

	srv, err := New(testAnalysis(t), Config{MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}

	chunks := make([][][]view.Update, writers)
	for i := 0; i < len(all); i += chunkSize {
		end := i + chunkSize
		if end > len(all) {
			end = len(all)
		}
		w := (i / chunkSize) % writers
		chunks[w] = append(chunks[w], all[i:end])
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := map[string]value.Value{"A": value.Int(3), "C": value.Int(1)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Snapshot()
				_ = snap.Count()
				_, _ = snap.Predict(x)
				if am, ok := snap.Model.(*fivm.AnalysisModel); ok {
					_, _ = am.Covar()
				}
				_ = srv.Stats()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for _, chunk := range chunks[w] {
				if _, err := srv.Ingest(chunk); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	final := srv.Snapshot()
	if got := srv.Stats().Ingested; got != uint64(len(all)) {
		t.Fatalf("ingested = %d, want %d", got, len(all))
	}
	fm := final.Model.(*fivm.AnalysisModel)

	// Single-threaded replay of the identical update stream.
	replay := testAnalysis(t)
	if err := replay.Apply(all); err != nil {
		t.Fatal(err)
	}
	if !fm.Payload.Equal(replay.Payload()) {
		t.Fatalf("concurrent payload diverges from single-threaded replay:\n got %v\nwant %v",
			fm.Payload, replay.Payload())
	}

	// Cold-fit both sigmas with identical config: deterministic gradient
	// descent over equal payloads must agree.
	cfg := ml.DefaultRidgeConfig()
	wantModel, _, err := replay.Ridge("B", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotModel, _, err := fivm.RidgeFromPayload(fm.Payload, fm.Features, "B", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotModel.Intercept-wantModel.Intercept) > 1e-9 {
		t.Fatalf("intercept %v vs replay %v", gotModel.Intercept, wantModel.Intercept)
	}
	for i := range wantModel.Weights {
		if math.Abs(gotModel.Weights[i]-wantModel.Weights[i]) > 1e-9 {
			t.Fatalf("weight[%d] %v vs replay %v", i, gotModel.Weights[i], wantModel.Weights[i])
		}
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/fivm"
)

// newHTTPServer serves a single-relation engine R(X,Y) with label Y, so
// y = 2x training data yields an easily checkable model.
func newHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	an, err := fivm.NewAnalysis(fivm.AnalysisConfig{
		Relations: []fivm.RelationSpec{{Name: "R", Attrs: []string{"X", "Y"}}},
		Features:  []fivm.FeatureSpec{{Attr: "X"}, {Attr: "Y"}},
		Label:     "Y",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(an, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postUpdates(t *testing.T, ts *httptest.Server, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/update?wait=1", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /update = %d: %v", resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestHTTPUpdateThenPredict(t *testing.T) {
	_, ts := newHTTPServer(t)

	// y = 2x over x = 1..20, as one batch with wait=1.
	var ups []string
	for x := 1; x <= 20; x++ {
		ups = append(ups, fmt.Sprintf(`{"rel":"R","tuple":[%d,%d]}`, x, 2*x))
	}
	out := postUpdates(t, ts, `{"updates":[`+strings.Join(ups, ",")+`]}`)
	if out["accepted"].(float64) != 20 || out["applied"] != true {
		t.Fatalf("update response = %v", out)
	}

	code, pred := getJSON(t, ts.URL+"/predict?X=5")
	if code != http.StatusOK {
		t.Fatalf("GET /predict = %d: %v", code, pred)
	}
	if got := pred["prediction"].(float64); got < 9 || got > 11 {
		t.Fatalf("predict(X=5) = %v, want ≈10", got)
	}
	if pred["count"].(float64) != 20 {
		t.Fatalf("count = %v, want 20", pred["count"])
	}
	v1 := pred["version"].(float64)

	// A second batch shifts the line; the next predict must reflect it.
	var ups2 []string
	for x := 1; x <= 20; x++ {
		ups2 = append(ups2, fmt.Sprintf(`{"rel":"R","tuple":[%d,%d]}`, x, 2*x+100))
	}
	postUpdates(t, ts, `{"updates":[`+strings.Join(ups2, ",")+`]}`)
	code, pred2 := getJSON(t, ts.URL+"/predict?X=5")
	if code != http.StatusOK {
		t.Fatalf("GET /predict (2) = %d: %v", code, pred2)
	}
	if pred2["version"].(float64) <= v1 {
		t.Fatalf("version did not advance: %v -> %v", v1, pred2["version"])
	}
	if got := pred2["prediction"].(float64); got < 40 || got > 80 {
		t.Fatalf("predict after shifted batch = %v, want ≈60", got)
	}
}

func TestHTTPDeleteViaMult(t *testing.T) {
	srv, ts := newHTTPServer(t)
	postUpdates(t, ts, `{"updates":[
		{"rel":"R","tuple":[1,2]},
		{"rel":"R","tuple":[3,6]},
		{"rel":"R","tuple":[1,2],"mult":-1}]}`)
	if got := srv.Snapshot().Count(); got != 1 {
		t.Fatalf("count = %v, want 1 after insert+insert+delete", got)
	}
}

func TestHTTPModelStatsViewTreeHealth(t *testing.T) {
	_, ts := newHTTPServer(t)
	postUpdates(t, ts, `{"updates":[{"rel":"R","tuple":[1,2]},{"rel":"R","tuple":[2,4]},{"rel":"R","tuple":[3,7]}]}`)

	code, model := getJSON(t, ts.URL+"/model")
	if code != http.StatusOK {
		t.Fatalf("GET /model = %d: %v", code, model)
	}
	if model["label"] != "Y" || model["weights"] == nil {
		t.Fatalf("model = %v", model)
	}

	code, stats := getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK || stats["ingested"].(float64) != 3 {
		t.Fatalf("GET /stats = %d: %v", code, stats)
	}

	resp, err := http.Get(ts.URL + "/viewtree")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /viewtree = %d", resp.StatusCode)
	}

	code, health := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || health["ok"] != true {
		t.Fatalf("GET /healthz = %d: %v", code, health)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/update", "application/json",
		bytes.NewBufferString(`{"updates":[{"rel":"Nope","tuple":[1,2]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown relation = %d, want 400", resp.StatusCode)
	}
	code, _ := getJSON(t, ts.URL+"/predict") // missing features
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("predict without features = %d, want 422", code)
	}
}

// newEngineServer hosts an arbitrary engine kind behind the HTTP
// handler — the decoupling the Maintainable interface buys: the same
// pipeline serves count, float, COVAR, and join workloads.
func newEngineServer(t *testing.T, cfg fivm.Config) (*Server, *httptest.Server) {
	t.Helper()
	eng, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

var twoRelations = []fivm.RelationSpec{
	{Name: "R", Attrs: []string{"A", "B"}},
	{Name: "S", Attrs: []string{"B", "C"}},
}

// seedBody joins R(A,B) rows 1:1 against S(B,C): 6 R rows over 2 S rows.
const seedBody = `{"updates":[
	{"rel":"S","tuple":[0,10]},
	{"rel":"S","tuple":[1,20]},
	{"rel":"R","tuple":[1,0]},
	{"rel":"R","tuple":[2,0]},
	{"rel":"R","tuple":[3,0]},
	{"rel":"R","tuple":[4,1]},
	{"rel":"R","tuple":[5,1]},
	{"rel":"R","tuple":[6,1]}]}`

func TestHTTPServeCountEngine(t *testing.T) {
	_, ts := newEngineServer(t, fivm.Config{
		Relations: twoRelations,
		Query:     "SELECT B, SUM(1) FROM R NATURAL JOIN S GROUP BY B",
	})
	postUpdates(t, ts, seedBody)

	code, model := getJSON(t, ts.URL+"/model")
	if code != http.StatusOK {
		t.Fatalf("GET /model = %d: %v", code, model)
	}
	if model["kind"] != "count" {
		t.Fatalf("kind = %v, want count", model["kind"])
	}
	if model["total"].(float64) != 6 {
		t.Fatalf("total = %v, want 6", model["total"])
	}
	rows := model["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2 groups", rows)
	}
	// Deleting one group's S row erases its 3 joined tuples.
	postUpdates(t, ts, `{"updates":[{"rel":"S","tuple":[0,10],"mult":-1}]}`)
	_, model = getJSON(t, ts.URL+"/model")
	if model["total"].(float64) != 3 {
		t.Fatalf("total after delete = %v, want 3", model["total"])
	}
	// Non-analysis engines refuse /predict with a clear error.
	code, _ = getJSON(t, ts.URL+"/predict?A=1")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("GET /predict on count engine = %d, want 422", code)
	}
}

func TestHTTPServeFloatEngine(t *testing.T) {
	_, ts := newEngineServer(t, fivm.Config{
		Relations: twoRelations,
		Query:     "SELECT SUM(A * C) FROM R NATURAL JOIN S",
	})
	postUpdates(t, ts, seedBody)

	code, model := getJSON(t, ts.URL+"/model")
	if code != http.StatusOK {
		t.Fatalf("GET /model = %d: %v", code, model)
	}
	if model["kind"] != "float" {
		t.Fatalf("kind = %v, want float", model["kind"])
	}
	// SUM(A*C) = (1+2+3)*10 + (4+5+6)*20 = 360.
	if model["total"].(float64) != 360 {
		t.Fatalf("total = %v, want 360", model["total"])
	}

	code, stats := getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK || stats["ingested"].(float64) != 8 {
		t.Fatalf("GET /stats = %d: %v", code, stats)
	}
}

func TestHTTPServeCovarEngine(t *testing.T) {
	_, ts := newEngineServer(t, fivm.Config{
		Relations: twoRelations,
		Attrs:     []string{"A", "C"},
	})

	// Before any data the COVAR result is empty: /model reports 503 per
	// the unified empty-join convention.
	code, _ := getJSON(t, ts.URL+"/model")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("GET /model on empty covar = %d, want 503", code)
	}

	postUpdates(t, ts, seedBody)
	code, model := getJSON(t, ts.URL+"/model")
	if code != http.StatusOK {
		t.Fatalf("GET /model = %d: %v", code, model)
	}
	if model["kind"] != "covar" {
		t.Fatalf("kind = %v, want covar", model["kind"])
	}
	if model["count"].(float64) != 6 {
		t.Fatalf("count = %v, want 6", model["count"])
	}
	sums := model["sums"].(map[string]any)
	if sums["A"].(float64) != 21 || sums["C"].(float64) != 90 {
		t.Fatalf("sums = %v, want A=21 C=90", sums)
	}
}

func TestHTTPServeJoinEngine(t *testing.T) {
	_, ts := newEngineServer(t, fivm.Config{
		Relations: twoRelations,
		Kind:      fivm.KindJoin,
	})
	postUpdates(t, ts, seedBody)
	code, model := getJSON(t, ts.URL+"/model")
	if code != http.StatusOK {
		t.Fatalf("GET /model = %d: %v", code, model)
	}
	if model["kind"] != "join" {
		t.Fatalf("kind = %v, want join", model["kind"])
	}
	if model["total"].(float64) != 6 {
		t.Fatalf("total = %v, want 6 join tuples", model["total"])
	}
	if rows := model["rows"].([]any); len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
}

package serve

import "sync"

// runBatcher drains one relation's shard channel. Each round it greedily
// collects whatever is queued (up to MaxBatch raw updates) and prebuilds
// the delta relation — all off the maintenance thread. The raw updates
// feed the delta build directly: BuildDelta merges same-tuple updates
// under the ring addition as it goes (an insert and a delete of one
// tuple cancel before any view work), so a separate view.Coalesce pass
// over the batch would only coalesce the same data twice. The resulting
// delta relation is exactly what the maintenance core partitions for
// parallel propagation, so a shard's batch flows shard -> delta ->
// partitions with no intermediate re-grouping. Building deltas here
// only touches immutable tree metadata (Maintainable.BuildDelta), so
// batchers run concurrently with the writer.
func (s *Server) runBatcher(sh *shard) {
	defer s.batchers.Done()
	for msg := range sh.ch {
		ups := msg.ups
		wgs := []*sync.WaitGroup{msg.wg}
		chClosed := false
	collect:
		for len(ups) < s.cfg.MaxBatch {
			select {
			case m2, ok := <-sh.ch:
				if !ok {
					chClosed = true
					break collect
				}
				ups = append(ups, m2.ups...)
				wgs = append(wgs, m2.wg)
			default:
				break collect
			}
		}
		delta, err := s.eng.BuildDelta(sh.rel, ups)
		if err != nil {
			// Unreachable: the relation was validated at Ingest and the
			// updates carry no schema. Release waiters and drop.
			for _, wg := range wgs {
				wg.Done()
			}
			continue
		}
		s.batches <- batch{rel: sh.rel, delta: delta, raw: len(ups), wgs: wgs}
		if chClosed {
			return
		}
	}
}

// runWriter is the single goroutine allowed to mutate the engine. It
// applies queued delta batches — at most MaxBatchesPerPublish per round,
// so one snapshot refit amortizes over a backlog — publishes a fresh
// snapshot, and only then releases the batches' waiters, giving Ingest's
// done channel read-your-writes semantics.
func (s *Server) runWriter() {
	defer close(s.writerDone)
	for {
		select {
		case req := <-s.exec:
			req.fn(s.eng)
			close(req.done)
		case b, ok := <-s.batches:
			if !ok {
				if s.dirty {
					s.publish()
				}
				return
			}
			wgs := s.applyBatch(b)
			chClosed := false
			n := 1
		drain:
			for n < s.cfg.MaxBatchesPerPublish {
				select {
				case b2, ok2 := <-s.batches:
					if !ok2 {
						chClosed = true
						break drain
					}
					wgs = append(wgs, s.applyBatch(b2)...)
					n++
				default:
					break drain
				}
			}
			s.publish()
			for _, wg := range wgs {
				wg.Done()
			}
			if chClosed {
				return
			}
		}
	}
}

// applyBatch applies one delta to the engine and returns the waiters to
// release after the next publish.
func (s *Server) applyBatch(b batch) []*sync.WaitGroup {
	if err := s.eng.ApplyBuilt(b.rel, b.delta); err != nil {
		s.nApplyErrs++
		s.lastErr = err.Error()
	} else {
		s.nDeltaTuples += uint64(b.delta.Len())
	}
	s.nBatches++
	s.nApplied += uint64(b.raw)
	s.dirty = true
	return b.wgs
}

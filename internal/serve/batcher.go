package serve

import (
	"sync"
	"time"

	"repro/internal/view"
	"repro/internal/wal"
)

// runBatcher drains one relation's shard channel. Each round it greedily
// collects whatever is queued (up to MaxBatch raw updates) and prebuilds
// the delta relation — all off the maintenance thread. The raw updates
// feed the delta build directly: BuildDelta merges same-tuple updates
// under the ring addition as it goes (an insert and a delete of one
// tuple cancel before any view work), so a separate view.Coalesce pass
// over the batch would only coalesce the same data twice. The resulting
// delta relation is exactly what the maintenance core partitions for
// parallel propagation, so a shard's batch flows shard -> delta ->
// partitions with no intermediate re-grouping. Building deltas here
// only touches immutable tree metadata (Maintainable.BuildDelta), so
// batchers run concurrently with the writer.
func (s *Server) runBatcher(sh *shard) {
	defer s.batchers.Done()
	for msg := range sh.ch {
		// The first message is the flush's oldest — its wait bounds the
		// batcher-induced queueing latency for the whole flush.
		wait := time.Since(msg.at)
		ups, wgs, refs, chClosed := sh.collect(msg, s.cfg.MaxBatch)
		s.met.batcherWait.Observe(wait.Seconds())
		s.met.batchRaw.Observe(float64(len(ups)))
		t0 := time.Now()
		delta, err := s.eng.BuildDelta(sh.rel, ups)
		build := time.Since(t0)
		s.met.stageBuild.Observe(build.Seconds())
		if err != nil {
			// Unreachable: the relation was validated at Ingest and the
			// updates carry no schema. Release waiters and drop.
			for _, wg := range wgs {
				wg.Done()
			}
			continue
		}
		// Write-ahead: the batch is logged before the writer can apply
		// it, so anything the engine ever saw is in the log. An append
		// failure poisons the shard and crashes the pipeline — the batch
		// is dropped unapplied and its waiters never release, keeping
		// acknowledged == logged == recoverable.
		var seq uint64
		if sh.wal != nil {
			if seq, err = sh.wal.AppendRefs(ups, refs); err != nil {
				s.walFail(err)
				return
			}
		}
		// The writer exits early on a crash; select so this send cannot
		// block forever against it.
		select {
		case s.batches <- batch{rel: sh.rel, delta: delta, raw: len(ups), seq: seq, wgs: wgs, wait: wait, build: build}:
		case <-s.crashed:
			return
		}
		if chClosed {
			return
		}
	}
}

// collect greedily gathers whatever is queued behind first (up to max
// raw updates) into one flush. A single-message round passes the
// ingester's slice through untouched; as soon as a second message
// arrives the updates are accumulated into the shard's reusable buffer,
// so steady-state flushing allocates nothing for the update slice
// (asserted by TestBatcherCollectSteadyStateAllocs). The waiter list is
// NOT reused: it escapes into the batch handed to the writer, which
// releases the waiters after the next publish, possibly while this
// batcher already collects the next round.
// Batch refs of identified messages (see ingestMsg.ref) accumulate into
// the shard's reusable refbuf — AppendRefs encodes them into the WAL
// record without retaining the slice, so it too is free by the next
// flush.
func (sh *shard) collect(first ingestMsg, max int) (ups []view.Update, wgs []*sync.WaitGroup, refs []wal.BatchRef, chClosed bool) {
	ups = first.ups
	wgs = append(wgs, first.wg)
	sh.refbuf = sh.refbuf[:0]
	if !first.ref.ID.IsZero() {
		sh.refbuf = append(sh.refbuf, first.ref)
	}
	buffered := false
	for len(ups) < max {
		select {
		case m2, ok := <-sh.ch:
			if !ok {
				return ups, wgs, sh.refbuf, true
			}
			if !buffered {
				sh.buf = append(sh.buf[:0], ups...)
				buffered = true
			}
			sh.buf = append(sh.buf, m2.ups...)
			ups = sh.buf
			wgs = append(wgs, m2.wg)
			if !m2.ref.ID.IsZero() {
				sh.refbuf = append(sh.refbuf, m2.ref)
			}
		default:
			return ups, wgs, sh.refbuf, false
		}
	}
	return ups, wgs, sh.refbuf, false
}

// runWriter is the single goroutine allowed to mutate the engine. It
// applies queued delta batches — at most MaxBatchesPerPublish per round,
// so one snapshot refit amortizes over a backlog — publishes a fresh
// snapshot, and only then releases the batches' waiters, giving Ingest's
// done channel read-your-writes semantics.
func (s *Server) runWriter() {
	defer close(s.writerDone)
	for {
		select {
		case <-s.crashed:
			// A WAL append failed somewhere: stop applying immediately.
			// Queued batches stay unapplied — recovery replays them from
			// the log, where they all made it before the failing one.
			return
		case req := <-s.exec:
			req.fn(s.eng)
			close(req.done)
		case b, ok := <-s.batches:
			if !ok {
				if s.dirty {
					s.publish()
				}
				return
			}
			wgs := s.applyBatch(b)
			chClosed := false
			n := 1
		drain:
			for n < s.cfg.MaxBatchesPerPublish {
				select {
				case b2, ok2 := <-s.batches:
					if !ok2 {
						chClosed = true
						break drain
					}
					wgs = append(wgs, s.applyBatch(b2)...)
					n++
				default:
					break drain
				}
			}
			s.publish()
			for _, wg := range wgs {
				wg.Done()
			}
			if chClosed {
				return
			}
		}
	}
}

// applyBatch applies one delta to the engine and returns the waiters to
// release after the next publish.
func (s *Server) applyBatch(b batch) []*sync.WaitGroup {
	t0 := time.Now()
	err := s.eng.ApplyBuilt(b.rel, b.delta)
	apply := time.Since(t0)
	s.met.stageApply.Observe(apply.Seconds())
	if err != nil {
		s.nApplyErrs++
		s.lastErr = err.Error()
	} else {
		s.nDeltaTuples += uint64(b.delta.Len())
	}
	s.nBatches++
	s.nApplied += uint64(b.raw)
	if b.seq != 0 {
		// Advance the position watermark the next checkpoint will stamp.
		// Per-shard sequence order holds because each shard has a single
		// batcher and batches reach the writer in send order.
		s.walPos.Shards[b.rel] = b.seq
		s.walPos.Applied += uint64(b.raw)
		s.walPos.Batches++
		s.walApplied.Store(s.walPos.Applied)
		s.walBatches.Store(s.walPos.Batches)
	}
	s.dirty = true
	if s.cfg.TraceLog != nil {
		s.cfg.TraceLog.Printf("batch rel=%s raw=%d delta=%d wait=%s build=%s apply=%s err=%v",
			b.rel, b.raw, b.delta.Len(), b.wait, b.build, apply, err != nil)
	}
	return b.wgs
}

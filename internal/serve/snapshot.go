package serve

import (
	"strconv"
	"time"

	"repro/fivm"
	"repro/internal/value"
)

// Snapshot is an immutable view of the served state at one point of the
// update stream: the engine's published fivm.Model (a deep copy sharing
// nothing with the engine) plus serving counters. Once published,
// nothing the writer does afterwards can change it, so any number of
// readers may use it concurrently without coordination.
//
// The Model's concrete type depends on the hosted engine kind:
// *fivm.AnalysisModel for analysis engines (ridge Predict, Covar, MI,
// ChowLiu), *fivm.TableModel for count/float/join engines, and
// *fivm.CovarModel for the scalar COVAR engines.
type Snapshot struct {
	// Version increments with every publish; version 1 is the state the
	// Server was created with.
	Version uint64
	// At is the publish time; time.Since(At) is the snapshot's age,
	// the staleness signal /healthz and /metrics report.
	At time.Time
	// Kind is the hosted engine kind.
	Kind fivm.Kind
	// Model is the engine's published model.
	Model fivm.Model
	// Stats are the serving counters as of this publish.
	Stats Stats
}

// publish builds a fresh snapshot from the engine and swaps it in. Only
// the constructor and the writer goroutine call it.
func (s *Server) publish() {
	t0 := time.Now()
	s.nSnapshots++
	s.dirty = false
	var prev fivm.Model
	if p := s.snap.Load(); p != nil {
		prev = p.Model
	}
	ms := &Snapshot{
		Version: s.nSnapshots,
		Kind:    s.eng.Kind(),
		Model:   s.eng.PublishModel(prev),
		Stats: Stats{
			Ingested:    s.ingested.Load(),
			Applied:     s.nApplied,
			Batches:     s.nBatches,
			DeltaTuples: s.nDeltaTuples,
			Snapshots:   s.nSnapshots,
			ApplyErrors: s.nApplyErrs,
			LastError:   s.lastErr,
			View:        s.eng.Stats(),
		},
	}
	ms.At = time.Now()
	s.snap.Store(ms)
	s.met.stagePublish.Observe(time.Since(t0).Seconds())
	if s.cfg.TraceLog != nil {
		s.cfg.TraceLog.Printf("publish version=%d applied=%d took=%s", ms.Version, ms.Stats.Applied, time.Since(t0))
	}
}

// Predict evaluates the snapshot's model on the given feature values.
// Engines that publish no predictive model return an error.
func (ms *Snapshot) Predict(x map[string]value.Value) (float64, error) {
	return ms.Model.Predict(x)
}

// Count returns the model's scalar summary (see fivm.Model.Count).
func (ms *Snapshot) Count() float64 { return ms.Model.Count() }

// ParseValue converts external text (query parameters, CSV cells) to a
// typed value: integer, then float, then string; "null" (any case) and
// "" parse to NULL.
func ParseValue(s string) value.Value {
	switch s {
	case "", "null", "NULL", "Null":
		return value.Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return value.Float(f)
	}
	return value.String(s)
}

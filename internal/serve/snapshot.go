package serve

import (
	"fmt"
	"strconv"

	"repro/fivm"
	"repro/internal/ml"
	"repro/internal/ring"
	"repro/internal/value"
)

// ModelSnapshot is an immutable view of the models at one point of the
// update stream. Every field is a deep copy or derived purely from one:
// once published, nothing the writer does afterwards can change it, so
// any number of readers may use it concurrently without coordination.
type ModelSnapshot struct {
	// Version increments with every publish; version 1 is the state the
	// Server was created with.
	Version uint64
	// Label is the ridge model's target attribute ("" when fitting is
	// disabled).
	Label string
	// Payload is a deep clone of the maintained compound aggregate
	// (nil when the join is empty).
	Payload *ring.RelCovar
	// Features is the payload indexing metadata.
	Features []ml.Feature
	// BinWidths maps binned features to their width: their one-hot
	// categories are bin indexes, so Predict inputs must be binned the
	// same way before matching.
	BinWidths map[string]float64
	// Sigma and Model are the covariance matrix and ridge model fit
	// against this payload; nil when fitting is disabled or failed
	// (FitErr carries the reason).
	Sigma  *ml.SigmaMatrix
	Model  *ml.RidgeModel
	FitErr string
	// Stats are the serving counters as of this publish.
	Stats Stats
}

// publish builds a fresh snapshot from the engine and swaps it in. Only
// the constructor and the writer goroutine call it.
func (s *Server) publish() {
	s.nSnapshots++
	s.dirty = false
	ms := &ModelSnapshot{
		Version:   s.nSnapshots,
		Label:     s.cfg.Label,
		Payload:   s.an.ClonePayload(),
		Features:  s.an.Features(),
		BinWidths: s.binWidths,
		Stats: Stats{
			Ingested:    s.ingested.Load(),
			Applied:     s.nApplied,
			Batches:     s.nBatches,
			DeltaTuples: s.nDeltaTuples,
			Snapshots:   s.nSnapshots,
			ApplyErrors: s.nApplyErrs,
			LastError:   s.lastErr,
			View:        s.an.Stats(),
		},
	}
	if s.cfg.Label != "" {
		var warm *ml.RidgeModel
		if prev := s.snap.Load(); prev != nil {
			// Warm-start from the previously published optimum, on a
			// clone so the published model is never mutated.
			warm = prev.Model.Clone()
		}
		// The warm clone re-converges against snapshot-owned state only.
		model, sigma, err := fivm.RidgeFromPayload(ms.Payload, ms.Features, s.cfg.Label, warm, s.cfg.Ridge)
		if err != nil {
			ms.FitErr = err.Error()
		} else {
			ms.Model, ms.Sigma = model, sigma
		}
	}
	s.snap.Store(ms)
}

// Predict evaluates the snapshot's ridge model on the given feature
// values (attribute name -> value). Continuous features coerce to
// float; categorical features one-hot match against the categories
// observed at snapshot time (an unseen category contributes zero to
// every column). Entries for the label attribute are ignored; all other
// feature attributes must be present.
func (ms *ModelSnapshot) Predict(x map[string]value.Value) (float64, error) {
	if ms.Model == nil {
		if ms.FitErr != "" {
			return 0, fmt.Errorf("serve: no model: %s", ms.FitErr)
		}
		return 0, fmt.Errorf("serve: model fitting is disabled (no label configured)")
	}
	vec := make([]float64, ms.Sigma.Dim())
	for i, col := range ms.Sigma.Cols {
		if col.Attr == ms.Label {
			continue
		}
		v, ok := x[col.Attr]
		if !ok {
			return 0, fmt.Errorf("serve: missing feature %s", col.Attr)
		}
		if col.IsCat {
			if w := ms.BinWidths[col.Attr]; w > 0 {
				v = value.Int(binFor(v.AsFloat(), w))
			}
			if v.Equal(col.Category) {
				vec[i] = 1
			}
		} else {
			vec[i] = v.AsFloat()
		}
	}
	return ms.Model.Predict(vec), nil
}

// binFor mirrors ring.LiftBinned's discretization exactly, so Predict
// inputs land in the same bins the payload was built with.
func binFor(f, width float64) int64 {
	bin := int64(f / width)
	if f < 0 {
		bin--
	}
	return bin
}

// Covar converts the snapshot payload to a dense sigma matrix (it
// returns the one fit at publish time when available).
func (ms *ModelSnapshot) Covar() (*ml.SigmaMatrix, error) {
	if ms.Sigma != nil {
		return ms.Sigma, nil
	}
	return ml.SigmaFromRelCovar(ms.Payload, ms.Features)
}

// MI computes the pairwise mutual-information matrix from the snapshot
// payload; every feature must be categorical or binned.
func (ms *ModelSnapshot) MI() (*ml.MIMatrix, error) {
	return ml.MIFromRelCovar(ms.Payload, ms.Features)
}

// ChowLiu builds the Chow-Liu tree rooted at root from the snapshot's
// MI matrix.
func (ms *ModelSnapshot) ChowLiu(root string) (*ml.ChowLiuTree, error) {
	mi, err := ms.MI()
	if err != nil {
		return nil, err
	}
	return ml.ChowLiu(mi, root)
}

// SelectFeatures ranks features by MI with the label and applies the
// threshold.
func (ms *ModelSnapshot) SelectFeatures(label string, threshold float64) ([]ml.RankedAttr, []string, error) {
	mi, err := ms.MI()
	if err != nil {
		return nil, nil, err
	}
	return ml.SelectFeatures(mi, label, threshold)
}

// Count returns the number of tuples in the maintained join (SUM(1)).
func (ms *ModelSnapshot) Count() float64 { return ms.Payload.Count().Scalar() }

// ParseValue converts external text (query parameters, CSV cells) to a
// typed value: integer, then float, then string; "null" (any case) and
// "" parse to NULL.
func ParseValue(s string) value.Value {
	switch s {
	case "", "null", "NULL", "Null":
		return value.Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return value.Float(f)
	}
	return value.String(s)
}

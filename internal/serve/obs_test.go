package serve

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/view"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxBatch: -1},
		{ChannelCap: -8},
		{MaxBatchesPerPublish: -2},
		{HighWatermark: -1},
		{ChannelCap: 4, HighWatermark: 10}, // watermark the queue can never reach
	}
	for _, cfg := range bad {
		if _, err := New(testAnalysis(t), cfg); err == nil {
			t.Errorf("New accepted nonsensical config %+v", cfg)
		}
	}
	// A watermark at or below the capacity is valid.
	srv, err := New(testAnalysis(t), Config{ChannelCap: 8, HighWatermark: 4})
	if err != nil {
		t.Fatalf("valid watermark rejected: %v", err)
	}
	srv.Close()
}

// TestBackpressureShedsAndRecovers drives the admission-control path
// end to end: with the writer stalled and tiny queues, ingestion must
// shed with 429 + Retry-After instead of blocking, and must accept
// again once the backlog drains.
func TestBackpressureShedsAndRecovers(t *testing.T) {
	an := testAnalysis(t)
	srv, err := New(an, Config{MaxBatch: 1, ChannelCap: 1, HighWatermark: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := newTestHTTP(t, srv)

	// Stall the writer between batches so the pipeline backs up. The
	// deferred unblock keeps Close from deadlocking if an assertion
	// fails mid-test.
	block := make(chan struct{})
	var unblockOnce sync.Once
	unblock := func() { unblockOnce.Do(func() { close(block) }) }
	defer unblock()
	syncEntered := make(chan struct{})
	go srv.Sync(func(Maintainable) { close(syncEntered); <-block })
	<-syncEntered

	// Fill the pipeline until admission control sheds. The batcher keeps
	// draining into the (stalled) writer queue, so shedding needs a few
	// rounds to stick — retry with a deadline.
	one := []view.Update{{Rel: "R", Tuple: value.T(1, 1), Mult: 1}}
	deadline := time.Now().Add(10 * time.Second)
	shed := false
	for time.Now().Before(deadline) {
		_, err := srv.Ingest(one)
		if oe, ok := err.(*OverloadError); ok {
			if oe.Rel != "R" || oe.Depth < 1 || oe.Capacity != 1 {
				t.Fatalf("OverloadError = %+v, want Rel=R Depth>=1 Capacity=1", oe)
			}
			shed = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !shed {
		t.Fatal("pipeline never shed despite a stalled writer and ChannelCap=1")
	}

	// The HTTP surface maps the overload to 429 + Retry-After. A single
	// POST can slip through while the batcher momentarily drains the
	// queue, so retry until one is shed.
	got429 := false
	for time.Now().Before(deadline) {
		resp, err := http.Post(ts.URL+"/update", "application/json",
			bytes.NewBufferString(`{"updates":[{"rel":"R","tuple":[2,2]}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 response missing Retry-After header")
			}
			got429 = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /update under overload = %d, want 429 or 202", resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("POST /update never returned 429 under a stalled writer")
	}
	if got := srv.Stats().Shed; got == 0 {
		t.Fatal("Stats().Shed = 0 after shedding")
	}

	// Recovery: release the writer; once the backlog drains, ingestion
	// must accept again.
	unblock()
	accepted := false
	for time.Now().Before(deadline) {
		done, err := srv.Ingest(one)
		if err == nil {
			<-done
			accepted = true
			break
		}
		if _, ok := err.(*OverloadError); !ok {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if !accepted {
		t.Fatal("ingestion did not recover after the backlog drained")
	}
}

func newTestHTTP(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewHandler(srv))
	t.Cleanup(ts.Close)
	return ts
}

// TestMetricsExposition scrapes /metrics after traffic and asserts the
// payload parses as Prometheus text exposition and covers every
// pipeline stage.
func TestMetricsExposition(t *testing.T) {
	srv := newTestServer(t)
	ingestWait(t, srv, seedUpdates(100, 10))
	ts := newTestHTTP(t, srv)

	if _, err := http.Get(ts.URL + "/stats"); err != nil { // exercise a GET route counter
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	samples, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse as exposition format: %v", err)
	}
	if got := samples["fivm_ingest_updates_total"]; got != 110 {
		t.Errorf("fivm_ingest_updates_total = %v, want 110", got)
	}
	if got := samples["fivm_applied_updates_total"]; got != 110 {
		t.Errorf("fivm_applied_updates_total = %v, want 110", got)
	}
	if got := samples["fivm_ingest_shed_updates_total"]; got != 0 {
		t.Errorf("fivm_ingest_shed_updates_total = %v, want 0", got)
	}
	if got := samples["fivm_snapshot_version"]; got < 2 {
		t.Errorf("fivm_snapshot_version = %v, want >= 2", got)
	}
	// Every pipeline stage must have recorded observations.
	for _, stage := range []string{"build", "apply", "publish"} {
		key := `fivm_stage_seconds_count{stage="` + stage + `"}`
		if got := samples[key]; got == 0 {
			t.Errorf("%s = %v, want > 0", key, got)
		}
	}
	for _, key := range []string{
		`fivm_ingest_queue_depth{rel="R"}`,
		`fivm_ingest_queue_capacity{rel="S"}`,
		`fivm_batcher_wait_seconds_count`,
		`fivm_batch_raw_updates_count`,
		`fivm_snapshot_age_seconds`,
	} {
		if _, ok := samples[key]; !ok {
			t.Errorf("/metrics missing series %s", key)
		}
	}
	// The scrape itself and the /stats GET must show up per route.
	if got := samples[`fivm_http_requests_total{route="/stats",code="2xx"}`]; got != 1 {
		t.Errorf("/stats request counter = %v, want 1", got)
	}
	if _, ok := samples[`fivm_http_request_seconds_count{route="/update"}`]; !ok {
		t.Error("/metrics missing the /update latency histogram")
	}
}

// TestStatsAndHealthzEnriched asserts the staleness fields health
// checks rely on: snapshot version and age, per-shard queues, and
// shed/accepted counts — on both /stats and /healthz.
func TestStatsAndHealthzEnriched(t *testing.T) {
	srv := newTestServer(t)
	ingestWait(t, srv, seedUpdates(20, 4))
	ts := newTestHTTP(t, srv)

	for _, path := range []string{"/stats", "/healthz"} {
		code, body := getJSON(t, ts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d: %v", path, code, body)
		}
		versionKey := "snapshot_version"
		if path == "/healthz" {
			versionKey = "version"
		}
		if v, ok := body[versionKey].(float64); !ok || v < 2 {
			t.Errorf("%s %s = %v, want >= 2", path, versionKey, body[versionKey])
		}
		if age, ok := body["snapshot_age_seconds"].(float64); !ok || age < 0 {
			t.Errorf("%s snapshot_age_seconds = %v", path, body["snapshot_age_seconds"])
		}
		if body["shed"].(float64) != 0 {
			t.Errorf("%s shed = %v, want 0", path, body["shed"])
		}
		if body["ingested"].(float64) != 24 {
			t.Errorf("%s ingested = %v, want 24", path, body["ingested"])
		}
		shards, ok := body["shards"].(map[string]any)
		if !ok || len(shards) != 2 {
			t.Fatalf("%s shards = %v, want R and S", path, body["shards"])
		}
		r := shards["R"].(map[string]any)
		if r["capacity"].(float64) != 256 || r["arity"].(float64) != 2 {
			t.Errorf("%s shard R = %v, want capacity=256 arity=2", path, r)
		}
	}
}

// TestTraceLogEmitsSpans checks the -trace plumbing: with a TraceLog
// configured, batch and publish span lines appear.
func TestTraceLogEmitsSpans(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	srv, err := New(testAnalysis(t), Config{TraceLog: logger})
	if err != nil {
		t.Fatal(err)
	}
	ingestWait(t, srv, seedUpdates(10, 2))
	srv.Close()
	out := buf.String()
	for _, want := range []string{"batch rel=", "wait=", "build=", "apply=", "publish version="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace log missing %q:\n%s", want, out)
		}
	}
}

// TestPipelineInstrumentationAllocFree pins that the per-batch metric
// recording the batcher and writer perform allocates nothing, keeping
// the serving pipeline's zero-allocation steady state intact (the
// collect-path budget is pinned separately by
// TestBatcherCollectSteadyStateAllocs, and the engine-side 38/24
// allocs-per-update budgets by fivm's alloc tests).
func TestPipelineInstrumentationAllocFree(t *testing.T) {
	srv := newTestServer(t)
	m := srv.met
	if allocs := testing.AllocsPerRun(500, func() {
		m.batcherWait.Observe(1.5e-5)
		m.batchRaw.Observe(64)
		m.stageBuild.Observe(2e-4)
		m.stageApply.Observe(3e-4)
		m.stagePublish.Observe(4e-4)
		srv.ingested.Add(1)
		srv.shed.Add(1)
	}); allocs != 0 {
		t.Errorf("per-batch instrumentation allocates %.1f per round, want 0", allocs)
	}
}

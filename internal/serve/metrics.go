package serve

import (
	"io"
	"sort"
	"time"

	"repro/internal/obs"
)

// httpRoutes are the handler paths NewHandler instruments with a
// latency histogram and per-status-class counters. Routes are a fixed
// set so every series pre-registers at construction — recording stays
// allocation-free.
// The v1 routes and their deprecated unversioned aliases are distinct
// entries, so dashboards can watch alias traffic drain to zero.
var httpRoutes = []string{
	"/v1/update", "/v1/predict", "/v1/model", "/v1/stats", "/v1/viewtree", "/v1/healthz", "/v1/partial",
	"/update", "/predict", "/model", "/stats", "/viewtree", "/healthz", "/metrics",
}

// codeClasses label HTTP status counters; a response's class is
// status/100 mapped onto this array (3xx folds into the index after
// 2xx, and anything outside 2xx–5xx clamps to 5xx).
var codeClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// pipelineMetrics is the serving pipeline's metric surface, exposed on
// GET /metrics. Counters that mirror writer-goroutine state read from
// the latest published Snapshot (immutable, so scrapes race with
// nothing); live state (ingest counts, queue depths, snapshot age)
// reads atomics or channel lengths at scrape time. Histograms are
// written from the batcher and writer goroutines directly — obs
// histograms are lock-free and allocation-free, so the hot path only
// pays a few atomic adds and time.Now calls per *batch*, not per
// update.
type pipelineMetrics struct {
	reg *obs.Registry

	// Per-flush batcher observations.
	batchRaw    *obs.Histogram // raw updates collected into one flush
	batcherWait *obs.Histogram // queue wait of the flush's oldest message
	// Per-stage latency: delta build (batcher goroutine), delta apply
	// and snapshot publish (writer goroutine).
	stageBuild   *obs.Histogram
	stageApply   *obs.Histogram
	stagePublish *obs.Histogram

	httpLat   map[string]*obs.Histogram
	httpCodes map[string]*[4]*obs.Counter
}

func newPipelineMetrics(s *Server) *pipelineMetrics {
	reg := obs.NewRegistry()
	m := &pipelineMetrics{
		reg:       reg,
		httpLat:   make(map[string]*obs.Histogram, len(httpRoutes)),
		httpCodes: make(map[string]*[4]*obs.Counter, len(httpRoutes)),
	}

	// Ingest admission: live atomics.
	reg.CounterFunc("fivm_ingest_updates_total", "",
		"Tuple updates accepted by Ingest.", s.ingested.Load)
	reg.CounterFunc("fivm_ingest_shed_updates_total", "",
		"Tuple updates rejected by admission control (ingest queue at or above the high-watermark).", s.shed.Load)

	// Idempotency: the dedup table behind exactly-once ingest.
	reg.CounterFunc("fivm_dedup_hits_total", "",
		"Updates of replayed batch IDs answered from the dedup table instead of re-applied.",
		s.dedup.hits.Load)
	reg.GaugeFunc("fivm_dedup_entries", "",
		"Live entries in the idempotency dedup table.",
		func() float64 { return float64(s.dedup.size()) })

	// Per-shard ingest queues: depth and capacity, read at scrape time.
	names := make([]string, 0, len(s.shards))
	for rel := range s.shards {
		names = append(names, rel)
	}
	sort.Strings(names)
	for _, rel := range names {
		sh := s.shards[rel]
		reg.GaugeFunc("fivm_ingest_queue_depth", `rel="`+rel+`"`,
			"Queued ingest messages per relation shard.",
			func() float64 { return float64(len(sh.ch)) })
		reg.GaugeFunc("fivm_ingest_queue_capacity", `rel="`+rel+`"`,
			"Ingest channel capacity per relation shard.",
			func() float64 { return float64(cap(sh.ch)) })
	}

	// Writer-side cumulative counters, via the immutable snapshot: the
	// writer's private fields are never read from another goroutine.
	snapStats := func() Stats { return s.snap.Load().Stats }
	reg.CounterFunc("fivm_applied_updates_total", "",
		"Ingested updates represented by applied batches.",
		func() uint64 { return snapStats().Applied })
	reg.CounterFunc("fivm_batches_total", "",
		"Delta batches applied to the engine.",
		func() uint64 { return snapStats().Batches })
	reg.CounterFunc("fivm_delta_tuples_total", "",
		"Distinct delta tuples applied after coalescing.",
		func() uint64 { return snapStats().DeltaTuples })
	reg.CounterFunc("fivm_apply_errors_total", "",
		"Failed ApplyBuilt calls.",
		func() uint64 { return snapStats().ApplyErrors })
	reg.CounterFunc("fivm_snapshots_total", "",
		"Published model snapshots.",
		func() uint64 { return snapStats().Snapshots })
	reg.GaugeFunc("fivm_snapshot_version", "",
		"Version of the latest published snapshot.",
		func() float64 { return float64(s.snap.Load().Version) })
	reg.GaugeFunc("fivm_snapshot_age_seconds", "",
		"Seconds since the latest snapshot was published.",
		func() float64 { return time.Since(s.snap.Load().At).Seconds() })

	// Durability: WAL append/fsync/checkpoint surface, present only
	// when the pipeline runs with a WAL.
	if w := s.cfg.WAL; w != nil {
		reg.CounterFunc("fivm_wal_appended_batches_total", "",
			"Batches appended to the write-ahead log.",
			func() uint64 { return w.Stats().AppendedBatches })
		reg.CounterFunc("fivm_wal_appended_bytes_total", "",
			"Bytes appended to the write-ahead log.",
			func() uint64 { return w.Stats().AppendedBytes })
		reg.GaugeFunc("fivm_wal_segments", "",
			"Live WAL segment files across all shards.",
			func() float64 { return float64(w.Stats().Segments) })
		reg.GaugeFunc("fivm_wal_checkpoint_seq", "",
			"Sequence number of the newest valid checkpoint (0 = none).",
			func() float64 { return float64(w.Stats().CheckpointSeq) })
		reg.GaugeFunc("fivm_wal_checkpoint_age_seconds", "",
			"Seconds since the newest checkpoint was written (time since boot when none exists) — the replay-on-crash exposure.",
			func() float64 { return w.CheckpointAge().Seconds() })
		reg.CounterFunc("fivm_wal_recovered_updates_total", "",
			"Cumulative updates boot recovery restored (checkpoint coverage plus replayed log records).",
			func() uint64 { return s.walRecovered.Applied })
		walFsync := reg.NewHistogram("fivm_wal_fsync_seconds", "",
			"WAL fsync latency (inline under policy always, background under interval).",
			obs.LatencyBuckets())
		w.SetFsyncObserver(walFsync.Observe)
	}

	// Batch shape and stage latencies.
	m.batchRaw = reg.NewHistogram("fivm_batch_raw_updates", "",
		"Raw updates coalesced into one flushed batch (the coalescing ratio is fivm_delta_tuples_total over fivm_applied_updates_total).",
		obs.ExpBuckets(1, 2, 15))
	m.batcherWait = reg.NewHistogram("fivm_batcher_wait_seconds", "",
		"Queue wait of a flush's oldest message, ingest enqueue to batcher collect.",
		obs.LatencyBuckets())
	stageHelp := "Write-path stage latency: build (BuildDelta, batcher goroutine), apply (ApplyBuilt), publish (PublishModel + snapshot swap)."
	m.stageBuild = reg.NewHistogram("fivm_stage_seconds", `stage="build"`, stageHelp, obs.LatencyBuckets())
	m.stageApply = reg.NewHistogram("fivm_stage_seconds", `stage="apply"`, stageHelp, obs.LatencyBuckets())
	m.stagePublish = reg.NewHistogram("fivm_stage_seconds", `stage="publish"`, stageHelp, obs.LatencyBuckets())

	// HTTP surface, by route.
	for _, rt := range httpRoutes {
		m.httpLat[rt] = reg.NewHistogram("fivm_http_request_seconds", `route="`+rt+`"`,
			"HTTP request latency by route.", obs.LatencyBuckets())
		var cs [4]*obs.Counter
		for i, class := range codeClasses {
			cs[i] = reg.NewCounter("fivm_http_requests_total", `route="`+rt+`",code="`+class+`"`,
				"HTTP responses by route and status class.")
		}
		m.httpCodes[rt] = &cs
	}
	return m
}

// WriteMetrics renders the server's metric registry in the Prometheus
// text exposition format — the body of GET /metrics, also reachable
// directly for library embedders.
func (s *Server) WriteMetrics(w io.Writer) error { return s.met.reg.WritePrometheus(w) }

package ml

import (
	"fmt"
	"sort"
	"strings"
)

// ChowLiuEdge is one edge of a Chow-Liu tree, oriented parent → child
// once the tree is rooted.
type ChowLiuEdge struct {
	Parent string
	Child  string
	MI     float64
}

// ChowLiuTree is the optimal tree-shaped Bayesian network over the MI
// matrix's attributes: the maximum spanning tree under pairwise mutual
// information (Chow & Liu 1968), rooted at a chosen attribute.
type ChowLiuTree struct {
	Root  string
	Edges []ChowLiuEdge
	// TotalMI is the sum of edge MI values — the objective the tree
	// maximizes.
	TotalMI float64
}

// ChowLiu builds the Chow-Liu tree from an MI matrix via Prim's
// algorithm, rooting it at root (which must be an attribute of the
// matrix). Edges come out in insertion (Prim) order; children of the
// same parent are deterministic because ties break by attribute name.
func ChowLiu(m *MIMatrix, root string) (*ChowLiuTree, error) {
	ri := m.IndexOf(root)
	if ri < 0 {
		return nil, fmt.Errorf("ml: Chow-Liu root %s not in MI matrix", root)
	}
	n := m.Dim()
	tree := &ChowLiuTree{Root: root}
	if n == 1 {
		return tree, nil
	}

	inTree := make([]bool, n)
	bestMI := make([]float64, n) // best MI connecting i to the tree
	bestVia := make([]int, n)    // the tree node achieving it
	order := make([]int, 0, n)   // candidate scan order for tie-break
	for i := 0; i < n; i++ {
		bestMI[i] = -1
		bestVia[i] = -1
		order = append(order, i)
	}
	// Deterministic tie-break by attribute name.
	sort.Slice(order, func(a, b int) bool { return m.Attrs[order[a]] < m.Attrs[order[b]] })

	attach := func(v int) {
		inTree[v] = true
		for i := 0; i < n; i++ {
			if !inTree[i] && m.At(v, i) > bestMI[i] {
				bestMI[i] = m.At(v, i)
				bestVia[i] = v
			}
		}
	}
	attach(ri)
	for step := 1; step < n; step++ {
		pick := -1
		for _, i := range order {
			if inTree[i] {
				continue
			}
			if pick < 0 || bestMI[i] > bestMI[pick] {
				pick = i
			}
		}
		tree.Edges = append(tree.Edges, ChowLiuEdge{
			Parent: m.Attrs[bestVia[pick]],
			Child:  m.Attrs[pick],
			MI:     bestMI[pick],
		})
		tree.TotalMI += bestMI[pick]
		attach(pick)
	}
	return tree, nil
}

// Children returns the children of attr in the tree, sorted.
func (t *ChowLiuTree) Children(attr string) []string {
	var out []string
	for _, e := range t.Edges {
		if e.Parent == attr {
			out = append(out, e.Child)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the tree as an indented hierarchy from the root.
func (t *ChowLiuTree) String() string {
	var b strings.Builder
	var rec func(node string, depth int)
	rec = func(node string, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(node)
		b.WriteByte('\n')
		for _, c := range t.Children(node) {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}

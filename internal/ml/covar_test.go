package ml

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

func TestSigmaFromCovar(t *testing.T) {
	r := ring.NewCovarRing(2)
	total := r.Zero()
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	for _, row := range rows {
		p := r.Mul(r.Lift(0)(value.Float(row[0])), r.Lift(1)(value.Float(row[1])))
		total = r.Add(total, p)
	}
	feats := []Feature{{Name: "x", Index: 0}, {Name: "y", Index: 1}}
	m, err := SigmaFromCovar(total, feats)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 {
		t.Errorf("count = %v", m.Count)
	}
	if m.Sum[0] != 6 || m.Sum[1] != 60 {
		t.Errorf("sums = %v", m.Sum)
	}
	if m.At(0, 0) != 14 || m.At(0, 1) != 140 || m.At(1, 1) != 1400 {
		t.Errorf("products = %v %v %v", m.At(0, 0), m.At(0, 1), m.At(1, 1))
	}
	if m.At(0, 1) != m.At(1, 0) {
		t.Error("matrix not symmetric")
	}
	if cols := m.ColumnsOf("y"); len(cols) != 1 || cols[0] != 1 {
		t.Errorf("ColumnsOf = %v", cols)
	}
	if m.Cols[0].Label() != "x" {
		t.Errorf("Label = %q", m.Cols[0].Label())
	}
}

func TestSigmaFromCovarRejectsCategorical(t *testing.T) {
	r := ring.NewCovarRing(1)
	if _, err := SigmaFromCovar(r.One(), []Feature{{Name: "c", Categorical: true, Index: 0}}); err == nil {
		t.Error("categorical feature accepted by scalar extraction")
	}
}

func TestSigmaFromRelCovarMixed(t *testing.T) {
	// Rows of (cat, x, y): categories "a" (twice) and "b" (once).
	r := ring.NewRelCovarRing(3)
	gc := r.LiftCategorical(0)
	gx := r.LiftContinuous(1)
	gy := r.LiftContinuous(2)
	type row struct {
		c    string
		x, y float64
	}
	rows := []row{{"a", 1, 10}, {"a", 2, 20}, {"b", 3, 30}}
	total := r.Zero()
	for _, rw := range rows {
		p := r.Mul(r.Mul(gc(value.String(rw.c)), gx(value.Float(rw.x))), gy(value.Float(rw.y)))
		total = r.Add(total, p)
	}
	feats := []Feature{
		{Name: "c", Categorical: true, Index: 0},
		{Name: "x", Index: 1},
		{Name: "y", Index: 2},
	}
	m, err := SigmaFromRelCovar(total, feats)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: c=a, c=b, x, y.
	if m.Dim() != 4 {
		t.Fatalf("dim = %d, want 4", m.Dim())
	}
	ca := m.ColumnsOf("c")
	if len(ca) != 2 {
		t.Fatalf("categorical columns = %v", ca)
	}
	if !m.Cols[ca[0]].IsCat || m.Cols[ca[0]].Label() != "c=a" {
		t.Errorf("first column = %+v", m.Cols[ca[0]])
	}
	ia, ib := ca[0], ca[1]
	ix := m.ColumnsOf("x")[0]
	iy := m.ColumnsOf("y")[0]

	if m.Count != 3 {
		t.Errorf("count = %v", m.Count)
	}
	// One-hot sums are category counts.
	if m.Sum[ia] != 2 || m.Sum[ib] != 1 {
		t.Errorf("one-hot sums = %v, %v", m.Sum[ia], m.Sum[ib])
	}
	// Diagonal one-hot blocks: SUM(1) per category, zero across.
	if m.At(ia, ia) != 2 || m.At(ib, ib) != 1 || m.At(ia, ib) != 0 {
		t.Errorf("one-hot diag = %v %v %v", m.At(ia, ia), m.At(ib, ib), m.At(ia, ib))
	}
	// Cat × continuous: SUM(x) per category.
	if m.At(ia, ix) != 3 || m.At(ib, ix) != 3 {
		t.Errorf("Q(c,x) = %v, %v", m.At(ia, ix), m.At(ib, ix))
	}
	if m.At(ia, iy) != 30 || m.At(ib, iy) != 30 {
		t.Errorf("Q(c,y) = %v, %v", m.At(ia, iy), m.At(ib, iy))
	}
	// Continuous block.
	if m.At(ix, ix) != 14 || m.At(ix, iy) != 140 || m.At(iy, iy) != 1400 {
		t.Errorf("continuous block = %v %v %v", m.At(ix, ix), m.At(ix, iy), m.At(iy, iy))
	}
	// Symmetry everywhere.
	for i := 0; i < m.Dim(); i++ {
		for j := 0; j < m.Dim(); j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestSigmaFromRelCovarTwoCategoricals(t *testing.T) {
	r := ring.NewRelCovarRing(2)
	g1 := r.LiftCategorical(0)
	g2 := r.LiftCategorical(1)
	total := r.Zero()
	// (u, x) co-occur twice; (v, y) once.
	for i := 0; i < 2; i++ {
		total = r.Add(total, r.Mul(g1(value.String("u")), g2(value.String("x"))))
	}
	total = r.Add(total, r.Mul(g1(value.String("v")), g2(value.String("y"))))

	feats := []Feature{
		{Name: "p", Categorical: true, Index: 0},
		{Name: "q", Categorical: true, Index: 1},
	}
	m, err := SigmaFromRelCovar(total, feats)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 4 { // p=u, p=v, q=x, q=y
		t.Fatalf("dim = %d", m.Dim())
	}
	iu, iv := m.ColumnsOf("p")[0], m.ColumnsOf("p")[1]
	ixq, iyq := m.ColumnsOf("q")[0], m.ColumnsOf("q")[1]
	if m.At(iu, ixq) != 2 || m.At(iv, iyq) != 1 {
		t.Errorf("co-occurrence block wrong: %v, %v", m.At(iu, ixq), m.At(iv, iyq))
	}
	if m.At(iu, iyq) != 0 || m.At(iv, ixq) != 0 {
		t.Errorf("never-co-occurring pairs nonzero: %v, %v", m.At(iu, iyq), m.At(iv, ixq))
	}
}

func TestSigmaFromRelCovarNil(t *testing.T) {
	if _, err := SigmaFromRelCovar(nil, nil); err == nil {
		t.Error("nil payload accepted")
	}
}

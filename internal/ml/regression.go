package ml

import (
	"fmt"
	"math"
)

// RidgeModel is a ridge linear regression model over the expanded
// feature columns of a SigmaMatrix, with an explicit intercept.
type RidgeModel struct {
	// Intercept is θ0.
	Intercept float64
	// Weights holds one θ per feature column (the label's column weight
	// is unused and kept at zero).
	Weights []float64
	// LabelCol is the column index of the label in the SigmaMatrix.
	LabelCol int
	// Iterations is the number of gradient steps the last Fit run took.
	Iterations int
	// Converged reports whether the gradient norm dropped below the
	// tolerance before the iteration cap.
	Converged bool
}

// RidgeConfig configures the batch-gradient-descent solver.
type RidgeConfig struct {
	// Lambda is the L2 regularization strength (applied to weights, not
	// the intercept).
	Lambda float64
	// LearningRate is the initial step size; the solver backtracks when
	// a step increases the objective.
	LearningRate float64
	// MaxIters caps gradient steps per Fit call.
	MaxIters int
	// Tolerance stops iteration when the gradient's max-norm falls
	// below it.
	Tolerance float64
	// Normalize standardizes feature columns (zero mean, unit variance)
	// inside the solver using only the sigma statistics, then maps the
	// parameters back. This conditions gradient descent on raw-scale
	// data; constant columns are left unscaled.
	Normalize bool
}

// DefaultRidgeConfig returns a reasonable solver configuration.
func DefaultRidgeConfig() RidgeConfig {
	return RidgeConfig{Lambda: 1e-3, LearningRate: 0.1, MaxIters: 5000, Tolerance: 1e-8, Normalize: true}
}

// standardized derives the sigma statistics of the transformed features
// x'_i = (x_i − μ_i)/σ_i from raw sigma statistics alone:
//
//	Σ'_ij = (Σ_ij − N μ_i μ_j) / (σ_i σ_j)
//	s'_i  = 0
//
// The label column is standardized too, so the solver works on a
// well-conditioned correlation-like matrix throughout.
func standardized(m *SigmaMatrix) (*SigmaMatrix, []float64, []float64) {
	n := m.Dim()
	mu := make([]float64, n)
	sigma := make([]float64, n)
	for i := 0; i < n; i++ {
		mu[i] = m.Sum[i] / m.Count
		v := m.At(i, i)/m.Count - mu[i]*mu[i]
		if v > 1e-12 {
			sigma[i] = math.Sqrt(v)
		} else {
			sigma[i] = 1 // constant column: leave unscaled
		}
	}
	out := &SigmaMatrix{n: n, Cols: m.Cols, Count: m.Count, Sum: make([]float64, n), Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = (m.At(i, j) - m.Count*mu[i]*mu[j]) / (sigma[i] * sigma[j])
		}
	}
	return out, mu, sigma
}

// Clone returns a deep copy of the model, so a warm-started refit can
// run against a copy while the original stays published to readers.
func (r *RidgeModel) Clone() *RidgeModel {
	if r == nil {
		return nil
	}
	cp := *r
	cp.Weights = append([]float64(nil), r.Weights...)
	return &cp
}

// NewRidge returns a zero-initialized model for the given matrix and
// label column.
func NewRidge(m *SigmaMatrix, labelCol int) *RidgeModel {
	return &RidgeModel{Weights: make([]float64, m.Dim()), LabelCol: labelCol}
}

// Fit runs batch gradient descent on the least-squares objective
//
//	J(θ) = 1/(2N) Σ (θ0 + θᵀx − y)² + λ/2 ‖θ‖²
//
// using only the COVAR statistics in m — the training data itself is
// never materialized, which is the paper's central point: the gradient
//
//	∇θ J = 1/N (Σθ + θ0·s − Σ_y) + λθ
//
// needs only the count, the column sums s, and the matrix Σ of
// SUM(x_i·x_j). Fit resumes from the model's current parameters, so
// after a delta batch the solver re-converges from the previous optimum
// (warm start), exactly like the demo's Regression tab.
func (r *RidgeModel) Fit(m *SigmaMatrix, cfg RidgeConfig) error {
	if m.Count <= 0 {
		return fmt.Errorf("ml: cannot fit on an empty training set")
	}
	if len(r.Weights) != m.Dim() {
		return fmt.Errorf("ml: model has %d weights, matrix has %d columns", len(r.Weights), m.Dim())
	}
	if cfg.Normalize {
		sm, mu, sd := standardized(m)
		y := r.LabelCol
		if y < 0 || y >= m.Dim() {
			return fmt.Errorf("ml: label column %d out of range", y)
		}
		// Map the warm-start parameters into standardized space:
		// θ'_i = θ_i σ_i/σ_y, θ0' = (θ0 + Σθ_i μ_i − μ_y)/σ_y.
		shift := r.Intercept - mu[y]
		for i := range r.Weights {
			if i == y {
				continue
			}
			shift += r.Weights[i] * mu[i]
			r.Weights[i] *= sd[i] / sd[y]
		}
		r.Intercept = shift / sd[y]
		inner := cfg
		inner.Normalize = false
		err := r.Fit(sm, inner)
		// Map back even on error so the model stays in raw space.
		back := r.Intercept * sd[y]
		for i := range r.Weights {
			if i == y {
				continue
			}
			r.Weights[i] *= sd[y] / sd[i]
			back -= r.Weights[i] * mu[i]
		}
		r.Intercept = back + mu[y]
		return err
	}
	n := m.Dim()
	y := r.LabelCol
	if y < 0 || y >= n {
		return fmt.Errorf("ml: label column %d out of range", y)
	}
	invN := 1 / m.Count
	lr := cfg.LearningRate
	grad := make([]float64, n)
	var gradIntercept float64

	objective := func() float64 {
		// J = 1/(2N) [ θᵀΣθ + 2θ0 θᵀs + N θ0² − 2θᵀΣ_y − 2θ0 s_y + Σ_yy ]
		// + λ/2 ‖θ‖² ; constant Σ_yy included for proper backtracking.
		var quad, lin float64
		for i := 0; i < n; i++ {
			if i == y {
				continue
			}
			wi := r.Weights[i]
			for j := 0; j < n; j++ {
				if j == y {
					continue
				}
				quad += wi * r.Weights[j] * m.At(i, j)
			}
			lin += wi * (r.Intercept*m.Sum[i] - m.At(i, y))
		}
		obj := 0.5*invN*(quad+m.At(y, y)) + invN*lin
		obj += 0.5 * invN * (m.Count*r.Intercept*r.Intercept - 2*r.Intercept*m.Sum[y])
		var reg float64
		for i, w := range r.Weights {
			if i != y {
				reg += w * w
			}
		}
		return obj + 0.5*cfg.Lambda*reg
	}

	computeGrad := func() float64 {
		maxAbs := 0.0
		for i := 0; i < n; i++ {
			if i == y {
				grad[i] = 0
				continue
			}
			g := 0.0
			for j := 0; j < n; j++ {
				if j == y {
					continue
				}
				g += m.At(i, j) * r.Weights[j]
			}
			g += r.Intercept*m.Sum[i] - m.At(i, y)
			g = g*invN + cfg.Lambda*r.Weights[i]
			grad[i] = g
			if a := math.Abs(g); a > maxAbs {
				maxAbs = a
			}
		}
		gi := r.Intercept*m.Count - m.Sum[y]
		for j := 0; j < n; j++ {
			if j != y {
				gi += m.Sum[j] * r.Weights[j]
			}
		}
		gradIntercept = gi * invN
		if a := math.Abs(gradIntercept); a > maxAbs {
			maxAbs = a
		}
		return maxAbs
	}

	r.Converged = false
	r.Iterations = 0
	prevObj := objective()
	for it := 0; it < cfg.MaxIters; it++ {
		r.Iterations = it + 1
		if computeGrad() < cfg.Tolerance {
			r.Converged = true
			return nil
		}
		// Backtracking line search on the step size.
		for {
			for i := range r.Weights {
				r.Weights[i] -= lr * grad[i]
			}
			r.Intercept -= lr * gradIntercept
			obj := objective()
			if obj <= prevObj || lr < 1e-15 {
				if obj < prevObj {
					lr *= 1.05 // gentle growth after successful steps
				}
				prevObj = obj
				break
			}
			// Undo and halve.
			for i := range r.Weights {
				r.Weights[i] += lr * grad[i]
			}
			r.Intercept += lr * gradIntercept
			lr /= 2
		}
	}
	return nil
}

// Predict evaluates the model on an expanded feature vector x (the
// label column's entry is ignored).
func (r *RidgeModel) Predict(x []float64) float64 {
	out := r.Intercept
	for i, w := range r.Weights {
		if i != r.LabelCol {
			out += w * x[i]
		}
	}
	return out
}

// TrainRMSE computes the root-mean-squared training error from the
// sigma statistics alone:
//
//	MSE = 1/N (θᵀΣθ + 2θ0 θᵀs + Nθ0² − 2θᵀΣ_y − 2θ0 s_y + Σ_yy)
func (r *RidgeModel) TrainRMSE(m *SigmaMatrix) float64 {
	n := m.Dim()
	y := r.LabelCol
	var quad, lin float64
	for i := 0; i < n; i++ {
		if i == y {
			continue
		}
		wi := r.Weights[i]
		for j := 0; j < n; j++ {
			if j == y {
				continue
			}
			quad += wi * r.Weights[j] * m.At(i, j)
		}
		lin += wi * (r.Intercept*m.Sum[i] - m.At(i, y))
	}
	mse := (quad + 2*lin + m.Count*r.Intercept*r.Intercept - 2*r.Intercept*m.Sum[y] + m.At(y, y)) / m.Count
	if mse < 0 {
		mse = 0 // numeric noise near a perfect fit
	}
	return math.Sqrt(mse)
}

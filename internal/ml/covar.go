// Package ml implements the machine-learning applications the paper
// demonstrates on top of maintained ring payloads: ridge linear
// regression re-converged by batch gradient descent from a COVAR matrix,
// pairwise mutual information from maintained count tables, Chow-Liu
// trees, and MI-threshold model selection.
package ml

import (
	"fmt"
	"sort"

	"repro/internal/ring"
	"repro/internal/value"
)

// Feature describes one attribute participating in an analysis: its
// name, whether it is categorical, and its position (aggregate index) in
// the ring payload.
type Feature struct {
	Name        string
	Categorical bool
	Index       int
}

// SigmaMatrix is a dense symmetric matrix over the one-hot-expanded
// feature space, together with the expansion bookkeeping: each original
// attribute maps to one column (continuous) or one column per observed
// category (categorical). It is the bridge between ring payloads and
// the numeric solvers.
type SigmaMatrix struct {
	// Count is the number of training tuples (SUM(1) over the join).
	Count float64
	// Cols describes each expanded column.
	Cols []Column
	// Sum holds SUM(col) per expanded column.
	Sum []float64
	// Data is the dense row-major symmetric matrix SUM(col_i * col_j).
	Data []float64
	n    int
}

// Column is one expanded column: the source attribute and, for
// categorical attributes, the category value it one-hot encodes.
type Column struct {
	Attr     string
	Category value.Value // NULL for continuous columns
	IsCat    bool
}

// Label renders the column name, e.g. "price" or "category=4".
func (c Column) Label() string {
	if !c.IsCat {
		return c.Attr
	}
	return c.Attr + "=" + c.Category.String()
}

// Dim returns the number of expanded columns.
func (m *SigmaMatrix) Dim() int { return m.n }

// At returns SUM(col_i * col_j).
func (m *SigmaMatrix) At(i, j int) float64 { return m.Data[i*m.n+j] }

func (m *SigmaMatrix) set(i, j int, v float64) {
	m.Data[i*m.n+j] = v
	m.Data[j*m.n+i] = v
}

// ColumnsOf returns the expanded column indexes of attribute attr.
func (m *SigmaMatrix) ColumnsOf(attr string) []int {
	var out []int
	for i, c := range m.Cols {
		if c.Attr == attr {
			out = append(out, i)
		}
	}
	return out
}

// SigmaFromCovar converts a scalar COVAR payload (all-continuous
// features) into a SigmaMatrix. feats[i].Index addresses the payload;
// the resulting matrix has one column per feature in feats order.
func SigmaFromCovar(c *ring.Covar, feats []Feature) (*SigmaMatrix, error) {
	n := len(feats)
	m := &SigmaMatrix{n: n, Cols: make([]Column, n), Sum: make([]float64, n), Data: make([]float64, n*n)}
	m.Count = c.Count()
	for i, f := range feats {
		if f.Categorical {
			return nil, fmt.Errorf("ml: feature %s is categorical; use SigmaFromRelCovar", f.Name)
		}
		m.Cols[i] = Column{Attr: f.Name}
		m.Sum[i] = c.Sum(f.Index)
	}
	for i := range feats {
		for j := i; j < n; j++ {
			m.set(i, j, c.Prod(feats[i].Index, feats[j].Index))
		}
	}
	return m, nil
}

// SigmaFromRelCovar converts a generalized (relational-valued) COVAR
// payload into a dense SigmaMatrix, one-hot expanding categorical
// attributes over their observed categories. Interactions between two
// categories that never co-occur are zero, as are diagonal blocks across
// distinct categories of one attribute (one-hot columns are orthogonal).
func SigmaFromRelCovar(c *ring.RelCovar, feats []Feature) (*SigmaMatrix, error) {
	if c == nil {
		return nil, fmt.Errorf("ml: nil payload (empty join result)")
	}
	// Collect categories per categorical feature from the s vector.
	catsOf := make(map[string][]value.Value)
	for _, f := range feats {
		if !f.Categorical {
			continue
		}
		s := c.Sum(f.Index)
		cats := make([]value.Value, 0, s.Len())
		for k := range s {
			tp := value.MustDecodeTuple(k)
			if len(tp) != 1 {
				return nil, fmt.Errorf("ml: s_%s holds tuple %v, want arity 1", f.Name, tp)
			}
			cats = append(cats, tp[0])
		}
		sort.Slice(cats, func(i, j int) bool { return cats[i].Compare(cats[j]) < 0 })
		catsOf[f.Name] = cats
	}

	var cols []Column
	colIdx := map[string]int{} // "attr\x00encodedCat" -> column
	for _, f := range feats {
		if f.Categorical {
			for _, cat := range catsOf[f.Name] {
				colIdx[f.Name+"\x00"+value.Tuple{cat}.Encode()] = len(cols)
				cols = append(cols, Column{Attr: f.Name, Category: cat, IsCat: true})
			}
		} else {
			colIdx[f.Name+"\x00"] = len(cols)
			cols = append(cols, Column{Attr: f.Name})
		}
	}
	n := len(cols)
	m := &SigmaMatrix{n: n, Cols: cols, Sum: make([]float64, n), Data: make([]float64, n*n)}
	m.Count = c.Count().Scalar()

	// Sums.
	for _, f := range feats {
		s := c.Sum(f.Index)
		if f.Categorical {
			for k, v := range s {
				m.Sum[colIdx[f.Name+"\x00"+k]] = v
			}
		} else {
			m.Sum[colIdx[f.Name+"\x00"]] = s.Scalar()
		}
	}

	// Products. Q entries for i <= j store tuple keys with the i-part
	// first.
	for a := 0; a < len(feats); a++ {
		for b := a; b < len(feats); b++ {
			fa, fb := feats[a], feats[b]
			q := c.Prod(fa.Index, fb.Index)
			if a == b && fa.Categorical {
				// Diagonal of a categorical attribute: Q_XX = {x -> count},
				// arity 1; off-category entries are zero (one-hot columns
				// are orthogonal).
				for k, v := range q {
					ci := colIdx[fa.Name+"\x00"+k]
					m.set(ci, ci, v)
				}
				continue
			}
			// Orient: Prod(i,j) with i<=j by ring index.
			swapped := fa.Index > fb.Index
			for k, v := range q {
				tp := value.MustDecodeTuple(k)
				first, second := fa, fb
				if swapped {
					first, second = fb, fa
				}
				pos := 0
				ci, cj := -1, -1
				if first.Categorical {
					ci = colIdx[first.Name+"\x00"+value.Tuple{tp[pos]}.Encode()]
					pos++
				} else {
					ci = colIdx[first.Name+"\x00"]
				}
				if second.Categorical {
					cj = colIdx[second.Name+"\x00"+value.Tuple{tp[pos]}.Encode()]
					pos++
				} else {
					cj = colIdx[second.Name+"\x00"]
				}
				if pos != len(tp) {
					return nil, fmt.Errorf("ml: Q_%s,%s tuple %v has unexpected arity", fa.Name, fb.Name, tp)
				}
				if swapped {
					ci, cj = cj, ci
				}
				m.set(ci, cj, v)
			}
		}
	}
	return m, nil
}

package ml

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ring"
	"repro/internal/value"
)

// MutualInformation computes I(X, Y) from the maintained count
// aggregates: cTotal = SUM(1), cx = SUM(1) GROUP BY X, cy = SUM(1)
// GROUP BY Y, and cxy = SUM(1) GROUP BY (X, Y) with X-part-first keys —
// exactly the components the RelCovar payload holds for a categorical
// pair. The result uses natural logarithms (nats).
func MutualInformation(cTotal float64, cx, cy, cxy ring.RelVal) float64 {
	if cTotal <= 0 {
		return 0
	}
	mi := 0.0
	for kxy, nxy := range cxy {
		if nxy <= 0 {
			continue
		}
		t := value.MustDecodeTuple(kxy)
		if len(t) != 2 {
			continue // malformed; skip rather than poison the sum
		}
		kx := value.Tuple{t[0]}.Encode()
		ky := value.Tuple{t[1]}.Encode()
		nx, ny := cx[kx], cy[ky]
		if nx <= 0 || ny <= 0 {
			continue
		}
		mi += nxy / cTotal * math.Log(cTotal*nxy/(nx*ny))
	}
	if mi < 0 {
		mi = 0 // clamp numeric noise; MI is non-negative
	}
	return mi
}

// SelfInformation computes the entropy H(X) = I(X, X) from the marginal
// counts, used for the MI matrix diagonal.
func SelfInformation(cTotal float64, cx ring.RelVal) float64 {
	if cTotal <= 0 {
		return 0
	}
	h := 0.0
	for _, n := range cx {
		if n <= 0 {
			continue
		}
		p := n / cTotal
		h -= p * math.Log(p)
	}
	if h < 0 {
		h = 0
	}
	return h
}

// MIMatrix is the symmetric matrix of pairwise mutual information over a
// set of attributes (diagonal = entropies).
type MIMatrix struct {
	Attrs []string
	Data  []float64
	n     int
}

// Dim returns the number of attributes.
func (m *MIMatrix) Dim() int { return m.n }

// At returns I(attr_i, attr_j).
func (m *MIMatrix) At(i, j int) float64 { return m.Data[i*m.n+j] }

// IndexOf returns the position of attr, or -1.
func (m *MIMatrix) IndexOf(attr string) int {
	for i, a := range m.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// MIFromRelCovar builds the pairwise MI matrix from a generalized COVAR
// payload whose features are all categorical (continuous attributes
// must have been lifted with binned/categorical lifts). feats addresses
// the payload components.
func MIFromRelCovar(c *ring.RelCovar, feats []Feature) (*MIMatrix, error) {
	if c == nil {
		return nil, fmt.Errorf("ml: nil payload (empty join result)")
	}
	for _, f := range feats {
		if !f.Categorical {
			return nil, fmt.Errorf("ml: MI needs categorical (or binned) lifts, feature %s is continuous", f.Name)
		}
	}
	n := len(feats)
	m := &MIMatrix{n: n, Attrs: make([]string, n), Data: make([]float64, n*n)}
	total := c.Count().Scalar()
	for i, f := range feats {
		m.Attrs[i] = f.Name
		m.Data[i*n+i] = SelfInformation(total, c.Sum(f.Index))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			fi, fj := feats[i], feats[j]
			// Prod(i,j) keys are (lower-ring-index part first); orient so
			// X is the first component.
			var cxy ring.RelVal
			var cx, cy ring.RelVal
			if fi.Index <= fj.Index {
				cxy = c.Prod(fi.Index, fj.Index)
				cx, cy = c.Sum(fi.Index), c.Sum(fj.Index)
			} else {
				cxy = c.Prod(fj.Index, fi.Index)
				cx, cy = c.Sum(fj.Index), c.Sum(fi.Index)
			}
			mi := MutualInformation(total, cx, cy, cxy)
			m.Data[i*n+j] = mi
			m.Data[j*n+i] = mi
		}
	}
	return m, nil
}

// RankedAttr is one attribute with its MI score against the label.
type RankedAttr struct {
	Attr string
	MI   float64
}

// SelectFeatures ranks every non-label attribute by its MI with the
// label (descending, ties by name) and returns the ranking plus the
// subset meeting the threshold — the demo's Model Selection tab.
func SelectFeatures(m *MIMatrix, label string, threshold float64) (ranking []RankedAttr, selected []string, err error) {
	li := m.IndexOf(label)
	if li < 0 {
		return nil, nil, fmt.Errorf("ml: label %s not in MI matrix", label)
	}
	for i, a := range m.Attrs {
		if i == li {
			continue
		}
		ranking = append(ranking, RankedAttr{Attr: a, MI: m.At(li, i)})
	}
	sort.Slice(ranking, func(i, j int) bool {
		if ranking[i].MI != ranking[j].MI {
			return ranking[i].MI > ranking[j].MI
		}
		return ranking[i].Attr < ranking[j].Attr
	})
	for _, r := range ranking {
		if r.MI >= threshold {
			selected = append(selected, r.Attr)
		}
	}
	return ranking, selected, nil
}

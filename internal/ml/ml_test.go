package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/value"
)

// buildSigmaFromRows constructs a SigmaMatrix directly from a dense
// data matrix (continuous columns), bypassing the ring machinery — used
// to test the solver in isolation.
func buildSigmaFromRows(rows [][]float64, names []string) *SigmaMatrix {
	n := len(names)
	m := &SigmaMatrix{n: n, Cols: make([]Column, n), Sum: make([]float64, n), Data: make([]float64, n*n)}
	for i, nm := range names {
		m.Cols[i] = Column{Attr: nm}
	}
	m.Count = float64(len(rows))
	for _, r := range rows {
		for i := 0; i < n; i++ {
			m.Sum[i] += r[i]
			for j := 0; j < n; j++ {
				m.Data[i*n+j] += r[i] * r[j]
			}
		}
	}
	return m
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	// y = 3 + 2*x1 - 1.5*x2 exactly; ridge with tiny lambda must recover
	// the coefficients closely.
	rng := rand.New(rand.NewSource(1))
	var rows [][]float64
	for i := 0; i < 500; i++ {
		x1 := rng.Float64()*10 - 5
		x2 := rng.Float64()*4 - 2
		y := 3 + 2*x1 - 1.5*x2
		rows = append(rows, []float64{x1, x2, y})
	}
	sigma := buildSigmaFromRows(rows, []string{"x1", "x2", "y"})
	model := NewRidge(sigma, 2)
	cfg := RidgeConfig{Lambda: 1e-9, LearningRate: 0.1, MaxIters: 50_000, Tolerance: 1e-12, Normalize: true}
	if err := model.Fit(sigma, cfg); err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Weights[0]-2) > 1e-3 {
		t.Errorf("θ1 = %v, want 2", model.Weights[0])
	}
	if math.Abs(model.Weights[1]+1.5) > 1e-3 {
		t.Errorf("θ2 = %v, want -1.5", model.Weights[1])
	}
	if math.Abs(model.Intercept-3) > 1e-2 {
		t.Errorf("θ0 = %v, want 3", model.Intercept)
	}
	if rmse := model.TrainRMSE(sigma); rmse > 1e-2 {
		t.Errorf("RMSE = %v on noiseless data", rmse)
	}
}

func TestRidgeWithoutNormalization(t *testing.T) {
	// Well-scaled data must also converge un-normalized.
	rng := rand.New(rand.NewSource(2))
	var rows [][]float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()*2 - 1
		rows = append(rows, []float64{x, 1 + 0.5*x})
	}
	sigma := buildSigmaFromRows(rows, []string{"x", "y"})
	model := NewRidge(sigma, 1)
	cfg := RidgeConfig{Lambda: 1e-9, LearningRate: 0.2, MaxIters: 50_000, Tolerance: 1e-12}
	if err := model.Fit(sigma, cfg); err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Weights[0]-0.5) > 1e-3 || math.Abs(model.Intercept-1) > 1e-3 {
		t.Errorf("θ = (%v, %v), want (1, 0.5)", model.Intercept, model.Weights[0])
	}
}

func TestRidgeWarmStartFasterThanCold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rows [][]float64
	for i := 0; i < 300; i++ {
		x := rng.Float64() * 10
		rows = append(rows, []float64{x, 2*x + 1 + rng.NormFloat64()*0.1})
	}
	sigma := buildSigmaFromRows(rows, []string{"x", "y"})
	cfg := DefaultRidgeConfig()

	cold := NewRidge(sigma, 1)
	if err := cold.Fit(sigma, cfg); err != nil {
		t.Fatal(err)
	}
	coldIters := cold.Iterations

	// Perturb the data slightly and refit warm.
	rows = append(rows, []float64{5, 11.1})
	sigma2 := buildSigmaFromRows(rows, []string{"x", "y"})
	warm := cold
	if err := warm.Fit(sigma2, cfg); err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > coldIters {
		t.Errorf("warm refit took %d iters, cold fit %d — warm start is not helping", warm.Iterations, coldIters)
	}
}

func TestRidgeErrors(t *testing.T) {
	sigma := buildSigmaFromRows([][]float64{{1, 2}}, []string{"x", "y"})
	m := NewRidge(sigma, 1)
	empty := &SigmaMatrix{n: 2, Count: 0, Sum: make([]float64, 2), Data: make([]float64, 4)}
	if err := m.Fit(empty, DefaultRidgeConfig()); err == nil {
		t.Error("fit on empty training set accepted")
	}
	wrong := NewRidge(sigma, 1)
	wrong.Weights = wrong.Weights[:1]
	if err := wrong.Fit(sigma, DefaultRidgeConfig()); err == nil {
		t.Error("dimension mismatch accepted")
	}
	bad := NewRidge(sigma, 1)
	bad.LabelCol = 5
	if err := bad.Fit(sigma, DefaultRidgeConfig()); err == nil {
		t.Error("label out of range accepted")
	}
}

func TestRidgePredict(t *testing.T) {
	sigma := buildSigmaFromRows([][]float64{{1, 2}, {2, 4}}, []string{"x", "y"})
	m := NewRidge(sigma, 1)
	m.Intercept = 1
	m.Weights[0] = 2
	if got := m.Predict([]float64{3, 0}); got != 7 {
		t.Errorf("Predict = %v, want 7", got)
	}
}

func TestMutualInformationGroundTruths(t *testing.T) {
	k := func(vs ...any) string { return value.T(vs...).Encode() }

	// Perfectly dependent: X == Y over two symbols, 50/50.
	cx := ring.RelVal{k(0): 50, k(1): 50}
	cxy := ring.RelVal{k(0, 0): 50, k(1, 1): 50}
	mi := MutualInformation(100, cx, cx, cxy)
	if math.Abs(mi-math.Log(2)) > 1e-12 {
		t.Errorf("dependent MI = %v, want ln2 = %v", mi, math.Log(2))
	}

	// Independent: uniform product distribution.
	cxyInd := ring.RelVal{k(0, 0): 25, k(0, 1): 25, k(1, 0): 25, k(1, 1): 25}
	if mi := MutualInformation(100, cx, cx, cxyInd); math.Abs(mi) > 1e-12 {
		t.Errorf("independent MI = %v, want 0", mi)
	}

	// Empty database.
	if mi := MutualInformation(0, nil, nil, nil); mi != 0 {
		t.Errorf("empty MI = %v", mi)
	}

	// Entropy of a fair coin.
	if h := SelfInformation(100, cx); math.Abs(h-math.Log(2)) > 1e-12 {
		t.Errorf("H = %v, want ln2", h)
	}
	if h := SelfInformation(100, ring.RelVal{k(0): 100}); h != 0 {
		t.Errorf("deterministic H = %v, want 0", h)
	}
}

func TestMIMatrixFromRelCovar(t *testing.T) {
	// Two identical categorical attributes and one independent one,
	// built through the ring exactly as the view engine would.
	r := ring.NewRelCovarRing(3)
	lifts := []ring.Lift[*ring.RelCovar]{r.LiftCategorical(0), r.LiftCategorical(1), r.LiftCategorical(2)}
	rng := rand.New(rand.NewSource(4))
	total := r.Zero()
	for i := 0; i < 400; i++ {
		x := rng.Intn(2)
		z := rng.Intn(2) // independent of x
		p := r.Mul(r.Mul(lifts[0](value.Int(int64(x))), lifts[1](value.Int(int64(x)))), lifts[2](value.Int(int64(z))))
		total = r.Add(total, p)
	}
	feats := []Feature{
		{Name: "X", Categorical: true, Index: 0},
		{Name: "Y", Categorical: true, Index: 1},
		{Name: "Z", Categorical: true, Index: 2},
	}
	m, err := MIFromRelCovar(total, feats)
	if err != nil {
		t.Fatal(err)
	}
	ixy := m.At(0, 1)
	ixz := m.At(0, 2)
	if ixy < 0.5 { // ~ln2 ≈ 0.693 minus sampling noise
		t.Errorf("I(X,Y) = %v, want near ln2 (identical attrs)", ixy)
	}
	if ixz > 0.05 {
		t.Errorf("I(X,Z) = %v, want near 0 (independent)", ixz)
	}
	if m.At(0, 1) != m.At(1, 0) {
		t.Error("MI matrix not symmetric")
	}
	if m.At(0, 0) < ixy {
		t.Error("diagonal entropy below pairwise MI")
	}
	if m.IndexOf("Z") != 2 || m.IndexOf("W") != -1 {
		t.Error("IndexOf wrong")
	}
}

func TestMIFromRelCovarErrors(t *testing.T) {
	if _, err := MIFromRelCovar(nil, nil); err == nil {
		t.Error("nil payload accepted")
	}
	r := ring.NewRelCovarRing(1)
	if _, err := MIFromRelCovar(r.One(), []Feature{{Name: "x", Categorical: false, Index: 0}}); err == nil {
		t.Error("continuous feature accepted for MI")
	}
}

func TestSelectFeatures(t *testing.T) {
	m := &MIMatrix{
		Attrs: []string{"label", "a", "b", "c"},
		n:     4,
		Data: []float64{
			1.0, 0.5, 0.05, 0.3,
			0.5, 1.0, 0.1, 0.1,
			0.05, 0.1, 1.0, 0.1,
			0.3, 0.1, 0.1, 1.0,
		},
	}
	ranking, selected, err := SelectFeatures(m, "label", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != 3 || ranking[0].Attr != "a" || ranking[1].Attr != "c" || ranking[2].Attr != "b" {
		t.Errorf("ranking = %v", ranking)
	}
	if len(selected) != 2 || selected[0] != "a" || selected[1] != "c" {
		t.Errorf("selected = %v", selected)
	}
	if _, _, err := SelectFeatures(m, "missing", 0.2); err == nil {
		t.Error("missing label accepted")
	}
}

func TestChowLiuChainStructure(t *testing.T) {
	// MI matrix of a chain A—B—C—D with decaying dependence: the tree
	// must recover the chain.
	m := &MIMatrix{
		Attrs: []string{"A", "B", "C", "D"},
		n:     4,
		Data: []float64{
			2.0, 0.9, 0.4, 0.2,
			0.9, 2.0, 0.8, 0.35,
			0.4, 0.8, 2.0, 0.7,
			0.2, 0.35, 0.7, 2.0,
		},
	}
	tree, err := ChowLiu(m, "A")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != "A" || len(tree.Edges) != 3 {
		t.Fatalf("tree = %+v", tree)
	}
	want := map[string]string{"B": "A", "C": "B", "D": "C"}
	for _, e := range tree.Edges {
		if want[e.Child] != e.Parent {
			t.Errorf("edge %s -> %s, want parent %s", e.Parent, e.Child, want[e.Child])
		}
	}
	if math.Abs(tree.TotalMI-(0.9+0.8+0.7)) > 1e-12 {
		t.Errorf("TotalMI = %v", tree.TotalMI)
	}
	if kids := tree.Children("A"); len(kids) != 1 || kids[0] != "B" {
		t.Errorf("Children(A) = %v", kids)
	}
	s := tree.String()
	if s == "" {
		t.Error("empty rendering")
	}
}

func TestChowLiuSingleAttributeAndErrors(t *testing.T) {
	m := &MIMatrix{Attrs: []string{"only"}, n: 1, Data: []float64{1}}
	tree, err := ChowLiu(m, "only")
	if err != nil || len(tree.Edges) != 0 {
		t.Errorf("singleton tree = %+v, %v", tree, err)
	}
	if _, err := ChowLiu(m, "missing"); err == nil {
		t.Error("missing root accepted")
	}
}

func TestChowLiuDeterministicTieBreak(t *testing.T) {
	// All off-diagonal MI equal: edges must still come out
	// deterministically (by attribute name).
	m := &MIMatrix{
		Attrs: []string{"c", "a", "b"},
		n:     3,
		Data: []float64{
			1, 0.5, 0.5,
			0.5, 1, 0.5,
			0.5, 0.5, 1,
		},
	}
	t1, err := ChowLiu(m, "c")
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := ChowLiu(m, "c")
	for i := range t1.Edges {
		if t1.Edges[i] != t2.Edges[i] {
			t.Fatalf("non-deterministic: %v vs %v", t1.Edges, t2.Edges)
		}
	}
}

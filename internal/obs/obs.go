// Package obs is a dependency-free observability kernel for the
// serving pipeline: atomic counters and gauges, fixed-bucket latency
// histograms with quantile estimation, and a registry that renders
// every registered series in the Prometheus text exposition format
// (version 0.0.4) — hand-rolled so go.mod stays stdlib-only.
//
// Hot-path cost is the design constraint: Counter.Add, Gauge.Set, and
// Histogram.Observe are a handful of atomic operations on
// pre-registered series and allocate nothing (pinned by
// TestMetricOpsAllocFree), so the maintenance pipeline records
// per-batch timings without disturbing its zero-allocation steady
// state. All formatting cost is paid by the scraper, never the writer.
//
// Series are registered once at setup through a Registry — there is no
// dynamic label creation, which is what makes the write path
// allocation-free. Func-backed variants (CounterFunc, GaugeFunc) read
// state the owner already maintains (queue depths, snapshot age) at
// scrape time only.
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (Prometheus
// "le"-style cumulative upper bounds) and keeps the running sum, from
// which Quantile estimates p50/p99/p999 by linear interpolation within
// the bucket holding the target rank. Observe is lock-free and
// allocation-free; the bucket layout is fixed at construction.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds an unregistered histogram over the given
// ascending finite bucket upper bounds (see also Registry.NewHistogram).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (~20) and the loop is
	// branch-predictable; sort.SearchFloat64s would cost a closure.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts, interpolating linearly inside the bucket that holds the
// target rank — the same estimate Prometheus' histogram_quantile
// computes. The error is bounded by the width of that bucket. Ranks
// landing in the +Inf bucket clamp to the largest finite bound.
// Returns NaN on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	var total uint64
	cum := make([]uint64, len(h.counts))
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			prev := uint64(0)
			if i > 0 {
				prev = cum[i-1]
			}
			inBucket := float64(c - prev)
			if inBucket == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-float64(prev))/inBucket
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially growing bucket upper bounds
// starting at start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets is the standard duration layout: 1µs to ~4s in
// doubling steps, in seconds.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 22) }

// Registry holds registered series and renders them. Registration
// happens at setup (methods may be called concurrently but typically
// are not); scraping via WritePrometheus is safe at any time.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, typ, help string
	series          []*series
}

type series struct {
	labels string // pre-rendered pairs, e.g. `rel="R"`; may be ""
	write  func(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, typ, help, labels string, write func(io.Writer, string, string)) {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, &series{labels: labels, write: write})
}

// NewCounter registers and returns a counter series. labels are
// pre-rendered Prometheus pairs (`rel="R"`) or "".
func (r *Registry) NewCounter(name, labels, help string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, labels, help, c.Load)
	return c
}

// CounterFunc registers a counter series whose value is read from fn
// at scrape time — for cumulative state the owner already maintains.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.register(name, "counter", help, labels, func(w io.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), fn())
	})
}

// NewGauge registers and returns an integer gauge series.
func (r *Registry) NewGauge(name, labels, help string) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, labels, help, func() float64 { return float64(g.Load()) })
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time — queue depths, ages, and other instantaneous reads.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.register(name, "gauge", help, labels, func(w io.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(fn()))
	})
}

// NewHistogram registers and returns a histogram series over the given
// ascending finite bucket upper bounds.
func (r *Registry) NewHistogram(name, labels, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, "histogram", help, labels, h.writeExposition)
	return h
}

func (h *Histogram) writeExposition(w io.Writer, name, labels string) {
	prefix := ""
	if labels != "" {
		prefix = labels + ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, prefix, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), cum)
}

// WritePrometheus renders every registered family in the text
// exposition format: one # HELP and # TYPE header per family followed
// by its series, in registration order (deterministic output).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, f := range r.families {
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.write(cw, f.name, s.labels)
		}
		if cw.err != nil {
			return cw.err
		}
	}
	return cw.err
}

type countingWriter struct {
	w   io.Writer
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.err = err
	return n, err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

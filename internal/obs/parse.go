package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseExposition validates a Prometheus text exposition payload and
// returns its samples keyed by the full series name (metric name plus
// the literal label block, exactly as rendered). It checks what a
// scraper checks: comment lines are well-formed # HELP / # TYPE
// headers, every sample line splits into a valid series name and a
// parseable float value, and label blocks are brace-balanced. It is
// the counterpart of Registry.WritePrometheus, shared by the
// exposition-format tests and the loadgen smoke check.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	samples := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, dup := samples[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, name)
		}
		samples[name] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no samples in exposition payload")
	}
	return samples, nil
}

func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	default:
		// Other comments are allowed free-form.
	}
	return nil
}

func splitSample(line string) (string, float64, error) {
	// The series name may contain spaces only inside the label block's
	// quoted values; the value is the last space-separated field.
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", 0, fmt.Errorf("sample %q has no value", line)
	}
	name, valueText := strings.TrimSpace(line[:i]), line[i+1:]
	value, err := strconv.ParseFloat(valueText, 64)
	if err != nil {
		return "", 0, fmt.Errorf("sample %q: bad value %q", line, valueText)
	}
	bare := name
	if j := strings.IndexByte(name, '{'); j >= 0 {
		if !strings.HasSuffix(name, "}") {
			return "", 0, fmt.Errorf("sample %q: unbalanced label block", line)
		}
		if err := checkLabels(name[j+1 : len(name)-1]); err != nil {
			return "", 0, fmt.Errorf("sample %q: %w", line, err)
		}
		bare = name[:j]
	}
	if !validMetricName(bare) {
		return "", 0, fmt.Errorf("sample %q: invalid metric name %q", line, bare)
	}
	return name, value, nil
}

func checkLabels(block string) error {
	// Every pair is name="value"; values may contain commas, so split
	// on `",` boundaries rather than naively on commas.
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || !validMetricName(rest[:eq]) {
			return fmt.Errorf("bad label pair in %q", block)
		}
		v := rest[eq+1:]
		if len(v) < 2 || v[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", block)
		}
		end := strings.IndexByte(v[1:], '"')
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", block)
		}
		rest = v[end+2:]
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return fmt.Errorf("bad separator in label block %q", block)
		}
		rest = rest[1:]
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}

// TestHistogramQuantileAccuracy bounds the estimation error: with
// linear interpolation inside a bucket, a quantile estimate over
// uniform data can be off by at most the width of the bucket that
// holds the target rank.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 12)) // 1..2048
	const n = 10_000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / float64(n) * 1000) // uniform over (0, 1000]
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	cases := []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}}
	for _, c := range cases {
		got := h.Quantile(c.q)
		// The rank lands in bucket (512, 1024]: error bound = 512.
		lo, hi := bucketFor(h, c.want)
		if got < lo || got > hi {
			t.Errorf("p%v = %v, want within bucket (%v, %v] of true %v", c.q*100, got, lo, hi, c.want)
		}
	}
	if p50, p99, p999 := h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999); !(p50 <= p99 && p99 <= p999) {
		t.Errorf("quantiles not monotone: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
	wantSum := 0.0
	for i := 1; i <= n; i++ {
		wantSum += float64(i) / float64(n) * 1000
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// bucketFor returns the (lower, upper] bounds of the bucket containing v.
func bucketFor(h *Histogram, v float64) (lo, hi float64) {
	lo = 0
	for _, b := range h.bounds {
		if v <= b {
			return lo, b
		}
		lo = b
	}
	return lo, math.Inf(1)
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(1e9) // +Inf bucket
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("overflow quantile = %v, want clamp to largest finite bound 10", got)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("fivm_test_total", `rel="R"`, "A test counter.")
	c.Add(5)
	reg.NewCounter("fivm_test_total", `rel="S"`, "A test counter.")
	reg.GaugeFunc("fivm_test_depth", "", "A test gauge.", func() float64 { return 2.5 })
	h := reg.NewHistogram("fivm_test_seconds", `stage="apply"`, "A test histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP fivm_test_total A test counter.",
		"# TYPE fivm_test_total counter",
		"# TYPE fivm_test_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	samples, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("self-rendered exposition does not parse: %v\n%s", err, text)
	}
	cases := map[string]float64{
		`fivm_test_total{rel="R"}`:                          5,
		`fivm_test_total{rel="S"}`:                          0,
		`fivm_test_depth`:                                   2.5,
		`fivm_test_seconds_bucket{stage="apply",le="0.1"}`:  1,
		`fivm_test_seconds_bucket{stage="apply",le="1"}`:    2,
		`fivm_test_seconds_bucket{stage="apply",le="+Inf"}`: 3,
		`fivm_test_seconds_count{stage="apply"}`:            3,
	}
	for key, want := range cases {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("sample %s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	if got := samples[`fivm_test_seconds_sum{stage="apply"}`]; math.Abs(got-100.55) > 1e-9 {
		t.Errorf("histogram sum = %v, want 100.55", got)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_value_here",
		"1leading_digit 3",
		"unbalanced{le=\"1\" 3",
		"name{le=1} 3",
		"name 3\nname 4", // duplicate series
		"ok_metric notafloat",
		"# TYPE weird flavor\nok_metric 1",
	}
	for _, payload := range bad {
		if _, err := ParseExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("ParseExposition accepted %q", payload)
		}
	}
	if _, err := ParseExposition(strings.NewReader("")); err == nil {
		t.Error("ParseExposition accepted an empty payload")
	}
}

// TestMetricOpsAllocFree pins the hot-path contract: recording into
// pre-registered series allocates nothing, so pipeline instrumentation
// cannot disturb the serving layer's zero-allocation steady state.
func TestMetricOpsAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "", "c")
	g := reg.NewGauge("g", "", "g")
	h := reg.NewHistogram("h_seconds", "", "h", LatencyBuckets())
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(17)
		g.Add(-4)
		h.Observe(0.0042)
	}); allocs != 0 {
		t.Errorf("metric ops allocate %.1f per round, want 0", allocs)
	}
}

// TestConcurrentMetricWrites hammers every metric kind from many
// goroutines while a scraper renders — the -race contract for metric
// writes during parallel propagation. Counter totals must be exact.
func TestConcurrentMetricWrites(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "", "c")
	g := reg.NewGauge("g", "", "g")
	h := reg.NewHistogram("h_seconds", "", "h", LatencyBuckets())

	const writers, perWriter = 8, 5000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseExposition(strings.NewReader(sb.String())); err != nil {
					t.Errorf("mid-write exposition does not parse: %v", err)
					return
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%100) * 1e-5)
			}
		}()
	}
	ww.Wait()
	close(stop)
	scraper.Wait()
	if c.Load() != writers*perWriter {
		t.Fatalf("counter = %d, want %d", c.Load(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
}

package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/view"
)

// testBatch synthesizes batch i for rel: a couple of inserts and a
// delete, with tuples that exercise ints, floats, and strings.
func testBatch(rel string, i int) []view.Update {
	return []view.Update{
		{Rel: rel, Tuple: value.T(i, float64(i)+0.5, fmt.Sprintf("k%d", i%7)), Mult: 1},
		{Rel: rel, Tuple: value.T(i+1, 2.0, "x"), Mult: 3},
		{Rel: rel, Tuple: value.T(i, float64(i)+0.5, "gone"), Mult: -1},
	}
}

// appendBatches opens a WAL at dir, appends n batches to each of rels,
// and closes it again.
func appendBatches(t *testing.T, cfg Config, rels []string, n int) {
	t.Helper()
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range rels {
		sh, err := w.Shard(rel)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := sh.Append(testBatch(rel, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll collects every replayed batch keyed by relation.
func replayAll(t *testing.T, w *WAL) (map[string][][]view.Update, ReplayStats) {
	t.Helper()
	got := make(map[string][][]view.Update)
	st, err := w.Replay(func(rel string, seq uint64, ups []view.Update) error {
		cp := make([]view.Update, len(ups))
		copy(cp, ups)
		got[rel] = append(got[rel], cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: PolicyOff}
	appendBatches(t, cfg, []string{"R", "S"}, 10)

	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	got, st := replayAll(t, w)
	if st.Batches != 20 || st.Updates != 60 {
		t.Fatalf("replayed %d batches / %d updates, want 20 / 60", st.Batches, st.Updates)
	}
	for _, rel := range []string{"R", "S"} {
		if len(got[rel]) != 10 {
			t.Fatalf("shard %s replayed %d batches, want 10", rel, len(got[rel]))
		}
		for i, ups := range got[rel] {
			want := testBatch(rel, i)
			if len(ups) != len(want) {
				t.Fatalf("%s batch %d: %d updates, want %d", rel, i, len(ups), len(want))
			}
			for j := range ups {
				if ups[j].Rel != want[j].Rel || ups[j].Mult != want[j].Mult || ups[j].Tuple.Encode() != want[j].Tuple.Encode() {
					t.Fatalf("%s batch %d update %d: got %+v want %+v", rel, i, j, ups[j], want[j])
				}
			}
		}
	}
	pos := w.RecoveredPositions()
	if pos.Shards["R"] != 10 || pos.Shards["S"] != 10 || pos.Applied != 60 || pos.Batches != 20 {
		t.Fatalf("recovered positions %+v", pos)
	}
}

// Appends resume the sequence where the previous process stopped, so a
// reopen-append-reopen cycle replays one contiguous stream.
func TestAppendContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: PolicyOff}
	appendBatches(t, cfg, []string{"R"}, 5)
	appendBatches(t, cfg, []string{"R"}, 5) // seqs 6..10

	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var seqs []uint64
	if _, err := w.Replay(func(rel string, seq uint64, ups []view.Update) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 10 {
		t.Fatalf("replayed %d batches, want 10", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seqs[%d] = %d, want contiguous from 1", i, seq)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: PolicyOff, SegmentBytes: 256}
	appendBatches(t, cfg, []string{"R"}, 50)

	segs, _, err := listSegments(filepath.Join(dir, shardsDirName, "R"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments with a 256-byte rotation size, want several", len(segs))
	}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Stats().Segments; got != int64(len(segs)) {
		t.Fatalf("Stats().Segments = %d, want %d", got, len(segs))
	}
	_, st := replayAll(t, w)
	if st.Batches != 50 {
		t.Fatalf("replayed %d batches across segments, want 50", st.Batches)
	}
}

func TestCheckpointPrunesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: PolicyOff, SegmentBytes: 256}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := w.Shard("R")
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 50; i++ {
		if lastSeq, err = sh.Append(testBatch("R", i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _, _ := listSegments(filepath.Join(dir, shardsDirName, "R"))
	pos := Positions{Shards: map[string]uint64{"R": lastSeq}, Applied: 150, Batches: 50}
	snapBody := "pretend-engine-snapshot"
	if err := w.WriteCheckpoint(pos, func(out io.Writer) error {
		_, err := io.WriteString(out, snapBody)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	after, _, _ := listSegments(filepath.Join(dir, shardsDirName, "R"))
	if len(after) != 1 {
		t.Fatalf("checkpoint covering everything left %d segments (from %d), want 1 (the active one)", len(after), len(before))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the checkpoint is selected, its snapshot readable, and
	// replay past its positions is empty.
	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	cp := w2.Checkpoint()
	if cp == nil {
		t.Fatal("no checkpoint found after reopen")
	}
	if cp.Positions.Shards["R"] != lastSeq || cp.Positions.Applied != 150 {
		t.Fatalf("checkpoint positions %+v", cp.Positions)
	}
	r, err := cp.Open()
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(b) != snapBody {
		t.Fatalf("checkpoint snapshot = %q (%v), want %q", b, err, snapBody)
	}
	_, st := replayAll(t, w2)
	if st.Batches != 0 {
		t.Fatalf("replayed %d batches past a covering checkpoint, want 0", st.Batches)
	}
}

func TestCheckpointPruningKeepsN(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, Fsync: PolicyOff, KeepCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 5; i++ {
		pos := Positions{Shards: map[string]uint64{}, Applied: uint64(i)}
		if err := w.WriteCheckpoint(pos, func(out io.Writer) error {
			_, err := fmt.Fprintf(out, "snap%d", i)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ckptExt) {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("%d checkpoints on disk, want KeepCheckpoints=2", n)
	}
	if cp := w.Checkpoint(); cp == nil || cp.Positions.Applied != 5 {
		t.Fatalf("newest checkpoint %+v, want Applied=5", cp)
	}
}

// A corrupt newest checkpoint falls back to the previous one, and new
// checkpoints never reuse the tainted sequence number.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, Fsync: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		pos := Positions{Shards: map[string]uint64{}, Applied: uint64(i)}
		if err := w.WriteCheckpoint(pos, func(out io.Writer) error {
			_, err := fmt.Fprintf(out, "snap%d", i)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	newest := w.Checkpoint()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, newest.Path, 12) // somewhere in the positions header

	w2, err := Open(Config{Dir: dir, Fsync: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	cp := w2.Checkpoint()
	if cp == nil || cp.Positions.Applied != 1 {
		t.Fatalf("fallback checkpoint %+v, want the older one (Applied=1)", cp)
	}
	if err := w2.WriteCheckpoint(Positions{Shards: map[string]uint64{}, Applied: 3}, func(out io.Writer) error {
		_, err := io.WriteString(out, "snap3")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := w2.Checkpoint().Seq; got <= newest.Seq {
		t.Fatalf("new checkpoint seq %d reuses or precedes the tainted %d", got, newest.Seq)
	}
}

// WriteFileAtomic leaves either the old or the complete new content.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing write callback must not clobber the existing file.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("want error from failing write callback")
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v1" {
		t.Fatalf("file = %q (%v), want untouched %q", b, err, "v1")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %v", entries)
	}
}

// TestAppendSteadyStateAllocs pins the zero-allocation append: once the
// per-shard record and tuple-encode buffers are warm, logging a batch
// under the interval fsync policy allocates nothing on the appender's
// goroutine (the satellite guarantee that the WAL does not perturb the
// batcher hot path).
func TestAppendSteadyStateAllocs(t *testing.T) {
	w, err := Open(Config{
		Dir:           t.TempDir(),
		Fsync:         PolicyInterval,
		FsyncInterval: time.Hour, // keep the background sync out of the measurement window
		SegmentBytes:  1 << 30,   // no rotation mid-measurement
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sh, err := w.Shard("R")
	if err != nil {
		t.Fatal(err)
	}
	ups := testBatch("R", 42)
	if _, err := sh.Append(ups); err != nil { // warm buffers + open the segment
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := sh.Append(ups); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state Append allocates %.1f per batch, want 0", allocs)
	}
}

func TestShardNameValidation(t *testing.T) {
	w, err := Open(Config{Dir: t.TempDir(), Fsync: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, ".hidden"} {
		if _, err := w.Shard(bad); err == nil {
			t.Errorf("Shard(%q) accepted a name unusable as a directory", bad)
		}
	}
}

// flipByte XORs one byte of a file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects when appended records are fsynced. See the package
// documentation for what each policy guarantees.
type Policy string

const (
	// PolicyAlways fsyncs after every append, before the batch is
	// handed on: acknowledged means on stable storage.
	PolicyAlways Policy = "always"
	// PolicyInterval fsyncs dirty shards from a background goroutine
	// every FsyncInterval; the appender itself never blocks on fsync.
	PolicyInterval Policy = "interval"
	// PolicyOff never fsyncs: durability against process crash only.
	PolicyOff Policy = "off"
)

// Config opens a WAL directory.
type Config struct {
	// Dir is the durability directory (created if missing).
	Dir string
	// Fsync is the sync policy (default PolicyInterval).
	Fsync Policy
	// FsyncInterval is the background sync period under PolicyInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates a shard's segment once it would exceed this
	// size (default 64 MiB). A single batch larger than the limit still
	// lands whole in a fresh segment.
	SegmentBytes int64
	// KeepCheckpoints is how many newest checkpoints survive pruning
	// (default 2 — the newest plus one fallback should it be found
	// corrupt by a later recovery).
	KeepCheckpoints int
	// OpenSegment overrides how segment files are opened for append —
	// the fault-injection seam crash tests use to tear a write
	// mid-record. nil opens through the OS. Recovery always reads the
	// real files, so an injected partial write becomes a real torn tail.
	OpenSegment func(path string) (WriteFile, error)
}

func (c Config) withDefaults() (Config, error) {
	if c.Dir == "" {
		return c, fmt.Errorf("wal: Dir is required")
	}
	if c.Fsync == "" {
		c.Fsync = PolicyInterval
	}
	switch c.Fsync {
	case PolicyAlways, PolicyInterval, PolicyOff:
	default:
		return c, fmt.Errorf("wal: unknown fsync policy %q (want %s|%s|%s)", c.Fsync, PolicyAlways, PolicyInterval, PolicyOff)
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.KeepCheckpoints <= 0 {
		c.KeepCheckpoints = 2
	}
	if c.OpenSegment == nil {
		c.OpenSegment = func(path string) (WriteFile, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
	}
	return c, nil
}

// Positions stamps a checkpoint with the log state it covers.
type Positions struct {
	// Shards maps each relation to the sequence number of the last
	// batch included; 0 means none.
	Shards map[string]uint64
	// Applied is the cumulative count of raw updates the included
	// batches represent (monotonic across restarts).
	Applied uint64
	// Batches is the cumulative batch count (monotonic across restarts).
	Batches uint64
}

func (p Positions) clone() Positions {
	out := p
	out.Shards = make(map[string]uint64, len(p.Shards))
	for k, v := range p.Shards {
		out.Shards[k] = v
	}
	return out
}

// Stats are the WAL's live counters, safe to read concurrently with
// appends (the metric surface scrapes them).
type Stats struct {
	// AppendedBatches and AppendedBytes count records appended this
	// process (replayed history not included).
	AppendedBatches uint64
	AppendedBytes   uint64
	// Segments is the number of live segment files across all shards.
	Segments int64
	// CheckpointSeq is the newest valid checkpoint's sequence number
	// (0 when none).
	CheckpointSeq uint64
	// TruncatedBytes and RemovedSegments report what Open discarded as
	// torn or unreachable (corruption past the valid prefix).
	TruncatedBytes  uint64
	RemovedSegments int64
}

// WAL is one durability directory: per-shard segment logs plus
// checkpoints. Open it, recover through Checkpoint/Replay, then append
// through per-shard handles. Appends on different shards never contend.
type WAL struct {
	cfg Config

	mu     sync.Mutex
	shards map[string]*Shard
	closed bool
	cp     *CheckpointInfo
	cpSeq  uint64 // highest checkpoint file seq ever seen (valid or not)
	// recovered tracks what checkpoint restore + replay have covered so
	// far; the serving writer seeds its positions from it.
	recovered Positions
	// recoveredRefs collects the batch refs Replay decoded (bounded to
	// maxRecoveredRefs, oldest dropped); the serving layer seeds its
	// dedup table from them.
	recoveredRefs []RecoveredRef

	appendedBatches atomic.Uint64
	appendedBytes   atomic.Uint64
	segLive         atomic.Int64
	truncatedBytes  atomic.Uint64
	removedSegments atomic.Int64
	cpSeqLive       atomic.Uint64
	cpAt            atomic.Int64 // unixnano of the newest checkpoint (or Open)

	// fsyncObs, when set (before appends start), observes each fsync
	// latency in seconds — the serving layer wires it to a histogram.
	fsyncObs func(seconds float64)

	stop    chan struct{}
	stopped sync.WaitGroup
}

// Open opens (creating if needed) the WAL directory, selects the newest
// valid checkpoint, and truncates every shard's log at the first
// invalid record — the crash-recovery cleanup that makes the remaining
// log a clean, contiguous prefix. The caller then restores the
// checkpoint, replays, and appends.
func Open(cfg Config) (*WAL, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, shardsDirName), 0o755); err != nil {
		return nil, err
	}
	w := &WAL{cfg: cfg, shards: make(map[string]*Shard), recovered: Positions{Shards: map[string]uint64{}}}
	w.cp, w.cpSeq, err = scanCheckpoints(cfg.Dir)
	if err != nil {
		return nil, err
	}
	w.cpAt.Store(time.Now().UnixNano())
	if w.cp != nil {
		w.recovered = w.cp.Positions.clone()
		w.cpSeqLive.Store(w.cp.Seq)
		if fi, err := os.Stat(w.cp.Path); err == nil {
			w.cpAt.Store(fi.ModTime().UnixNano())
		}
	}
	entries, err := os.ReadDir(filepath.Join(cfg.Dir, shardsDirName))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		s, err := w.openShard(e.Name())
		if err != nil {
			return nil, fmt.Errorf("wal: shard %s: %w", e.Name(), err)
		}
		w.shards[e.Name()] = s
	}
	if cfg.Fsync == PolicyInterval {
		w.stop = make(chan struct{})
		w.stopped.Add(1)
		go w.fsyncLoop()
	}
	return w, nil
}

// Shard returns (creating if needed) the append handle for one
// ingestion shard. Shard handles are safe for concurrent use, but the
// serving pipeline gives each one a single appending goroutine.
func (w *WAL) Shard(rel string) (*Shard, error) {
	if err := validShardName(rel); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.shards[rel]; ok {
		return s, nil
	}
	dir := filepath.Join(w.cfg.Dir, shardsDirName, rel)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Shard{w: w, rel: rel, dir: dir, nextSeq: 1, buf: make([]byte, recordHeaderLen, 1024)}
	w.shards[rel] = s
	return s, nil
}

func validShardName(rel string) error {
	if rel == "" || rel == "." || rel == ".." ||
		strings.ContainsAny(rel, "/\\\x00") || strings.HasPrefix(rel, ".") {
		return fmt.Errorf("wal: relation name %q is not usable as a shard directory", rel)
	}
	return nil
}

// Checkpoint returns the newest valid checkpoint found at Open or
// written since, nil when none exists yet.
func (w *WAL) Checkpoint() *CheckpointInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cp
}

// RecoveredPositions returns the positions covered by the restored
// checkpoint plus everything Replay has fed to the caller — the seed
// for the serving writer's live position tracking.
func (w *WAL) RecoveredPositions() Positions {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recovered.clone()
}

// RecoveredBatchRefs returns the batch IDs Replay found recorded in
// the replayed log, in replay order (per shard, ascending sequence) —
// the seed for the serving layer's idempotency dedup table. Refs in
// batches a checkpoint already pruned are gone; that is the recovery
// dedup window's lower bound, and routers must not retry a batch older
// than the checkpoint cadence.
func (w *WAL) RecoveredBatchRefs() []RecoveredRef {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]RecoveredRef, len(w.recoveredRefs))
	copy(out, w.recoveredRefs)
	return out
}

// SetFsyncObserver installs a callback receiving each fsync's latency
// in seconds. Install it before appends start; it is read without
// synchronization on the append path.
func (w *WAL) SetFsyncObserver(fn func(seconds float64)) { w.fsyncObs = fn }

// CheckpointAge is the time since the newest checkpoint was written
// (or since Open, when none exists) — the "data at risk" staleness
// signal exposed as fivm_wal_checkpoint_age_seconds.
func (w *WAL) CheckpointAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - w.cpAt.Load())
}

// Stats returns the live counters.
func (w *WAL) Stats() Stats {
	return Stats{
		AppendedBatches: w.appendedBatches.Load(),
		AppendedBytes:   w.appendedBytes.Load(),
		Segments:        w.segLive.Load(),
		CheckpointSeq:   w.cpSeqLive.Load(),
		TruncatedBytes:  w.truncatedBytes.Load(),
		RemovedSegments: w.removedSegments.Load(),
	}
}

// shardList snapshots the shard handles for the background fsync loop.
func (w *WAL) shardList() []*Shard {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*Shard, 0, len(w.shards))
	for _, s := range w.shards {
		out = append(out, s)
	}
	return out
}

// shardNames returns the shard names sorted, for deterministic replay.
func (w *WAL) shardNames() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.shards))
	for name := range w.shards {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (w *WAL) fsyncLoop() {
	defer w.stopped.Done()
	t := time.NewTicker(w.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			for _, s := range w.shardList() {
				_ = s.Sync() // sticky error resurfaces on the next Append
			}
		}
	}
}

// Close stops the background fsync loop, syncs every dirty shard
// (unless PolicyOff), and closes the segment files. The WAL refuses
// all writes afterwards: appends fail through the closed files, and
// WriteCheckpoint fails explicitly — a checkpoint written after the
// log is closed could cover batches whose segments can no longer be
// read back, silently discarding the dedup trailers recovery needs.
func (w *WAL) Close() error {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		w.stopped.Wait()
		w.stop = nil
	}
	var first error
	for _, s := range w.shardList() {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

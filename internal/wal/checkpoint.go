package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Checkpoint file format:
//
//	magic "FIVMCKPT" | version u8 |
//	uvarint nShards | per shard: uvarint len(rel) | rel | uvarint seq |
//	uvarint applied | uvarint batches |
//	engine snapshot bytes... |
//	trailer: u32le CRC32C(everything before the trailer) | "CKPTEND\n"
//
// The file is written atomically (temp + fsync + rename + dir fsync)
// and validated by a full-file CRC pass before recovery trusts it; a
// checkpoint that fails validation is skipped and the next-newest
// tried, which is why pruning keeps more than one.

const (
	ckptMagic    = "FIVMCKPT"
	ckptTail     = "CKPTEND\n"
	ckptVersion  = 1
	ckptPrefix   = "checkpoint-"
	ckptExt      = ".ckpt"
	ckptTrailerN = 4 + len(ckptTail)
)

// CheckpointInfo describes one valid checkpoint on disk.
type CheckpointInfo struct {
	// Seq is the checkpoint's own sequence number (file naming order).
	Seq uint64
	// Positions is the log state the snapshot covers.
	Positions Positions
	// Path is the checkpoint file.
	Path string

	snapOff int64
	snapLen int64
}

// Open returns a reader over the embedded engine snapshot — the bytes
// to hand to the engine's ReadSnapshot.
func (ci *CheckpointInfo) Open() (io.ReadCloser, error) {
	f, err := os.Open(ci.Path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(ci.snapOff, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &sectionReadCloser{Reader: io.LimitReader(f, ci.snapLen), f: f}, nil
}

type sectionReadCloser struct {
	io.Reader
	f *os.File
}

func (s *sectionReadCloser) Close() error { return s.f.Close() }

// WriteCheckpoint atomically writes a new checkpoint holding the given
// positions and the engine snapshot produced by writeSnap, then prunes:
// segments fully covered by the positions are deleted (never a shard's
// newest segment) and checkpoints beyond KeepCheckpoints are removed.
func (w *WAL) WriteCheckpoint(pos Positions, writeSnap func(io.Writer) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("wal: checkpoint refused: WAL is closed")
	}
	seq := w.cpSeq + 1
	w.mu.Unlock()
	path := filepath.Join(w.cfg.Dir, fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptExt))
	err := WriteFileAtomic(path, func(out io.Writer) error {
		cw := &crcWriter{w: out}
		if _, err := io.WriteString(cw, ckptMagic); err != nil {
			return err
		}
		if _, err := cw.Write([]byte{ckptVersion}); err != nil {
			return err
		}
		var buf []byte
		buf = binary.AppendUvarint(buf, uint64(len(pos.Shards)))
		rels := make([]string, 0, len(pos.Shards))
		for rel := range pos.Shards {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			buf = binary.AppendUvarint(buf, uint64(len(rel)))
			buf = append(buf, rel...)
			buf = binary.AppendUvarint(buf, pos.Shards[rel])
		}
		buf = binary.AppendUvarint(buf, pos.Applied)
		buf = binary.AppendUvarint(buf, pos.Batches)
		if _, err := cw.Write(buf); err != nil {
			return err
		}
		if err := writeSnap(cw); err != nil {
			return err
		}
		var trailer [ckptTrailerN]byte
		binary.LittleEndian.PutUint32(trailer[0:4], cw.crc)
		copy(trailer[4:], ckptTail)
		_, err := out.Write(trailer[:])
		return err
	})
	if err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	info, err := parseCheckpoint(path, seq)
	if err != nil {
		return fmt.Errorf("wal: checkpoint failed self-validation: %w", err)
	}
	w.mu.Lock()
	w.cp = info
	w.cpSeq = seq
	w.mu.Unlock()
	w.cpSeqLive.Store(seq)
	w.cpAt.Store(time.Now().UnixNano())
	w.prune(pos)
	return nil
}

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// scanCheckpoints finds the newest checkpoint that validates, skipping
// corrupt ones, and the highest checkpoint sequence number present
// (valid or not — new checkpoints must not reuse a tainted name).
func scanCheckpoints(dir string) (*CheckpointInfo, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	type cand struct {
		path string
		seq  uint64
	}
	var cands []cand
	var maxSeq uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptExt), 16, 64)
		if err != nil {
			continue
		}
		cands = append(cands, cand{path: filepath.Join(dir, name), seq: seq})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	for _, c := range cands {
		info, err := parseCheckpoint(c.path, c.seq)
		if err == nil {
			return info, maxSeq, nil
		}
	}
	return nil, maxSeq, nil
}

// parseCheckpoint validates a checkpoint file (full-content CRC against
// the trailer) and parses its header into a CheckpointInfo.
func parseCheckpoint(path string, seq uint64) (*CheckpointInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	minSize := int64(len(ckptMagic) + 1 + ckptTrailerN)
	if size < minSize {
		return nil, fmt.Errorf("wal: checkpoint %s too small (%d bytes)", path, size)
	}
	// Pass 1: whole-file CRC against the trailer.
	body := size - int64(ckptTrailerN)
	cw := &crcWriter{w: io.Discard}
	if _, err := io.CopyN(cw, f, body); err != nil {
		return nil, err
	}
	var trailer [ckptTrailerN]byte
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return nil, err
	}
	if string(trailer[4:]) != ckptTail {
		return nil, fmt.Errorf("wal: checkpoint %s has no trailer (torn write?)", path)
	}
	if got, want := cw.crc, binary.LittleEndian.Uint32(trailer[0:4]); got != want {
		return nil, fmt.Errorf("wal: checkpoint %s fails CRC (got %08x, want %08x)", path, got, want)
	}
	// Pass 2: parse the header, tracking consumption to locate the
	// embedded snapshot.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	cr := &countReader{r: bufio.NewReader(f)}
	magic := make([]byte, len(ckptMagic))
	if err := cr.readFull(magic); err != nil {
		return nil, err
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("wal: %s is not a checkpoint (magic %q)", path, magic)
	}
	ver, err := cr.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != ckptVersion {
		return nil, fmt.Errorf("wal: unsupported checkpoint version %d", ver)
	}
	nShards, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, err
	}
	if nShards > 1<<20 {
		return nil, fmt.Errorf("wal: checkpoint claims %d shards", nShards)
	}
	pos := Positions{Shards: make(map[string]uint64, nShards)}
	for i := uint64(0); i < nShards; i++ {
		relLen, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		if relLen > 4096 {
			return nil, fmt.Errorf("wal: checkpoint shard name length %d exceeds limit", relLen)
		}
		rel := make([]byte, relLen)
		if err := cr.readFull(rel); err != nil {
			return nil, err
		}
		if pos.Shards[string(rel)], err = binary.ReadUvarint(cr); err != nil {
			return nil, err
		}
	}
	if pos.Applied, err = binary.ReadUvarint(cr); err != nil {
		return nil, err
	}
	if pos.Batches, err = binary.ReadUvarint(cr); err != nil {
		return nil, err
	}
	snapOff := cr.n
	snapLen := body - snapOff
	if snapLen < 0 {
		return nil, fmt.Errorf("wal: checkpoint %s header overruns the file", path)
	}
	return &CheckpointInfo{Seq: seq, Positions: pos, Path: path, snapOff: snapOff, snapLen: snapLen}, nil
}

// countReader counts consumed bytes so the header parser can locate the
// snapshot section without buffered lookahead lying about the position.
type countReader struct {
	r *bufio.Reader
	n int64
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countReader) readFull(p []byte) error {
	n, err := io.ReadFull(c.r, p)
	c.n += int64(n)
	return err
}

// prune removes segments fully covered by the checkpointed positions
// and old checkpoints beyond KeepCheckpoints. Best-effort: a file that
// cannot be removed stays for the next prune.
func (w *WAL) prune(pos Positions) {
	for _, rel := range w.shardNames() {
		covered := pos.Shards[rel]
		if covered == 0 {
			continue
		}
		dir := filepath.Join(w.cfg.Dir, shardsDirName, rel)
		paths, firstSeqs, err := listSegments(dir)
		if err != nil {
			continue
		}
		// Segment i's records all precede segment i+1's first sequence;
		// the newest segment is the active one and always survives.
		for i := 0; i+1 < len(paths); i++ {
			if firstSeqs[i+1] <= covered+1 {
				if os.Remove(paths[i]) == nil {
					w.segLive.Add(-1)
					w.removedSegments.Add(1)
				}
			}
		}
	}
	entries, err := os.ReadDir(w.cfg.Dir)
	if err != nil {
		return
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		if seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptExt), 16, 64); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for i, seq := range seqs {
		if i >= w.cfg.KeepCheckpoints {
			_ = os.Remove(filepath.Join(w.cfg.Dir, fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptExt)))
		}
	}
}

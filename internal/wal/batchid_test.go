package wal

import (
	"testing"

	"repro/internal/value"
	"repro/internal/view"
)

func TestBatchIDStringRoundTrip(t *testing.T) {
	id := BatchID{Seq: 42}
	copy(id.Origin[:], []byte("0123456789abcdef"))
	got, err := ParseBatchID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("round trip = %v, want %v", got, id)
	}
	for _, bad := range []string{"", "deadbeef-1", id.String()[:33], "zz" + id.String()[2:],
		"00000000000000000000000000000000-0", "00000000000000000000000000000000-x"} {
		if _, err := ParseBatchID(bad); err == nil {
			t.Errorf("ParseBatchID(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestBatchRefRecovery proves the idempotency layer's durability story:
// refs appended with a record come back from Replay, and records written
// without refs (the legacy format) replay cleanly as zero refs.
func TestBatchRefRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, Fsync: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := w.Shard("R")
	if err != nil {
		t.Fatal(err)
	}
	ups := []view.Update{{Rel: "R", Tuple: value.T(1, 2), Mult: 1}, {Rel: "R", Tuple: value.T(3, 4), Mult: -1}}
	id1 := BatchID{Origin: [16]byte{1}, Seq: 7}
	id2 := BatchID{Origin: [16]byte{2}, Seq: 1}
	if _, err := sh.AppendRefs(ups, []BatchRef{{ID: id1, Updates: 1}, {ID: id2, Updates: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Append(ups[:1]); err != nil { // legacy: no refs
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Config{Dir: dir, Fsync: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var replayed int
	if _, err := w2.Replay(func(rel string, seq uint64, u []view.Update) error {
		replayed += len(u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d updates, want 3", replayed)
	}
	refs := w2.RecoveredBatchRefs()
	if len(refs) != 2 {
		t.Fatalf("recovered %d refs, want 2: %v", len(refs), refs)
	}
	want := []RecoveredRef{
		{Rel: "R", BatchRef: BatchRef{ID: id1, Updates: 1}},
		{Rel: "R", BatchRef: BatchRef{ID: id2, Updates: 1}},
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("ref[%d] = %+v, want %+v", i, refs[i], want[i])
		}
	}
}

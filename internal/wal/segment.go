package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/view"
)

const (
	shardsDirName = "shards"
	segmentMagic  = "FIVMWAL1"
	segmentExt    = ".seg"
)

// WriteFile is the subset of *os.File the appender needs; crash tests
// substitute fault-injecting implementations through Config.OpenSegment.
type WriteFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Shard is one relation's append handle: an append-only sequence of
// segment files with strictly increasing batch sequence numbers.
// Appends are serialized by an internal mutex (contended only by the
// background fsync loop — each shard has a single appending goroutine).
type Shard struct {
	w   *WAL
	rel string
	dir string

	mu      sync.Mutex
	f       WriteFile
	size    int64
	nextSeq uint64
	dirty   bool
	err     error  // sticky: a failed append poisons the shard
	buf     []byte // reusable record buffer (header + payload)
	kbuf    []byte // reusable tuple-encode scratch
}

// Append logs one coalesced update batch and returns its sequence
// number. Under PolicyAlways the record is fsynced before Append
// returns. A write failure is sticky: the shard refuses further appends
// with the same error, and the caller must treat the pipeline as
// crashed (recovery will replay the intact prefix).
//
// The steady-state append allocates nothing: the record is encoded into
// a per-shard buffer reused across calls and handed to the file in one
// Write.
func (s *Shard) Append(ups []view.Update) (uint64, error) {
	return s.AppendRefs(ups, nil)
}

// AppendRefs is Append with the batch IDs the record carries: each ref
// names one identified client batch whose updates are (contiguously)
// part of ups. The refs ride a trailer inside the same record, so the
// dedup fact "this batch is applied" becomes durable atomically with
// the batch itself — there is no window where one is on disk without
// the other.
func (s *Shard) AppendRefs(ups []view.Update, refs []BatchRef) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	seq := s.nextSeq
	buf := appendBatchPayload(s.buf[:recordHeaderLen], seq, ups, refs, &s.kbuf)
	s.buf = buf
	payload := buf[recordHeaderLen:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	if s.f == nil || (s.size > 0 && s.size+int64(len(buf)) > s.w.cfg.SegmentBytes) {
		if err := s.rotate(seq); err != nil {
			s.err = err
			return 0, err
		}
	}
	n, err := s.f.Write(buf)
	s.size += int64(n)
	if err != nil {
		s.err = fmt.Errorf("wal: appending to shard %s: %w", s.rel, err)
		return 0, s.err
	}
	s.dirty = true
	s.nextSeq = seq + 1
	s.w.appendedBatches.Add(1)
	s.w.appendedBytes.Add(uint64(len(buf)))
	if s.w.cfg.Fsync == PolicyAlways {
		if err := s.syncLocked(); err != nil {
			s.err = err
			return 0, err
		}
	}
	return seq, nil
}

// rotate closes the active segment (syncing it unless PolicyOff) and
// opens a fresh one named by the sequence number of its first batch.
func (s *Shard) rotate(firstSeq uint64) error {
	if s.f != nil {
		if s.dirty && s.w.cfg.Fsync != PolicyOff {
			if err := s.syncLocked(); err != nil {
				return err
			}
		}
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("wal: closing segment of shard %s: %w", s.rel, err)
		}
		s.f = nil
	}
	path := filepath.Join(s.dir, segmentName(firstSeq))
	f, err := s.w.cfg.OpenSegment(path)
	if err != nil {
		return fmt.Errorf("wal: opening segment %s: %w", path, err)
	}
	hdr := make([]byte, 0, len(segmentMagic)+binary.MaxVarintLen32+len(s.rel))
	hdr = append(hdr, segmentMagic...)
	hdr = binary.AppendUvarint(hdr, uint64(len(s.rel)))
	hdr = append(hdr, s.rel...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header %s: %w", path, err)
	}
	s.f = f
	s.size = int64(len(hdr))
	s.dirty = true
	s.w.segLive.Add(1)
	if s.w.cfg.Fsync != PolicyOff {
		// Make the file's existence durable: a segment that vanishes
		// with the directory entry on power loss would tear the log at
		// a record boundary, which recovery tolerates, but cheap
		// insurance keeps the common case lossless.
		if err := SyncDir(s.dir); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment if it has unsynced writes. The
// background interval loop and Close call it; PolicyAlways appends sync
// inline instead.
func (s *Shard) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.f == nil || !s.dirty {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		s.err = err
		return err
	}
	return nil
}

func (s *Shard) syncLocked() error {
	t0 := time.Now()
	err := s.f.Sync()
	if obs := s.w.fsyncObs; obs != nil {
		obs(time.Since(t0).Seconds())
	}
	if err != nil {
		return fmt.Errorf("wal: fsync shard %s: %w", s.rel, err)
	}
	s.dirty = false
	return nil
}

func (s *Shard) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var first error
	if s.dirty && s.err == nil && s.w.cfg.Fsync != PolicyOff {
		first = s.syncLocked()
	}
	if err := s.f.Close(); err != nil && first == nil {
		first = err
	}
	s.f = nil
	return first
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%016x%s", firstSeq, segmentExt)
}

// listSegments returns a shard directory's segment files sorted by
// first sequence number (ascending).
func listSegments(dir string) (paths []string, firstSeqs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type seg struct {
		path string
		seq  uint64
	}
	var segs []seg
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentExt) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segmentExt), 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		segs = append(segs, seg{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for _, sg := range segs {
		paths = append(paths, sg.path)
		firstSeqs = append(firstSeqs, sg.seq)
	}
	return paths, firstSeqs, nil
}

// openShard scans one shard's segments at Open time, enforcing the
// log's structural invariant — contiguous, strictly increasing
// sequence numbers — and truncating at the first violation: the torn
// file is cut back to its valid prefix (removed entirely if nothing
// valid remains) and all later segments are deleted, since a gap can
// never be replayed past. This is the only mutating step of recovery.
func (w *WAL) openShard(rel string) (*Shard, error) {
	dir := filepath.Join(w.cfg.Dir, shardsDirName, rel)
	paths, firstSeqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	nextSeq := uint64(1)
	cut := len(paths) // index of the first segment to delete
	for i, path := range paths {
		if i > 0 && firstSeqs[i] != nextSeq {
			// A segment that does not continue the sequence (gap or
			// overlap) is unreachable history; drop it and everything
			// after.
			cut = i
			break
		}
		validEnd, lastSeq, failure, err := scanSegment(path, rel, firstSeqs[i])
		if err != nil {
			return nil, err
		}
		if failure != "" {
			if err := truncateSegment(w, path, validEnd, lastSeq >= firstSeqs[i]); err != nil {
				return nil, err
			}
			if lastSeq >= firstSeqs[i] {
				nextSeq = lastSeq + 1
				cut = i + 1
			} else {
				cut = i
			}
			break
		}
		if lastSeq >= firstSeqs[i] {
			nextSeq = lastSeq + 1
		} else {
			// A segment with a valid header but zero records (crash
			// between create and first append): remove it so a future
			// segment can reuse the name.
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			w.removedSegments.Add(1)
			continue
		}
	}
	live := int64(0)
	for i, path := range paths {
		if i >= cut {
			if _, statErr := os.Stat(path); statErr == nil {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				w.removedSegments.Add(1)
			}
			continue
		}
		if _, statErr := os.Stat(path); statErr == nil {
			live++
		}
	}
	w.segLive.Add(live)
	return &Shard{w: w, rel: rel, dir: dir, nextSeq: nextSeq, buf: make([]byte, recordHeaderLen, 1024)}, nil
}

// scanSegment walks a segment validating framing, checksums, payload
// decodability, and sequence continuity starting at wantSeq. It returns
// the byte offset of the valid prefix's end, the last valid sequence
// number (wantSeq-1 when none), and a non-empty failure description if
// the walk stopped before clean EOF.
func scanSegment(path, rel string, wantSeq uint64) (validEnd int64, lastSeq uint64, failure string, err error) {
	r, err := openSegmentReader(path, rel)
	if err != nil {
		// An unreadable header means nothing in the file is usable.
		return 0, wantSeq - 1, fmt.Sprintf("unreadable segment header: %v", err), nil
	}
	defer r.close()
	lastSeq = wantSeq - 1
	for {
		// r.off only advances past CRC-valid records; capture it before
		// reading so a decode/sequence failure (which the reader has
		// already stepped over) still reports the prefix end correctly.
		off := r.off
		payload, ok := r.next()
		if !ok {
			return r.off, lastSeq, r.failure, nil
		}
		seq, _, _, derr := decodeBatchPayload(payload, rel)
		if derr != nil {
			return off, lastSeq, derr.Error(), nil
		}
		if seq != lastSeq+1 {
			return off, lastSeq, fmt.Sprintf("sequence jump %d -> %d", lastSeq, seq), nil
		}
		lastSeq = seq
	}
}

// truncateSegment cuts a torn segment back to validEnd bytes, or
// removes it when keep is false (no valid records).
func truncateSegment(w *WAL, path string, validEnd int64, keep bool) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !keep {
		w.truncatedBytes.Add(uint64(fi.Size()))
		w.removedSegments.Add(1)
		return os.Remove(path)
	}
	if fi.Size() > validEnd {
		w.truncatedBytes.Add(uint64(fi.Size() - validEnd))
		if err := os.Truncate(path, validEnd); err != nil {
			return err
		}
	}
	return nil
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Batches uint64
	Updates uint64
}

// Replay feeds every logged batch past the recovered positions to
// apply, in per-shard sequence order (shards iterate in sorted name
// order; cross-shard interleaving is immaterial because delta
// application commutes across relations). Open has already truncated
// torn tails, so replay reads a clean log; should the files change
// underneath anyway, a newly-torn record stops that shard's replay at
// the last intact batch, mirroring Open's tolerance. apply errors abort
// the replay.
func (w *WAL) Replay(apply func(rel string, seq uint64, ups []view.Update) error) (ReplayStats, error) {
	var st ReplayStats
	for _, rel := range w.shardNames() {
		w.mu.Lock()
		from := w.recovered.Shards[rel]
		w.mu.Unlock()
		n, u, err := w.replayShard(rel, from, apply)
		st.Batches += n
		st.Updates += u
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

func (w *WAL) replayShard(rel string, from uint64, apply func(string, uint64, []view.Update) error) (batches, updates uint64, err error) {
	dir := filepath.Join(w.cfg.Dir, shardsDirName, rel)
	paths, firstSeqs, err := listSegments(dir)
	if err != nil {
		return 0, 0, err
	}
	for i, path := range paths {
		// Skip segments fully covered by the checkpoint: every record
		// of segment i is below the next segment's first sequence.
		if i+1 < len(paths) && firstSeqs[i+1] <= from+1 {
			continue
		}
		r, err := openSegmentReader(path, rel)
		if err != nil {
			return batches, updates, nil // header torn underneath us: stop this shard
		}
		for {
			payload, ok := r.next()
			if !ok {
				break
			}
			seq, ups, refs, derr := decodeBatchPayload(payload, rel)
			if derr != nil {
				r.close()
				return batches, updates, nil
			}
			if seq <= from {
				continue
			}
			if err := apply(rel, seq, ups); err != nil {
				r.close()
				return batches, updates, fmt.Errorf("wal: replaying %s batch %d: %w", rel, seq, err)
			}
			batches++
			updates += uint64(len(ups))
			w.mu.Lock()
			w.recovered.Shards[rel] = seq
			w.recovered.Applied += uint64(len(ups))
			w.recovered.Batches++
			for _, ref := range refs {
				w.recoveredRefs = append(w.recoveredRefs, RecoveredRef{Rel: rel, BatchRef: ref})
			}
			if len(w.recoveredRefs) > maxRecoveredRefs {
				// Keep the newest half: old refs belong to long-acked
				// batches whose retry window has expired.
				w.recoveredRefs = append(w.recoveredRefs[:0], w.recoveredRefs[len(w.recoveredRefs)-maxRecoveredRefs/2:]...)
			}
			w.mu.Unlock()
		}
		failed := r.failure != ""
		r.close()
		if failed {
			return batches, updates, nil
		}
	}
	return batches, updates, nil
}

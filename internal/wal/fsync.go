package wal

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// SyncDir fsyncs a directory so a just-created, renamed, or removed
// entry inside it survives power loss. Required after rename for the
// atomic-write protocol to actually be durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes a file crash-atomically: the content is
// streamed to a temp file in the target directory, flushed and fsynced,
// renamed over path, and the directory fsynced. Readers see either the
// old file or the complete new one, never a partial write. On error the
// temp file is removed and the target left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(dir)
}

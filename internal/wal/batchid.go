package wal

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// BatchID identifies one client write batch for idempotent redelivery:
// a random 128-bit origin (one per client instance) plus that origin's
// monotonically increasing batch sequence number. The pair is globally
// unique without coordination, so any number of clients and routers can
// stamp batches concurrently.
//
// IDs ride the X-Fivm-Batch-Id header on POST /v1/update, are recorded
// inside the WAL record of every batch they cover, and key the serving
// layer's dedup table — which is how a retried delivery of an already
// applied batch returns the original acknowledgement instead of
// double-applying (ring deltas are not idempotent on their own: adding
// the same delta twice doubles it).
type BatchID struct {
	// Origin is the stamping client's random 128-bit identity.
	Origin [16]byte
	// Seq is the batch's sequence number within the origin (starts at 1;
	// 0 never appears on the wire).
	Seq uint64
}

// IsZero reports whether the ID is the zero value (no ID stamped).
func (id BatchID) IsZero() bool { return id == BatchID{} }

// String renders the wire form: 32 lowercase hex characters for the
// origin, a dash, and the decimal sequence number.
func (id BatchID) String() string {
	return hex.EncodeToString(id.Origin[:]) + "-" + strconv.FormatUint(id.Seq, 10)
}

// ParseBatchID parses the wire form produced by String. The empty
// string is not an ID; callers should skip parsing when the header is
// absent.
func ParseBatchID(s string) (BatchID, error) {
	var id BatchID
	dash := strings.IndexByte(s, '-')
	if dash != 32 || len(s) < 34 {
		return id, fmt.Errorf("wal: batch ID %q is not <32 hex>-<seq>", s)
	}
	if _, err := hex.Decode(id.Origin[:], []byte(s[:dash])); err != nil {
		return id, fmt.Errorf("wal: batch ID %q: bad origin: %v", s, err)
	}
	seq, err := strconv.ParseUint(s[dash+1:], 10, 64)
	if err != nil || seq == 0 {
		return id, fmt.Errorf("wal: batch ID %q: bad sequence", s)
	}
	id.Seq = seq
	return id, nil
}

// BatchRef names one identified client batch inside a WAL record: the
// ID and how many of the record's updates belong to it. A record may
// carry several refs (the batcher coalesces messages from concurrent
// callers into one flush) and updates with no ID at all (legacy or
// fire-and-forget writers), so the refs' update counts need not sum to
// the record's update count.
type BatchRef struct {
	ID BatchID
	// Updates is the number of the batch's updates this record carries
	// for its relation — the per-relation dedup entry's accepted count.
	Updates int
}

// RecoveredRef is a BatchRef recovered by Replay, tagged with the shard
// relation whose record carried it. The serving layer seeds its dedup
// table from these so idempotency survives crash and restart.
type RecoveredRef struct {
	Rel string
	BatchRef
}

// maxRecoveredRefs bounds how many replayed refs the WAL retains for
// dedup seeding — the same order of magnitude as the serving layer's
// own dedup capacity. Older refs are dropped first: they correspond to
// the oldest batches, whose retry windows have long expired.
const maxRecoveredRefs = 1 << 16

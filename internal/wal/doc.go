// Package wal is the serving pipeline's durability subsystem: an
// append-only, checksummed write-ahead log of coalesced update batches,
// periodic incremental checkpoints built from the engine snapshot
// codec, and crash recovery that restores the newest valid checkpoint
// and replays every batch logged past it.
//
// # Layout
//
// One WAL owns one directory:
//
//	<dir>/
//	  checkpoint-<seq>.ckpt      engine snapshot + covered positions
//	  shards/<rel>/<seq16>.seg   per-shard segment files, named by the
//	                             sequence number of their first batch
//
// Each ingestion shard (one per input relation) appends to its own
// segment log, so appends never serialize across shards; within a
// shard, batch sequence numbers are contiguous and strictly increasing
// across segment boundaries.
//
// # Record format
//
// A segment starts with a header and carries length-prefixed,
// CRC32C-checksummed batch records:
//
//	segment:  magic "FIVMWAL1" | uvarint len(rel) | rel
//	record:   u32le payloadLen | u32le crc32c(payload) | payload
//	payload:  uvarint seq | uvarint nUpdates |
//	          per update: uvarint len(key) | key (value.Tuple encoding) |
//	                      zigzag-varint multiplicity
//
// The CRC covers the payload only; the length field is implicitly
// validated by the CRC (a corrupt length either overruns the file,
// which is detected, or reframes the payload, which fails the CRC).
//
// # Fsync policies
//
// Records are written straight to the file descriptor — no userspace
// buffering — so every appended batch survives a process kill (SIGKILL)
// regardless of policy. The fsync policy governs what survives an OS
// crash or power loss:
//
//	PolicyAlways    fsync after every append, in the appender's
//	                goroutine: an acknowledged batch is on stable
//	                storage before the writer ever applies it.
//	PolicyInterval  a background goroutine fsyncs every dirty shard at
//	                a fixed interval; at most that interval of
//	                acknowledged batches is exposed to power loss.
//	PolicyOff       never fsync; durability against process crash only.
//
// # Checkpoints and truncation
//
// A checkpoint is one file, written atomically (temp file, fsync file,
// rename, fsync directory) and self-validating (whole-file CRC32C in a
// trailer), holding the engine snapshot plus the Positions it covers:
// the per-shard sequence number of the last batch applied before the
// snapshot was taken, and the cumulative applied update/batch counts.
// After a checkpoint commits, segments whose every record is covered by
// it are deleted, and older checkpoints beyond KeepCheckpoints are
// pruned. The active (newest) segment of a shard is never deleted.
//
// # Recovery
//
// Open scans the directory: it picks the newest checkpoint that
// validates (corrupt ones are skipped, older ones tried), then walks
// every shard's segments validating record framing and sequence
// continuity. The log is truncated at the first invalid record — a torn
// final record from a crash mid-append loses only the batch that was
// never acknowledged — and any later segments are removed. Replay then
// feeds every surviving batch past the checkpoint's positions to the
// caller in per-shard sequence order (cross-shard interleaving is free:
// delta application commutes across relations).
//
// The recovery invariant, proven by the serving layer's kill-mid-batch
// tests: after restoring the checkpoint and replaying the log, the
// engine is bit-identical to a clean engine that applied exactly the
// acknowledged prefix of the update stream.
package wal

package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/view"
)

// recordOffsets returns the byte offset of every record header in a
// segment plus the offset of clean EOF, by walking the same reader
// recovery uses.
func recordOffsets(t *testing.T, path, rel string) []int64 {
	t.Helper()
	r, err := openSegmentReader(path, rel)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	offs := []int64{r.off}
	for {
		if _, ok := r.next(); !ok {
			if r.failure != "" {
				t.Fatalf("baseline segment already corrupt: %s", r.failure)
			}
			return offs
		}
		offs = append(offs, r.off)
	}
}

// TestCorruptionMatrix damages a five-batch segment at every record
// boundary class — torn header, torn payload, flipped payload byte,
// flipped length field, garbage tail — at both the final record and a
// middle record, and asserts recovery (a) never errors or panics,
// (b) replays exactly the batches before the first damage, and
// (c) resumes appending at the next sequence number so a subsequent
// recovery replays one contiguous stream.
func TestCorruptionMatrix(t *testing.T) {
	const batches = 5
	seed := t.TempDir()
	appendBatches(t, Config{Dir: seed, Fsync: PolicyOff}, []string{"R"}, batches)
	seedSeg := filepath.Join(seed, shardsDirName, "R", segmentName(1))
	offs := recordOffsets(t, seedSeg, "R")
	if len(offs) != batches+1 {
		t.Fatalf("baseline has %d records, want %d", len(offs)-1, batches)
	}

	type corruption struct {
		name    string
		damage  func(t *testing.T, path string)
		survive int // batches recovery must replay
	}
	cases := []corruption{
		{"torn-header-last", func(t *testing.T, path string) {
			// Crash after 3 bytes of the last record's header.
			truncateAt(t, path, offs[batches-1]+3)
		}, batches - 1},
		{"torn-payload-last", func(t *testing.T, path string) {
			// Crash mid-payload of the last record.
			truncateAt(t, path, offs[batches-1]+recordHeaderLen+5)
		}, batches - 1},
		{"flip-payload-last", func(t *testing.T, path string) {
			// Bit rot inside the last record's payload: CRC mismatch.
			flipByte(t, path, offs[batches-1]+recordHeaderLen+2)
		}, batches - 1},
		{"flip-length-last", func(t *testing.T, path string) {
			// Bit rot in the length field: reframes or overruns the file.
			flipByte(t, path, offs[batches-1])
		}, batches - 1},
		{"flip-crc-last", func(t *testing.T, path string) {
			flipByte(t, path, offs[batches-1]+4)
		}, batches - 1},
		{"garbage-tail", func(t *testing.T, path string) {
			// Junk past the last intact record (e.g. reused disk blocks).
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
				t.Fatal(err)
			}
		}, batches},
		{"flip-payload-middle", func(t *testing.T, path string) {
			// Damage in the middle: everything after it is unreachable
			// even though later records are intact (sequence continuity
			// cannot be trusted past a hole).
			flipByte(t, path, offs[2]+recordHeaderLen+2)
		}, 2},
		{"torn-header-middle", func(t *testing.T, path string) {
			truncateAt(t, path, offs[2]+1)
		}, 2},
		{"sequence-gap", func(t *testing.T, path string) {
			// A framing-valid record whose sequence skips ahead: replay
			// must stop before it, not apply out-of-order history.
			appendRawRecord(t, path, uint64(batches+3), testBatch("R", 99))
		}, batches},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.MkdirAll(filepath.Join(dir, shardsDirName, "R"), 0o755); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, shardsDirName, "R", segmentName(1))
			copyFile(t, seedSeg, seg)
			tc.damage(t, seg)

			cfg := Config{Dir: dir, Fsync: PolicyOff}
			w, err := Open(cfg)
			if err != nil {
				t.Fatalf("Open on damaged log: %v", err)
			}
			var seqs []uint64
			if _, err := w.Replay(func(rel string, seq uint64, ups []view.Update) error {
				seqs = append(seqs, seq)
				return nil
			}); err != nil {
				t.Fatalf("Replay on damaged log: %v", err)
			}
			if len(seqs) != tc.survive {
				t.Fatalf("recovered %d batches, want exactly %d (the prefix before the damage)", len(seqs), tc.survive)
			}
			for i, seq := range seqs {
				if seq != uint64(i+1) {
					t.Fatalf("replayed seqs %v, want contiguous from 1", seqs)
				}
			}
			// The log must accept appends again, continuing the sequence.
			sh, err := w.Shard("R")
			if err != nil {
				t.Fatal(err)
			}
			seq, err := sh.Append(testBatch("R", 100))
			if err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if want := uint64(tc.survive + 1); seq != want {
				t.Fatalf("append after recovery got seq %d, want %d", seq, want)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			// And a second recovery replays the healed, contiguous log.
			w2, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			n := 0
			if _, err := w2.Replay(func(rel string, seq uint64, ups []view.Update) error {
				n++
				if seq != uint64(n) {
					t.Fatalf("healed log seq %d at batch %d", seq, n)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if n != tc.survive+1 {
				t.Fatalf("healed log replays %d batches, want %d", n, tc.survive+1)
			}
		})
	}
}

// TestTruncatedHeaderRemovesSegment covers the crash window between
// segment creation and the first full header write: the stub file is
// removed so the name is reusable.
func TestTruncatedHeaderRemovesSegment(t *testing.T) {
	dir := t.TempDir()
	appendBatches(t, Config{Dir: dir, Fsync: PolicyOff}, []string{"R"}, 3)
	// A second segment whose header was torn mid-write.
	stub := filepath.Join(dir, shardsDirName, "R", segmentName(4))
	if err := os.WriteFile(stub, []byte(segmentMagic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(Config{Dir: dir, Fsync: PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := os.Stat(stub); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment still on disk (stat err %v)", err)
	}
	sh, err := w.Shard("R")
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := sh.Append(testBatch("R", 10)); err != nil || seq != 4 {
		t.Fatalf("append after stub removal: seq %d err %v, want 4 nil", seq, err)
	}
}

// TestLaterSegmentsAfterTearAreDropped pins that a tear in segment k
// discards segments k+1... even if they are individually intact — a
// sequence hole can never be replayed past.
func TestLaterSegmentsAfterTearAreDropped(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: PolicyOff, SegmentBytes: 256}
	appendBatches(t, cfg, []string{"R"}, 30)
	paths, _, err := listSegments(filepath.Join(dir, shardsDirName, "R"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(paths))
	}
	// Corrupt the first record of the middle segment.
	mid := paths[len(paths)/2]
	offs := recordOffsets(t, mid, "R")
	flipByte(t, mid, offs[0]+recordHeaderLen)

	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	left, _, err := listSegments(filepath.Join(dir, shardsDirName, "R"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range left {
		if p >= mid {
			t.Fatalf("segment %s at or past the damaged one survived recovery: %v", p, left)
		}
	}
	var last uint64
	if _, err := w.Replay(func(rel string, seq uint64, ups []view.Update) error {
		last = seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sh, err := w.Shard("R")
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := sh.Append(testBatch("R", 50)); err != nil || seq != last+1 {
		t.Fatalf("append resumed at %d (err %v), want %d", seq, err, last+1)
	}
}

func truncateAt(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// appendRawRecord appends a framing-valid record with an arbitrary
// sequence number — only tests can forge the out-of-order history the
// sequence-continuity check exists to reject.
func appendRawRecord(t *testing.T, path string, seq uint64, ups []view.Update) {
	t.Helper()
	var kbuf []byte
	buf := make([]byte, recordHeaderLen)
	buf = appendBatchPayload(buf, seq, ups, nil, &kbuf)
	payload := buf[recordHeaderLen:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
}

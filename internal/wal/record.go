package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/value"
	"repro/internal/view"
)

// Record framing: u32le payload length | u32le CRC32C(payload) | payload.
const (
	recordHeaderLen = 8
	// maxRecordLen bounds the length field before anything is
	// allocated, so a corrupt header cannot demand gigabytes.
	maxRecordLen = 1 << 30
)

// castagnoli is the CRC32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendBatchPayload appends the batch payload (seq, update count, then
// per update: length-prefixed tuple key and zigzag multiplicity, then
// an optional batch-ref trailer) to buf. kbuf is the caller's reusable
// tuple-encode scratch; both buffers grow to a steady state, so
// hot-path appends allocate nothing.
//
// The trailer — uvarint ref count, then per ref the raw 16-byte origin,
// uvarint sequence, and uvarint update count — sits after the updates,
// where decoders that predate it never look (they read exactly count
// updates and stop), so old and new records interoperate both ways: an
// absent trailer decodes as zero refs.
func appendBatchPayload(buf []byte, seq uint64, ups []view.Update, refs []BatchRef, kbuf *[]byte) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(ups)))
	for i := range ups {
		k := ups[i].Tuple.AppendEncode((*kbuf)[:0])
		*kbuf = k
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendVarint(buf, int64(ups[i].Mult))
	}
	if len(refs) > 0 {
		buf = binary.AppendUvarint(buf, uint64(len(refs)))
		for i := range refs {
			buf = append(buf, refs[i].ID.Origin[:]...)
			buf = binary.AppendUvarint(buf, refs[i].ID.Seq)
			buf = binary.AppendUvarint(buf, uint64(refs[i].Updates))
		}
	}
	return buf
}

// decodeBatchPayload parses a CRC-validated payload back into updates
// and batch refs for rel. Errors indicate a framing-valid but
// undecodable payload — recovery treats them like corruption and stops.
func decodeBatchPayload(p []byte, rel string) (seq uint64, ups []view.Update, refs []BatchRef, err error) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("wal: truncated batch sequence number")
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("wal: truncated batch update count")
	}
	p = p[n:]
	if count > uint64(len(p)) { // every update takes >= 1 byte
		return 0, nil, nil, fmt.Errorf("wal: batch claims %d updates in %d payload bytes", count, len(p))
	}
	ups = make([]view.Update, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(p)
		if n <= 0 || klen > uint64(len(p)-n) {
			return 0, nil, nil, fmt.Errorf("wal: truncated tuple key in batch %d", seq)
		}
		p = p[n:]
		tp, err := value.DecodeTuple(string(p[:klen]))
		if err != nil {
			return 0, nil, nil, fmt.Errorf("wal: batch %d: %w", seq, err)
		}
		p = p[klen:]
		mult, n := binary.Varint(p)
		if n <= 0 {
			return 0, nil, nil, fmt.Errorf("wal: truncated multiplicity in batch %d", seq)
		}
		p = p[n:]
		ups = append(ups, view.Update{Rel: rel, Tuple: tp, Mult: int(mult)})
	}
	// Pre-trailer records end exactly here; zero refs is their meaning.
	if len(p) == 0 {
		return seq, ups, nil, nil
	}
	nRefs, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("wal: truncated batch-ref count in batch %d", seq)
	}
	p = p[n:]
	if nRefs > uint64(len(p)/17+1) { // every ref takes >= 16+1+1 bytes
		return 0, nil, nil, fmt.Errorf("wal: batch %d claims %d refs in %d trailer bytes", seq, nRefs, len(p))
	}
	refs = make([]BatchRef, 0, nRefs)
	for i := uint64(0); i < nRefs; i++ {
		var ref BatchRef
		if len(p) < 16 {
			return 0, nil, nil, fmt.Errorf("wal: truncated batch-ref origin in batch %d", seq)
		}
		copy(ref.ID.Origin[:], p[:16])
		p = p[16:]
		ref.ID.Seq, n = binary.Uvarint(p)
		if n <= 0 {
			return 0, nil, nil, fmt.Errorf("wal: truncated batch-ref sequence in batch %d", seq)
		}
		p = p[n:]
		u, n := binary.Uvarint(p)
		if n <= 0 || u > count {
			return 0, nil, nil, fmt.Errorf("wal: bad batch-ref update count in batch %d", seq)
		}
		p = p[n:]
		ref.Updates = int(u)
		refs = append(refs, ref)
	}
	return seq, ups, refs, nil
}

// segmentReader iterates a segment file's records. Any framing,
// checksum, or decode failure surfaces as a recoverable stop (ok=false
// with the failure recorded), never a panic: a torn tail is the
// expected crash artifact.
type segmentReader struct {
	f   *os.File
	rel string
	// off is the file offset of the NEXT record header — after a clean
	// iteration it marks the end of the valid prefix.
	off int64
	hdr [recordHeaderLen]byte
	buf []byte
	// failure describes why iteration stopped early ("" = clean EOF).
	failure string
}

// openSegmentReader validates the segment header (magic + relation) and
// positions the reader at the first record.
func openSegmentReader(path, rel string) (*segmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdrLen, err := checkSegmentHeader(f, rel)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &segmentReader{f: f, rel: rel, off: hdrLen}, nil
}

// checkSegmentHeader reads and validates the magic + relation name,
// returning the header length.
func checkSegmentHeader(f *os.File, rel string) (int64, error) {
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, fmt.Errorf("wal: segment header: %w", err)
	}
	if string(magic) != segmentMagic {
		return 0, fmt.Errorf("wal: not a segment file (magic %q)", magic)
	}
	var lbuf [binary.MaxVarintLen32]byte
	// Read the name length byte-by-byte (names are short, so the varint
	// is 1-2 bytes; read conservatively).
	n := 0
	var nameLen uint64
	for {
		if n == len(lbuf) {
			return 0, fmt.Errorf("wal: segment relation length overflows")
		}
		if _, err := io.ReadFull(f, lbuf[n:n+1]); err != nil {
			return 0, fmt.Errorf("wal: segment header: %w", err)
		}
		n++
		var c int
		nameLen, c = binary.Uvarint(lbuf[:n])
		if c > 0 {
			break
		}
	}
	if nameLen > 4096 {
		return 0, fmt.Errorf("wal: segment relation name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(f, name); err != nil {
		return 0, fmt.Errorf("wal: segment header: %w", err)
	}
	if string(name) != rel {
		return 0, fmt.Errorf("wal: segment belongs to relation %q, expected %q", name, rel)
	}
	return int64(len(segmentMagic) + n + int(nameLen)), nil
}

// next reads one record's payload. ok=false means iteration is over —
// clean EOF when failure is empty, otherwise the first invalid record
// (r.off stays at the valid prefix's end either way). The returned
// payload aliases an internal buffer reused by the next call.
func (r *segmentReader) next() (payload []byte, ok bool) {
	if _, err := io.ReadFull(r.f, r.hdr[:]); err != nil {
		if err != io.EOF {
			r.failure = fmt.Sprintf("torn record header at offset %d: %v", r.off, err)
		}
		return nil, false
	}
	plen := binary.LittleEndian.Uint32(r.hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(r.hdr[4:8])
	if plen > maxRecordLen {
		r.failure = fmt.Sprintf("record at offset %d claims %d payload bytes", r.off, plen)
		return nil, false
	}
	if cap(r.buf) < int(plen) {
		r.buf = make([]byte, plen)
	}
	r.buf = r.buf[:plen]
	if _, err := io.ReadFull(r.f, r.buf); err != nil {
		r.failure = fmt.Sprintf("torn record payload at offset %d: %v", r.off, err)
		return nil, false
	}
	if got := crc32.Checksum(r.buf, castagnoli); got != wantCRC {
		r.failure = fmt.Sprintf("record at offset %d fails CRC (got %08x, want %08x)", r.off, got, wantCRC)
		return nil, false
	}
	r.off += recordHeaderLen + int64(plen)
	return r.buf, true
}

func (r *segmentReader) close() error { return r.f.Close() }

package vo

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/value"
)

func rel(name string, attrs ...string) Rel {
	return Rel{Name: name, Schema: value.NewSchema(attrs...)}
}

func TestBuildToyQuery(t *testing.T) {
	rels := []Rel{rel("R", "A", "B"), rel("S", "A", "C", "D")}
	ord, err := Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ord, rels); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(ord.Roots) != 1 {
		t.Fatalf("roots = %d", len(ord.Roots))
	}
	if ord.Roots[0].Var != "A" {
		t.Errorf("root = %s, want A (max occurrence)", ord.Roots[0].Var)
	}
	if n := ord.FindAnchor("R"); n == nil || n.Var != "B" {
		t.Errorf("R anchored at %v, want B", n)
	}
	if n := ord.FindAnchor("S"); n == nil {
		t.Error("S not anchored")
	}
	if ord.FindAnchor("missing") != nil {
		t.Error("phantom anchor")
	}
}

func TestBuildSingleRelation(t *testing.T) {
	rels := []Rel{rel("R", "A", "B", "C")}
	ord, err := Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ord, rels); err != nil {
		t.Fatal(err)
	}
	// A path of three nodes; R anchored at the deepest.
	n := ord.Roots[0]
	depth := 1
	for len(n.Children) > 0 {
		if len(n.Children) != 1 {
			t.Fatalf("single relation must give a path, found %d children", len(n.Children))
		}
		n = n.Children[0]
		depth++
	}
	if depth != 3 {
		t.Errorf("path depth = %d, want 3", depth)
	}
	if len(n.Rels) != 1 || n.Rels[0].Name != "R" {
		t.Errorf("R not at the path's end")
	}
}

func TestBuildDisconnected(t *testing.T) {
	rels := []Rel{rel("R", "A"), rel("S", "B")}
	ord, err := Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.Roots) != 2 {
		t.Fatalf("disconnected query: roots = %d, want 2", len(ord.Roots))
	}
	if err := Validate(ord, rels); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEmptySchemaFails(t *testing.T) {
	if _, err := Build([]Rel{rel("R")}); err == nil {
		t.Error("empty-schema relation accepted")
	}
}

func TestDependencySets(t *testing.T) {
	// Path query R(A,B), S(B,C), T(C,D): keys must be the classic
	// "connecting" attributes.
	rels := []Rel{rel("R", "A", "B"), rel("S", "B", "C"), rel("T", "C", "D")}
	ord, err := Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ord, rels); err != nil {
		t.Fatal(err)
	}
	// Find each node and check keys ⊆ ancestors and relations covered.
	var check func(n *Node, anc []string)
	check = func(n *Node, anc []string) {
		as := value.NewSchema(anc...)
		if !n.Keys.IsSubsetOf(as) {
			t.Errorf("node %s keys %v not within ancestors %v", n.Var, n.Keys, anc)
		}
		for _, c := range n.Children {
			check(c, append(anc, n.Var))
		}
	}
	for _, r := range ord.Roots {
		check(r, nil)
	}
}

func TestRetailerOrderShape(t *testing.T) {
	rels := []Rel{
		rel("Inventory", "locn", "dateid", "ksn", "inventoryunits"),
		rel("Location", "locn", "zip", "area"),
		rel("Census", "zip", "population"),
		rel("Item", "ksn", "category"),
		rel("Weather", "locn", "dateid", "rain"),
	}
	ord, err := Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ord, rels); err != nil {
		t.Fatal(err)
	}
	// locn occurs in 3 relations: must be the root, matching Figure 2d
	// (V@locn at the top).
	if ord.Roots[0].Var != "locn" {
		t.Errorf("root = %s, want locn", ord.Roots[0].Var)
	}
	drawn := ord.String()
	for _, r := range rels {
		if !strings.Contains(drawn, r.Name) {
			t.Errorf("drawing misses %s:\n%s", r.Name, drawn)
		}
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	rels := []Rel{rel("R", "A", "B")}
	// Relation anchored where its schema is not covered.
	bad := &Order{Roots: []*Node{{
		Var:  "A",
		Rels: []Rel{rel("R", "A", "B")},
		Keys: value.NewSchema(),
	}}}
	if err := Validate(bad, rels); err == nil {
		t.Error("uncovered anchor accepted")
	}
	// Unknown relation anchored.
	bad2 := &Order{Roots: []*Node{{
		Var:  "A",
		Rels: []Rel{rel("X", "A")},
		Keys: value.NewSchema(),
	}}}
	if err := Validate(bad2, rels); err == nil {
		t.Error("unknown relation accepted")
	}
	// Relation never anchored.
	bad3 := &Order{Roots: []*Node{{Var: "A", Keys: value.NewSchema()}}}
	if err := Validate(bad3, rels); err == nil {
		t.Error("missing anchor accepted")
	}
	// Duplicate variable.
	bad4 := &Order{Roots: []*Node{{
		Var:  "A",
		Keys: value.NewSchema(),
		Children: []*Node{{
			Var:  "A",
			Keys: value.NewSchema(),
			Rels: []Rel{rel("R", "A", "B")},
		}},
	}}}
	if err := Validate(bad4, rels); err == nil {
		t.Error("duplicate variable accepted")
	}
	// Schema drift between order and query.
	drift := &Order{Roots: []*Node{{
		Var:  "A",
		Keys: value.NewSchema(),
		Children: []*Node{{
			Var:  "B",
			Keys: value.NewSchema("A"),
			Rels: []Rel{rel("R", "A", "B", "C")},
		}},
	}}}
	if err := Validate(drift, rels); err == nil {
		t.Error("schema drift accepted")
	}
}

// TestBuildAlwaysValid is the key property test: for random acyclic-ish
// hypergraphs the greedy construction must always produce a valid
// variable order covering every relation.
func TestBuildAlwaysValid(t *testing.T) {
	attrs := []string{"A", "B", "C", "D", "E", "F", "G"}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		nRels := 1 + rng.Intn(5)
		var rels []Rel
		for i := 0; i < nRels; i++ {
			k := 1 + rng.Intn(3)
			perm := rng.Perm(len(attrs))[:k]
			names := make([]string, k)
			for j, p := range perm {
				names[j] = attrs[p]
			}
			rels = append(rels, Rel{Name: "R" + string(rune('0'+i)), Schema: value.NewSchema(names...)})
		}
		ord, err := Build(rels)
		if err != nil {
			t.Fatalf("iter %d: Build(%v): %v", iter, rels, err)
		}
		if err := Validate(ord, rels); err != nil {
			t.Fatalf("iter %d: invalid order for %v:\n%s\n%v", iter, rels, ord, err)
		}
	}
}

func TestNodeHelpers(t *testing.T) {
	rels := []Rel{rel("R", "A", "B"), rel("S", "A", "C")}
	ord, err := Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	root := ord.Roots[0]
	vars := root.Vars()
	if len(vars) != 3 {
		t.Errorf("Vars = %v", vars)
	}
	got := root.Relations()
	if len(got) != 2 {
		t.Errorf("Relations = %v", got)
	}
	if s := root.String(); !strings.Contains(s, "A (keys [])") {
		t.Errorf("String = %q", s)
	}
}

package vo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Rel describes one input relation of the join: its name and schema.
type Rel struct {
	Name   string
	Schema value.Schema
}

// Node is one node of a variable order: it owns a variable, the
// relations anchored at it (those whose entire schema is covered by the
// root-to-here path), and child subtrees over the remaining variables.
type Node struct {
	// Var is the variable this node marginalizes.
	Var string
	// Children are the subtrees below this node.
	Children []*Node
	// Rels are the relations anchored at this node.
	Rels []Rel
	// Keys is the dependency set: the ancestor variables that co-occur
	// with variables of this subtree in some relation. The view at this
	// node is grouped by Keys.
	Keys value.Schema
}

// Vars returns all variables of the subtree rooted at n in preorder.
func (n *Node) Vars() []string {
	var out []string
	n.walk(func(m *Node) { out = append(out, m.Var) })
	return out
}

// Relations returns all relations anchored in the subtree.
func (n *Node) Relations() []Rel {
	var out []Rel
	n.walk(func(m *Node) { out = append(out, m.Rels...) })
	return out
}

func (n *Node) walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.walk(fn)
	}
}

// String renders the variable order as an indented tree with anchored
// relations and dependency sets, e.g. "A (keys []) {R, S}".
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *Node) format(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s (keys %v)", n.Var, n.Keys)
	if len(n.Rels) > 0 {
		names := make([]string, len(n.Rels))
		for i, r := range n.Rels {
			names[i] = r.Name
		}
		fmt.Fprintf(b, " {%s}", strings.Join(names, ", "))
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.format(b, depth+1)
	}
}

// Order is a forest of variable-order trees; disconnected queries yield
// multiple roots (their views combine by Cartesian product at the top).
type Order struct {
	Roots []*Node
}

// String renders every root tree.
func (o *Order) String() string {
	var b strings.Builder
	for _, r := range o.Roots {
		b.WriteString(r.String())
	}
	return b.String()
}

// Build constructs a variable order for the natural join of rels using a
// greedy heuristic: at each step it picks the variable occurring in the
// most remaining relations (ties broken lexicographically), anchors the
// relations it completes, and recurses into the connected components of
// the rest. This mirrors the d-tree construction of the F-IVM prototype.
//
// Build returns an error when a relation has an empty schema (such a
// relation cannot be anchored) — scalar relations should be handled by
// the caller.
func Build(rels []Rel) (*Order, error) {
	for _, r := range rels {
		if r.Schema.Len() == 0 {
			return nil, fmt.Errorf("vo: relation %s has an empty schema", r.Name)
		}
	}
	roots, err := build(rels, nil)
	if err != nil {
		return nil, err
	}
	return &Order{Roots: roots}, nil
}

// build recursively constructs the forest over rels given the path of
// ancestor variables already chosen.
func build(rels []Rel, ancestors []string) ([]*Node, error) {
	if len(rels) == 0 {
		return nil, nil
	}
	anc := value.NewSchema(ancestors...)

	// Partition into connected components on the not-yet-eliminated
	// variables so sibling subtrees stay independent.
	comps := components(rels, anc)
	var roots []*Node
	for _, comp := range comps {
		n, err := buildComponent(comp, ancestors, anc)
		if err != nil {
			return nil, err
		}
		roots = append(roots, n)
	}
	return roots, nil
}

func buildComponent(rels []Rel, ancestors []string, anc value.Schema) (*Node, error) {
	// Count occurrences of remaining variables.
	count := map[string]int{}
	for _, r := range rels {
		for _, a := range r.Schema.Attrs() {
			if !anc.Has(a) {
				count[a]++
			}
		}
	}
	if len(count) == 0 {
		return nil, fmt.Errorf("vo: relations %v fully covered by ancestors %v; duplicate schema?", relNames(rels), ancestors)
	}
	// Pick max-occurrence variable; ties lexicographic for determinism.
	vars := make([]string, 0, len(count))
	for v := range count {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	best := vars[0]
	for _, v := range vars[1:] {
		if count[v] > count[best] {
			best = v
		}
	}

	node := &Node{Var: best}
	path := append(append([]string{}, ancestors...), best)
	pathSchema := value.NewSchema(path...)

	var rest []Rel
	for _, r := range rels {
		if r.Schema.IsSubsetOf(pathSchema) {
			node.Rels = append(node.Rels, r)
		} else {
			rest = append(rest, r)
		}
	}
	sort.Slice(node.Rels, func(i, j int) bool { return node.Rels[i].Name < node.Rels[j].Name })

	children, err := build(rest, path)
	if err != nil {
		return nil, err
	}
	node.Children = children
	node.computeKeys(anc)
	return node, nil
}

// computeKeys sets the dependency set of n: ancestors that appear in
// some relation of n's subtree.
func (n *Node) computeKeys(ancestors value.Schema) {
	used := map[string]bool{}
	for _, r := range n.Relations() {
		for _, a := range r.Schema.Attrs() {
			if ancestors.Has(a) {
				used[a] = true
			}
		}
	}
	var keys []string
	for _, a := range ancestors.Attrs() { // keep ancestor order
		if used[a] {
			keys = append(keys, a)
		}
	}
	n.Keys = value.NewSchema(keys...)
	// Recompute children keys against the extended ancestor path.
	ext := ancestors.Union(value.NewSchema(n.Var))
	for _, c := range n.Children {
		c.computeKeys(ext)
	}
}

// components groups relations into connected components linked by shared
// variables not yet eliminated (i.e. not in anc).
func components(rels []Rel, anc value.Schema) [][]Rel {
	n := len(rels)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVar := map[string]int{}
	for i, r := range rels {
		for _, a := range r.Schema.Attrs() {
			if anc.Has(a) {
				continue
			}
			if j, ok := byVar[a]; ok {
				union(i, j)
			} else {
				byVar[a] = i
			}
		}
	}
	groups := map[int][]Rel{}
	var order []int
	for i, r := range rels {
		root := find(i)
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], r)
	}
	out := make([][]Rel, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}

func relNames(rels []Rel) []string {
	out := make([]string, len(rels))
	for i, r := range rels {
		out[i] = r.Name
	}
	return out
}

// Validate checks that ord is a valid variable order for rels: every
// variable appears exactly once, every relation is anchored exactly
// once at a node whose root-to-node path covers its schema, and
// dependency sets are consistent.
func Validate(ord *Order, rels []Rel) error {
	want := make(map[string]value.Schema, len(rels))
	for _, r := range rels {
		want[r.Name] = r.Schema
	}
	seenVar := map[string]bool{}
	seenRel := map[string]bool{}
	var check func(n *Node, path []string) error
	check = func(n *Node, path []string) error {
		if seenVar[n.Var] {
			return fmt.Errorf("vo: variable %s appears twice", n.Var)
		}
		seenVar[n.Var] = true
		path = append(path, n.Var)
		ps := value.NewSchema(path...)
		for _, r := range n.Rels {
			ws, known := want[r.Name]
			if !known {
				return fmt.Errorf("vo: order anchors unknown relation %s", r.Name)
			}
			if !ws.Equal(r.Schema) {
				return fmt.Errorf("vo: relation %s schema mismatch: order has %v, query has %v", r.Name, r.Schema, ws)
			}
			if seenRel[r.Name] {
				return fmt.Errorf("vo: relation %s anchored twice", r.Name)
			}
			seenRel[r.Name] = true
			if !r.Schema.IsSubsetOf(ps) {
				return fmt.Errorf("vo: relation %s (schema %v) not covered by path %v", r.Name, r.Schema, path)
			}
		}
		if !n.Keys.IsSubsetOf(value.NewSchema(path[:len(path)-1]...)) {
			return fmt.Errorf("vo: node %s keys %v not a subset of its ancestors %v", n.Var, n.Keys, path[:len(path)-1])
		}
		for _, c := range n.Children {
			if err := check(c, path); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range ord.Roots {
		if err := check(root, nil); err != nil {
			return err
		}
	}
	for _, r := range rels {
		if !seenRel[r.Name] {
			return fmt.Errorf("vo: relation %s not anchored anywhere", r.Name)
		}
		for _, a := range r.Schema.Attrs() {
			if !seenVar[a] {
				return fmt.Errorf("vo: variable %s of relation %s missing from order", a, r.Name)
			}
		}
	}
	return nil
}

// FindAnchor returns the node where relation name is anchored, or nil.
func (o *Order) FindAnchor(name string) *Node {
	var found *Node
	for _, r := range o.Roots {
		r.walk(func(n *Node) {
			for _, rel := range n.Rels {
				if rel.Name == name {
					found = n
				}
			}
		})
	}
	return found
}

// Package vo implements variable orders: the tree-shaped elimination
// orders over query variables from which F-IVM derives its view trees.
// Each node marginalizes one variable; every input relation is anchored
// at its lowest variable, and validity requires each relation's schema
// to lie on a single root-to-leaf path.
//
// # Key invariants
//
//   - Every relation is anchored at exactly one node: the deepest node
//     whose root-to-here path covers the relation's schema. The
//     leaf-to-root path from that anchor is the only part of the view
//     tree an update to the relation can change.
//   - A node's Keys (its dependency set) are the ancestor variables
//     that co-occur with variables of its subtree in some relation —
//     the group-by schema of the node's view, and the join key through
//     which deltas from the subtree flow upward (parallel delta
//     propagation partitions batches by it).
//   - Disconnected queries yield a forest; the root views combine by
//     Cartesian product at the top.
//
// Build derives an order with the greedy heuristic of the F-IVM
// prototype (pick the variable in the most remaining relations, recurse
// into connected components); Validate checks hand-crafted orders for
// the same structural properties.
package vo

// Package query models F-IVM input queries — SUM aggregates of products
// of per-attribute functions over natural joins, with optional group-by —
// and provides a parser for a small SQL subset:
//
//	SELECT SUM(gB(B) * gC(C) * gD(D))
//	FROM R NATURAL JOIN S
//	GROUP BY A
//
// Supported select items: SUM(<factor> {* <factor>}) where a factor is a
// numeric literal, an attribute name, or a function application f(Attr);
// plain attributes may be listed alongside and must then appear in GROUP
// BY. The catalog maps relation names to schemas and attribute kinds
// (continuous vs categorical), from which the application layers derive
// ring and lift choices.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokStar
	tokComma
	tokLParen
	tokRParen
	tokKeyword
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokStar:
		return "'*'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokKeyword:
		return "keyword"
	default:
		return "token"
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords recognized case-insensitively; stored upper-case.
var keywords = map[string]bool{
	"SELECT": true, "SUM": true, "FROM": true, "NATURAL": true,
	"JOIN": true, "GROUP": true, "BY": true, "AS": true,
}

// lexer tokenizes a query string.
type lexer struct {
	src []rune
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src)} }

// next returns the next token, or an error for unrecognized input.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			b.WriteRune(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("query: unterminated string literal at offset %d", start)
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case unicode.IsDigit(c) || c == '.' || c == '-':
		l.pos++
		for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			l.pos++
		}
		return token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start}, nil
	case unicode.IsLetter(c) || c == '_':
		l.pos++
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		text := string(l.src[start:l.pos])
		if keywords[strings.ToUpper(text)] {
			return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil
	default:
		return token{}, fmt.Errorf("query: unexpected character %q at offset %d", c, start)
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

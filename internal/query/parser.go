package query

import (
	"fmt"
	"strconv"
)

// Parse parses a query string against the catalog and validates it.
//
// Grammar (case-insensitive keywords):
//
//	query    := SELECT items FROM joins [GROUP BY attrs]
//	items    := item {',' item}
//	item     := attr | SUM '(' product ')' [AS ident]
//	product  := factor {'*' factor}
//	factor   := number | attr | ident '(' attr ')'
//	joins    := ident {NATURAL JOIN ident}
//	attrs    := ident {',' ident}
func Parse(c *Catalog, src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: c}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(c); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for statically known query
// text in examples and tests.
func MustParse(c *Catalog, src string) *Query {
	q, err := Parse(c, src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
	cat  *Catalog
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.advance()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("query: expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.advance()
	if t.kind != k {
		return t, fmt.Errorf("query: expected %v at offset %d, got %q", k, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	var plain []string
	for {
		t := p.peek()
		switch {
		case t.kind == tokKeyword && t.text == "SUM":
			agg, err := p.parseAggregate()
			if err != nil {
				return nil, err
			}
			q.Aggregates = append(q.Aggregates, agg)
		case t.kind == tokIdent:
			p.advance()
			plain = append(plain, t.text)
		default:
			return nil, fmt.Errorf("query: expected select item at offset %d, got %q", t.pos, t.text)
		}
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		rel, ok := p.cat.Relation(t.text)
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %s at offset %d", t.text, t.pos)
		}
		q.Relations = append(q.Relations, rel)
		if t := p.peek(); t.kind == tokKeyword && t.text == "NATURAL" {
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			continue
		}
		break
	}

	if t := p.peek(); t.kind == tokKeyword && t.text == "GROUP" {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, t.text)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at offset %d: %q", t.pos, t.text)
	}

	// Plain select attributes must be grouped (SQL rule).
	grouped := map[string]bool{}
	for _, g := range q.GroupBy {
		grouped[g] = true
	}
	for _, a := range plain {
		if !grouped[a] {
			return nil, fmt.Errorf("query: select attribute %s must appear in GROUP BY", a)
		}
	}
	return q, nil
}

func (p *parser) parseAggregate() (Aggregate, error) {
	var agg Aggregate
	if err := p.expectKeyword("SUM"); err != nil {
		return agg, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return agg, err
	}
	for {
		f, err := p.parseFactor()
		if err != nil {
			return agg, err
		}
		agg.Factors = append(agg.Factors, f)
		if p.peek().kind == tokStar {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return agg, err
	}
	if t := p.peek(); t.kind == tokKeyword && t.text == "AS" {
		p.advance()
		t, err := p.expect(tokIdent)
		if err != nil {
			return agg, err
		}
		agg.Alias = t.text
	}
	return agg, nil
}

func (p *parser) parseFactor() (Factor, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Factor{}, fmt.Errorf("query: bad number %q at offset %d", t.text, t.pos)
		}
		return Factor{IsConst: true, Const: v}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.advance()
			arg, err := p.expect(tokIdent)
			if err != nil {
				return Factor{}, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return Factor{}, err
			}
			return Factor{Func: t.text, Attr: arg.text}, nil
		}
		return Factor{Attr: t.text}, nil
	default:
		return Factor{}, fmt.Errorf("query: expected factor at offset %d, got %q", t.pos, t.text)
	}
}

package query

import (
	"strings"
	"testing"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	if err := c.AddRelation("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRelation("S", "A", "C", "D"); err != nil {
		t.Fatal(err)
	}
	c.SetKind("C", Categorical)
	return c
}

func TestCatalogBasics(t *testing.T) {
	c := testCatalog(t)
	if err := c.AddRelation("R", "X"); err == nil {
		t.Error("duplicate relation accepted")
	}
	r, ok := c.Relation("R")
	if !ok || r.Schema.Len() != 2 {
		t.Errorf("Relation(R) = %v, %v", r, ok)
	}
	if _, ok := c.Relation("Z"); ok {
		t.Error("phantom relation")
	}
	if c.Kind("C") != Categorical || c.Kind("B") != Continuous {
		t.Error("kinds wrong")
	}
	if !c.HasAttr("D") || c.HasAttr("Z") {
		t.Error("HasAttr wrong")
	}
	rels := c.Relations()
	if len(rels) != 2 || rels[0].Name != "R" {
		t.Errorf("Relations order = %v", rels)
	}
	if Continuous.String() != "continuous" || Categorical.String() != "categorical" {
		t.Error("kind names")
	}
}

func TestParseSimpleCount(t *testing.T) {
	c := testCatalog(t)
	q, err := Parse(c, "SELECT SUM(1) FROM R NATURAL JOIN S")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 1 || len(q.Relations) != 2 || len(q.GroupBy) != 0 {
		t.Fatalf("parsed %+v", q)
	}
	a := q.Aggregates[0]
	if len(a.Factors) != 1 || !a.Factors[0].IsConst || a.Factors[0].Const != 1 {
		t.Errorf("factors = %v", a.Factors)
	}
}

func TestParsePaperQuery(t *testing.T) {
	c := testCatalog(t)
	q, err := Parse(c, "SELECT SUM(gB(B) * gC(C) * gD(D)) FROM R NATURAL JOIN S")
	if err != nil {
		t.Fatal(err)
	}
	fs := q.Aggregates[0].Factors
	if len(fs) != 3 {
		t.Fatalf("factors = %v", fs)
	}
	if fs[0].Func != "gB" || fs[0].Attr != "B" {
		t.Errorf("factor 0 = %v", fs[0])
	}
	attrs := q.Aggregates[0].Attrs()
	if len(attrs) != 3 || attrs[0] != "B" || attrs[2] != "D" {
		t.Errorf("Attrs = %v", attrs)
	}
}

func TestParseGroupByAndAlias(t *testing.T) {
	c := testCatalog(t)
	q, err := Parse(c, "SELECT A, SUM(B) AS S1 FROM R GROUP BY A")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "A" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if q.Aggregates[0].Alias != "S1" {
		t.Errorf("Alias = %q", q.Aggregates[0].Alias)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	c := testCatalog(t)
	if _, err := Parse(c, "select sum(1) from R natural join S group by A"); err != nil {
		t.Errorf("lower-case keywords rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	c := testCatalog(t)
	cases := []struct {
		src  string
		want string
	}{
		{"SUM(1) FROM R", "expected SELECT"},
		{"SELECT SUM(1)", "expected FROM"},
		{"SELECT SUM(1) FROM Unknown", "unknown relation"},
		{"SELECT SUM(1 FROM R", "expected ')'"},
		{"SELECT B FROM R", "must appear in GROUP BY"},
		{"SELECT SUM(Z) FROM R", "not in any joined relation"},
		{"SELECT SUM(1) FROM R GROUP BY Z", "not in any joined relation"},
		{"SELECT SUM(1) FROM R extra", "trailing input"},
		{"SELECT SUM(g(B) *) FROM R", "expected factor"},
		{"SELECT SUM(g(B B)) FROM R", "expected ')'"},
		{"SELECT SUM(1) FROM R NATURAL R", "expected JOIN"},
		{"SELECT , FROM R", "expected select item"},
	}
	for _, tc := range cases {
		_, err := Parse(c, tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error = %v, want contains %q", tc.src, err, tc.want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("SELECT ~"); err == nil {
		t.Error("unexpected character accepted")
	}
	if _, err := lexAll("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexerStringsAndNumbers(t *testing.T) {
	toks, err := lexAll("'hi' 3.5 -2 x1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "hi" {
		t.Errorf("string token = %+v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[1].text != "3.5" {
		t.Errorf("number token = %+v", toks[1])
	}
	if toks[2].kind != tokNumber || toks[2].text != "-2" {
		t.Errorf("negative number = %+v", toks[2])
	}
	if toks[3].kind != tokIdent || toks[3].text != "x1" {
		t.Errorf("ident = %+v", toks[3])
	}
}

func TestQueryString(t *testing.T) {
	c := testCatalog(t)
	q := MustParse(c, "SELECT A, SUM(gB(B) * gC(C)) FROM R NATURAL JOIN S GROUP BY A")
	s := q.String()
	for _, frag := range []string{"SELECT A", "SUM(gB(B) * gC(C))", "R NATURAL JOIN S", "GROUP BY A"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	// Round-trip: the rendered text must parse back to the same shape.
	q2, err := Parse(c, s)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if q2.String() != s {
		t.Errorf("round-trip drifted: %q vs %q", q2.String(), s)
	}
}

func TestQueryVarsAndJoinVars(t *testing.T) {
	c := testCatalog(t)
	q := MustParse(c, "SELECT SUM(1) FROM R NATURAL JOIN S")
	vars := q.Vars()
	if len(vars) != 4 { // A, B, C, D
		t.Errorf("Vars = %v", vars)
	}
	jv := q.JoinVars()
	if len(jv) != 1 || jv[0] != "A" {
		t.Errorf("JoinVars = %v", jv)
	}
	rels := q.VORels()
	if len(rels) != 2 || rels[0].Name != "R" {
		t.Errorf("VORels = %v", rels)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustParse(testCatalog(t), "not a query")
}

func TestFactorString(t *testing.T) {
	cases := []struct {
		f    Factor
		want string
	}{
		{Factor{IsConst: true, Const: 1}, "1"},
		{Factor{IsConst: true, Const: 2.5}, "2.5"},
		{Factor{Attr: "B"}, "B"},
		{Factor{Func: "sq", Attr: "B"}, "sq(B)"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestValidateSchemaDrift(t *testing.T) {
	c := testCatalog(t)
	q := MustParse(c, "SELECT SUM(1) FROM R")
	// Simulate catalog drift after parsing.
	c2 := NewCatalog()
	if err := c2.AddRelation("R", "A"); err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(c2); err == nil {
		t.Error("drifted schema accepted")
	}
	empty := &Query{}
	if err := empty.Validate(c); err == nil {
		t.Error("relation-less query accepted")
	}
}

package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
	"repro/internal/vo"
)

// AttrKind classifies attributes for lift-function selection.
type AttrKind int

const (
	// Continuous attributes contribute scalar SUM aggregates.
	Continuous AttrKind = iota
	// Categorical attributes are one-hot encoded: their aggregates are
	// relations grouped by the attribute.
	Categorical
)

// String returns "continuous" or "categorical".
func (k AttrKind) String() string {
	if k == Categorical {
		return "categorical"
	}
	return "continuous"
}

// Relation describes one catalog relation.
type Relation struct {
	Name   string
	Schema value.Schema
}

// Catalog maps relation names to schemas and attribute kinds. Attribute
// names are global (natural-join semantics): the same name in two
// relations is one variable.
type Catalog struct {
	rels  map[string]Relation
	order []string
	kinds map[string]AttrKind
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: map[string]Relation{}, kinds: map[string]AttrKind{}}
}

// AddRelation registers a relation; attributes default to Continuous.
func (c *Catalog) AddRelation(name string, attrs ...string) error {
	if _, dup := c.rels[name]; dup {
		return fmt.Errorf("query: relation %s already in catalog", name)
	}
	c.rels[name] = Relation{Name: name, Schema: value.NewSchema(attrs...)}
	c.order = append(c.order, name)
	return nil
}

// SetKind marks an attribute continuous or categorical catalog-wide.
func (c *Catalog) SetKind(attr string, k AttrKind) { c.kinds[attr] = k }

// Kind returns the kind of attr (Continuous when unset).
func (c *Catalog) Kind(attr string) AttrKind { return c.kinds[attr] }

// Relation looks up a relation by name.
func (c *Catalog) Relation(name string) (Relation, bool) {
	r, ok := c.rels[name]
	return r, ok
}

// Relations returns all catalog relations in registration order.
func (c *Catalog) Relations() []Relation {
	out := make([]Relation, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.rels[n])
	}
	return out
}

// HasAttr reports whether any relation contains attr.
func (c *Catalog) HasAttr(attr string) bool {
	for _, r := range c.rels {
		if r.Schema.Has(attr) {
			return true
		}
	}
	return false
}

// Factor is one multiplicand inside SUM(...): either a numeric constant,
// a bare attribute (implicit identity function), or a named function
// applied to an attribute.
type Factor struct {
	// Const holds the literal for constant factors; meaningful only when
	// IsConst is true.
	Const   float64
	IsConst bool
	// Func is the applied function name ("" for a bare attribute).
	Func string
	// Attr is the attribute the factor ranges over ("" for constants).
	Attr string
}

// String renders the factor in SQL-ish syntax.
func (f Factor) String() string {
	switch {
	case f.IsConst:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f.Const), "0"), ".")
	case f.Func != "":
		return f.Func + "(" + f.Attr + ")"
	default:
		return f.Attr
	}
}

// Aggregate is one SUM(...) select item: the product of its factors.
type Aggregate struct {
	Factors []Factor
	// Alias is the optional AS name.
	Alias string
}

// Attrs returns the distinct attributes the aggregate ranges over, in
// first-appearance order.
func (a Aggregate) Attrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range a.Factors {
		if f.Attr != "" && !seen[f.Attr] {
			seen[f.Attr] = true
			out = append(out, f.Attr)
		}
	}
	return out
}

// String renders the aggregate, e.g. "SUM(gB(B) * gC(C))".
func (a Aggregate) String() string {
	parts := make([]string, len(a.Factors))
	for i, f := range a.Factors {
		parts[i] = f.String()
	}
	s := "SUM(" + strings.Join(parts, " * ") + ")"
	if a.Alias != "" {
		s += " AS " + a.Alias
	}
	return s
}

// Query is a parsed and validated F-IVM query: SUM aggregates over the
// natural join of the listed relations, optionally grouped.
type Query struct {
	Aggregates []Aggregate
	Relations  []Relation
	GroupBy    []string
}

// Vars returns every variable (attribute) of the query's relations,
// sorted.
func (q *Query) Vars() []string {
	seen := map[string]bool{}
	for _, r := range q.Relations {
		for _, a := range r.Schema.Attrs() {
			seen[a] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// VORels converts the query's relations to the vo package's input form.
func (q *Query) VORels() []vo.Rel {
	out := make([]vo.Rel, len(q.Relations))
	for i, r := range q.Relations {
		out[i] = vo.Rel{Name: r.Name, Schema: r.Schema}
	}
	return out
}

// JoinVars returns the variables occurring in at least two relations,
// sorted.
func (q *Query) JoinVars() []string {
	count := map[string]int{}
	for _, r := range q.Relations {
		for _, a := range r.Schema.Attrs() {
			count[a]++
		}
	}
	var out []string
	for a, c := range count {
		if c >= 2 {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the query back to SQL-ish text.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	items := make([]string, 0, len(q.Aggregates)+len(q.GroupBy))
	for _, g := range q.GroupBy {
		items = append(items, g)
	}
	for _, a := range q.Aggregates {
		items = append(items, a.String())
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM ")
	names := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		names[i] = r.Name
	}
	b.WriteString(strings.Join(names, " NATURAL JOIN "))
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(q.GroupBy, ", "))
	}
	return b.String()
}

// Validate checks the query against the catalog: relations exist,
// aggregate attributes exist in some relation, group-by attributes
// exist, and plain select attributes are grouped.
func (q *Query) Validate(c *Catalog) error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("query: no relations")
	}
	attrs := value.NewSchema()
	for _, r := range q.Relations {
		cr, ok := c.Relation(r.Name)
		if !ok {
			return fmt.Errorf("query: unknown relation %s", r.Name)
		}
		if !cr.Schema.Equal(r.Schema) {
			return fmt.Errorf("query: relation %s schema drifted from catalog", r.Name)
		}
		attrs = attrs.Union(r.Schema)
	}
	for _, a := range q.Aggregates {
		for _, f := range a.Factors {
			if f.Attr != "" && !attrs.Has(f.Attr) {
				return fmt.Errorf("query: aggregate attribute %s not in any joined relation", f.Attr)
			}
		}
	}
	for _, g := range q.GroupBy {
		if !attrs.Has(g) {
			return fmt.Errorf("query: group-by attribute %s not in any joined relation", g)
		}
	}
	return nil
}

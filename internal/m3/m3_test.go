package m3_test

import (
	"strings"
	"testing"

	"repro/internal/m3"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

func toyTree(t *testing.T) *view.Tree[*ring.Covar] {
	t.Helper()
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C", "D")},
	}
	r := ring.NewCovarRing(3)
	tr, err := view.New(view.Spec[*ring.Covar]{
		Ring: r, Relations: rels,
		Lifts: map[string]ring.Lift[*ring.Covar]{
			"B": r.Lift(0), "C": r.Lift(1), "D": r.Lift(2),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRenderDeclarations(t *testing.T) {
	tr := toyTree(t)
	info := m3.RingInfo{
		Name: "RingCofactor<double, 3>",
		LiftIndexOf: func(v string) int {
			switch v {
			case "B":
				return 0
			case "C":
				return 1
			case "D":
				return 2
			}
			return -1
		},
	}
	p := m3.Render(tr, info)
	if len(p.Declarations) != 4 { // A, B, C, D
		t.Fatalf("%d declarations, want 4:\n%v", len(p.Declarations), p.Declarations)
	}
	all := p.String()
	for _, frag := range []string{
		"DECLARE MAP V_A(RingCofactor<double, 3>)",
		"DECLARE MAP V_B(RingCofactor<double, 3>)[][A: long]",
		"AggSum([A],",
		"[lift<0>: RingCofactor<double, 3>](B)",
		"R(long)[][...]<Local>",
		"S(long)[][...]<Local>",
	} {
		if !strings.Contains(all, frag) {
			t.Errorf("rendered program missing %q:\n%s", frag, all)
		}
	}
	// The root view joins its children views.
	rootDecl := p.Declarations[0]
	if !strings.Contains(rootDecl, "V_B(") || !strings.Contains(rootDecl, "V_C(") {
		t.Errorf("root declaration misses children:\n%s", rootDecl)
	}
	// The join variable A has no lift.
	if strings.Contains(rootDecl, "[lift") {
		t.Errorf("join variable got a lift:\n%s", rootDecl)
	}
}

func TestRenderTreeDrawing(t *testing.T) {
	tr := toyTree(t)
	p := m3.Render(tr, m3.RingInfo{Name: "Ring"})
	for _, frag := range []string{"V@A[]", "V@B[A]", "R[...]", "S[...]"} {
		if !strings.Contains(p.TreeDrawing, frag) {
			t.Errorf("drawing missing %q:\n%s", frag, p.TreeDrawing)
		}
	}
	// Indentation: children are deeper than the root.
	lines := strings.Split(strings.TrimRight(p.TreeDrawing, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "V@A") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("child not indented: %q", lines[1])
	}
}

func TestRenderWithoutLiftIndex(t *testing.T) {
	tr := toyTree(t)
	p := m3.Render(tr, m3.RingInfo{Name: "Ring"}) // no LiftIndexOf
	if !strings.Contains(p.String(), "[lift: Ring](B)") {
		t.Errorf("generic lift marker missing:\n%s", p.String())
	}
}

func TestDrawOrder(t *testing.T) {
	rels := []vo.Rel{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C")},
	}
	ord, err := vo.Build(rels)
	if err != nil {
		t.Fatal(err)
	}
	s := m3.DrawOrder(ord)
	for _, frag := range []string{"V@A[]", "R[...]", "S[...]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DrawOrder missing %q:\n%s", frag, s)
		}
	}
}

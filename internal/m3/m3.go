// Package m3 renders a view tree in the M3-style intermediate
// representation shown in the paper's Maintenance Strategy tab
// (Figure 2d): one DECLARE MAP per view, defined as an AggSum over the
// product of its children views, anchored relations, and the lift of
// the marginalized variable.
package m3

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/view"
	"repro/internal/vo"
)

// RingInfo names the payload ring for the DECLARE MAP headers, e.g.
// "RingCofactor<double, 2, 6>" or "long" for the Z ring.
type RingInfo struct {
	// Name is the ring's display name.
	Name string
	// LiftIndexOf returns the aggregate index a variable's lift writes
	// to, or -1 when the variable has no lift. Used for the
	// "[lift<idx>](X)" factor; may be nil.
	LiftIndexOf func(varName string) int
}

// Program is the rendered M3 program: the view tree as a drawing plus
// one declaration per view.
type Program struct {
	// TreeDrawing is an indented rendering of the view tree.
	TreeDrawing string
	// Declarations lists the per-view M3 code, root first.
	Declarations []string
}

// String joins the drawing and all declarations.
func (p Program) String() string {
	var b strings.Builder
	b.WriteString(p.TreeDrawing)
	b.WriteString("\n")
	for _, d := range p.Declarations {
		b.WriteString(d)
		b.WriteString("\n")
	}
	return b.String()
}

// Render produces the M3 program for a view tree.
func Render[V any](t *view.Tree[V], info RingInfo) Program {
	var p Program
	var draw strings.Builder
	for _, r := range t.Roots() {
		drawNode(&draw, r, 0)
	}
	p.TreeDrawing = draw.String()
	for _, r := range t.Roots() {
		declNode(t, r, info, &p.Declarations)
	}
	return p
}

func drawNode[V any](b *strings.Builder, n *view.Node[V], depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%sV@%s[%s]\n", indent, n.Var(), strings.Join(n.Keys().Attrs(), ", "))
	for _, rel := range n.RelNames() {
		fmt.Fprintf(b, "%s  %s[...]\n", indent, rel)
	}
	for _, c := range n.Children() {
		drawNode(b, c, depth+1)
	}
}

func declNode[V any](t *view.Tree[V], n *view.Node[V], info RingInfo, out *[]string) {
	var b strings.Builder
	keys := n.Keys().Attrs()
	fmt.Fprintf(&b, "DECLARE MAP V_%s(%s)[][%s] :=\n", n.Var(), info.Name, typedKeys(keys))
	fmt.Fprintf(&b, "  AggSum([%s],\n    ", strings.Join(keys, ", "))

	var factors []string
	for _, c := range n.Children() {
		factors = append(factors, fmt.Sprintf("V_%s(%s)[][%s]<Local>", c.Var(), info.Name, strings.Join(c.Keys().Attrs(), ", ")))
	}
	for _, rel := range n.RelNames() {
		factors = append(factors, fmt.Sprintf("%s(long)[][...]<Local>", rel))
	}
	if t.Lift(n.Var()) != nil {
		idx := -1
		if info.LiftIndexOf != nil {
			idx = info.LiftIndexOf(n.Var())
		}
		if idx >= 0 {
			factors = append(factors, fmt.Sprintf("[lift<%d>: %s](%s)", idx, info.Name, n.Var()))
		} else {
			factors = append(factors, fmt.Sprintf("[lift: %s](%s)", info.Name, n.Var()))
		}
	}
	b.WriteString(strings.Join(factors, "\n    * "))
	b.WriteString("\n  );")
	*out = append(*out, b.String())
	for _, c := range n.Children() {
		declNode(t, c, info, out)
	}
}

func typedKeys(keys []string) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + ": long"
	}
	return strings.Join(parts, ", ")
}

// DrawOrder renders a bare variable order (without materialized views)
// in the same style; used before a tree is instantiated.
func DrawOrder(o *vo.Order) string {
	var b strings.Builder
	var rec func(n *vo.Node, depth int)
	rec = func(n *vo.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%sV@%s[%s]\n", indent, n.Var, strings.Join(n.Keys.Attrs(), ", "))
		rels := make([]string, len(n.Rels))
		for i, r := range n.Rels {
			rels[i] = r.Name
		}
		sort.Strings(rels)
		for _, r := range rels {
			fmt.Fprintf(&b, "%s  %s[...]\n", indent, r)
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range o.Roots {
		rec(r, 0)
	}
	return b.String()
}

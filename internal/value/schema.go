package value

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is an ordered list of attribute names. Attribute order is
// significant: it fixes the positional layout of companion tuples.
// Schemas are treated as immutable after construction.
type Schema struct {
	attrs []string
	pos   map[string]int
}

// NewSchema builds a schema from attribute names. It panics on duplicate
// names, which always indicate a programming error at this layer.
func NewSchema(attrs ...string) Schema {
	pos := make(map[string]int, len(attrs))
	cp := make([]string, len(attrs))
	copy(cp, attrs)
	for i, a := range cp {
		if _, dup := pos[a]; dup {
			panic(fmt.Sprintf("value: duplicate attribute %q in schema", a))
		}
		pos[a] = i
	}
	return Schema{attrs: cp, pos: pos}
}

// Len returns the number of attributes.
func (s Schema) Len() int { return len(s.attrs) }

// Attrs returns the attribute names in order. Callers must not mutate
// the returned slice.
func (s Schema) Attrs() []string { return s.attrs }

// Attr returns the i-th attribute name.
func (s Schema) Attr(i int) string { return s.attrs[i] }

// Index returns the position of attribute a, or -1 if absent.
func (s Schema) Index(a string) int {
	if i, ok := s.pos[a]; ok {
		return i
	}
	return -1
}

// Has reports whether attribute a is in the schema.
func (s Schema) Has(a string) bool { _, ok := s.pos[a]; return ok }

// Equal reports whether two schemas list the same attributes in the
// same order.
func (s Schema) Equal(o Schema) bool {
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// Intersect returns the attributes of s that also appear in o, in s's
// order.
func (s Schema) Intersect(o Schema) Schema {
	var out []string
	for _, a := range s.attrs {
		if o.Has(a) {
			out = append(out, a)
		}
	}
	return NewSchema(out...)
}

// Union returns s followed by the attributes of o not already in s.
func (s Schema) Union(o Schema) Schema {
	out := make([]string, len(s.attrs), len(s.attrs)+o.Len())
	copy(out, s.attrs)
	for _, a := range o.attrs {
		if !s.Has(a) {
			out = append(out, a)
		}
	}
	return NewSchema(out...)
}

// Minus returns the attributes of s not present in o, in s's order.
func (s Schema) Minus(o Schema) Schema {
	var out []string
	for _, a := range s.attrs {
		if !o.Has(a) {
			out = append(out, a)
		}
	}
	return NewSchema(out...)
}

// Project returns the positions in s of the attrs of target, so that
// tuple.Project(positions) restricts a tuple of s to target. It returns
// an error if target mentions an attribute absent from s.
func (s Schema) Project(target Schema) ([]int, error) {
	idx := make([]int, target.Len())
	for i, a := range target.attrs {
		j := s.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("value: attribute %q not in schema %v", a, s.attrs)
		}
		idx[i] = j
	}
	return idx, nil
}

// MustProject is Project that panics on error, for statically known
// subset relationships.
func (s Schema) MustProject(target Schema) []int {
	idx, err := s.Project(target)
	if err != nil {
		panic(err)
	}
	return idx
}

// IsSubsetOf reports whether every attribute of s appears in o.
func (s Schema) IsSubsetOf(o Schema) bool {
	for _, a := range s.attrs {
		if !o.Has(a) {
			return false
		}
	}
	return true
}

// Sorted returns the attribute names in lexicographic order (a fresh
// slice; the schema itself is unchanged).
func (s Schema) Sorted() []string {
	out := make([]string, len(s.attrs))
	copy(out, s.attrs)
	sort.Strings(out)
	return out
}

// String renders the schema as "[a, b, c]".
func (s Schema) String() string {
	return "[" + strings.Join(s.attrs, ", ") + "]"
}

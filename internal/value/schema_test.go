package value

import "testing"

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("A", "B", "C")
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Attr(1) != "B" {
		t.Errorf("Attr(1) = %s", s.Attr(1))
	}
	if s.Index("C") != 2 || s.Index("Z") != -1 {
		t.Error("Index misbehaves")
	}
	if !s.Has("A") || s.Has("Z") {
		t.Error("Has misbehaves")
	}
	if s.String() != "[A, B, C]" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate attribute")
		}
	}()
	NewSchema("A", "A")
}

func TestSchemaSetOps(t *testing.T) {
	s := NewSchema("A", "B", "C")
	o := NewSchema("B", "D")
	if got := s.Intersect(o); !got.Equal(NewSchema("B")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := s.Union(o); !got.Equal(NewSchema("A", "B", "C", "D")) {
		t.Errorf("Union = %v", got)
	}
	if got := s.Minus(o); !got.Equal(NewSchema("A", "C")) {
		t.Errorf("Minus = %v", got)
	}
	if got := o.Minus(s); !got.Equal(NewSchema("D")) {
		t.Errorf("Minus reversed = %v", got)
	}
	empty := NewSchema()
	if !empty.Intersect(s).Equal(empty) || !s.Union(empty).Equal(s) {
		t.Error("empty-schema ops misbehave")
	}
}

func TestSchemaEqualOrderSensitive(t *testing.T) {
	if NewSchema("A", "B").Equal(NewSchema("B", "A")) {
		t.Error("Equal ignores order")
	}
	if !NewSchema("A", "B").Equal(NewSchema("A", "B")) {
		t.Error("identical schemas unequal")
	}
	if NewSchema("A").Equal(NewSchema("A", "B")) {
		t.Error("prefix schemas equal")
	}
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema("A", "B", "C", "D")
	idx, err := s.Project(NewSchema("C", "A"))
	if err != nil {
		t.Fatal(err)
	}
	tp := T(1, 2, 3, 4).Project(idx)
	if !tp.Equal(T(3, 1)) {
		t.Errorf("projected tuple = %v", tp)
	}
	if _, err := s.Project(NewSchema("Z")); err == nil {
		t.Error("Project of missing attribute succeeded")
	}
}

func TestSchemaMustProjectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSchema("A").MustProject(NewSchema("B"))
}

func TestSchemaIsSubsetOf(t *testing.T) {
	s := NewSchema("A", "B")
	if !s.IsSubsetOf(NewSchema("B", "C", "A")) {
		t.Error("subset not detected")
	}
	if s.IsSubsetOf(NewSchema("A")) {
		t.Error("superset claimed subset")
	}
	if !NewSchema().IsSubsetOf(s) {
		t.Error("empty schema must be subset of everything")
	}
}

func TestSchemaSorted(t *testing.T) {
	s := NewSchema("C", "A", "B")
	got := s.Sorted()
	if got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Errorf("Sorted = %v", got)
	}
	// The schema itself keeps declaration order.
	if s.Attr(0) != "C" {
		t.Error("Sorted mutated the schema")
	}
}

func TestSchemaAttrsNotAliased(t *testing.T) {
	src := []string{"A", "B"}
	s := NewSchema(src...)
	src[0] = "Z"
	if s.Attr(0) != "A" {
		t.Error("schema aliases constructor slice")
	}
}

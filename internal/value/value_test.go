package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("Int(42) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("Float(2.5) = %v", v)
	}
	if v := String("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("String(x) = %v", v)
	}
	if v := Null(); v.Kind() != KindNull || !v.IsNull() {
		t.Errorf("Null() = %v", v)
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value is not NULL")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Int on string", func() { String("x").Int() }},
		{"Float on int", func() { Int(1).Float() }},
		{"Str on float", func() { Float(1).Str() }},
		{"Int on null", func() { Null().Int() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			c.fn()
		})
	}
}

func TestAsFloatCoercion(t *testing.T) {
	if got := Int(3).AsFloat(); got != 3 {
		t.Errorf("Int(3).AsFloat() = %v", got)
	}
	if got := Float(1.5).AsFloat(); got != 1.5 {
		t.Errorf("Float(1.5).AsFloat() = %v", got)
	}
	if got := String("7").AsFloat(); got != 0 {
		t.Errorf("String coerces to %v, want 0", got)
	}
	if got := Null().AsFloat(); got != 0 {
		t.Errorf("Null coerces to %v, want 0", got)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // kinds differ
		{Float(2.5), Float(2.5), true},
		{Float(math.NaN()), Float(math.NaN()), true}, // NaN equals itself here
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Null(), Null(), true},
		{Null(), Int(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareOrdering(t *testing.T) {
	// NULL < numerics < strings; numerics cross-kind by value.
	ordered := []Value{
		Null(),
		Int(-5), Float(-1.5), Int(0), Float(0.5), Int(1), Float(1.5), Int(2),
		String(""), String("a"), String("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueCompareNumericTie(t *testing.T) {
	// Int(1) vs Float(1): equal as numbers, must still order
	// deterministically and antisymmetrically.
	a, b := Int(1), Float(1)
	if a.Compare(b) == 0 || a.Compare(b) != -b.Compare(a) {
		t.Errorf("cross-kind tie not antisymmetric: %d vs %d", a.Compare(b), b.Compare(a))
	}
	if Int(1).Compare(Int(1)) != 0 {
		t.Error("Int(1) != Int(1)")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{String("hi"), "hi"},
		{Null(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "INT" || KindFloat.String() != "DOUBLE" ||
		KindString.String() != "VARCHAR" || KindNull.String() != "NULL" {
		t.Error("kind names drifted")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

// quickValue builds a Value from quick-generated raw parts.
func quickValue(kind uint8, i int64, f float64, s string) Value {
	switch kind % 4 {
	case 0:
		return Null()
	case 1:
		return Int(i)
	case 2:
		if math.IsNaN(f) {
			f = 0
		}
		return Float(f)
	default:
		return String(s)
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry.
	if err := quick.Check(func(k1 uint8, i1 int64, f1 float64, s1 string, k2 uint8, i2 int64, f2 float64, s2 string) bool {
		a := quickValue(k1, i1, f1, s1)
		b := quickValue(k2, i2, f2, s2)
		return a.Compare(b) == -b.Compare(a)
	}, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	// Reflexivity: Compare(a, a) == 0, and Equal is consistent with it.
	if err := quick.Check(func(k uint8, i int64, f float64, s string) bool {
		a := quickValue(k, i, f, s)
		return a.Compare(a) == 0 && a.Equal(a)
	}, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
}

package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Tuple is an ordered sequence of values. Tuples are positional; the
// attribute names live in the companion Schema.
type Tuple []Value

// T is a convenience constructor for tuples from a mixed argument list.
// Supported argument types: int, int64, float64, string, Value, nil.
func T(vs ...any) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case nil:
			t[i] = Null()
		case int:
			t[i] = Int(int64(x))
		case int64:
			t[i] = Int(x)
		case float64:
			t[i] = Float(x)
		case string:
			t[i] = String(x)
		case Value:
			t[i] = x
		default:
			panic(fmt.Sprintf("value.T: unsupported argument type %T", v))
		}
	}
	return t
}

// Equal reports whether two tuples have the same length and pairwise
// equal values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare; shorter
// prefixes order first.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Concat returns a fresh tuple holding t followed by o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	return append(out, o...)
}

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Encoding tags. The tuple encoding is self-describing: each value is a
// one-byte tag followed by a fixed or length-prefixed body, so encoded
// tuples concatenate and decode without a schema. Concatenation of
// encodings equals encoding of concatenation, which the relational ring
// relies on for its product.
const (
	tagNull   byte = 0x00
	tagInt    byte = 0x01
	tagFloat  byte = 0x02
	tagString byte = 0x03
)

// EncodedLen returns the number of bytes Encode will produce.
func (t Tuple) EncodedLen() int {
	n := 0
	for _, v := range t {
		switch v.kind {
		case KindNull:
			n++
		case KindInt, KindFloat:
			n += 9
		case KindString:
			n += 1 + binary.MaxVarintLen32 + len(v.s) // upper bound
		}
	}
	return n
}

// appendValue appends the self-describing encoding of one value to buf.
func appendValue(buf []byte, v Value) []byte {
	var tmp [8]byte
	switch v.kind {
	case KindNull:
		buf = append(buf, tagNull)
	case KindInt:
		buf = append(buf, tagInt)
		binary.BigEndian.PutUint64(tmp[:], uint64(v.i))
		buf = append(buf, tmp[:]...)
	case KindFloat:
		buf = append(buf, tagFloat)
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v.f))
		buf = append(buf, tmp[:]...)
	case KindString:
		buf = append(buf, tagString)
		var lv [binary.MaxVarintLen32]byte
		n := binary.PutUvarint(lv[:], uint64(len(v.s)))
		buf = append(buf, lv[:n]...)
		buf = append(buf, v.s...)
	}
	return buf
}

// AppendEncode appends the encoding of the single value v to buf — the
// per-value form of Tuple.AppendEncode, for callers that assemble a key
// from values scattered across several tuples (e.g. a join output).
func (v Value) AppendEncode(buf []byte) []byte {
	return appendValue(buf, v)
}

// AppendEncode appends the tuple's encoding to buf and returns the
// extended buffer. It is the allocation-free core of Encode: hot paths
// keep one scratch buffer per loop, encode with AppendEncode(buf[:0]),
// look maps up with string(buf) (which Go compiles without copying),
// and materialize a real key string only when inserting.
func (t Tuple) AppendEncode(buf []byte) []byte {
	for _, v := range t {
		buf = appendValue(buf, v)
	}
	return buf
}

// Encode serializes the tuple into a compact self-describing key string
// suitable for Go map indexing.
func (t Tuple) Encode() string {
	return string(t.AppendEncode(make([]byte, 0, t.EncodedLen())))
}

// DecodeTuple parses a key string produced by Encode (or by concatenating
// such encodings) back into a tuple. It returns an error on malformed
// input.
func DecodeTuple(key string) (Tuple, error) {
	var t Tuple
	b := []byte(key)
	for len(b) > 0 {
		tag := b[0]
		b = b[1:]
		switch tag {
		case tagNull:
			t = append(t, Null())
		case tagInt:
			if len(b) < 8 {
				return nil, fmt.Errorf("value: truncated INT in key")
			}
			t = append(t, Int(int64(binary.BigEndian.Uint64(b[:8]))))
			b = b[8:]
		case tagFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("value: truncated DOUBLE in key")
			}
			t = append(t, Float(math.Float64frombits(binary.BigEndian.Uint64(b[:8]))))
			b = b[8:]
		case tagString:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return nil, fmt.Errorf("value: truncated VARCHAR in key")
			}
			t = append(t, String(string(b[n:n+int(l)])))
			b = b[n+int(l):]
		default:
			return nil, fmt.Errorf("value: unknown tag 0x%02x in key", tag)
		}
	}
	return t, nil
}

// MustDecodeTuple is DecodeTuple that panics on malformed input; for use
// on keys that are known to be valid encodings (e.g. produced internally).
func MustDecodeTuple(key string) Tuple {
	t, err := DecodeTuple(key)
	if err != nil {
		panic(err)
	}
	return t
}

// AppendEncodeProject appends the encoding of t's projection onto the
// given positions to buf without materializing the projected tuple —
// the scratch-buffer form of EncodeProject (see AppendEncode for the
// zero-allocation lookup idiom).
func (t Tuple) AppendEncodeProject(buf []byte, idx []int) []byte {
	for _, j := range idx {
		buf = appendValue(buf, t[j])
	}
	return buf
}

// EncodeProject encodes the projection of t onto the given positions
// without materializing the projected tuple — the hot path of group-by
// aggregation. It is equivalent to t.Project(idx).Encode().
func (t Tuple) EncodeProject(idx []int) string {
	return string(t.AppendEncodeProject(make([]byte, 0, 16*len(idx)), idx))
}

// Package value provides the typed attribute values, tuples, and schemas
// shared by every layer of the F-IVM reproduction: relations map encoded
// tuples to ring payloads, lift functions map values into ring elements,
// and the relational ring uses encoded tuples as its keys.
//
// Values are small immutable tagged unions over int64, float64, string,
// and NULL. Tuples encode to compact self-describing strings so they can
// index Go maps directly and be decoded back without a schema.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable tagged union holding one attribute value.
// The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload; it panics if v is not an INT.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload; it panics if v is not a DOUBLE.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic("value: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the string payload; it panics if v is not a VARCHAR.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// AsFloat coerces a numeric value to float64. Strings and NULL coerce to
// 0 so that lift functions over unexpected kinds stay total; callers that
// need strictness should check Kind first.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		return 0
	}
}

// Equal reports deep equality of two values. Unlike ==, it treats NaN
// floats as equal to themselves so relations can store them.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString:
		return v.s == o.s
	}
	return false
}

// Compare orders two values: NULL < INT/DOUBLE (numeric order, cross-kind
// by numeric value) < VARCHAR. It returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		if vr < or {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	default: // numeric vs numeric
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		// Equal as floats: fall back to kind then exact int compare so
		// Int(1) and Float(1) order deterministically.
		if v.kind != o.kind {
			if v.kind == KindInt {
				return -1
			}
			return 1
		}
		if v.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
		}
		return 0
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

package value

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTConstructor(t *testing.T) {
	tp := T(1, int64(2), 3.5, "x", Null(), Int(7))
	want := Tuple{Int(1), Int(2), Float(3.5), String("x"), Null(), Int(7)}
	if !tp.Equal(want) {
		t.Errorf("T(...) = %v, want %v", tp, want)
	}
}

func TestTConstructorPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unsupported type")
		}
	}()
	T(struct{}{})
}

func TestTupleEqualAndCompare(t *testing.T) {
	a := T(1, "x")
	b := T(1, "x")
	c := T(1, "y")
	d := T(1)
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal misbehaves")
	}
	if a.Compare(b) != 0 {
		t.Error("equal tuples compare nonzero")
	}
	if a.Compare(c) >= 0 || c.Compare(a) <= 0 {
		t.Error("lexicographic order broken")
	}
	if d.Compare(a) >= 0 {
		t.Error("prefix must order first")
	}
}

func TestTupleConcatAndProject(t *testing.T) {
	a := T(1, 2)
	b := T("x")
	c := a.Concat(b)
	if !c.Equal(T(1, 2, "x")) {
		t.Errorf("Concat = %v", c)
	}
	// Concat must not alias the receiver's backing array.
	a2 := append(a, Int(99))
	_ = a2
	if !c.Equal(T(1, 2, "x")) {
		t.Errorf("Concat aliases input: %v", c)
	}
	p := c.Project([]int{2, 0})
	if !p.Equal(T("x", 1)) {
		t.Errorf("Project = %v", p)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Tuple{
		{},
		T(0),
		T(-1, 1),
		T(math.MaxInt64, math.MinInt64),
		T(3.14159, -0.0, math.Inf(1)),
		T(""),
		T("hello", "мир", "\x00\x01"),
		T(Null(), 1, "x", 2.5, Null()),
		T(strings.Repeat("long", 100)),
	}
	for _, tp := range cases {
		enc := tp.Encode()
		got, err := DecodeTuple(enc)
		if err != nil {
			t.Errorf("decode(%v): %v", tp, err)
			continue
		}
		if len(tp) == 0 && len(got) == 0 {
			continue
		}
		if !got.Equal(tp) {
			t.Errorf("roundtrip %v -> %v", tp, got)
		}
	}
}

func TestEncodeInjective(t *testing.T) {
	// Distinct tuples must encode distinctly — the relation store
	// depends on it.
	tuples := []Tuple{
		T(1), T(2), T("1"), T(1.0), T(1, 2), T(12), T("a", "b"), T("ab"),
		T("a", ""), T("", "a"), T(Null()), {},
	}
	seen := map[string]Tuple{}
	for _, tp := range tuples {
		enc := tp.Encode()
		if prev, dup := seen[enc]; dup {
			t.Errorf("collision: %v and %v both encode to %q", prev, tp, enc)
		}
		seen[enc] = tp
	}
}

func TestEncodeConcatEqualsConcatEncode(t *testing.T) {
	// The relational ring's product depends on this homomorphism.
	if err := quick.Check(func(a, b int64, s1, s2 string) bool {
		t1 := T(a, s1)
		t2 := T(s2, b)
		return t1.Encode()+t2.Encode() == t1.Concat(t2).Encode()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []string{
		"\x01\x00",     // truncated int
		"\x02\x00\x00", // truncated float
		"\x03\x05ab",   // string shorter than its length
		"\x07",         // unknown tag
		"\x03\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01", // absurd varint length
	}
	for _, c := range cases {
		if _, err := DecodeTuple(c); err == nil {
			t.Errorf("DecodeTuple(%q) succeeded on malformed input", c)
		}
	}
}

func TestMustDecodeTuplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustDecodeTuple("\x01")
}

func TestTupleRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(i int64, f float64, s string, hasNull bool) bool {
		if math.IsNaN(f) {
			f = 0
		}
		tp := T(i, f, s)
		if hasNull {
			tp = append(tp, Null())
		}
		dec, err := DecodeTuple(tp.Encode())
		return err == nil && dec.Equal(tp)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	if got := T(1, "x", Null()).String(); got != "(1, x, NULL)" {
		t.Errorf("String() = %q", got)
	}
	if got := (Tuple{}).String(); got != "()" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestEncodedLenIsUpperBound(t *testing.T) {
	if err := quick.Check(func(i int64, s string) bool {
		tp := T(i, s, 2.5, Null())
		return len(tp.Encode()) <= tp.EncodedLen()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeProjectEquivalence(t *testing.T) {
	if err := quick.Check(func(i int64, f float64, s string, sel uint8) bool {
		if math.IsNaN(f) {
			f = 0
		}
		tp := T(i, f, s, Null())
		// Derive an arbitrary index selection from sel (possibly with
		// repeats and any order).
		idx := []int{int(sel % 4), int(sel / 4 % 4), int(sel / 16 % 4)}
		return tp.EncodeProject(idx) == tp.Project(idx).Encode()
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Empty projection encodes to the empty key.
	if got := T(1, 2).EncodeProject(nil); got != "" {
		t.Errorf("empty projection = %q", got)
	}
}

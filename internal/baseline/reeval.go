package baseline

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/vo"
)

// Reeval recomputes the COVAR compound aggregate from scratch after
// every update batch: it keeps the base data as multisets and, on each
// Apply, rebuilds a fresh factorized evaluation. Even with factorized
// (view-tree) evaluation per batch, paying the full computation each
// time loses to incremental maintenance once batches are small relative
// to the database — the shape E2 demonstrates.
type Reeval struct {
	rels     []RelSpec
	aggAttrs []string
	ring     ring.CovarRing
	lifts    map[string]ring.Lift[*ring.Covar]

	// data holds the current multiset per relation: encoded tuple ->
	// (tuple, multiplicity).
	data map[string]map[string]weighted

	payload *ring.Covar
	dirty   bool
}

type weighted struct {
	tuple value.Tuple
	mult  int
}

// NewReeval builds the recomputation baseline over the given relations
// and continuous aggregate attributes.
func NewReeval(rels []RelSpec, aggAttrs []string) (*Reeval, error) {
	r := &Reeval{
		rels:     rels,
		aggAttrs: aggAttrs,
		ring:     ring.NewCovarRing(len(aggAttrs)),
		lifts:    map[string]ring.Lift[*ring.Covar]{},
		data:     map[string]map[string]weighted{},
	}
	full := value.NewSchema()
	for _, rel := range rels {
		if _, dup := r.data[rel.Name]; dup {
			return nil, fmt.Errorf("baseline: duplicate relation %s", rel.Name)
		}
		r.data[rel.Name] = map[string]weighted{}
		full = full.Union(rel.Schema)
	}
	for i, a := range aggAttrs {
		if !full.Has(a) {
			return nil, fmt.Errorf("baseline: aggregate attribute %s not in join schema", a)
		}
		r.lifts[a] = r.ring.Lift(i)
	}
	return r, nil
}

// Init loads the initial database and computes the first payload.
func (r *Reeval) Init(data map[string][]value.Tuple) error {
	for name := range data {
		if _, ok := r.data[name]; !ok {
			return fmt.Errorf("baseline: unknown relation %s", name)
		}
	}
	for _, rel := range r.rels {
		m := map[string]weighted{}
		for _, t := range data[rel.Name] {
			k := t.Encode()
			w := m[k]
			w.tuple = t
			w.mult++
			m[k] = w
		}
		r.data[rel.Name] = m
	}
	r.dirty = true
	return r.recompute()
}

// Apply merges the updates into the base multisets and recomputes the
// payload from scratch.
func (r *Reeval) Apply(ups []view.Update) error {
	for _, u := range ups {
		m, ok := r.data[u.Rel]
		if !ok {
			return fmt.Errorf("baseline: unknown relation %s", u.Rel)
		}
		k := u.Tuple.Encode()
		w := m[k]
		w.tuple = u.Tuple
		w.mult += u.Mult
		if w.mult == 0 {
			delete(m, k)
		} else {
			m[k] = w
		}
	}
	r.dirty = true
	return r.recompute()
}

// recompute rebuilds a fresh view tree over the current data and
// evaluates it bottom-up.
func (r *Reeval) recompute() error {
	if !r.dirty {
		return nil
	}
	vrels := make([]vo.Rel, len(r.rels))
	for i, rel := range r.rels {
		vrels[i] = vo.Rel{Name: rel.Name, Schema: rel.Schema}
	}
	tree, err := view.New(view.Spec[*ring.Covar]{
		Ring:      r.ring,
		Relations: vrels,
		Lifts:     r.lifts,
	})
	if err != nil {
		return err
	}
	full := map[string][]value.Tuple{}
	for name, m := range r.data {
		var ts []value.Tuple
		for _, w := range m {
			if w.mult < 0 {
				return fmt.Errorf("baseline: relation %s holds tuple %v with negative multiplicity %d", name, w.tuple, w.mult)
			}
			for i := 0; i < w.mult; i++ {
				ts = append(ts, w.tuple)
			}
		}
		full[name] = ts
	}
	if err := tree.Init(full); err != nil {
		return err
	}
	r.payload = tree.ResultPayload()
	r.dirty = false
	return nil
}

// Payload returns the last recomputed compound aggregate.
func (r *Reeval) Payload() *ring.Covar { return r.payload }

package baseline_test

// Equivalence tests: F-IVM's factorized ring maintenance, the flat
// first-order IVM baseline, and full recomputation must agree on every
// COVAR statistic at every batch boundary. This is the strongest
// correctness check in the repository: three independent evaluation
// strategies over the same update stream.

import (
	"math"
	"testing"

	"repro/fivm"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/value"
	"repro/internal/view"
)

// smallRetailer returns a small Retailer instance and the continuous
// attributes used as the COVAR aggregate set.
func smallRetailer() (*dataset.Database, []baseline.RelSpec, []fivm.RelationSpec, []string) {
	cfg := dataset.RetailerConfig{
		Locations: 10, Dates: 20, Items: 40, InventoryRows: 500, Zips: 8, Seed: 42,
	}
	db := dataset.Retailer(cfg)
	var bspecs []baseline.RelSpec
	var fspecs []fivm.RelationSpec
	for _, r := range db.Relations {
		bspecs = append(bspecs, baseline.RelSpec{Name: r.Name, Schema: r.Schema()})
		fspecs = append(fspecs, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
	}
	aggAttrs := []string{"inventoryunits", "prize", "avghhi", "maxtemp", "medianage"}
	return db, bspecs, fspecs, aggAttrs
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-6*scale
}

func TestCovarEquivalenceAcrossStrategies(t *testing.T) {
	db, bspecs, fspecs, aggAttrs := smallRetailer()

	eng, err := fivm.NewCovarEngine(fspecs, aggAttrs, nil)
	if err != nil {
		t.Fatalf("NewCovarEngine: %v", err)
	}
	flat, err := baseline.NewFlatIVM(bspecs, aggAttrs)
	if err != nil {
		t.Fatalf("NewFlatIVM: %v", err)
	}
	re, err := baseline.NewReeval(bspecs, aggAttrs)
	if err != nil {
		t.Fatalf("NewReeval: %v", err)
	}

	data := db.TupleMap()
	if err := eng.Init(data); err != nil {
		t.Fatalf("fivm Init: %v", err)
	}
	if err := flat.Init(data); err != nil {
		t.Fatalf("flat Init: %v", err)
	}
	if err := re.Init(data); err != nil {
		t.Fatalf("reeval Init: %v", err)
	}

	check := func(when string) {
		t.Helper()
		p := eng.Payload()
		q := re.Payload()
		if p == nil || q == nil {
			if flat.Count() != 0 {
				t.Fatalf("%s: fivm/reeval empty but flat count=%v", when, flat.Count())
			}
			return
		}
		if !approxEq(p.Count(), flat.Count()) || !approxEq(p.Count(), q.Count()) {
			t.Errorf("%s: count fivm=%v flat=%v reeval=%v", when, p.Count(), flat.Count(), q.Count())
		}
		for i := range aggAttrs {
			if !approxEq(p.Sum(i), flat.Sum(i)) || !approxEq(p.Sum(i), q.Sum(i)) {
				t.Errorf("%s: SUM(%s) fivm=%v flat=%v reeval=%v", when, aggAttrs[i], p.Sum(i), flat.Sum(i), q.Sum(i))
			}
			for j := i; j < len(aggAttrs); j++ {
				if !approxEq(p.Prod(i, j), flat.Prod(i, j)) || !approxEq(p.Prod(i, j), q.Prod(i, j)) {
					t.Errorf("%s: SUM(%s*%s) fivm=%v flat=%v reeval=%v",
						when, aggAttrs[i], aggAttrs[j], p.Prod(i, j), flat.Prod(i, j), q.Prod(i, j))
				}
			}
		}
	}
	check("after init")
	if eng.Payload() == nil || eng.Payload().Count() == 0 {
		t.Fatal("empty join after init; dataset generator broke FK consistency")
	}

	stream, err := dataset.NewStream(db, dataset.StreamConfig{
		Relation: "Inventory", Total: 600, DeleteRatio: 0.3, Seed: 99,
	})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	for i, bulk := range stream.Bulks(100) {
		if err := eng.Apply(bulk); err != nil {
			t.Fatalf("fivm Apply bulk %d: %v", i, err)
		}
		if err := flat.Apply(bulk); err != nil {
			t.Fatalf("flat Apply bulk %d: %v", i, err)
		}
		if err := re.Apply(bulk); err != nil {
			t.Fatalf("reeval Apply bulk %d: %v", i, err)
		}
		check("after bulk")
	}
}

// TestEquivalenceMultiRelationUpdates drives updates through dimension
// tables too, exercising every anchor path of the 5-way view tree.
func TestEquivalenceMultiRelationUpdates(t *testing.T) {
	db, bspecs, fspecs, aggAttrs := smallRetailer()

	eng, err := fivm.NewCovarEngine(fspecs, aggAttrs, nil)
	if err != nil {
		t.Fatalf("NewCovarEngine: %v", err)
	}
	re, err := baseline.NewReeval(bspecs, aggAttrs)
	if err != nil {
		t.Fatalf("NewReeval: %v", err)
	}
	data := db.TupleMap()
	if err := eng.Init(data); err != nil {
		t.Fatalf("fivm Init: %v", err)
	}
	if err := re.Init(data); err != nil {
		t.Fatalf("reeval Init: %v", err)
	}

	ups, err := dataset.RoundRobinStream(db, []string{"Inventory", "Item", "Weather"}, 300, 0.25, 7)
	if err != nil {
		t.Fatalf("RoundRobinStream: %v", err)
	}
	for i := 0; i < len(ups); i += 50 {
		j := i + 50
		if j > len(ups) {
			j = len(ups)
		}
		bulk := ups[i:j]
		if err := eng.Apply(bulk); err != nil {
			t.Fatalf("fivm Apply: %v", err)
		}
		if err := re.Apply(bulk); err != nil {
			t.Fatalf("reeval Apply: %v", err)
		}
		p, q := eng.Payload(), re.Payload()
		pc, qc := p.Count(), q.Count()
		if !approxEq(pc, qc) {
			t.Fatalf("bulk ending %d: count fivm=%v reeval=%v", j, pc, qc)
		}
		for a := range aggAttrs {
			if !approxEq(p.Sum(a), q.Sum(a)) {
				t.Fatalf("bulk ending %d: SUM(%s) fivm=%v reeval=%v", j, aggAttrs[a], p.Sum(a), q.Sum(a))
			}
			for b := a; b < len(aggAttrs); b++ {
				if !approxEq(p.Prod(a, b), q.Prod(a, b)) {
					t.Fatalf("bulk ending %d: SUM(%s*%s) fivm=%v reeval=%v", j, aggAttrs[a], aggAttrs[b], p.Prod(a, b), q.Prod(a, b))
				}
			}
		}
	}
}

// TestFlatIVMJoinMaterialization sanity-checks that the baseline indeed
// materializes the flat join (the cost F-IVM avoids) and that its size
// tracks inserts and deletes.
func TestFlatIVMJoinMaterialization(t *testing.T) {
	_, bspecs, _, aggAttrs := smallRetailer()
	db, _, _, _ := smallRetailer()
	flat, err := baseline.NewFlatIVM(bspecs, aggAttrs)
	if err != nil {
		t.Fatalf("NewFlatIVM: %v", err)
	}
	if err := flat.Init(db.TupleMap()); err != nil {
		t.Fatalf("Init: %v", err)
	}
	size0 := flat.JoinSize()
	if size0 == 0 {
		t.Fatal("flat join is empty after init")
	}
	inv, _ := db.Relation("Inventory")
	tup := inv.Tuples[0]
	// A fresh fact row (new tuple identity) joins with the dimensions:
	// bump the measure to create a distinct tuple.
	fresh := make(value.Tuple, len(tup))
	copy(fresh, tup)
	fresh[3] = value.Int(999_999)
	if err := flat.Apply([]view.Update{{Rel: "Inventory", Tuple: fresh, Mult: 1}}); err != nil {
		t.Fatalf("Apply insert: %v", err)
	}
	if flat.JoinSize() <= size0 {
		t.Errorf("join size %d did not grow after insert (was %d)", flat.JoinSize(), size0)
	}
	if err := flat.Apply([]view.Update{{Rel: "Inventory", Tuple: fresh, Mult: -1}}); err != nil {
		t.Fatalf("Apply delete: %v", err)
	}
	if flat.JoinSize() != size0 {
		t.Errorf("join size %d after delete, want %d", flat.JoinSize(), size0)
	}
}

package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/value"
	"repro/internal/view"
)

func twoRelSpecs() []baseline.RelSpec {
	return []baseline.RelSpec{
		{Name: "R", Schema: value.NewSchema("A", "B")},
		{Name: "S", Schema: value.NewSchema("A", "C")},
	}
}

func TestFlatIVMConstructionErrors(t *testing.T) {
	specs := twoRelSpecs()
	if _, err := baseline.NewFlatIVM(append(specs, specs[0]), []string{"B"}); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := baseline.NewFlatIVM(specs, []string{"Z"}); err == nil {
		t.Error("unknown aggregate attribute accepted")
	}
}

func TestFlatIVMSmallJoin(t *testing.T) {
	flat, err := baseline.NewFlatIVM(twoRelSpecs(), []string{"B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	err = flat.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a2", 2)},
		"S": {value.T("a1", 10), value.T("a1", 20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Join: (a1,1,10), (a1,1,20).
	if flat.Count() != 2 {
		t.Errorf("count = %v", flat.Count())
	}
	if flat.Sum(0) != 2 || flat.Sum(1) != 30 {
		t.Errorf("sums = %v, %v", flat.Sum(0), flat.Sum(1))
	}
	if flat.Prod(0, 1) != 30 || flat.Prod(1, 0) != 30 {
		t.Errorf("SUM(B*C) = %v / %v", flat.Prod(0, 1), flat.Prod(1, 0))
	}
	if flat.JoinSize() != 2 {
		t.Errorf("join size = %d", flat.JoinSize())
	}
	if got := flat.AggAttrs(); len(got) != 2 || got[0] != "B" {
		t.Errorf("AggAttrs = %v", got)
	}

	// Unknown relation in an update batch.
	if err := flat.Apply([]view.Update{{Rel: "Z", Tuple: value.T(1, 1), Mult: 1}}); err == nil {
		t.Error("unknown relation accepted in Apply")
	}
	// A batch that nets to zero is a no-op.
	err = flat.Apply([]view.Update{
		{Rel: "R", Tuple: value.T("a9", 9), Mult: 1},
		{Rel: "R", Tuple: value.T("a9", 9), Mult: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Count() != 2 {
		t.Errorf("count after no-op batch = %v", flat.Count())
	}
}

func TestReevalConstructionErrors(t *testing.T) {
	specs := twoRelSpecs()
	if _, err := baseline.NewReeval(append(specs, specs[0]), []string{"B"}); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := baseline.NewReeval(specs, []string{"Z"}); err == nil {
		t.Error("unknown aggregate attribute accepted")
	}
}

func TestReevalSmallJoinAndErrors(t *testing.T) {
	re, err := baseline.NewReeval(twoRelSpecs(), []string{"B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Init(map[string][]value.Tuple{"Z": nil}); err == nil {
		t.Error("unknown relation in Init accepted")
	}
	err = re.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1)},
		"S": {value.T("a1", 10), value.T("a1", 20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := re.Payload()
	if p.Count() != 2 || p.Sum(1) != 30 {
		t.Errorf("payload = %v", p)
	}
	if err := re.Apply([]view.Update{{Rel: "Z", Tuple: value.T(1, 1), Mult: 1}}); err == nil {
		t.Error("unknown relation in Apply accepted")
	}
	// Deleting a tuple that was never inserted leaves a negative
	// multiplicity, which recomputation must reject loudly rather than
	// silently mis-counting.
	if err := re.Apply([]view.Update{{Rel: "R", Tuple: value.T("ghost", 1), Mult: -1}}); err == nil {
		t.Error("negative multiplicity accepted")
	}
}

func TestReevalDuplicateTuples(t *testing.T) {
	re, err := baseline.NewReeval(twoRelSpecs(), []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	err = re.Init(map[string][]value.Tuple{
		"R": {value.T("a1", 1), value.T("a1", 1)}, // multiplicity 2
		"S": {value.T("a1", 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Payload().Count(); got != 2 {
		t.Errorf("count with duplicate base tuple = %v, want 2", got)
	}
}

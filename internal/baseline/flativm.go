// Package baseline implements the comparison systems of the paper's
// evaluation claims:
//
//   - FlatIVM: classical first-order incremental view maintenance of the
//     *flat* join result plus independently maintained scalar aggregates
//     (no factorization, no ring sharing) — the DBToaster-style
//     comparator. It pays to materialize the join, which can be much
//     larger than the factorized views and has many repeating values.
//   - Reeval: full re-evaluation of the aggregates from scratch after
//     every batch.
//
// Both produce the same COVAR statistics as the F-IVM engine, which the
// equivalence tests exploit.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/ring"
	"repro/internal/value"
	"repro/internal/view"
)

// RelSpec names one input relation and its schema.
type RelSpec struct {
	Name   string
	Schema value.Schema
}

// FlatIVM maintains the flat natural join of the input relations under
// updates, and on top of it the unshared scalar aggregates SUM(1),
// SUM(X_i), and SUM(X_i*X_j) over the continuous attributes aggAttrs.
// Each aggregate is updated independently per delta tuple — the
// no-sharing strategy F-IVM's compound ring replaces.
type FlatIVM struct {
	rels     []RelSpec
	data     map[string]*relation.Map[int64]
	join     *relation.Map[int64]
	joinIdx  []int // positions of aggAttrs in the join schema
	aggAttrs []string

	count float64
	sums  []float64
	prods []float64 // packed upper triangle
}

// NewFlatIVM builds the baseline over the given relations and aggregate
// attributes.
func NewFlatIVM(rels []RelSpec, aggAttrs []string) (*FlatIVM, error) {
	f := &FlatIVM{
		rels:     rels,
		data:     make(map[string]*relation.Map[int64], len(rels)),
		aggAttrs: aggAttrs,
		sums:     make([]float64, len(aggAttrs)),
		prods:    make([]float64, len(aggAttrs)*(len(aggAttrs)+1)/2),
	}
	full := value.NewSchema()
	for _, r := range rels {
		if _, dup := f.data[r.Name]; dup {
			return nil, fmt.Errorf("baseline: duplicate relation %s", r.Name)
		}
		f.data[r.Name] = relation.New[int64](r.Schema)
		full = full.Union(r.Schema)
	}
	f.join = relation.New[int64](full)
	f.joinIdx = make([]int, len(aggAttrs))
	for i, a := range aggAttrs {
		j := full.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("baseline: aggregate attribute %s not in join schema", a)
		}
		f.joinIdx[i] = j
	}
	return f, nil
}

// Init bulk-loads the initial database: sources are set, the flat join
// is computed once, and the aggregates are accumulated over it.
func (f *FlatIVM) Init(data map[string][]value.Tuple) error {
	var z ring.Ints
	for _, r := range f.rels {
		f.data[r.Name] = relation.FromTuples[int64](z, r.Schema, data[r.Name])
	}
	canonical := f.join.Schema()
	j := f.computeJoin(nil, nil)
	if !j.Schema().Equal(canonical) {
		// The greedy join order permutes attributes; reproject into the
		// canonical schema the aggregate indexes address.
		j = relation.Aggregate[int64](z, j, canonical, "", nil)
	}
	f.join = j
	f.count = 0
	for i := range f.sums {
		f.sums[i] = 0
	}
	for i := range f.prods {
		f.prods[i] = 0
	}
	f.join.Each(func(t value.Tuple, mult int64) {
		f.accumulate(t, mult)
	})
	return nil
}

// computeJoin joins all base relations, substituting repl for relation
// exclude when non-empty; the join order greedily follows shared
// attributes to avoid Cartesian blowups.
func (f *FlatIVM) computeJoin(excludeData, repl *relation.Map[int64]) *relation.Map[int64] {
	var z ring.Ints
	operands := make([]*relation.Map[int64], 0, len(f.rels))
	for _, r := range f.rels {
		d := f.data[r.Name]
		if d == excludeData && repl != nil {
			d = repl
		}
		operands = append(operands, d)
	}
	// Start from the replacement (delta) if present, else the first.
	start := 0
	if repl != nil {
		for i, o := range operands {
			if o == repl {
				start = i
				break
			}
		}
	}
	cur := operands[start]
	remaining := append(append([]*relation.Map[int64]{}, operands[:start]...), operands[start+1:]...)
	for len(remaining) > 0 {
		// Pick the operand sharing the most attributes with cur.
		best, bestShared := 0, -1
		for i, o := range remaining {
			s := cur.Schema().Intersect(o.Schema()).Len()
			if s > bestShared {
				best, bestShared = i, s
			}
		}
		cur = relation.Join[int64](z, cur, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return cur
}

// accumulate folds one flat join tuple (with multiplicity) into every
// scalar aggregate independently: count, m sums, and m(m+1)/2 products,
// each recomputing the attribute values — the unshared work F-IVM's
// compound payload amortizes.
func (f *FlatIVM) accumulate(t value.Tuple, mult int64) {
	w := float64(mult)
	f.count += w
	m := len(f.aggAttrs)
	for i := 0; i < m; i++ {
		f.sums[i] += w * t[f.joinIdx[i]].AsFloat()
	}
	k := 0
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			f.prods[k] += w * t[f.joinIdx[i]].AsFloat() * t[f.joinIdx[j]].AsFloat()
			k++
		}
	}
}

// Apply maintains the join and aggregates under a batch of updates,
// one delta per touched relation.
func (f *FlatIVM) Apply(ups []view.Update) error {
	var z ring.Ints
	byRel := map[string]*relation.Map[int64]{}
	var order []string
	for _, u := range ups {
		d, ok := byRel[u.Rel]
		if !ok {
			src, ok := f.data[u.Rel]
			if !ok {
				return fmt.Errorf("baseline: unknown relation %s", u.Rel)
			}
			d = relation.New[int64](src.Schema())
			byRel[u.Rel] = d
			order = append(order, u.Rel)
		}
		d.Merge(z, u.Tuple, int64(u.Mult))
	}
	for _, name := range order {
		delta := byRel[name]
		if delta.Len() == 0 {
			continue
		}
		// δJ = δR ⋈ all other base relations (first-order delta).
		dj := f.computeJoin(f.data[name], delta)
		// Reproject into the canonical join schema before merging.
		if !dj.Schema().Equal(f.join.Schema()) {
			dj = relation.Aggregate[int64](z, dj, f.join.Schema(), "", nil)
		}
		f.join.MergeAll(z, dj)
		dj.Each(func(t value.Tuple, mult int64) {
			f.accumulate(t, mult)
		})
		f.data[name].MergeAll(z, delta)
	}
	return nil
}

// Count returns the maintained SUM(1).
func (f *FlatIVM) Count() float64 { return f.count }

// Sum returns the maintained SUM(attr_i).
func (f *FlatIVM) Sum(i int) float64 { return f.sums[i] }

// Prod returns the maintained SUM(attr_i * attr_j).
func (f *FlatIVM) Prod(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	m := len(f.aggAttrs)
	return f.prods[i*m-i*(i-1)/2+(j-i)]
}

// JoinSize returns the number of distinct tuples in the maintained flat
// join — the materialization F-IVM avoids.
func (f *FlatIVM) JoinSize() int { return f.join.Len() }

// AggAttrs returns the aggregate attribute names.
func (f *FlatIVM) AggAttrs() []string {
	out := make([]string, len(f.aggAttrs))
	copy(out, f.aggAttrs)
	sort.Strings(out)
	return out
}

package faultnet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chaosClient is an HTTP client shaped like the chaos harness uses:
// keep-alives off so one request is one connection (one scheduled
// decision), and a short timeout so blackholes resolve quickly.
func chaosClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func startBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write([]byte("echo:" + string(body) + strings.Repeat("x", 512)))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestProxyFaultKinds(t *testing.T) {
	backend := startBackend(t)
	target := strings.TrimPrefix(backend.URL, "http://")

	cases := []struct {
		name    string
		d       Decision
		wantErr bool
	}{
		{"clean", Decision{Kind: None}, false},
		{"latency", Decision{Kind: AddLatency, Latency: 10 * time.Millisecond}, false},
		{"reset", Decision{Kind: Reset, After: 8}, true},
		{"blackhole", Decision{Kind: Blackhole}, true},
		{"truncate", Decision{Kind: Truncate, After: 8}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Start(target, Script(tc.d))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			cli := chaosClient(500 * time.Millisecond)
			resp, err := cli.Post(p.URL(), "text/plain", strings.NewReader(strings.Repeat("u", 256)))
			if err == nil {
				_, err = io.ReadAll(resp.Body)
				resp.Body.Close()
			}
			if tc.wantErr && err == nil {
				t.Fatalf("%s: request succeeded, want a transport failure", tc.name)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			st := p.Stats()
			if st.Conns != 1 || st.Faults[tc.d.Kind.String()] != 1 {
				t.Fatalf("%s: stats = %+v, want 1 conn of kind %s", tc.name, st, tc.d.Kind)
			}
		})
	}
}

func TestProxyScriptThenClean(t *testing.T) {
	backend := startBackend(t)
	target := strings.TrimPrefix(backend.URL, "http://")
	p, err := Start(target, Script(Decision{Kind: Reset, After: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cli := chaosClient(500 * time.Millisecond)
	if _, err := cli.Post(p.URL(), "text/plain", strings.NewReader("hello")); err == nil {
		t.Fatal("scripted reset: request succeeded")
	}
	// Past the script every connection is clean — this is how a client
	// retry succeeds after one injected fault.
	resp, err := cli.Post(p.URL(), "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatalf("post-script request: %v", err)
	}
	resp.Body.Close()
}

func TestProxyPartitionAndHeal(t *testing.T) {
	backend := startBackend(t)
	target := strings.TrimPrefix(backend.URL, "http://")
	p, err := Start(target, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.Partition(true)
	cli := chaosClient(200 * time.Millisecond)
	if _, err := cli.Get(p.URL()); err == nil {
		t.Fatal("request through a partition succeeded")
	}
	if st := p.Stats(); st.Partitioned == 0 {
		t.Fatalf("stats = %+v, want partitioned > 0", st)
	}

	p.Partition(false)
	resp, err := cli.Get(p.URL())
	if err != nil {
		t.Fatalf("request after heal: %v", err)
	}
	resp.Body.Close()
}

func TestRandScheduleDeterministic(t *testing.T) {
	w := Weights{None: 60, Latency: 10, Reset: 10, Blackhole: 10, Truncate: 10}
	a, b := NewRandSchedule(42, w), NewRandSchedule(42, w)
	other := NewRandSchedule(43, w)
	diff := false
	for i := 0; i < 200; i++ {
		da, db := a.Decide(i), b.Decide(i)
		if da != db {
			t.Fatalf("conn %d: same seed diverged: %+v vs %+v", i, da, db)
		}
		if da != other.Decide(i) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical 200-decision schedules")
	}
}

// Package faultnet is a dependency-free, in-process TCP proxy that
// injects network faults between a client and one backend from a
// seeded deterministic schedule: added latency, connection resets
// mid-body, blackholes (accept, then stall), response truncation, and
// full partitions of the backend.
//
// It exists so the cluster's exactly-once write path can be tested
// against real transport failures — not mocks — while keeping the
// failure sequence reproducible: a Schedule decides the fault for the
// n-th accepted connection, and the seeded RandSchedule consumes a
// fixed number of RNG draws per decision, so the fault sequence is a
// pure function of (seed, connection ordinal). With HTTP keep-alives
// disabled on the client side, one request is one connection is one
// scheduled decision.
//
// Tests use it programmatically (Start, Partition, Close);
// `fivm-bench chaos` wraps the same proxy as a CLI for shell-driven
// chaos runs.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None passes the connection through untouched.
	None Kind = iota
	// AddLatency delays the connection's first byte in each direction.
	AddLatency
	// Reset forwards part of the request and then resets (RST) both
	// sides mid-body.
	Reset
	// Blackhole accepts the connection and then stalls it: no byte is
	// ever forwarded and the connection stays open until the client
	// gives up or the proxy closes.
	Blackhole
	// Truncate forwards the request, then forwards only a prefix of
	// the response and closes — the client sees an unexpected EOF.
	Truncate

	nKinds
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case AddLatency:
		return "latency"
	case Reset:
		return "reset"
	case Blackhole:
		return "blackhole"
	case Truncate:
		return "truncate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Decision is one connection's fault.
type Decision struct {
	Kind Kind
	// Latency is the added delay (AddLatency).
	Latency time.Duration
	// After is how many bytes are forwarded before the cut
	// (Reset: request bytes; Truncate: response bytes). Values <= 0
	// default to 1.
	After int
}

// Schedule decides the fault for the n-th accepted connection
// (0-based). The proxy calls Decide sequentially from its accept loop,
// so implementations see strictly increasing ordinals.
type Schedule interface {
	Decide(conn int) Decision
}

// Script replays a fixed decision sequence, then passes every later
// connection through clean. Tests use it to place one exact fault.
func Script(ds ...Decision) Schedule { return &script{ds: ds} }

type script struct {
	mu sync.Mutex
	ds []Decision
	i  int
}

func (s *script) Decide(int) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.i < len(s.ds) {
		d := s.ds[s.i]
		s.i++
		return d
	}
	return Decision{}
}

// Weights picks fault kinds proportionally. Zero-value fields mean
// "never"; an all-zero Weights means every connection is clean.
type Weights struct {
	None, Latency, Reset, Blackhole, Truncate int
	// MaxLatency bounds AddLatency delays (default 50ms).
	MaxLatency time.Duration
	// MaxAfter bounds the pre-cut byte count (default 256 — small
	// enough that an HTTP exchange is genuinely cut mid-body).
	MaxAfter int
}

// NewRandSchedule draws each connection's decision from seeded
// pseudo-randomness. Every Decide call consumes exactly three RNG
// values regardless of the drawn kind, so the decision sequence
// depends only on the seed and the connection ordinal — never on
// timing or on which faults fired earlier.
func NewRandSchedule(seed int64, w Weights) Schedule {
	if w.MaxLatency <= 0 {
		w.MaxLatency = 50 * time.Millisecond
	}
	if w.MaxAfter <= 0 {
		w.MaxAfter = 256
	}
	return &randSchedule{rng: rand.New(rand.NewSource(seed)), w: w}
}

type randSchedule struct {
	mu  sync.Mutex
	rng *rand.Rand
	w   Weights
}

func (s *randSchedule) Decide(int) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Fixed draw count per call (see NewRandSchedule).
	roll := s.rng.Intn(maxInt(1, s.w.None+s.w.Latency+s.w.Reset+s.w.Blackhole+s.w.Truncate))
	lat := time.Duration(s.rng.Int63n(int64(s.w.MaxLatency)) + 1)
	after := s.rng.Intn(s.w.MaxAfter) + 1
	d := Decision{Latency: lat, After: after}
	for _, step := range []struct {
		weight int
		kind   Kind
	}{
		{s.w.None, None}, {s.w.Latency, AddLatency}, {s.w.Reset, Reset},
		{s.w.Blackhole, Blackhole}, {s.w.Truncate, Truncate},
	} {
		if roll < step.weight {
			d.Kind = step.kind
			return d
		}
		roll -= step.weight
	}
	d.Kind = None
	return d
}

// Stats counts what the proxy has done so far.
type Stats struct {
	// Conns is the total accepted connection count.
	Conns int64 `json:"conns"`
	// Faults counts decisions by kind name (clean connections under
	// "none").
	Faults map[string]int64 `json:"faults"`
	// Partitioned counts connections swallowed by a full partition.
	Partitioned int64 `json:"partitioned"`
}

// Proxy is one running fault-injection proxy in front of one backend.
type Proxy struct {
	target string
	sched  Schedule
	ln     net.Listener
	done   chan struct{}
	wg     sync.WaitGroup

	partitioned atomic.Bool

	mu        sync.Mutex
	conns     map[net.Conn]struct{} // every live proxied or stalled conn
	partConns map[net.Conn]struct{} // stalled by the current partition
	accepted  int

	counts      [nKinds]atomic.Int64
	partCount   atomic.Int64
	connGrace   time.Duration // read-deadline grace for Reset/Truncate cuts
	closingOnce sync.Once
}

// Start listens on an ephemeral localhost port and proxies every
// accepted connection to target ("host:port"), applying sched's
// decision for it.
func Start(target string, sched Schedule) (*Proxy, error) {
	return Listen("127.0.0.1:0", target, sched)
}

// Listen is Start on an explicit listen address.
func Listen(addr, target string, sched Schedule) (*Proxy, error) {
	if sched == nil {
		sched = Script()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen %s: %w", addr, err)
	}
	p := &Proxy{
		target:    target,
		sched:     sched,
		ln:        ln,
		done:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		partConns: make(map[net.Conn]struct{}),
		connGrace: 2 * time.Second,
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address ("host:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's base URL for HTTP clients.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Partition switches the full-partition state: while on, every new
// connection is swallowed (accepted, then stalled — the client sees a
// dead link, not a refusal). Healing the partition closes the stalled
// connections so waiting clients fail fast and retry.
func (p *Proxy) Partition(on bool) {
	p.partitioned.Store(on)
	if !on {
		p.mu.Lock()
		for c := range p.partConns {
			c.Close()
			delete(p.conns, c)
		}
		p.partConns = make(map[net.Conn]struct{})
		p.mu.Unlock()
	}
}

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	n := p.accepted
	p.mu.Unlock()
	st := Stats{Conns: int64(n), Faults: make(map[string]int64, nKinds), Partitioned: p.partCount.Load()}
	for k := Kind(0); k < nKinds; k++ {
		if v := p.counts[k].Load(); v > 0 {
			st.Faults[k.String()] = v
		}
	}
	return st
}

// Close stops accepting, severs every live connection, and waits for
// the proxy's goroutines to exit.
func (p *Proxy) Close() error {
	p.closingOnce.Do(func() {
		close(p.done)
		p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	})
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		ord := p.accepted
		p.accepted++
		if p.closed() {
			p.mu.Unlock()
			c.Close()
			return
		}
		if p.partitioned.Load() {
			p.conns[c] = struct{}{}
			p.partConns[c] = struct{}{}
			p.mu.Unlock()
			p.partCount.Add(1)
			continue // never read: a swallowed connection
		}
		p.mu.Unlock()
		// Decide in accept order, before the handler goroutine races.
		d := p.sched.Decide(ord)
		p.counts[d.Kind].Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c, d)
		}()
	}
}

func (p *Proxy) closed() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// track registers a connection for Close teardown; untrack removes it.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(c net.Conn, d Decision) {
	p.track(c)
	if d.Kind == Blackhole {
		// Hold the connection open without ever reading it; Close (or
		// the client's own timeout) ends it. untrack is skipped on
		// purpose: Close must still find it.
		return
	}
	defer p.untrack(c)
	defer c.Close()

	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	p.track(up)
	defer p.untrack(up)
	defer up.Close()

	if d.Kind == AddLatency && d.Latency > 0 {
		select {
		case <-time.After(d.Latency):
		case <-p.done:
			return
		}
	}

	after := int64(d.After)
	if after <= 0 {
		after = 1
	}
	switch d.Kind {
	case Reset:
		// Forward a prefix of the request, then RST both directions.
		// The read deadline bounds the stall when the request is
		// shorter than the cut point.
		c.SetReadDeadline(time.Now().Add(p.connGrace))
		_, _ = io.CopyN(up, c, after)
		abort(c)
		abort(up)
	case Truncate:
		// Forward the request; cut the response after a prefix. The
		// deadline bounds the stall when the backend keeps the
		// connection alive past a short response.
		go func() { _, _ = io.Copy(up, c) }()
		up.SetReadDeadline(time.Now().Add(p.connGrace))
		_, _ = io.CopyN(c, up, after)
	default: // None, AddLatency: clean bidirectional copy
		done := make(chan struct{}, 2)
		go func() {
			_, _ = io.Copy(up, c)
			halfClose(up)
			done <- struct{}{}
		}()
		go func() {
			_, _ = io.Copy(c, up)
			halfClose(c)
			done <- struct{}{}
		}()
		<-done
		<-done
	}
}

// abort closes with linger 0 so the peer sees an RST, not a graceful
// FIN — a genuine mid-body connection reset.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// halfClose propagates EOF in one direction without tearing down the
// other, which HTTP needs for request/response overlap.
func halfClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package ring

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// TestQuickCovarMulMatchesDefinition cross-checks the packed-triangle
// product against the textbook formulas computed on full matrices.
func TestQuickCovarMulMatchesDefinition(t *testing.T) {
	const m = 3
	r := NewCovarRing(m)
	fromRaw := func(c float64, s, q []int8) *Covar {
		out := r.One()
		out.C = c
		for i := 0; i < m; i++ {
			out.S[i] = float64(s[i%len(s)])
		}
		k := 0
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				out.Q[k] = float64(q[k%len(q)])
				k++
			}
		}
		return out
	}
	if err := quick.Check(func(ca, cb int8, sa, sb, qa, qb []int8) bool {
		if len(sa) == 0 || len(sb) == 0 || len(qa) == 0 || len(qb) == 0 {
			return true
		}
		a := fromRaw(float64(ca), sa, qa)
		b := fromRaw(float64(cb), sb, qb)
		got := r.Mul(a, b)
		// Reference: full-matrix formulas.
		for i := 0; i < m; i++ {
			if got.Sum(i) != b.C*a.Sum(i)+a.C*b.Sum(i) {
				return false
			}
			for j := 0; j < m; j++ {
				want := b.C*a.Prod(i, j) + a.C*b.Prod(i, j) + a.Sum(i)*b.Sum(j) + b.Sum(i)*a.Sum(j)
				if got.Prod(i, j) != want {
					return false
				}
			}
		}
		return got.Count() == a.C*b.C
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickRelationalAddCancellation: a + (-a) is always the empty
// relation, and a + 0 = a, across random relational values.
func TestQuickRelationalAddCancellation(t *testing.T) {
	var r Relational
	if err := quick.Check(func(keys []uint8, coeffs []int8) bool {
		if len(keys) == 0 || len(coeffs) == 0 {
			return true
		}
		a := RelVal{}
		for i, k := range keys {
			c := float64(coeffs[i%len(coeffs)])
			if c != 0 {
				a[value.T(int(k%8)).Encode()] += c
			}
		}
		for k, v := range a {
			if v == 0 {
				delete(a, k)
			}
		}
		if !r.IsZero(r.Add(a, r.Neg(a))) {
			return false
		}
		return r.Add(a, nil).Equal(a)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLiftFoldEqualsDirectStats folds random rows through the
// generalized ring and compares every component against directly
// computed group-by statistics — the fundamental soundness property of
// the lift/product/sum encoding.
func TestQuickLiftFoldEqualsDirectStats(t *testing.T) {
	const m = 2
	r := NewRelCovarRing(m)
	gCat := r.LiftCategorical(0)
	gX := r.LiftContinuous(1)
	if err := quick.Check(func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(n%16) + 1
		total := r.Zero()
		counts := map[int64]float64{}
		sumXBy := map[int64]float64{}
		var sumX, sumXX float64
		for i := 0; i < rows; i++ {
			cat := int64(rng.Intn(3))
			x := float64(rng.Intn(9) - 4)
			total = r.Add(total, r.Mul(gCat(value.Int(cat)), gX(value.Float(x))))
			counts[cat]++
			sumXBy[cat] += x
			sumX += x
			sumXX += x * x
		}
		if total.Count().Scalar() != float64(rows) {
			return false
		}
		if total.Sum(1).Scalar() != sumX || total.Prod(1, 1).Scalar() != sumXX {
			return false
		}
		for cat, c := range counts {
			if total.Sum(0).Get(value.T(cat)) != c {
				return false
			}
			if total.Prod(0, 1).Get(value.T(cat)) != sumXBy[cat] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickCodecRoundTrips: every codec round-trips random values.
func TestQuickCodecRoundTrips(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		var got int64
		got = roundTripQuick[int64](t, IntCodec{}, v)
		return got == v
	}, nil); err != nil {
		t.Errorf("int codec: %v", err)
	}
	if err := quick.Check(func(keys []uint8, coeffs []int8) bool {
		v := RelVal{}
		for i, k := range keys {
			var c float64 = 1
			if len(coeffs) > 0 {
				c = float64(coeffs[i%len(coeffs)])
			}
			if c != 0 {
				v[value.T(int(k)).Encode()] = c
			}
		}
		if len(v) == 0 {
			v = nil
		}
		return roundTripQuick[RelVal](t, RelValCodec{}, v).Equal(v)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("relval codec: %v", err)
	}
}

func roundTripQuick[V any](t *testing.T, c Codec[V], v V) V {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf, v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := c.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

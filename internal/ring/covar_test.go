package ring

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// randCovar draws a degree-m Covar with small integer entries so all
// arithmetic is exact.
func randCovar(m int) func(*rand.Rand) *Covar {
	r := NewCovarRing(m)
	return func(rng *rand.Rand) *Covar {
		if rng.Intn(8) == 0 {
			return nil // the zero
		}
		c := r.One()
		c.C = float64(rng.Intn(7) - 3)
		for i := range c.S {
			c.S[i] = float64(rng.Intn(7) - 3)
		}
		for i := range c.Q {
			c.Q[i] = float64(rng.Intn(7) - 3)
		}
		return c
	}
}

func TestCovarAxioms(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5} {
		r := NewCovarRing(m)
		checkRingAxioms[*Covar](t, "Covar", r, randCovar(m),
			func(a, b *Covar) bool {
				// Treat nil and the explicit all-zero value as equal.
				if r.IsZero(a) && r.IsZero(b) {
					return true
				}
				return a.Equal(b)
			})
	}
}

func TestCovarMulIsCommutative(t *testing.T) {
	r := NewCovarRing(3)
	gen := randCovar(3)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a, b := gen(rng), gen(rng)
		ab, ba := r.Mul(a, b), r.Mul(b, a)
		if !(r.IsZero(ab) && r.IsZero(ba)) && !ab.Equal(ba) {
			t.Fatalf("Mul not commutative: %v vs %v", ab, ba)
		}
	}
}

// TestCovarAgainstBruteForce checks that folding lift values with the
// ring product over a set of rows equals directly computed statistics.
func TestCovarAgainstBruteForce(t *testing.T) {
	const m = 3
	r := NewCovarRing(m)
	lifts := []Lift[*Covar]{r.Lift(0), r.Lift(1), r.Lift(2)}
	rows := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{-1, 0, 2},
		{0.5, 0.5, 0.5},
	}
	total := r.Zero()
	for _, row := range rows {
		p := r.One()
		for i, x := range row {
			p = r.Mul(p, lifts[i](value.Float(x)))
		}
		total = r.Add(total, p)
	}
	if total.Count() != float64(len(rows)) {
		t.Errorf("count = %v", total.Count())
	}
	for i := 0; i < m; i++ {
		var s float64
		for _, row := range rows {
			s += row[i]
		}
		if total.Sum(i) != s {
			t.Errorf("SUM(x%d) = %v, want %v", i, total.Sum(i), s)
		}
		for j := i; j < m; j++ {
			var q float64
			for _, row := range rows {
				q += row[i] * row[j]
			}
			if total.Prod(i, j) != q {
				t.Errorf("SUM(x%d*x%d) = %v, want %v", i, j, total.Prod(i, j), q)
			}
		}
	}
}

func TestCovarProdSymmetry(t *testing.T) {
	r := NewCovarRing(3)
	c := r.One()
	c.Q[triIndex(3, 0, 2)] = 7
	if c.Prod(0, 2) != 7 || c.Prod(2, 0) != 7 {
		t.Error("Prod not symmetric")
	}
}

func TestCovarNilZeroAccessors(t *testing.T) {
	var c *Covar
	if c.Count() != 0 || c.Sum(0) != 0 || c.Prod(1, 2) != 0 {
		t.Error("nil Covar accessors must return 0")
	}
	if c.String() != "(0)" {
		t.Errorf("nil String = %q", c.String())
	}
}

func TestCovarLiftValues(t *testing.T) {
	r := NewCovarRing(2)
	g := r.Lift(1)
	c := g(value.Float(3))
	if c.Count() != 1 || c.Sum(0) != 0 || c.Sum(1) != 3 ||
		c.Prod(1, 1) != 9 || c.Prod(0, 1) != 0 {
		t.Errorf("lift = %v", c)
	}
	one := r.LiftOne()(value.Int(5))
	if one.Count() != 1 || one.Sum(0) != 0 || one.Sum(1) != 0 {
		t.Errorf("LiftOne = %v", one)
	}
}

func TestCovarLiftPanics(t *testing.T) {
	r := NewCovarRing(2)
	for _, idx := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for index %d", idx)
				}
			}()
			r.Lift(idx)
		}()
	}
}

func TestNewCovarRingPanicsOnBadDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for degree 0")
		}
	}()
	NewCovarRing(0)
}

func TestCovarIsZero(t *testing.T) {
	r := NewCovarRing(2)
	if !r.IsZero(nil) {
		t.Error("nil not zero")
	}
	z := r.One()
	z.C = 0
	if !r.IsZero(z) {
		t.Error("explicit zero not zero")
	}
	nz := r.One()
	if r.IsZero(nz) {
		t.Error("one is zero")
	}
	nzq := r.One()
	nzq.C = 0
	nzq.Q[0] = 1
	if r.IsZero(nzq) {
		t.Error("nonzero Q reported zero")
	}
}

func TestCovarEqualEdgeCases(t *testing.T) {
	r := NewCovarRing(2)
	a := r.One()
	if a.Equal(nil) || (*Covar)(nil).Equal(a) {
		t.Error("nil vs non-nil Equal")
	}
	if !(*Covar)(nil).Equal(nil) {
		t.Error("nil vs nil")
	}
	b := r.One()
	b.S[1] = 5
	if a.Equal(b) {
		t.Error("different S equal")
	}
	r3 := NewCovarRing(3)
	if a.Equal(r3.One()) {
		t.Error("cross-degree equal")
	}
}

func TestCovarString(t *testing.T) {
	r := NewCovarRing(2)
	c := r.One()
	c.C = 3
	c.S[0] = 4
	c.Q[triIndex(2, 0, 1)] = 7
	got := c.String()
	want := "(3, [4 0], [0 7; 0])"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTriIndexing(t *testing.T) {
	// Walk the packed triangle and ensure every (i, j) pair maps to a
	// unique index in range.
	for _, m := range []int{1, 2, 5, 10} {
		seen := map[int]bool{}
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				k := triIndex(m, i, j)
				if k < 0 || k >= triLen(m) {
					t.Fatalf("triIndex(%d,%d,%d) = %d out of range", m, i, j, k)
				}
				if seen[k] {
					t.Fatalf("triIndex(%d,%d,%d) = %d collides", m, i, j, k)
				}
				seen[k] = true
			}
		}
		if len(seen) != triLen(m) {
			t.Fatalf("m=%d: covered %d cells, want %d", m, len(seen), triLen(m))
		}
	}
}

package ring

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Covar is a value of the degree-m matrix ring over float64: the
// compound aggregate (c, s, Q) where c is the count SUM(1), s is the
// m-vector of SUM(X_i), and Q is the symmetric m×m matrix of
// SUM(X_i * X_j). Q is stored as its packed upper triangle.
//
// A nil *Covar is the ring's zero. Covar values are immutable by
// convention: ring operations allocate fresh results.
type Covar struct {
	m int
	C float64
	S []float64 // length m
	Q []float64 // packed upper triangle, length m*(m+1)/2
}

// triLen returns the packed-triangle length for degree m.
func triLen(m int) int { return m * (m + 1) / 2 }

// newCovar returns a zero-valued degree-m Covar whose S and Q share one
// backing array: Covar construction is the maintenance hot path's
// dominant allocator, and the shared backing turns three allocations
// (struct, S, Q) into two. S is capacity-capped so an append could
// never silently spill into Q.
func newCovar(m int) *Covar {
	buf := make([]float64, m+triLen(m))
	return &Covar{m: m, S: buf[:m:m], Q: buf[m:]}
}

// triIndex returns the packed index of entry (i, j); callers must pass
// i <= j.
func triIndex(m, i, j int) int { return i*m - i*(i-1)/2 + (j - i) }

// Degree returns the ring degree m.
func (c *Covar) Degree() int { return c.m }

// Clone returns a deep copy of c; cloning nil (the ring zero) returns
// nil. Payloads are immutable under ring operations, but a clone lets a
// snapshot publisher hand the value to concurrent readers without any
// aliasing question.
func (c *Covar) Clone() *Covar {
	if c == nil {
		return nil
	}
	out := newCovar(c.m)
	out.C = c.C
	copy(out.S, c.S)
	copy(out.Q, c.Q)
	return out
}

// Count returns the scalar count aggregate c (0 for the nil zero).
func (c *Covar) Count() float64 {
	if c == nil {
		return 0
	}
	return c.C
}

// Sum returns SUM(X_i) (0 for the nil zero).
func (c *Covar) Sum(i int) float64 {
	if c == nil {
		return 0
	}
	return c.S[i]
}

// Prod returns SUM(X_i * X_j), exploiting symmetry for i > j. It returns
// 0 for the nil zero.
func (c *Covar) Prod(i, j int) float64 {
	if c == nil {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return c.Q[triIndex(c.m, i, j)]
}

// Equal reports element-wise equality (nil equals an all-zero value of
// any degree only if both are nil; callers compare within one ring).
func (c *Covar) Equal(o *Covar) bool {
	switch {
	case c == nil && o == nil:
		return true
	case c == nil || o == nil:
		return false
	case c.m != o.m, c.C != o.C:
		return false
	}
	for i := range c.S {
		if c.S[i] != o.S[i] {
			return false
		}
	}
	for i := range c.Q {
		if c.Q[i] != o.Q[i] {
			return false
		}
	}
	return true
}

// String renders the compound aggregate compactly, e.g.
// "(3, [6 0 0], [14 0 0; 0 0; 0])".
func (c *Covar) String() string {
	if c == nil {
		return "(0)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(%v, [", value.Float(c.C))
	for i, s := range c.S {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(value.Float(s).String())
	}
	b.WriteString("], [")
	for i := 0; i < c.m; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := i; j < c.m; j++ {
			if j > i {
				b.WriteByte(' ')
			}
			b.WriteString(value.Float(c.Prod(i, j)).String())
		}
	}
	b.WriteString("])")
	return b.String()
}

// CovarRing is the degree-m matrix ring over float64 scalars.
type CovarRing struct{ m int }

// NewCovarRing returns the degree-m matrix ring. It panics for m <= 0.
func NewCovarRing(m int) CovarRing {
	if m <= 0 {
		panic("ring: CovarRing degree must be positive")
	}
	return CovarRing{m: m}
}

// Degree returns m.
func (r CovarRing) Degree() int { return r.m }

// Zero returns nil, the additive identity.
func (r CovarRing) Zero() *Covar { return nil }

// One returns (1, 0, 0), the multiplicative identity.
func (r CovarRing) One() *Covar {
	out := newCovar(r.m)
	out.C = 1
	return out
}

// Add returns the element-wise sum. Either argument may be nil.
func (r CovarRing) Add(a, b *Covar) *Covar {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newCovar(r.m)
	out.C = a.C + b.C
	for i := range out.S {
		out.S[i] = a.S[i] + b.S[i]
	}
	for i := range out.Q {
		out.Q[i] = a.Q[i] + b.Q[i]
	}
	return out
}

// Mul returns the degree-m matrix ring product:
//
//	c = ca*cb
//	s = cb*sa + ca*sb
//	Q = cb*Qa + ca*Qb + sa sbᵀ + sb saᵀ
func (r CovarRing) Mul(a, b *Covar) *Covar {
	if a == nil || b == nil {
		return nil
	}
	m := r.m
	out := newCovar(m)
	out.C = a.C * b.C
	for i := 0; i < m; i++ {
		out.S[i] = b.C*a.S[i] + a.C*b.S[i]
	}
	k := 0
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			out.Q[k] = b.C*a.Q[k] + a.C*b.Q[k] + a.S[i]*b.S[j] + b.S[i]*a.S[j]
			k++
		}
	}
	return out
}

// Neg returns the element-wise negation.
func (r CovarRing) Neg(a *Covar) *Covar {
	if a == nil {
		return nil
	}
	out := newCovar(r.m)
	out.C = -a.C
	for i := range out.S {
		out.S[i] = -a.S[i]
	}
	for i := range out.Q {
		out.Q[i] = -a.Q[i]
	}
	return out
}

// IsZero reports whether a is nil or element-wise zero.
func (r CovarRing) IsZero(a *Covar) bool {
	if a == nil {
		return true
	}
	if a.C != 0 {
		return false
	}
	for _, v := range a.S {
		if v != 0 {
			return false
		}
	}
	for _, v := range a.Q {
		if v != 0 {
			return false
		}
	}
	return true
}

// Lift returns the lift g_X for the continuous attribute at index idx:
// g_X(x) = (1, s, Q) with s_idx = x and Q_idx,idx = x².
func (r CovarRing) Lift(idx int) Lift[*Covar] {
	if idx < 0 || idx >= r.m {
		panic(fmt.Sprintf("ring: lift index %d out of range for degree %d", idx, r.m))
	}
	qi := triIndex(r.m, idx, idx)
	return func(v value.Value) *Covar {
		x := v.AsFloat()
		c := r.One()
		c.S[idx] = x
		c.Q[qi] = x * x
		return c
	}
}

// LiftOne returns the lift g(x) = 1, for join attributes that contribute
// no aggregate of their own.
func (r CovarRing) LiftOne() Lift[*Covar] {
	return func(value.Value) *Covar { return r.One() }
}

package ring

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// randRelCovar draws a degree-m RelCovar whose component schemas follow
// the invariant the ring relies on: C is 0-dimensional, S[i] is
// 0- or 1-dimensional (the 1-dim key identifying feature i), and Q[i][j]
// combines the corresponding parts. Coefficients are small integers.
func randRelCovar(m int) func(*rand.Rand) *RelCovar {
	r := NewRelCovarRing(m)
	return func(rng *rand.Rand) *RelCovar {
		if rng.Intn(8) == 0 {
			return nil
		}
		// Build as a sum of products of lifts: guaranteed to satisfy the
		// schema invariants.
		total := r.Zero()
		rows := 1 + rng.Intn(3)
		for t := 0; t < rows; t++ {
			p := r.One()
			for i := 0; i < m; i++ {
				var lf Lift[*RelCovar]
				if i%2 == 0 {
					lf = r.LiftCategorical(i)
				} else {
					lf = r.LiftContinuous(i)
				}
				p = r.Mul(p, lf(value.Int(int64(rng.Intn(3)))))
			}
			if rng.Intn(4) == 0 {
				p = r.Neg(p)
			}
			total = r.Add(total, p)
		}
		return total
	}
}

func TestRelCovarAxioms(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		r := NewRelCovarRing(m)
		checkRingAxioms[*RelCovar](t, "RelCovar", r, randRelCovar(m),
			func(a, b *RelCovar) bool {
				if r.IsZero(a) && r.IsZero(b) {
					return true
				}
				if a == nil || b == nil {
					return false
				}
				return a.Equal(b)
			})
	}
}

func TestRelCovarMulCommutativeOnPayloads(t *testing.T) {
	// Although the raw relational product is key-order sensitive, the
	// RelCovar composition keeps the i-part first in every Q entry, so
	// payload multiplication commutes.
	r := NewRelCovarRing(3)
	gen := randRelCovar(3)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a, b := gen(rng), gen(rng)
		ab, ba := r.Mul(a, b), r.Mul(b, a)
		if r.IsZero(ab) && r.IsZero(ba) {
			continue
		}
		if ab == nil || !ab.Equal(ba) {
			t.Fatalf("Mul not commutative:\n a=%v\n b=%v\nab=%v\nba=%v", a, b, ab, ba)
		}
	}
}

// TestRelCovarMatchesScalarCovarOnContinuous checks the embedding: with
// all-continuous lifts, the generalized ring must compute exactly the
// scalar ring's statistics (wrapped as 0-dim relations).
func TestRelCovarMatchesScalarCovarOnContinuous(t *testing.T) {
	const m = 3
	rs := NewCovarRing(m)
	rg := NewRelCovarRing(m)
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}, {-1, 0, 2}}

	ts := rs.Zero()
	tg := rg.Zero()
	for _, row := range rows {
		ps, pg := rs.One(), rg.One()
		for i, x := range row {
			ps = rs.Mul(ps, rs.Lift(i)(value.Float(x)))
			pg = rg.Mul(pg, rg.LiftContinuous(i)(value.Float(x)))
		}
		ts = rs.Add(ts, ps)
		tg = rg.Add(tg, pg)
	}
	if tg.Count().Scalar() != ts.Count() {
		t.Errorf("count: %v vs %v", tg.Count().Scalar(), ts.Count())
	}
	for i := 0; i < m; i++ {
		if tg.Sum(i).Scalar() != ts.Sum(i) {
			t.Errorf("S[%d]: %v vs %v", i, tg.Sum(i).Scalar(), ts.Sum(i))
		}
		for j := i; j < m; j++ {
			if tg.Prod(i, j).Scalar() != ts.Prod(i, j) {
				t.Errorf("Q[%d,%d]: %v vs %v", i, j, tg.Prod(i, j).Scalar(), ts.Prod(i, j))
			}
		}
	}
}

// TestRelCovarCategoricalBruteForce compares the categorical payload to
// directly computed group-by counts over rows of (cat, cont) pairs.
func TestRelCovarCategoricalBruteForce(t *testing.T) {
	r := NewRelCovarRing(2)
	gc := r.LiftCategorical(0)
	gx := r.LiftContinuous(1)
	type row struct {
		cat string
		x   float64
	}
	rows := []row{{"a", 1}, {"a", 2}, {"b", 3}, {"a", 4}, {"b", 5}}

	total := r.Zero()
	for _, rw := range rows {
		total = r.Add(total, r.Mul(gc(value.String(rw.cat)), gx(value.Float(rw.x))))
	}
	// s_cat = counts per category.
	counts := map[string]float64{}
	sumXby := map[string]float64{}
	var sumX, sumXX float64
	for _, rw := range rows {
		counts[rw.cat]++
		sumXby[rw.cat] += rw.x
		sumX += rw.x
		sumXX += rw.x * rw.x
	}
	for cat, n := range counts {
		if got := total.Sum(0).Get(value.T(cat)); got != n {
			t.Errorf("s_cat(%s) = %v, want %v", cat, got, n)
		}
		if got := total.Prod(0, 0).Get(value.T(cat)); got != n {
			t.Errorf("Q_cc(%s) = %v, want %v", cat, got, n)
		}
		if got := total.Prod(0, 1).Get(value.T(cat)); got != sumXby[cat] {
			t.Errorf("Q_cx(%s) = %v, want %v", cat, got, sumXby[cat])
		}
	}
	if got := total.Sum(1).Scalar(); got != sumX {
		t.Errorf("SUM(x) = %v, want %v", got, sumX)
	}
	if got := total.Prod(1, 1).Scalar(); got != sumXX {
		t.Errorf("SUM(x*x) = %v, want %v", got, sumXX)
	}
	if got := total.Count().Scalar(); got != float64(len(rows)) {
		t.Errorf("count = %v", got)
	}
}

func TestRelCovarLiftBinned(t *testing.T) {
	r := NewRelCovarRing(1)
	g := r.LiftBinned(0, 10)
	for _, c := range []struct {
		x    float64
		want int64
	}{{0, 0}, {9.9, 0}, {10, 1}, {25, 2}, {-0.1, -1}, {-10, -2}} {
		p := g(value.Float(c.x))
		if got := p.Sum(0).Get(value.T(c.want)); got != 1 {
			t.Errorf("bin(%v): payload %v, want bin %d", c.x, p.Sum(0), c.want)
		}
	}
}

func TestRelCovarLiftBinnedPanicsOnBadWidth(t *testing.T) {
	r := NewRelCovarRing(1)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	r.LiftBinned(0, 0)
}

func TestRelCovarNilAccessors(t *testing.T) {
	var c *RelCovar
	if c.Count() != nil || c.Sum(0) != nil || c.Prod(0, 1) != nil {
		t.Error("nil accessors must return nil")
	}
	if c.String() != "(0)" {
		t.Error("nil String")
	}
	if !c.Equal(nil) {
		t.Error("nil Equal nil")
	}
}

func TestRelCovarDeleteCancelsInsert(t *testing.T) {
	// The paper's delete encoding: adding Neg(payload) must cancel the
	// earlier insert exactly, leaving the ring zero.
	r := NewRelCovarRing(2)
	p := r.Mul(r.LiftCategorical(0)(value.String("a")), r.LiftContinuous(1)(value.Float(2.5)))
	sum := r.Add(p, r.Neg(p))
	if !r.IsZero(sum) {
		t.Errorf("insert+delete left %v", sum)
	}
}

func TestRelCovarProdKeyOrientation(t *testing.T) {
	// Q_ij keys must carry the i-part first regardless of multiplication
	// order.
	r := NewRelCovarRing(2)
	a := r.LiftCategorical(0)(value.String("x0"))
	b := r.LiftCategorical(1)(value.String("y1"))
	for _, p := range []*RelCovar{r.Mul(a, b), r.Mul(b, a)} {
		q := p.Prod(0, 1)
		if q.Get(value.T("x0", "y1")) != 1 {
			t.Errorf("Q_01 = %v, want {(x0, y1)->1}", q)
		}
	}
}

func TestNewRelCovarRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewRelCovarRing(-1)
}

func TestRelCovarLiftIndexPanics(t *testing.T) {
	r := NewRelCovarRing(2)
	for _, fn := range []func(){
		func() { r.LiftContinuous(2) },
		func() { r.LiftCategorical(-1) },
		func() { r.LiftBinned(5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

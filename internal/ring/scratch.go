package ring

// Scratch is an optional Ring extension for rings whose values are
// pointer-shaped (maps, structs with slices) and therefore allocate on
// every pure Add. It lets accumulation loops that EXCLUSIVELY OWN their
// accumulator fold values in place instead of allocating a fresh result
// per addition.
//
// Ownership contract (see also the package doc):
//
//   - AddInto(acc, v) returns acc + v and MAY mutate and reuse acc.
//     The caller must exclusively own acc: acc was produced by Own, by
//     Mul/Neg/One/a lift (which always return fresh values), or by a
//     previous AddInto in the same loop — never a value read from a
//     relation, a view, or any other shared structure. v is only read.
//   - Own(v) returns a value semantically equal to v that the caller
//     exclusively owns (a deep copy for pointer-shaped values). It is
//     how an accumulation loop seeds its accumulator from a shared
//     value it is not allowed to mutate.
//
// The result of AddInto must be indistinguishable from Add(acc, v) to
// any reader; the ring's merge-contract tests assert this equivalence.
// Rings with value-type payloads (Ints, Floats) gain nothing from the
// extension and do not implement it; callers type-assert and fall back
// to the pure Add path.
type Scratch[V any] interface {
	// AddInto returns acc + v, mutating acc when possible. acc must be
	// exclusively owned by the caller; v is never modified.
	AddInto(acc, v V) V
	// Own returns an exclusively-owned value equal to v.
	Own(v V) V
}

// FMA is a second optional extension for fused multiply-accumulate:
// joins fold `acc += a × b` straight into their accumulator without
// materializing the product, the single hottest allocation a hash join
// performs on duplicate output tuples. The ownership rules are
// Scratch's: acc is exclusively owned by the caller (or the ring zero),
// a and b are only read, and the result must be indistinguishable from
// Add(acc, Mul(a, b)). Callers fall back to Mul + Scratch.AddInto (or
// the fully pure path) when a ring does not implement FMA.
type FMA[V any] interface {
	// MulAddInto returns acc + a×b, mutating acc when possible.
	MulAddInto(acc, a, b V) V
}

// MulAddInto implements FMA for the degree-m matrix ring: the product
// formula accumulated element-wise into acc's backing array.
func (r CovarRing) MulAddInto(acc, a, b *Covar) *Covar {
	if a == nil || b == nil {
		return acc
	}
	if acc == nil {
		return r.Mul(a, b)
	}
	m := r.m
	acc.C += a.C * b.C
	for i := 0; i < m; i++ {
		acc.S[i] += b.C*a.S[i] + a.C*b.S[i]
	}
	k := 0
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			acc.Q[k] += b.C*a.Q[k] + a.C*b.Q[k] + a.S[i]*b.S[j] + b.S[i]*a.S[j]
			k++
		}
	}
	return acc
}

// MulAddInto implements FMA for the relational ring via the package's
// mutable join-accumulate helper.
func (Relational) MulAddInto(acc, a, b RelVal) RelVal {
	if len(a) == 0 || len(b) == 0 {
		return acc
	}
	return relMulInto(acc, a, b, 1)
}

// MulAddInto implements FMA for the generalized matrix ring: the
// RelCovar product formula accumulated into acc's relational entries.
func (r RelCovarRing) MulAddInto(acc, a, b *RelCovar) *RelCovar {
	if a == nil || b == nil {
		return acc
	}
	if acc == nil {
		return r.Mul(a, b)
	}
	m := r.m
	ca, cb := a.C.Scalar(), b.C.Scalar()
	if p := ca * cb; p != 0 {
		if acc.C == nil {
			acc.C = RelVal{"": p}
		} else if s := acc.C[""] + p; s == 0 {
			delete(acc.C, "")
		} else {
			acc.C[""] = s
		}
	}
	for i := 0; i < m; i++ {
		s := relAddInto(acc.S[i], a.S[i], cb)
		acc.S[i] = relAddInto(s, b.S[i], ca)
	}
	k := 0
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			q := relAddInto(acc.Q[k], a.Q[k], cb)
			q = relAddInto(q, b.Q[k], ca)
			q = relMulInto(q, a.S[i], b.S[j], 1)
			q = relMulInto(q, b.S[i], a.S[j], 1)
			acc.Q[k] = q
			k++
		}
	}
	return acc
}

// AddInto implements Scratch for the degree-m matrix ring: element-wise
// in-place addition into acc's backing array.
func (r CovarRing) AddInto(acc, v *Covar) *Covar {
	if v == nil {
		return acc
	}
	if acc == nil {
		return v.Clone()
	}
	acc.C += v.C
	for i := range acc.S {
		acc.S[i] += v.S[i]
	}
	for i := range acc.Q {
		acc.Q[i] += v.Q[i]
	}
	return acc
}

// Own implements Scratch: a deep copy of v.
func (r CovarRing) Own(v *Covar) *Covar { return v.Clone() }

// AddInto implements Scratch for the relational ring: coefficients of v
// are summed into acc's map. Entries that cancel are dropped, keeping
// the no-explicit-zero invariant.
func (Relational) AddInto(acc, v RelVal) RelVal {
	if len(v) == 0 {
		return acc
	}
	if acc == nil {
		return v.Clone()
	}
	return relAddInto(acc, v, 1)
}

// Own implements Scratch: a deep copy of v.
func (Relational) Own(v RelVal) RelVal { return v.Clone() }

// AddInto implements Scratch for the generalized matrix ring:
// element-wise relational accumulation into acc's entry maps.
func (r RelCovarRing) AddInto(acc, v *RelCovar) *RelCovar {
	if v == nil {
		return acc
	}
	if acc == nil {
		return v.Clone()
	}
	acc.C = relAddInto(acc.C, v.C, 1)
	for i := range acc.S {
		acc.S[i] = relAddInto(acc.S[i], v.S[i], 1)
	}
	for i := range acc.Q {
		acc.Q[i] = relAddInto(acc.Q[i], v.Q[i], 1)
	}
	return acc
}

// Own implements Scratch: a deep copy of v.
func (r RelCovarRing) Own(v *RelCovar) *RelCovar { return v.Clone() }

// AddInto implements Scratch for the ranged matrix ring. Like Add it
// requires identical ranges (a range mismatch is an index-assignment
// bug and panics there).
func (r RangedCovarRing) AddInto(acc, v *RangedCovar) *RangedCovar {
	if v == nil {
		return acc
	}
	if acc == nil {
		return v.Clone()
	}
	if acc.Start != v.Start || acc.N != v.N {
		return r.Add(acc, v) // panics with Add's range-mismatch message
	}
	acc.C += v.C
	for i := range acc.S {
		acc.S[i] += v.S[i]
	}
	for i := range acc.Q {
		acc.Q[i] += v.Q[i]
	}
	return acc
}

// Own implements Scratch: a deep copy of v.
func (r RangedCovarRing) Own(v *RangedCovar) *RangedCovar { return v.Clone() }

package ring

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// The fused accumulation paths of relation.Join/Aggregate rely on the
// Scratch and FMA extensions being indistinguishable from the pure ring
// operations: AddInto(own(a), b) must equal Add(a, b), MulAddInto(
// own(c), a, b) must equal Add(c, Mul(a, b)), and the read-only
// operands must come out bit-identical — that is what keeps maintained
// views bit-identical whichever path ran. These property tests pin the
// contract for every ring implementing the extensions.

func checkScratchContract[V any](t *testing.T, name string, r Ring[V], gen func(rnd *rand.Rand) V, clone func(V) V, eq func(a, b V) bool) {
	t.Helper()
	sc, ok := r.(Scratch[V])
	if !ok {
		t.Fatalf("%s: ring does not implement Scratch", name)
	}
	fma, hasFMA := r.(FMA[V])
	rnd := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		a, b, c := gen(rnd), gen(rnd), gen(rnd)
		ac, bc, cc := clone(a), clone(b), clone(c)

		// Own yields an equal value whose mutation cannot reach the
		// original.
		own := sc.Own(a)
		if !eq(own, a) {
			t.Fatalf("%s: Own(a) != a", name)
		}
		got := sc.AddInto(own, b)
		want := r.Add(ac, bc)
		if !eq(got, want) {
			t.Fatalf("%s: AddInto(Own(a), b) = %v, want Add(a, b) = %v", name, got, want)
		}
		if !eq(a, ac) || !eq(b, bc) {
			t.Fatalf("%s: AddInto mutated a read-only operand", name)
		}

		// Accumulating from the ring zero owns the addend's value.
		z := sc.AddInto(r.Zero(), b)
		if !eq(z, bc) {
			t.Fatalf("%s: AddInto(0, b) != b", name)
		}
		_ = sc.AddInto(z, b) // must not disturb b
		if !eq(b, bc) {
			t.Fatalf("%s: mutating AddInto(0, b) reached b", name)
		}

		if hasFMA {
			got := fma.MulAddInto(sc.Own(c), a, b)
			want := r.Add(cc, r.Mul(a, b))
			if !eq(got, want) {
				t.Fatalf("%s: MulAddInto(Own(c), a, b) = %v, want c + a*b = %v", name, got, want)
			}
			if !eq(a, ac) || !eq(b, bc) || !eq(c, cc) {
				t.Fatalf("%s: MulAddInto mutated a read-only operand", name)
			}
			z := fma.MulAddInto(r.Zero(), a, b)
			if !eq(z, r.Mul(ac, bc)) {
				t.Fatalf("%s: MulAddInto(0, a, b) != a*b", name)
			}
		}
	}
}

func TestScratchContractCovar(t *testing.T) {
	r := NewCovarRing(3)
	gen := func(rnd *rand.Rand) *Covar {
		if rnd.Intn(5) == 0 {
			return nil
		}
		c := r.One()
		c.C = float64(rnd.Intn(7) - 3)
		for i := range c.S {
			c.S[i] = float64(rnd.Intn(7) - 3)
		}
		for i := range c.Q {
			c.Q[i] = float64(rnd.Intn(7) - 3)
		}
		return c
	}
	checkScratchContract[*Covar](t, "Covar", r, gen, (*Covar).Clone, (*Covar).Equal)
}

func TestScratchContractRelational(t *testing.T) {
	gen := func(rnd *rand.Rand) RelVal {
		n := rnd.Intn(4)
		out := RelVal{}
		for i := 0; i < n; i++ {
			k := value.Tuple{value.Int(int64(rnd.Intn(4)))}.Encode()
			c := float64(rnd.Intn(7) - 3)
			if c != 0 {
				out[k] = c
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	checkScratchContract[RelVal](t, "Relational", Relational{}, gen, RelVal.Clone, RelVal.Equal)
}

func TestScratchContractRelCovar(t *testing.T) {
	r := NewRelCovarRing(2)
	lifts := []Lift[*RelCovar]{r.LiftContinuous(0), r.LiftCategorical(1)}
	gen := func(rnd *rand.Rand) *RelCovar {
		if rnd.Intn(5) == 0 {
			return nil
		}
		v := lifts[rnd.Intn(len(lifts))](value.Int(int64(rnd.Intn(4))))
		if rnd.Intn(2) == 0 {
			v = r.Mul(v, lifts[rnd.Intn(len(lifts))](value.Int(int64(rnd.Intn(4)))))
		}
		if rnd.Intn(3) == 0 {
			v = r.Neg(v)
		}
		return v
	}
	checkScratchContract[*RelCovar](t, "RelCovar", r, gen, (*RelCovar).Clone, (*RelCovar).Equal)
}

func TestScratchContractRangedCovar(t *testing.T) {
	var r RangedCovarRing
	// Same-range values only: AddInto inherits Add's same-range
	// contract (see TestMergeContractRangedCovar). RangedCovarRing does
	// not implement FMA, so only the Scratch half runs.
	gen := func(rnd *rand.Rand) *RangedCovar {
		if rnd.Intn(5) == 0 {
			return nil
		}
		c := &RangedCovar{Start: 1, N: 2, C: float64(rnd.Intn(7) - 3),
			S: make([]float64, 2), Q: make([]float64, 3)}
		for i := range c.S {
			c.S[i] = float64(rnd.Intn(7) - 3)
		}
		for i := range c.Q {
			c.Q[i] = float64(rnd.Intn(7) - 3)
		}
		return c
	}
	checkScratchContract[*RangedCovar](t, "RangedCovar", r, gen, (*RangedCovar).Clone, (*RangedCovar).Equal)
}

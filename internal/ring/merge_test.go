package ring

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// The parallel delta propagation in internal/view merges per-partition
// delta views with the ring addition, from multiple goroutines' outputs
// in arbitrary partition order, while workers concurrently read shared
// sibling payloads. That is only sound if every ring's Add is
// associative and commutative and no ring operation mutates its
// arguments. These property tests pin that contract for each ring; data
// is integer-valued so float sums are exact and associativity holds
// bit-for-bit, matching what the equivalence tests in view and fivm
// rely on.

// checkMergeContract drives one ring through random triples: Add must
// commute and associate, and Add/Mul/Neg must leave their arguments
// untouched.
func checkMergeContract[V any](t *testing.T, name string, r Ring[V], gen func(rnd *rand.Rand) V, clone func(V) V, eq func(a, b V) bool, mul bool) {
	t.Helper()
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a, b, c := gen(rnd), gen(rnd), gen(rnd)
		ac, bc, cc := clone(a), clone(b), clone(c)
		if !eq(r.Add(a, b), r.Add(b, a)) {
			t.Fatalf("%s: Add is not commutative", name)
		}
		if !eq(r.Add(r.Add(a, b), c), r.Add(a, r.Add(b, c))) {
			t.Fatalf("%s: Add is not associative", name)
		}
		if mul {
			_ = r.Mul(a, b)
		}
		_ = r.Neg(a)
		_ = r.IsZero(a)
		if !eq(a, ac) || !eq(b, bc) || !eq(c, cc) {
			t.Fatalf("%s: a ring operation mutated its argument", name)
		}
		// Zero is the identity and a + (-a) cancels exactly.
		if !eq(r.Add(a, r.Zero()), ac) {
			t.Fatalf("%s: a + 0 != a", name)
		}
		if !r.IsZero(r.Add(a, r.Neg(a))) {
			t.Fatalf("%s: a + (-a) is not zero", name)
		}
	}
}

func TestMergeContractInts(t *testing.T) {
	checkMergeContract[int64](t, "Ints", Ints{},
		func(rnd *rand.Rand) int64 { return int64(rnd.Intn(9) - 4) },
		func(v int64) int64 { return v },
		func(a, b int64) bool { return a == b },
		true)
}

func TestMergeContractFloats(t *testing.T) {
	checkMergeContract[float64](t, "Floats", Floats{},
		func(rnd *rand.Rand) float64 { return float64(rnd.Intn(9) - 4) },
		func(v float64) float64 { return v },
		func(a, b float64) bool { return a == b },
		true)
}

func TestMergeContractRelational(t *testing.T) {
	gen := func(rnd *rand.Rand) RelVal {
		n := rnd.Intn(4)
		if n == 0 {
			return nil
		}
		out := RelVal{}
		for i := 0; i < n; i++ {
			k := value.Tuple{value.Int(int64(rnd.Intn(4)))}.Encode()
			c := float64(rnd.Intn(7) - 3)
			if c != 0 {
				out[k] = c
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	checkMergeContract[RelVal](t, "Relational", Relational{},
		gen, RelVal.Clone, RelVal.Equal, true)
}

func TestMergeContractCovar(t *testing.T) {
	r := NewCovarRing(3)
	gen := func(rnd *rand.Rand) *Covar {
		if rnd.Intn(5) == 0 {
			return nil
		}
		c := r.One()
		c.C = float64(rnd.Intn(7) - 3)
		for i := range c.S {
			c.S[i] = float64(rnd.Intn(7) - 3)
		}
		for i := range c.Q {
			c.Q[i] = float64(rnd.Intn(7) - 3)
		}
		return c
	}
	checkMergeContract[*Covar](t, "Covar", r, gen, (*Covar).Clone, (*Covar).Equal, true)
}

func TestMergeContractRelCovar(t *testing.T) {
	r := NewRelCovarRing(2)
	lifts := []Lift[*RelCovar]{r.LiftContinuous(0), r.LiftCategorical(1)}
	gen := func(rnd *rand.Rand) *RelCovar {
		if rnd.Intn(5) == 0 {
			return nil
		}
		v := lifts[rnd.Intn(len(lifts))](value.Int(int64(rnd.Intn(4))))
		if rnd.Intn(2) == 0 {
			v = r.Mul(v, lifts[rnd.Intn(len(lifts))](value.Int(int64(rnd.Intn(4)))))
		}
		if rnd.Intn(3) == 0 {
			v = r.Neg(v)
		}
		return v
	}
	checkMergeContract[*RelCovar](t, "RelCovar", r, gen, (*RelCovar).Clone, (*RelCovar).Equal, true)
}

func TestMergeContractRangedCovar(t *testing.T) {
	var r RangedCovarRing
	// All values share one range: partition merges in the view layer
	// only ever add payloads of the same view key, whose range is fixed
	// by the subtree, so same-range is the contract Add needs. Mul
	// requires adjacent ranges and is exercised by the engine tests.
	gen := func(rnd *rand.Rand) *RangedCovar {
		if rnd.Intn(5) == 0 {
			return nil
		}
		c := &RangedCovar{Start: 1, N: 2, C: float64(rnd.Intn(7) - 3),
			S: make([]float64, 2), Q: make([]float64, triLen(2))}
		for i := range c.S {
			c.S[i] = float64(rnd.Intn(7) - 3)
		}
		for i := range c.Q {
			c.Q[i] = float64(rnd.Intn(7) - 3)
		}
		return c
	}
	checkMergeContract[*RangedCovar](t, "RangedCovar", r, gen, (*RangedCovar).Clone, (*RangedCovar).Equal, false)
}

package ring

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// RangedCovar is the payload of the ranged degree-m matrix ring: a
// compound aggregate (c, s, Q) covering only the contiguous index range
// [Start, Start+N) of the query's aggregate attributes. This is the
// `RingCofactor<double, idx, cnt>` of the paper's Figure 2d: a view deep
// in the tree carries aggregates only for the attributes of its own
// subtree, so leaf payloads are tiny and grow as they travel toward the
// root — a large constant-factor win over carrying the full degree
// everywhere.
//
// Products require the operand ranges to be adjacent (the engine
// guarantees this by assigning lift indexes in the view tree's
// structural order); sums require identical ranges. Violations panic:
// they are index-assignment bugs, not data errors.
//
// A nil *RangedCovar is the ring's zero. One() covers the empty range
// with scalar 1.
type RangedCovar struct {
	Start int
	N     int
	C     float64
	S     []float64 // length N
	Q     []float64 // packed upper triangle, length N*(N+1)/2
}

// Clone returns a deep copy of c; cloning nil (the ring zero) returns
// nil.
func (c *RangedCovar) Clone() *RangedCovar {
	if c == nil {
		return nil
	}
	out := &RangedCovar{Start: c.Start, N: c.N, C: c.C, S: make([]float64, len(c.S)), Q: make([]float64, len(c.Q))}
	copy(out.S, c.S)
	copy(out.Q, c.Q)
	return out
}

// Count returns the scalar count component (0 for nil).
func (c *RangedCovar) Count() float64 {
	if c == nil {
		return 0
	}
	return c.C
}

// Sum returns SUM(X_g) for the global aggregate index g, which must lie
// inside the payload's range; out-of-range reads return 0 (those
// aggregates are simply not carried here).
func (c *RangedCovar) Sum(g int) float64 {
	if c == nil || g < c.Start || g >= c.Start+c.N {
		return 0
	}
	return c.S[g-c.Start]
}

// Prod returns SUM(X_g * X_h) for global indexes g, h within the range
// (0 outside).
func (c *RangedCovar) Prod(g, h int) float64 {
	if c == nil {
		return 0
	}
	if g > h {
		g, h = h, g
	}
	if g < c.Start || h >= c.Start+c.N {
		return 0
	}
	return c.Q[triIndex(c.N, g-c.Start, h-c.Start)]
}

// Equal reports element-wise equality including the range.
func (c *RangedCovar) Equal(o *RangedCovar) bool {
	cz, oz := c == nil, o == nil
	if cz || oz {
		return cz == oz
	}
	if c.Start != o.Start || c.N != o.N || c.C != o.C {
		return false
	}
	for i := range c.S {
		if c.S[i] != o.S[i] {
			return false
		}
	}
	for i := range c.Q {
		if c.Q[i] != o.Q[i] {
			return false
		}
	}
	return true
}

// String renders the payload with its range, e.g. "<2,3>(c, s, Q)".
func (c *RangedCovar) String() string {
	if c == nil {
		return "(0)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<%d,%d>(%v, [", c.Start, c.N, value.Float(c.C))
	for i, s := range c.S {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(value.Float(s).String())
	}
	b.WriteString("], [")
	for i := 0; i < c.N; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := i; j < c.N; j++ {
			if j > i {
				b.WriteByte(' ')
			}
			b.WriteString(value.Float(c.Q[triIndex(c.N, i, j)]).String())
		}
	}
	b.WriteString("])")
	return b.String()
}

// ToCovar widens the payload to a full degree-total Covar (the form the
// ml package consumes); total must cover the payload's range.
func (c *RangedCovar) ToCovar(total int) (*Covar, error) {
	if c == nil {
		return nil, nil
	}
	if c.Start+c.N > total {
		return nil, fmt.Errorf("ring: range [%d,%d) exceeds total degree %d", c.Start, c.Start+c.N, total)
	}
	out := &Covar{m: total, C: c.C, S: make([]float64, total), Q: make([]float64, triLen(total))}
	copy(out.S[c.Start:], c.S)
	for i := 0; i < c.N; i++ {
		for j := i; j < c.N; j++ {
			out.Q[triIndex(total, c.Start+i, c.Start+j)] = c.Q[triIndex(c.N, i, j)]
		}
	}
	return out, nil
}

// RangedCovarRing is the ranged degree-m matrix ring. The ring itself is
// degree-free: each payload carries its own range.
type RangedCovarRing struct{}

// Zero returns nil.
func (RangedCovarRing) Zero() *RangedCovar { return nil }

// One returns the scalar 1 over the empty range.
func (RangedCovarRing) One() *RangedCovar { return &RangedCovar{C: 1} }

// Add returns the element-wise sum; the ranges must match.
func (RangedCovarRing) Add(a, b *RangedCovar) *RangedCovar {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Start != b.Start || a.N != b.N {
		// Adding a pure scalar (N=0) is allowed regardless of the other
		// range only when the scalar is a true zero-extension; in the
		// view engine this never happens, so reject loudly.
		panic(fmt.Sprintf("ring: adding ranged payloads [%d,%d) and [%d,%d)",
			a.Start, a.Start+a.N, b.Start, b.Start+b.N))
	}
	out := &RangedCovar{Start: a.Start, N: a.N, C: a.C + b.C,
		S: make([]float64, a.N), Q: make([]float64, triLen(a.N))}
	for i := range out.S {
		out.S[i] = a.S[i] + b.S[i]
	}
	for i := range out.Q {
		out.Q[i] = a.Q[i] + b.Q[i]
	}
	return out
}

// Mul returns the product over the union range. The operand ranges must
// be adjacent (either may be empty); the result's blocks are
//
//	c = ca·cb
//	s = [cb·sa | ca·sb]            (in index order)
//	Q = [cb·Qa | sa sbᵀ | ca·Qb]   (lo×lo, lo×hi, hi×hi blocks)
func (RangedCovarRing) Mul(a, b *RangedCovar) *RangedCovar {
	if a == nil || b == nil {
		return nil
	}
	lo, hi := a, b
	loScale, hiScale := b.C, a.C // scale of lo's own blocks is the other's count
	if b.N > 0 && (a.N == 0 || b.Start < a.Start) {
		lo, hi = b, a
		loScale, hiScale = a.C, b.C
	}
	if lo.N > 0 && hi.N > 0 && lo.Start+lo.N != hi.Start {
		panic(fmt.Sprintf("ring: multiplying non-adjacent ranges [%d,%d) and [%d,%d)",
			lo.Start, lo.Start+lo.N, hi.Start, hi.Start+hi.N))
	}
	start := lo.Start
	if lo.N == 0 {
		start = hi.Start
	}
	n := lo.N + hi.N
	out := &RangedCovar{Start: start, N: n, C: a.C * b.C,
		S: make([]float64, n), Q: make([]float64, triLen(n))}
	for i := 0; i < lo.N; i++ {
		out.S[i] = loScale * lo.S[i]
	}
	for i := 0; i < hi.N; i++ {
		out.S[lo.N+i] = hiScale * hi.S[i]
	}
	// lo×lo block.
	for i := 0; i < lo.N; i++ {
		for j := i; j < lo.N; j++ {
			out.Q[triIndex(n, i, j)] = loScale * lo.Q[triIndex(lo.N, i, j)]
		}
	}
	// hi×hi block.
	for i := 0; i < hi.N; i++ {
		for j := i; j < hi.N; j++ {
			out.Q[triIndex(n, lo.N+i, lo.N+j)] = hiScale * hi.Q[triIndex(hi.N, i, j)]
		}
	}
	// Cross block: s_lo s_hiᵀ (the symmetric term lands in the same
	// packed cell).
	for i := 0; i < lo.N; i++ {
		for j := 0; j < hi.N; j++ {
			out.Q[triIndex(n, i, lo.N+j)] = lo.S[i] * hi.S[j]
		}
	}
	return out
}

// Neg returns the element-wise negation.
func (RangedCovarRing) Neg(a *RangedCovar) *RangedCovar {
	if a == nil {
		return nil
	}
	out := &RangedCovar{Start: a.Start, N: a.N, C: -a.C,
		S: make([]float64, a.N), Q: make([]float64, triLen(a.N))}
	for i := range out.S {
		out.S[i] = -a.S[i]
	}
	for i := range out.Q {
		out.Q[i] = -a.Q[i]
	}
	return out
}

// IsZero reports whether a is nil or element-wise zero.
func (RangedCovarRing) IsZero(a *RangedCovar) bool {
	if a == nil {
		return true
	}
	if a.C != 0 {
		return false
	}
	for _, v := range a.S {
		if v != 0 {
			return false
		}
	}
	for _, v := range a.Q {
		if v != 0 {
			return false
		}
	}
	return true
}

// Lift returns g_X for the attribute at global aggregate index idx:
// a single-index payload (1, [x], [x²]).
func (RangedCovarRing) Lift(idx int) Lift[*RangedCovar] {
	if idx < 0 {
		panic("ring: negative lift index")
	}
	return func(v value.Value) *RangedCovar {
		x := v.AsFloat()
		return &RangedCovar{Start: idx, N: 1, C: 1, S: []float64{x}, Q: []float64{x * x}}
	}
}

package ring

import (
	"math/rand"
	"testing"
)

func randMatrix(n int) func(*rand.Rand) *Matrix {
	r := NewMatrixRing(n)
	return func(rng *rand.Rand) *Matrix {
		if rng.Intn(8) == 0 {
			return nil
		}
		m := r.New()
		for i := range m.Data {
			m.Data[i] = float64(rng.Intn(7) - 3)
		}
		return m
	}
}

func TestMatrixRingAxioms(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		r := NewMatrixRing(n)
		checkRingAxioms[*Matrix](t, "Matrix", r, randMatrix(n),
			func(a, b *Matrix) bool {
				if r.IsZero(a) && r.IsZero(b) {
					return true
				}
				return a.Equal(b)
			})
	}
}

func TestMatrixMulKnownProduct(t *testing.T) {
	r := NewMatrixRing(2)
	a := r.FromRows([][]float64{{1, 2}, {3, 4}})
	b := r.FromRows([][]float64{{5, 6}, {7, 8}})
	ab := r.Mul(a, b)
	want := r.FromRows([][]float64{{19, 22}, {43, 50}})
	if !ab.Equal(want) {
		t.Errorf("a·b = %v, want %v", ab, want)
	}
	// Non-commutativity.
	ba := r.Mul(b, a)
	if ab.Equal(ba) {
		t.Error("matrix product unexpectedly commutative")
	}
}

func TestMatrixIdentityAndZero(t *testing.T) {
	r := NewMatrixRing(3)
	gen := randMatrix(3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		a := gen(rng)
		if !r.Mul(a, r.One()).Equal(a) && !(r.IsZero(a) && r.IsZero(r.Mul(a, r.One()))) {
			t.Fatalf("a·I != a for %v", a)
		}
		if !r.IsZero(r.Add(a, r.Neg(a))) {
			t.Fatalf("a + (-a) != 0 for %v", a)
		}
	}
}

func TestMatrixAccessors(t *testing.T) {
	r := NewMatrixRing(2)
	m := r.FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Dim() != 2 || m.At(1, 0) != 3 {
		t.Errorf("accessors: dim=%d At(1,0)=%v", m.Dim(), m.At(1, 0))
	}
	var nilM *Matrix
	if nilM.At(0, 0) != 0 {
		t.Error("nil At != 0")
	}
	if nilM.String() != "[0]" {
		t.Error("nil String")
	}
	if got := m.String(); got != "[1 2; 3 4]" {
		t.Errorf("String = %q", got)
	}
	if m.Equal(nilM) || nilM.Equal(m) {
		t.Error("nil equality")
	}
	if m.Equal(NewMatrixRing(3).One()) {
		t.Error("cross-dimension equality")
	}
}

func TestMatrixConstructionPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMatrixRing(0) },
		func() { NewMatrixRing(2).FromRows([][]float64{{1}}) },
		func() { NewMatrixRing(2).FromRows([][]float64{{1}, {2, 3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

package ring

import "repro/internal/value"

// Ring defines sum and product over payload values of type V, with the
// additive inverse needed to encode deletes. Implementations must treat
// payload values as immutable: Add, Mul, and Neg return fresh values (or
// shared immutable ones) and never modify their arguments in place.
// Add must additionally be associative and commutative — the
// maintenance core merges partial aggregates in arbitrary groupings,
// including the per-partition merges of parallel delta propagation —
// and because arguments are never mutated, ring operations are safe to
// call concurrently on shared values.
type Ring[V any] interface {
	// Zero returns the additive identity.
	Zero() V
	// One returns the multiplicative identity.
	One() V
	// Add returns a + b.
	Add(a, b V) V
	// Mul returns a * b.
	Mul(a, b V) V
	// Neg returns the additive inverse -a, used to encode deletes.
	Neg(a V) V
	// IsZero reports whether a equals the additive identity; relations
	// drop zero payloads to stay compact.
	IsZero(a V) bool
}

// Lift maps an attribute value into a ring element. Lift functions are
// the paper's g_X: they are applied when their attribute is marginalized
// in the view tree.
type Lift[V any] func(value.Value) V

// Ints is the ring Z of tuple multiplicities over int64.
type Ints struct{}

// Zero returns 0.
func (Ints) Zero() int64 { return 0 }

// One returns 1.
func (Ints) One() int64 { return 1 }

// Add returns a + b.
func (Ints) Add(a, b int64) int64 { return a + b }

// Mul returns a * b.
func (Ints) Mul(a, b int64) int64 { return a * b }

// Neg returns -a.
func (Ints) Neg(a int64) int64 { return -a }

// IsZero reports a == 0.
func (Ints) IsZero(a int64) bool { return a == 0 }

// CountLift is the lift g_X(x) = 1 in Z, used by plain COUNT aggregates.
func CountLift(value.Value) int64 { return 1 }

// Floats is the ring of float64 scalars; SUM(expr) over numeric
// expressions uses it.
type Floats struct{}

// Zero returns 0.
func (Floats) Zero() float64 { return 0 }

// One returns 1.
func (Floats) One() float64 { return 1 }

// Add returns a + b.
func (Floats) Add(a, b float64) float64 { return a + b }

// Mul returns a * b.
func (Floats) Mul(a, b float64) float64 { return a * b }

// Neg returns -a.
func (Floats) Neg(a float64) float64 { return -a }

// IsZero reports a == 0. Exact comparison is intentional: payloads reach
// zero only through exact cancellation of previously added terms, which
// holds for the integer-valued data produced by deletes of prior inserts.
func (Floats) IsZero(a float64) bool { return a == 0 }

// IdentityLift lifts a numeric attribute value to itself in Floats:
// g_X(x) = x, the lift of SUM(X).
func IdentityLift(v value.Value) float64 { return v.AsFloat() }

// SquareLift lifts x to x*x, the lift of SUM(X*X).
func SquareLift(v value.Value) float64 {
	f := v.AsFloat()
	return f * f
}

package ring

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// checkRingAxioms exercises the ring laws on randomly drawn elements:
// additive/multiplicative identity, additive inverse, associativity,
// commutativity of +, and distributivity. eq compares elements; gen
// draws a random element.
func checkRingAxioms[V any](t *testing.T, name string, r Ring[V], gen func(*rand.Rand) V, eq func(a, b V) bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)

		if !eq(r.Add(a, r.Zero()), a) {
			t.Fatalf("%s: a + 0 != a for %v", name, a)
		}
		if !eq(r.Mul(a, r.One()), a) {
			t.Fatalf("%s: a * 1 != a for %v", name, a)
		}
		if !eq(r.Mul(r.One(), a), a) {
			t.Fatalf("%s: 1 * a != a for %v", name, a)
		}
		if !r.IsZero(r.Add(a, r.Neg(a))) {
			t.Fatalf("%s: a + (-a) != 0 for %v", name, a)
		}
		if !eq(r.Add(a, b), r.Add(b, a)) {
			t.Fatalf("%s: + not commutative", name)
		}
		if !eq(r.Add(r.Add(a, b), c), r.Add(a, r.Add(b, c))) {
			t.Fatalf("%s: + not associative", name)
		}
		if !eq(r.Mul(r.Mul(a, b), c), r.Mul(a, r.Mul(b, c))) {
			t.Fatalf("%s: * not associative", name)
		}
		if !eq(r.Mul(a, r.Add(b, c)), r.Add(r.Mul(a, b), r.Mul(a, c))) {
			t.Fatalf("%s: left distributivity fails", name)
		}
		if !eq(r.Mul(r.Add(a, b), c), r.Add(r.Mul(a, c), r.Mul(b, c))) {
			t.Fatalf("%s: right distributivity fails", name)
		}
		if !r.IsZero(r.Mul(a, r.Zero())) || !r.IsZero(r.Mul(r.Zero(), a)) {
			t.Fatalf("%s: a * 0 != 0", name)
		}
	}
}

func TestIntsAxioms(t *testing.T) {
	checkRingAxioms[int64](t, "Ints", Ints{},
		func(r *rand.Rand) int64 { return int64(r.Intn(21) - 10) },
		func(a, b int64) bool { return a == b })
}

func TestFloatsAxioms(t *testing.T) {
	// Small integer-valued floats keep arithmetic exact, so the axioms
	// hold with equality.
	checkRingAxioms[float64](t, "Floats", Floats{},
		func(r *rand.Rand) float64 { return float64(r.Intn(21) - 10) },
		func(a, b float64) bool { return a == b })
}

func TestLifts(t *testing.T) {
	if CountLift(value.Int(7)) != 1 {
		t.Error("CountLift != 1")
	}
	if IdentityLift(value.Int(7)) != 7 || IdentityLift(value.Float(2.5)) != 2.5 {
		t.Error("IdentityLift wrong")
	}
	if SquareLift(value.Int(3)) != 9 {
		t.Error("SquareLift wrong")
	}
}

// randRelVal draws a small relational value over 1-tuples with integer
// coefficients (exact arithmetic).
func randRelVal(r *rand.Rand) RelVal {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	out := make(RelVal, n)
	for i := 0; i < n; i++ {
		k := value.T(r.Intn(3)).Encode()
		c := float64(r.Intn(7) - 3)
		if c == 0 {
			continue
		}
		out[k] = c
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func TestRelationalAxioms(t *testing.T) {
	// Note: the relational product concatenates keys, so Mul is not
	// commutative in general — the axioms checked here (a ring without
	// commutative multiplication) all hold.
	checkRingAxioms[RelVal](t, "Relational", Relational{}, randRelVal,
		func(a, b RelVal) bool { return a.Equal(b) })
}

func TestRelationalOps(t *testing.T) {
	var r Relational
	a := RelVal{value.T("x").Encode(): 2}
	b := RelVal{value.T("x").Encode(): -2, value.T("y").Encode(): 1}
	sum := r.Add(a, b)
	if sum.Len() != 1 || sum.Get(value.T("y")) != 1 {
		t.Errorf("Add cancellation failed: %v", sum)
	}
	prod := r.Mul(a, RelVal{value.T("z").Encode(): 3})
	if prod.Get(value.T("x", "z")) != 6 {
		t.Errorf("Mul concat failed: %v", prod)
	}
	if !r.IsZero(r.Mul(a, nil)) {
		t.Error("a * 0 != 0")
	}
	if one := r.One(); one.Scalar() != 1 || one.Len() != 1 {
		t.Errorf("One = %v", one)
	}
	if r.Neg(a).Get(value.T("x")) != -2 {
		t.Error("Neg failed")
	}
}

func TestRelValHelpers(t *testing.T) {
	a := RelVal{value.T(1).Encode(): 2, value.T(2).Encode(): 3}
	cl := a.Clone()
	cl[value.T(1).Encode()] = 99
	if a.Get(value.T(1)) != 2 {
		t.Error("Clone aliases source")
	}
	if a.Equal(cl) {
		t.Error("Equal ignores coefficients")
	}
	if RelVal(nil).Clone() != nil {
		t.Error("nil Clone must stay nil")
	}
	if !RelVal(nil).Equal(RelVal{}) {
		t.Error("nil and empty must be Equal")
	}
	if got := a.String(); got != "{(1)->2, (2)->3}" {
		t.Errorf("String = %q", got)
	}
	if RelVal(nil).String() != "{}" {
		t.Error("nil String")
	}
	one := RelOne()
	if one.Scalar() != 1 {
		t.Error("RelOne scalar")
	}
	s := RelSingle(value.T("a"), 2.5)
	if s.Get(value.T("a")) != 2.5 {
		t.Error("RelSingle")
	}
}

func TestRelScaleAndAddInto(t *testing.T) {
	a := RelVal{value.T(1).Encode(): 2}
	if relScale(a, 0) != nil {
		t.Error("scale by 0 must be nil")
	}
	if got := relScale(a, 1); got[value.T(1).Encode()] != 2 {
		t.Error("scale by 1 changed value")
	}
	if got := relScale(a, 3); got.Get(value.T(1)) != 6 {
		t.Error("scale by 3")
	}
	// relAddInto cancels to empty map but never returns wrong values.
	dst := relAddInto(nil, a, 1)
	dst = relAddInto(dst, a, -1)
	if len(dst) != 0 {
		t.Errorf("addInto cancellation: %v", dst)
	}
	if relAddInto(nil, nil, 5) != nil {
		t.Error("addInto of zero allocated")
	}
	// relMulInto accumulates a×b into dst.
	d2 := relMulInto(nil, a, RelVal{value.T(2).Encode(): 3}, 2)
	if d2.Get(value.T(1, 2)) != 12 {
		t.Errorf("mulInto: %v", d2)
	}
}

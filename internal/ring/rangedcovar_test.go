package ring

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// TestRangedMatchesFullOnChain folds random rows through both the full
// degree-m ring and the ranged ring (indexes 0..m-1 in product order)
// and compares every statistic — the equivalence that justifies the
// optimization.
func TestRangedMatchesFullOnChain(t *testing.T) {
	const m = 4
	full := NewCovarRing(m)
	var ranged RangedCovarRing
	rng := rand.New(rand.NewSource(21))

	for iter := 0; iter < 50; iter++ {
		tf := full.Zero()
		tr := ranged.Zero()
		rows := 1 + rng.Intn(6)
		for k := 0; k < rows; k++ {
			pf, pr := full.One(), ranged.One()
			for i := 0; i < m; i++ {
				x := value.Float(float64(rng.Intn(9) - 4))
				pf = full.Mul(pf, full.Lift(i)(x))
				pr = ranged.Mul(pr, ranged.Lift(i)(x))
			}
			if rng.Intn(4) == 0 {
				pf, pr = full.Neg(pf), ranged.Neg(pr)
			}
			tf = full.Add(tf, pf)
			tr = ranged.Add(tr, pr)
		}
		if tf == nil || tr == nil {
			continue
		}
		widened, err := tr.ToCovar(m)
		if err != nil {
			t.Fatal(err)
		}
		if !widened.Equal(tf) {
			t.Fatalf("iter %d:\nranged  %v\nfull    %v", iter, widened, tf)
		}
	}
}

// TestRangedBlockProduct checks one disjoint-range product against
// hand-computed blocks.
func TestRangedBlockProduct(t *testing.T) {
	var r RangedCovarRing
	// a covers index 0 with x=2 (two rows summed: count 2, s=[3], from
	// rows x=1 and x=2).
	a := r.Add(r.Lift(0)(value.Float(1)), r.Lift(0)(value.Float(2)))
	// b covers index 1 with one row y=5.
	b := r.Lift(1)(value.Float(5))
	p := r.Mul(a, b)
	if p.Start != 0 || p.N != 2 {
		t.Fatalf("range = [%d,%d)", p.Start, p.Start+p.N)
	}
	if p.Count() != 2 {
		t.Errorf("count = %v", p.Count())
	}
	// s = [cb*sa | ca*sb] = [1*3 | 2*5].
	if p.Sum(0) != 3 || p.Sum(1) != 10 {
		t.Errorf("s = [%v %v]", p.Sum(0), p.Sum(1))
	}
	// Q00 = cb*Qa00 = 1*(1+4); Q11 = ca*Qb11 = 2*25; Q01 = sa*sb = 3*5.
	if p.Prod(0, 0) != 5 || p.Prod(1, 1) != 50 || p.Prod(0, 1) != 15 {
		t.Errorf("Q = [%v %v %v]", p.Prod(0, 0), p.Prod(0, 1), p.Prod(1, 1))
	}
	// Commuted product gives the identical payload (ranges reorder).
	if q := r.Mul(b, a); !q.Equal(p) {
		t.Errorf("b*a = %v, want %v", q, p)
	}
}

func TestRangedScalarOperand(t *testing.T) {
	var r RangedCovarRing
	two := r.Add(r.One(), r.One()) // scalar 2, empty range
	x := r.Lift(3)(value.Float(4))
	p := r.Mul(two, x)
	if p.Start != 3 || p.N != 1 {
		t.Fatalf("range = [%d,%d)", p.Start, p.Start+p.N)
	}
	if p.Count() != 2 || p.Sum(3) != 8 || p.Prod(3, 3) != 32 {
		t.Errorf("payload = %v", p)
	}
}

func TestRangedAdjacencyViolationPanics(t *testing.T) {
	var r RangedCovarRing
	a := r.Lift(0)(value.Float(1))
	c := r.Lift(2)(value.Float(1)) // gap at index 1
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-adjacent ranges")
		}
	}()
	r.Mul(a, c)
}

func TestRangedAddRangeMismatchPanics(t *testing.T) {
	var r RangedCovarRing
	a := r.Lift(0)(value.Float(1))
	b := r.Lift(1)(value.Float(1))
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched Add ranges")
		}
	}()
	r.Add(a, b)
}

func TestRangedAccessorsAndZero(t *testing.T) {
	var r RangedCovarRing
	var nilP *RangedCovar
	if nilP.Count() != 0 || nilP.Sum(0) != 0 || nilP.Prod(0, 1) != 0 {
		t.Error("nil accessors")
	}
	if nilP.String() != "(0)" {
		t.Error("nil String")
	}
	if !nilP.Equal(nil) {
		t.Error("nil Equal")
	}
	w, err := nilP.ToCovar(3)
	if err != nil || w != nil {
		t.Error("nil ToCovar")
	}
	if !r.IsZero(nil) {
		t.Error("nil not zero")
	}
	one := r.One()
	if r.IsZero(one) {
		t.Error("one is zero")
	}
	z := r.Add(one, r.Neg(one))
	if !r.IsZero(z) {
		t.Errorf("1 + (-1) = %v", z)
	}
	// Out-of-range global reads return 0 rather than panicking.
	p := r.Lift(2)(value.Float(3))
	if p.Sum(0) != 0 || p.Prod(0, 2) != 0 || p.Sum(2) != 3 {
		t.Error("global-index reads wrong")
	}
	if _, err := p.ToCovar(2); err == nil {
		t.Error("ToCovar with insufficient degree accepted")
	}
	if s := p.String(); s == "" {
		t.Error("empty String")
	}
}

func TestRangedLiftNegativeIndexPanics(t *testing.T) {
	var r RangedCovarRing
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	r.Lift(-1)
}

package ring

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Matrix is a dense square matrix over float64: a value of the (square)
// matrix ring of dimension n. Matrix multiplication is not commutative,
// which the view engine supports — payload products always multiply in
// a fixed structural order.
//
// The paper lists matrix chain multiplication among the applications
// the same view tree maintains with only a ring change. Rectangular
// chains are handled by the float-ring encoding (see
// examples/matrixchain, where entries live in payloads of index
// tuples); this ring covers the square case where whole matrices are
// the payloads — e.g. aggregating products of per-tuple transition
// matrices.
//
// A nil *Matrix is the ring's zero. Values are immutable by convention.
type Matrix struct {
	n    int
	Data []float64 // row-major, length n*n
}

// Dim returns the matrix dimension n.
func (m *Matrix) Dim() int { return m.n }

// At returns entry (i, j); the nil zero reads as all zeros.
func (m *Matrix) At(i, j int) float64 {
	if m == nil {
		return 0
	}
	return m.Data[i*m.n+j]
}

// Equal reports element-wise equality.
func (m *Matrix) Equal(o *Matrix) bool {
	mz, oz := m == nil, o == nil
	if mz || oz {
		return mz == oz
	}
	if m.n != o.n {
		return false
	}
	for i, v := range m.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// String renders the matrix row by row.
func (m *Matrix) String() string {
	if m == nil {
		return "[0]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < m.n; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(value.Float(m.At(i, j)).String())
		}
	}
	b.WriteByte(']')
	return b.String()
}

// MatrixRing is the ring of n×n float64 matrices: element-wise +,
// matrix multiplication as ×, the zero matrix as 0, and the identity
// matrix as 1. Multiplication is intentionally non-commutative.
type MatrixRing struct{ n int }

// NewMatrixRing returns the ring of n×n matrices; it panics for n <= 0.
func NewMatrixRing(n int) MatrixRing {
	if n <= 0 {
		panic("ring: MatrixRing dimension must be positive")
	}
	return MatrixRing{n: n}
}

// Dim returns n.
func (r MatrixRing) Dim() int { return r.n }

// New returns a zero-filled (but non-nil) matrix of the ring's
// dimension, for callers assembling payloads entry by entry.
func (r MatrixRing) New() *Matrix {
	return &Matrix{n: r.n, Data: make([]float64, r.n*r.n)}
}

// FromRows builds a matrix from row slices; it panics on dimension
// mismatch (construction-time programming errors).
func (r MatrixRing) FromRows(rows [][]float64) *Matrix {
	if len(rows) != r.n {
		panic(fmt.Sprintf("ring: %d rows for dimension %d", len(rows), r.n))
	}
	m := r.New()
	for i, row := range rows {
		if len(row) != r.n {
			panic(fmt.Sprintf("ring: row %d has %d entries for dimension %d", i, len(row), r.n))
		}
		copy(m.Data[i*r.n:(i+1)*r.n], row)
	}
	return m
}

// Zero returns nil.
func (r MatrixRing) Zero() *Matrix { return nil }

// One returns the identity matrix.
func (r MatrixRing) One() *Matrix {
	m := r.New()
	for i := 0; i < r.n; i++ {
		m.Data[i*r.n+i] = 1
	}
	return m
}

// Add returns the element-wise sum.
func (r MatrixRing) Add(a, b *Matrix) *Matrix {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := r.New()
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Mul returns the matrix product a·b (order matters).
func (r MatrixRing) Mul(a, b *Matrix) *Matrix {
	if a == nil || b == nil {
		return nil
	}
	n := r.n
	out := r.New()
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.Data[i*n+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += aik * b.Data[k*n+j]
			}
		}
	}
	return out
}

// Neg returns the element-wise negation.
func (r MatrixRing) Neg(a *Matrix) *Matrix {
	if a == nil {
		return nil
	}
	out := r.New()
	for i := range out.Data {
		out.Data[i] = -a.Data[i]
	}
	return out
}

// IsZero reports whether a is nil or all zeros.
func (r MatrixRing) IsZero(a *Matrix) bool {
	if a == nil {
		return true
	}
	for _, v := range a.Data {
		if v != 0 {
			return false
		}
	}
	return true
}

// Package ring implements the application-specific rings at the heart
// of F-IVM. A view tree carries payloads from one ring; swapping the
// ring — and only the ring — retargets the same maintenance machinery
// from counting to linear-regression gradients (COVAR matrices) to the
// count tables behind pairwise mutual information.
//
// The rings provided are those of the paper:
//
//   - Ints / Floats: the ring Z (and its float analogue) of tuple
//     multiplicities. Negative values encode deletes.
//   - Relational: relations as values, with union as + and a
//     schema-concatenating join as ×. Used as the scalar domain of the
//     generalized degree-m ring.
//   - Covar: the degree-m matrix ring over float64 scalars, carrying
//     the compound aggregate (c, s, Q) for continuous attributes.
//   - RelCovar: the degree-m matrix ring over relational values, the
//     composition that supports one-hot-encoded categorical attributes
//     and the mutual-information count tables.
//   - RangedCovar: the COVAR ring with ranged payloads (the paper's
//     Figure 2d), where each view carries only its own subtree's
//     aggregate indexes.
//   - Matrix: dense matrices, demonstrating a non-commutative ring
//     (matrix chain products) on the same machinery.
//
// # Key invariants
//
//   - Payload values are immutable: Add, Mul, and Neg return fresh
//     values (or shared immutable ones) and never modify their
//     arguments. This is what lets views, published model snapshots,
//     and concurrent delta-propagation workers share payloads freely.
//   - Add is associative and commutative, and values carry no hidden
//     representation slack that could distinguish equal sums (e.g.
//     RelVal stores no explicit zero coefficients). The maintenance
//     core merges partial aggregates in whatever grouping is
//     convenient — including the per-partition merges of parallel
//     delta propagation — and relies on every grouping producing the
//     same value.
//   - The ring zero is never stored in relations: IsZero gates every
//     merge, keeping views compact under cancellation.
//
// merge_test.go pins the first two invariants property-style for every
// ring.
//
// # Scratch extensions and ownership
//
// Immutability makes the pure operations allocate: for pointer-shaped
// payloads every Add builds a fresh value, which dominated the
// maintenance hot path's allocation profile. The optional Scratch and
// FMA interfaces are the sanctioned escape hatch: AddInto folds a value
// into an accumulator in place, MulAddInto fuses `acc += a × b`. The
// ownership rule is strict — the accumulator must be EXCLUSIVELY OWNED
// by the caller (created by Own, Mul, Neg, One, a lift, or a previous
// in-place call; never read from a relation or view), the other
// operands are only read, and the result must be bit-identical to the
// pure composition. Rings implementing Scratch additionally guarantee
// that Add returns a fresh value when both operands are non-zero, so
// an accumulation loop that has done one pure Add owns the result.
// relation.Join/Aggregate are the only callers; scratch_test.go pins
// the equivalence contract for every implementing ring. See
// docs/PERF.md for the full ownership story.
package ring

package ring

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func roundTrip[V any](t *testing.T, c Codec[V], v V) V {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf, v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := c.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after decode", buf.Len())
	}
	return got
}

func TestIntCodec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 127, -128, math.MaxInt64, math.MinInt64} {
		if got := roundTrip[int64](t, IntCodec{}, v); got != v {
			t.Errorf("roundtrip(%d) = %d", v, got)
		}
	}
}

func TestFloatCodec(t *testing.T) {
	for _, v := range []float64{0, -0.0, 1.5, math.Inf(1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		if got := roundTrip[float64](t, FloatCodec{}, v); got != v {
			t.Errorf("roundtrip(%v) = %v", v, got)
		}
	}
	if got := roundTrip[float64](t, FloatCodec{}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN roundtrip = %v", got)
	}
}

func TestRelValCodec(t *testing.T) {
	cases := []RelVal{
		nil,
		{},
		RelOne(),
		{value.T("x").Encode(): 2.5, value.T(1, 2).Encode(): -1},
	}
	for _, v := range cases {
		got := roundTrip[RelVal](t, RelValCodec{}, v)
		if !got.Equal(v) {
			t.Errorf("roundtrip(%v) = %v", v, got)
		}
	}
	// Empty maps normalize to nil.
	if got := roundTrip[RelVal](t, RelValCodec{}, RelVal{}); got != nil {
		t.Errorf("empty map decoded to %v, want nil", got)
	}
}

func TestCovarCodec(t *testing.T) {
	r := NewCovarRing(3)
	c := CovarCodec{Ring: r}
	gen := randCovar(3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		v := gen(rng)
		got := roundTrip[*Covar](t, c, v)
		if v == nil {
			if got != nil {
				t.Errorf("nil decoded to %v", got)
			}
			continue
		}
		if !got.Equal(v) {
			t.Errorf("roundtrip(%v) = %v", v, got)
		}
	}
	// Degree mismatch is rejected at encode time.
	other := NewCovarRing(2).One()
	var buf bytes.Buffer
	if err := c.Encode(&buf, other); err == nil {
		t.Error("cross-degree encode accepted")
	}
}

func TestRelCovarCodec(t *testing.T) {
	r := NewRelCovarRing(2)
	c := RelCovarCodec{Ring: r}
	gen := randRelCovar(2)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		v := gen(rng)
		got := roundTrip[*RelCovar](t, c, v)
		if v == nil {
			if got != nil {
				t.Errorf("nil decoded to %v", got)
			}
			continue
		}
		if !got.Equal(v) {
			t.Errorf("roundtrip(%v) = %v", v, got)
		}
	}
	other := NewRelCovarRing(3).One()
	var buf bytes.Buffer
	if err := c.Encode(&buf, other); err == nil {
		t.Error("cross-degree encode accepted")
	}
}

func TestCodecTruncation(t *testing.T) {
	r := NewCovarRing(2)
	v := r.One()
	v.S[0] = 5
	var buf bytes.Buffer
	if err := (CovarCodec{Ring: r}).Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < buf.Len(); cut++ {
		if _, err := (CovarCodec{Ring: r}).Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated payload (%d bytes) decoded", cut)
		}
	}
}

func TestBufferedEncode(t *testing.T) {
	var buf bytes.Buffer
	vals := []int64{1, 2, 3}
	if err := BufferedEncode[int64](&buf, IntCodec{}, vals); err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(buf.Bytes())
	for _, want := range vals {
		got, err := (IntCodec{}).Decode(rd)
		if err != nil || got != want {
			t.Fatalf("decode = %d, %v; want %d", got, err, want)
		}
	}
}

func TestRangedCovarCodec(t *testing.T) {
	var c RangedCovarCodec
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		n := rng.Intn(4)
		v := &RangedCovar{Start: rng.Intn(3), N: n, C: rng.NormFloat64(), S: make([]float64, n), Q: make([]float64, n*(n+1)/2)}
		for j := range v.S {
			v.S[j] = rng.NormFloat64()
		}
		for j := range v.Q {
			v.Q[j] = rng.NormFloat64()
		}
		got := roundTrip[*RangedCovar](t, c, v)
		if !got.Equal(v) {
			t.Errorf("roundtrip(%v) = %v", v, got)
		}
	}
	if got := roundTrip[*RangedCovar](t, c, nil); got != nil {
		t.Errorf("nil decoded to %v", got)
	}
}

func TestCovarClone(t *testing.T) {
	gen := randCovar(3)
	rng := rand.New(rand.NewSource(10))
	v := gen(rng)
	for v == nil {
		v = gen(rng)
	}
	cl := v.Clone()
	if !cl.Equal(v) {
		t.Fatalf("clone %v != source %v", cl, v)
	}
	cl.S[0] += 1
	if cl.Equal(v) {
		t.Fatal("clone shares backing storage with source")
	}
	if (*Covar)(nil).Clone() != nil {
		t.Fatal("nil clone must be nil")
	}
	if (*RangedCovar)(nil).Clone() != nil {
		t.Fatal("nil ranged clone must be nil")
	}
}

package ring

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// RelCovar is a value of the generalized degree-m matrix ring: the
// compound aggregate (c, s, Q) whose entries are relational values
// instead of scalars. Continuous attributes store 0-dimensional
// relations ({() -> v}); categorical attributes store their one-hot
// encoding compactly as {x -> 1} tensors, so Q_XY entries are 0-, 1-, or
// 2-dimensional tensors exactly as color-coded in the paper's UI.
//
// Q is stored as its packed upper triangle, with tuple keys ordered
// (X_i-part, X_j-part) for i <= j. A nil *RelCovar is the ring's zero;
// nil RelVal entries are relational zeros.
type RelCovar struct {
	m int
	C RelVal
	S []RelVal // length m
	Q []RelVal // packed upper triangle, length m*(m+1)/2
}

// Degree returns the ring degree m.
func (c *RelCovar) Degree() int { return c.m }

// Count returns the count component (nil for the ring zero).
func (c *RelCovar) Count() RelVal {
	if c == nil {
		return nil
	}
	return c.C
}

// Sum returns the i-th vector component.
func (c *RelCovar) Sum(i int) RelVal {
	if c == nil {
		return nil
	}
	return c.S[i]
}

// Prod returns the (i, j) matrix component. For i > j it returns the
// stored (j, i) entry, whose tuple keys are ordered with the j-part
// first; callers that need attribute-labelled tuples should query with
// i <= j.
func (c *RelCovar) Prod(i, j int) RelVal {
	if c == nil {
		return nil
	}
	if i > j {
		i, j = j, i
	}
	return c.Q[triIndex(c.m, i, j)]
}

// Clone returns a deep copy of c: every relational entry is copied, so
// the clone stays valid however the source's owner evolves afterwards.
// Cloning nil (the ring zero) returns nil.
func (c *RelCovar) Clone() *RelCovar {
	if c == nil {
		return nil
	}
	out := &RelCovar{m: c.m, C: c.C.Clone(), S: make([]RelVal, len(c.S)), Q: make([]RelVal, len(c.Q))}
	for i, s := range c.S {
		out.S[i] = s.Clone()
	}
	for i, q := range c.Q {
		out.Q[i] = q.Clone()
	}
	return out
}

// Equal reports element-wise equality of two values from the same ring.
func (c *RelCovar) Equal(o *RelCovar) bool {
	cz, oz := c == nil, o == nil
	if cz || oz {
		return cz == oz
	}
	if c.m != o.m || !c.C.Equal(o.C) {
		return false
	}
	for i := range c.S {
		if !c.S[i].Equal(o.S[i]) {
			return false
		}
	}
	for i := range c.Q {
		if !c.Q[i].Equal(o.Q[i]) {
			return false
		}
	}
	return true
}

// String renders the compound aggregate with relational entries.
func (c *RelCovar) String() string {
	if c == nil {
		return "(0)"
	}
	var b strings.Builder
	b.WriteString("(" + c.C.String() + ", [")
	for i, s := range c.S {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.String())
	}
	b.WriteString("], [")
	for i := 0; i < c.m; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := i; j < c.m; j++ {
			if j > i {
				b.WriteByte(' ')
			}
			b.WriteString(c.Prod(i, j).String())
		}
	}
	b.WriteString("])")
	return b.String()
}

// RelCovarRing is the degree-m matrix ring with relational values: the
// composition of the degree-m matrix ring with the relational ring that
// unifies continuous and categorical attributes.
type RelCovarRing struct{ m int }

// NewRelCovarRing returns the generalized degree-m matrix ring. It
// panics for m <= 0.
func NewRelCovarRing(m int) RelCovarRing {
	if m <= 0 {
		panic("ring: RelCovarRing degree must be positive")
	}
	return RelCovarRing{m: m}
}

// Degree returns m.
func (r RelCovarRing) Degree() int { return r.m }

// Zero returns nil, the additive identity.
func (r RelCovarRing) Zero() *RelCovar { return nil }

// One returns ({() -> 1}, 0-vector, 0-matrix) where 0 is the empty
// relation.
func (r RelCovarRing) One() *RelCovar {
	return &RelCovar{m: r.m, C: RelOne(), S: make([]RelVal, r.m), Q: make([]RelVal, triLen(r.m))}
}

// Add returns the element-wise relational union.
func (r RelCovarRing) Add(a, b *RelCovar) *RelCovar {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	var rel Relational
	out := &RelCovar{m: r.m, C: rel.Add(a.C, b.C), S: make([]RelVal, r.m), Q: make([]RelVal, triLen(r.m))}
	for i := range out.S {
		out.S[i] = rel.Add(a.S[i], b.S[i])
	}
	for i := range out.Q {
		out.Q[i] = rel.Add(a.Q[i], b.Q[i])
	}
	return out
}

// Mul returns the product with the degree-m matrix ring formulas, where
// scalar +/× are relational union/join:
//
//	c = ca × cb
//	s_i = cb × sa_i + ca × sb_i
//	Q_ij = cb × Qa_ij + ca × Qb_ij + sa_i × sb_j + sb_i × sa_j
//
// Tuple keys inside Q_ij keep the X_i-part first; since the count
// component always has schema ∅ (its only tuple is the empty one),
// multiplying by c never perturbs key order.
func (r RelCovarRing) Mul(a, b *RelCovar) *RelCovar {
	if a == nil || b == nil {
		return nil
	}
	m := r.m
	out := &RelCovar{m: m, S: make([]RelVal, m), Q: make([]RelVal, triLen(m))}
	// The counts are 0-dimensional; use their scalars for cheap scaling.
	ca, cb := a.C.Scalar(), b.C.Scalar()
	out.C = RelVal{"": ca * cb}
	if ca*cb == 0 {
		out.C = nil
	}
	for i := 0; i < m; i++ {
		s := relAddInto(nil, a.S[i], cb)
		s = relAddInto(s, b.S[i], ca)
		out.S[i] = s
	}
	k := 0
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			q := relAddInto(nil, a.Q[k], cb)
			q = relAddInto(q, b.Q[k], ca)
			q = relMulInto(q, a.S[i], b.S[j], 1)
			q = relMulInto(q, b.S[i], a.S[j], 1)
			if len(q) == 0 {
				q = nil
			}
			out.Q[k] = q
			k++
		}
	}
	return out
}

// Neg negates every relational coefficient.
func (r RelCovarRing) Neg(a *RelCovar) *RelCovar {
	if a == nil {
		return nil
	}
	var rel Relational
	out := &RelCovar{m: r.m, C: rel.Neg(a.C), S: make([]RelVal, r.m), Q: make([]RelVal, triLen(r.m))}
	for i := range out.S {
		out.S[i] = rel.Neg(a.S[i])
	}
	for i := range out.Q {
		out.Q[i] = rel.Neg(a.Q[i])
	}
	return out
}

// IsZero reports whether every component is the empty relation.
func (r RelCovarRing) IsZero(a *RelCovar) bool {
	if a == nil {
		return true
	}
	if len(a.C) != 0 {
		return false
	}
	for _, s := range a.S {
		if len(s) != 0 {
			return false
		}
	}
	for _, q := range a.Q {
		if len(q) != 0 {
			return false
		}
	}
	return true
}

// LiftContinuous returns g_X for a continuous attribute at index idx:
// s_idx = {() -> x}, Q_idx,idx = {() -> x²}.
func (r RelCovarRing) LiftContinuous(idx int) Lift[*RelCovar] {
	r.checkIdx(idx)
	qi := triIndex(r.m, idx, idx)
	return func(v value.Value) *RelCovar {
		x := v.AsFloat()
		c := r.One()
		if x != 0 {
			// x == 0 lifts to empty components: RelVals keep no explicit
			// zero coefficients (a zero entry smuggled through Add's
			// empty-side fast paths would break associativity up to
			// representation, which parallel partition merges rely on).
			c.S[idx] = RelVal{"": x}
			c.Q[qi] = RelVal{"": x * x}
		}
		return c
	}
}

// LiftCategorical returns g_X for a categorical attribute at index idx:
// s_idx = {x -> 1}, Q_idx,idx = {x -> 1} — the compact one-hot encoding.
func (r RelCovarRing) LiftCategorical(idx int) Lift[*RelCovar] {
	r.checkIdx(idx)
	qi := triIndex(r.m, idx, idx)
	return func(v value.Value) *RelCovar {
		key := value.Tuple{v}.Encode()
		c := r.One()
		c.S[idx] = RelVal{key: 1}
		c.Q[qi] = RelVal{key: 1}
		return c
	}
}

// LiftBinned returns g_X for a continuous attribute treated as
// categorical by discretizing into equi-width bins of the given width;
// mutual information over continuous attributes uses it.
func (r RelCovarRing) LiftBinned(idx int, width float64) Lift[*RelCovar] {
	r.checkIdx(idx)
	if width <= 0 {
		panic("ring: bin width must be positive")
	}
	qi := triIndex(r.m, idx, idx)
	return func(v value.Value) *RelCovar {
		bin := int64(v.AsFloat() / width)
		if v.AsFloat() < 0 {
			bin--
		}
		key := value.Tuple{value.Int(bin)}.Encode()
		c := r.One()
		c.S[idx] = RelVal{key: 1}
		c.Q[qi] = RelVal{key: 1}
		return c
	}
}

// LiftOne returns g(x) = 1 for join attributes outside the aggregate.
func (r RelCovarRing) LiftOne() Lift[*RelCovar] {
	return func(value.Value) *RelCovar { return r.One() }
}

func (r RelCovarRing) checkIdx(idx int) {
	if idx < 0 || idx >= r.m {
		panic(fmt.Sprintf("ring: lift index %d out of range for degree %d", idx, r.m))
	}
}

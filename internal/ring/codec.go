package ring

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Codec serializes ring payloads for snapshots. Implementations must
// round-trip exactly: Decode(Encode(v)) is indistinguishable from v
// under the ring's operations.
type Codec[V any] interface {
	// Encode writes v to w.
	Encode(w io.Writer, v V) error
	// Decode reads one value from r.
	Decode(r io.Reader) (V, error)
}

// maxDecodeLen bounds length prefixes while decoding, rejecting
// corrupted or adversarial snapshots before allocating.
const maxDecodeLen = 1 << 30

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r io.Reader) (uint64, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = &byteReader{r: r}
	}
	return binary.ReadUvarint(br)
}

type byteReader struct{ r io.Reader }

func (b *byteReader) ReadByte() (byte, error) {
	var buf [1]byte
	_, err := io.ReadFull(b.r, buf[:])
	return buf[0], err
}

func writeFloat(w io.Writer, f float64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

func readFloat(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(buf[:])), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxDecodeLen {
		return "", fmt.Errorf("ring: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// IntCodec serializes Z-ring payloads.
type IntCodec struct{}

// Encode writes v as a zig-zag varint.
func (IntCodec) Encode(w io.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// Decode reads a zig-zag varint.
func (IntCodec) Decode(r io.Reader) (int64, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = &byteReader{r: r}
	}
	return binary.ReadVarint(br)
}

// FloatCodec serializes float-ring payloads.
type FloatCodec struct{}

// Encode writes the IEEE-754 bits big-endian.
func (FloatCodec) Encode(w io.Writer, v float64) error { return writeFloat(w, v) }

// Decode reads 8 big-endian bytes.
func (FloatCodec) Decode(r io.Reader) (float64, error) { return readFloat(r) }

// RelValCodec serializes relational-ring payloads.
type RelValCodec struct{}

// Encode writes the tuple count followed by (key, coefficient) pairs.
// Iteration order is unspecified; the decoded map is equal regardless.
func (RelValCodec) Encode(w io.Writer, v RelVal) error {
	if err := writeUvarint(w, uint64(len(v))); err != nil {
		return err
	}
	for k, c := range v {
		if err := writeString(w, k); err != nil {
			return err
		}
		if err := writeFloat(w, c); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a relational value; zero tuples decode to nil.
func (RelValCodec) Decode(r io.Reader) (RelVal, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxDecodeLen {
		return nil, fmt.Errorf("ring: relation size %d exceeds limit", n)
	}
	out := make(RelVal, n)
	for i := uint64(0); i < n; i++ {
		k, err := readString(r)
		if err != nil {
			return nil, err
		}
		c, err := readFloat(r)
		if err != nil {
			return nil, err
		}
		out[k] = c
	}
	return out, nil
}

// CovarCodec serializes degree-m matrix-ring payloads. The codec is
// bound to a ring; the wire format depends on the degree, which Tag
// exposes so snapshot headers can reject a mismatched configuration
// before misparsing payload bytes.
type CovarCodec struct{ Ring CovarRing }

// Tag names this codec configuration, including the degree.
func (c CovarCodec) Tag() string { return fmt.Sprintf("ring.CovarCodec[m=%d]", c.Ring.m) }

// Encode writes a presence flag, the degree, and the flat components.
func (c CovarCodec) Encode(w io.Writer, v *Covar) error {
	if v == nil {
		return writeUvarint(w, 0)
	}
	if v.m != c.Ring.m {
		return fmt.Errorf("ring: encoding degree-%d payload with degree-%d codec", v.m, c.Ring.m)
	}
	if err := writeUvarint(w, 1); err != nil {
		return err
	}
	if err := writeFloat(w, v.C); err != nil {
		return err
	}
	for _, s := range v.S {
		if err := writeFloat(w, s); err != nil {
			return err
		}
	}
	for _, q := range v.Q {
		if err := writeFloat(w, q); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one payload (nil for the zero flag).
func (c CovarCodec) Decode(r io.Reader) (*Covar, error) {
	flag, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if flag == 0 {
		return nil, nil
	}
	out := c.Ring.One()
	if out.C, err = readFloat(r); err != nil {
		return nil, err
	}
	for i := range out.S {
		if out.S[i], err = readFloat(r); err != nil {
			return nil, err
		}
	}
	for i := range out.Q {
		if out.Q[i], err = readFloat(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RangedCovarCodec serializes ranged degree-m payloads. Ranges are
// self-describing, so the codec needs no ring binding.
type RangedCovarCodec struct{}

// Encode writes a presence flag, the range, and the flat components.
func (RangedCovarCodec) Encode(w io.Writer, v *RangedCovar) error {
	if v == nil {
		return writeUvarint(w, 0)
	}
	if err := writeUvarint(w, 1); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(v.Start)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(v.N)); err != nil {
		return err
	}
	if err := writeFloat(w, v.C); err != nil {
		return err
	}
	for _, s := range v.S {
		if err := writeFloat(w, s); err != nil {
			return err
		}
	}
	for _, q := range v.Q {
		if err := writeFloat(w, q); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one payload (nil for the zero flag).
func (RangedCovarCodec) Decode(r io.Reader) (*RangedCovar, error) {
	flag, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if flag == 0 {
		return nil, nil
	}
	start, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	// Real degrees are the query's aggregate count — tens at most. A
	// loose bound here would still let a corrupt snapshot drive the
	// quadratic Q allocation (n*(n+1)/2 floats) to terabytes.
	if n > 1<<10 {
		return nil, fmt.Errorf("ring: ranged payload degree %d exceeds limit", n)
	}
	out := &RangedCovar{Start: int(start), N: int(n), S: make([]float64, n), Q: make([]float64, n*(n+1)/2)}
	if out.C, err = readFloat(r); err != nil {
		return nil, err
	}
	for i := range out.S {
		if out.S[i], err = readFloat(r); err != nil {
			return nil, err
		}
	}
	for i := range out.Q {
		if out.Q[i], err = readFloat(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RelCovarCodec serializes generalized degree-m payloads. Like
// CovarCodec its wire format depends on the degree, exposed via Tag.
type RelCovarCodec struct{ Ring RelCovarRing }

// Tag names this codec configuration, including the degree.
func (c RelCovarCodec) Tag() string { return fmt.Sprintf("ring.RelCovarCodec[m=%d]", c.Ring.m) }

// Encode writes a presence flag and the relational components.
func (c RelCovarCodec) Encode(w io.Writer, v *RelCovar) error {
	if v == nil {
		return writeUvarint(w, 0)
	}
	if v.m != c.Ring.m {
		return fmt.Errorf("ring: encoding degree-%d payload with degree-%d codec", v.m, c.Ring.m)
	}
	if err := writeUvarint(w, 1); err != nil {
		return err
	}
	var rc RelValCodec
	if err := rc.Encode(w, v.C); err != nil {
		return err
	}
	for _, s := range v.S {
		if err := rc.Encode(w, s); err != nil {
			return err
		}
	}
	for _, q := range v.Q {
		if err := rc.Encode(w, q); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one payload (nil for the zero flag).
func (c RelCovarCodec) Decode(r io.Reader) (*RelCovar, error) {
	flag, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if flag == 0 {
		return nil, nil
	}
	out := c.Ring.One()
	var rc RelValCodec
	if out.C, err = rc.Decode(r); err != nil {
		return nil, err
	}
	for i := range out.S {
		if out.S[i], err = rc.Decode(r); err != nil {
			return nil, err
		}
	}
	for i := range out.Q {
		if out.Q[i], err = rc.Decode(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BufferedEncode wraps enc in a bufio.Writer for callers doing many
// small writes; it flushes before returning.
func BufferedEncode[V any](w io.Writer, c Codec[V], vs []V) error {
	bw := bufio.NewWriter(w)
	for _, v := range vs {
		if err := c.Encode(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package ring

import (
	"sort"
	"strings"

	"repro/internal/value"
)

// RelVal is a value of the relational ring: a finite map from tuples
// (encoded with value.Tuple.Encode, hence self-describing) to float64
// coefficients. The empty map is the ring's zero; {() -> 1} is its one.
//
// Addition is union with coefficient summation; multiplication joins the
// two relations by concatenating keys, which matches the paper's use
// where factors always have disjoint schemas (c has schema ∅, s_X has
// schema {X}, products build schema {X,Y}).
//
// A nil RelVal is a valid zero. RelVals are immutable by convention:
// ring operations return fresh maps. They also never hold an explicit
// zero coefficient — constructors and ring operations drop cancelled
// entries — which is what makes Add associative up to representation:
// the empty-side fast paths of Add return the other operand unfiltered,
// so a smuggled-in zero entry would survive one association order and
// cancel in another.
type RelVal map[string]float64

// RelOne returns the multiplicative identity {() -> 1}.
func RelOne() RelVal { return RelVal{"": 1} }

// RelSingle returns the singleton relation {t -> coeff}, or the nil
// zero for coeff 0 (RelVals keep no explicit zero coefficients).
func RelSingle(t value.Tuple, coeff float64) RelVal {
	if coeff == 0 {
		return nil
	}
	return RelVal{t.Encode(): coeff}
}

// Get returns the coefficient of tuple t (0 when absent).
func (r RelVal) Get(t value.Tuple) float64 { return r[t.Encode()] }

// Scalar returns the coefficient of the empty tuple; for 0-dimensional
// values (continuous aggregates) this is the whole payload.
func (r RelVal) Scalar() float64 { return r[""] }

// Len returns the number of tuples with non-zero coefficient.
func (r RelVal) Len() int { return len(r) }

// Clone returns a deep copy of r.
func (r RelVal) Clone() RelVal {
	if r == nil {
		return nil
	}
	out := make(RelVal, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Equal reports whether two relational values hold the same tuples with
// the same coefficients.
func (r RelVal) Equal(o RelVal) bool {
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the relation with keys decoded and sorted, e.g.
// "{(c1)->1, (c2)->2}". The empty-tuple key renders as "()".
func (r RelVal) String() string {
	if len(r) == 0 {
		return "{}"
	}
	type kv struct {
		t value.Tuple
		c float64
	}
	items := make([]kv, 0, len(r))
	for k, c := range r {
		items = append(items, kv{value.MustDecodeTuple(k), c})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].t.Compare(items[j].t) < 0 })
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.t.String())
		b.WriteString("->")
		b.WriteString(value.Float(it.c).String())
	}
	b.WriteByte('}')
	return b.String()
}

// Relational is the ring over relations: union as +, key-concatenating
// join as ×, the empty relation as 0, {() -> 1} as 1.
type Relational struct{}

// Zero returns the empty relation (nil).
func (Relational) Zero() RelVal { return nil }

// One returns {() -> 1}.
func (Relational) One() RelVal { return RelOne() }

// Add returns the union of a and b with summed coefficients; tuples whose
// coefficients cancel are dropped.
func (Relational) Add(a, b RelVal) RelVal {
	if len(a) == 0 {
		return b.Clone()
	}
	if len(b) == 0 {
		return a.Clone()
	}
	out := make(RelVal, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		s := out[k] + v
		if s == 0 {
			delete(out, k)
		} else {
			out[k] = s
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Mul returns the product: every pair of tuples concatenates and their
// coefficients multiply. Since encodings are self-delimiting, key
// concatenation is string concatenation.
func (Relational) Mul(a, b RelVal) RelVal {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(RelVal, len(a)*len(b))
	for ka, va := range a {
		for kb, vb := range b {
			k := ka + kb
			s := out[k] + va*vb
			if s == 0 {
				delete(out, k)
			} else {
				out[k] = s
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Neg negates every coefficient.
func (Relational) Neg(a RelVal) RelVal {
	if len(a) == 0 {
		return nil
	}
	out := make(RelVal, len(a))
	for k, v := range a {
		out[k] = -v
	}
	return out
}

// IsZero reports whether a is the empty relation.
func (Relational) IsZero(a RelVal) bool { return len(a) == 0 }

// relScale returns c*a without allocating when c == 1.
func relScale(a RelVal, c float64) RelVal {
	if c == 0 || len(a) == 0 {
		return nil
	}
	if c == 1 {
		return a
	}
	out := make(RelVal, len(a))
	for k, v := range a {
		out[k] = v * c
	}
	return out
}

// relAddInto accumulates src (scaled by c) into dst, returning dst
// (allocating it if nil). It is the package-internal mutable fast path
// used by RelCovar operations on freshly allocated accumulators.
func relAddInto(dst, src RelVal, c float64) RelVal {
	if c == 0 || len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(RelVal, len(src))
	}
	for k, v := range src {
		s := dst[k] + v*c
		if s == 0 {
			delete(dst, k)
		} else {
			dst[k] = s
		}
	}
	return dst
}

// relMulInto accumulates a×b (scaled by c) into dst, returning dst.
func relMulInto(dst RelVal, a, b RelVal, c float64) RelVal {
	if c == 0 || len(a) == 0 || len(b) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(RelVal, len(a)*len(b))
	}
	for ka, va := range a {
		for kb, vb := range b {
			k := ka + kb
			s := dst[k] + va*vb*c
			if s == 0 {
				delete(dst, k)
			} else {
				dst[k] = s
			}
		}
	}
	return dst
}

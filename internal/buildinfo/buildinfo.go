// Package buildinfo renders the binary's embedded build metadata for
// -version flags: module version when built from a tagged module, VCS
// revision and time when built from a checkout, plus the Go toolchain.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version returns a one-line human-readable build description, e.g.
//
//	repro (devel) rev 1a2b3c4d (2026-08-08T10:00:00Z, dirty) go1.22.5 linux/amd64
func Version() string {
	var b strings.Builder
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprintf(&b, "unknown %s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return b.String()
	}
	path := bi.Main.Path
	if path == "" {
		path = "repro"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	fmt.Fprintf(&b, "%s %s", path, ver)
	var rev, at string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		if at != "" || dirty {
			b.WriteString(" (")
			b.WriteString(at)
			if dirty {
				if at != "" {
					b.WriteString(", ")
				}
				b.WriteString("dirty")
			}
			b.WriteString(")")
		}
	}
	fmt.Fprintf(&b, " %s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return b.String()
}

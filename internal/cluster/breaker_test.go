package cluster

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	if !b.allow() || b.current() != breakerClosed {
		t.Fatal("new breaker must be closed and allowing")
	}
	// Failures below the threshold keep it closed; a success resets
	// the streak.
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if b.current() != breakerClosed {
		t.Fatalf("state after interrupted streak = %v, want closed", b.current())
	}
	b.onFailure()
	if b.current() != breakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.current())
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but the probe was rejected")
	}
	if b.current() != breakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.current())
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent request")
	}

	// A failed probe re-opens for another full cooldown.
	b.onFailure()
	if b.current() != breakerOpen || b.allow() {
		t.Fatal("failed probe must re-open the breaker immediately")
	}
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("second cooldown elapsed but the probe was rejected")
	}
	// A successful probe closes it fully.
	b.onSuccess()
	if b.current() != breakerClosed || !b.allow() {
		t.Fatal("successful probe must close the breaker")
	}
}

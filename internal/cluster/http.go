package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/fivm/client"
	"repro/internal/serve"
	"repro/internal/value"
	"repro/internal/wal"
)

// Handler exposes the router over the same v1 wire protocol as one
// worker — a cluster is a drop-in replacement for a single fivm-serve
// from the client's point of view:
//
//	POST /v1/update   sub-batched to the owning shards, acked only when
//	                  every touched shard acks (applied + WAL-logged)
//	GET  /v1/model    per-shard partials ring-merged; 503 unless every
//	                  shard covers this router's acked writes, or
//	                  ?stale=1 to merge the reachable shards and flag
//	                  the gap in the "cluster" envelope
//	GET  /v1/predict  prediction from the merged model (?stale=1 as
//	                  above)
//	GET  /v1/stats    aggregated counters plus per-worker detail
//	GET  /v1/healthz  200 only when every shard is healthy
//	GET  /v1/viewtree the shared view tree (rendered locally)
//	GET  /metrics     the router's own Prometheus exposition, including
//	                  per-shard up/acked/applied series
//
// Errors use the same v1 envelope as the workers.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", rt.handleUpdate)
	mux.HandleFunc("GET /v1/model", rt.handleModel)
	mux.HandleFunc("GET /v1/predict", rt.handlePredict)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/viewtree", rt.handleViewTree)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	rt.writes.Inc()
	// The client's batch ID is forwarded verbatim to every shard, so a
	// client-level retry of the whole request dedups there; a write
	// without one gets a router-minted ID, so the router's own
	// per-shard retries stay idempotent regardless of the client.
	batchID := r.Header.Get(serve.BatchIDHeader)
	if batchID != "" {
		if _, err := wal.ParseBatchID(batchID); err != nil {
			rt.writeErrors.Inc()
			serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest,
				fmt.Errorf("%s: %w", serve.BatchIDHeader, err))
			return
		}
	} else {
		batchID = rt.mintBatchID()
	}
	raws, ups, err := serve.DecodeUpdates(r.Body)
	if err != nil {
		rt.writeErrors.Inc()
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, err)
		return
	}
	// Owners: the owning shard for anchor updates, -1 (broadcast) for
	// the rest. Unknown relations fail the whole batch up front — no
	// shard has been touched yet, so rejecting is free.
	owners := make([]int, len(ups))
	for i, u := range ups {
		if _, ok := rt.arity[u.Rel]; !ok {
			rt.writeErrors.Inc()
			serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest,
				fmt.Errorf("updates[%d]: unknown relation %s (cluster serves %v)", i, u.Rel, rt.merger.RelationNames()))
			return
		}
		if u.Rel == rt.smap.Anchor() {
			owners[i] = rt.smap.Owner(u.Tuple)
		} else {
			owners[i] = -1
		}
	}
	perShard, deduped, failed := rt.fanOutWrite(r.Context(), batchID, rt.subBatches(raws, owners))
	if len(failed) > 0 {
		rt.writeErrors.Inc()
		ids := make([]int, len(failed))
		allOverloaded := true
		retries := make([]shardRetryDetail, len(failed))
		for i, f := range failed {
			ids[i] = f.id
			retries[i] = shardRetryDetail{
				Shard: f.id, Attempts: f.attempts, Exhausted: f.exhausted, Error: f.err.Error(),
			}
			var ae *client.APIError
			if !errors.As(f.err, &ae) || ae.Status != http.StatusTooManyRequests {
				allOverloaded = false
			}
		}
		err := fmt.Errorf("cluster: %d of %d touched shards failed to ack (shards %v, first: %w); sub-batches acked by other shards are applied and will be visible", len(failed), countTouched(perShard, failed), ids, failed[0].err)
		if allOverloaded {
			// Pure backpressure: every failing shard shed its sub-batch
			// before enqueueing, so the client should simply retry.
			serve.WriteRetryError(w, http.StatusTooManyRequests, serve.CodeOverloaded, err, time.Second)
			return
		}
		// The standard envelope plus per-shard retry detail: how many
		// attempts each failing shard got and whether the router gave
		// up because the retry budget ran dry (exhausted) or because
		// the rejection was terminal.
		serve.WriteJSON(w, http.StatusServiceUnavailable, retryErrorEnvelope{
			ErrorEnvelope: serve.ErrorEnvelope{Error: err.Error(), Code: serve.CodeUnavailable},
			Retries:       retries,
		})
		return
	}
	ack := map[string]any{
		"accepted": len(ups),
		"applied":  true,
		"shards":   perShard,
	}
	if deduped > 0 {
		ack["deduped"] = deduped
	}
	serve.WriteJSON(w, http.StatusAccepted, ack)
}

// shardRetryDetail is one failing shard's row in the 503 envelope.
type shardRetryDetail struct {
	Shard int `json:"shard"`
	// Attempts counts requests actually sent (0: the circuit breaker
	// failed the write fast).
	Attempts int `json:"attempts"`
	// Exhausted is true when retryable failures outlived the retry
	// budget, false when the shard's rejection was terminal.
	Exhausted bool   `json:"exhausted"`
	Error     string `json:"error"`
}

// retryErrorEnvelope extends the uniform v1 error envelope with the
// router's per-shard retry detail.
type retryErrorEnvelope struct {
	serve.ErrorEnvelope
	Retries []shardRetryDetail `json:"retries"`
}

func countTouched(perShard map[string]int, failed []shardError) int {
	return len(perShard) + len(failed)
}

// cluster is the merged-read envelope extension: shard topology and
// coverage of the response.
type clusterEnvelope struct {
	Shards  int    `json:"shards"`
	Merged  int    `json:"merged"`
	Stale   bool   `json:"stale"`
	Missing []int  `json:"missing,omitempty"`
	Acked   uint64 `json:"acked"`
}

func envelopeOf(rt *Router, info *mergeInfo) clusterEnvelope {
	return clusterEnvelope{
		Shards:  len(rt.shards),
		Merged:  info.Merged,
		Stale:   len(info.Missing) > 0,
		Missing: info.Missing,
		Acked:   info.Acked,
	}
}

func (rt *Router) handleModel(w http.ResponseWriter, r *http.Request) {
	rt.reads.Inc()
	stale, _ := strconv.ParseBool(r.URL.Query().Get("stale"))
	model, info, err := rt.mergedModel(r.Context(), stale)
	if err != nil {
		rt.readErrors.Inc()
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable, err)
		return
	}
	body, err := model.ResultJSON()
	if err != nil {
		rt.readErrors.Inc()
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable, err)
		return
	}
	out, ok := body.(map[string]any)
	if !ok {
		out = map[string]any{"result": body}
	}
	out["kind"] = model.Kind()
	out["cluster"] = envelopeOf(rt, info)
	serve.WriteJSON(w, http.StatusOK, out)
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	rt.reads.Inc()
	q := r.URL.Query()
	stale, _ := strconv.ParseBool(q.Get("stale"))
	model, info, err := rt.mergedModel(r.Context(), stale)
	if err != nil {
		rt.readErrors.Inc()
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable, err)
		return
	}
	x := make(map[string]value.Value)
	for k, vs := range q {
		if k == "stale" {
			continue
		}
		if len(vs) > 0 {
			x[k] = serve.ParseValue(vs[0])
		}
	}
	p, err := model.Predict(x)
	if err != nil {
		rt.readErrors.Inc()
		serve.WriteError(w, http.StatusUnprocessableEntity, serve.CodeUnprocessable, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"prediction": p,
		"count":      model.Count(),
		"cluster":    envelopeOf(rt, info),
	})
}

// workerStatus is one shard's row in the aggregated /v1/stats and
// /v1/healthz bodies.
type workerStatus struct {
	ID             int    `json:"id"`
	URL            string `json:"url"`
	OK             bool   `json:"ok"`
	Error          string `json:"error,omitempty"`
	AckedUpdates   uint64 `json:"acked_updates"`
	AppliedUpdates uint64 `json:"applied_updates"`
	Ingested       uint64 `json:"ingested"`
	Shed           uint64 `json:"shed"`
	WALEnabled     bool   `json:"wal_enabled"`
}

// handleStats aggregates every reachable worker's counters. The
// "shards" object keeps the worker wire shape (relation → arity), so
// discovery-driven tools (the loadgen) work unchanged against a router.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	workers := make([]workerStatus, len(rt.shards))
	var ingested, applied, shed uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shardRef) {
			defer wg.Done()
			ws := workerStatus{ID: sh.id, URL: sh.url, AckedUpdates: sh.acked.Load()}
			st, err := sh.cli.Stats(r.Context())
			if err != nil {
				sh.up.Store(false)
				ws.Error = err.Error()
			} else {
				sh.up.Store(true)
				ws.OK = true
				ws.Ingested, ws.Shed = st.Ingested, st.Shed
				ws.WALEnabled = st.WAL.Enabled
				ws.AppliedUpdates = st.Applied
				if st.WAL.Enabled {
					ws.AppliedUpdates = st.WAL.AppliedUpdates
				}
				sh.applied.Store(ws.AppliedUpdates)
				mu.Lock()
				ingested += st.Ingested
				applied += st.Applied
				shed += st.Shed
				mu.Unlock()
			}
			workers[i] = ws
		}(i, sh)
	}
	wg.Wait()
	shards := make(map[string]map[string]int, len(rt.arity))
	for rel, n := range rt.arity {
		shards[rel] = map[string]int{"arity": n}
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"cluster":     true,
		"kind":        rt.merger.Kind(),
		"shard_count": len(rt.shards),
		"shard_by":    rt.smap.Anchor(),
		"ingested":    ingested,
		"applied":     applied,
		"shed":        shed,
		"shards":      shards,
		"workers":     workers,
	})
}

// handleHealthz answers 200 only when every shard is reachable and
// healthy; otherwise 503 with per-shard detail, so an orchestrator
// probes the whole serving tier through one endpoint.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type workerHealth struct {
		ID    int    `json:"id"`
		URL   string `json:"url"`
		OK    bool   `json:"ok"`
		Error string `json:"error,omitempty"`
	}
	workers := make([]workerHealth, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shardRef) {
			defer wg.Done()
			wh := workerHealth{ID: sh.id, URL: sh.url}
			h, err := sh.cli.Healthz(r.Context())
			switch {
			case err != nil:
				sh.up.Store(false)
				wh.Error = err.Error()
			case !h.OK:
				sh.up.Store(true)
				wh.Error = "unhealthy"
			default:
				sh.up.Store(true)
				wh.OK = true
			}
			workers[i] = wh
		}(i, sh)
	}
	wg.Wait()
	ok := true
	for _, wh := range workers {
		ok = ok && wh.OK
	}
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, code, map[string]any{
		"ok":          ok,
		"cluster":     true,
		"shard_count": len(rt.shards),
		"workers":     workers,
	})
}

func (rt *Router) handleViewTree(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, rt.merger.ViewTree())
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.WritePrometheus(w)
}

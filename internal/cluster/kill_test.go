package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/fivm"
	"repro/fivm/client"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/value"
	"repro/internal/view"
	"repro/internal/wal"
)

// durableWorker is a restartable in-process fivm-serve worker with a
// WAL: crash() abandons the serving pipeline mid-flight (listener and
// connections die, nothing is flushed or checkpointed — the in-process
// analogue of kill -9), and start() recovers a fresh engine from the
// same WAL directory on the same address.
type durableWorker struct {
	t    *testing.T
	cfg  fivm.Config
	dir  string
	addr string
	hsrv *http.Server
}

func (w *durableWorker) URL() string { return "http://" + w.addr }

func (w *durableWorker) start() {
	w.t.Helper()
	if w.addr == "" {
		w.addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", w.addr)
	if err != nil {
		w.t.Fatal(err)
	}
	w.addr = ln.Addr().String()
	eng, err := fivm.Open(w.cfg)
	if err != nil {
		w.t.Fatal(err)
	}
	// PolicyOff still survives a process kill (appends are unbuffered
	// writes); only power loss needs always/interval.
	wl, err := wal.Open(wal.Config{Dir: w.dir, Fsync: wal.PolicyOff, SegmentBytes: 1 << 20})
	if err != nil {
		w.t.Fatal(err)
	}
	if _, err := serve.Recover(eng, wl); err != nil {
		w.t.Fatalf("recovering %s: %v", w.dir, err)
	}
	srv, err := serve.New(eng, serve.Config{WAL: wl, CheckpointInterval: -1})
	if err != nil {
		w.t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil {
		w.t.Fatalf("boot checkpoint: %v", err)
	}
	w.hsrv = &http.Server{Handler: serve.NewHandler(srv)}
	go w.hsrv.Serve(ln)
	// The abandoned pipeline from a previous crash() keeps its goroutines
	// until the test binary exits — exactly like a killed process's state
	// is simply gone. Nothing to clean up beyond the HTTP server.
	w.t.Cleanup(func() { w.hsrv.Close() })
}

// crash kills the worker's HTTP front end — listener and all live
// connections — without closing the pipeline or the WAL, so no final
// checkpoint or drain happens. Acked updates must survive on the WAL
// alone.
func (w *durableWorker) crash() { w.hsrv.Close() }

// TestClusterKillShardAckSemantics proves the ack protocol end to end:
// kill one of two WAL-backed shards mid-stream, keep writing through
// the router, restart the shard, and require the merged model to equal
// a single reference engine fed exactly the acked updates — no acked
// update lost, no unacked update resurrected.
func TestClusterKillShardAckSemantics(t *testing.T) {
	ctx := context.Background()
	cfg := fivm.Config{
		Relations: testRels(),
		Query:     "SELECT B, SUM(1) FROM R NATURAL JOIN S GROUP BY B",
	}
	dir := t.TempDir()
	w0 := &durableWorker{t: t, cfg: cfg, dir: filepath.Join(dir, "shard-0")}
	w1 := &durableWorker{t: t, cfg: cfg, dir: filepath.Join(dir, "shard-1")}
	w0.start()
	w1.start()

	rt, err := cluster.New(cluster.Config{
		ShardURLs:     []string{w0.URL(), w1.URL()},
		Engine:        cfg,
		ProbeInterval: -1,
		CoverWait:     1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	defer rt.Close()
	cli := client.New(hs.URL, client.WithRetries(0))

	// Pre-classify R join keys by owning shard via the exported shard
	// map — the same function the router applies per update.
	var ownedA [2][]int
	for a := 0; len(ownedA[0]) < 8 || len(ownedA[1]) < 8; a++ {
		o := rt.Map().Owner(value.T(a, a%5))
		ownedA[o] = append(ownedA[o], a)
	}
	rOwned := func(shard, i int) twin {
		a := ownedA[shard][i]
		return newTwin("R", 1, a, a%5)
	}

	var reference []view.Update // exactly the updates the cluster acked
	var shard1Acked int         // updates shard 1 acked before the crash
	ack := func(b []twin) {
		t.Helper()
		wire := make([]client.Update, len(b))
		for i, tw := range b {
			wire[i] = tw.wire
			reference = append(reference, tw.ref)
		}
		if _, err := cli.Update(ctx, wire, true); err != nil {
			t.Fatalf("acked write failed: %v", err)
		}
	}

	// Phase 1 — both shards up: anchor tuples for both shards plus
	// broadcast S rows, all acked.
	ack([]twin{rOwned(0, 0), rOwned(1, 0), newTwin("S", 1, ownedA[0][0], 1, 2)})
	ack([]twin{rOwned(1, 1), newTwin("S", 1, ownedA[1][0], 3, 4)})
	shard1Acked = 2 /* owned[1] tuples */ + 2 /* broadcast S rows */

	// Phase 2 — kill shard 1 and keep writing.
	w1.crash()

	// A batch touching only shard 0 still acks and must survive.
	ack([]twin{rOwned(0, 1)})

	// A batch touching only the dead shard fails as a whole: 503, and
	// the update is NOT acked — it must not appear after recovery.
	if _, err := cli.Update(ctx, []client.Update{rOwned(1, 2).wire}, true); err == nil {
		t.Fatal("write to dead shard unexpectedly acked")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
			t.Fatalf("write to dead shard: got %v, want a 503 APIError", err)
		}
	}

	// A mixed batch spanning both shards also fails as a whole, but the
	// live shard's sub-batch was acked by that shard and remains applied
	// (the router's error says so) — the reference must include it.
	if _, err := cli.Update(ctx, []client.Update{rOwned(0, 2).wire, rOwned(1, 3).wire}, true); err == nil {
		t.Fatal("mixed batch with a dead shard unexpectedly acked")
	}
	reference = append(reference, rOwned(0, 2).ref)

	// Reads while a shard is down: a strict merged read refuses rather
	// than serving a partial answer...
	if _, err := rt.MergedModel(ctx); err == nil {
		t.Fatal("strict merged read succeeded with a dead shard")
	}
	// ...and a ?stale=1 read serves the reachable shards, flagging the
	// gap in the cluster envelope.
	resp, err := http.Get(hs.URL + "/v1/model?stale=1")
	if err != nil {
		t.Fatal(err)
	}
	var staleBody struct {
		Cluster struct {
			Stale   bool  `json:"stale"`
			Missing []int `json:"missing"`
			Merged  int   `json:"merged"`
		} `json:"cluster"`
	}
	err = json.NewDecoder(resp.Body).Decode(&staleBody)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !staleBody.Cluster.Stale ||
		staleBody.Cluster.Merged != 1 || len(staleBody.Cluster.Missing) != 1 || staleBody.Cluster.Missing[0] != 1 {
		t.Fatalf("stale read = status %d, cluster %+v; want 200 with stale=true missing=[1] merged=1",
			resp.StatusCode, staleBody.Cluster)
	}

	// Phase 3 — restart shard 1 from its WAL on the same address.
	w1.start()

	// Every acked update — and only those — must be visible in the
	// strict merged read once the shard has recovered.
	m, err := rt.MergedModel(ctx)
	if err != nil {
		t.Fatalf("merged read after recovery: %v", err)
	}
	ref, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Apply(reference); err != nil {
		t.Fatal(err)
	}
	want := resultJSONBytes(t, ref.PublishModel(nil))
	if got := resultJSONBytes(t, m); string(got) != string(want) {
		t.Errorf("post-recovery merged model diverges from acked reference\n got: %s\nwant: %s", got, want)
	}

	// The restarted shard's WAL must have recovered at least every
	// update it acked before the kill.
	st, err := client.New(w1.URL()).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.WAL.Enabled || st.WAL.RecoveredUpdates < uint64(shard1Acked) {
		t.Errorf("shard 1 recovered %d updates (wal enabled %v), want >= %d acked before the kill",
			st.WAL.RecoveredUpdates, st.WAL.Enabled, shard1Acked)
	}
}

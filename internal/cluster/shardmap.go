// Package cluster is the multi-node serving layer: a shard map that
// partitions the anchor relation by the engine's own join-key hash, and
// a stateless router that fans v1 API writes out to fivm-serve workers
// and ring-merges their partial results on reads.
//
// Correctness rests on two properties of the F-IVM payload rings:
//
//   - Sharding: exactly one relation — the anchor — is partitioned by
//     join key across workers; every other relation is broadcast to all
//     of them. Shard i then maintains Q(anchor_i ⋈ others), and since
//     the anchor partitions are disjoint with union the full relation,
//     distributivity of the join over union gives
//     Σ_ring_i Q(anchor_i ⋈ others) = Q(anchor ⋈ others).
//   - Merging: ring addition is associative and commutative, so the
//     per-shard partial results sum to the single-engine result in any
//     order — bit-identically for exact rings (the integer rings, and
//     float payloads over integer-valued data).
//
// Read-your-writes: the router acks a write only after every touched
// shard has applied and (when WAL-enabled) logged its sub-batch
// (?wait=1), and it tracks the cumulative acked count per shard. A
// merged read requires each shard's partial to cover that count (the
// X-Fivm-Applied header), so every acknowledged write is visible in
// every subsequent merged read.
package cluster

import (
	"repro/internal/relation"
	"repro/internal/value"
)

// ShardMap assigns anchor-relation tuples to shards using the SAME
// partition function the engine applies internally
// (relation.Map.Partition): FNV-1a over the tuple's encoded join-key
// projection, modulo the shard count. An update's owning shard is
// therefore computed identically to the engine's in-process
// partitioning.
type ShardMap struct {
	shards int
	anchor string
	keyIdx []int
}

// NewShardMap builds a map over n shards for the anchor relation whose
// join-key positions are keyIdx (from Engine.PartitionKey).
func NewShardMap(n int, anchor string, keyIdx []int) *ShardMap {
	if n < 1 {
		n = 1
	}
	return &ShardMap{shards: n, anchor: anchor, keyIdx: keyIdx}
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Anchor returns the partitioned relation's name; updates to any other
// relation broadcast to every shard.
func (m *ShardMap) Anchor() string { return m.anchor }

// Owner returns the shard owning an anchor-relation tuple.
func (m *ShardMap) Owner(t value.Tuple) int {
	h, _ := relation.HashTuple(t, m.keyIdx, nil)
	return int(h % uint64(m.shards))
}

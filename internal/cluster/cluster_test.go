package cluster_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/fivm"
	"repro/fivm/client"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/value"
	"repro/internal/view"
)

// testRels is the shared schema: R(A,B) ⋈ S(A,C,D) on A. R is the
// default anchor (first declared), so R updates partition across shards
// and S updates broadcast.
func testRels() []fivm.RelationSpec {
	return []fivm.RelationSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"A", "C", "D"}},
	}
}

// engineConfigs covers all six engine kinds over the shared schema.
func engineConfigs() map[string]fivm.Config {
	return map[string]fivm.Config{
		"count":       {Relations: testRels(), Query: "SELECT B, SUM(1) FROM R NATURAL JOIN S GROUP BY B"},
		"float":       {Relations: testRels(), Query: "SELECT SUM(B * D) FROM R NATURAL JOIN S"},
		"covar":       {Relations: testRels(), Attrs: []string{"B", "D"}},
		"rangedcovar": {Kind: fivm.KindRangedCovar, Relations: testRels(), Attrs: []string{"B", "D"}},
		"join":        {Relations: testRels()},
		"analysis": {Relations: testRels(), Label: "B",
			Features: []fivm.FeatureSpec{{Attr: "B"}, {Attr: "C", Categorical: true}, {Attr: "D"}}},
	}
}

// startWorker boots one in-process fivm-serve worker over cfg.
func startWorker(t *testing.T, cfg fivm.Config) *httptest.Server {
	t.Helper()
	eng, err := fivm.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(serve.NewHandler(srv))
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs
}

// startCluster boots n workers plus a router over them and returns the
// router and a client speaking to the router's HTTP surface.
func startCluster(t *testing.T, cfg fivm.Config, n int) (*cluster.Router, *client.Client) {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		urls[i] = startWorker(t, cfg).URL
	}
	rt, err := cluster.New(cluster.Config{
		ShardURLs:     urls,
		Engine:        cfg,
		ProbeInterval: -1, // no background prober in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		hs.Close()
		rt.Close()
	})
	return rt, client.New(hs.URL, client.WithRetries(0))
}

// twin is one update in both wire forms: the typed client update the
// router receives and the in-process view update the reference engine
// applies. Both carry the same value.Int data.
type twin struct {
	wire client.Update
	ref  view.Update
}

func newTwin(rel string, mult int, vals ...int) twin {
	tuple := make([]any, len(vals))
	avals := make([]any, len(vals))
	for i, v := range vals {
		tuple[i] = v
		avals[i] = v
	}
	return twin{
		wire: client.NewUpdate(rel, mult, tuple...),
		ref:  view.Update{Rel: rel, Tuple: value.T(avals...), Mult: mult},
	}
}

// stream generates a deterministic batched update mix: inserts into R
// and S over a small overlapping value domain, with ~20% deletes of
// previously inserted tuples (each at most once).
func stream(seed int64, n, batch int) [][]twin {
	rng := rand.New(rand.NewSource(seed))
	var live []twin
	var all []twin
	for i := 0; i < n; i++ {
		if len(live) > 10 && rng.Intn(5) == 0 {
			j := rng.Intn(len(live))
			ins := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			del := newTwin(ins.ref.Rel, -1)
			del.wire.Tuple = ins.wire.Tuple
			del.ref.Tuple = ins.ref.Tuple
			all = append(all, del)
			continue
		}
		var tw twin
		if rng.Intn(2) == 0 {
			tw = newTwin("R", 1, rng.Intn(6), rng.Intn(8))
		} else {
			tw = newTwin("S", 1, rng.Intn(6), rng.Intn(8), rng.Intn(8))
		}
		live = append(live, tw)
		all = append(all, tw)
	}
	var out [][]twin
	for len(all) > 0 {
		k := batch
		if k > len(all) {
			k = len(all)
		}
		out = append(out, all[:k])
		all = all[k:]
	}
	return out
}

func resultJSONBytes(t *testing.T, m fivm.Model) []byte {
	t.Helper()
	body, err := m.ResultJSON()
	if err != nil {
		t.Fatalf("ResultJSON: %v", err)
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterEquivalence drives the same update stream through 1-, 2-,
// and 4-shard clusters and through a single in-process engine, for all
// six engine kinds, and requires the ring-merged cluster model to be
// bit-identical (as rendered JSON) to the single engine's. This is the
// paper's distributivity argument made executable: partials over
// disjoint anchor partitions sum to the monolithic result exactly.
func TestClusterEquivalence(t *testing.T) {
	ctx := context.Background()
	batches := stream(42, 300, 25)
	for kind, cfg := range engineConfigs() {
		cfg := cfg
		t.Run(kind, func(t *testing.T) {
			ref, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				ups := make([]view.Update, len(b))
				for i, tw := range b {
					ups[i] = tw.ref
				}
				if err := ref.Apply(ups); err != nil {
					t.Fatal(err)
				}
			}
			want := resultJSONBytes(t, ref.PublishModel(nil))

			for _, shards := range []int{1, 2, 4} {
				rt, cli := startCluster(t, cfg, shards)
				for _, b := range batches {
					wire := make([]client.Update, len(b))
					for i, tw := range b {
						wire[i] = tw.wire
					}
					if _, err := cli.Update(ctx, wire, true); err != nil {
						t.Fatalf("shards=%d: update: %v", shards, err)
					}
				}
				m, err := rt.MergedModel(ctx)
				if err != nil {
					t.Fatalf("shards=%d: merged model: %v", shards, err)
				}
				if got := resultJSONBytes(t, m); string(got) != string(want) {
					t.Errorf("shards=%d: merged model diverges from single engine\n got: %s\nwant: %s", shards, got, want)
				}
			}
		})
	}
}

// TestClusterReadThroughHTTP reads the merged model over the router's
// own HTTP surface and checks the cluster envelope reports full
// coverage.
func TestClusterReadThroughHTTP(t *testing.T) {
	ctx := context.Background()
	cfg := engineConfigs()["count"]
	_, cli := startCluster(t, cfg, 2)
	ups := []client.Update{
		client.NewUpdate("R", 1, 1, 2),
		client.NewUpdate("R", 1, 2, 3),
		client.NewUpdate("S", 1, 1, 4, 5),
		client.NewUpdate("S", 1, 2, 4, 6),
	}
	if _, err := cli.Update(ctx, ups, true); err != nil {
		t.Fatal(err)
	}
	m, err := cli.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	env, ok := m.Body["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("model body has no cluster envelope: %v", m.Body)
	}
	if env["stale"] != false || env["merged"] != float64(2) || env["shards"] != float64(2) {
		t.Errorf("cluster envelope = %v, want merged=2 shards=2 stale=false", env)
	}
	if m.Body["total"] != float64(2) {
		t.Errorf("total = %v, want 2 (two R tuples joined)", m.Body["total"])
	}
	st, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 {
		t.Errorf("stats shards = %v, want the 2 relations for loadgen discovery", st.Shards)
	}
}

// TestShardMapMatchesEnginePartition locks the shard map to the
// engine-internal partition function: every anchor tuple's owner must
// be stable and within range, and distributing a few hundred tuples
// must touch every shard (FNV-1a spreads small int domains).
func TestShardMapMatchesEnginePartition(t *testing.T) {
	eng, err := fivm.Open(engineConfigs()["count"])
	if err != nil {
		t.Fatal(err)
	}
	keyIdx, ok := eng.PartitionKey("R")
	if !ok {
		t.Fatal("no partition key for R")
	}
	m := cluster.NewShardMap(4, "R", keyIdx)
	seen := make(map[int]int)
	for a := 0; a < 100; a++ {
		for b := 0; b < 3; b++ {
			tup := value.T(a, b)
			o := m.Owner(tup)
			if o < 0 || o >= 4 {
				t.Fatalf("owner %d out of range", o)
			}
			if o2 := m.Owner(tup); o2 != o {
				t.Fatalf("owner not stable: %d then %d", o, o2)
			}
			seen[o]++
		}
	}
	if len(seen) != 4 {
		t.Errorf("300 tuples landed on %d of 4 shards: %v", len(seen), seen)
	}
	// The join key of R in R ⋈ S is A: tuples differing only in B must
	// co-locate (the engine joins on A, so a shard owns a full A-group).
	for a := 0; a < 20; a++ {
		if m.Owner(value.T(a, 0)) != m.Owner(value.T(a, 99)) {
			t.Fatalf("tuples with equal join key A=%d landed on different shards", a)
		}
	}
}

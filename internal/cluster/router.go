package cluster

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/fivm"
	"repro/fivm/client"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Config builds a Router.
type Config struct {
	// ShardURLs are the worker base URLs, one per shard; shard i of the
	// shard map is ShardURLs[i], so the list's order IS the partition
	// assignment and must be identical on every router instance.
	ShardURLs []string
	// Engine is the cluster-wide engine configuration — the exact
	// config every worker runs. The router opens a data-less "merger"
	// engine from it for the shard map's join key, merged model
	// publishing, and the view-tree rendering.
	Engine fivm.Config
	// ShardBy names the anchor relation to partition; empty selects the
	// first declared relation. All other relations broadcast.
	ShardBy string
	// HTTPClient optionally replaces the transport used for shard
	// calls.
	HTTPClient *http.Client
	// CoverWait bounds how long a merged read waits for every shard's
	// partial to cover the router's acked counts before giving up
	// (default 2s).
	CoverWait time.Duration
	// ProbeInterval paces the background health prober feeding
	// /metrics gauges (default 2s; negative disables it).
	ProbeInterval time.Duration
	// RetryBudget bounds how long one write keeps retrying a shard's
	// transport failures and 503s (full-jitter exponential backoff
	// between attempts) before giving up on that shard; the request
	// context's deadline always wins when it is sooner. Default 2s;
	// negative disables per-shard retries entirely.
	RetryBudget time.Duration
	// BreakerThreshold is how many consecutive retryable failures open
	// a shard's circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// admitting a half-open probe (default 1s).
	BreakerCooldown time.Duration
}

// shardRef is the router's per-worker state: the client, and the
// monotonic counters the ack protocol and health aggregation ride on.
type shardRef struct {
	id  int
	url string
	cli *client.Client
	// acked is the cumulative count of updates this router has had
	// acknowledged (applied + WAL-logged) by the shard — the
	// read-your-writes floor a merged read must cover.
	acked atomic.Uint64
	// applied caches the shard's last observed cumulative applied
	// counter; up its last observed reachability. Both feed /metrics.
	applied atomic.Uint64
	up      atomic.Bool
	// brk fails writes to a persistently failing shard fast instead of
	// burning the whole retry budget against it on every request.
	brk *breaker
}

// Router fans v1 API traffic across the shard workers. It is stateless
// apart from the monotonic ack counters — a restarted router serves
// reads immediately (counters restart at zero, which only weakens
// read-your-writes to "writes acked by THIS router instance", the
// strongest claim a stateless tier can make).
type Router struct {
	cfg    Config
	smap   *ShardMap
	shards []*shardRef
	arity  map[string]int

	// merger is the data-less engine that decodes and ring-merges
	// per-shard partials; mergerMu serializes its use (MergePartials
	// swaps the result relation in place).
	merger   fivm.AnyEngine
	mergerMu sync.Mutex

	reg         *obs.Registry
	writes      *obs.Counter
	writeErrors *obs.Counter
	reads       *obs.Counter
	readErrors  *obs.Counter
	retries     *obs.Counter
	mergeLat    *obs.Histogram

	// origin + batchSeq mint batch IDs for writes that arrive without
	// an X-Fivm-Batch-Id, so the router's own per-shard retries are
	// idempotent even for clients that don't speak the header.
	origin   [16]byte
	batchSeq atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
}

// New builds a router over cfg.ShardURLs. It opens the merger engine
// (validating the engine config exactly as a worker would) but does not
// contact any shard: workers may come up after the router.
func New(cfg Config) (*Router, error) {
	if len(cfg.ShardURLs) == 0 {
		return nil, fmt.Errorf("cluster: no shard URLs")
	}
	if cfg.CoverWait <= 0 {
		cfg.CoverWait = 2 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	merger, err := fivm.Open(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening merger engine: %w", err)
	}
	anchor := cfg.ShardBy
	if anchor == "" {
		anchor = cfg.Engine.Relations[0].Name
	}
	keyIdx, ok := merger.PartitionKey(anchor)
	if !ok {
		return nil, fmt.Errorf("cluster: shard-by relation %s is not an input relation (have %v)", anchor, merger.RelationNames())
	}
	rt := &Router{
		cfg:    cfg,
		smap:   NewShardMap(len(cfg.ShardURLs), anchor, keyIdx),
		merger: merger,
		arity:  make(map[string]int),
		reg:    obs.NewRegistry(),
		stop:   make(chan struct{}),
	}
	_, _ = crand.Read(rt.origin[:])
	for _, rel := range merger.RelationNames() {
		n, _ := merger.Arity(rel)
		rt.arity[rel] = n
	}
	var opts []client.Option
	if cfg.HTTPClient != nil {
		opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
	}
	// The router does not retry 429s itself: backpressure must reach
	// the writing client, which owns the retry budget.
	opts = append(opts, client.WithRetries(0))
	for i, u := range cfg.ShardURLs {
		sh := &shardRef{
			id: i, url: u, cli: client.New(u, opts...),
			brk: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
		rt.shards = append(rt.shards, sh)
		label := fmt.Sprintf(`shard="%d"`, i)
		rt.reg.GaugeFunc("fivm_cluster_shard_up", label,
			"Whether the shard answered its last probe or request.",
			func() float64 {
				if sh.up.Load() {
					return 1
				}
				return 0
			})
		rt.reg.CounterFunc("fivm_cluster_shard_acked_updates_total", label,
			"Updates this router has had acknowledged by the shard.",
			sh.acked.Load)
		rt.reg.GaugeFunc("fivm_cluster_shard_applied_updates", label,
			"The shard's last observed cumulative applied-update counter.",
			func() float64 { return float64(sh.applied.Load()) })
		rt.reg.GaugeFunc("fivm_cluster_breaker_state", label,
			"Shard circuit-breaker state: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(sh.brk.current()) })
	}
	rt.writes = rt.reg.NewCounter("fivm_cluster_requests_total", `op="write"`, "Routed requests by operation.")
	rt.reads = rt.reg.NewCounter("fivm_cluster_requests_total", `op="read"`, "Routed requests by operation.")
	rt.writeErrors = rt.reg.NewCounter("fivm_cluster_request_errors_total", `op="write"`, "Routed requests that failed, by operation.")
	rt.readErrors = rt.reg.NewCounter("fivm_cluster_request_errors_total", `op="read"`, "Routed requests that failed, by operation.")
	rt.retries = rt.reg.NewCounter("fivm_cluster_retries_total", "",
		"Per-shard write sub-batch retries (transport failures and 503s re-sent under the retry budget).")
	rt.mergeLat = rt.reg.NewHistogram("fivm_cluster_merge_seconds", "",
		"Latency of gathering and ring-merging per-shard partials.", obs.LatencyBuckets())
	if cfg.ProbeInterval > 0 {
		rt.probeWG.Add(1)
		go func() {
			defer rt.probeWG.Done()
			rt.probeLoop()
		}()
	}
	return rt, nil
}

// Close stops the background prober and waits for it to exit, so no
// probe can touch the shards after Close returns. In-flight requests
// finish.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.probeWG.Wait()
}

// mintBatchID stamps a write that arrived without a batch ID, making
// the router the retrying origin for it (same wire format as
// client.NextBatchID: hex origin, dash, decimal sequence).
func (rt *Router) mintBatchID() string {
	return hex.EncodeToString(rt.origin[:]) + "-" + strconv.FormatUint(rt.batchSeq.Add(1), 10)
}

// Map exposes the shard map (tests partition bulk data with it).
func (rt *Router) Map() *ShardMap { return rt.smap }

// Kind reports the hosted engine kind.
func (rt *Router) Kind() fivm.Kind { return rt.merger.Kind() }

// probeLoop keeps the per-shard up/applied gauges current even when no
// traffic flows.
func (rt *Router) probeLoop() {
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeInterval)
		var wg sync.WaitGroup
		for _, sh := range rt.shards {
			wg.Add(1)
			go func(sh *shardRef) {
				defer wg.Done()
				sh.observeStats(ctx)
			}(sh)
		}
		wg.Wait()
		cancel()
	}
}

// observeStats refreshes the shard's cached reachability and applied
// counter from one GET /v1/stats.
func (sh *shardRef) observeStats(ctx context.Context) {
	st, err := sh.cli.Stats(ctx)
	if err != nil {
		sh.up.Store(false)
		return
	}
	sh.up.Store(true)
	app := st.Applied
	if st.WAL.Enabled {
		// The WAL counter is cumulative across restarts, matching the
		// covering counter /v1/partial reports on durable workers.
		app = st.WAL.AppliedUpdates
	}
	sh.applied.Store(app)
}

// subBatches partitions one decoded client batch into per-shard
// sub-batches: anchor updates go to their owning shard (owners[i] >= 0),
// every other relation's updates broadcast to all shards (owners[i] <
// 0). Forwarding the raw wire updates keeps numbers lossless
// (json.Number round-trips verbatim).
func (rt *Router) subBatches(raws []serve.UpdateJSON, owners []int) [][]client.Update {
	groups := make([][]client.Update, len(rt.shards))
	for i, u := range raws {
		cu := client.Update{Rel: u.Rel, Tuple: u.Tuple, Mult: u.Mult}
		if owners[i] >= 0 {
			groups[owners[i]] = append(groups[owners[i]], cu)
		} else {
			for s := range groups {
				groups[s] = append(groups[s], cu)
			}
		}
	}
	return groups
}

// shardError classifies one shard's write failure for the aggregate
// response and the 503 envelope's retry detail.
type shardError struct {
	id  int
	err error
	// attempts counts the requests actually sent to the shard (0 means
	// the circuit breaker failed the write fast without touching the
	// network); exhausted marks a retryable failure that ran out of
	// retry budget rather than hitting a terminal rejection.
	attempts  int
	exhausted bool
}

// fanOutWrite sends every non-empty sub-batch concurrently with wait=1
// under batchID — the ack protocol: a shard's 202 means its sub-batch
// is applied, published, and (when WAL-enabled) logged. Each shard
// gets its own retry loop (writeShard), so a transient failure on one
// shard re-sends only that shard's sub-batch. Per-shard acked counters
// advance on per-shard success even when the batch fails elsewhere:
// those updates ARE durably applied, so subsequent merged reads must
// cover them.
func (rt *Router) fanOutWrite(ctx context.Context, batchID string, groups [][]client.Update) (perShard map[string]int, deduped int, failed []shardError) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	perShard = make(map[string]int)
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shardRef, g []client.Update) {
			defer wg.Done()
			res := rt.writeShard(ctx, sh, batchID, g)
			mu.Lock()
			defer mu.Unlock()
			if res.err != nil {
				failed = append(failed, res.shardError)
				return
			}
			deduped += res.deduped
			perShard[fmt.Sprintf("%d", sh.id)] = len(g)
		}(rt.shards[i], g)
	}
	wg.Wait()
	sort.Slice(failed, func(i, j int) bool { return failed[i].id < failed[j].id })
	return perShard, deduped, failed
}

// writeShardResult is writeShard's outcome: shardError doubles as the
// failure record (err == nil on success) plus the dedup count the
// shard reported, which keeps the router's acked counter equal to the
// shard's applied counter when a retry races a delivery that actually
// landed.
type writeShardResult struct {
	shardError
	deduped int
}

// writeShard delivers one sub-batch to one shard: transport failures
// and 503s are retried with full-jitter exponential backoff until the
// retry budget (or the request deadline, whichever is sooner) runs
// out, gated by the shard's circuit breaker. 429s are never retried
// here — backpressure must reach the writing client, which owns the
// end-to-end retry policy — and other 4xx/5xx rejections are terminal.
func (rt *Router) writeShard(ctx context.Context, sh *shardRef, batchID string, g []client.Update) writeShardResult {
	res := writeShardResult{shardError: shardError{id: sh.id}}
	budget := rt.cfg.RetryBudget
	if budget < 0 {
		budget = 0
	}
	deadline := time.Now().Add(budget)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	const baseBackoff = 25 * time.Millisecond
	maxBackoff := budget / 8
	if maxBackoff < baseBackoff {
		maxBackoff = baseBackoff
	}
	for attempt := 0; ; attempt++ {
		if !sh.brk.allow() {
			if res.attempts == 0 {
				res.err = fmt.Errorf("shard %d: circuit breaker open, failing fast", sh.id)
			} else {
				res.exhausted = true // breaker tripped by our own retries
			}
			return res
		}
		res.attempts++
		ack, err := sh.cli.UpdateWithID(ctx, batchID, g, true)
		if err == nil {
			sh.brk.onSuccess()
			sh.up.Store(true)
			fresh := len(g) - ack.Deduped
			if fresh < 0 {
				fresh = 0
			}
			sh.acked.Add(uint64(fresh))
			res.err = nil
			res.deduped = ack.Deduped
			return res
		}
		res.err = err
		var ae *client.APIError
		isAPI := errors.As(err, &ae)
		if !isAPI || ae.Temporary() {
			// Transport failure or 429/503: the shard is down or
			// shedding. 4xx rejections leave it up.
			sh.up.Store(false)
		}
		retryable := !isAPI || ae.Status == http.StatusServiceUnavailable
		if !retryable {
			return res
		}
		sh.brk.onFailure()
		if ctx.Err() != nil {
			res.exhausted = true
			return res
		}
		// Full-jitter exponential backoff: uniform over (0, base<<attempt]
		// capped at budget/8, raised to the shard's Retry-After hint when
		// it gave one. Stop when the sleep would cross the deadline.
		step := baseBackoff << uint(min(attempt, 16))
		if step <= 0 || step > maxBackoff {
			step = maxBackoff
		}
		sleep := time.Duration(rand.Int63n(int64(step)) + 1)
		if ae != nil && ae.RetryAfter > sleep {
			sleep = ae.RetryAfter
		}
		if time.Now().Add(sleep).After(deadline) {
			res.exhausted = true
			return res
		}
		rt.retries.Inc()
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			res.err = ctx.Err()
			res.exhausted = true
			return res
		}
	}
}

// mergeInfo describes one merged read.
type mergeInfo struct {
	// Missing lists shards whose partial was unavailable or did not
	// cover the acked count in time (only non-empty on stale reads).
	Missing []int `json:"missing,omitempty"`
	// Acked is the total update count the router requires coverage of.
	Acked uint64 `json:"acked"`
	// Merged counts the partials that went into the model.
	Merged int `json:"merged"`
}

// gatherPartials fetches every shard's partial, requiring each to cover
// the shard's acked counter (read-your-writes). A shard that cannot
// deliver a covering partial within CoverWait is an error — unless
// allowStale, which instead reports it in info.Missing and merges the
// rest.
func (rt *Router) gatherPartials(ctx context.Context, allowStale bool) ([][]byte, *mergeInfo, error) {
	info := &mergeInfo{}
	bodies := make([][]byte, len(rt.shards))
	errs := make([]error, len(rt.shards))
	deadline := time.Now().Add(rt.cfg.CoverWait)
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		info.Acked += sh.acked.Load()
		wg.Add(1)
		go func(sh *shardRef) {
			defer wg.Done()
			target := sh.acked.Load()
			// Jittered exponential backoff between polls: the first
			// re-poll comes fast (a healthy shard is usually one batch
			// behind), later ones back off to CoverWait/8 so a
			// recovering shard is not hammered for the whole window.
			delay := 5 * time.Millisecond
			maxDelay := rt.cfg.CoverWait / 8
			if maxDelay < delay {
				maxDelay = delay
			}
			for {
				p, err := sh.cli.Partial(ctx)
				if err == nil {
					sh.up.Store(true)
					sh.applied.Store(p.Applied)
					if p.Applied >= target {
						bodies[sh.id] = p.Data
						errs[sh.id] = nil
						return
					}
					// The shard answered but has not yet re-applied
					// everything this router acked (it is mid-recovery);
					// covered is a matter of waiting.
					err = fmt.Errorf("shard %d applied %d of %d acked updates", sh.id, p.Applied, target)
				} else {
					sh.up.Store(false)
				}
				errs[sh.id] = err
				if time.Now().After(deadline) {
					return
				}
				sleep := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
				if delay *= 2; delay > maxDelay {
					delay = maxDelay
				}
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					errs[sh.id] = ctx.Err()
					return
				}
			}
		}(sh)
	}
	wg.Wait()
	present := make([][]byte, 0, len(bodies))
	for i, b := range bodies {
		if errs[i] != nil {
			info.Missing = append(info.Missing, i)
			continue
		}
		present = append(present, b)
	}
	if len(info.Missing) > 0 && !allowStale {
		first := errs[info.Missing[0]]
		return nil, info, fmt.Errorf("cluster: %d of %d shards unavailable for a consistent read (shard %d: %w)", len(info.Missing), len(rt.shards), info.Missing[0], first)
	}
	info.Merged = len(present)
	return present, info, nil
}

// mergedModel gathers partials and publishes the ring-merged model.
func (rt *Router) mergedModel(ctx context.Context, allowStale bool) (fivm.Model, *mergeInfo, error) {
	t0 := time.Now()
	bodies, info, err := rt.gatherPartials(ctx, allowStale)
	if err != nil {
		return nil, info, err
	}
	readers := make([]io.Reader, len(bodies))
	for i, b := range bodies {
		readers[i] = bytes.NewReader(b)
	}
	rt.mergerMu.Lock()
	model, err := rt.merger.MergePartials(readers)
	rt.mergerMu.Unlock()
	rt.mergeLat.Observe(time.Since(t0).Seconds())
	if err != nil {
		return nil, info, fmt.Errorf("cluster: merging partials: %w", err)
	}
	return model, info, nil
}

// MergedModel returns the cluster-wide model: every shard's partial,
// each covering this router's acked writes, ring-merged into one
// result. It is the programmatic form of GET /v1/model (and what the
// equivalence tests compare against a single engine).
func (rt *Router) MergedModel(ctx context.Context) (fivm.Model, error) {
	model, _, err := rt.mergedModel(ctx, false)
	return model, err
}

package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/fivm"
	"repro/fivm/client"
	"repro/internal/cluster"
	"repro/internal/faultnet"
	"repro/internal/view"
)

// chaosCluster is a cluster whose router reaches every worker only
// through a faultnet proxy, so the router's retry/breaker path is
// exercised by real transport faults, not mocks.
type chaosCluster struct {
	rt      *cluster.Router
	cli     *client.Client
	proxies []*faultnet.Proxy
	workers []*httptest.Server
}

// startChaosCluster boots n workers, one seeded fault proxy per worker,
// and a router whose shard URLs point at the proxies. The shard HTTP
// client disables keep-alives (one request = one connection = one
// scheduled fault decision) and carries a 1s timeout so blackholed
// connections resolve instead of hanging an attempt forever.
func startChaosCluster(t *testing.T, cfg fivm.Config, n int, seed int64, w faultnet.Weights) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ws := startWorker(t, cfg)
		p, err := faultnet.Start(strings.TrimPrefix(ws.URL, "http://"), faultnet.NewRandSchedule(seed+int64(i), w))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		cc.workers = append(cc.workers, ws)
		cc.proxies = append(cc.proxies, p)
		urls[i] = p.URL()
	}
	rt, err := cluster.New(cluster.Config{
		ShardURLs:     urls,
		Engine:        cfg,
		ProbeInterval: -1,
		CoverWait:     15 * time.Second,
		RetryBudget:   4 * time.Second,
		HTTPClient: &http.Client{
			Timeout:   time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		hs.Close()
		rt.Close()
	})
	cc.rt = rt
	// Retries disabled on the test client: the test's own ack-until
	// loop is the retrying writer, re-sending the identical batch under
	// its fixed ID — the exactly-once usage pattern.
	cc.cli = client.New(hs.URL, client.WithRetries(0))
	return cc
}

// mustAck re-sends the identical batch under one fixed ID until the
// router acks it. Every failed delivery before the final ack is a real
// duplicate-delivery hazard the dedup layer must absorb.
func mustAck(t *testing.T, cli *client.Client, id string, ups []client.Update) *client.UpdateAck {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ack, err := cli.UpdateWithID(ctx, id, ups, true)
		cancel()
		if err == nil {
			return ack
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("batch %s never acked: %v", id, lastErr)
	return nil
}

// TestClusterChaosEquivalence drives the equivalence stream through a
// 2-shard cluster whose router↔worker links inject seeded faults —
// added latency, mid-request resets, blackholes, truncated responses,
// and one full partition of shard 0 mid-stream — with the writer
// retrying every batch under a fixed ID until acked. For all six
// engine kinds the final merged model must be bit-identical to a clean
// single engine fed the same stream once: retries re-deliver, the
// dedup layer makes redelivery the ring identity.
func TestClusterChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes seconds per engine kind")
	}
	batches := stream(7, 160, 20)
	weights := faultnet.Weights{
		None: 70, Latency: 10, Reset: 8, Blackhole: 4, Truncate: 8,
		MaxLatency: 20 * time.Millisecond, MaxAfter: 200,
	}
	configs := engineConfigs()
	kinds := make([]string, 0, len(configs))
	for k := range configs {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for i, kind := range kinds {
		cfg, seed := configs[kind], int64(1000+100*i)
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			ref, err := fivm.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				ups := make([]view.Update, len(b))
				for i, tw := range b {
					ups[i] = tw.ref
				}
				if err := ref.Apply(ups); err != nil {
					t.Fatal(err)
				}
			}
			want := resultJSONBytes(t, ref.PublishModel(nil))

			cc := startChaosCluster(t, cfg, 2, seed, weights)
			for bi, b := range batches {
				wire := make([]client.Update, len(b))
				for i, tw := range b {
					wire[i] = tw.wire
				}
				id := cc.cli.NextBatchID()
				if bi == len(batches)/2 {
					// Full partition of shard 0: the first delivery
					// attempt of this batch is doomed (or at best
					// partial), then the link heals and the SAME ID is
					// re-driven to completion.
					cc.proxies[0].Partition(true)
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					_, _ = cc.cli.UpdateWithID(ctx, id, wire, true)
					cancel()
					cc.proxies[0].Partition(false)
				}
				mustAck(t, cc.cli, id, wire)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			m, err := cc.rt.MergedModel(ctx)
			if err != nil {
				t.Fatalf("merged model: %v", err)
			}
			if got := resultJSONBytes(t, m); string(got) != string(want) {
				t.Errorf("chaos merged model diverges from clean single engine\n got: %s\nwant: %s", got, want)
			}
			var conns, faulted int64
			for _, p := range cc.proxies {
				st := p.Stats()
				conns += st.Conns
				faulted += st.Partitioned
				for k, v := range st.Faults {
					if k != faultnet.None.String() {
						faulted += v
					}
				}
			}
			if faulted == 0 {
				t.Errorf("no fault fired across %d proxied connections; the schedule (seed %d) exercised nothing", conns, seed)
			}
		})
	}
}

// TestClusterDuplicateDelivery replays a fully-acked batch ID against a
// fault-free cluster and requires the replay to return the original
// ack shape with every update reported deduped, without moving any
// worker's applied counter or changing the merged model — redelivery
// is the identity, not a second application.
func TestClusterDuplicateDelivery(t *testing.T) {
	ctx := context.Background()
	cfg := engineConfigs()["count"]
	cc := startChaosCluster(t, cfg, 2, 1, faultnet.Weights{None: 1})

	ups := []client.Update{
		client.NewUpdate("R", 1, 1, 2),
		client.NewUpdate("R", 1, 2, 3),
		client.NewUpdate("S", 1, 1, 4, 5),
		client.NewUpdate("S", 1, 2, 4, 6),
	}
	// Expected dedup count on replay: anchor R updates land on exactly
	// one shard each, S updates broadcast to both.
	expectDeduped := 0
	for _, u := range ups {
		if u.Rel == "R" {
			expectDeduped++
		} else {
			expectDeduped += len(cc.workers)
		}
	}

	id := cc.cli.NextBatchID()
	ack1, err := cc.cli.UpdateWithID(ctx, id, ups, true)
	if err != nil {
		t.Fatal(err)
	}
	if ack1.Accepted != len(ups) || !ack1.Applied || ack1.Deduped != 0 {
		t.Fatalf("first delivery ack = %+v, want accepted=%d applied deduped=0", ack1, len(ups))
	}

	applied := make([]uint64, len(cc.workers))
	for i, ws := range cc.workers {
		st, err := client.New(ws.URL).Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		applied[i] = st.Applied
	}
	m1, err := cc.rt.MergedModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := resultJSONBytes(t, m1)

	ack2, err := cc.cli.UpdateWithID(ctx, id, ups, true)
	if err != nil {
		t.Fatalf("replayed delivery: %v", err)
	}
	if ack2.Accepted != len(ups) || !ack2.Applied {
		t.Fatalf("replayed ack = %+v, want the original accepted=%d applied=true", ack2, len(ups))
	}
	if ack2.Deduped != expectDeduped {
		t.Errorf("replayed ack deduped = %d, want %d (every routed update suppressed)", ack2.Deduped, expectDeduped)
	}

	for i, ws := range cc.workers {
		st, err := client.New(ws.URL).Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Applied != applied[i] {
			t.Errorf("worker %d applied counter moved on replay: %d -> %d", i, applied[i], st.Applied)
		}
	}
	m2, err := cc.rt.MergedModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after := resultJSONBytes(t, m2); string(after) != string(before) {
		t.Errorf("merged model changed on replay\n got: %s\nwant: %s", after, before)
	}
}

package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine.
// The numeric values are the wire contract of the
// fivm_cluster_breaker_state gauge — keep them stable.
type breakerState int

const (
	breakerClosed   breakerState = 0 // normal: every request passes
	breakerOpen     breakerState = 1 // tripped: requests fail fast until the cooldown elapses
	breakerHalfOpen breakerState = 2 // probing: exactly one request in flight decides the next state
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-shard circuit breaker: after threshold consecutive
// failures it opens and fails calls fast (no connection attempt, no
// backoff burned) until cooldown has passed, then lets exactly one
// probe through. The probe's outcome either closes the breaker or
// re-opens it for another cooldown.
//
// It deliberately counts only outcomes the caller feeds it — the
// fan-out loop reports transport failures and 503s, not 429s, so pure
// backpressure from a healthy shard never trips the breaker.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may be sent now. In the open state
// the first call after the cooldown transitions to half-open and is
// admitted as the probe; every other open/half-open call is rejected
// without touching the network.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// onSuccess records a successful request: any state collapses back to
// closed with the failure streak cleared.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// onFailure records a failed request: a failed half-open probe re-opens
// immediately; in the closed state the streak counts toward threshold.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// current reports the state for the metrics gauge.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

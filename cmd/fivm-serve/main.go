// Command fivm-serve runs the concurrent serving daemon: any F-IVM
// engine behind sharded batched ingestion and lock-free model
// snapshots, exposed over HTTP/JSON.
//
//	POST /update    ingest tuple updates (?wait=1 for read-your-writes;
//	                429 + Retry-After when an ingest queue is over the
//	                high-watermark)
//	GET  /predict   evaluate the latest ridge model (analysis engines)
//	GET  /model     the published model, rendered per engine kind
//	GET  /stats     serving + maintenance counters, snapshot version and
//	                age, per-shard queue depths, shed counts
//	GET  /viewtree  the maintained view tree
//	GET  /healthz   liveness + staleness
//	GET  /metrics   Prometheus text exposition of the pipeline metrics
//
// The engine kind follows the workload definition (fivm.Open):
//
//	fivm-serve -db retailer -rows 10000                    # analysis preset
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -features "A,C:cat" -label A                # analysis, custom schema
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -query "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"   # count
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -query "SELECT SUM(A * B) FROM R NATURAL JOIN S"             # float
//	fivm-serve -relations "R:A,B;S:B,C" -attrs "A,B,C"     # scalar COVAR
//	fivm-serve -relations "R:A,B;S:B,C" -engine join       # join result
//
// With -wal the daemon is durable: every coalesced update batch is
// appended to a per-shard write-ahead log before it is applied, the
// engine is checkpointed incrementally (-checkpoint-interval), and a
// restart recovers the newest valid checkpoint plus a replay of the log
// past it — tolerating a torn final record from a crash mid-append.
// -fsync picks the sync policy (always|interval|off): appends are
// unbuffered, so any policy survives a process kill; always/interval
// bound what a power loss can take. Pair one WAL directory with one
// engine configuration (the snapshot codec tag rejects a mismatch).
//
// -state (deprecated; superseded by -wal) restores input relations from
// a fivm snapshot file at startup and persists them periodically and on
// shutdown. It cannot tell acknowledged updates from lost ones after a
// crash — anything since the last persist is gone. Migrate by swapping
// -state file.snap for -wal dir/; the first boot starts empty (or from
// the preset load) and checkpoints into the WAL directory from then on.
//
// -workers enables parallel delta propagation: each applied batch is
// hash-partitioned by join key and propagated across that many
// goroutines (-1 selects GOMAXPROCS), producing views identical to the
// sequential path's.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/fivm"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/value"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8344", "HTTP listen address")
	db := flag.String("db", "", "demo database preset: retailer|favorita (overrides -relations/-features)")
	rows := flag.Int("rows", 0, "fact-table rows for the preset database (0 = preset default)")
	load := flag.Bool("load", true, "bulk-load the generated preset database at startup")
	engine := flag.String("engine", "", "engine kind: analysis|count|float|covar|rangedcovar|join (default: inferred from the other flags)")
	queryFlag := flag.String("query", "", `SQL-subset query for count/float engines, e.g. "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"`)
	relationsFlag := flag.String("relations", "", `custom relations, e.g. "R:A,B;S:B,C"`)
	featuresFlag := flag.String("features", "", `analysis features, e.g. "A,B:cat,C:bin=10"`)
	attrsFlag := flag.String("attrs", "", `covar aggregate attributes, e.g. "A,B,C"`)
	label := flag.String("label", "", "ridge label attribute for analysis engines (preset default when -db is set; empty disables fitting)")
	walDir := flag.String("wal", "", "durability directory: write-ahead log + checkpoints, recovered at startup (supersedes -state)")
	fsyncPolicy := flag.String("fsync", string(wal.PolicyInterval), "WAL fsync policy: always|interval|off")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "background WAL fsync period under -fsync interval")
	checkpointEvery := flag.Duration("checkpoint-interval", time.Minute, "incremental checkpoint period with -wal (<0 disables; a final checkpoint is still written on shutdown)")
	segmentBytes := flag.Int64("segment-bytes", 64<<20, "WAL segment rotation size")
	statePath := flag.String("state", "", "deprecated (use -wal): snapshot file restored at startup if present, persisted on shutdown")
	persistEvery := flag.Duration("persist-interval", 0, "also persist -state periodically (0 disables)")
	maxBatch := flag.Int("max-batch", 8192, "max raw updates coalesced into one delta batch")
	chanCap := flag.Int("chan-cap", 256, "per-relation ingest channel capacity")
	highWatermark := flag.Int("high-watermark", 0, "ingest queue depth at which /update sheds with 429 (0 = chan-cap)")
	workers := flag.Int("workers", 0, "parallel delta-propagation workers (0 sequential, -1 = GOMAXPROCS, n >= 2 = n workers)")
	trace := flag.Bool("trace", false, "log one structured line per batch and per snapshot publish")
	flag.Parse()

	cfg, initData, err := buildConfig(*db, *rows, *load, *engine, *queryFlag, *relationsFlag, *featuresFlag, *attrsFlag, label)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Workers = *workers
	eng, err := fivm.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *walDir != "" && *statePath != "" {
		log.Fatal("-state is deprecated and superseded by -wal; drop -state (the WAL directory carries checkpoints)")
	}
	var w *wal.WAL
	if *walDir != "" {
		w, err = wal.Open(wal.Config{
			Dir:           *walDir,
			Fsync:         wal.Policy(*fsyncPolicy),
			FsyncInterval: *fsyncEvery,
			SegmentBytes:  *segmentBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Preset bulk-load only on a cold start: once a checkpoint
		// exists it already contains the loaded data (the boot
		// checkpoint below guarantees one after the first start).
		if w.Checkpoint() == nil && initData != nil {
			if err := eng.Init(initData); err != nil {
				log.Fatal(err)
			}
			log.Printf("loaded %d relations", len(initData))
		}
		info, err := serve.Recover(eng, w)
		if err != nil {
			log.Fatalf("recovering %s: %v", *walDir, err)
		}
		log.Printf("recovered from %s: checkpoint seq=%d (%d updates), replayed %d batches (%d updates)",
			*walDir, info.CheckpointSeq, info.CheckpointUpdates, info.ReplayedBatches, info.ReplayedUpdates)
	} else if *statePath != "" {
		log.Print("warning: -state is deprecated; use -wal for crash-safe durability")
		if f, err := os.Open(*statePath); err == nil {
			err = eng.ReadSnapshot(f)
			f.Close()
			if err != nil {
				log.Fatalf("restoring %s: %v", *statePath, err)
			}
			log.Printf("restored state from %s", *statePath)
			initData = nil // the state file wins over the generated preset data
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatal(err)
		}
	}
	if initData != nil && *walDir == "" {
		if err := eng.Init(initData); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d relations", len(initData))
	}

	scfg := serve.Config{
		MaxBatch:           *maxBatch,
		ChannelCap:         *chanCap,
		HighWatermark:      *highWatermark,
		WAL:                w,
		CheckpointInterval: *checkpointEvery,
	}
	if *trace {
		scfg.TraceLog = log.New(os.Stderr, "trace ", log.LstdFlags|log.Lmicroseconds)
	}
	srv, err := serve.New(eng, scfg)
	if err != nil {
		log.Fatal(err)
	}
	if w != nil {
		// Boot checkpoint: makes the recovered (and possibly just
		// bulk-loaded) state the durable baseline and lets replayed
		// segments be pruned right away.
		if err := srv.Checkpoint(); err != nil {
			log.Fatalf("boot checkpoint: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *statePath != "" && *persistEvery > 0 {
		go func() {
			t := time.NewTicker(*persistEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := persist(srv, *statePath); err != nil {
						log.Printf("persist: %v", err)
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: serve.NewHandler(srv)}
	go func() {
		log.Printf("fivm-serve listening on %s (engine=%s, snapshot v%d, count=%v)",
			*addr, srv.Kind(), srv.Snapshot().Version, srv.Snapshot().Count())
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil { // drains every accepted update; with -wal, writes the final checkpoint
		log.Printf("server close: %v", err)
	}
	if w != nil {
		if err := w.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	if *statePath != "" {
		// All pipeline goroutines have stopped; write directly.
		if err := writeState(eng, *statePath); err != nil {
			log.Printf("final persist: %v", err)
		} else {
			log.Printf("state persisted to %s", *statePath)
		}
	}
	st := srv.Stats()
	log.Printf("done: %d updates ingested, %d batches, %d snapshots", st.Ingested, st.Batches, st.Snapshots)
}

// persist writes the engine state via the writer goroutine.
func persist(srv *serve.Server, path string) error {
	var werr error
	err := srv.Sync(func(eng serve.Maintainable) { werr = writeState(eng, path) })
	if err != nil {
		return err
	}
	return werr
}

// writeState persists a -state snapshot crash-atomically: the temp file
// is fsynced before the rename and the directory after it, so a crash
// anywhere in between leaves either the old complete file or the new
// one, never a truncated or unlinked state.
func writeState(eng serve.Maintainable, path string) error {
	return wal.WriteFileAtomic(path, eng.WriteSnapshot)
}

// buildConfig resolves the engine configuration from either a preset
// database or the custom flags. It also resolves the default label for
// presets (writing through the flag pointer) and returns the initial
// bulk-load data, if any.
func buildConfig(db string, rows int, load bool, engine, queryFlag, relationsFlag, featuresFlag, attrsFlag string, label *string) (fivm.Config, map[string][]value.Tuple, error) {
	cfg := fivm.Config{Kind: fivm.Kind(engine), Query: queryFlag}
	if db != "" && (featuresFlag != "" || attrsFlag != "" || relationsFlag != "" || queryFlag != "" || engine != "") {
		// The presets define their own schema, features, and engine
		// kind; silently overriding any of them would serve a different
		// engine than asked, and passing them through would surface as
		// confusing fivm.Open errors blaming flags the user never set.
		return cfg, nil, fmt.Errorf("-db %s defines its own relations, features, and engine kind; drop -relations/-features/-attrs/-query/-engine", db)
	}
	switch db {
	case "retailer":
		rcfg := dataset.DefaultRetailerConfig()
		if rows > 0 {
			rcfg.InventoryRows = rows
		}
		d := dataset.Retailer(rcfg)
		for _, r := range d.Relations {
			cfg.Relations = append(cfg.Relations, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		}
		cfg.Features = []fivm.FeatureSpec{
			{Attr: "inventoryunits"},
			{Attr: "prize"},
			{Attr: "subcategory", Categorical: true},
			{Attr: "category", Categorical: true},
			{Attr: "categoryCluster", Categorical: true},
			{Attr: "avghhi"},
			{Attr: "maxtemp"},
		}
		if *label == "" {
			*label = "inventoryunits"
		}
		cfg.Label = *label
		if load {
			return cfg, d.TupleMap(), nil
		}
		return cfg, nil, nil
	case "favorita":
		fcfg := dataset.DefaultFavoritaConfig()
		if rows > 0 {
			fcfg.SalesRows = rows
		}
		d := dataset.Favorita(fcfg)
		for _, r := range d.Relations {
			cfg.Relations = append(cfg.Relations, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		}
		cfg.Features = []fivm.FeatureSpec{
			{Attr: "unit_sales"},
			{Attr: "family", Categorical: true},
			{Attr: "perishable", Categorical: true},
			{Attr: "stype", Categorical: true},
			{Attr: "cluster", Categorical: true},
			{Attr: "oilprice"},
			{Attr: "transactions"},
		}
		if *label == "" {
			*label = "unit_sales"
		}
		cfg.Label = *label
		if load {
			return cfg, d.TupleMap(), nil
		}
		return cfg, nil, nil
	case "":
		var err error
		cfg.Relations, err = parseRelations(relationsFlag)
		if err != nil {
			return cfg, nil, err
		}
		if featuresFlag != "" {
			cfg.Features, err = parseFeatures(featuresFlag)
			if err != nil {
				return cfg, nil, err
			}
		}
		if attrsFlag != "" {
			for _, a := range strings.Split(attrsFlag, ",") {
				if a = strings.TrimSpace(a); a != "" {
					cfg.Attrs = append(cfg.Attrs, a)
				}
			}
		}
		cfg.Label = *label
		return cfg, nil, nil
	default:
		return cfg, nil, fmt.Errorf("unknown -db %q (retailer|favorita, or use -relations)", db)
	}
}

// parseRelations parses "R:A,B;S:B,C".
func parseRelations(s string) ([]fivm.RelationSpec, error) {
	if s == "" {
		return nil, errors.New("either -db or -relations is required")
	}
	var out []fivm.RelationSpec
	for _, part := range strings.Split(s, ";") {
		name, attrs, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" || attrs == "" {
			return nil, fmt.Errorf("bad relation %q (want Name:attr1,attr2)", part)
		}
		spec := fivm.RelationSpec{Name: strings.TrimSpace(name)}
		for _, a := range strings.Split(attrs, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("empty attribute in relation %q", part)
			}
			spec.Attrs = append(spec.Attrs, a)
		}
		out = append(out, spec)
	}
	return out, nil
}

// parseFeatures parses "A,B:cat,C:bin=10" — continuous by default,
// ":cat" for categorical, ":bin=W" for equi-width binning.
func parseFeatures(s string) ([]fivm.FeatureSpec, error) {
	var out []fivm.FeatureSpec
	for _, part := range strings.Split(s, ",") {
		attr, kind, hasKind := strings.Cut(strings.TrimSpace(part), ":")
		if attr == "" {
			return nil, fmt.Errorf("empty feature in %q", s)
		}
		f := fivm.FeatureSpec{Attr: attr}
		if hasKind {
			switch {
			case kind == "cat":
				f.Categorical = true
			case strings.HasPrefix(kind, "bin="):
				w, err := strconv.ParseFloat(kind[len("bin="):], 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("bad bin width in feature %q", part)
				}
				f.BinWidth = w
			default:
				return nil, fmt.Errorf("bad feature kind %q (want cat or bin=W)", kind)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// Command fivm-serve runs the concurrent serving daemon: any F-IVM
// engine behind sharded batched ingestion and lock-free model
// snapshots, exposed over HTTP/JSON.
//
//	POST /update    ingest tuple updates (?wait=1 for read-your-writes;
//	                429 + Retry-After when an ingest queue is over the
//	                high-watermark)
//	GET  /predict   evaluate the latest ridge model (analysis engines)
//	GET  /model     the published model, rendered per engine kind
//	GET  /stats     serving + maintenance counters, snapshot version and
//	                age, per-shard queue depths, shed counts
//	GET  /viewtree  the maintained view tree
//	GET  /healthz   liveness + staleness
//	GET  /metrics   Prometheus text exposition of the pipeline metrics
//
// The engine kind follows the workload definition (fivm.Open):
//
//	fivm-serve -db retailer -rows 10000                    # analysis preset
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -features "A,C:cat" -label A                # analysis, custom schema
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -query "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"   # count
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -query "SELECT SUM(A * B) FROM R NATURAL JOIN S"             # float
//	fivm-serve -relations "R:A,B;S:B,C" -attrs "A,B,C"     # scalar COVAR
//	fivm-serve -relations "R:A,B;S:B,C" -engine join       # join result
//
// With -state the daemon restores input relations from a fivm snapshot
// file at startup (if present) and persists them periodically and on
// shutdown; pair one state file with one engine configuration (the
// snapshot's codec tag rejects a mismatched engine kind).
//
// -workers enables parallel delta propagation: each applied batch is
// hash-partitioned by join key and propagated across that many
// goroutines (-1 selects GOMAXPROCS), producing views identical to the
// sequential path's.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/fivm"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/value"
)

func main() {
	addr := flag.String("addr", ":8344", "HTTP listen address")
	db := flag.String("db", "", "demo database preset: retailer|favorita (overrides -relations/-features)")
	rows := flag.Int("rows", 0, "fact-table rows for the preset database (0 = preset default)")
	load := flag.Bool("load", true, "bulk-load the generated preset database at startup")
	engine := flag.String("engine", "", "engine kind: analysis|count|float|covar|rangedcovar|join (default: inferred from the other flags)")
	queryFlag := flag.String("query", "", `SQL-subset query for count/float engines, e.g. "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"`)
	relationsFlag := flag.String("relations", "", `custom relations, e.g. "R:A,B;S:B,C"`)
	featuresFlag := flag.String("features", "", `analysis features, e.g. "A,B:cat,C:bin=10"`)
	attrsFlag := flag.String("attrs", "", `covar aggregate attributes, e.g. "A,B,C"`)
	label := flag.String("label", "", "ridge label attribute for analysis engines (preset default when -db is set; empty disables fitting)")
	statePath := flag.String("state", "", "snapshot file: restored at startup if present, persisted on shutdown")
	persistEvery := flag.Duration("persist-interval", 0, "also persist -state periodically (0 disables)")
	maxBatch := flag.Int("max-batch", 8192, "max raw updates coalesced into one delta batch")
	chanCap := flag.Int("chan-cap", 256, "per-relation ingest channel capacity")
	highWatermark := flag.Int("high-watermark", 0, "ingest queue depth at which /update sheds with 429 (0 = chan-cap)")
	workers := flag.Int("workers", 0, "parallel delta-propagation workers (0 sequential, -1 = GOMAXPROCS, n >= 2 = n workers)")
	trace := flag.Bool("trace", false, "log one structured line per batch and per snapshot publish")
	flag.Parse()

	cfg, initData, err := buildConfig(*db, *rows, *load, *engine, *queryFlag, *relationsFlag, *featuresFlag, *attrsFlag, label)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Workers = *workers
	eng, err := fivm.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	restored := false
	if *statePath != "" {
		if f, err := os.Open(*statePath); err == nil {
			err = eng.ReadSnapshot(f)
			f.Close()
			if err != nil {
				log.Fatalf("restoring %s: %v", *statePath, err)
			}
			restored = true
			log.Printf("restored state from %s", *statePath)
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatal(err)
		}
	}
	// A restored state file wins over the generated preset data: loading
	// both would evaluate every view twice only to discard the first.
	if initData != nil && !restored {
		if err := eng.Init(initData); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d relations", len(initData))
	}

	scfg := serve.Config{MaxBatch: *maxBatch, ChannelCap: *chanCap, HighWatermark: *highWatermark}
	if *trace {
		scfg.TraceLog = log.New(os.Stderr, "trace ", log.LstdFlags|log.Lmicroseconds)
	}
	srv, err := serve.New(eng, scfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *statePath != "" && *persistEvery > 0 {
		go func() {
			t := time.NewTicker(*persistEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := persist(srv, *statePath); err != nil {
						log.Printf("persist: %v", err)
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: serve.NewHandler(srv)}
	go func() {
		log.Printf("fivm-serve listening on %s (engine=%s, snapshot v%d, count=%v)",
			*addr, srv.Kind(), srv.Snapshot().Version, srv.Snapshot().Count())
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil { // drains every accepted update
		log.Printf("server close: %v", err)
	}
	if *statePath != "" {
		// All pipeline goroutines have stopped; write directly.
		if err := writeState(eng, *statePath); err != nil {
			log.Printf("final persist: %v", err)
		} else {
			log.Printf("state persisted to %s", *statePath)
		}
	}
	st := srv.Stats()
	log.Printf("done: %d updates ingested, %d batches, %d snapshots", st.Ingested, st.Batches, st.Snapshots)
}

// persist writes the engine state via the writer goroutine (atomically,
// through a temp file rename).
func persist(srv *serve.Server, path string) error {
	var werr error
	err := srv.Sync(func(eng serve.Maintainable) { werr = writeState(eng, path) })
	if err != nil {
		return err
	}
	return werr
}

func writeState(eng serve.Maintainable, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".fivm-state-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := eng.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// buildConfig resolves the engine configuration from either a preset
// database or the custom flags. It also resolves the default label for
// presets (writing through the flag pointer) and returns the initial
// bulk-load data, if any.
func buildConfig(db string, rows int, load bool, engine, queryFlag, relationsFlag, featuresFlag, attrsFlag string, label *string) (fivm.Config, map[string][]value.Tuple, error) {
	cfg := fivm.Config{Kind: fivm.Kind(engine), Query: queryFlag}
	if db != "" && (featuresFlag != "" || attrsFlag != "" || relationsFlag != "" || queryFlag != "" || engine != "") {
		// The presets define their own schema, features, and engine
		// kind; silently overriding any of them would serve a different
		// engine than asked, and passing them through would surface as
		// confusing fivm.Open errors blaming flags the user never set.
		return cfg, nil, fmt.Errorf("-db %s defines its own relations, features, and engine kind; drop -relations/-features/-attrs/-query/-engine", db)
	}
	switch db {
	case "retailer":
		rcfg := dataset.DefaultRetailerConfig()
		if rows > 0 {
			rcfg.InventoryRows = rows
		}
		d := dataset.Retailer(rcfg)
		for _, r := range d.Relations {
			cfg.Relations = append(cfg.Relations, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		}
		cfg.Features = []fivm.FeatureSpec{
			{Attr: "inventoryunits"},
			{Attr: "prize"},
			{Attr: "subcategory", Categorical: true},
			{Attr: "category", Categorical: true},
			{Attr: "categoryCluster", Categorical: true},
			{Attr: "avghhi"},
			{Attr: "maxtemp"},
		}
		if *label == "" {
			*label = "inventoryunits"
		}
		cfg.Label = *label
		if load {
			return cfg, d.TupleMap(), nil
		}
		return cfg, nil, nil
	case "favorita":
		fcfg := dataset.DefaultFavoritaConfig()
		if rows > 0 {
			fcfg.SalesRows = rows
		}
		d := dataset.Favorita(fcfg)
		for _, r := range d.Relations {
			cfg.Relations = append(cfg.Relations, fivm.RelationSpec{Name: r.Name, Attrs: r.Attrs})
		}
		cfg.Features = []fivm.FeatureSpec{
			{Attr: "unit_sales"},
			{Attr: "family", Categorical: true},
			{Attr: "perishable", Categorical: true},
			{Attr: "stype", Categorical: true},
			{Attr: "cluster", Categorical: true},
			{Attr: "oilprice"},
			{Attr: "transactions"},
		}
		if *label == "" {
			*label = "unit_sales"
		}
		cfg.Label = *label
		if load {
			return cfg, d.TupleMap(), nil
		}
		return cfg, nil, nil
	case "":
		var err error
		cfg.Relations, err = parseRelations(relationsFlag)
		if err != nil {
			return cfg, nil, err
		}
		if featuresFlag != "" {
			cfg.Features, err = parseFeatures(featuresFlag)
			if err != nil {
				return cfg, nil, err
			}
		}
		if attrsFlag != "" {
			for _, a := range strings.Split(attrsFlag, ",") {
				if a = strings.TrimSpace(a); a != "" {
					cfg.Attrs = append(cfg.Attrs, a)
				}
			}
		}
		cfg.Label = *label
		return cfg, nil, nil
	default:
		return cfg, nil, fmt.Errorf("unknown -db %q (retailer|favorita, or use -relations)", db)
	}
}

// parseRelations parses "R:A,B;S:B,C".
func parseRelations(s string) ([]fivm.RelationSpec, error) {
	if s == "" {
		return nil, errors.New("either -db or -relations is required")
	}
	var out []fivm.RelationSpec
	for _, part := range strings.Split(s, ";") {
		name, attrs, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" || attrs == "" {
			return nil, fmt.Errorf("bad relation %q (want Name:attr1,attr2)", part)
		}
		spec := fivm.RelationSpec{Name: strings.TrimSpace(name)}
		for _, a := range strings.Split(attrs, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("empty attribute in relation %q", part)
			}
			spec.Attrs = append(spec.Attrs, a)
		}
		out = append(out, spec)
	}
	return out, nil
}

// parseFeatures parses "A,B:cat,C:bin=10" — continuous by default,
// ":cat" for categorical, ":bin=W" for equi-width binning.
func parseFeatures(s string) ([]fivm.FeatureSpec, error) {
	var out []fivm.FeatureSpec
	for _, part := range strings.Split(s, ",") {
		attr, kind, hasKind := strings.Cut(strings.TrimSpace(part), ":")
		if attr == "" {
			return nil, fmt.Errorf("empty feature in %q", s)
		}
		f := fivm.FeatureSpec{Attr: attr}
		if hasKind {
			switch {
			case kind == "cat":
				f.Categorical = true
			case strings.HasPrefix(kind, "bin="):
				w, err := strconv.ParseFloat(kind[len("bin="):], 64)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("bad bin width in feature %q", part)
				}
				f.BinWidth = w
			default:
				return nil, fmt.Errorf("bad feature kind %q (want cat or bin=W)", kind)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

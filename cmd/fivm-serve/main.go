// Command fivm-serve runs the concurrent serving daemon: any F-IVM
// engine behind sharded batched ingestion and lock-free model
// snapshots, exposed over HTTP/JSON (v1 API; see docs/API.md).
//
//	POST /v1/update    ingest tuple updates (?wait=1 for read-your-writes;
//	                   429 + Retry-After when an ingest queue is over the
//	                   high-watermark)
//	GET  /v1/predict   evaluate the latest ridge model (analysis engines)
//	GET  /v1/model     the published model, rendered per engine kind
//	GET  /v1/stats     serving + maintenance counters, snapshot version and
//	                   age, per-shard queue depths, shed counts
//	GET  /v1/viewtree  the maintained view tree
//	GET  /v1/healthz   liveness + staleness
//	GET  /metrics      Prometheus text exposition of the pipeline metrics
//
// The unversioned routes (/update, /model, ...) remain as deprecated
// aliases and answer with a Deprecation header.
//
// The engine kind follows the workload definition (fivm.Open):
//
//	fivm-serve -db retailer -rows 10000                    # analysis preset
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -features "A,C:cat" -label A                # analysis, custom schema
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -query "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"   # count
//	fivm-serve -relations "R:A,B;S:B,C" \
//	           -query "SELECT SUM(A * B) FROM R NATURAL JOIN S"             # float
//	fivm-serve -relations "R:A,B;S:B,C" -attrs "A,B,C"     # scalar COVAR
//	fivm-serve -relations "R:A,B;S:B,C" -engine join       # join result
//
// With -wal the daemon is durable: every coalesced update batch is
// appended to a per-shard write-ahead log before it is applied, the
// engine is checkpointed incrementally (-checkpoint-interval), and a
// restart recovers the newest valid checkpoint plus a replay of the log
// past it — tolerating a torn final record from a crash mid-append.
// -fsync picks the sync policy (always|interval|off): appends are
// unbuffered, so any policy survives a process kill; always/interval
// bound what a power loss can take. Pair one WAL directory with one
// engine configuration (the snapshot codec tag rejects a mismatch).
//
// -state (deprecated; superseded by -wal) restores input relations from
// a fivm snapshot file at startup and persists them periodically and on
// shutdown. It cannot tell acknowledged updates from lost ones after a
// crash — anything since the last persist is gone. Migrate by swapping
// -state file.snap for -wal dir/; the first boot starts empty (or from
// the preset load) and checkpoints into the WAL directory from then on.
//
// -workers enables parallel delta propagation: each applied batch is
// hash-partitioned by join key and propagated across that many
// goroutines (-1 selects GOMAXPROCS), producing views identical to the
// sequential path's.
//
// All configuration is validated before any data is generated or
// loaded: a bad flag combination prints one error to stderr and exits
// with status 2. The daemon itself lives in internal/daemon;
// fivm-cluster -spawn runs the same code for each worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/daemon"
	"repro/internal/wal"
)

func main() {
	var o daemon.Options
	flag.StringVar(&o.Addr, "addr", ":8344", "HTTP listen address")
	flag.StringVar(&o.DB, "db", "", "demo database preset: retailer|favorita (overrides -relations/-features)")
	flag.IntVar(&o.Rows, "rows", 0, "fact-table rows for the preset database (0 = preset default)")
	flag.BoolVar(&o.Load, "load", true, "bulk-load the generated preset database at startup")
	flag.StringVar(&o.Engine, "engine", "", "engine kind: analysis|count|float|covar|rangedcovar|join (default: inferred from the other flags)")
	flag.StringVar(&o.Query, "query", "", `SQL-subset query for count/float engines, e.g. "SELECT A, SUM(1) FROM R NATURAL JOIN S GROUP BY A"`)
	flag.StringVar(&o.Relations, "relations", "", `custom relations, e.g. "R:A,B;S:B,C"`)
	flag.StringVar(&o.Features, "features", "", `analysis features, e.g. "A,B:cat,C:bin=10"`)
	flag.StringVar(&o.Attrs, "attrs", "", `covar aggregate attributes, e.g. "A,B,C"`)
	flag.StringVar(&o.Label, "label", "", "ridge label attribute for analysis engines (preset default when -db is set; empty disables fitting)")
	flag.StringVar(&o.WALDir, "wal", "", "durability directory: write-ahead log + checkpoints, recovered at startup (supersedes -state)")
	flag.StringVar(&o.FsyncPolicy, "fsync", string(wal.PolicyInterval), "WAL fsync policy: always|interval|off")
	flag.DurationVar(&o.FsyncInterval, "fsync-interval", 100*time.Millisecond, "background WAL fsync period under -fsync interval")
	flag.DurationVar(&o.CheckpointInterval, "checkpoint-interval", time.Minute, "incremental checkpoint period with -wal (<0 disables; a final checkpoint is still written on shutdown)")
	flag.Int64Var(&o.SegmentBytes, "segment-bytes", 64<<20, "WAL segment rotation size")
	flag.StringVar(&o.StatePath, "state", "", "deprecated (use -wal): snapshot file restored at startup if present, persisted on shutdown")
	flag.DurationVar(&o.PersistInterval, "persist-interval", 0, "also persist -state periodically (0 disables)")
	flag.IntVar(&o.MaxBatch, "max-batch", 8192, "max raw updates coalesced into one delta batch")
	flag.IntVar(&o.ChannelCap, "chan-cap", 256, "per-relation ingest channel capacity")
	flag.IntVar(&o.HighWatermark, "high-watermark", 0, "ingest queue depth at which /v1/update sheds with 429 (0 = chan-cap)")
	flag.IntVar(&o.DedupCap, "dedup-cap", 0, "idempotency dedup table capacity in recently seen batch groups (0 = 8192)")
	flag.IntVar(&o.Workers, "workers", 0, "parallel delta-propagation workers (0 sequential, -1 = GOMAXPROCS, n >= 2 = n workers)")
	flag.BoolVar(&o.Trace, "trace", false, "log one structured line per batch and per snapshot publish")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	// Fail on a bad flag combination before generating or loading any
	// data, with the same error text the daemon's own layers produce.
	if err := o.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "fivm-serve: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := daemon.Run(ctx, o); err != nil {
		log.Fatal(err)
	}
}
